// Command p4served is the verification-as-a-service daemon: it accepts
// P4 verification jobs over HTTP, runs them on a bounded worker pool with
// per-job timeout and cancellation, and serves repeat requests from a
// content-addressed result cache (in-memory LRU with an optional on-disk
// tier that survives restarts).
//
// Usage:
//
//	p4served [flags]
//
// API (see docs/service.md):
//
//	POST   /v1/jobs             submit {filename, source, rules, options}
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/events live progress feed (SSE, Last-Event-ID resumption)
//	GET    /v1/jobs/{id}/report done job's report (core.Report JSON)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/healthz          liveness
//	GET    /v1/stats            queue depth, cache counters, latency histograms
//	GET    /v1/metrics          Prometheus text exposition (docs/observability.md)
//
// Every request is logged as a structured (log/slog) access-log line with
// a request ID, which is also echoed in the X-Request-Id response header.
// -debug-addr starts a second, loopback-only listener serving
// net/http/pprof (never exposed on the API listener).
//
// SIGINT/SIGTERM drain gracefully: queued jobs finish, then the process
// exits; a second signal (or -drain-timeout) forces cancellation.
//
// -store-dir makes the job ledger durable: every job transition and
// finished report is appended to a checksummed write-ahead log, so a
// crashed (even SIGKILLed) daemon restarts with its history intact and
// automatically resubmits the jobs that were queued or running. See
// docs/service.md, "Durability and overload".
//
// Cluster mode (see docs/cluster.md): -worker serves the worker RPC
// (POST /v1/execute, GET /v1/healthz, GET /v1/metrics) instead of the job
// API; -cluster-node (repeatable, "name=url") attaches a coordinator that
// shards parallel jobs' submodels across those workers.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"p4assert/internal/cluster"
	"p4assert/internal/failpoint"
	"p4assert/internal/service"
	"p4assert/internal/store"
	"p4assert/internal/vcache"
)

// nodeList collects repeated -cluster-node flags.
type nodeList []string

func (n *nodeList) String() string { return fmt.Sprint(*n) }
func (n *nodeList) Set(v string) error {
	*n = append(*n, v)
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9464", "listen address")
		debugAddr    = flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof (keep loopback-only)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 256, "job queue depth; submissions beyond it are rejected")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "per-job wall-time cap (0 = none)")
		cacheSize    = flag.Int("cache-entries", vcache.DefaultMaxEntries, "in-memory result-cache entries (0 = disable cache)")
		cacheDir     = flag.String("cache-dir", "", "directory for the persistent cache tiers (empty = memory only)")
		subCacheSize = flag.Int("subcache-entries", vcache.SubmodelDefaultMaxEntries, "in-memory submodel-cache entries for incremental re-verification (0 = disable)")
		retainJobs   = flag.Int("retain-jobs", 4096, "finished jobs kept queryable")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for queued jobs on shutdown before cancelling them")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON (default: logfmt-style text)")

		storeDir    = flag.String("store-dir", "", "directory for the durable job store (WAL + snapshots); jobs and reports survive crashes (empty = in-memory only)")
		storeRetain = flag.Duration("store-retain", 24*time.Hour, "how long finished jobs stay in the durable store (0 = keep until -retain-jobs evicts)")
		overloadDL  = flag.Duration("overload-deadline", service.DefaultOverloadDeadline, "estimated-wait threshold past which bulk submissions are shed with 429 (<0 disables the detector)")

		workerMode = flag.Bool("worker", false, "serve the cluster worker RPC instead of the job API (docs/cluster.md)")
		nodeName   = flag.String("node-name", "", "this node's name in cluster metrics and healthz (default: derived)")

		clusterInFlight  = flag.Int("cluster-inflight", 4, "coordinator: max in-flight dispatches per worker node")
		clusterSteal     = flag.Duration("cluster-steal-after", 2*time.Second, "coordinator: re-dispatch a straggler submodel after this long (<0 disables)")
		clusterBackoff   = flag.Duration("cluster-retry-backoff", 50*time.Millisecond, "coordinator: base backoff before retrying a failed dispatch")
		clusterHeartbeat = flag.Duration("cluster-heartbeat", 10*time.Second, "coordinator: worker heartbeat interval (0 disables)")
	)
	var clusterNodes nodeList
	flag.Var(&clusterNodes, "cluster-node", "coordinator: worker node as name=url or url (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: p4served [flags]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	if *workerMode {
		runWorker(logger, *addr, *nodeName, *subCacheSize, *cacheDir)
		return
	}

	var cache *vcache.Cache
	if *cacheSize > 0 || *cacheDir != "" {
		var err error
		cache, err = vcache.New(*cacheSize, *cacheDir)
		if err != nil {
			logger.Error("cache init failed", "err", err)
			os.Exit(1)
		}
	}
	var subCache *vcache.Cache
	if *subCacheSize > 0 {
		var err error
		subCache, err = vcache.NewSubmodelTier(*subCacheSize, *cacheDir)
		if err != nil {
			logger.Error("submodel cache init failed", "err", err)
			os.Exit(1)
		}
	}
	var jobStore *store.Store
	if *storeDir != "" {
		var err error
		jobStore, err = store.Open(*storeDir, store.Options{
			Retain:      *storeRetain,
			MaxFinished: *retainJobs,
		})
		if err != nil {
			logger.Error("job store open failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
	}
	mgr := service.New(service.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		Cache:            cache,
		SubCache:         subCache,
		JobTimeout:       *jobTimeout,
		RetainJobs:       *retainJobs,
		Store:            jobStore,
		OverloadDeadline: *overloadDL,
	})
	if jobStore != nil {
		logger.Info("job store open", "dir", *storeDir,
			"jobs", jobStore.Stats().Jobs, "resubmitted", mgr.Recovered())
	}
	if failpoint.Enabled() {
		logger.Warn("fault-injection failpoints are armed — never do this in production",
			"spec", os.Getenv(failpoint.EnvVar))
	}

	var coord *cluster.Coordinator
	if len(clusterNodes) > 0 {
		specs := make([]cluster.NodeSpec, len(clusterNodes))
		for i, s := range clusterNodes {
			specs[i] = cluster.ParseNodeSpec(s)
		}
		coord = cluster.NewCoordinator(cluster.Config{
			Nodes:          specs,
			MaxInFlight:    *clusterInFlight,
			StealAfter:     *clusterSteal,
			RetryBackoff:   *clusterBackoff,
			HeartbeatEvery: *clusterHeartbeat,
			Registry:       mgr.Registry(),
		})
		mgr.AttachCluster(coord)
		logger.Info("cluster coordinator attached", "nodes", len(specs),
			"steal_after", clusterSteal.String(), "heartbeat", clusterHeartbeat.String())
	}

	srv := &http.Server{Addr: *addr, Handler: accessLog(logger, service.Handler(mgr))}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "queue", *queueDepth,
		"cache", cache != nil, "cache_dir", *cacheDir)

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: pprofMux()}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug listener (pprof)", "addr", *debugAddr)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("draining (second signal cancels immediately)", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sig
		cancel()
	}()
	srv.Shutdown(context.Background())
	if debugSrv != nil {
		debugSrv.Shutdown(context.Background())
	}
	if coord != nil {
		// Stop dispatching before the job drain so in-flight submodels
		// finish on their workers and nothing new reaches the cluster.
		coord.Drain()
		coord.Close()
	}
	if err := mgr.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("forced drain", "err", err)
	}
	if jobStore != nil {
		// After Shutdown: the final job states are persisted first, then the
		// store flushes and closes its WAL.
		if err := jobStore.Close(); err != nil {
			logger.Warn("job store close", "err", err)
		}
	}
	cancel()
	logger.Info("stopped")
}

// runWorker serves the cluster worker RPC until SIGINT/SIGTERM.
func runWorker(logger *slog.Logger, addr, name string, cacheEntries int, cacheDir string) {
	if name == "" {
		name = "worker@" + addr
	}
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Name:         name,
		CacheEntries: cacheEntries,
		CacheDir:     cacheDir,
	})
	if err != nil {
		logger.Error("worker init failed", "err", err)
		os.Exit(1)
	}
	srv := &http.Server{Addr: addr, Handler: accessLog(logger, w.Handler())}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("worker listening", "addr", addr, "node", name, "cache_dir", cacheDir)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("worker stopping", "signal", s.String())
	}
	srv.Shutdown(context.Background())
	logger.Info("stopped")
}

// pprofMux exposes the net/http/pprof endpoints on a dedicated mux, so
// the profiling surface exists only on the -debug-addr listener and
// never on the public API one.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusRecorder captures the response status and size for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so SSE streams (the live job
// event feed) deliver frames as they happen, not at request end.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessLog wraps the API handler with request-ID assignment and one
// structured log line per request. A client-supplied X-Request-Id is
// honoured (trusted proxies stamp one); otherwise a fresh ID is minted.
// The ID is echoed in the response so clients can correlate.
func accessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = newRequestID()
			// Stamp the minted ID into the inbound request too: the job
			// layer copies it onto the submission, so the job's event
			// feed and the access log share one correlation ID.
			r.Header.Set("X-Request-Id", id)
		}
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", time.Since(start).Milliseconds(),
			"remote", r.RemoteAddr,
		)
	})
}

// newRequestID mints a 16-hex-digit random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}
