// Command p4served is the verification-as-a-service daemon: it accepts
// P4 verification jobs over HTTP, runs them on a bounded worker pool with
// per-job timeout and cancellation, and serves repeat requests from a
// content-addressed result cache (in-memory LRU with an optional on-disk
// tier that survives restarts).
//
// Usage:
//
//	p4served [flags]
//
// API (see docs/service.md):
//
//	POST   /v1/jobs             submit {filename, source, rules, options}
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/report done job's report (core.Report JSON)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/healthz          liveness
//	GET    /v1/stats            queue depth, cache counters, latency histograms
//
// SIGINT/SIGTERM drain gracefully: queued jobs finish, then the process
// exits; a second signal (or -drain-timeout) forces cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"p4assert/internal/service"
	"p4assert/internal/vcache"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9464", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 256, "job queue depth; submissions beyond it are rejected")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "per-job wall-time cap (0 = none)")
		cacheSize    = flag.Int("cache-entries", vcache.DefaultMaxEntries, "in-memory result-cache entries (0 = disable cache)")
		cacheDir     = flag.String("cache-dir", "", "directory for the persistent cache tiers (empty = memory only)")
		subCacheSize = flag.Int("subcache-entries", vcache.SubmodelDefaultMaxEntries, "in-memory submodel-cache entries for incremental re-verification (0 = disable)")
		retainJobs   = flag.Int("retain-jobs", 4096, "finished jobs kept queryable")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for queued jobs on shutdown before cancelling them")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: p4served [flags]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	var cache *vcache.Cache
	if *cacheSize > 0 || *cacheDir != "" {
		var err error
		cache, err = vcache.New(*cacheSize, *cacheDir)
		if err != nil {
			log.Fatalf("p4served: %v", err)
		}
	}
	var subCache *vcache.Cache
	if *subCacheSize > 0 {
		var err error
		subCache, err = vcache.NewSubmodelTier(*subCacheSize, *cacheDir)
		if err != nil {
			log.Fatalf("p4served: %v", err)
		}
	}
	mgr := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		Cache:      cache,
		SubCache:   subCache,
		JobTimeout: *jobTimeout,
		RetainJobs: *retainJobs,
	})

	srv := &http.Server{Addr: *addr, Handler: service.Handler(mgr)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("p4served: listening on %s (queue=%d, cache=%v, dir=%q)",
		*addr, *queueDepth, cache != nil, *cacheDir)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("p4served: %v", err)
	case s := <-sig:
		log.Printf("p4served: %v: draining (second signal cancels immediately)", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sig
		cancel()
	}()
	srv.Shutdown(context.Background())
	if err := mgr.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("p4served: forced drain: %v", err)
	}
	cancel()
	log.Printf("p4served: stopped")
}
