// Command p4bench regenerates the paper's evaluation figures and tables:
//
//	-exp fig9a..fig9d    Fig. 9 performance sweeps (no optimizations)
//	-exp fig10a..fig10d  Fig. 10 sweeps × {Original, Parallel, O3, Opt}
//	-exp table1          Table 1 expressiveness matrix over the corpus
//	-exp table2          Table 2 per-program technique gains
//	-exp combined        §5.5 combined techniques on Dapper
//	-exp bugs            §5.1 bug-finding runs
//	-exp incremental     edit one action of the largest corpus program and
//	                     measure incremental vs cold re-verification
//	                     (writes BENCH_incremental.json)
//	-exp testgen         generate the fabric test suite and measure batch
//	                     replay throughput (writes BENCH_testgen.json)
//	-exp cluster         verify fabric through loopback worker clusters of
//	                     1/2/4 nodes — cold, cache-warm and incremental —
//	                     vs the single-process parallel pipeline
//	                     (writes BENCH_cluster.json)
//	-exp solver          execute fabric under each solver acceleration
//	                     mode (sessions, portfolio, memo cold/warm) vs the
//	                     unaccelerated baseline (writes BENCH_solver.json)
//	-exp all             everything above
//
// Absolute numbers differ from the paper's (different machine, engine and
// decade); the shapes — growth trends, which technique wins where — are
// the reproduction target (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"p4assert/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (fig9a-d, fig10a-d, table1, table2, combined, bugs, incremental, testgen, cluster, solver, all)")
		full    = flag.Bool("full", false, "use the paper's full parameter ranges (slow)")
		repeats = flag.Int("repeats", 3, "repetitions for wall-clock rows (table2/combined/incremental)")
		smoke   = flag.Bool("smoke", false, "CI smoke mode: single repetition, still enforcing result invariants")
	)
	flag.Parse()
	if *smoke {
		*repeats = 1
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"bugs", "table1", "fig9a", "fig9b", "fig9c", "fig9d",
			"fig10a", "fig10b", "fig10c", "fig10d", "table2", "combined", "incremental", "testgen", "cluster", "solver"}
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id), *full, *repeats); err != nil {
			fmt.Fprintf(os.Stderr, "p4bench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

var sweepOf = map[string]bench.Sweep{
	"a": bench.SweepTables, "b": bench.SweepAssertions,
	"c": bench.SweepRules, "d": bench.SweepActions,
}

var panelLabel = map[bench.Sweep]string{
	bench.SweepTables:     "Number of tables",
	bench.SweepAssertions: "Number of assertions",
	bench.SweepRules:      "Number of rules per table",
	bench.SweepActions:    "Number of actions per table",
}

func run(id string, full bool, repeats int) error {
	switch {
	case strings.HasPrefix(id, "fig9"):
		s, ok := sweepOf[strings.TrimPrefix(id, "fig9")]
		if !ok {
			return fmt.Errorf("unknown experiment")
		}
		pts, err := bench.Figure9(s, bench.DefaultXs(s, full))
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderPoints(
			fmt.Sprintf("Figure 9(%s): verification time vs %s (no optimizations)",
				strings.TrimPrefix(id, "fig9"), panelLabel[s]),
			panelLabel[s], pts))
		return nil

	case strings.HasPrefix(id, "fig10"):
		s, ok := sweepOf[strings.TrimPrefix(id, "fig10")]
		if !ok {
			return fmt.Errorf("unknown experiment")
		}
		series, err := bench.Figure10(s, bench.DefaultXs(s, full))
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderSeries(
			fmt.Sprintf("Figure 10(%s): speed-up techniques vs %s",
				strings.TrimPrefix(id, "fig10"), panelLabel[s]),
			panelLabel[s], series))
		return nil

	case id == "table2":
		rows, err := bench.Table2(repeats)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable2(rows))
		return nil

	case id == "combined":
		timeRed, instrRed, err := bench.Combined(repeats)
		if err != nil {
			return err
		}
		fmt.Printf("§5.5 combined techniques on Dapper (constraints + parallel + O3 + Opt):\n")
		fmt.Printf("  verification time reduced by %.2f%% (paper: 81.76%%)\n", timeRed)
		fmt.Printf("  instructions reduced by %.2f%% (paper: 89.25%%)\n\n", instrRed)
		return nil

	case id == "bugs":
		results, err := bench.BugFinding()
		if err != nil {
			return err
		}
		fmt.Println("§5.1 bug finding:")
		for _, r := range results {
			status := "FOUND"
			if !r.AllFound {
				status = "MISSED"
			}
			fmt.Printf("  %-40s %-6s in %.3fs (%d violation(s))\n", r.Program, status, r.Seconds, r.Violations)
			for _, f := range r.Found {
				fmt.Printf("      violated: %s\n", f)
			}
		}
		fmt.Println()
		return nil

	case id == "incremental":
		res, err := bench.Incremental(repeats, nil)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_incremental.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("Incremental re-verification (%s, %d lines; edit %s):\n",
			res.Program, res.ProgramLines, res.EditedUnit)
		for _, r := range res.Runs {
			fmt.Printf("  workers=%d  cold %.3fs  incremental %.3fs  speedup %.1fx\n",
				r.Workers, r.ColdSeconds, r.IncrementalSeconds, r.Speedup)
		}
		fmt.Printf("  %d/%d submodel verdicts reused; byte-identical report: %v\n",
			res.Reused, res.Submodels, res.ByteIdentical)
		fmt.Printf("  wrote BENCH_incremental.json\n\n")
		if !res.ByteIdentical {
			return fmt.Errorf("incremental report diverged from the cold run")
		}
		return nil

	case id == "testgen":
		res, err := bench.Testgen(0, 0)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_testgen.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("Test-packet oracle throughput (%s, %d cases, %d workers):\n",
			res.Program, res.Cases, res.Workers)
		fmt.Printf("  %d packets in %.3fs — %.2fM packets/sec (%d VM instructions)\n",
			res.Packets, res.Seconds, res.PacketsPerSecond/1e6, res.Instructions)
		fmt.Printf("  wrote BENCH_testgen.json\n\n")
		return nil

	case id == "cluster":
		res, err := bench.Cluster(repeats, nil)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_cluster.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("Distributed verification cluster (%s, %d lines, %d submodels; baseline %.3fs):\n",
			res.Program, res.ProgramLines, res.Submodels, res.BaselineSeconds)
		for _, r := range res.Runs {
			fmt.Printf("  workers=%d  cold %.3fs  warm %.3fs  incremental %.3fs  speedup %.2fx  steals %d\n",
				r.Workers, r.ColdSeconds, r.WarmSeconds, r.IncrementalSeconds, r.Speedup, r.Steals)
			for _, n := range r.Nodes {
				fmt.Printf("      %-8s dispatched %-4d cache hits %-4d (ratio %.2f)\n",
					n.Name, n.Dispatched, n.CacheHits, n.CacheHitRatio)
			}
		}
		fmt.Printf("  byte-identical reports: %v\n", res.ByteIdentical)
		fmt.Printf("  wrote BENCH_cluster.json\n\n")
		if !res.ByteIdentical {
			return fmt.Errorf("cluster report diverged from the single-process run")
		}
		return nil

	case id == "solver":
		res, err := bench.Solver(repeats)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_solver.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("Solver acceleration (%s, %d lines; %d queries, %d full):\n",
			res.Program, res.ProgramLines, res.Queries, res.FullQueries)
		for _, r := range res.Runs {
			fmt.Printf("  %-10s wall %.3fs  solver %.4fs  reuse %-5d memo %-5d race s/f %d/%d  learned %d\n",
				r.Mode, r.WallSeconds, r.SolverSeconds, r.SessionReuseHits, r.MemoHits,
				r.PortfolioSessionWins, r.PortfolioFreshWins, r.LearnedClauses)
		}
		fmt.Printf("  solver-time speedup (baseline vs warm memo): %.1fx\n", res.Speedup)
		fmt.Printf("  byte-identical results: %v\n", res.ByteIdentical)
		fmt.Printf("  wrote BENCH_solver.json\n\n")
		if !res.ByteIdentical {
			return fmt.Errorf("acceleration modes diverged from the baseline")
		}
		if res.Speedup < 3 {
			return fmt.Errorf("solver-time speedup %.2fx below the 3x acceptance bar", res.Speedup)
		}
		if res.SessionReuseHits == 0 {
			return fmt.Errorf("incremental sessions reused no circuits")
		}
		return nil

	case id == "table1":
		entries, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Println("Table 1: assertion-language properties per application:")
		for _, e := range entries {
			fmt.Printf("  %-40s (%.3fs)\n", e.Program, e.Seconds)
			for i, a := range e.Assertions {
				verdict := "holds"
				if e.Violated[i] {
					verdict = "VIOLATED"
				}
				fmt.Printf("      %-60s %s\n", a, verdict)
			}
		}
		fmt.Println()
		return nil
	}
	return fmt.Errorf("unknown experiment")
}
