// Command p4gen generates synthetic Whippersnapper-style P4 programs (and
// matching forwarding-rule files) for benchmarking the verifier, with the
// parameters the paper sweeps in §5.3: pipeline depth, actions per table,
// rules per table and assertion count.
//
// Usage:
//
//	p4gen -tables 8 -assertions 4 -o prog.p4 -rules-out rules.txt
//
// Omitting -o prints the program to stdout. It can also dump the embedded
// application corpus: p4gen -corpus dapper -o dapper.p4.
package main

import (
	"flag"
	"fmt"
	"os"

	"p4assert/internal/progs"
	"p4assert/internal/rules"
	"p4assert/internal/whippersnapper"
)

func main() {
	var (
		tables     = flag.Int("tables", 2, "number of match-action tables in the pipeline")
		actFirst   = flag.Int("actions-first", 3, "actions on the first table")
		actions    = flag.Int("actions", 2, "actions on subsequent tables")
		rulesN     = flag.Int("rules", 0, "forwarding rules per table (0 = unknown rules)")
		assertions = flag.Int("assertions", 0, "number of @assert annotations")
		out        = flag.String("o", "", "output file (default stdout)")
		rulesOut   = flag.String("rules-out", "", "write the matching rule file here")
		corpus     = flag.String("corpus", "", "dump an embedded corpus program instead (see -list)")
		list       = flag.Bool("list", false, "list the embedded corpus programs")
	)
	flag.Parse()

	if *list {
		for _, p := range progs.All() {
			fmt.Printf("%-14s %s\n", p.Name, p.Title)
		}
		return
	}

	var source, ruleText string
	if *corpus != "" {
		p, err := progs.Get(*corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4gen:", err)
			os.Exit(2)
		}
		source, ruleText = p.Source, p.Rules
	} else {
		cfg := whippersnapper.Config{
			Tables:        *tables,
			ActionsFirst:  *actFirst,
			Actions:       *actions,
			RulesPerTable: *rulesN,
			Assertions:    *assertions,
		}
		source = whippersnapper.Generate(cfg)
		ruleText = rules.Render(whippersnapper.GenerateRules(cfg))
		fmt.Fprintf(os.Stderr, "p4gen: %d tables, %d paths expected\n", cfg.Tables, cfg.PathCount())
	}

	if err := emit(*out, source); err != nil {
		fmt.Fprintln(os.Stderr, "p4gen:", err)
		os.Exit(2)
	}
	if *rulesOut != "" {
		if err := emit(*rulesOut, ruleText); err != nil {
			fmt.Fprintln(os.Stderr, "p4gen:", err)
			os.Exit(2)
		}
	}
}

func emit(path, content string) error {
	if path == "" {
		_, err := os.Stdout.WriteString(content)
		return err
	}
	return os.WriteFile(path, []byte(content), 0o644)
}
