// Suite modes: p4verify -suite out.json generates the test-packet suite
// (one concrete packet + expected trace and outputs per execution path);
// p4verify -replay suite.json replays a previously generated suite against
// the (possibly edited) program through the compiled batch interpreter and
// reports mismatches.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"p4assert"
)

// runSuiteGen generates the suite and writes it to out ("-" = stdout).
// Exit status: 0 on success, 2 on front-end or I/O errors.
func runSuiteGen(file, out string, opts *p4assert.Options) int {
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}
	suite, err := p4assert.GenerateSuite(file, string(src), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}
	data, err := json.MarshalIndent(suite, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}
	fmt.Printf("wrote %d test case(s) (one per execution path) to %s\n", len(suite.Cases), out)
	return 0
}

// runSuiteReplay replays a suite file against the program. Exit status:
// 0 when every case matches, 1 on mismatches, 2 on errors.
func runSuiteReplay(file, suitePath string, opts *p4assert.Options, jsonOut bool) int {
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}
	data, err := os.ReadFile(suitePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}
	var suite p4assert.TestSuite
	if err := json.Unmarshal(data, &suite); err != nil {
		fmt.Fprintf(os.Stderr, "p4verify: %s: %v\n", suitePath, err)
		return 2
	}
	rep, err := p4assert.ReplaySuite(file, string(src), &suite, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}
	if jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			return 2
		}
		fmt.Println(string(out))
	} else if rep.Ok() {
		fmt.Printf("PASS: %d case(s) replayed, all outcomes match\n", rep.Cases)
	} else {
		fmt.Printf("FAIL: %d of %d case(s) diverge from the suite\n", len(rep.Mismatches), rep.Cases)
		for _, m := range rep.Mismatches {
			fmt.Printf("  %s\n", m)
		}
	}
	if !rep.Ok() {
		return 1
	}
	return 0
}
