package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"p4assert/internal/equiv"
	"p4assert/internal/sym"
)

// golden compares got against the named testdata file. Run the tests with
// UPDATE_GOLDEN=1 to regenerate the files after an intentional format
// change.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if string(want) != got {
		t.Errorf("output differs from %s:\n--- want ---\n%s--- got ---\n%s", path, want, got)
	}
}

func diffTestReport(t *testing.T) *equiv.Report {
	t.Helper()
	aSrc, err := os.ReadFile(filepath.Join("testdata", "diff_a.p4"))
	if err != nil {
		t.Fatal(err)
	}
	bSrc, err := os.ReadFile(filepath.Join("testdata", "diff_b.p4"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := equiv.Diff(context.Background(), "diff_a.p4", string(aSrc), "diff_b.p4", string(bSrc), equiv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestDiffTextGolden pins the deterministic text rendering of a divergent
// -diff run: the verdict line, the counterexample packet, its trace, and
// the replay confirmation.
func TestDiffTextGolden(t *testing.T) {
	rep := diffTestReport(t)
	if rep.Equivalent {
		t.Fatal("the testdata pair must diverge")
	}
	golden(t, "diff.txt", formatDiffText(rep, false))
}

// TestDiffJSONGolden pins the machine-readable -diff -json output.
// Executor metrics carry wall-clock timings, so they are zeroed before
// marshalling (the CLI emits them; the golden file does not pin them).
func TestDiffJSONGolden(t *testing.T) {
	rep := diffTestReport(t)
	rep.Metrics = sym.Metrics{}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "diff.json", string(out)+"\n")
}

// TestDiffSelfEquivalentText pins the clean-verdict line.
func TestDiffSelfEquivalentText(t *testing.T) {
	aSrc, err := os.ReadFile(filepath.Join("testdata", "diff_a.p4"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := equiv.Diff(context.Background(), "diff_a.p4", string(aSrc), "diff_a.p4", string(aSrc), equiv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("self-diff must be equivalent: %+v", rep.Divergences)
	}
	golden(t, "diff_self.txt", formatDiffText(rep, false))
}
