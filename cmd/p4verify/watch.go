package main

// -watch: the edit-verify loop as a mode. The file is polled for changes;
// every save re-verifies incrementally against an in-memory submodel cache
// (internal/incr via core.VerifyIncrementalSource), so only the submodels
// the edit can affect re-execute. Output after the first run is
// delta-oriented: the changed units, the reuse ratio, and the violations
// that appeared or disappeared relative to the previous verdict.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/incr"
	"p4assert/internal/service"
	"p4assert/internal/sym"
	"p4assert/internal/vcache"
)

// watchEvent is one -watch -json output record (NDJSON, one per rebuild).
type watchEvent struct {
	Seq      int            `json:"seq"`
	Report   *core.Report   `json:"report"`
	Manifest *incr.Manifest `json:"manifest"`
	// SubmodelCache snapshots the in-memory verdict tier after the run:
	// the hit/miss/eviction counters of the session.
	SubmodelCache vcache.Stats `json:"submodel_cache"`
	// NewViolations and Resolved list assertion IDs that changed verdict
	// relative to the previous rebuild.
	NewViolations []int `json:"new_violations,omitempty"`
	Resolved      []int `json:"resolved,omitempty"`
}

// runWatch polls file and re-verifies on every content change until
// interrupted. Exit status: 0 on interrupt, 2 on option errors or a
// failed first read.
func runWatch(file, rulesText string, tech service.Techniques, jsonOut bool, interval time.Duration) {
	opts, err := tech.CoreOptions(rulesText)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		os.Exit(2)
	}
	store, err := vcache.NewSubmodelTier(0, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		os.Exit(2)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)

	var (
		prevSource string // last successfully verified version
		prevRep    *core.Report
		lastStamp  string // mtime+size of the last attempted version
		seq        int
	)
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()

	for first := true; ; first = false {
		if !first {
			select {
			case <-sig:
				return
			case <-tick.C:
			}
		}
		st, err := os.Stat(file)
		if err != nil {
			if first {
				fmt.Fprintln(os.Stderr, "p4verify:", err)
				os.Exit(2)
			}
			continue // transient: editors replace files non-atomically
		}
		stamp := fmt.Sprintf("%d/%d", st.ModTime().UnixNano(), st.Size())
		if stamp == lastStamp {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		lastStamp = stamp
		source := string(data)
		if source == prevSource {
			continue
		}

		start := time.Now()
		rep, man, err := core.VerifyIncrementalSource(context.Background(), file, prevSource, source, opts, store)
		if err != nil {
			// A half-saved or broken program keeps the previous verdict:
			// report the front-end error and wait for the next save.
			fmt.Fprintf(os.Stderr, "p4verify: %v (watching)\n", err)
			continue
		}
		seq++
		added, resolved := violationDelta(prevRep, rep)

		if jsonOut {
			ev := watchEvent{
				Seq:           seq,
				Report:        rep,
				Manifest:      man,
				SubmodelCache: store.Stats(),
				NewViolations: added,
				Resolved:      resolved,
			}
			out, err := json.Marshal(ev)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p4verify:", err)
				os.Exit(2)
			}
			fmt.Println(string(out))
		} else {
			printWatchDelta(seq, rep, man, prevRep, added, resolved, time.Since(start))
		}
		prevSource, prevRep = source, rep
	}
}

// violationDelta diffs two reports' violated-assertion ID sets.
func violationDelta(prev, next *core.Report) (added, resolved []int) {
	prevIDs := map[int]bool{}
	if prev != nil {
		for _, v := range prev.Violations {
			prevIDs[v.AssertID] = true
		}
	}
	nextIDs := map[int]bool{}
	for _, v := range next.Violations {
		nextIDs[v.AssertID] = true
		if !prevIDs[v.AssertID] {
			added = append(added, v.AssertID)
		}
	}
	for id := range prevIDs {
		if !nextIDs[id] {
			resolved = append(resolved, id)
		}
	}
	sort.Ints(added)
	sort.Ints(resolved)
	return added, resolved
}

// printWatchDelta renders one rebuild in text mode: verdict, reuse ratio,
// changed units, and the violations delta. The first rebuild prints every
// violation; later ones print only what changed.
func printWatchDelta(seq int, rep *core.Report, man *incr.Manifest, prev *core.Report, added, resolved []int, took time.Duration) {
	verdict := "OK"
	if rep.Exhausted {
		verdict = "EXHAUSTED"
	}
	if len(rep.Violations) > 0 {
		verdict = "FAIL"
	}
	fmt.Printf("[%d] %s: %d violation(s); %d/%d submodels reused, %s\n",
		seq, verdict, len(rep.Violations), man.Reused, man.Submodels, took.Round(time.Millisecond))
	if man.Delta != nil && !man.Delta.Empty() {
		for _, u := range man.Delta.Changed {
			fmt.Printf("    ~ %s\n", u)
		}
		for _, u := range man.Delta.Added {
			fmt.Printf("    + %s\n", u)
		}
		for _, u := range man.Delta.Removed {
			fmt.Printf("    - %s\n", u)
		}
	}
	byID := map[int]*sym.Violation{}
	for _, v := range rep.Violations {
		byID[v.AssertID] = v
	}
	show := added
	if prev == nil {
		show = show[:0]
		for _, v := range rep.Violations {
			show = append(show, v.AssertID)
		}
	}
	for _, id := range show {
		v := byID[id]
		src, loc := "?", "?"
		if v.Info != nil {
			src, loc = v.Info.Source, v.Info.Location
		}
		fmt.Printf("    FAIL assert #%d %q at %s (%d path(s))\n", id, src, loc, v.Count)
	}
	for _, id := range resolved {
		fmt.Printf("    resolved assert #%d\n", id)
	}
}
