package main

// -remote -follow: stream the job's live progress feed (SSE) while it
// runs, rendering each pipeline stage as it completes. The stream rides
// service.Client.Follow, so it survives disconnects and daemon restarts
// by resuming from the last delivered sequence number.

import (
	"context"
	"fmt"
	"os"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/service"
	"p4assert/internal/telemetry"
)

// followVerify submits the job and follows its event feed until the
// terminal marker, then fetches the report. Progress goes to stderr
// (stdout stays clean for -json). With traceOut set, the collected
// events replay into a Chrome trace file — the remote counterpart of a
// local -trace run.
func followVerify(ctx context.Context, c *service.Client, jr service.JobRequest, traceOut string) (*core.Report, error) {
	st, err := c.Submit(ctx, jr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "p4verify: following %s\n", st.ID)

	var events []telemetry.Event
	r := newRenderer(os.Stderr)
	err = c.Follow(ctx, st.ID, 0, func(ev telemetry.Event) error {
		if traceOut != "" {
			events = append(events, ev)
		}
		r.render(ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if traceOut != "" {
		writeTrace(telemetry.ReplayTrace(events), traceOut)
	}

	st, err = c.Status(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	if st.State != service.StateDone {
		return nil, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	rep, _, err := c.Report(ctx, st.ID)
	return rep, err
}

// renderer turns the event stream into per-stage progress lines. Span
// durations come from the event timestamps (start seen → end seen);
// spans replayed from a memoized cache are marked.
type renderer struct {
	out    *os.File
	starts map[int64]telemetry.Event // span ID → its span_start
	cached map[int64]bool
	attrs  map[int64]int64 // span ID → paths attr (the headline figure)
}

func newRenderer(out *os.File) *renderer {
	return &renderer{
		out:    out,
		starts: map[int64]telemetry.Event{},
		cached: map[int64]bool{},
		attrs:  map[int64]int64{},
	}
}

func (r *renderer) render(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.KindJob:
		switch {
		case service.TerminalJobEvent(ev):
			detail := ev.Str
			if ev.Val > 0 {
				detail = fmt.Sprintf("%s (%d violations)", ev.Str, ev.Val)
			}
			fmt.Fprintf(r.out, "  job %s: %s\n", ev.Name, detail)
		default:
			fmt.Fprintf(r.out, "  job %s\n", ev.Name)
		}
	case telemetry.KindSpanStart:
		r.starts[ev.Span] = ev
	case telemetry.KindCached:
		r.cached[ev.Span] = true
	case telemetry.KindAttr:
		if ev.Key == "paths" {
			r.attrs[ev.Span] = ev.Val
		}
	case telemetry.KindSpanEnd:
		start, ok := r.starts[ev.Span]
		if !ok {
			return
		}
		delete(r.starts, ev.Span)
		d := time.Duration(ev.TS - start.TS)
		line := fmt.Sprintf("  %-14s %v", ev.Name, d.Round(10*time.Microsecond))
		if p := r.attrs[ev.Span]; p > 0 {
			line += fmt.Sprintf("  (%d paths)", p)
		}
		if r.cached[ev.Span] {
			line += "  [cached]"
		}
		fmt.Fprintln(r.out, line)
	case telemetry.KindDropped:
		fmt.Fprintf(r.out, "  ... %d events dropped (slow consumer)\n", ev.Dropped)
	}
}
