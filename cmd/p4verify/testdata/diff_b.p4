header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct headers_t { ethernet_t ethernet; ipv4_t ipv4; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x0800: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ingress(inout headers_t hdr, inout meta_t meta,
                inout standard_metadata_t standard_metadata) {
    action drop() {
        mark_to_drop(standard_metadata);
    }
    action set_dmac(bit<48> dmac) {
        hdr.ethernet.dstAddr = dmac;
        standard_metadata.egress_spec = 2;
    }
    table dmac {
        key = { hdr.ipv4.dstAddr : exact; }
        actions = { drop; set_dmac; }
        default_action = drop();
    }
    apply {
        if (hdr.ipv4.ttl == 0) { drop(); } else { dmac.apply(); }
        @assert("if(forward(), hdr.ipv4.ttl > 0)");
    }
}

control Deparser(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.ethernet); pkt.emit(hdr.ipv4); }
}

V1Switch(P, Ingress, Deparser) main;
