// Differential mode: p4verify -diff b.p4 a.p4 checks two program versions
// for behavioral equivalence via the product-program engine (internal/equiv)
// and prints either a deterministic text report or the equiv.Report JSON.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"p4assert"
	"p4assert/internal/core"
	"p4assert/internal/equiv"
	"p4assert/internal/rules"
)

// runDiff executes the differential mode and returns the exit status:
// 0 equivalent, 1 divergent or inconclusive, 2 front-end errors.
func runDiff(ctx context.Context, aFile, bFile, rulesAText, rulesBText string, opts *p4assert.Options, jsonOut, quiet bool) int {
	aSrc, err := os.ReadFile(aFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}
	bSrc, err := os.ReadFile(bFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}

	eopts, err := diffOptions(rulesAText, rulesBText, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}
	rep, err := equiv.Diff(ctx, aFile, string(aSrc), bFile, string(bSrc), eopts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}

	if jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			return 2
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(formatDiffText(rep, quiet))
	}
	if rep.Equivalent {
		return 0
	}
	return 1
}

// diffOptions maps the CLI flag set onto both sides of the differential
// run. When O3 or slicing is requested the comparison restricts itself to
// assertion verdicts: both transforms deliberately delete output-affecting
// code no assertion depends on, so packet-level outputs are not preserved.
func diffOptions(rulesAText, rulesBText string, opts *p4assert.Options) (equiv.Options, error) {
	side := core.Options{
		O3:           opts.O3,
		Slice:        opts.Slice,
		MaxCallDepth: opts.MaxParserLoops,
	}
	a, b := side, side
	var err error
	if rulesAText != "" {
		if a.Rules, err = rules.Parse(rulesAText); err != nil {
			return equiv.Options{}, fmt.Errorf("rules: %w", err)
		}
	}
	if rulesBText != "" {
		if b.Rules, err = rules.Parse(rulesBText); err != nil {
			return equiv.Options{}, fmt.Errorf("rules-b: %w", err)
		}
	}
	eo := equiv.Options{
		A:            a,
		B:            b,
		MaxPaths:     opts.MaxPaths,
		Timeout:      opts.Timeout,
		Parallel:     opts.Parallel,
		MaxCallDepth: opts.MaxParserLoops,
		Opt:          opts.Opt,
	}
	if opts.O3 || opts.Slice {
		eo.Observe = equiv.Observables{Asserts: true}
	}
	return eo, nil
}

// formatDiffText renders an equiv report deterministically (no timings),
// so the output is golden-testable and diff-friendly.
func formatDiffText(rep *equiv.Report, quiet bool) string {
	var b strings.Builder
	verdict := "DIVERGENT"
	if rep.Equivalent {
		verdict = "EQUIVALENT"
	} else if len(rep.Divergences) == 0 {
		verdict = "INCONCLUSIVE"
	}
	fmt.Fprintf(&b, "%s: %d observable(s) compared, %d divergence(s)",
		verdict, len(rep.Checks), len(rep.Divergences))
	if rep.Exhausted {
		b.WriteString(" (path/time budget exhausted)")
	}
	b.WriteByte('\n')
	if quiet {
		return b.String()
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	for _, d := range rep.Divergences {
		fmt.Fprintf(&b, "  %s: %d path(s)\n", d.Check, d.Count)
		fmt.Fprintf(&b, "    packet: %s\n", formatInputs(d.Inputs))
		if len(d.Trace) > 0 {
			fmt.Fprintf(&b, "    trace: %v\n", d.Trace)
		}
		switch {
		case d.Confirmed:
			fmt.Fprintf(&b, "    replay: confirmed (%s)\n", d.ReplayNote)
		case d.ReplayNote != "":
			fmt.Fprintf(&b, "    replay: unconfirmed (%s)\n", d.ReplayNote)
		}
	}
	return b.String()
}

func formatInputs(inputs map[string]uint64) string {
	keys := make([]string, 0, len(inputs))
	for k := range inputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=0x%x", k, inputs[k])
	}
	return strings.Join(parts, " ")
}
