// Command p4verify verifies an annotated P4_16 program: it translates the
// program (optionally under a forwarding-rule configuration) into a
// verification model and symbolically executes every path, reporting each
// violated assertion with a counterexample packet.
//
// Usage:
//
//	p4verify [flags] program.p4
//
// Flags select the paper's speed-up techniques: -O3 (compiler optimization
// passes), -opt (executor optimizations), -slice (program slicing),
// -parallel N (submodel parallelization on N workers).
//
// Exit status: 0 when every assertion holds, 1 on violations, 2 on usage
// or front-end errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p4assert"
)

func main() {
	var (
		rulesFile = flag.String("rules", "", "forwarding-rule file (control-plane configuration)")
		o3        = flag.Bool("O3", false, "apply compiler optimization passes to the model")
		optFlag   = flag.Bool("opt", false, "enable executor-level optimizations")
		slice     = flag.Bool("slice", false, "apply program slicing w.r.t. the assertions")
		parallel  = flag.Int("parallel", 0, "split into submodels on N workers (0 = sequential)")
		maxPaths  = flag.Int64("max-paths", 0, "abort after exploring this many paths (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "abort exploration after this duration (0 = none)")
		loops     = flag.Int("max-parser-loops", 0, "parser loop unroll bound (default 8)")
		quiet     = flag.Bool("q", false, "print only the verdict line")
		autoValid = flag.Bool("auto-validity", false, "instrument header accesses with automatic validity assertions")
		genTests  = flag.Bool("gen-tests", false, "generate one concrete test case per execution path and exit")
		dumpModel = flag.Bool("dump-model", false, "print the translated verification model (pseudo-C) and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: p4verify [flags] program.p4\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	opts := &p4assert.Options{
		O3:                 *o3,
		Opt:                *optFlag,
		Slice:              *slice,
		Parallel:           *parallel,
		MaxPaths:           *maxPaths,
		Timeout:            *timeout,
		MaxParserLoops:     *loops,
		AutoValidityChecks: *autoValid,
	}
	if *rulesFile != "" {
		data, err := os.ReadFile(*rulesFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			os.Exit(2)
		}
		rs, err := p4assert.ParseRules(string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			os.Exit(2)
		}
		opts.Rules = rs
	}

	if *dumpModel || *genTests {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			os.Exit(2)
		}
		if *dumpModel {
			dump, err := p4assert.DumpModel(flag.Arg(0), string(data), opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p4verify:", err)
				os.Exit(2)
			}
			fmt.Print(dump)
			return
		}
		tests, err := p4assert.GenerateTests(flag.Arg(0), string(data), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			os.Exit(2)
		}
		fmt.Printf("# %d test cases (one per execution path)\n", len(tests))
		for i := range tests {
			fmt.Printf("%d: %s\n", i, tests[i].String())
		}
		return
	}

	rep, err := p4assert.VerifyFile(flag.Arg(0), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		os.Exit(2)
	}

	if rep.SliceFailed != nil {
		fmt.Fprintf(os.Stderr, "p4verify: slicing unavailable (%v); verified unsliced\n", rep.SliceFailed)
	}
	status := "OK"
	if rep.Exhausted {
		status = "EXHAUSTED"
	}
	if len(rep.Violations) > 0 {
		status = "FAIL"
	}
	fmt.Printf("%s: %d assertion(s), %d violated; %d paths, %d instructions, %s\n",
		status, rep.AssertionCount, len(rep.Violations),
		rep.Stats.Paths, rep.Stats.Instructions, rep.Stats.Time.Round(time.Millisecond))
	if !*quiet {
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
			if len(v.Trace) > 0 {
				fmt.Printf("    trace: %v\n", v.Trace)
			}
		}
		if rep.Stats.Submodels > 0 {
			fmt.Printf("  submodels: %d (worst %d instructions)\n",
				rep.Stats.Submodels, rep.Stats.WorstSubmodelInstructions)
		}
	}
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}
