// Command p4verify verifies an annotated P4_16 program: it translates the
// program (optionally under a forwarding-rule configuration) into a
// verification model and symbolically executes every path, reporting each
// violated assertion with a counterexample packet.
//
// Usage:
//
//	p4verify [flags] program.p4
//
// Flags select the paper's speed-up techniques: -O3 (compiler optimization
// passes), -opt (executor optimizations), -slice (program slicing),
// -parallel N (submodel parallelization on N workers).
//
// -json emits the machine-readable core.Report (the serialization shared
// with the verification service). -trace FILE records the pipeline's span
// tree — including one span per submodel under -parallel — as a Chrome
// trace-event file loadable in chrome://tracing or https://ui.perfetto.dev
// (see docs/observability.md). -remote ADDR offloads the job to a
// p4served daemon instead of verifying in-process; adding -follow streams
// the job's live progress feed (SSE) to stderr while it runs, surviving
// disconnects and daemon restarts, and with -trace writes the remote
// pipeline's span tree from the streamed events. -watch re-verifies on
// every save through the incremental engine (internal/incr) — only the
// submodels an edit can affect re-execute — and prints the delta: changed
// units, the submodel reuse ratio, and violations that appeared or
// disappeared (with -json, one NDJSON record per rebuild including the
// submodel-cache counters).
//
// Exit status: 0 when every assertion holds, 1 on violations, 2 on usage
// or front-end errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"p4assert"
	"p4assert/internal/core"
	"p4assert/internal/service"
	"p4assert/internal/telemetry"
)

func main() {
	var (
		rulesFile = flag.String("rules", "", "forwarding-rule file (control-plane configuration)")
		o3        = flag.Bool("O3", false, "apply compiler optimization passes to the model")
		optFlag   = flag.Bool("opt", false, "enable executor-level optimizations")
		slice     = flag.Bool("slice", false, "apply program slicing w.r.t. the assertions")
		parallel  = flag.Int("parallel", 0, "split into submodels on N workers (0 = sequential)")
		maxPaths  = flag.Int64("max-paths", 0, "abort after exploring this many paths (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "abort exploration after this duration (0 = none)")
		loops     = flag.Int("max-parser-loops", 0, "parser loop unroll bound (default 8)")
		quiet     = flag.Bool("q", false, "print only the verdict line")
		autoValid = flag.Bool("auto-validity", false, "instrument header accesses with automatic validity assertions")
		genTests  = flag.Bool("gen-tests", false, "generate one concrete test case per execution path and exit")
		dumpModel = flag.Bool("dump-model", false, "print the translated verification model (pseudo-C) and exit")
		jsonOut   = flag.Bool("json", false, "emit the machine-readable report (core.Report JSON) instead of text")
		remote    = flag.String("remote", "", "offload to a p4served daemon at this address (e.g. http://127.0.0.1:9464)")
		follow    = flag.Bool("follow", false, "with -remote: stream the job's live progress feed to stderr while it runs")
		watch     = flag.Bool("watch", false, "re-verify incrementally on every save, printing only the delta")
		watchIvl  = flag.Duration("watch-interval", 200*time.Millisecond, "poll interval for -watch")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event file (Perfetto-loadable) of the pipeline span tree")
		diffFile  = flag.String("diff", "", "check behavioral equivalence against this second program version (exit 0 equivalent, 1 divergent)")
		rulesBF   = flag.String("rules-b", "", "forwarding-rule file for the -diff side (defaults to -rules)")
		suiteOut  = flag.String("suite", "", "generate a test-packet suite (one case per path) and write it as JSON to this file ('-' = stdout)")
		replayIn  = flag.String("replay", "", "replay a generated test-packet suite (JSON) against the program and report mismatches")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: p4verify [flags] program.p4\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *follow && *remote == "" {
		fmt.Fprintln(os.Stderr, "p4verify: -follow streams a remote job's progress feed and requires -remote")
		os.Exit(2)
	}

	opts := &p4assert.Options{
		O3:                 *o3,
		Opt:                *optFlag,
		Slice:              *slice,
		Parallel:           *parallel,
		MaxPaths:           *maxPaths,
		Timeout:            *timeout,
		MaxParserLoops:     *loops,
		AutoValidityChecks: *autoValid,
	}
	rulesText := ""
	if *rulesFile != "" {
		data, err := os.ReadFile(*rulesFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			os.Exit(2)
		}
		rulesText = string(data)
		rs, err := p4assert.ParseRules(rulesText)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			os.Exit(2)
		}
		opts.Rules = rs
	}

	// -trace records the span tree of the local pipeline, or — with
	// -remote -follow — replays the remote pipeline's tree from the
	// streamed events. It excludes the modes that never produce one
	// (non-followed remote offload, watch loops, model dumps).
	ctx := context.Background()
	var tr *telemetry.Trace
	if *traceOut != "" {
		if (*remote != "" && !*follow) || *watch || *dumpModel || *genTests || *diffFile != "" || *suiteOut != "" || *replayIn != "" {
			fmt.Fprintln(os.Stderr, "p4verify: -trace records a single verification (local, or -remote with -follow) and excludes -watch, -dump-model, -gen-tests, -diff, -suite and -replay")
			os.Exit(2)
		}
		if *remote == "" {
			tr = telemetry.NewTrace()
			ctx = telemetry.WithTrace(ctx, tr)
		}
	}

	if *watch {
		if *remote != "" || *dumpModel || *genTests {
			fmt.Fprintln(os.Stderr, "p4verify: -watch is local-only and excludes -remote, -dump-model and -gen-tests")
			os.Exit(2)
		}
		runWatch(flag.Arg(0), rulesText, coreTechniques(opts), *jsonOut, *watchIvl)
		return
	}

	if *diffFile != "" {
		if *remote != "" || *dumpModel || *genTests || *suiteOut != "" || *replayIn != "" {
			fmt.Fprintln(os.Stderr, "p4verify: -diff is local-only and excludes -remote, -dump-model, -gen-tests, -suite and -replay")
			os.Exit(2)
		}
		rulesBText := rulesText
		if *rulesBF != "" {
			data, err := os.ReadFile(*rulesBF)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p4verify:", err)
				os.Exit(2)
			}
			rulesBText = string(data)
		}
		os.Exit(runDiff(ctx, flag.Arg(0), *diffFile, rulesText, rulesBText, opts, *jsonOut, *quiet))
	}

	if *suiteOut != "" || *replayIn != "" {
		if *remote != "" || *dumpModel || *genTests || (*suiteOut != "" && *replayIn != "") {
			fmt.Fprintln(os.Stderr, "p4verify: -suite and -replay are local-only, mutually exclusive, and exclude -remote, -dump-model and -gen-tests")
			os.Exit(2)
		}
		if *suiteOut != "" {
			os.Exit(runSuiteGen(flag.Arg(0), *suiteOut, opts))
		}
		os.Exit(runSuiteReplay(flag.Arg(0), *replayIn, opts, *jsonOut))
	}

	if *remote != "" || *jsonOut {
		code := runCoreMode(ctx, *remote, *jsonOut, *follow, flag.Arg(0), rulesText, coreTechniques(opts), *traceOut)
		writeTrace(tr, *traceOut)
		os.Exit(code)
	}

	if *dumpModel || *genTests {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			os.Exit(2)
		}
		if *dumpModel {
			dump, err := p4assert.DumpModel(flag.Arg(0), string(data), opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p4verify:", err)
				os.Exit(2)
			}
			fmt.Print(dump)
			return
		}
		tests, err := p4assert.GenerateTests(flag.Arg(0), string(data), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			os.Exit(2)
		}
		fmt.Printf("# %d test cases (one per execution path)\n", len(tests))
		for i := range tests {
			fmt.Printf("%d: %s\n", i, tests[i].String())
		}
		return
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		os.Exit(2)
	}
	rep, err := p4assert.VerifyCtx(ctx, flag.Arg(0), string(src), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		os.Exit(2)
	}
	writeTrace(tr, *traceOut)

	if rep.SliceFailed != nil {
		fmt.Fprintf(os.Stderr, "p4verify: slicing unavailable (%v); verified unsliced\n", rep.SliceFailed)
	}
	status := "OK"
	if rep.Exhausted {
		status = "EXHAUSTED"
	}
	if len(rep.Violations) > 0 {
		status = "FAIL"
	}
	fmt.Printf("%s: %d assertion(s), %d violated; %d paths, %d instructions, %s\n",
		status, rep.AssertionCount, len(rep.Violations),
		rep.Stats.Paths, rep.Stats.Instructions, rep.Stats.Time.Round(time.Millisecond))
	if !*quiet {
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
			if len(v.Trace) > 0 {
				fmt.Printf("    trace: %v\n", v.Trace)
			}
		}
		if rep.Stats.Submodels > 0 {
			fmt.Printf("  submodels: %d (worst %d instructions)\n",
				rep.Stats.Submodels, rep.Stats.WorstSubmodelInstructions)
		}
	}
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}

// coreTechniques maps the CLI flag set onto the service wire form, so the
// local -json path and the -remote path verify under identical options.
func coreTechniques(o *p4assert.Options) service.Techniques {
	t := service.Techniques{
		O3:                 o.O3,
		Opt:                o.Opt,
		Slice:              o.Slice,
		Parallel:           o.Parallel,
		MaxParserLoops:     o.MaxParserLoops,
		MaxPaths:           o.MaxPaths,
		AutoValidityChecks: o.AutoValidityChecks,
	}
	if o.Timeout > 0 {
		t.Timeout = o.Timeout.String()
	}
	return t
}

// runCoreMode handles -json and -remote: both work in terms of core.Report
// (the serialization shared with the service) rather than the summary-only
// p4assert.Report. It returns the exit status rather than exiting so the
// caller can flush a -trace file first: 0 ok, 1 violations, 2 front-end or
// transport errors.
func runCoreMode(ctx context.Context, remoteAddr string, jsonOut, follow bool, file, rulesText string, tech service.Techniques, traceOut string) int {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}

	var rep *core.Report
	if remoteAddr != "" {
		client := &service.Client{Base: remoteAddr}
		jr := service.JobRequest{
			Filename: file,
			Source:   string(data),
			Rules:    rulesText,
			Options:  tech,
		}
		if follow {
			rep, err = followVerify(ctx, client, jr, traceOut)
		} else {
			rep, _, err = client.Verify(ctx, jr)
		}
	} else {
		var opts core.Options
		opts, err = tech.CoreOptions(rulesText)
		if err == nil {
			rep, err = core.VerifySourceCtx(ctx, file, string(data), opts)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify:", err)
		return 2
	}

	if jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4verify:", err)
			return 2
		}
		fmt.Println(string(out))
	} else {
		if rep.SliceErr != nil {
			fmt.Fprintf(os.Stderr, "p4verify: slicing unavailable (%v); verified unsliced\n", rep.SliceErr)
		}
		fmt.Println(rep.Summary())
	}
	if len(rep.Violations) > 0 {
		return 1
	}
	return 0
}

// writeTrace exports the recorded span tree as a Chrome trace-event file
// (chrome://tracing, https://ui.perfetto.dev). No-op without -trace.
func writeTrace(tr *telemetry.Trace, path string) {
	if tr == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4verify: -trace:", err)
		return
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		fmt.Fprintln(os.Stderr, "p4verify: -trace:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "p4verify: -trace:", err)
	}
}
