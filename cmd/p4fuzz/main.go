// Command p4fuzz differentially fuzzes the verification pipeline: it
// generates random, well-typed, assertion-annotated P4_16 programs
// (internal/fuzzgen) and checks each against the oracle battery of
// internal/difftest — symbolic-vs-concrete replay of every explored path
// and counterexample, verdict-set invariance across the technique matrix
// (baseline, -O3, -opt, -slice, -parallel), and rules-vs-symbolic
// violation inclusion.
//
// Usage:
//
//	p4fuzz [flags]
//
// Runs are reproducible: the program for iteration i is derived purely
// from -seed + i, so a reported failing seed regenerates its program
// exactly. On a failure, -minimize shrinks the program by iterative
// statement deletion before printing it. With -emit FILE, the reproducer
// source is written to FILE and the baseline verification report of a
// re-check of that reproducer is written next to it as FILE.report.json
// in the machine-readable core.Report form shared with p4verify -json and
// the verification service.
//
// Exit status: 0 when all programs pass, 1 on an oracle mismatch, 2 on
// usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/difftest"
	"p4assert/internal/fuzzgen"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "base seed; iteration i checks program Generate(seed+i)")
		count    = flag.Uint64("count", 100, "number of programs to generate and check")
		minimize = flag.Bool("minimize", true, "shrink a failing program before printing it")
		shrinkN  = flag.Int("shrink-attempts", 400, "maximum candidate evaluations during minimization")
		keep     = flag.Bool("keep-going", false, "report all failures instead of stopping at the first")
		verbose  = flag.Bool("v", false, "print a line per checked program")
		emit     = flag.String("emit", "", "write each failing program's source to this file (last failure wins)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: p4fuzz [flags]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	var checked, skipped, tests, failures int
	var paths int64
	for i := uint64(0); i < *count; i++ {
		s := *seed + i
		p := fuzzgen.Generate(s)
		res, err := difftest.Check(p)
		checked++
		if res != nil {
			paths += res.Paths
			tests += res.Tests
			if res.Skipped {
				skipped++
			}
		}
		if err == nil {
			if *verbose {
				fmt.Printf("seed %d: ok (%d paths, %d tests, violated=%v)\n",
					s, res.Paths, res.Tests, res.Violated)
			}
			continue
		}
		failures++
		fmt.Printf("MISMATCH at seed %d: %v\n", s, err)
		if *minimize {
			m := difftest.Shrink(p, *shrinkN)
			if _, merr := difftest.Check(m); merr != nil {
				fmt.Printf("minimized program (still fails: %v):\n%s\n", merr, m.Source())
				p = m
			} else {
				fmt.Printf("program (minimization lost the failure; original shown):\n%s\n", p.Source())
			}
		} else {
			fmt.Printf("program:\n%s\n", p.Source())
		}
		if *emit != "" {
			if werr := os.WriteFile(*emit, []byte(p.Source()), 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "p4fuzz:", werr)
			}
			// Re-check the reproducer under baseline options and record the
			// report in the serialization shared with p4verify -json, so the
			// mismatch evidence can be diffed and replayed by tooling.
			rep, rerr := core.VerifySource(p.Name()+".p4", p.Source(),
				core.Options{MaxPaths: difftest.DefaultMaxPaths})
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "p4fuzz: reproducer re-check:", rerr)
			} else if data, jerr := json.MarshalIndent(rep, "", "  "); jerr != nil {
				fmt.Fprintln(os.Stderr, "p4fuzz:", jerr)
			} else if werr := os.WriteFile(*emit+".report.json", append(data, '\n'), 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "p4fuzz:", werr)
			}
		}
		if !*keep {
			break
		}
	}

	fmt.Printf("p4fuzz: %d programs checked (%d skipped), %d paths, %d path tests replayed, %d failure(s), %s\n",
		checked, skipped, paths, tests, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}
