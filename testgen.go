package p4assert

import (
	"fmt"
	"strings"

	"p4assert/internal/core"
)

// TestCase is one generated end-to-end test for a P4 program: a concrete
// input packet driving one specific execution path, together with the
// expected observable behaviour. This implements the test-case generation
// the paper describes as ongoing work in §6 ("we use a packet generator to
// systematically generate test cases", the role of p4pktgen).
type TestCase struct {
	// Inputs assigns concrete values to the packet fields and metadata
	// the path depends on (unlisted inputs are unconstrained; zero works).
	Inputs map[string]uint64
	// Trace is the sequence of table/action decisions the packet takes.
	Trace []string
	// Forwarded reports whether the packet leaves the switch.
	Forwarded bool
	// EgressSpec is the egress port the pipeline selects.
	EgressSpec uint64
	// FailedAsserts counts assertions that fail on this input (non-empty
	// test cases double as regression reproducers for found bugs).
	FailedAsserts int
}

// String renders the test case as one line.
func (tc *TestCase) String() string {
	verdict := "dropped"
	if tc.Forwarded {
		verdict = fmt.Sprintf("forwarded to port %d", tc.EgressSpec)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "input{%s} -> %s", FormatCounterexample(tc.Inputs), verdict)
	if len(tc.Trace) > 0 {
		fmt.Fprintf(&b, " via %v", tc.Trace)
	}
	if tc.FailedAsserts > 0 {
		fmt.Fprintf(&b, " [%d assertion failure(s)]", tc.FailedAsserts)
	}
	return b.String()
}

// DumpModel translates the program and renders the verification model as
// pseudo-C — the equivalent of inspecting the C model the paper's
// prototype generates (Fig. 6). Optimization and slicing options are
// applied first, so the dump shows exactly what the executor would run.
func DumpModel(filename, source string, opts *Options) (string, error) {
	if opts == nil {
		opts = &Options{}
	}
	co := core.Options{
		O3:                 opts.O3,
		Opt:                opts.Opt,
		Slice:              opts.Slice,
		AutoValidityChecks: opts.AutoValidityChecks,
		MaxPaths:           1, // translation only; stop execution immediately
	}
	if opts.Rules != nil {
		co.Rules = opts.Rules.rs
	}
	rep, err := core.VerifySource(filename, source, co)
	if err != nil {
		return "", err
	}
	return rep.Model.Dump(), nil
}

// GenerateTests explores every execution path of the program and returns
// one concrete test case per path, with expected outputs computed by the
// concrete model interpreter. Options.Rules and the optimization flags are
// honored; Parallel is ignored (tests come from the sequential engine).
func GenerateTests(filename, source string, opts *Options) ([]TestCase, error) {
	if opts == nil {
		opts = &Options{}
	}
	co := core.Options{
		O3:                 opts.O3,
		Opt:                opts.Opt,
		MaxCallDepth:       opts.MaxParserLoops,
		MaxPaths:           opts.MaxPaths,
		Timeout:            opts.Timeout,
		AutoValidityChecks: opts.AutoValidityChecks,
	}
	if opts.Rules != nil {
		co.Rules = opts.Rules.rs
	}
	cases, err := core.GenerateTestsSource(filename, source, co)
	if err != nil {
		return nil, err
	}
	out := make([]TestCase, len(cases))
	for i, c := range cases {
		out[i] = TestCase{
			Inputs:        c.Inputs,
			Trace:         c.Trace,
			Forwarded:     c.Forwarded,
			EgressSpec:    c.EgressSpec,
			FailedAsserts: len(c.FailedAsserts),
		}
	}
	return out, nil
}
