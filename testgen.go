package p4assert

import (
	"fmt"
	"strconv"
	"strings"

	"p4assert/internal/core"
)

// TestCase is one generated end-to-end test for a P4 program: a concrete
// input packet driving one specific execution path, together with the
// expected observable behaviour. This implements the test-case generation
// the paper describes as ongoing work in §6 ("we use a packet generator to
// systematically generate test cases", the role of p4pktgen).
type TestCase struct {
	// Inputs assigns concrete values to the packet fields and metadata
	// the path depends on (unlisted inputs are unconstrained; zero works).
	Inputs map[string]uint64
	// Trace is the sequence of table/action decisions the packet takes.
	Trace []string
	// Halted reports that the parser rejected the packet.
	Halted bool
	// Forwarded reports whether the packet leaves the switch.
	Forwarded bool
	// EgressSpec is the egress port the pipeline selects.
	EgressSpec uint64
	// FailedAsserts counts assertions that fail on this input (non-empty
	// test cases double as regression reproducers for found bugs).
	FailedAsserts int
}

// String renders the test case as one line.
func (tc *TestCase) String() string {
	verdict := "dropped"
	if tc.Halted {
		verdict = "rejected by parser"
	}
	if tc.Forwarded {
		verdict = fmt.Sprintf("forwarded to port %d", tc.EgressSpec)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "input{%s} -> %s", FormatCounterexample(tc.Inputs), verdict)
	if len(tc.Trace) > 0 {
		fmt.Fprintf(&b, " via %v", tc.Trace)
	}
	if tc.FailedAsserts > 0 {
		fmt.Fprintf(&b, " [%d assertion failure(s)]", tc.FailedAsserts)
	}
	return b.String()
}

// DumpModel translates the program and renders the verification model as
// pseudo-C — the equivalent of inspecting the C model the paper's
// prototype generates (Fig. 6). Optimization and slicing options are
// applied first, so the dump shows exactly what the executor would run.
func DumpModel(filename, source string, opts *Options) (string, error) {
	if opts == nil {
		opts = &Options{}
	}
	co := core.Options{
		O3:                 opts.O3,
		Opt:                opts.Opt,
		Slice:              opts.Slice,
		AutoValidityChecks: opts.AutoValidityChecks,
		MaxPaths:           1, // translation only; stop execution immediately
	}
	if opts.Rules != nil {
		co.Rules = opts.Rules.rs
	}
	rep, err := core.VerifySource(filename, source, co)
	if err != nil {
		return "", err
	}
	return rep.Model.Dump(), nil
}

// GenerateTests explores every execution path of the program and returns
// one concrete test case per path, with expected outputs computed by the
// concrete model interpreter. Options.Rules and the optimization flags are
// honored; Parallel is ignored (tests come from the sequential engine).
func GenerateTests(filename, source string, opts *Options) ([]TestCase, error) {
	if opts == nil {
		opts = &Options{}
	}
	cases, err := core.GenerateTestsSource(filename, source, testOptions(opts))
	if err != nil {
		return nil, err
	}
	out := make([]TestCase, len(cases))
	for i, c := range cases {
		out[i] = TestCase{
			Inputs:        c.Inputs,
			Trace:         c.Trace,
			Halted:        c.Halted,
			Forwarded:     c.Forwarded,
			EgressSpec:    c.EgressSpec,
			FailedAsserts: len(c.FailedAsserts),
		}
	}
	return out, nil
}

// testOptions maps the public options onto the core pipeline for test
// generation and replay. Slicing is excluded: a slice preserves assertion
// verdicts, not the packet-level outputs a test suite asserts on.
func testOptions(opts *Options) core.Options {
	co := core.Options{
		O3:                 opts.O3,
		Opt:                opts.Opt,
		MaxCallDepth:       opts.MaxParserLoops,
		MaxPaths:           opts.MaxPaths,
		Timeout:            opts.Timeout,
		AutoValidityChecks: opts.AutoValidityChecks,
	}
	if opts.Rules != nil {
		co.Rules = opts.Rules.rs
	}
	return co
}

// TestSuite is the serializable (JSON) form of a generated test-packet
// suite: the P4Testgen-style artifact pairing each explored path with one
// concrete input packet, its expected pipeline decisions, and its expected
// outputs. Values are hex strings so suites diff cleanly and survive
// JSON's float64 round-trip for 64-bit inputs.
type TestSuite struct {
	// Program is the source filename the suite was generated from.
	Program string `json:"program"`
	// Paths records how many execution paths the generator explored
	// (equal to len(Cases) for an exhaustive run).
	Paths int64 `json:"paths"`
	// Cases holds one test per explored path.
	Cases []SuiteCase `json:"cases"`
}

// SuiteCase is one serialized test case.
type SuiteCase struct {
	// Inputs maps symbolic input names ("hdr.ipv4.ttl#1") to hex values.
	Inputs map[string]string `json:"inputs,omitempty"`
	// Trace is the expected sequence of table/action decisions.
	Trace []string `json:"trace,omitempty"`
	// Halted marks packets the parser rejects.
	Halted bool `json:"halted,omitempty"`
	// Forwarded reports whether the packet leaves the switch.
	Forwarded bool `json:"forwarded"`
	// EgressSpec is the expected egress port, hex.
	EgressSpec string `json:"egress_spec"`
	// FailedAsserts lists assertion IDs expected to fail on this input.
	FailedAsserts []int `json:"failed_asserts,omitempty"`
}

// GenerateSuite explores every execution path and returns the serializable
// test suite: one concrete packet per path with expected trace and outputs.
func GenerateSuite(filename, source string, opts *Options) (*TestSuite, error) {
	if opts == nil {
		opts = &Options{}
	}
	cases, err := core.GenerateTestsSource(filename, source, testOptions(opts))
	if err != nil {
		return nil, err
	}
	suite := &TestSuite{Program: filename, Paths: int64(len(cases))}
	for _, c := range cases {
		sc := SuiteCase{
			Trace:         c.Trace,
			Halted:        c.Halted,
			Forwarded:     c.Forwarded,
			EgressSpec:    "0x" + strconv.FormatUint(c.EgressSpec, 16),
			FailedAsserts: c.FailedAsserts,
		}
		if len(c.Inputs) > 0 {
			sc.Inputs = make(map[string]string, len(c.Inputs))
			for k, v := range c.Inputs {
				sc.Inputs[k] = "0x" + strconv.FormatUint(v, 16)
			}
		}
		suite.Cases = append(suite.Cases, sc)
	}
	return suite, nil
}

// SuiteReplay reports replaying a suite against a program through the
// compiled batch interpreter.
type SuiteReplay struct {
	// Cases is the number of replayed test cases.
	Cases int `json:"cases"`
	// Mismatches describes cases whose concrete outcome disagreed with
	// the suite's expectations (empty = the suite passes).
	Mismatches []string `json:"mismatches,omitempty"`
	// Instructions totals interpreted instructions across the replay.
	Instructions int64 `json:"instructions"`
}

// Ok reports whether every case replayed to its expected outcome.
func (r *SuiteReplay) Ok() bool { return len(r.Mismatches) == 0 }

// ReplaySuite replays a generated suite against the program as a concrete
// oracle: the program is rebuilt under the same options the suite was
// generated with, compiled once, and every case's packet is pushed through
// the batch interpreter, checking trace conformance and expected outputs.
func ReplaySuite(filename, source string, suite *TestSuite, opts *Options) (*SuiteReplay, error) {
	if opts == nil {
		opts = &Options{}
	}
	co := testOptions(opts)
	m, err := core.BuildModel(filename, source, co)
	if err != nil {
		return nil, err
	}
	m, err = core.ApplyModelPasses(m, co)
	if err != nil {
		return nil, err
	}
	cases := make([]core.TestCase, len(suite.Cases))
	for i, sc := range suite.Cases {
		tc := core.TestCase{
			Trace:         sc.Trace,
			Halted:        sc.Halted,
			Forwarded:     sc.Forwarded,
			FailedAsserts: sc.FailedAsserts,
		}
		if tc.EgressSpec, err = parseHex(sc.EgressSpec); err != nil {
			return nil, fmt.Errorf("case %d: egress_spec: %w", i, err)
		}
		if len(sc.Inputs) > 0 {
			tc.Inputs = make(map[string]uint64, len(sc.Inputs))
			for k, v := range sc.Inputs {
				if tc.Inputs[k], err = parseHex(v); err != nil {
					return nil, fmt.Errorf("case %d: input %s: %w", i, k, err)
				}
			}
		}
		cases[i] = tc
	}
	rep, err := core.ReplayBatch(m, cases)
	if err != nil {
		return nil, err
	}
	out := &SuiteReplay{Cases: rep.Cases, Instructions: rep.Instructions}
	for _, mm := range rep.Mismatches {
		out.Mismatches = append(out.Mismatches, mm.String())
	}
	return out, nil
}

func parseHex(s string) (uint64, error) {
	if len(s) > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 0, 64)
}
