module p4assert

go 1.22
