package p4assert_test

import (
	"encoding/json"
	"strings"
	"testing"

	"p4assert"
	"p4assert/internal/progs"
)

func TestGenerateTestsCoversAllPaths(t *testing.T) {
	tests, err := p4assert.GenerateTests("quick.p4", quickProgram, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p4assert.Verify("quick.p4", quickProgram, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(tests)) != rep.Stats.Paths {
		t.Fatalf("generated %d tests for %d paths", len(tests), rep.Stats.Paths)
	}
	// Both pipeline outcomes (forward via fwd, drop via drop) must appear.
	var forwarded, dropped bool
	for _, tc := range tests {
		if tc.Forwarded {
			forwarded = true
		} else {
			dropped = true
		}
		if tc.String() == "" {
			t.Fatal("empty rendering")
		}
	}
	if !forwarded || !dropped {
		t.Fatalf("tests do not cover both outcomes: forwarded=%v dropped=%v", forwarded, dropped)
	}
	// Path tests bind the inputs their path constrains: the forwarding
	// path goes through the table's fwd action, so its test must carry a
	// trace entry naming it.
	for _, tc := range tests {
		if tc.Forwarded {
			if len(tc.Trace) == 0 || !strings.Contains(tc.Trace[0], "fwd") {
				t.Fatalf("forwarded test lacks the fwd decision: %s", tc.String())
			}
		}
	}
}

func TestGenerateTestsOnCorpus(t *testing.T) {
	// Path-complete test suites for a correct program: every test runs the
	// concrete model without assertion failures.
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	tests, err := p4assert.GenerateTests("vss.p4", p.Source, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) == 0 {
		t.Fatal("no tests generated")
	}
	for i, tc := range tests {
		if tc.FailedAsserts != 0 {
			t.Fatalf("test %d fails assertions on a correct program: %s", i, tc.String())
		}
	}
}

func TestDumpModel(t *testing.T) {
	dump, err := p4assert.DumpModel("quick.p4", quickProgram, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"void I()", "void I.t()", "switch (symbolic", "klee_assert",
		"bit<8> hdr.ipv4.ttl", "$forward",
	} {
		if !strings.Contains(dump, frag) {
			t.Fatalf("dump missing %q:\n%s", frag, dump)
		}
	}
	// O3 dump is smaller.
	o3, err := p4assert.DumpModel("quick.p4", quickProgram, &p4assert.Options{O3: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(o3) >= len(dump) {
		t.Fatal("O3 dump should be smaller than the plain model")
	}
}

func TestAutoValidityChecks(t *testing.T) {
	// Strip the manual assertions from the Switch.p4 corpus program; the
	// automatic instrumentation must still find the invalid-header write.
	p, err := progs.Get("switchlite")
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(p.Source, "\n") {
		if strings.Contains(line, "@assert") {
			continue
		}
		kept = append(kept, line)
	}
	source := strings.Join(kept, "\n")

	// Without auto checks the stripped program "verifies".
	plain, err := p4assert.Verify("sw.p4", source, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Ok() {
		t.Fatalf("stripped program should have no manual assertions:\n%+v", plain.Violations)
	}

	// With auto checks the vlan-field write on an invalid header surfaces.
	auto, err := p4assert.Verify("sw.p4", source, &p4assert.Options{AutoValidityChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Ok() {
		t.Fatal("auto validity checks should find the invalid-header write")
	}
	found := false
	for _, v := range auto.Violations {
		if strings.Contains(v.Assertion, "auto: valid(hdr.vlan)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an auto vlan validity violation, got %+v", auto.Violations)
	}
}

func TestAutoValidityChecksCleanProgram(t *testing.T) {
	// A program that always validates headers before touching them should
	// stay clean under the instrumentation.
	src := `
header h_t { bit<8> v; }
struct hs { h_t h; }
struct ms { bit<8> x; }
parser P(packet_in pkt, out hs hdr, inout ms meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout hs hdr, inout ms meta,
          inout standard_metadata_t standard_metadata) {
    apply {
        if (hdr.h.isValid()) {
            hdr.h.v = hdr.h.v + 1;
        }
        meta.x = 3;
    }
}
control D(packet_out pkt, in hs hdr) { apply { pkt.emit(hdr.h); } }
V1Switch(P, I, D) main;
`
	rep, err := p4assert.Verify("clean.p4", src, &p4assert.Options{AutoValidityChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("validity-guarded program flagged:\n%+v", rep.Violations)
	}
}

func TestSuiteGenerateReplayRoundTrip(t *testing.T) {
	// The serialized suite must survive a JSON round-trip and replay
	// cleanly against the program it was generated from (batch oracle).
	for _, name := range []string{"vss", "fabric"} {
		p, err := progs.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		suite, err := p4assert.GenerateSuite(name+".p4", p.Source, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(suite.Cases) == 0 || suite.Paths != int64(len(suite.Cases)) {
			t.Fatalf("%s: malformed suite: %d cases, %d paths", name, len(suite.Cases), suite.Paths)
		}
		data, err := json.Marshal(suite)
		if err != nil {
			t.Fatal(err)
		}
		var decoded p4assert.TestSuite
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatal(err)
		}
		rep, err := p4assert.ReplaySuite(name+".p4", p.Source, &decoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("%s: suite replay mismatches: %v", name, rep.Mismatches)
		}
		if rep.Cases != len(suite.Cases) {
			t.Fatalf("%s: replayed %d of %d cases", name, rep.Cases, len(suite.Cases))
		}
	}
}

func TestSuiteReplayDetectsProgramChange(t *testing.T) {
	// A suite generated from one version replayed against an edited
	// version must flag the behavioral difference.
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	suite, err := p4assert.GenerateSuite("vss.p4", p.Source, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Redirect the CPU punt path to a different egress port.
	edited := strings.Replace(p.Source,
		"standard_metadata.egress_spec = CPU_OUT_PORT",
		"standard_metadata.egress_spec = 7", 1)
	if edited == p.Source {
		t.Skip("edit marker not found in vss source")
	}
	rep, err := p4assert.ReplaySuite("vss.p4", edited, suite, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("edited program should fail the original suite")
	}
}
