package p4assert_test

import (
	"strings"
	"testing"
	"time"

	"p4assert"
	"p4assert/internal/progs"
)

const quickProgram = `
header ipv4_t { bit<8> ttl; bit<32> dstAddr; }
struct headers_t { ipv4_t ipv4; }
struct meta_t { bit<1> u; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.ipv4); transition accept; }
}
control I(inout headers_t hdr, inout meta_t meta,
          inout standard_metadata_t standard_metadata) {
    action drop() { mark_to_drop(standard_metadata); }
    action fwd(bit<9> port) { standard_metadata.egress_spec = port; }
    table t {
        key = { hdr.ipv4.dstAddr : exact; }
        actions = { fwd; drop; }
        default_action = drop;
    }
    apply {
        t.apply();
        @assert("if(forward(), ipv4.ttl > 0)");
    }
}
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.ipv4); } }
V1Switch(P, I, D) main;
`

func TestVerifyFindsBug(t *testing.T) {
	rep, err := p4assert.Verify("quick.p4", quickProgram, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("expected a violation (forwarding without TTL check)")
	}
	if rep.AssertionCount != 1 || len(rep.Violations) != 1 {
		t.Fatalf("asserts=%d violations=%d", rep.AssertionCount, len(rep.Violations))
	}
	v := rep.Violations[0]
	if !strings.Contains(v.Assertion, "forward()") {
		t.Fatalf("assertion text = %q", v.Assertion)
	}
	if v.Paths == 0 || len(v.Counterexample) == 0 {
		t.Fatalf("violation incomplete: %+v", v)
	}
	if !strings.Contains(v.String(), "counterexample") {
		t.Fatal("String() should mention the counterexample")
	}
	if rep.Stats.Paths == 0 || rep.Stats.Instructions == 0 || rep.Stats.Time <= 0 {
		t.Fatalf("stats incomplete: %+v", rep.Stats)
	}
}

func TestVerifyWithRules(t *testing.T) {
	rs, err := p4assert.ParseRules(`
# drop everything: the assertion then holds
t drop *
`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRules() != 1 {
		t.Fatalf("NumRules = %d", rs.NumRules())
	}
	rep, err := p4assert.Verify("quick.p4", quickProgram, &p4assert.Options{Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatal("drop-all configuration should verify")
	}
}

func TestVerifyOptionPlumbing(t *testing.T) {
	for _, opts := range []*p4assert.Options{
		{O3: true},
		{Opt: true},
		{Slice: true},
		{Parallel: 2},
	} {
		rep, err := p4assert.Verify("quick.p4", quickProgram, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if rep.Ok() {
			t.Fatalf("%+v: should still find the bug", opts)
		}
	}
	par, _ := p4assert.Verify("quick.p4", quickProgram, &p4assert.Options{Parallel: 2})
	if par.Stats.Submodels < 2 {
		t.Fatalf("parallel run should report submodels, got %d", par.Stats.Submodels)
	}
}

func TestVerifyParseError(t *testing.T) {
	if _, err := p4assert.Verify("bad.p4", "header {", nil); err == nil {
		t.Fatal("syntax error should be reported")
	}
}

func TestVerifyFile(t *testing.T) {
	if _, err := p4assert.VerifyFile("/nonexistent/x.p4", nil); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestTimeoutExhausts(t *testing.T) {
	p, err := progs.Get("dapper")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p4assert.Verify("dapper.p4", p.Source, &p4assert.Options{MaxPaths: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exhausted {
		t.Fatal("MaxPaths=1 should exhaust on Dapper")
	}
	if rep.Ok() {
		t.Fatal("an exhausted run must not claim Ok")
	}
	_ = time.Now()
}

func TestSliceFailureSurfaces(t *testing.T) {
	p, err := progs.Get("mri")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p4assert.Verify("mri.p4", p.Source, &p4assert.Options{Slice: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SliceFailed == nil {
		t.Fatal("MRI slicing failure should surface in the report")
	}
	if !rep.Ok() {
		t.Fatal("MRI should verify unsliced")
	}
}
