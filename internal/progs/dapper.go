package progs

// Dapper re-implements the data-plane TCP performance diagnosis pipeline of
// Ghasemi et al. [11] at reduced scale: per-flow state in registers, SYN/ACK
// handling, and an IPv4 forwarding stage.
//
// The paper's §5.1 finding is reproduced: Dapper decrements the IPv4 TTL
// but never checks it before forwarding, so the assertion
// if(ipv4.ttl == 0, !forward()) — assertion ID 0, placed at the beginning
// of the ingress block exactly as in the paper — is violated. The two
// Table 1 register-manipulation properties hold.
var Dapper = register(&Program{
	Name:               "dapper",
	Title:              "Dapper (TCP diagnosis)",
	ExpectedViolations: []int{0},
	// The §4.1 scenario: the developer checks properties of connection
	// setup only, so verification is constrained to SYN packets.
	Constraint: "@assume(hdr.tcp.syn == 1);",
	Notes: "TTL-zero forwarding bug (paper §5.1): IPv4 TTL is decremented " +
		"but never checked before forwarding.",
	Source: `
const bit<16> TYPE_IPV4 = 0x0800;
const bit<8> PROTO_TCP = 6;
const bit<32> FLOW_SLOTS = 8;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header tcp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<32> seqNo;
    bit<32> ackNo;
    bit<4>  dataOffset;
    bit<4>  res;
    bit<1>  cwr;
    bit<1>  ece;
    bit<1>  urg;
    bit<1>  ack;
    bit<1>  psh;
    bit<1>  rst;
    bit<1>  syn;
    bit<1>  fin;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgentPtr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    tcp_t tcp;
}

struct metadata_t {
    bit<32> flow_idx;
    bit<32> flow_seq;
    bit<32> flow_ack;
    bit<8>  flow_state;
    bit<32> mss_est;
}

parser DapperParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                    inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            PROTO_TCP: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        // constraint-point
        transition accept;
    }
}

control DapperIngress(inout headers_t hdr, inout metadata_t meta,
                      inout standard_metadata_t standard_metadata) {
    register<bit<32>>(8) flow_seq_reg;
    register<bit<32>>(8) flow_ack_reg;
    register<bit<8>>(8) flow_state_reg;
    register<bit<32>>(8) srtt_reg;

    action nop() { }
    action set_nhop(bit<9> port, bit<48> dmac) {
        standard_metadata.egress_spec = port;
        hdr.ethernet.dstAddr = dmac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    action drop_packet() {
        mark_to_drop(standard_metadata);
    }
    table ipv4_fib {
        key = { hdr.ipv4.dstAddr : lpm; }
        actions = { set_nhop; drop_packet; nop; }
        default_action = drop_packet;
    }
    action mark_flow(bit<8> class) {
        hdr.ipv4.diffserv = class;
    }
    table l4_acl {
        key = { hdr.tcp.dstPort : exact; }
        actions = { drop_packet; mark_flow; nop; }
        default_action = nop;
    }
    action set_queue(bit<3> q) {
        standard_metadata.priority = q;
    }
    action police() {
        hdr.ipv4.diffserv = hdr.ipv4.diffserv & 0xFC;
    }
    table qos {
        key = { hdr.ipv4.diffserv : ternary; }
        actions = { set_queue; police; nop; }
        default_action = nop;
    }

    apply {
        // Paper §5.1: "We placed a set of basic assertions at the
        // beginning of the ingress control block".
        @assert("if(ipv4.ttl == 0, !forward())");

        if (hdr.tcp.isValid()) {
            meta.flow_idx = (hdr.ipv4.srcAddr ^ hdr.ipv4.dstAddr) % FLOW_SLOTS;
            if (hdr.tcp.syn == 1) {
                // New flow: record the initial sequence state.
                @assert("if(traverse_path(), tcp.syn == 1)");
                flow_state_reg.write(meta.flow_idx, 1);
                flow_seq_reg.write(meta.flow_idx, hdr.tcp.seqNo);
                srtt_reg.write(meta.flow_idx, 0);
            } else {
                if (hdr.tcp.ack == 1) {
                    // Established flow: load the recorded state.
                    @assert("if(traverse_path(), tcp.ack == 1)");
                    flow_state_reg.read(meta.flow_state, meta.flow_idx);
                    flow_seq_reg.read(meta.flow_seq, meta.flow_idx);
                    flow_ack_reg.read(meta.flow_ack, meta.flow_idx);
                    if (meta.flow_state == 1) {
                        // Handshake completion: estimate flight size.
                        if (hdr.tcp.ackNo > meta.flow_seq) {
                            meta.mss_est = hdr.tcp.ackNo - meta.flow_seq;
                        }
                        flow_state_reg.write(meta.flow_idx, 2);
                    } else {
                        flow_ack_reg.write(meta.flow_idx, hdr.tcp.ackNo);
                    }
                }
                if (hdr.tcp.fin == 1 || hdr.tcp.rst == 1) {
                    flow_state_reg.write(meta.flow_idx, 0);
                }
            }
        }
        if (hdr.tcp.isValid()) {
            l4_acl.apply();
            if (hdr.tcp.window == 0) {
                // Zero-window: receiver-limited flow; remember it.
                flow_state_reg.write(meta.flow_idx, 3);
            }
        }
        if (hdr.ipv4.isValid()) {
            qos.apply();
            ipv4_fib.apply();
        }
    }
}

control DapperEgress(inout headers_t hdr, inout metadata_t meta,
                     inout standard_metadata_t standard_metadata) {
    counter(4, CounterType.packets) port_pkts;
    action sample() {
        hdr.ipv4.diffserv = hdr.ipv4.diffserv | 0x1;
    }
    action no_sample() { }
    table monitor {
        key = { standard_metadata.egress_spec : exact; }
        actions = { sample; no_sample; }
        default_action = no_sample;
    }
    apply {
        if (hdr.ipv4.isValid()) {
            port_pkts.count((bit<32>)standard_metadata.egress_spec % 4);
            monitor.apply();
            if (hdr.tcp.isValid() && hdr.tcp.ece == 1) {
                // Congestion experienced: record the flow as limited.
                hdr.ipv4.diffserv = hdr.ipv4.diffserv | 0x3;
            }
        }
    }
}

control DapperDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
    }
}

V1Switch(DapperParser, DapperIngress, DapperEgress, DapperDeparser) main;
`,
})
