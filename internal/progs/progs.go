// Package progs embeds the P4 application corpus used throughout the
// paper's evaluation (§5): VSS, MRI, Timestamp switching, sTag, Dapper,
// NetPaxos, a DC.p4-style datacenter switch, a Switch.p4-style program with
// its two reported bugs, and the two motivating examples of §2. Each
// program is a faithful reduced re-implementation in the supported P4_16
// subset, annotated with the assertions the paper reports (Table 1), and —
// where the paper found a bug — containing that bug.
package progs

import (
	"fmt"
	"sort"
	"strings"
)

// Program is one corpus entry.
type Program struct {
	// Name is the registry key (e.g. "dapper").
	Name string
	// Title is the paper's name for the application.
	Title string
	// Source is the annotated P4_16 program text.
	Source string
	// Rules, when non-empty, is the default forwarding-rule file
	// (internal/rules text format) the paper's scenario assumes.
	Rules string
	// FixedRules, when non-empty, is an alternative configuration under
	// which the program verifies (used for the DC.p4 misconfiguration
	// scenario, where completing the configuration removes the violation).
	FixedRules string
	// ExpectedViolations lists assertion IDs (declaration order) that the
	// paper's analysis finds violated; empty means the program verifies.
	ExpectedViolations []int
	// Constraint is an @assume statement focusing verification on the
	// traffic class of interest (the paper's §4.1 packet/control-flow
	// constraints). ConstrainedSource injects it at the source's
	// "// constraint-point" marker.
	Constraint string
	// Notes documents the scenario and, for buggy programs, the bug.
	Notes string
}

// ConstrainedSource returns the program with its §4.1 assumption injected
// at the constraint-point marker, or the plain source if the program
// defines no constraint.
func (p *Program) ConstrainedSource() string {
	if p.Constraint == "" {
		return p.Source
	}
	const marker = "// constraint-point"
	if !strings.Contains(p.Source, marker) {
		return p.Source
	}
	return strings.Replace(p.Source, marker, p.Constraint, 1)
}

var registry = map[string]*Program{}

func register(p *Program) *Program {
	if _, dup := registry[p.Name]; dup {
		panic("progs: duplicate program " + p.Name)
	}
	registry[p.Name] = p
	return p
}

// Get returns a corpus program by name.
func Get(name string) (*Program, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("progs: unknown program %q (have %v)", name, Names())
	}
	return p, nil
}

// Names returns all registry keys, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every corpus program, sorted by name.
func All() []*Program {
	names := Names()
	out := make([]*Program, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Table2Programs lists the programs evaluated in the paper's Table 2, in
// the paper's row order.
func Table2Programs() []*Program {
	var out []*Program
	for _, n := range []string{"dapper", "stag", "netpaxos", "ts_switching", "vss", "mri"} {
		p, _ := Get(n)
		out = append(out, p)
	}
	return out
}
