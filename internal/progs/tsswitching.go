package progs

// TSSwitching re-implements the timestamp-aware RTP video switching data
// plane of Edwards and Ciarleglio [10]: RTP flows are selected by SSRC and
// frames with out-of-range timestamps are dropped at the switch point.
//
// Table 1 property: out-of-range timestamps are not forwarded to
// receivers — if(forward(), rtp.ts < max_timestamp). Holds.
var TSSwitching = register(&Program{
	Name:       "ts_switching",
	Title:      "Timestamp switching (RTP video)",
	Constraint: "@assume(hdr.ethernet.etherType == 0x0800);",
	Notes:      "Correct program; the timestamp range check precedes forwarding.",
	Source: `
const bit<16> TYPE_IPV4 = 0x0800;
const bit<8> PROTO_UDP = 17;
const bit<16> RTP_PORT = 5004;
const bit<32> MAX_TIMESTAMP = 0x80000000;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header udp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<16> length;
    bit<16> checksum;
}

header rtp_t {
    bit<2>  version;
    bit<1>  padding;
    bit<1>  extension;
    bit<4>  csrcCount;
    bit<1>  marker;
    bit<7>  payloadType;
    bit<16> sequenceNumber;
    bit<32> ts;
    bit<32> ssrc;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    udp_t udp;
    rtp_t rtp;
}

struct metadata_t {
    bit<1> is_primary;
}

parser TsParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        // constraint-point
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            PROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dstPort) {
            RTP_PORT: parse_rtp;
            default: accept;
        }
    }
    state parse_rtp {
        pkt.extract(hdr.rtp);
        transition accept;
    }
}

control TsIngress(inout headers_t hdr, inout metadata_t meta,
                  inout standard_metadata_t standard_metadata) {
    action drop_packet() {
        mark_to_drop(standard_metadata);
    }
    action switch_to(bit<9> port, bit<1> primary) {
        standard_metadata.egress_spec = port;
        meta.is_primary = primary;
    }
    table source_select {
        key = { hdr.rtp.ssrc : exact; }
        actions = { switch_to; drop_packet; }
        default_action = drop_packet;
    }
    action buffer_short() { meta.is_primary = 1; }
    action buffer_long() { meta.is_primary = 0; }
    table jitter {
        key = { hdr.rtp.payloadType : exact; }
        actions = { buffer_short; buffer_long; NoAction; }
        default_action = NoAction;
    }
    action replicate(bit<16> group) {
        standard_metadata.mcast_grp = group;
    }
    table receivers {
        key = { standard_metadata.egress_spec : exact; }
        actions = { replicate; NoAction; }
        default_action = NoAction;
    }
    apply {
        @assert("if(forward(), rtp.ts < 0x80000000)");
        if (hdr.rtp.isValid()) {
            if (hdr.rtp.ts >= MAX_TIMESTAMP) {
                // Frames from a source whose clock ran out of range are
                // never switched to a receiver.
                drop_packet();
            } else {
                jitter.apply();
                source_select.apply();
                receivers.apply();
            }
        } else {
            drop_packet();
        }
    }
}

control TsDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.rtp);
    }
}

V1Switch(TsParser, TsIngress, TsDeparser) main;
`,
})
