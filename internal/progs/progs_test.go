package progs_test

import (
	"sort"
	"testing"

	"p4assert/internal/core"
	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

func verify(t *testing.T, p *progs.Program, ruleText string, opts core.Options) *core.Report {
	t.Helper()
	if ruleText != "" {
		rs, err := rules.Parse(ruleText)
		if err != nil {
			t.Fatalf("%s: rules: %v", p.Name, err)
		}
		opts.Rules = rs
	}
	rep, err := core.VerifySource(p.Name+".p4", p.Source, opts)
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	if rep.Exhausted {
		t.Fatalf("%s: exploration exhausted", p.Name)
	}
	return rep
}

func violatedIDs(rep *core.Report) []int {
	var ids []int
	for _, v := range rep.Violations {
		ids = append(ids, v.AssertID)
	}
	sort.Ints(ids)
	return ids
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCorpusExpectedViolations is the §5.1 bug-finding reproduction: every
// corpus program must report exactly the violations the paper found.
func TestCorpusExpectedViolations(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rep := verify(t, p, p.Rules, core.Options{})
			want := append([]int(nil), p.ExpectedViolations...)
			sort.Ints(want)
			got := violatedIDs(rep)
			if !equalInts(got, want) {
				t.Fatalf("%s: violated %v, want %v\n%s", p.Name, got, want, rep.Summary())
			}
		})
	}
}

// TestDCP4FixedConfiguration: completing the configuration (system ACL
// acting on the deny flag) removes the violation, confirming the finding
// is a misconfiguration rather than a data-plane bug.
func TestDCP4FixedConfiguration(t *testing.T) {
	p, err := progs.Get("dcp4")
	if err != nil {
		t.Fatal(err)
	}
	rep := verify(t, p, p.FixedRules, core.Options{})
	if len(rep.Violations) != 0 {
		t.Fatalf("dcp4 under FixedRules should verify:\n%s", rep.Summary())
	}
}

// TestMRISlicingFails reproduces the paper's Table 2 "-" entries: slicing
// must refuse MRI's recursive parser but verification still succeeds on
// the unsliced model.
func TestMRISlicingFails(t *testing.T) {
	p, err := progs.Get("mri")
	if err != nil {
		t.Fatal(err)
	}
	rep := verify(t, p, "", core.Options{Slice: true})
	if rep.SliceErr == nil {
		t.Fatal("slicing MRI should fail (recursive parser)")
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("MRI should still verify unsliced:\n%s", rep.Summary())
	}
}

// TestSlicingWorksOnNonRecursivePrograms: every other Table 2 program must
// slice successfully and keep its verdict.
func TestSlicingWorksOnNonRecursivePrograms(t *testing.T) {
	for _, p := range progs.Table2Programs() {
		if p.Name == "mri" {
			continue
		}
		rep := verify(t, p, p.Rules, core.Options{Slice: true})
		if rep.SliceErr != nil {
			t.Fatalf("%s: slicing failed: %v", p.Name, rep.SliceErr)
		}
		want := append([]int(nil), p.ExpectedViolations...)
		sort.Ints(want)
		if got := violatedIDs(rep); !equalInts(got, want) {
			t.Fatalf("%s sliced: violated %v, want %v", p.Name, got, want)
		}
	}
}

// TestTechniquesPreserveVerdicts runs the full §4 technique matrix over
// the corpus: verdicts must be identical under every configuration.
func TestTechniquesPreserveVerdicts(t *testing.T) {
	configs := []core.Options{
		{O3: true},
		{Opt: true},
		{Parallel: 4},
		{O3: true, Opt: true, Parallel: 4},
	}
	for _, p := range progs.All() {
		want := append([]int(nil), p.ExpectedViolations...)
		sort.Ints(want)
		for i, opts := range configs {
			rep := verify(t, p, p.Rules, opts)
			if got := violatedIDs(rep); !equalInts(got, want) {
				t.Fatalf("%s config %d: violated %v, want %v", p.Name, i, got, want)
			}
		}
	}
}

// TestCounterexamplesAreConcrete: the reported models must bind the
// packet fields that matter for each famous bug.
func TestCounterexamplesAreConcrete(t *testing.T) {
	p, _ := progs.Get("circumvent")
	rep := verify(t, p, "", core.Options{})
	if len(rep.Violations) == 0 {
		t.Fatal("circumvent should be violated")
	}
	// The counterexample must be a UDP packet to port 53.
	m := rep.Violations[0].Model
	found := false
	for k, v := range m {
		if v == 53 && (hasPrefix(k, "headers.udp.dstPort")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("counterexample should bind udp.dstPort=53: %v", m)
	}
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// TestConstrainedSourcesKeepVerdicts: the §4.1 assumption-annotated
// variants must parse and keep every expected violation (constraints focus
// verification, they must not hide the seeded bugs).
func TestConstrainedSourcesKeepVerdicts(t *testing.T) {
	for _, p := range progs.Table2Programs() {
		src := p.ConstrainedSource()
		if p.Constraint != "" && src == p.Source {
			t.Fatalf("%s: constraint not injected", p.Name)
		}
		rep := verify(t, &progs.Program{Name: p.Name, Source: src}, p.Rules, core.Options{})
		want := append([]int(nil), p.ExpectedViolations...)
		sort.Ints(want)
		if got := violatedIDs(rep); !equalInts(got, want) {
			t.Fatalf("%s constrained: violated %v, want %v", p.Name, got, want)
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(progs.All()) < 9 {
		t.Fatalf("corpus too small: %d", len(progs.All()))
	}
	if _, err := progs.Get("nope"); err == nil {
		t.Fatal("unknown program should error")
	}
	t2 := progs.Table2Programs()
	if len(t2) != 6 || t2[0].Name != "dapper" || t2[5].Name != "mri" {
		t.Fatal("Table 2 program order wrong")
	}
}
