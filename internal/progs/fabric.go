package progs

// Fabric is a leaf-spine datacenter fabric switch in the style of
// fabric.p4 (the ONOS/Trellis pipeline): VLAN-aware edge parsing, a
// six-way next-hop routing stage, an ACL, traffic-class marking, and an
// egress rewrite stage. It is the largest program in the corpus and the
// subject of the incremental-verification benchmark (cmd/p4bench
// -exp incremental): the routing table is the pipeline's first decision,
// so the submodel heuristic isolates each routing action in its own
// submodels and an edit to one action invalidates only those — the
// edit-verify-loop case internal/incr optimizes for.
//
// Both parser branches extract IPv4 (the VLAN path decapsulates to the
// same inner protocol), every header access is validity-safe, and both
// assertions hold by construction: the program verifies cleanly under
// every technique configuration.
var Fabric = register(&Program{
	Name:  "fabric",
	Title: "Fabric (leaf-spine switch)",
	Notes: "Clean verification scenario at production pipeline scale: " +
		"six-way routing dispatch, ACL, traffic classing and egress " +
		"rewrite. Benchmark subject for incremental re-verification.",
	Source: `
const bit<16> TYPE_VLAN = 0x8100;
const bit<16> TYPE_IPV4 = 0x0800;
const bit<9>  CPU_PORT = 255;
const bit<8>  DSCP_EF = 0x2E;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header vlan_t {
    bit<3>  pcp;
    bit<1>  cfi;
    bit<12> vid;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct headers_t {
    ethernet_t ethernet;
    vlan_t vlan;
    ipv4_t ipv4;
}

struct metadata_t {
    bit<12> tunnel_vid;
    bit<32> ecmp_hash;
    bit<1>  uplink;
    bit<9>  mirror_port;
    bit<1>  mirrored;
}

parser FabricParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                    inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_VLAN: parse_vlan;
            default: parse_ipv4;
        }
    }
    state parse_vlan {
        pkt.extract(hdr.vlan);
        transition parse_ipv4;
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control FabricIngress(inout headers_t hdr, inout metadata_t meta,
                      inout standard_metadata_t standard_metadata) {
    // ------------------------------------------------ next-hop routing --
    action route_leaf(bit<9> port, bit<48> dmac) {
        standard_metadata.egress_spec = port;
        hdr.ethernet.dstAddr = dmac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    action route_spine(bit<9> port) {
        standard_metadata.egress_spec = port;
        meta.uplink = 1;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    action route_ecmp(bit<9> base) {
        meta.ecmp_hash = hdr.ipv4.srcAddr ^ hdr.ipv4.dstAddr;
        standard_metadata.egress_spec = base;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    action route_tunnel(bit<12> vid) {
        meta.tunnel_vid = vid;
        hdr.ipv4.diffserv = hdr.ipv4.diffserv | 0x4;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    action send_to_cpu() {
        standard_metadata.egress_spec = CPU_PORT;
        hdr.ipv4.diffserv = DSCP_EF;
    }
    action drop_packet() {
        mark_to_drop(standard_metadata);
    }
    table nexthop {
        key = { hdr.ipv4.dstAddr : lpm; }
        actions = { route_leaf; route_spine; route_ecmp; route_tunnel;
                    send_to_cpu; drop_packet; }
        default_action = drop_packet;
    }

    // --------------------------------------------------------------- acl --
    action acl_permit() { }
    action acl_deny() {
        mark_to_drop(standard_metadata);
    }
    action acl_mirror(bit<9> mport) {
        meta.mirror_port = mport;
        meta.mirrored = 1;
    }
    action acl_mark(bit<8> dscp) {
        hdr.ipv4.diffserv = dscp;
    }
    table acl {
        key = { hdr.ipv4.srcAddr : ternary;
                hdr.ipv4.protocol : exact; }
        actions = { acl_permit; acl_deny; acl_mirror; acl_mark; }
        default_action = acl_permit;
    }

    // ----------------------------------------------------- traffic class --
    action tc_best_effort() { }
    action tc_assured(bit<3> q) {
        standard_metadata.priority = q;
    }
    action tc_expedited() {
        standard_metadata.priority = 7;
        hdr.ipv4.diffserv = DSCP_EF;
    }
    action tc_scavenger() {
        standard_metadata.priority = 1;
        hdr.ipv4.diffserv = hdr.ipv4.diffserv & 0xFC;
    }
    table tclass {
        key = { hdr.ipv4.diffserv : ternary; }
        actions = { tc_best_effort; tc_assured; tc_expedited; tc_scavenger; }
        default_action = tc_best_effort;
    }

    apply {
        // Stamp the fabric transit mark before any stage runs; the egress
        // assertion checks it survived the whole pipeline.
        hdr.ipv4.identification = 0x7777;
        nexthop.apply();
        if (hdr.vlan.isValid()) {
            // VLAN frames only enter through the 802.1Q parser branch.
            @assert("if(traverse_path(), ethernet.etherType == 0x8100)");
            meta.tunnel_vid = hdr.vlan.vid;
        }
        acl.apply();
        tclass.apply();
    }
}

control FabricEgress(inout headers_t hdr, inout metadata_t meta,
                     inout standard_metadata_t standard_metadata) {
    counter(4, CounterType.packets) egress_pkts;

    action rw_set_smac(bit<48> smac) {
        hdr.ethernet.srcAddr = smac;
    }
    action rw_decap() {
        hdr.ipv4.diffserv = hdr.ipv4.diffserv & 0xFC;
    }
    action rw_noop() { }
    table egress_rewrite {
        key = { standard_metadata.egress_spec : exact; }
        actions = { rw_set_smac; rw_decap; rw_noop; }
        default_action = rw_noop;
    }

    // Telemetry export: sample or span selected egress flows.
    action tm_span(bit<9> span_port) {
        meta.mirror_port = span_port;
    }
    action tm_sample() {
        hdr.ipv4.diffserv = hdr.ipv4.diffserv | 0x2;
    }
    action tm_none() { }
    table telemetry {
        key = { hdr.ipv4.dstAddr : ternary; }
        actions = { tm_span; tm_sample; tm_none; }
        default_action = tm_none;
    }

    apply {
        // The ingress-stamped transit mark must reach egress unmodified on
        // every path: no stage writes identification after the stamp.
        @assert("if(traverse_path(), ipv4.identification == 0x7777)");
        egress_pkts.count(0);
        egress_rewrite.apply();
        telemetry.apply();
        if (meta.mirrored == 1) {
            hdr.ipv4.diffserv = hdr.ipv4.diffserv | 0x1;
        }
    }
}

control FabricDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.vlan);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(FabricParser, FabricIngress, FabricEgress, FabricDeparser) main;
`,
})
