package progs

// Circumvent reproduces the paper's Figure 1 motivating example: the L4
// control block accidentally applies tcp_acl_table to UDP traffic, letting
// UDP packets bypass the filtering mechanism. The filter policy blocks
// destination port 53; assertion 0
// (if(udp.dstPort == 53, !forward())) is violated by any UDP packet to
// port 53, because the TCP ACL — keyed on the (invalid, all-zero) TCP
// header — never matches it.
var Circumvent = register(&Program{
	Name:               "circumvent",
	Title:              "Code circumvention (paper Fig. 1)",
	ExpectedViolations: []int{0},
	Notes:              "udp branch applies tcp_acl_table instead of udp_acl_table.",
	Source: `
const bit<16> TYPE_IPV4 = 0x0800;
const bit<8> PROTO_TCP = 6;
const bit<8> PROTO_UDP = 17;
const bit<16> FILTERED_PORT = 53;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  nextHeader;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header tcp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<32> seqNo;
}

header udp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<16> length;
    bit<16> checksum;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ip;
    tcp_t tcp;
    udp_t udp;
}

struct metadata_t {
    bit<1> unused;
}

parser L4Parser(packet_in pkt, out headers_t headers, inout metadata_t meta,
                inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(headers.ethernet);
        transition select(headers.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 {
        pkt.extract(headers.ip);
        transition select(headers.ip.nextHeader) {
            PROTO_TCP: parse_tcp;
            PROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_tcp { pkt.extract(headers.tcp); transition accept; }
    state parse_udp { pkt.extract(headers.udp); transition accept; }
}

control L4(inout headers_t headers, inout metadata_t meta,
           inout standard_metadata_t standard_metadata) {
    action drop_packet() {
        mark_to_drop(standard_metadata);
    }
    action set_egress(bit<9> port) {
        standard_metadata.egress_spec = port;
    }
    table tcp_table {
        key = { headers.tcp.dstPort : exact; }
        actions = { set_egress; NoAction; }
        default_action = set_egress(1);
    }
    table udp_table {
        key = { headers.udp.dstPort : exact; }
        actions = { set_egress; NoAction; }
        default_action = set_egress(1);
    }
    table tcp_acl_table {
        key = { headers.tcp.dstPort : exact; }
        actions = { drop_packet; NoAction; }
        default_action = NoAction;
        const entries = {
            FILTERED_PORT : drop_packet();
        }
    }
    table udp_acl_table {
        key = { headers.udp.dstPort : exact; }
        actions = { drop_packet; NoAction; }
        default_action = NoAction;
        const entries = {
            FILTERED_PORT : drop_packet();
        }
    }
    apply {
        @assert("if(udp.dstPort == 53, !forward())");
        if (headers.ip.nextHeader == PROTO_TCP) {
            tcp_table.apply();
            tcp_acl_table.apply();
        } else {
            if (headers.ip.nextHeader == PROTO_UDP) {
                udp_table.apply();
                tcp_acl_table.apply();   // BUG: should be udp_acl_table
            }
        }
    }
}

control L4Deparser(packet_out pkt, in headers_t headers) {
    apply {
        pkt.emit(headers.ethernet);
        pkt.emit(headers.ip);
        pkt.emit(headers.tcp);
        pkt.emit(headers.udp);
    }
}

V1Switch(L4Parser, L4, L4Deparser) main;
`,
})

// Mirror reproduces the paper's Figure 2 motivating example: a mirroring
// table whose const entries clone packets leaving port 2 back to port 2,
// so the receiver gets both the original and the clone. Assertion 0
// (the paper's Table 1 DC.p4 clone property) is violated.
var Mirror = register(&Program{
	Name:               "mirror",
	Title:              "Control misconfiguration (paper Fig. 2)",
	ExpectedViolations: []int{0},
	Notes:              "const entry clones packets to their own egress port.",
	Source: `
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers_t {
    ethernet_t ethernet;
}

struct metadata_t {
    bit<9> cloned_outport;
    bit<1> was_cloned;
}

parser MirrorParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                    inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control MirrorIngress(inout headers_t hdr, inout metadata_t meta,
                      inout standard_metadata_t standard_metadata) {
    action clone_packet(bit<9> port) {
        meta.cloned_outport = port;
        meta.was_cloned = 1;
    }
    table mirror {
        key = { standard_metadata.egress_spec : exact; }
        actions = { NoAction; clone_packet; }
        default_action = NoAction;
        const entries = {
            0x001 : clone_packet(0x002);
            0x002 : clone_packet(0x002);   // BUG: clones port 2 onto itself
        }
    }
    apply {
        standard_metadata.egress_spec = standard_metadata.ingress_port;
        mirror.apply();
        @assert("!(was_cloned == 1 && cloned_outport == standard_metadata.egress_spec && constant(cloned_outport))");
    }
}

control MirrorDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
    }
}

V1Switch(MirrorParser, MirrorIngress, MirrorDeparser) main;
`,
})
