package progs

// SwitchLite reproduces, in reduced form, the two Switch.p4 bugs the paper
// replays in §5.1 from the switch repository's issue tracker:
//
//  1. tunnel encapsulation overwriting nested headers
//     (github.com/p4lang/switch issue #97): encapsulation copies the outer
//     IPv4 header into the inner slot even when an inner header is already
//     present — assertion 0 ("!valid(hdr.inner_ipv4)", placed before the
//     encapsulation) is violated for already-tunneled packets;
//  2. modification of a field of an invalid header
//     (github.com/p4lang/switch pull #102): the VLAN tagging action writes
//     hdr.vlan.vid without checking validity — assertion 1
//     ("valid(hdr.vlan)", placed just before the write) is violated.
var SwitchLite = register(&Program{
	Name:               "switchlite",
	Title:              "Switch.p4 (reduced, two known bugs)",
	ExpectedViolations: []int{0, 1},
	Notes:              "Replays the invalid-header write and tunnel double-encapsulation bugs.",
	Source: `
const bit<16> TYPE_IPV4 = 0x0800;
const bit<16> TYPE_VLAN = 0x8100;
const bit<8> PROTO_IPIP = 4;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header vlan_t {
    bit<3>  pcp;
    bit<1>  cfi;
    bit<12> vid;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header inner_ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct headers_t {
    ethernet_t ethernet;
    vlan_t vlan;
    ipv4_t ipv4;
    inner_ipv4_t inner_ipv4;
}

struct metadata_t {
    bit<16> tunnel_id;
}

parser SwParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_VLAN: parse_vlan;
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_vlan {
        pkt.extract(hdr.vlan);
        transition select(hdr.vlan.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            PROTO_IPIP: parse_inner_ipv4;
            default: accept;
        }
    }
    state parse_inner_ipv4 {
        pkt.extract(hdr.inner_ipv4);
        transition accept;
    }
}

control SwIngress(inout headers_t hdr, inout metadata_t meta,
                  inout standard_metadata_t standard_metadata) {
    action drop_packet() {
        mark_to_drop(standard_metadata);
    }
    action set_egress(bit<9> port) {
        standard_metadata.egress_spec = port;
    }
    table fwd {
        key = { hdr.ethernet.dstAddr : exact; }
        actions = { set_egress; drop_packet; }
        default_action = drop_packet;
    }

    // Bug 2 (switch issue #97): encapsulation assumes no tunnel is
    // present; nested tunnels overwrite the existing inner header.
    action encap_tunnel(bit<16> tunnel_id) {
        @assert("!valid(hdr.inner_ipv4)");
        meta.tunnel_id = tunnel_id;
        hdr.inner_ipv4.setValid();
        hdr.inner_ipv4.version = hdr.ipv4.version;
        hdr.inner_ipv4.ihl = hdr.ipv4.ihl;
        hdr.inner_ipv4.diffserv = hdr.ipv4.diffserv;
        hdr.inner_ipv4.totalLen = hdr.ipv4.totalLen;
        hdr.inner_ipv4.ttl = hdr.ipv4.ttl;
        hdr.inner_ipv4.protocol = hdr.ipv4.protocol;
        hdr.inner_ipv4.srcAddr = hdr.ipv4.srcAddr;
        hdr.inner_ipv4.dstAddr = hdr.ipv4.dstAddr;
        hdr.ipv4.protocol = PROTO_IPIP;
    }
    table tunnel_encap {
        key = { hdr.ipv4.dstAddr : lpm; }
        actions = { encap_tunnel; NoAction; }
        default_action = NoAction;
    }

    apply {
        fwd.apply();
        if (hdr.ipv4.isValid()) {
            tunnel_encap.apply();
        }
    }
}

control SwEgress(inout headers_t hdr, inout metadata_t meta,
                 inout standard_metadata_t standard_metadata) {
    // Bug 1 (switch PR #102): the VLAN id is written without validating
    // (or adding) the VLAN header first.
    action set_vlan(bit<12> vid) {
        @assert("valid(hdr.vlan)");
        hdr.vlan.vid = vid;
    }
    table vlan_xlate {
        key = { standard_metadata.egress_spec : exact; }
        actions = { set_vlan; NoAction; }
        default_action = NoAction;
    }
    apply {
        vlan_xlate.apply();
    }
}

control SwDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.vlan);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.inner_ipv4);
    }
}

V1Switch(SwParser, SwIngress, SwEgress, SwDeparser) main;
`,
})
