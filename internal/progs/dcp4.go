package progs

// DCP4 re-implements, at reduced scale, the datacenter-switch pipeline of
// Sivaraman et al.'s DC.p4 [31]: port mapping, L2 source/destination MAC
// stages, an IPv4 FIB, an L3 ACL and a final system ACL, arranged as an
// ingress pipeline followed by an egress pipeline.
//
// The paper's §5.1 scenario is reproduced: configuring only the L3 ACL to
// "deny" a destination address does not drop the traffic — the L3 ACL only
// flags packets, and the system ACL must also be configured to act on the
// flag. Under Rules (L3 ACL only), assertion 0
// (if(ipv4.dstAddr == BLOCKED, !forward())) is violated; under FixedRules
// (system ACL also configured) it holds.
var DCP4 = register(&Program{
	Name:               "dcp4",
	Title:              "DC.p4 (datacenter switch)",
	ExpectedViolations: []int{0},
	Notes: "Control misconfiguration (paper §5.1): the L3 ACL only flags " +
		"packets; the system ACL must also be configured to drop them.",
	Rules: `
# Paper scenario: only the L3 ACL is configured to deny the blocked prefix.
IngressPipe.l3_acl acl_deny 0x0adead00/24
IngressPipe.ipv4_fib set_nhop 0/0 => 2 0x001122334455
IngressPipe.port_mapping set_ifindex 1 => 11
IngressPipe.port_mapping set_ifindex 2 => 12
IngressPipe.dmac set_egress_port 0x001122334455 => 2
`,
	FixedRules: `
# Complete configuration: the system ACL acts on the deny flag.
IngressPipe.l3_acl acl_deny 0x0adead00/24
IngressPipe.ipv4_fib set_nhop 0/0 => 2 0x001122334455
IngressPipe.port_mapping set_ifindex 1 => 11
IngressPipe.port_mapping set_ifindex 2 => 12
IngressPipe.dmac set_egress_port 0x001122334455 => 2
IngressPipe.system_acl drop_packet 1
IngressPipe.system_acl permit 0
`,
	Source: `
const bit<16> TYPE_IPV4 = 0x0800;
const bit<16> TYPE_VLAN = 0x8100;
const bit<8> PROTO_TCP = 6;
const bit<8> PROTO_UDP = 17;
const bit<32> BLOCKED_ADDR = 0x0adead01;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header vlan_t {
    bit<3>  pcp;
    bit<1>  cfi;
    bit<12> vid;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header tcp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<32> seqNo;
    bit<8>  flags;
}

header udp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<16> length;
    bit<16> checksum;
}

struct headers_t {
    ethernet_t ethernet;
    vlan_t vlan;
    ipv4_t ipv4;
    tcp_t tcp;
    udp_t udp;
}

struct metadata_t {
    bit<16> ifindex;
    bit<48> nhop_mac;
    bit<1>  acl_deny;
    bit<1>  l2_miss;
}

parser DcParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_VLAN: parse_vlan;
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_vlan {
        pkt.extract(hdr.vlan);
        transition select(hdr.vlan.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            PROTO_TCP: parse_tcp;
            PROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition accept;
    }
}

control IngressPipe(inout headers_t hdr, inout metadata_t meta,
                    inout standard_metadata_t standard_metadata) {
    action drop_packet() {
        mark_to_drop(standard_metadata);
    }
    action permit() { }
    action set_ifindex(bit<16> ifindex) {
        meta.ifindex = ifindex;
    }
    table port_mapping {
        key = { standard_metadata.ingress_port : exact; }
        actions = { set_ifindex; drop_packet; }
        default_action = drop_packet;
    }

    action smac_hit() { meta.l2_miss = 0; }
    action smac_miss() { meta.l2_miss = 1; }
    table smac {
        key = { hdr.ethernet.srcAddr : exact; }
        actions = { smac_hit; smac_miss; }
        default_action = smac_miss;
    }

    action set_egress_port(bit<9> port) {
        standard_metadata.egress_spec = port;
    }
    table dmac {
        key = { hdr.ethernet.dstAddr : exact; }
        actions = { set_egress_port; NoAction; }
        default_action = NoAction;
    }

    action set_nhop(bit<9> port, bit<48> dmac_addr) {
        standard_metadata.egress_spec = port;
        meta.nhop_mac = dmac_addr;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_fib {
        key = { hdr.ipv4.dstAddr : lpm; }
        actions = { set_nhop; drop_packet; NoAction; }
        default_action = NoAction;
    }

    // The L3 ACL only FLAGS packets for denial; the system ACL is the
    // module that actually drops flagged traffic.
    action acl_deny() { meta.acl_deny = 1; }
    action acl_permit() { meta.acl_deny = 0; }
    table l3_acl {
        key = { hdr.ipv4.dstAddr : lpm; }
        actions = { acl_deny; acl_permit; }
        default_action = acl_permit;
    }
    table system_acl {
        key = { meta.acl_deny : exact; }
        actions = { drop_packet; permit; }
        default_action = permit;
    }

    apply {
        @assert("if(ipv4.dstAddr == 0x0adead01, !forward())");
        port_mapping.apply();
        smac.apply();
        if (hdr.ipv4.isValid()) {
            ipv4_fib.apply();
            l3_acl.apply();
        } else {
            dmac.apply();
        }
        system_acl.apply();
    }
}

control EgressPipe(inout headers_t hdr, inout metadata_t meta,
                   inout standard_metadata_t standard_metadata) {
    action rewrite_mac() {
        hdr.ethernet.dstAddr = meta.nhop_mac;
    }
    table mac_rewrite {
        key = { standard_metadata.egress_spec : exact; }
        actions = { rewrite_mac; NoAction; }
        default_action = NoAction;
    }
    apply {
        if (hdr.ipv4.isValid()) {
            mac_rewrite.apply();
        }
    }
}

control DcDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.vlan);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
        pkt.emit(hdr.udp);
    }
}

V1Switch(DcParser, IngressPipe, EgressPipe, DcDeparser) main;
`,
})
