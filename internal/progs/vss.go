package progs

// VSS reproduces the P4 specification's Very Simple Switch example [18]
// with the paper's Table 1 properties:
//
//	"Packets with zero TTL values are dropped"  — if(ipv4.ttl == 0, !forward())
//	"Marked to drop packets are not forwarded"  — if(traverse_path(), !forward())
//
// The program is correct: both assertions hold.
var VSS = register(&Program{
	Name:       "vss",
	Title:      "VSS (Very Simple Switch)",
	Constraint: "@assume(p.ethernet.etherType == 0x0800);",
	Notes:      "Correct program; both Table 1 assertions hold.",
	Source: `
// Very Simple Switch: one pipeline stage forwarding on IPv4 destinations.
const bit<16> TYPE_IPV4 = 0x0800;
const bit<9> CPU_OUT_PORT = 14;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct parsed_packet_t {
    ethernet_t ethernet;
    ipv4_t ip;
}

struct meta_t {
    bit<32> nextHop;
}

parser TopParser(packet_in b, out parsed_packet_t p, inout meta_t meta,
                 inout standard_metadata_t standard_metadata) {
    state start {
        b.extract(p.ethernet);
        // constraint-point
        transition select(p.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;    // VSS raises a parser error on non-IPv4
        }
    }
    state parse_ipv4 {
        b.extract(p.ip);
        transition select(p.ip.version) {
            4: accept;
            default: reject;
        }
    }
}

control TopPipe(inout parsed_packet_t p, inout meta_t meta,
                inout standard_metadata_t standard_metadata) {
    action Drop_action() {
        mark_to_drop(standard_metadata);
        @assert("if(traverse_path(), !forward())");
    }
    action Set_nhop(bit<32> nextHop, bit<9> port) {
        meta.nextHop = nextHop;
        p.ip.ttl = p.ip.ttl - 1;
        standard_metadata.egress_spec = port;
    }
    action Send_to_cpu() {
        standard_metadata.egress_spec = CPU_OUT_PORT;
    }
    table ipv4_match {
        key = { p.ip.dstAddr : lpm; }
        actions = { Drop_action; Set_nhop; Send_to_cpu; }
        default_action = Drop_action;
    }
    action Set_dmac(bit<48> dmac) {
        p.ethernet.dstAddr = dmac;
    }
    table dmac {
        key = { meta.nextHop : exact; }
        actions = { Drop_action; Set_dmac; }
        default_action = Drop_action;
    }
    apply {
        @assert("if(ip.ttl == 0, !forward())");
        if (p.ip.ttl == 0) {
            Drop_action();
        } else {
            ipv4_match.apply();
            dmac.apply();
        }
    }
}

control TopDeparser(packet_out b, in parsed_packet_t p) {
    apply {
        b.emit(p.ethernet);
        b.emit(p.ip);
    }
}

V1Switch(TopParser, TopPipe, TopDeparser) main;
`,
})
