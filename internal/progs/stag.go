package progs

// STag re-implements a color-based isolation data plane in the style the
// paper cites for sTag [25]: every ingress port and every destination host
// carries a color, and traffic may only flow between endpoints of the same
// color.
//
// Table 1 property: hosts connected to ports of different colors cannot
// communicate — if(ingress_port == color_a && ipv4.dstAddr ==
// color_b_host, !forward()). Holds: the color comparison guards
// forwarding.
var STag = register(&Program{
	Name:       "stag",
	Title:      "sTag (color isolation)",
	Constraint: "@assume(hdr.ethernet.etherType == 0x0800);",
	Notes:      "Correct program; cross-color traffic is dropped.",
	Source: `
const bit<16> TYPE_IPV4 = 0x0800;
// Port 1 is red (color 1), port 2 is green (color 2).
const bit<9> PORT_RED = 1;
const bit<9> PORT_GREEN = 2;
// Host 10.0.1.1 is red, host 10.0.2.2 is green.
const bit<32> HOST_RED = 0x0a000101;
const bit<32> HOST_GREEN = 0x0a000202;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
}

struct metadata_t {
    bit<8> src_color;
    bit<8> dst_color;
}

parser StagParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                  inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        // constraint-point
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control StagIngress(inout headers_t hdr, inout metadata_t meta,
                    inout standard_metadata_t standard_metadata) {
    action drop_packet() {
        mark_to_drop(standard_metadata);
    }
    action set_src_color(bit<8> color) {
        meta.src_color = color;
    }
    action set_dst_color(bit<8> color, bit<9> port) {
        meta.dst_color = color;
        standard_metadata.egress_spec = port;
    }
    table port_color {
        key = { standard_metadata.ingress_port : exact; }
        actions = { set_src_color; drop_packet; }
        default_action = drop_packet;
        const entries = {
            PORT_RED   : set_src_color(1);
            PORT_GREEN : set_src_color(2);
            3          : set_src_color(3);
            4          : set_src_color(1);
        }
    }
    table host_color {
        key = { hdr.ipv4.dstAddr : exact; }
        actions = { set_dst_color; drop_packet; }
        default_action = drop_packet;
        const entries = {
            HOST_RED   : set_dst_color(1, 1);
            HOST_GREEN : set_dst_color(2, 2);
            0x0a000303 : set_dst_color(3, 3);
            0x0a000404 : set_dst_color(1, 4);
        }
    }
    action log_flow() { meta.src_color = meta.src_color | 0x80; }
    table audit {
        key = { standard_metadata.ingress_port : exact; }
        actions = { log_flow; NoAction; }
        default_action = NoAction;
    }
    apply {
        @assert("if(ingress_port == 1 && ipv4.dstAddr == 0x0a000202, !forward())");
        meta.src_color = 0;
        meta.dst_color = 0;
        port_color.apply();
        host_color.apply();
        if (meta.src_color != meta.dst_color || meta.src_color == 0) {
            // Colors differ (or either endpoint is uncolored): isolate.
            drop_packet();
        } else {
            audit.apply();
        }
    }
}

control StagDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(StagParser, StagIngress, StagDeparser) main;
`,
})
