package progs

// MRI re-implements the multi-hop route inspection tutorial program [19]:
// an INT-style trace header carrying a chain of switch IDs that the parser
// consumes in a loop (bottom-of-stack bit). The parser loop makes the
// program's call structure recursive, which — exactly as the paper reports
// for Frama-C in Table 2 — makes slicing fail.
//
// Table 1 properties: switch IDs added to packets are authentic
// (constant(swid)) and added IDs are not removed
// (if(extract_header(swtrace), emit_header(swtrace))). Both hold.
var MRI = register(&Program{
	Name:       "mri",
	Title:      "MRI (multi-hop route inspection)",
	Constraint: "@assume(hdr.ethernet.etherType == 0x0800);",
	Notes:      "Correct program with a recursive parser; slicing must refuse it.",
	Source: `
const bit<16> TYPE_IPV4 = 0x0800;
const bit<8> IPPROTO_MRI = 253;
const bit<31> SWITCH_ID = 0x51;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header mri_t {
    bit<16> count;
}

header swtrace_t {
    bit<1>  bos;
    bit<31> swid;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    mri_t mri;
    swtrace_t swtrace;
}

struct metadata_t {
    bit<16> parsed_hops;
}

parser MriParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                 inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        // constraint-point
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            IPPROTO_MRI: parse_mri;
            default: accept;
        }
    }
    state parse_mri {
        pkt.extract(hdr.mri);
        transition select(hdr.mri.count) {
            0: accept;
            default: parse_swtrace;
        }
    }
    state parse_swtrace {
        // Recursive trace parsing: keep consuming swtrace entries until
        // the bottom-of-stack bit is set. This is the recursion that
        // defeats slicing (paper Table 2, MRI row).
        pkt.extract(hdr.swtrace);
        meta.parsed_hops = meta.parsed_hops + 1;
        transition select(hdr.swtrace.bos) {
            1: accept;
            default: parse_swtrace;
        }
    }
}

control MriIngress(inout headers_t hdr, inout metadata_t meta,
                   inout standard_metadata_t standard_metadata) {
    action drop_packet() {
        mark_to_drop(standard_metadata);
    }
    action forward_out(bit<9> port) {
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { hdr.ipv4.dstAddr : lpm; }
        actions = { forward_out; drop_packet; NoAction; }
        default_action = drop_packet;
    }
    apply {
        if (hdr.ipv4.isValid()) {
            ipv4_lpm.apply();
        } else {
            drop_packet();
        }
    }
}

control MriEgress(inout headers_t hdr, inout metadata_t meta,
                  inout standard_metadata_t standard_metadata) {
    action add_swtrace() {
        hdr.mri.count = hdr.mri.count + 1;
        hdr.swtrace.swid = SWITCH_ID;
        // The id written here must survive to the end of the pipeline.
        @assert("constant(hdr.swtrace.swid)");
    }
    table swtrace_tbl {
        actions = { add_swtrace; NoAction; }
        default_action = NoAction;
    }
    apply {
        if (hdr.mri.isValid() && hdr.swtrace.isValid()) {
            swtrace_tbl.apply();
        }
        @assert("if(extract_header(hdr.swtrace), emit_header(hdr.swtrace))");
    }
}

control MriDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.mri);
        pkt.emit(hdr.swtrace);
    }
}

V1Switch(MriParser, MriIngress, MriEgress, MriDeparser) main;
`,
})
