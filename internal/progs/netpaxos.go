package progs

// NetPaxos re-implements the Paxos acceptor data plane of Dang et al.
// [5, 6]: packets arrive pre-marked for dropping and the paxos table
// dispatches on the message type to the phase-1a/phase-2a vote handlers.
//
// The paper's §5.1 finding is reproduced: the vote handlers add voting
// information to the packet but never unmark it for forwarding, so valid
// vote packets are dropped. The assertions
// if(traverse_path(), forward()) inside handle_1a and handle_2a
// (IDs 1 and 3) are violated. The Table 1 phase/msgtype properties
// (IDs 0 and 2) hold.
var NetPaxos = register(&Program{
	Name:               "netpaxos",
	Title:              "NetPaxos (acceptor)",
	ExpectedViolations: []int{1, 3},
	Constraint:         "@assume(hdr.ethernet.etherType == 0x0800);",
	Notes: "Vote-drop bug (paper §5.1): packets are first marked to be " +
		"dropped and the voting actions never unmark them.",
	Source: `
const bit<16> TYPE_IPV4 = 0x0800;
const bit<8> PROTO_UDP = 17;
const bit<16> PAXOS_PORT = 0x8888;
const bit<16> MSGTYPE_1A = 1;
const bit<16> MSGTYPE_2A = 2;
const bit<16> ACCEPTOR_ID = 0x7;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header udp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<16> length;
    bit<16> checksum;
}

header paxos_t {
    bit<16> msgtype;
    bit<32> inst;
    bit<16> rnd;
    bit<16> vrnd;
    bit<16> acptid;
    bit<32> paxosval;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    udp_t udp;
    paxos_t paxos;
}

struct metadata_t {
    bit<16> round;
}

parser PaxosParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                   inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        // constraint-point
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            PROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dstPort) {
            PAXOS_PORT: parse_paxos;
            default: accept;
        }
    }
    state parse_paxos {
        pkt.extract(hdr.paxos);
        transition accept;
    }
}

control Acceptor(inout headers_t hdr, inout metadata_t meta,
                 inout standard_metadata_t standard_metadata) {
    register<bit<16>>(8) rounds_reg;
    register<bit<32>>(8) values_reg;

    action _drop() {
        mark_to_drop(standard_metadata);
    }
    action read_round() {
        rounds_reg.read(meta.round, hdr.paxos.inst % 8);
    }
    action set_egress(bit<9> port) {
        standard_metadata.egress_spec = port;
    }
    table dmac {
        key = { hdr.ethernet.dstAddr : exact; }
        actions = { set_egress; _drop; NoAction; }
        default_action = NoAction;
    }
    action smac_hit() { }
    table smac {
        key = { hdr.ethernet.srcAddr : exact; }
        actions = { smac_hit; NoAction; }
        default_action = NoAction;
    }
    action handle_1a() {
        // Phase 1a: promise. The acceptor answers with its vote state.
        @assert("if(traverse_path(), paxos.msgtype == 1)");
        @assert("if(traverse_path(), forward())");
        rounds_reg.write(hdr.paxos.inst % 8, hdr.paxos.rnd);
        hdr.paxos.acptid = ACCEPTOR_ID;
        hdr.udp.checksum = 0;
        // BUG (paper §5.1): the packet stays marked to drop; forwarding
        // is never restored here.
    }
    action handle_2a() {
        // Phase 2a: vote.
        @assert("if(traverse_path(), paxos.msgtype == 2)");
        @assert("if(traverse_path(), forward())");
        rounds_reg.write(hdr.paxos.inst % 8, hdr.paxos.rnd);
        values_reg.write(hdr.paxos.inst % 8, hdr.paxos.paxosval);
        hdr.paxos.acptid = ACCEPTOR_ID;
        hdr.udp.checksum = 0;
        // BUG: same as handle_1a.
    }
    table paxos_tbl {
        key = { hdr.paxos.msgtype : exact; }
        actions = { handle_1a; handle_2a; _drop; }
        default_action = _drop;
        const entries = {
            MSGTYPE_1A : handle_1a();
            MSGTYPE_2A : handle_2a();
        }
    }
    apply {
        smac.apply();
        dmac.apply();
        // All packets start marked for dropping; only explicit forwarding
        // decisions should unmark them.
        _drop();
        if (hdr.paxos.isValid()) {
            read_round();
            if (meta.round <= hdr.paxos.rnd) {
                paxos_tbl.apply();
            }
        }
    }
}

control PaxosDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.paxos);
    }
}

V1Switch(PaxosParser, Acceptor, PaxosDeparser) main;
`,
})
