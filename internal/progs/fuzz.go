package progs

import "strings"

// RegisterFuzz registers a minimized differential-fuzzing reproducer
// (cmd/p4fuzz) as a corpus regression. Reproducer names carry the "fuzz_"
// prefix so they are recognizable in reports; like every corpus entry they
// are then covered by the expected-violation and technique-matrix tests.
func RegisterFuzz(p *Program) *Program {
	if !strings.HasPrefix(p.Name, "fuzz_") {
		panic("progs: fuzz reproducer names must start with fuzz_: " + p.Name)
	}
	return register(p)
}

// FuzzReproducers returns the registered fuzz regressions, sorted by name.
func FuzzReproducers() []*Program {
	var out []*Program
	for _, p := range All() {
		if strings.HasPrefix(p.Name, "fuzz_") {
			out = append(out, p)
		}
	}
	return out
}

// fuzz_slicer_shortcircuit is the minimized reproducer for a slicer bug
// found by differential fuzzing (p4fuzz seed 69): the relevance fixpoint
// short-circuited past an If's else arm whenever the then arm contained a
// relevant effect, so the else-branch assignment "hdr.h0.f0 = hdr.h1.f0 &
// ..." was kept while make_symbolic(hdr.h1.f0) was sliced away — h1.f0
// stayed concretely zero and the second assertion's violation vanished
// under -slice while the baseline reported it.
var _ = RegisterFuzz(&Program{
	Name:  "fuzz_slicer_shortcircuit",
	Title: "fuzz reproducer: slicer else-arm relevance",
	Notes: "Minimized from cmd/p4fuzz seed 69. The then arm's assertion " +
		"snapshot is a relevant effect; the else arm both depends on and " +
		"feeds the second assertion. A correct slice must keep the else " +
		"arm's data dependencies (hdr.h1.f0 symbolic), so the verdict " +
		"{assert #1 violated} is identical with and without -slice.",
	ExpectedViolations: []int{1},
	Source: `
header h0_t {
    bit<48> f0;
}
header h1_t {
    bit<48> f0;
    bit<8> f1;
    bit<32> f2;
}
header h2_t {
    bit<9> f0;
}
struct headers_t {
    h0_t h0;
    h1_t h1;
    h2_t h2;
}
struct metadata_t {
    bit<8> m0;
}

parser FP(packet_in pkt, out headers_t hdr, inout metadata_t meta,
          inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.h0);
        transition select(hdr.h0.f0) {
            2: parse_h1;
            default: reject;
        }
    }
    state parse_h1 { pkt.extract(hdr.h1); transition accept; }
    state parse_h2 { pkt.extract(hdr.h2); transition accept; }
}

control FI(inout headers_t hdr, inout metadata_t meta,
           inout standard_metadata_t standard_metadata) {
    action a0() {
    }
    action a1(bit<32> p0) {
    }
    table t0 {
        key = { hdr.h1.f2 : exact; }
        actions = { a1; NoAction; }
        default_action = NoAction;
    }
    apply {
        if (hdr.h1.f2 > 4294967295) {
            @assert("if(forward(), standard_metadata.egress_spec < 465)");
        } else {
            hdr.h0.f0 = (hdr.h1.f0 & 281474976710655);
        }
        @assert("if(hdr.h0.f0 >= 217222680164832, hdr.h1.f1 == 255)");
    }
}

control FD(packet_out pkt, in headers_t hdr) {
    apply {
    }
}

V1Switch(FP, FI, FD) main;
`,
})
