package progs

// LossRadar re-implements, at reduced scale, the packet-loss detection
// data plane of Li et al. [23] (cited by the paper among the applications
// its approach verifies in under a minute): each switch maintains traffic
// digests in register banks — a packet batch counter and an XOR
// accumulator of packet identifiers — that an upstream/downstream
// comparison later decodes to pinpoint lost packets. The program also
// exercises the table.apply().hit idiom on its flow cache.
//
// Properties: digests are only recorded for forwarded IPv4 traffic, and
// recording never changes the packet (constant(ipv4.identification)).
// The program is correct.
var LossRadar = register(&Program{
	Name:  "lossradar",
	Title: "LossRadar (loss detection)",
	Notes: "Correct program; digest recording is read-only for the packet.",
	Source: `
const bit<16> TYPE_IPV4 = 0x0800;
const bit<32> BATCH_SLOTS = 8;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
}

struct metadata_t {
    bit<32> slot;
    bit<32> digest;
    bit<32> old_xor;
    bit<32> old_count;
}

parser LrParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control LrIngress(inout headers_t hdr, inout metadata_t meta,
                  inout standard_metadata_t standard_metadata) {
    register<bit<32>>(8) batch_count;
    register<bit<32>>(8) batch_xor;

    action drop_packet() {
        mark_to_drop(standard_metadata);
    }
    action set_egress(bit<9> port) {
        standard_metadata.egress_spec = port;
    }
    table forward_tbl {
        key = { hdr.ipv4.dstAddr : lpm; }
        actions = { set_egress; drop_packet; }
        default_action = drop_packet;
    }
    action cache_hit() { }
    table flow_cache {
        key = { hdr.ipv4.srcAddr : exact; hdr.ipv4.dstAddr : exact; }
        actions = { cache_hit; NoAction; }
        default_action = NoAction;
    }

    action record_digest() {
        // Digests cover only traffic that actually left the switch.
        @assert("if(traverse_path(), forward())");
        // Fold the packet identifier into the current batch digest.
        meta.digest = ((bit<32>)hdr.ipv4.identification << 16) ^ hdr.ipv4.srcAddr ^ hdr.ipv4.dstAddr;
        meta.slot = meta.digest % BATCH_SLOTS;
        batch_xor.read(meta.old_xor, meta.slot);
        batch_xor.write(meta.slot, meta.old_xor ^ meta.digest);
        batch_count.read(meta.old_count, meta.slot);
        batch_count.write(meta.slot, meta.old_count + 1);
    }

    apply {
        // Recording must not alter the packet on the wire.
        @assert("constant(hdr.ipv4.identification)");
        if (hdr.ipv4.isValid()) {
            forward_tbl.apply();
            if (standard_metadata.egress_spec != 511) {
                // Only packets that will actually leave the switch are
                // folded into the loss digests.
                record_digest();
            }
        } else {
            drop_packet();
        }
        if (!flow_cache.apply().hit) {
            // Unknown flow: nothing cached yet; the digest above already
            // covers it, nothing further to do in this reduced model.
            meta.old_count = 0;
        }
    }
}

control LrDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(LrParser, LrIngress, LrDeparser) main;
`,
})
