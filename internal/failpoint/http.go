package failpoint

import (
	"encoding/json"
	"net/http"
)

// armRequest is the POST body of the HTTP arming endpoint.
type armRequest struct {
	Site string `json:"site"`
	// Spec arms the site; "" or "off" disarms it.
	Spec string `json:"spec"`
}

// HTTPHandler arms and lists failpoints over HTTP:
//
//	GET  /   armed sites with hit/fired counts ([]SiteStatus)
//	POST /   {"site": "...", "spec": "..."} — arm; empty/"off" spec disarms
//
// p4served mounts it at /v1/failpoints only when HTTPEnabled (the
// P4ASSERT_FAILPOINTS* environment gate); it exists for fault drills and
// the crash-smoke harness, never for production exposure.
func HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, List())
		case http.MethodPost:
			var req armRequest
			if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid body: " + err.Error()})
				return
			}
			if req.Site == "" {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "site is required"})
				return
			}
			if err := Arm(req.Site, req.Spec); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, List())
		default:
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET or POST"})
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
