package failpoint

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// TestSpecKinds parses every action kind and checks the Action payload.
func TestSpecKinds(t *testing.T) {
	defer Reset()

	if err := Arm("k/error", "error(disk full)"); err != nil {
		t.Fatal(err)
	}
	a := Hit("k/error")
	if a == nil || a.Kind != "error" || a.Err == nil {
		t.Fatalf("error action = %+v", a)
	}

	if err := Arm("k/short", "short(7)"); err != nil {
		t.Fatal(err)
	}
	if a := Hit("k/short"); a == nil || a.Kind != "short" || a.N != 7 {
		t.Fatalf("short action = %+v", a)
	}

	if err := Arm("k/delay", "delay(5ms)"); err != nil {
		t.Fatal(err)
	}
	if a := Hit("k/delay"); a == nil || a.Delay != 5*time.Millisecond {
		t.Fatalf("delay action = %+v", a)
	}

	if err := Arm("k/http", "http(429)"); err != nil {
		t.Fatal(err)
	}
	if a := Hit("k/http"); a == nil || a.Status != 429 {
		t.Fatalf("http action = %+v", a)
	}

	if err := Arm("k/corrupt", "corrupt"); err != nil {
		t.Fatal(err)
	}
	if a := Hit("k/corrupt"); a == nil || a.Kind != "corrupt" {
		t.Fatalf("corrupt action = %+v", a)
	}

	for _, bad := range []string{"nope", "short(x)", "delay(banana)", "http(9)", "corrupt(1)", "times(-1):error", "weird(2):error", "short(1"} {
		if err := Arm("k/bad", bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestModifiers checks after/times/every gating arithmetic.
func TestModifiers(t *testing.T) {
	defer Reset()
	if err := Arm("m", "after(2):times(2):error"); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 6; i++ {
		if Hit("m") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("after(2):times(2) fired on hits %v, want [3 4]", fired)
	}

	if err := Arm("e", "every(3):error"); err != nil {
		t.Fatal(err)
	}
	fired = nil
	for i := 1; i <= 9; i++ {
		if Hit("e") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 4 || fired[2] != 7 {
		t.Fatalf("every(3) fired on hits %v, want [1 4 7]", fired)
	}
}

// TestDisarmedFastPath: an unarmed site returns nil, and Reset disarms.
func TestDisarmedFastPath(t *testing.T) {
	defer Reset()
	if Hit("nothing/armed") != nil {
		t.Fatal("unarmed site fired")
	}
	if Enabled() {
		t.Fatal("Enabled with no sites armed")
	}
	if err := Arm("x", "error"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("not Enabled after arming")
	}
	if err := Arm("x", "off"); err != nil {
		t.Fatal(err)
	}
	if Hit("x") != nil || Enabled() {
		t.Fatal("site still armed after off")
	}
}

// TestArmFromSpec exercises the env-var format.
func TestArmFromSpec(t *testing.T) {
	defer Reset()
	if err := ArmFromSpec("a=error, b=times(1):delay(1ms) ,"); err != nil {
		t.Fatal(err)
	}
	if Hit("a") == nil || Hit("b") == nil {
		t.Fatal("env-armed sites did not fire")
	}
	if Hit("b") != nil {
		t.Fatal("times(1) fired twice")
	}
	if err := ArmFromSpec("missing-equals"); err == nil {
		t.Fatal("malformed pair accepted")
	}
}

// TestHTTPHandler arms, lists and disarms over the HTTP surface.
func TestHTTPHandler(t *testing.T) {
	defer Reset()
	h := HTTPHandler()

	body, _ := json.Marshal(armRequest{Site: "h/x", Spec: "times(1):error"})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/", bytes.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("arm: HTTP %d: %s", rec.Code, rec.Body)
	}
	if Hit("h/x") == nil {
		t.Fatal("HTTP-armed site did not fire")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	var list []SiteStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Site != "h/x" || list[0].Hits != 1 || list[0].Fired != 1 {
		t.Fatalf("list = %+v", list)
	}

	body, _ = json.Marshal(armRequest{Site: "h/x", Spec: "off"})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/", bytes.NewReader(body)))
	if rec.Code != 200 || Enabled() {
		t.Fatalf("disarm failed: HTTP %d, enabled=%v", rec.Code, Enabled())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/", bytes.NewReader([]byte(`{"site":"","spec":"error"}`))))
	if rec.Code != 400 {
		t.Fatalf("empty site: HTTP %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/", bytes.NewReader([]byte(`{"site":"y","spec":"bogus"}`))))
	if rec.Code != 400 {
		t.Fatalf("bad spec: HTTP %d, want 400", rec.Code)
	}
}
