// Package failpoint is a build-tag-free fault-injection registry. A
// failpoint is a named site in production code (a WAL write, a cache
// disk read, a cluster RPC) that normally costs one atomic load; when a
// site is armed — programmatically from a test, from the
// P4ASSERT_FAILPOINTS environment variable, or over HTTP
// (POST /v1/failpoints on p4served, see HTTPHandler) — Hit returns the
// injected Action and the caller misbehaves in the requested way.
//
// Sites are threaded through the durability-critical paths: store WAL
// writes (short write, fsync error, corrupt record), vcache disk I/O
// (read error, bit flip, torn write) and cluster RPC (drop, delay, 5xx).
// The crash/fault tests arm them to prove recovery; production binaries
// pay only the disarmed fast path.
//
// Spec grammar (one spec per site):
//
//	[modifier:...]kind[(arg)]
//
// Kinds:
//
//	error[(msg)]   fail the operation with an injected error
//	short[(n)]     perform only the first n bytes of a write (default half)
//	corrupt        flip a byte of the payload in flight
//	delay(dur)     sleep for a Go duration before proceeding
//	http(status)   fail as if the peer answered this HTTP status
//	off            disarm
//
// Modifiers gate when the action fires, counting evaluations of the site:
//
//	after(n)       skip the first n hits
//	times(n)       fire at most n times, then stay silent
//	every(n)       fire on every n-th eligible hit
//
// Examples: "error", "times(1):short(7)", "after(2):every(3):http(503)",
// "delay(150ms)". The environment form is a comma-separated list of
// site=spec pairs:
//
//	P4ASSERT_FAILPOINTS='store/wal/fsync=times(1):error,cluster/rpc/drop=every(2):error'
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar arms sites at process start; EnvHTTP additionally exposes the
// HTTP arming endpoint even when no site is pre-armed.
const (
	EnvVar  = "P4ASSERT_FAILPOINTS"
	EnvHTTP = "P4ASSERT_FAILPOINTS_HTTP"
)

// Action is what an armed site injects.
type Action struct {
	// Kind is one of "error", "short", "corrupt", "delay", "http".
	Kind string
	// N is the byte count of a short write (0 = caller's choice, half by
	// convention).
	N int64
	// Delay is the sleep of a delay action.
	Delay time.Duration
	// Status is the injected HTTP status of an http action (default 503).
	Status int
	// Err is a ready-made error for error/short/http kinds.
	Err error
}

// site is one armed failpoint.
type site struct {
	spec  string
	act   Action
	after int64
	times int64
	every int64
	hits  int64 // evaluations since arming
	fired int64 // actions actually injected
}

var (
	mu    sync.Mutex
	sites = map[string]*site{}
	// armedCount keeps the disarmed fast path to one atomic load.
	armedCount atomic.Int32
)

func init() {
	// Arming errors at init cannot be returned; surface them loudly
	// instead of silently running without the requested faults.
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := ArmFromSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "failpoint: %s: %v\n", EnvVar, err)
		}
	}
}

// Hit evaluates a site. It returns nil when the site is disarmed or its
// modifiers gate this evaluation, and the Action to inject otherwise.
func Hit(name string) *Action {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	s := sites[name]
	if s == nil {
		return nil
	}
	s.hits++
	n := s.hits
	if n <= s.after {
		return nil
	}
	if s.every > 1 && (n-s.after-1)%s.every != 0 {
		return nil
	}
	if s.times > 0 && s.fired >= s.times {
		return nil
	}
	s.fired++
	a := s.act
	return &a
}

// Sleep performs a delay action, returning early with ctx's error if the
// context ends first. ctx may be nil for an unconditional sleep.
func (a *Action) Sleep(done <-chan struct{}) error {
	if a == nil || a.Kind != "delay" || a.Delay <= 0 {
		return nil
	}
	t := time.NewTimer(a.Delay)
	defer t.Stop()
	if done == nil {
		<-t.C
		return nil
	}
	select {
	case <-t.C:
		return nil
	case <-done:
		return errors.New("failpoint: delay interrupted")
	}
}

// Arm installs (or replaces) a site's spec. An empty or "off" spec
// disarms it.
func Arm(name, spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		Disarm(name)
		return nil
	}
	s, err := parseSpec(name, spec)
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	if _, exists := sites[name]; !exists {
		armedCount.Add(1)
	}
	sites[name] = s
	return nil
}

// Disarm removes a site.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := sites[name]; exists {
		delete(sites, name)
		armedCount.Add(-1)
	}
}

// Reset disarms every site. Tests that arm failpoints must defer it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armedCount.Add(int32(-len(sites)))
	sites = map[string]*site{}
}

// ArmFromSpec arms a comma-separated list of site=spec pairs (the
// P4ASSERT_FAILPOINTS format).
func ArmFromSpec(list string) error {
	for _, pair := range strings.Split(list, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		i := strings.Index(pair, "=")
		if i <= 0 {
			return fmt.Errorf("failpoint: malformed pair %q (want site=spec)", pair)
		}
		if err := Arm(pair[:i], pair[i+1:]); err != nil {
			return err
		}
	}
	return nil
}

// Enabled reports whether any site is currently armed.
func Enabled() bool { return armedCount.Load() > 0 }

// HTTPEnabled reports whether the HTTP arming endpoint should be
// mounted: either sites were pre-armed via P4ASSERT_FAILPOINTS or
// P4ASSERT_FAILPOINTS_HTTP=1 requests the endpoint alone. Never mount it
// on an internet-facing listener.
func HTTPEnabled() bool {
	return os.Getenv(EnvVar) != "" || os.Getenv(EnvHTTP) == "1"
}

// SiteStatus is one armed site's state, for listings.
type SiteStatus struct {
	Site  string `json:"site"`
	Spec  string `json:"spec"`
	Hits  int64  `json:"hits"`
	Fired int64  `json:"fired"`
}

// List snapshots every armed site, sorted by name.
func List() []SiteStatus {
	mu.Lock()
	defer mu.Unlock()
	out := make([]SiteStatus, 0, len(sites))
	for name, s := range sites {
		out = append(out, SiteStatus{Site: name, Spec: s.spec, Hits: s.hits, Fired: s.fired})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// parseSpec parses "[mod:...]kind[(arg)]".
func parseSpec(name, spec string) (*site, error) {
	s := &site{spec: spec}
	parts := strings.Split(spec, ":")
	for _, mod := range parts[:len(parts)-1] {
		kind, arg, err := splitCall(mod)
		if err != nil {
			return nil, fmt.Errorf("failpoint %s: %w", name, err)
		}
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("failpoint %s: modifier %q needs a non-negative integer", name, mod)
		}
		switch kind {
		case "after":
			s.after = n
		case "times":
			s.times = n
		case "every":
			s.every = n
		default:
			return nil, fmt.Errorf("failpoint %s: unknown modifier %q", name, kind)
		}
	}
	kind, arg, err := splitCall(parts[len(parts)-1])
	if err != nil {
		return nil, fmt.Errorf("failpoint %s: %w", name, err)
	}
	s.act.Kind = kind
	switch kind {
	case "error":
		msg := arg
		if msg == "" {
			msg = "injected error"
		}
		s.act.Err = fmt.Errorf("failpoint %s: %s", name, msg)
	case "short":
		if arg != "" {
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("failpoint %s: short(%s): want a byte count", name, arg)
			}
			s.act.N = n
		}
		s.act.Err = fmt.Errorf("failpoint %s: injected short write", name)
	case "corrupt":
		if arg != "" {
			return nil, fmt.Errorf("failpoint %s: corrupt takes no argument", name)
		}
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("failpoint %s: delay(%s): want a Go duration", name, arg)
		}
		s.act.Delay = d
	case "http":
		status := 503
		if arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 100 || n > 599 {
				return nil, fmt.Errorf("failpoint %s: http(%s): want a status code", name, arg)
			}
			status = n
		}
		s.act.Status = status
		s.act.Err = fmt.Errorf("failpoint %s: injected HTTP %d", name, status)
	default:
		return nil, fmt.Errorf("failpoint %s: unknown kind %q", name, kind)
	}
	return s, nil
}

// splitCall splits "kind(arg)" or bare "kind" into its parts.
func splitCall(s string) (kind, arg string, err error) {
	s = strings.TrimSpace(s)
	i := strings.Index(s, "(")
	if i < 0 {
		return s, "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("malformed %q (unclosed argument)", s)
	}
	return s[:i], s[i+1 : len(s)-1], nil
}
