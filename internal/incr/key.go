package incr

// Submodel content keys. The implementation lives in internal/exec — the
// transport-agnostic execution boundary — because the keys are shared
// infrastructure: this engine memoizes verdicts under them, and the
// cluster (internal/cluster) routes submodels to worker nodes by them.
// These wrappers keep the incremental engine's historical API surface.

import (
	"p4assert/internal/exec"
	"p4assert/internal/model"
	"p4assert/internal/sym"
)

// SubmodelKey digests a submodel's executable content under the given
// executor options (see exec.SubmodelKey for the covered inputs).
func SubmodelKey(sub *model.Program, opts sym.Options) string {
	return exec.SubmodelKey(sub, opts)
}

// ReachableFuncs returns the functions reachable from the program's entry
// chain by walking Call statements (through If and Fork bodies).
func ReachableFuncs(p *model.Program) map[string]*model.Func {
	return exec.ReachableFuncs(p)
}
