// Package incr is the incremental verification engine: diff-aware
// re-verification with per-submodel memoization. It sits between the
// pipeline orchestrator (internal/core) and the submodel splitter
// (internal/submodel), and lets an edit-verify loop re-execute only the
// submodels an edit can affect while every other submodel replays its
// cached verdict.
//
// Three mechanisms cooperate:
//
//   - Unit fingerprints (units.go): every program unit — parser state,
//     table, action, control block, assertion site, type declarations,
//     rule set — gets a stable content digest over its canonical AST
//     rendering. Diffing two versions' fingerprint maps yields the
//     changed-unit set of an edit.
//
//   - The submodel dependency graph (plan.go): each submodel is linked to
//     the units its entry chain can reach, so the engine can explain which
//     edit invalidated which submodel and report the blast radius of a
//     change.
//
//   - Executable content keys (key.go): the cache key of a submodel is a
//     digest of everything that determines its execution — the global
//     store, the reachable function bodies, the reachable assertion table
//     and the executor options. Symbolic execution is deterministic, so a
//     key hit replays a byte-identical sym.Result without re-exploration.
//     The key, not the AST diff, is the soundness anchor: a cached verdict
//     is reused only when the submodel's executable content is identical,
//     even under edits the unit diff cannot attribute (e.g. assertion-ID
//     renumbering after an inserted @assert).
//
// Cached verdicts live in a Store — a byte-addressed tier the caller
// supplies; internal/vcache's submodel tier implements it with an LRU and
// an optional disk level.
package incr

// Store is the submodel-verdict tier the engine memoizes into. It is
// satisfied by *vcache.Cache; keys are content digests, values are
// EncodeResult payloads.
type Store interface {
	GetBytes(key string) ([]byte, bool)
	PutBytes(key string, data []byte) error
}

// Manifest describes one incremental run: what changed between the two
// program versions and how much cached work was replayed.
type Manifest struct {
	// Delta is the changed-unit set (nil on a warm-up run with no
	// predecessor).
	Delta *Delta `json:"delta,omitempty"`
	// Submodels is how many submodels the program split into.
	Submodels int `json:"submodels"`
	// Reused counts submodels whose verdicts replayed from the store;
	// Executed counts submodels that ran symbolically.
	Reused   int `json:"reused"`
	Executed int `json:"executed"`
	// Runs details each submodel's disposition, in submodel order.
	Runs []SubmodelRun `json:"runs,omitempty"`
}

// SubmodelRun is one submodel's disposition in a Manifest.
type SubmodelRun struct {
	Index int `json:"index"`
	// Key is the submodel's executable content digest (abbreviated).
	Key string `json:"key"`
	// Reused marks a verdict replayed from the store.
	Reused bool `json:"reused"`
	// Reasons lists the changed units this submodel reaches — why it had
	// to re-execute. Empty for reused submodels and for invalidations the
	// unit diff cannot attribute.
	Reasons []string `json:"reasons,omitempty"`
}
