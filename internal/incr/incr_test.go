package incr_test

// The engine's three mechanisms are tested in isolation here — fingerprint
// stability, diff attribution, key precision, and the verdict codec. The
// end-to-end guarantee (incremental report byte-identical to a cold run
// across the whole corpus) lives in internal/difftest.

import (
	"strings"
	"testing"

	"p4assert/internal/incr"
	"p4assert/internal/p4"
	"p4assert/internal/submodel"
	"p4assert/internal/sym"
	"p4assert/internal/translate"
)

// twoArm is a minimal pipeline whose first control decision is a two-action
// table dispatch: the submodel heuristic isolates each action.
const twoArm = `
header h_t { bit<8> a; bit<8> b; }
struct headers_t { h_t h; }
struct metadata_t { bit<8> x; }

parser P(packet_in pkt, out headers_t hdr, inout metadata_t meta,
         inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.h);
        transition accept;
    }
}

control Ing(inout headers_t hdr, inout metadata_t meta,
            inout standard_metadata_t standard_metadata) {
    action left() {
        hdr.h.a = 1;
    }
    action right() {
        hdr.h.b = 2;
    }
    table t {
        key = { hdr.h.a : exact; }
        actions = { left; right; }
        default_action = left;
    }
    apply {
        t.apply();
        @assert("if(traverse_path(), h.a == h.a)");
    }
}

control Eg(inout headers_t hdr, inout metadata_t meta,
           inout standard_metadata_t standard_metadata) {
    apply { }
}

control Dep(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.h); }
}

V1Switch(P, Ing, Eg, Dep) main;
`

func parse(t *testing.T, src string) *p4.Program {
	t.Helper()
	prog, err := p4.Parse("twoarm.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestFingerprintsStable(t *testing.T) {
	a := incr.Units(parse(t, twoArm), nil, false)
	b := incr.Units(parse(t, twoArm), nil, false)
	if len(a) == 0 {
		t.Fatal("no units fingerprinted")
	}
	if d := incr.Diff(a, b); !d.Empty() {
		t.Fatalf("re-parsing the same source changed fingerprints: %+v", d)
	}
}

func TestFingerprintsIgnoreFormatting(t *testing.T) {
	// Reformat one action body: extra indentation and a comment. The
	// canonical rendering must be unaffected (positions are not part of
	// fingerprints unless auto-validity instrumentation is on).
	reformatted := strings.Replace(twoArm,
		"        hdr.h.a = 1;",
		"            // set the left mark\n            hdr.h.a   =   1  ;", 1)
	a := incr.Units(parse(t, twoArm), nil, false)
	b := incr.Units(parse(t, reformatted), nil, false)
	// The edit moves every later statement down, so position-bearing units
	// (assert sites) may move; the action unit itself must not change.
	if a["control Ing/action left"] != b["control Ing/action left"] {
		t.Fatal("formatting-only edit changed an action fingerprint")
	}
}

func TestDiffAttributesEdit(t *testing.T) {
	edited := strings.Replace(twoArm, "hdr.h.b = 2;", "hdr.h.b = 3;", 1)
	d := incr.Diff(
		incr.Units(parse(t, twoArm), nil, false),
		incr.Units(parse(t, edited), nil, false),
	)
	want := []string{"control Ing/action right"}
	if len(d.Changed) != 1 || d.Changed[0] != want[0] || len(d.Added)+len(d.Removed) != 0 {
		t.Fatalf("single-action edit attributed to %+v, want changed=%v", d, want)
	}
	if !d.Touched()["control Ing/action right"] {
		t.Fatal("Touched() misses the changed unit")
	}
}

func TestDiffSeesAddedAssert(t *testing.T) {
	edited := strings.Replace(twoArm, "hdr.h.b = 2;",
		"hdr.h.b = 2;\n        @assert(\"if(traverse_path(), h.b == 2)\")", 1)
	d := incr.Diff(
		incr.Units(parse(t, twoArm), nil, false),
		incr.Units(parse(t, edited), nil, false),
	)
	var sawAssert bool
	for _, u := range d.Added {
		if strings.HasPrefix(u, "assert control Ing/action right") {
			sawAssert = true
		}
	}
	if !sawAssert {
		t.Fatalf("inserted @assert not in added units: %+v", d)
	}
}

func TestSubmodelKeysArePrecise(t *testing.T) {
	subsOf := func(src string) ([]string, int) {
		m, err := translate.Translate(parse(t, src), translate.Options{})
		if err != nil {
			t.Fatal(err)
		}
		subs := submodel.Split(m)
		keys := make([]string, len(subs))
		for i, sub := range subs {
			keys[i] = incr.SubmodelKey(sub, sym.Options{})
		}
		return keys, len(subs)
	}
	base, n := subsOf(twoArm)
	edited, n2 := subsOf(strings.Replace(twoArm, "hdr.h.b = 2;", "hdr.h.b = 3;", 1))
	if n != n2 || n < 2 {
		t.Fatalf("split shape changed or too small: %d vs %d submodels", n, n2)
	}
	same, diff := 0, 0
	for i := range base {
		if base[i] == edited[i] {
			same++
		} else {
			diff++
		}
	}
	// The edit to action right must invalidate the submodels that reach it
	// and no others: at least one key unchanged, at least one changed.
	if same == 0 || diff == 0 {
		t.Fatalf("edit invalidated %d/%d submodels; keys are not precise", diff, n)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m, err := translate.Translate(parse(t, twoArm), translate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sym.Execute(m, sym.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := incr.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := incr.DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics != res.Metrics {
		t.Fatalf("metrics changed across codec: %+v vs %+v", back.Metrics, res.Metrics)
	}
	if len(back.Violations) != len(res.Violations) {
		t.Fatalf("violation count changed: %d vs %d", len(back.Violations), len(res.Violations))
	}
	again, err := incr.EncodeResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("codec is not a fixed point: re-encoding differs")
	}
}

func TestMutateUnitFlipsOneLiteral(t *testing.T) {
	prog, mut, err := incr.MutateUnit("twoarm.p4", twoArm)
	if err != nil {
		t.Fatal(err)
	}
	if prog == nil || mut == nil {
		t.Fatal("no mutation produced")
	}
	if mut.Old == mut.New {
		t.Fatalf("mutation did not change the literal: %+v", mut)
	}
	if !strings.HasPrefix(mut.Unit, "control Ing/action ") {
		t.Fatalf("mutation should prefer action bodies, hit %q", mut.Unit)
	}
}

func TestMutateActionTargets(t *testing.T) {
	_, mut, err := incr.MutateAction("twoarm.p4", twoArm, "right")
	if err != nil {
		t.Fatal(err)
	}
	if mut.Unit != "control Ing/action right" {
		t.Fatalf("MutateAction hit %q, want control Ing/action right", mut.Unit)
	}
	// An action with no integer literal must be rejected, not silently
	// redirected to another unit.
	noLit := strings.Replace(twoArm, "hdr.h.a = 1;", "hdr.h.a = hdr.h.b;", 1)
	if _, _, err := incr.MutateAction("twoarm.p4", noLit, "left"); err == nil {
		t.Fatal("MutateAction on a literal-free action should error")
	}
}
