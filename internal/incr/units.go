package incr

// Unit fingerprinting: every program unit — parser state, table, action,
// control apply block, assertion site, plus the type environment and the
// forwarding-rule configuration — gets a stable content fingerprint
// (SHA-256 of its canonical rendering). The fingerprint map of a program is
// the input to Diff, which turns two program versions into a changed-unit
// set, and to the dependency graph (plan.go), which links each submodel to
// the units it can reach.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"p4assert/internal/p4"
	"p4assert/internal/rules"
)

// Well-known pseudo-unit names. Every submodel depends on these: type
// widths shape every global, the rule set specializes every table, and the
// source file name is embedded in every assertion's report location.
const (
	UnitRules      = "$rules"
	UnitSourceFile = "$file"
	UnitPackage    = "$package"
)

// Fingerprints maps unit names (e.g. "control Ing/action set_port") to
// content digests.
type Fingerprints map[string]string

// Units fingerprints every unit of a checked program under the given rule
// configuration. autoValidity must match Options.AutoValidityChecks: the
// instrumentation embeds statement positions into report locations, so
// fingerprints become position-sensitive under it.
func Units(prog *p4.Program, rs *rules.RuleSet, autoValidity bool) Fingerprints {
	u := Fingerprints{}
	put := func(name string, render func(pr *printer)) {
		pr := &printer{withPos: autoValidity}
		render(pr)
		sum := sha256.Sum256([]byte(pr.b.String()))
		u[name] = hex.EncodeToString(sum[:8])
	}

	put(UnitSourceFile, func(pr *printer) { pr.ws(prog.File) })
	put(UnitRules, func(pr *printer) {
		if rs != nil {
			pr.ws(rules.Render(rs))
		}
	})
	if prog.Package != nil {
		put(UnitPackage, func(pr *printer) {
			pr.ws(prog.Package.TypeName, " ", prog.Package.Name, "(")
			for _, a := range prog.Package.Args {
				pr.ws(a, ", ")
			}
			pr.ws(")")
		})
	}
	for _, d := range prog.Typedefs {
		d := d
		put("typedef "+d.Name, func(pr *printer) { pr.typ(d.Type) })
	}
	for _, d := range prog.Consts {
		d := d
		put("const "+d.Name, func(pr *printer) {
			pr.typ(d.Type)
			pr.ws(" = ")
			pr.expr(d.Value)
		})
	}
	for _, d := range prog.Headers {
		d := d
		put("header "+d.Name, func(pr *printer) { pr.fields(d.Fields) })
	}
	for _, d := range prog.Structs {
		d := d
		put("struct "+d.Name, func(pr *printer) { pr.fields(d.Fields) })
	}
	for _, pd := range prog.Parsers {
		pd := pd
		put("parser "+pd.Name, func(pr *printer) { pr.params(pd.Params) })
		for _, st := range pd.States {
			st := st
			put(fmt.Sprintf("parser %s/%s", pd.Name, st.Name), func(pr *printer) {
				pr.stmts(st.Body)
				pr.transition(st.Transition)
			})
			collectAsserts(u, st.Body, fmt.Sprintf("parser %s/%s", pd.Name, st.Name))
		}
	}
	for _, cd := range prog.Controls {
		cd := cd
		put("control "+cd.Name, func(pr *printer) {
			pr.params(cd.Params)
			for _, l := range cd.Locals {
				pr.local(l)
			}
		})
		for _, a := range cd.Actions {
			a := a
			put(fmt.Sprintf("control %s/action %s", cd.Name, a.Name), func(pr *printer) {
				pr.params(a.Params)
				pr.stmts(a.Body)
			})
			collectAsserts(u, a.Body, fmt.Sprintf("control %s/action %s", cd.Name, a.Name))
		}
		for _, tb := range cd.Tables {
			tb := tb
			put(fmt.Sprintf("control %s/table %s", cd.Name, tb.Name), func(pr *printer) {
				pr.table(tb)
			})
		}
		if cd.Apply != nil {
			put(fmt.Sprintf("control %s/apply", cd.Name), func(pr *printer) {
				pr.stmts(cd.Apply.Stmts)
			})
			collectAsserts(u, cd.Apply.Stmts, fmt.Sprintf("control %s/apply", cd.Name))
		}
	}
	return u
}

// collectAsserts adds one unit per @assert site nested in body. The unit
// name carries the site position (assertion identity in reports is
// positional), the fingerprint covers text and position.
func collectAsserts(u Fingerprints, body []p4.Stmt, scope string) {
	walkStmts(body, func(s p4.Stmt) {
		if a, ok := s.(*p4.AssertStmt); ok {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%s", a.Pos, a.Text)))
			u[fmt.Sprintf("assert %s @%s", scope, a.Pos)] = hex.EncodeToString(sum[:8])
		}
	})
}

// walkStmts visits every statement in body, depth-first.
func walkStmts(body []p4.Stmt, visit func(p4.Stmt)) {
	for _, s := range body {
		visit(s)
		switch x := s.(type) {
		case *p4.BlockStmt:
			walkStmts(x.Stmts, visit)
		case *p4.IfStmt:
			walkStmts(x.Then.Stmts, visit)
			if x.Else != nil {
				walkStmts([]p4.Stmt{x.Else}, visit)
			}
		}
	}
}

// Delta is the outcome of diffing two fingerprint maps.
type Delta struct {
	// Changed lists units present in both versions with differing
	// fingerprints; Added/Removed list units present in only one version.
	// All three are sorted.
	Changed []string `json:"changed,omitempty"`
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
}

// Empty reports a structurally identical pair of programs.
func (d *Delta) Empty() bool {
	return d == nil || len(d.Changed)+len(d.Added)+len(d.Removed) == 0
}

// Touched returns the union of changed, added and removed unit names.
func (d *Delta) Touched() map[string]bool {
	if d == nil {
		return nil
	}
	t := make(map[string]bool, len(d.Changed)+len(d.Added)+len(d.Removed))
	for _, lists := range [][]string{d.Changed, d.Added, d.Removed} {
		for _, n := range lists {
			t[n] = true
		}
	}
	return t
}

// Diff structurally compares two unit fingerprint maps.
func Diff(prev, next Fingerprints) *Delta {
	d := &Delta{}
	for name, fp := range next {
		old, ok := prev[name]
		switch {
		case !ok:
			d.Added = append(d.Added, name)
		case old != fp:
			d.Changed = append(d.Changed, name)
		}
	}
	for name := range prev {
		if _, ok := next[name]; !ok {
			d.Removed = append(d.Removed, name)
		}
	}
	sort.Strings(d.Changed)
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d
}
