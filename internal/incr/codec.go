package incr

// Serialization of cached submodel verdicts. The payload is the
// deterministic part of a sym.Result — violations (with counterexample
// models and fork traces) and effort metrics. Exhausted results are never
// encoded: how far a budget-cut run got is wall-clock-dependent, not
// content-determined.

import (
	"encoding/json"
	"errors"

	"p4assert/internal/sym"
)

// cachedResult is the stored form of one submodel's verdict.
type cachedResult struct {
	Violations []*sym.Violation `json:"violations,omitempty"`
	Metrics    sym.Metrics      `json:"metrics"`
}

// ErrExhausted rejects caching a result whose exploration was cut short.
var ErrExhausted = errors.New("incr: exhausted results are not cacheable")

// EncodeResult serializes a submodel verdict for the store.
func EncodeResult(res *sym.Result) ([]byte, error) {
	if res.Exhausted {
		return nil, ErrExhausted
	}
	return json.Marshal(&cachedResult{Violations: res.Violations, Metrics: res.Metrics})
}

// DecodeResult deserializes a stored submodel verdict.
func DecodeResult(data []byte) (*sym.Result, error) {
	var c cachedResult
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	return &sym.Result{Violations: c.Violations, Metrics: c.Metrics}, nil
}
