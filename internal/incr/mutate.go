package incr

// Single-unit program mutation: the edit generator behind the corpus-wide
// incremental-vs-cold equivalence test (internal/difftest) and the
// incremental benchmark (internal/bench). It simulates the canonical
// edit-verify-loop step — a developer touching exactly one action — by
// flipping the low bit of one integer literal inside one unit's body,
// which changes semantics (so cached verdicts for affected submodels are
// genuinely stale) while preserving positions, types and program shape
// (so the edit stays confined to that unit's fingerprint).

import (
	"fmt"

	"p4assert/internal/p4"
)

// Mutation describes one applied single-unit edit.
type Mutation struct {
	// Unit names the edited unit (e.g. "control Ing/action set_port").
	Unit string
	// Pos is the edited literal's source position.
	Pos p4.Pos
	// Old and New are the literal values before and after.
	Old, New uint64
}

// MutateUnit parses source afresh and flips the low bit of the first
// integer literal found in a unit body — action bodies first (the
// edit-loop case the paper's workflow optimizes for), then control apply
// blocks, then parser states. The mutated program is type-checked before
// being returned. Returns an error when the program offers no mutable
// literal.
func MutateUnit(filename, source string) (*p4.Program, *Mutation, error) {
	return mutate(filename, source, "")
}

// MutateAction is MutateUnit restricted to one named action (the benchmark
// edits a specific action of the largest corpus program). action is the
// bare action name; it must contain a mutable integer literal.
func MutateAction(filename, source, action string) (*p4.Program, *Mutation, error) {
	return mutate(filename, source, action)
}

func mutate(filename, source, action string) (*p4.Program, *Mutation, error) {
	prog, err := p4.Parse(filename, source)
	if err != nil {
		return nil, nil, err
	}
	mut := findLiteral(prog, action)
	if mut == nil {
		if action != "" {
			return nil, nil, fmt.Errorf("incr: no mutable integer literal in action %s of %s", action, filename)
		}
		return nil, nil, fmt.Errorf("incr: no mutable integer literal in %s", filename)
	}
	if err := prog.Check(); err != nil {
		return nil, nil, fmt.Errorf("incr: mutated %s no longer checks: %w", filename, err)
	}
	return prog, mut, nil
}

// findLiteral locates and flips the first literal, preferring action
// bodies. A non-empty action name restricts the search to that action.
// It returns nil when no candidate unit contains an integer literal.
func findLiteral(prog *p4.Program, action string) *Mutation {
	for _, cd := range prog.Controls {
		for _, a := range cd.Actions {
			if action != "" && a.Name != action {
				continue
			}
			if m := flipInBody(a.Body); m != nil {
				m.Unit = fmt.Sprintf("control %s/action %s", cd.Name, a.Name)
				return m
			}
		}
	}
	if action != "" {
		return nil
	}
	for _, cd := range prog.Controls {
		if cd.Apply == nil {
			continue
		}
		if m := flipInBody(cd.Apply.Stmts); m != nil {
			m.Unit = fmt.Sprintf("control %s/apply", cd.Name)
			return m
		}
	}
	for _, pd := range prog.Parsers {
		for _, st := range pd.States {
			if m := flipInBody(st.Body); m != nil {
				m.Unit = fmt.Sprintf("parser %s/%s", pd.Name, st.Name)
				return m
			}
		}
	}
	return nil
}

// flipInBody flips the first integer literal on the right-hand side of an
// assignment (or in a call argument) within body. Only value-position
// literals are touched: select-case and table-entry key sets keep their
// shape so the program still checks.
func flipInBody(body []p4.Stmt) *Mutation {
	var found *Mutation
	walkStmts(body, func(s p4.Stmt) {
		if found != nil {
			return
		}
		switch x := s.(type) {
		case *p4.AssignStmt:
			found = flipInExpr(x.RHS)
		case *p4.CallStmt:
			for _, a := range x.Call.Args {
				if found = flipInExpr(a); found != nil {
					return
				}
			}
		case *p4.IfStmt:
			found = flipInExpr(x.Cond)
		}
	})
	return found
}

// flipInExpr flips the first NumberLit in e, returning its description.
func flipInExpr(e p4.Expr) *Mutation {
	switch x := e.(type) {
	case *p4.NumberLit:
		old := x.Value
		x.Value ^= 1
		return &Mutation{Pos: x.Pos, Old: old, New: x.Value}
	case *p4.Unary:
		return flipInExpr(x.X)
	case *p4.Binary:
		if m := flipInExpr(x.X); m != nil {
			return m
		}
		return flipInExpr(x.Y)
	case *p4.Ternary:
		if m := flipInExpr(x.Cond); m != nil {
			return m
		}
		if m := flipInExpr(x.Then); m != nil {
			return m
		}
		return flipInExpr(x.Else)
	case *p4.CallExpr:
		for _, a := range x.Args {
			if m := flipInExpr(a); m != nil {
				return m
			}
		}
	case *p4.CastExpr:
		return flipInExpr(x.X)
	}
	return nil
}
