package incr

// Canonical AST rendering for unit fingerprints. The rendering is a
// deterministic, whitespace-normalized serialization of the typed AST
// (internal/p4): two units render identically iff they are structurally
// identical. Source positions are omitted except where they leak into
// verification output — @assert sites embed their position because the
// translator bakes it into AssertInfo.Location, which appears verbatim in
// reports — so formatting-only edits elsewhere do not perturb fingerprints.
//
// A printer with IncludePositions set renders every statement with its
// position; the engine switches this on under Options.AutoValidityChecks,
// where the translator stamps each instrumented header access with its
// source position.

import (
	"fmt"
	"strings"

	"p4assert/internal/p4"
)

// printer accumulates the canonical rendering.
type printer struct {
	b strings.Builder
	// IncludePositions renders every statement position, not only @assert
	// sites (needed under AutoValidityChecks instrumentation).
	withPos bool
}

func (pr *printer) ws(parts ...string) {
	for _, p := range parts {
		pr.b.WriteString(p)
	}
}

func (pr *printer) wf(format string, args ...any) {
	fmt.Fprintf(&pr.b, format, args...)
}

// ------------------------------------------------------------------ types --

func (pr *printer) typ(t p4.Type) {
	switch x := t.(type) {
	case nil:
		pr.ws("<nil>")
	case *p4.BitType:
		pr.wf("bit<%d>", x.Width)
	case *p4.BoolType:
		pr.ws("bool")
	case *p4.NamedType:
		pr.ws("named(", x.Name, ")")
	case *p4.HeaderRef:
		pr.ws("headerref(", x.Decl.Name, ")")
	case *p4.StructRef:
		pr.ws("structref(", x.Decl.Name, ")")
	default:
		pr.wf("type(%T)", t)
	}
}

func (pr *printer) params(ps []p4.Param) {
	pr.ws("(")
	for i, p := range ps {
		if i > 0 {
			pr.ws(", ")
		}
		pr.wf("dir%d ", p.Dir)
		pr.typ(p.Type)
		pr.ws(" ", p.Name)
	}
	pr.ws(")")
}

func (pr *printer) fields(fs []p4.Field) {
	pr.ws("{")
	for _, f := range fs {
		pr.typ(f.Type)
		pr.ws(" ", f.Name, "; ")
	}
	pr.ws("}")
}

// ------------------------------------------------------------ expressions --

func (pr *printer) expr(e p4.Expr) {
	switch x := e.(type) {
	case nil:
		pr.ws("<nil>")
	case *p4.Ident:
		pr.ws(x.Name)
	case *p4.Member:
		pr.expr(x.X)
		pr.ws(".", x.Name)
	case *p4.NumberLit:
		pr.wf("%dw%d", x.Width, x.Value)
	case *p4.BoolLit:
		pr.wf("%t", x.Value)
	case *p4.Unary:
		pr.wf("u%d(", x.Op)
		pr.expr(x.X)
		pr.ws(")")
	case *p4.Binary:
		pr.wf("b%d(", x.Op)
		pr.expr(x.X)
		pr.ws(", ")
		pr.expr(x.Y)
		pr.ws(")")
	case *p4.Ternary:
		pr.ws("cond(")
		pr.expr(x.Cond)
		pr.ws(", ")
		pr.expr(x.Then)
		pr.ws(", ")
		pr.expr(x.Else)
		pr.ws(")")
	case *p4.CallExpr:
		pr.ws("call(")
		pr.expr(x.Fun)
		for _, a := range x.Args {
			pr.ws(", ")
			pr.expr(a)
		}
		pr.ws(")")
	case *p4.CastExpr:
		pr.ws("cast[")
		pr.typ(x.Type)
		pr.ws("](")
		pr.expr(x.X)
		pr.ws(")")
	default:
		pr.wf("expr(%T)", e)
	}
}

func (pr *printer) caseValue(cv p4.CaseValue) {
	if cv.Default {
		pr.ws("default")
		return
	}
	pr.expr(cv.Expr)
	if cv.Mask != nil {
		pr.ws(" &&& ")
		pr.expr(cv.Mask)
	}
}

// ------------------------------------------------------------- statements --

func (pr *printer) stmts(body []p4.Stmt) {
	pr.ws("{")
	for _, s := range body {
		pr.stmt(s)
	}
	pr.ws("}")
}

func (pr *printer) stmt(s p4.Stmt) {
	switch x := s.(type) {
	case nil:
		pr.ws("<nil>;")
	case *p4.BlockStmt:
		pr.pos(x.Pos)
		pr.stmts(x.Stmts)
	case *p4.AssignStmt:
		pr.pos(x.Pos)
		pr.expr(x.LHS)
		pr.ws(" = ")
		pr.expr(x.RHS)
		pr.ws("; ")
	case *p4.CallStmt:
		pr.pos(x.Pos)
		pr.expr(x.Call)
		pr.ws("; ")
	case *p4.IfStmt:
		pr.pos(x.Pos)
		pr.ws("if (")
		pr.expr(x.Cond)
		pr.ws(") ")
		pr.stmts(x.Then.Stmts)
		if x.Else != nil {
			pr.ws(" else ")
			pr.stmt(x.Else)
		}
	case *p4.VarDeclStmt:
		pr.pos(x.Pos)
		pr.ws("var ")
		pr.typ(x.Type)
		pr.ws(" ", x.Name)
		if x.Init != nil {
			pr.ws(" = ")
			pr.expr(x.Init)
		}
		pr.ws("; ")
	case *p4.AssertStmt:
		// Position always included: the translator embeds it in the
		// assertion's report Location.
		pr.wf("@%s:assert(%q); ", x.Pos, x.Text)
	case *p4.AssumeStmt:
		pr.pos(x.Pos)
		pr.ws("assume(")
		pr.expr(x.Cond)
		pr.ws("); ")
	case *p4.ExitStmt:
		pr.pos(x.Pos)
		pr.ws("exit; ")
	case *p4.ReturnStmt:
		pr.pos(x.Pos)
		pr.ws("return; ")
	default:
		pr.wf("stmt(%T); ", s)
	}
}

// pos renders a statement position only under IncludePositions.
func (pr *printer) pos(p p4.Pos) {
	if pr.withPos {
		pr.wf("@%s:", p)
	}
}

// ------------------------------------------------------------ declarations --

func (pr *printer) transition(tr p4.Transition) {
	switch x := tr.(type) {
	case nil:
		pr.ws("transition accept; ")
	case *p4.TransDirect:
		pr.ws("transition ", x.Target, "; ")
	case *p4.TransSelect:
		pr.ws("transition select(")
		for i, e := range x.Exprs {
			if i > 0 {
				pr.ws(", ")
			}
			pr.expr(e)
		}
		pr.ws(") {")
		for _, c := range x.Cases {
			for i, v := range c.Values {
				if i > 0 {
					pr.ws(", ")
				}
				pr.caseValue(v)
			}
			pr.ws(": ", c.Target, "; ")
		}
		pr.ws("} ")
	default:
		pr.wf("transition(%T); ", tr)
	}
}

func (pr *printer) actionCall(ac *p4.ActionCall) {
	if ac == nil {
		pr.ws("<none>")
		return
	}
	pr.ws(ac.Name, "(")
	for i, a := range ac.Args {
		if i > 0 {
			pr.ws(", ")
		}
		pr.expr(a)
	}
	pr.ws(")")
}

func (pr *printer) table(tb *p4.TableDecl) {
	pr.ws("table ", tb.Name, " key {")
	for _, k := range tb.Keys {
		pr.expr(k.Expr)
		pr.ws(": ", k.Match.String(), "; ")
	}
	pr.ws("} actions {")
	for _, a := range tb.Actions {
		pr.ws(a, "; ")
	}
	pr.ws("} default ")
	pr.actionCall(tb.DefaultAction)
	pr.wf(" size %d entries {", tb.Size)
	for _, e := range tb.ConstEntries {
		for i, v := range e.Keys {
			if i > 0 {
				pr.ws(", ")
			}
			pr.caseValue(v)
		}
		pr.ws(": ")
		pr.actionCall(&e.Action)
		pr.ws("; ")
	}
	pr.ws("}")
}

func (pr *printer) local(l *p4.LocalDecl) {
	pr.wf("local k%d ", l.Kind)
	pr.typ(l.Type)
	pr.ws(" ", l.Name)
	if l.Init != nil {
		pr.ws(" = ")
		pr.expr(l.Init)
	}
	if l.Size != nil {
		pr.ws(" size ")
		pr.expr(l.Size)
	}
	for _, a := range l.ExternAr {
		pr.ws(" arg ")
		pr.expr(a)
	}
	pr.ws("; ")
}
