package incr

// A Plan binds one program version's submodels to their content keys and
// their reachable units (the dependency graph). Run then replays every
// submodel whose key hits the store and symbolically executes the rest on
// a bounded worker pool — the incremental analogue of submodel.Run.

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"p4assert/internal/exec"
	"p4assert/internal/model"
	"p4assert/internal/p4"
	"p4assert/internal/submodel"
	"p4assert/internal/sym"
	"p4assert/internal/telemetry"
)

// Plan is the prepared incremental run for one translated program.
type Plan struct {
	// Submodels are the split submodels, in canonical split order.
	Submodels []*model.Program
	// Keys holds each submodel's executable content key.
	Keys []string
	// Reachable lists, per submodel, the named units its entry chain can
	// reach (sorted): the dependency-graph edges used to attribute
	// invalidations to edits.
	Reachable [][]string

	symOpts sym.Options
}

// NewPlan splits the translated model and computes each submodel's content
// key and reachable-unit set. prog is the typed AST the model was
// translated from; it names the units the dependency graph maps model
// functions back to.
func NewPlan(m *model.Program, prog *p4.Program, symOpts sym.Options) *Plan {
	subs := submodel.Split(m)
	p := &Plan{
		Submodels: subs,
		Keys:      make([]string, len(subs)),
		Reachable: make([][]string, len(subs)),
		symOpts:   symOpts,
	}
	units := newUnitMapper(prog)
	for i, sub := range subs {
		p.Keys[i] = SubmodelKey(sub, symOpts)
		p.Reachable[i] = units.reachableUnits(sub)
	}
	return p
}

// RunStats summarizes a Run's cache behaviour.
type RunStats struct {
	Reused   int
	Executed int
	Runs     []SubmodelRun
}

// Run produces every submodel's sym.Result: store hits replay their cached
// verdict, misses execute on up to workers goroutines and are stored back.
// touched, when non-nil, is the changed-unit set of the edit (Delta.Touched)
// used to annotate each re-executed submodel with the reachable units that
// changed. A nil store disables memoization (every submodel executes).
func (p *Plan) Run(ctx context.Context, store Store, workers int, touched map[string]bool) ([]*sym.Result, *RunStats, error) {
	return p.RunExec(ctx, store, workers, touched, exec.Local{}, nil)
}

// RunExec is Run with the submodel executions routed through ex — the
// transport-agnostic boundary that makes the local pool and a remote
// cluster dispatch interchangeable. Store hits still replay locally
// (the store is this process's verdict tier); only misses travel to the
// executor. job, when non-nil, rides along on every request so remote
// executors can rebuild the submodels from source.
func (p *Plan) RunExec(ctx context.Context, store Store, workers int, touched map[string]bool, ex exec.Executor, job *exec.JobSpec) ([]*sym.Result, *RunStats, error) {
	n := len(p.Submodels)
	results := make([]*sym.Result, n)
	stats := &RunStats{Runs: make([]SubmodelRun, n)}

	var missed []int
	for i := range p.Submodels {
		run := SubmodelRun{Index: i, Key: shortKey(p.Keys[i])}
		if store != nil {
			if data, ok := store.GetBytes(p.Keys[i]); ok {
				if res, err := DecodeResult(data); err == nil {
					results[i] = res
					run.Reused = true
					stats.Reused++
					stats.Runs[i] = run
					// A reused submodel appears in the trace as a zero-cost
					// cached span (same name and attributes as a cold run's)
					// rather than as a gap, so trace timelines stay
					// structurally comparable between cold and warm runs.
					_, sp := telemetry.StartLane(ctx, fmt.Sprintf("submodel[%d]", i))
					sp.MarkCached()
					submodel.AnnotateSpan(sp, res.Metrics)
					sp.End()
					continue
				}
				// A corrupt entry re-executes and is overwritten below.
			}
		}
		run.Reasons = intersect(p.Reachable[i], touched)
		stats.Runs[i] = run
		missed = append(missed, i)
	}
	stats.Executed = len(missed)

	reqs := make([]*exec.Request, len(missed))
	for j, i := range missed {
		reqs[j] = &exec.Request{
			Submodel: p.Submodels[i],
			Index:    i,
			Total:    n,
			Key:      p.Keys[i],
			Opts:     p.symOpts,
			Job:      job,
		}
	}
	out, err := exec.RunAll(ctx, reqs, ex, workers)
	if err != nil {
		return nil, nil, err
	}

	for j, i := range missed {
		results[i] = out[j]
		if store != nil && !results[i].Exhausted {
			if data, err := EncodeResult(results[i]); err == nil {
				store.PutBytes(p.Keys[i], data)
			}
		}
	}
	return results, stats, nil
}

// shortKey abbreviates a content key for manifests and logs.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// intersect returns the sorted members of names present in set.
func intersect(names []string, set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	var out []string
	for _, n := range names {
		if set[n] {
			out = append(out, n)
		}
	}
	return out
}

// ---------------------------------------------------- dependency mapping --

// unitMapper maps model function names and assertion sites back to the
// named units of the AST they were translated from.
type unitMapper struct {
	// funcUnit maps a model function name to its unit name.
	funcUnit map[string]string
	// controlOf maps a "<Control>." prefix to the control's signature unit
	// (locals, registers): the fallback for generated helper functions.
	controlOf map[string]string
	// assertAt maps a "line:col" position to the assertion-site unit there.
	assertAt map[string]string
	// always lists units every submodel depends on: the type environment,
	// the rule set, the package instantiation and the source file name.
	always []string
}

func newUnitMapper(prog *p4.Program) *unitMapper {
	um := &unitMapper{
		funcUnit:  map[string]string{},
		controlOf: map[string]string{},
		assertAt:  map[string]string{},
	}
	if prog == nil {
		return um
	}
	um.always = append(um.always, UnitSourceFile, UnitRules)
	if prog.Package != nil {
		um.always = append(um.always, UnitPackage)
	}
	for _, d := range prog.Typedefs {
		um.always = append(um.always, "typedef "+d.Name)
	}
	for _, d := range prog.Consts {
		um.always = append(um.always, "const "+d.Name)
	}
	for _, d := range prog.Headers {
		um.always = append(um.always, "header "+d.Name)
	}
	for _, d := range prog.Structs {
		um.always = append(um.always, "struct "+d.Name)
	}
	for _, pd := range prog.Parsers {
		um.funcUnit[pd.Name] = "parser " + pd.Name
		um.controlOf[pd.Name+"."] = "parser " + pd.Name
		for _, st := range pd.States {
			scope := "parser " + pd.Name + "/" + st.Name
			um.funcUnit[pd.Name+"."+st.Name] = scope
			indexAsserts(um, st.Body, scope)
		}
	}
	for _, cd := range prog.Controls {
		um.funcUnit[cd.Name] = "control " + cd.Name + "/apply"
		um.controlOf[cd.Name+"."] = "control " + cd.Name
		for _, a := range cd.Actions {
			scope := "control " + cd.Name + "/action " + a.Name
			um.funcUnit[cd.Name+"."+a.Name] = scope
			indexAsserts(um, a.Body, scope)
		}
		for _, tb := range cd.Tables {
			um.funcUnit[cd.Name+"."+tb.Name] = "control " + cd.Name + "/table " + tb.Name
		}
		if cd.Apply != nil {
			indexAsserts(um, cd.Apply.Stmts, "control "+cd.Name+"/apply")
		}
	}
	return um
}

func indexAsserts(um *unitMapper, body []p4.Stmt, scope string) {
	walkStmts(body, func(s p4.Stmt) {
		if a, ok := s.(*p4.AssertStmt); ok {
			um.assertAt[a.Pos.String()] = "assert " + scope + " @" + a.Pos.String()
		}
	})
}

// reachableUnits resolves a submodel's reachable functions and assertion
// checks to unit names (sorted, deduplicated).
func (um *unitMapper) reachableUnits(sub *model.Program) []string {
	seen := map[string]bool{}
	for _, u := range um.always {
		seen[u] = true
	}
	reach := exec.ReachableFuncs(sub)
	for name := range reach {
		if u, ok := um.funcUnit[name]; ok {
			seen[u] = true
			continue
		}
		for prefix, u := range um.controlOf {
			if strings.HasPrefix(name, prefix) {
				seen[u] = true
				break
			}
		}
	}
	for _, id := range exec.ReachableAssertIDs(sub, reach) {
		if id < 0 || id >= len(sub.Asserts) {
			continue
		}
		if u, ok := um.assertAt[locationPos(sub.Asserts[id].Location)]; ok {
			seen[u] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// locationPos extracts the "line:col" of an AssertInfo.Location, which is
// rendered as "file:line:col (block)".
func locationPos(loc string) string {
	if i := strings.LastIndex(loc, " ("); i >= 0 {
		loc = loc[:i]
	}
	parts := strings.Split(loc, ":")
	if len(parts) < 2 {
		return ""
	}
	return parts[len(parts)-2] + ":" + parts[len(parts)-1]
}
