package slicer

import (
	"errors"
	"sort"
	"testing"

	"p4assert/internal/model"
	"p4assert/internal/p4"
	"p4assert/internal/sym"
	"p4assert/internal/translate"
	"p4assert/internal/whippersnapper"
)

func TestRecursionRefused(t *testing.T) {
	p := model.NewProgram()
	p.AddFunc(&model.Func{Name: "a", Body: []model.Stmt{&model.Call{Func: "b"}}})
	p.AddFunc(&model.Func{Name: "b", Body: []model.Stmt{&model.Call{Func: "a"}}})
	p.Entry = []string{"a"}
	_, err := Slice(p)
	if !errors.Is(err, ErrRecursion) {
		t.Fatalf("err = %v, want ErrRecursion", err)
	}
}

func TestSelfLoopRefused(t *testing.T) {
	p := model.NewProgram()
	p.AddFunc(&model.Func{Name: "s", Body: []model.Stmt{&model.Call{Func: "s"}}})
	p.Entry = []string{"s"}
	if _, err := Slice(p); !errors.Is(err, ErrRecursion) {
		t.Fatalf("self-loop: err = %v", err)
	}
}

func TestIrrelevantTableRemoved(t *testing.T) {
	// A table whose actions touch nothing the assertion observes must
	// vanish from the slice, removing its fork entirely.
	src := `
header h_t { bit<8> a; bit<8> b; }
struct hs { h_t h; }
struct ms { bit<1> u; }
parser P(packet_in pkt, out hs hdr, inout ms meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout hs hdr, inout ms meta,
          inout standard_metadata_t standard_metadata) {
    action touch_b(bit<8> v) { hdr.h.b = v; }
    action nop() { }
    table irrelevant {
        key = { hdr.h.b : exact; }
        actions = { touch_b; nop; }
        default_action = nop;
    }
    apply {
        irrelevant.apply();
        @assert("h.a == h.a");
    }
}
control D(packet_out pkt, in hs hdr) { apply { } }
V1Switch(P, I, D) main;
`
	prog, err := p4.Parse("s.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	m, err := translate.Translate(prog, translate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sliced, err := Slice(m)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := sym.Execute(m, sym.Options{})
	r2, _ := sym.Execute(sliced, sym.Options{})
	if r2.Metrics.Paths >= r1.Metrics.Paths {
		t.Fatalf("slice should remove the irrelevant fork: %d vs %d paths",
			r2.Metrics.Paths, r1.Metrics.Paths)
	}
	if r2.Metrics.Paths != 1 {
		t.Fatalf("sliced program should have 1 path, got %d", r2.Metrics.Paths)
	}
}

// TestSliceVerdictEquivalence is the DESIGN.md property: slicing preserves
// the set of violated assertions on sliceable programs.
func TestSliceVerdictEquivalence(t *testing.T) {
	for _, cfg := range []whippersnapper.Config{
		{Tables: 2, Assertions: 3},
		{Tables: 3, Assertions: 1},
		{Tables: 2, RulesPerTable: 4, Assertions: 2},
	} {
		src := whippersnapper.Generate(cfg)
		prog, err := p4.Parse("ws.p4", src)
		if err != nil {
			t.Fatal(err)
		}
		if err := prog.Check(); err != nil {
			t.Fatal(err)
		}
		m, err := translate.Translate(prog, translate.Options{Rules: whippersnapper.GenerateRules(cfg)})
		if err != nil {
			t.Fatal(err)
		}
		sliced, err := Slice(m)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		r1, _ := sym.Execute(m, sym.Options{})
		r2, _ := sym.Execute(sliced, sym.Options{})
		if !sameIDs(r1, r2) {
			t.Fatalf("cfg %+v: verdicts differ: %v vs %v", cfg, r1.Violations, r2.Violations)
		}
		if r2.Metrics.Instructions > r1.Metrics.Instructions {
			t.Fatalf("cfg %+v: slice increased instructions", cfg)
		}
	}
}

func sameIDs(a, b *sym.Result) bool {
	ids := func(r *sym.Result) []int {
		var out []int
		for _, v := range r.Violations {
			out = append(out, v.AssertID)
		}
		sort.Ints(out)
		return out
	}
	x, y := ids(a), ids(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func TestAssumesSurviveSlicing(t *testing.T) {
	// Dropping assumes would change which paths exist; they must be kept.
	p := model.NewProgram()
	p.AddGlobal("x", 8, true, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.Assume{Cond: &model.Bin{Op: model.OpEq, X: &model.Ref{Name: "x"}, Y: &model.Const{Width: 8, Val: 3}}},
		&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpEq, X: &model.Ref{Name: "x"}, Y: &model.Const{Width: 8, Val: 3}}},
	}})
	p.Entry = []string{"main"}
	p.Asserts = []*model.AssertInfo{{ID: 0}}
	sliced, err := Slice(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sliced.Funcs["main"].Body) != 2 {
		t.Fatalf("assume or assert dropped:\n%s", sliced.Dump())
	}
	r, _ := sym.Execute(sliced, sym.Options{})
	if len(r.Violations) != 0 {
		t.Fatal("verdict changed by slicing")
	}
}
