// Package slicer implements backward program slicing over the model IR,
// standing in for the paper's use of the Frama-C slicing plug-in (§4.2).
// The slicing criteria are the variables the program's assertions observe;
// everything that cannot affect them — data or control — is removed, which
// shrinks the path space the symbolic executor must cover.
//
// Like Frama-C, the slicer refuses programs with recursive call structure
// (the paper reports exactly this failure on MRI's recursive parser and
// shows "-" entries in Table 2).
package slicer

import (
	"errors"
	"fmt"

	"p4assert/internal/model"
)

// ErrRecursion is reported for models with recursive (cyclic) call graphs.
var ErrRecursion = errors.New("slicer: program has a recursive parser/call cycle; slicing unsupported")

// Slice returns a reduced clone of p preserving the behaviour of all
// assertion checks. It fails with ErrRecursion on cyclic call graphs.
func Slice(p *model.Program) (*model.Program, error) {
	if err := checkAcyclic(p); err != nil {
		return nil, err
	}
	s := &slicer{p: p, relevant: map[string]bool{}}
	s.seed()
	s.fixpoint()
	q := p.Clone()
	for name, f := range q.Funcs {
		f.Body = s.sliceBody(f.Body)
		q.Funcs[name] = f
	}
	// Iteratively drop calls to functions that sliced to nothing.
	for i := 0; i < 8; i++ {
		empty := map[string]bool{}
		for name, f := range q.Funcs {
			if len(f.Body) == 0 {
				empty[name] = true
			}
		}
		changed := false
		for _, f := range q.Funcs {
			f.Body = dropEmptyCalls(f.Body, empty, &changed)
		}
		if !changed {
			break
		}
	}
	return q, nil
}

// checkAcyclic walks the call graph looking for cycles.
func checkAcyclic(p *model.Program) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(fn string) error
	visit = func(fn string) error {
		switch color[fn] {
		case grey:
			return fmt.Errorf("%w (via %s)", ErrRecursion, fn)
		case black:
			return nil
		}
		color[fn] = grey
		f, ok := p.Funcs[fn]
		if ok {
			for _, callee := range calls(f.Body, nil) {
				if err := visit(callee); err != nil {
					return err
				}
			}
		}
		color[fn] = black
		return nil
	}
	for _, e := range p.Entry {
		if err := visit(e); err != nil {
			return err
		}
	}
	return nil
}

func calls(body []model.Stmt, dst []string) []string {
	for _, s := range body {
		switch st := s.(type) {
		case *model.Call:
			dst = append(dst, st.Func)
		case *model.If:
			dst = calls(st.Then, dst)
			dst = calls(st.Else, dst)
		case *model.Fork:
			for _, b := range st.Branches {
				dst = calls(b, dst)
			}
		}
	}
	return dst
}

type slicer struct {
	p        *model.Program
	relevant map[string]bool
}

// seed initializes the criteria: variables observed by assertion checks
// plus everything assumptions constrain (dropping an assume would change
// which paths exist, hence which violations are reported).
func (s *slicer) seed() {
	var scan func(body []model.Stmt)
	scan = func(body []model.Stmt) {
		for _, st := range body {
			switch x := st.(type) {
			case *model.AssertCheck:
				for _, r := range model.Refs(x.Cond, nil) {
					s.relevant[r] = true
				}
			case *model.Assume:
				for _, r := range model.Refs(x.Cond, nil) {
					s.relevant[r] = true
				}
			case *model.If:
				scan(x.Then)
				scan(x.Else)
			case *model.Fork:
				for _, b := range x.Branches {
					scan(b)
				}
			}
		}
	}
	for _, f := range s.p.Funcs {
		scan(f.Body)
	}
	// The forward flag participates in path-termination semantics.
	s.relevant[model.ForwardFlag] = s.relevant[model.ForwardFlag] || false
}

// fixpoint grows the relevant set: an assignment to a relevant variable
// makes everything its RHS reads relevant; a branch containing relevant
// effects makes its condition's reads relevant (control dependence).
func (s *slicer) fixpoint() {
	for {
		changed := false
		var scan func(body []model.Stmt) bool // reports "contains relevant effect"
		scan = func(body []model.Stmt) bool {
			has := false
			for _, st := range body {
				switch x := st.(type) {
				case *model.Assign:
					if s.relevant[x.LHS] {
						has = true
						for _, r := range model.Refs(x.RHS, nil) {
							if !s.relevant[r] {
								s.relevant[r] = true
								changed = true
							}
						}
					}
				case *model.MakeSymbolic:
					if s.relevant[x.Var] {
						has = true
					}
				case *model.AssertCheck, *model.Assume, *model.Halt, *model.Exit:
					has = true
				case *model.Return:
					// Control flow within a kept function; not itself a
					// relevant effect.
				case *model.Call:
					if f, ok := s.p.Funcs[x.Func]; ok {
						if scan(f.Body) {
							has = true
						}
					}
				case *model.If:
					// Both arms must be scanned unconditionally: || would
					// short-circuit past the else arm whenever the then arm
					// has a relevant effect, leaving reads there unmarked
					// (found by differential fuzzing: the sliced model kept
					// an else-branch assignment whose RHS input was never
					// made symbolic, silently masking a violation).
					thenHas := scan(x.Then)
					elseHas := scan(x.Else)
					if thenHas || elseHas {
						has = true
						for _, r := range model.Refs(x.Cond, nil) {
							if !s.relevant[r] {
								s.relevant[r] = true
								changed = true
							}
						}
					}
				case *model.Fork:
					for _, b := range x.Branches {
						if scan(b) {
							has = true
						}
					}
				}
			}
			return has
		}
		for _, e := range s.p.Entry {
			if f, ok := s.p.Funcs[e]; ok {
				scan(f.Body)
			}
		}
		if !changed {
			return
		}
	}
}

// sliceBody removes statements that cannot affect the criteria.
func (s *slicer) sliceBody(body []model.Stmt) []model.Stmt {
	out := make([]model.Stmt, 0, len(body))
	for _, st := range body {
		switch x := st.(type) {
		case *model.Assign:
			if s.relevant[x.LHS] {
				out = append(out, x)
			}
		case *model.MakeSymbolic:
			if s.relevant[x.Var] {
				out = append(out, x)
			}
		case *model.If:
			then := s.sliceBody(x.Then)
			els := s.sliceBody(x.Else)
			if len(then) == 0 && len(els) == 0 {
				continue // branch is irrelevant: remove the whole decision
			}
			out = append(out, &model.If{Cond: x.Cond, Then: then, Else: els})
		case *model.Fork:
			branches := make([][]model.Stmt, len(x.Branches))
			allEmpty := true
			for i, b := range x.Branches {
				branches[i] = s.sliceBody(b)
				if len(branches[i]) > 0 {
					allEmpty = false
				}
			}
			if allEmpty {
				continue // the table cannot affect the criteria
			}
			out = append(out, &model.Fork{Selector: x.Selector, Labels: x.Labels, Branches: branches})
		default:
			out = append(out, st)
		}
	}
	return out
}

func dropEmptyCalls(body []model.Stmt, empty map[string]bool, changed *bool) []model.Stmt {
	out := make([]model.Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *model.Call:
			if empty[st.Func] {
				*changed = true
				continue
			}
			out = append(out, st)
		case *model.If:
			then := dropEmptyCalls(st.Then, empty, changed)
			els := dropEmptyCalls(st.Else, empty, changed)
			if len(then) == 0 && len(els) == 0 {
				*changed = true
				continue
			}
			out = append(out, &model.If{Cond: st.Cond, Then: then, Else: els})
		case *model.Fork:
			nf := &model.Fork{Selector: st.Selector, Labels: st.Labels}
			allEmpty := true
			for _, b := range st.Branches {
				nb := dropEmptyCalls(b, empty, changed)
				if len(nb) > 0 {
					allEmpty = false
				}
				nf.Branches = append(nf.Branches, nb)
			}
			if allEmpty {
				*changed = true
				continue
			}
			out = append(out, nf)
		default:
			out = append(out, s)
		}
	}
	return out
}
