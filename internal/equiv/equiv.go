// Package equiv checks two P4 program versions for behavioral equivalence
// by symbolic execution of their product program: both versions run over
// the same symbolic packet, table rules and action parameters, and an
// assertion per shared observable demands their outputs agree. A SAT
// assertion failure is a concrete diverging packet, which is replayed
// through both versions' concrete interpreters for confirmation.
//
// When table rules are unknown, both versions resolve the same missing
// rule through one shared symbolic choice per table lookup, so the check
// is relative to that coupled resolution; supplying concrete rules
// removes the forks and makes the comparison exact.
package equiv

import (
	"context"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/model"
	"p4assert/internal/sym"
)

// Observables selects what the product program compares. The zero value
// means "everything shared": packet-level outputs and assertion verdicts.
type Observables struct {
	// Outputs compares drop/forward verdicts, egress_spec, and final
	// header validity/emit bits (wire content).
	Outputs bool
	// Asserts compares per-assertion failure verdicts, paired by ID.
	// This is the only meaningful observable when a side was built with
	// Slice or O3: both transforms preserve just the state assertions
	// depend on, deleting output-affecting code on purpose.
	Asserts bool
}

func (o Observables) normalize() Observables {
	if !o.Outputs && !o.Asserts {
		return Observables{Outputs: true, Asserts: true}
	}
	return o
}

// Options configures a differential run.
type Options struct {
	// A and B configure each side's front-end pipeline (rules, O3,
	// optimizer, slicing). Execution-related fields (Parallel, MaxPaths,
	// Timeout, MaxCallDepth) are taken from the top-level options below,
	// not from A/B.
	A, B core.Options

	// Observe selects the compared observables; zero value compares all.
	Observe Observables

	// MaxPaths bounds explored paths of the product program (0 = executor
	// default). Product programs multiply per-side path counts, so this
	// usually needs to be larger than a single-program budget.
	MaxPaths int64
	// Timeout bounds the whole symbolic run (0 = none).
	Timeout time.Duration
	// Parallel > 0 splits the product program into submodels verified
	// concurrently.
	Parallel int
	// MaxCallDepth bounds model call nesting (0 = executor default).
	MaxCallDepth int
	// Opt runs the algebraic optimizer over the product program.
	Opt bool
	// NoReplay skips concrete replay confirmation of divergences.
	NoReplay bool
}

func (o Options) execOptions() core.Options {
	return core.Options{
		Parallel:     o.Parallel,
		MaxPaths:     o.MaxPaths,
		Timeout:      o.Timeout,
		MaxCallDepth: o.MaxCallDepth,
		Opt:          o.Opt,
	}
}

// Divergence is one behavioral difference between the two versions.
type Divergence struct {
	// Check names the observable the versions disagree on.
	Check Check `json:"check"`
	// Count is how many explored paths hit this divergence.
	Count int64 `json:"count"`
	// Inputs is the diverging packet: shared symbolic inputs by hint name
	// (header fields, action parameters, table-choice oracles).
	Inputs map[string]uint64 `json:"inputs"`
	// Trace is the product program's fork trace for the diverging path.
	Trace []string `json:"trace,omitempty"`

	// A and B are each version's concrete outcome replaying Inputs
	// (nil when replay was skipped or failed).
	A *ReplayOutcome `json:"a,omitempty"`
	B *ReplayOutcome `json:"b,omitempty"`
	// Confirmed reports that concrete replay reproduced a difference.
	Confirmed bool `json:"confirmed"`
	// ReplayNote explains an unconfirmed replay (error, assume violation,
	// or outcomes that agree on the replayed observables).
	ReplayNote string `json:"replay_note,omitempty"`
}

// Report is the result of a differential run.
type Report struct {
	// Equivalent is true when no divergence was found AND the search
	// covered every path; a clean run cut short by a budget reports
	// false with Exhausted true (inconclusive).
	Equivalent bool `json:"equivalent"`
	// Exhausted mirrors core.Report.Exhausted: a path or time budget
	// stopped exploration before all paths were covered.
	Exhausted bool `json:"exhausted"`
	// Divergences lists the differences found, one per observable check.
	Divergences []*Divergence `json:"divergences,omitempty"`
	// Checks lists the compared observables.
	Checks []Check `json:"checks"`
	// Notes records comparison asymmetries (unbound inputs, unpaired
	// assertions).
	Notes []string `json:"notes,omitempty"`
	// Metrics aggregates executor statistics for the product program.
	Metrics sym.Metrics `json:"metrics"`
}

// Diff builds both versions from source and checks their equivalence.
func Diff(ctx context.Context, aName, aSrc, bName, bSrc string, opts Options) (*Report, error) {
	ma, err := buildSide(aName, aSrc, opts.A)
	if err != nil {
		return nil, err
	}
	mb, err := buildSide(bName, bSrc, opts.B)
	if err != nil {
		return nil, err
	}
	return DiffModels(ctx, ma, mb, opts)
}

func buildSide(name, src string, opts core.Options) (*model.Program, error) {
	m, err := core.BuildModel(name, src, opts)
	if err != nil {
		return nil, err
	}
	return core.ApplyModelPasses(m, opts)
}

// DiffModels checks two already-built models for equivalence. The models
// should have had their per-side passes applied; the product program is
// executed as-is (plus the optional optimizer pass).
func DiffModels(ctx context.Context, a, b *model.Program, opts Options) (*Report, error) {
	comp, err := Compose(a, b, opts.Observe)
	if err != nil {
		return nil, err
	}
	crep, err := core.VerifyModelCtx(ctx, comp.Model, opts.execOptions())
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Exhausted: crep.Exhausted,
		Checks:    comp.Checks,
		Notes:     comp.Notes,
		Metrics:   crep.Metrics,
	}
	for _, v := range crep.Violations {
		d := &Divergence{
			Count:  v.Count,
			Inputs: v.Model,
			Trace:  v.Trace,
		}
		if v.AssertID >= 0 && v.AssertID < len(comp.Checks) {
			d.Check = comp.Checks[v.AssertID]
		}
		if !opts.NoReplay {
			replayDivergence(d, a, b, opts.Observe.normalize())
		}
		rep.Divergences = append(rep.Divergences, d)
	}
	rep.Equivalent = len(rep.Divergences) == 0 && !rep.Exhausted
	return rep, nil
}
