package equiv

import (
	"context"
	"strings"
	"testing"

	"p4assert/internal/core"
)

// diffProgram is a small two-table pipeline with a parameterized egress
// port and optional TTL guard, used to build equivalent and divergent
// version pairs.
func diffProgram(egress string, checkTTL bool, actionOrder string) string {
	guard := "dmac.apply();"
	if checkTTL {
		guard = "if (hdr.ipv4.ttl == 0) { drop(); } else { dmac.apply(); }"
	}
	return `
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct headers_t { ethernet_t ethernet; ipv4_t ipv4; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x0800: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ingress(inout headers_t hdr, inout meta_t meta,
                inout standard_metadata_t standard_metadata) {
    action drop() {
        mark_to_drop(standard_metadata);
    }
    action set_dmac(bit<48> dmac) {
        hdr.ethernet.dstAddr = dmac;
        standard_metadata.egress_spec = ` + egress + `;
    }
    table dmac {
        key = { hdr.ipv4.dstAddr : exact; }
        actions = { ` + actionOrder + ` }
        default_action = drop();
    }
    apply {
        ` + guard + `
        @assert("if(forward(), hdr.ipv4.ttl > 0)");
    }
}

control Deparser(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.ethernet); pkt.emit(hdr.ipv4); }
}

V1Switch(P, Ingress, Deparser) main;
`
}

func runDiff(t *testing.T, aSrc, bSrc string, opts Options) *Report {
	t.Helper()
	rep, err := Diff(context.Background(), "a.p4", aSrc, "b.p4", bSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSelfEquivalence(t *testing.T) {
	src := diffProgram("1", true, "drop; set_dmac;")
	rep := runDiff(t, src, src, Options{})
	if rep.Exhausted {
		t.Fatal("exploration should complete within default budgets")
	}
	if !rep.Equivalent {
		t.Fatalf("program should be equivalent to itself; divergences: %v", describe(rep))
	}
	if len(rep.Checks) == 0 {
		t.Fatal("no observables compared")
	}
}

func TestActionReorderIsEquivalent(t *testing.T) {
	a := diffProgram("1", true, "drop; set_dmac;")
	b := diffProgram("1", true, "set_dmac; drop;")
	rep := runDiff(t, a, b, Options{})
	if !rep.Equivalent {
		t.Fatalf("action reorder should preserve equivalence; divergences: %v", describe(rep))
	}
}

func TestEgressChangeDiverges(t *testing.T) {
	a := diffProgram("1", true, "drop; set_dmac;")
	b := diffProgram("2", true, "drop; set_dmac;")
	rep := runDiff(t, a, b, Options{})
	if rep.Equivalent {
		t.Fatal("egress change should diverge")
	}
	var egressDiv *Divergence
	for _, d := range rep.Divergences {
		if d.Check.Kind == CheckEgress {
			egressDiv = d
		}
	}
	if egressDiv == nil {
		t.Fatalf("expected an egress divergence, got: %v", describe(rep))
	}
	if !egressDiv.Confirmed {
		t.Fatalf("egress divergence not confirmed by replay: %+v", egressDiv)
	}
	if egressDiv.A == nil || egressDiv.B == nil {
		t.Fatal("replay outcomes missing")
	}
	if egressDiv.A.Egress == egressDiv.B.Egress {
		t.Fatalf("replayed egress ports agree: a=%d b=%d", egressDiv.A.Egress, egressDiv.B.Egress)
	}
}

func TestDroppedGuardDiverges(t *testing.T) {
	a := diffProgram("1", true, "drop; set_dmac;")
	b := diffProgram("1", false, "drop; set_dmac;")
	rep := runDiff(t, a, b, Options{})
	if rep.Equivalent {
		t.Fatal("removing the TTL guard should diverge")
	}
	confirmed := 0
	for _, d := range rep.Divergences {
		if d.Confirmed {
			confirmed++
		}
	}
	if confirmed == 0 {
		t.Fatalf("no divergence confirmed by replay: %v", describe(rep))
	}
}

func TestSliceSelfEquivalenceOnAsserts(t *testing.T) {
	src := diffProgram("1", true, "drop; set_dmac;")
	rep := runDiff(t, src, src, Options{
		B:       core.Options{Slice: true},
		Observe: Observables{Asserts: true},
	})
	if !rep.Equivalent {
		t.Fatalf("program should be assert-equivalent to its slice; divergences: %v", describe(rep))
	}
	for _, c := range rep.Checks {
		if c.Kind != CheckAssert {
			t.Fatalf("asserts-only observation compared %s", c)
		}
	}
}

// O3 is assertion-directed dead-code elimination: like slicing it keeps
// only assert-relevant behavior, so the comparison must observe asserts.
func TestOptimizedSelfEquivalenceOnAsserts(t *testing.T) {
	src := diffProgram("1", true, "drop; set_dmac;")
	rep := runDiff(t, src, src, Options{
		B:       core.Options{O3: true, Opt: true},
		Observe: Observables{Asserts: true},
	})
	if !rep.Equivalent {
		t.Fatalf("program should be assert-equivalent to its optimized form; divergences: %v", describe(rep))
	}
}

// The full-output comparison SHOULD flag an O3'd side: the optimizer
// deletes output-affecting code no assertion depends on, and the engine
// must detect that rather than silently call it equivalent.
func TestOptimizedSideDivergesOnOutputs(t *testing.T) {
	src := diffProgram("1", true, "drop; set_dmac;")
	rep := runDiff(t, src, src, Options{B: core.Options{O3: true, Opt: true}})
	if rep.Equivalent {
		t.Fatal("O3 deletes output behavior; outputs comparison should diverge")
	}
}

func TestDivergenceKindsAreNamed(t *testing.T) {
	a := diffProgram("1", true, "drop; set_dmac;")
	b := diffProgram("2", true, "drop; set_dmac;")
	rep := runDiff(t, a, b, Options{})
	for _, d := range rep.Divergences {
		if d.Check.Kind == "" {
			t.Fatalf("divergence with unnamed check: %+v", d)
		}
		if len(d.Inputs) == 0 {
			t.Fatalf("divergence without counterexample inputs: %+v", d)
		}
	}
}

func TestNoReplaySkipsConfirmation(t *testing.T) {
	a := diffProgram("1", true, "drop; set_dmac;")
	b := diffProgram("2", true, "drop; set_dmac;")
	rep := runDiff(t, a, b, Options{NoReplay: true})
	if rep.Equivalent {
		t.Fatal("expected divergences")
	}
	for _, d := range rep.Divergences {
		if d.Confirmed || d.A != nil || d.B != nil {
			t.Fatalf("replay ran despite NoReplay: %+v", d)
		}
	}
}

func describe(rep *Report) string {
	var sb strings.Builder
	for _, d := range rep.Divergences {
		sb.WriteString(d.Check.String())
		sb.WriteString(" inputs=")
		for k, v := range d.Inputs {
			sb.WriteString(k)
			sb.WriteString("=")
			sb.WriteString(strings.TrimSpace(strings.ToLower(fmtUint(v))))
			sb.WriteString(" ")
		}
		sb.WriteString("; ")
	}
	return sb.String()
}

func fmtUint(v uint64) string {
	const hex = "0123456789abcdef"
	if v == 0 {
		return "0x0"
	}
	var buf [18]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = hex[v&0xf]
		v >>= 4
	}
	i--
	buf[i] = 'x'
	i--
	buf[i] = '0'
	return string(buf[i:])
}
