package equiv

import (
	"context"
	"strings"
	"testing"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

// corpusOptions builds the per-side options of a corpus self-diff: the
// program's shipped forwarding rules (when any) bound the table behaviours
// on both sides, keeping the product exploration close to the
// single-program path count.
func corpusOptions(t *testing.T, p *progs.Program) core.Options {
	t.Helper()
	opts := core.Options{}
	if p.Rules != "" {
		rs, err := rules.Parse(p.Rules)
		if err != nil {
			t.Fatal(err)
		}
		opts.Rules = rs
	}
	return opts
}

// TestCorpusSelfEquivalence is the ISSUE acceptance criterion: every
// corpus program is diff-equivalent to itself — the identity metamorphic
// check of the differential engine. A failure here is an engine soundness
// bug (most likely in fork determinization or draw aliasing), never a
// program bug.
func TestCorpusSelfEquivalence(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			side := corpusOptions(t, p)
			rep, err := Diff(context.Background(), p.Name+".p4", p.Source,
				p.Name+".p4", p.Source,
				Options{A: side, B: side, Timeout: 2 * time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Exhausted {
				t.Fatalf("product exploration exhausted (%d paths)", rep.Metrics.Paths)
			}
			if !rep.Equivalent {
				t.Fatalf("program diverges from itself: %v", describe(rep))
			}
		})
	}
}

// TestCorpusSliceAndO3Equivalence checks every corpus program against its
// sliced and its -O3-compiled form on the observables those transforms
// preserve — assertion verdicts. This catches slicer/optimizer soundness
// bugs the way PR 1's fuzzing did, but with the product-program engine as
// the judge instead of verdict-set comparison.
func TestCorpusSliceAndO3Equivalence(t *testing.T) {
	variants := []struct {
		name string
		set  func(*core.Options)
	}{
		{"slice", func(o *core.Options) { o.Slice = true }},
		{"O3", func(o *core.Options) { o.O3 = true }},
	}
	for _, p := range progs.All() {
		for _, v := range variants {
			p, v := p, v
			t.Run(p.Name+"/"+v.name, func(t *testing.T) {
				t.Parallel()
				a := corpusOptions(t, p)
				b := a
				v.set(&b)
				rep, err := Diff(context.Background(), p.Name+".p4", p.Source,
					p.Name+".p4", p.Source,
					Options{
						A:       a,
						B:       b,
						Observe: Observables{Asserts: true},
						Timeout: 2 * time.Minute,
					})
				if err != nil {
					if strings.Contains(err.Error(), "slicing unsupported") {
						t.Skipf("slicer refuses the program: %v", err)
					}
					t.Fatal(err)
				}
				if rep.Exhausted {
					t.Fatalf("product exploration exhausted (%d paths)", rep.Metrics.Paths)
				}
				if !rep.Equivalent {
					t.Fatalf("%s form diverges on assertion verdicts: %v", v.name, describe(rep))
				}
			})
		}
	}
}
