package equiv

import (
	"fmt"
	"sort"

	"p4assert/internal/interp"
	"p4assert/internal/model"
)

// ReplayOutcome is one version's concrete behavior on a diverging packet.
type ReplayOutcome struct {
	Halted  bool   `json:"halted"`
	Forward uint64 `json:"forward"`
	Egress  uint64 `json:"egress"`
	// Failures lists assertion IDs that failed during the run.
	Failures []int `json:"failures,omitempty"`
	// Wire maps header validity/emit flags to their final values.
	Wire map[string]uint64 `json:"wire,omitempty"`
}

// replayDivergence runs the counterexample through both versions' concrete
// interpreters and records whether the divergence reproduces on the
// observables being compared.
func replayDivergence(d *Divergence, a, b *model.Program, obs Observables) {
	ra, errA := replaySide(a, PrefixA, d.Inputs)
	rb, errB := replaySide(b, PrefixB, d.Inputs)
	if errA != nil || errB != nil {
		d.ReplayNote = fmt.Sprintf("replay error: a=%v b=%v", errA, errB)
		return
	}
	d.A, d.B = ra, rb
	if why := outcomesDiffer(ra, rb, obs); why != "" {
		d.Confirmed = true
		d.ReplayNote = why
	} else {
		d.ReplayNote = "concrete replay did not reproduce the divergence"
	}
}

// replaySide interprets one version's model under the counterexample.
// Inputs are looked up first under the side's composed prefix (initial
// symbolic globals were renamed there), then bare (shared per-hint
// draws). Table forks consume the shared choice oracle exactly as the
// product program coupled them: the k-th lookup of a table reads
// <selector>.$choice#k and takes the branch whose sorted-label rank
// matches, with the top rank absorbing all larger oracle values.
func replaySide(p *model.Program, prefix string, inputs map[string]uint64) (*ReplayOutcome, error) {
	drawCnt := map[string]int{}
	res, err := interp.Run(p, interp.Options{
		Input: func(name string, width int) uint64 {
			if v, ok := inputs[prefix+name]; ok {
				return v
			}
			return inputs[name]
		},
		Choose: func(selector string, labels []string) int {
			drawCnt[selector]++
			oracle := inputs[fmt.Sprintf("%s%s#%d", selector, choiceSuffix, drawCnt[selector])]
			return branchForOracle(oracle, labels)
		},
	})
	if err != nil {
		return nil, err
	}
	if res.AssumeViolated {
		return nil, fmt.Errorf("assume violated")
	}
	out := &ReplayOutcome{
		Halted:   res.Halted,
		Failures: append([]int(nil), res.Failures...),
		Wire:     map[string]uint64{},
	}
	if v, ok := res.Store[model.ForwardFlag]; ok {
		out.Forward = v
	}
	if eg := egressName(p); eg != "" {
		out.Egress = res.Store[eg]
	}
	for _, g := range p.Globals {
		if hasSuffix(g.Name, model.ValidSuffix) || hasPrefix(g.Name, emitPrefix) {
			out.Wire[g.Name] = res.Store[g.Name]
		}
	}
	sort.Ints(out.Failures)
	return out, nil
}

// branchForOracle maps an oracle value to a branch index via the same
// sorted-label ranking the composed model assumed: rank r takes the
// branch whose label sorts r-th, and values beyond the last rank fold
// into the top-ranked branch.
func branchForOracle(oracle uint64, labels []string) int {
	n := len(labels)
	if n == 0 {
		return 0
	}
	rank := int(oracle)
	if oracle >= uint64(n) {
		rank = n - 1
	}
	ranks := labelRanks(labels, n)
	for i, r := range ranks {
		if r == rank {
			return i
		}
	}
	return 0
}

// outcomesDiffer reports the first compared observable on which the two
// concrete outcomes disagree ("" when they agree on all of them).
func outcomesDiffer(a, b *ReplayOutcome, obs Observables) string {
	if obs.Outputs {
		if a.Halted != b.Halted {
			return fmt.Sprintf("halted: a=%t b=%t", a.Halted, b.Halted)
		}
		if a.Forward != b.Forward {
			return fmt.Sprintf("forward: a=%d b=%d", a.Forward, b.Forward)
		}
		if a.Forward == 1 && b.Forward == 1 {
			if a.Egress != b.Egress {
				return fmt.Sprintf("egress: a=0x%x b=0x%x", a.Egress, b.Egress)
			}
			for _, name := range sortedKeys(a.Wire) {
				bv, shared := b.Wire[name]
				if shared && a.Wire[name] != bv {
					return fmt.Sprintf("%s: a=%d b=%d", name, a.Wire[name], bv)
				}
			}
		}
	}
	if obs.Asserts {
		fa := failureSet(a.Failures)
		fb := failureSet(b.Failures)
		for id := range fa {
			if !fb[id] {
				return fmt.Sprintf("assert %d: fails in a only", id)
			}
		}
		for id := range fb {
			if !fa[id] {
				return fmt.Sprintf("assert %d: fails in b only", id)
			}
		}
	}
	return ""
}

func failureSet(ids []int) map[int]bool {
	out := make(map[int]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
