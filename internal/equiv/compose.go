package equiv

import (
	"fmt"
	"sort"

	"p4assert/internal/model"
)

// Side prefixes of the product program. Globals and functions of each
// version are renamed under these; MakeSymbolic hints are deliberately NOT
// prefixed, so both versions draw the same symbolic packet bytes (the
// executor hash-conses input variables by name, and a ResetDraws between
// the two halves restarts the per-hint numbering).
const (
	PrefixA = "a::"
	PrefixB = "b::"
)

const (
	haltedName   = "$halted"  // per-side parser-reject flag
	afailPrefix  = "$afail."  // per-side assertion-failure bits
	choiceSuffix = ".$choice" // shared fork-choice oracle per selector
	emitPrefix   = "$emit."
)

// CheckKind classifies one observable compared by the product program.
type CheckKind string

const (
	CheckHalted   CheckKind = "halted"
	CheckForward  CheckKind = "forward"
	CheckEgress   CheckKind = "egress"
	CheckValidity CheckKind = "validity"
	CheckAssert   CheckKind = "assert"
)

// Check is one equivalence observable; its index in Composition.Checks is
// its assertion ID in the composed model.
type Check struct {
	Kind CheckKind `json:"kind"`
	// Detail names the compared object: the header validity/emit global
	// (CheckValidity) or the assertion ID pair (CheckAssert).
	Detail string `json:"detail,omitempty"`
}

func (c Check) String() string {
	if c.Detail == "" {
		return string(c.Kind)
	}
	return string(c.Kind) + ":" + c.Detail
}

// Composition is the product program of two model versions.
type Composition struct {
	Model *model.Program
	// Checks maps composed assertion IDs to the observable they compare.
	Checks []Check
	// Notes records asymmetries that limited the comparison (inputs left
	// unbound by a width change, assertions with no counterpart, ...).
	Notes []string
	// conflictHints are hints drawn at different widths by the two sides;
	// side B's draws were renamed under PrefixB and read independent
	// symbolic values.
	conflictHints map[string]bool
}

// Compose builds the product program: A's renamed model, a draw reset,
// B's renamed model, then one assertion per shared observable. Tables with
// unknown rules (Fork statements) are determinized against a shared choice
// oracle drawn per execution, so both versions resolve the "same" missing
// rule identically — equivalence is checked relative to that coupled
// resolution (supplying concrete rules removes forks and makes the check
// exact). Branch ranks follow sorted action labels, so reordering actions
// within a table is equivalence-preserving.
func Compose(a, b *model.Program, obs Observables) (*Composition, error) {
	obs = obs.normalize()
	comp := &Composition{
		Model:         model.NewProgram(),
		conflictHints: hintWidthConflicts(a, b),
	}
	for h := range comp.conflictHints {
		comp.noteF("input %s is drawn at different widths by the two versions; its bytes are compared as independent inputs", h)
	}

	ra, err := newRenamer(comp, a, PrefixA)
	if err != nil {
		return nil, err
	}
	rb, err := newRenamer(comp, b, PrefixB)
	if err != nil {
		return nil, err
	}

	out := comp.Model
	out.Funcs["$swap"] = &model.Func{Name: "$swap", Body: []model.Stmt{&model.ResetDraws{}}}
	comp.bind(a, b)

	out.Entry = append(out.Entry, "$bind")
	out.Entry = append(out.Entry, ra.entries()...)
	out.Entry = append(out.Entry, "$swap")
	out.Entry = append(out.Entry, rb.entries()...)
	comp.equivChecks(a, b, obs)
	out.Entry = append(out.Entry, "$equiv")

	if len(comp.Checks) == 0 {
		return nil, fmt.Errorf("equiv: the two versions share no observable to compare (observe outputs=%t asserts=%t)",
			obs.Outputs, obs.Asserts)
	}
	return comp, nil
}

func (c *Composition) noteF(format string, args ...any) {
	c.Notes = append(c.Notes, fmt.Sprintf(format, args...))
}

// hintWidthConflicts finds hints drawn at different widths by the two
// sides. Re-drawing such a hint under its shared name would redeclare an
// executor variable at a new width, so side B keeps those draws private.
func hintWidthConflicts(a, b *model.Program) map[string]bool {
	wa := hintWidths(a)
	wb := hintWidths(b)
	out := map[string]bool{}
	for h, w := range wb {
		if aw, shared := wa[h]; shared && aw != w {
			out[h] = true
		}
	}
	return out
}

// hintWidths maps each MakeSymbolic hint to the width of its drawn
// variable. Within one program a hint always has one width (the
// translator uses the variable's own name as its hint).
func hintWidths(p *model.Program) map[string]int {
	out := map[string]int{}
	for _, f := range p.Funcs {
		walkStmts(f.Body, func(s model.Stmt) {
			if ms, ok := s.(*model.MakeSymbolic); ok {
				if g, found := p.Global(ms.Var); found {
					out[ms.Hint] = g.Width
				}
			}
		})
	}
	return out
}

func walkStmts(body []model.Stmt, visit func(model.Stmt)) {
	for _, s := range body {
		visit(s)
		switch x := s.(type) {
		case *model.If:
			walkStmts(x.Then, visit)
			walkStmts(x.Else, visit)
		case *model.Fork:
			for _, br := range x.Branches {
				walkStmts(br, visit)
			}
		}
	}
}

// bind emits the $bind entry: initial symbolic globals present in both
// versions at the same width are constrained equal, so both halves start
// from the same metadata and intrinsic state.
func (c *Composition) bind(a, b *model.Program) {
	var body []model.Stmt
	for _, ga := range a.Globals {
		if !ga.Symbolic {
			continue
		}
		gb, ok := b.Global(ga.Name)
		if !ok || !gb.Symbolic {
			continue
		}
		if gb.Width != ga.Width {
			c.noteF("initial input %s changed width (%d -> %d bits); left unbound", ga.Name, ga.Width, gb.Width)
			continue
		}
		body = append(body, &model.Assume{Cond: &model.Bin{
			Op: model.OpEq,
			X:  &model.Ref{Name: PrefixA + ga.Name},
			Y:  &model.Ref{Name: PrefixB + ga.Name},
		}})
	}
	c.Model.Funcs["$bind"] = &model.Func{Name: "$bind", Body: body}
}

// equivChecks emits the $equiv entry comparing the shared observables.
func (c *Composition) equivChecks(a, b *model.Program, obs Observables) {
	var body []model.Stmt
	addCheck := func(ck Check, cond model.Expr) {
		id := len(c.Checks)
		c.Checks = append(c.Checks, ck)
		c.Model.Asserts = append(c.Model.Asserts, &model.AssertInfo{
			ID:       id,
			Source:   "versions agree on " + ck.String(),
			Location: "equiv:" + ck.String(),
		})
		body = append(body, &model.AssertCheck{ID: id, Cond: cond})
	}
	ref := func(n string) model.Expr { return &model.Ref{Name: n} }
	eq := func(x, y model.Expr) model.Expr { return &model.Bin{Op: model.OpEq, X: x, Y: y} }

	if obs.Outputs {
		addCheck(Check{Kind: CheckHalted}, eq(ref(PrefixA+haltedName), ref(PrefixB+haltedName)))

		_, aFwd := a.Global(model.ForwardFlag)
		_, bFwd := b.Global(model.ForwardFlag)
		switch {
		case aFwd && bFwd:
			addCheck(Check{Kind: CheckForward},
				eq(ref(PrefixA+model.ForwardFlag), ref(PrefixB+model.ForwardFlag)))
		default:
			c.noteF("forward flag not present in both versions; drop/forward verdicts not compared")
		}

		// Egress and wire content only matter for packets both versions
		// forward: a packet one version drops already diverges on $forward.
		bothFwd := &model.Bin{Op: model.OpLAnd,
			X: ref(PrefixA + model.ForwardFlag),
			Y: ref(PrefixB + model.ForwardFlag)}
		gated := func(cond model.Expr) model.Expr {
			return &model.Bin{Op: model.OpLOr,
				X: &model.Un{Op: model.OpNot, X: bothFwd},
				Y: cond}
		}
		if aFwd && bFwd {
			aEg, bEg := egressName(a), egressName(b)
			if aEg != "" && bEg != "" {
				addCheck(Check{Kind: CheckEgress}, gated(eq(ref(PrefixA+aEg), ref(PrefixB+bEg))))
			} else if aEg != bEg {
				c.noteF("egress_spec not present in both versions; egress ports not compared")
			}
			for _, name := range sharedWireFlags(a, b) {
				addCheck(Check{Kind: CheckValidity, Detail: name},
					gated(eq(ref(PrefixA+name), ref(PrefixB+name))))
			}
		}
	}

	if obs.Asserts {
		n := len(a.Asserts)
		if len(b.Asserts) < n {
			n = len(b.Asserts)
		}
		for i := 0; i < n; i++ {
			addCheck(Check{Kind: CheckAssert, Detail: fmt.Sprintf("%d", i)},
				eq(ref(PrefixA+afailPrefix+fmt.Sprint(i)), ref(PrefixB+afailPrefix+fmt.Sprint(i))))
		}
		if len(a.Asserts) != len(b.Asserts) {
			c.noteF("assertion counts differ (%d vs %d); only the first %d compared by position",
				len(a.Asserts), len(b.Asserts), n)
		}
	}

	c.Model.Funcs["$equiv"] = &model.Func{Name: "$equiv", Body: body}
}

func egressName(p *model.Program) string {
	for _, g := range p.Globals {
		if hasSuffix(g.Name, ".egress_spec") {
			return g.Name
		}
	}
	return ""
}

// sharedWireFlags lists the width-1 wire-content observables present in
// both versions: header validity bits and emit flags, sorted.
func sharedWireFlags(a, b *model.Program) []string {
	var out []string
	for _, ga := range a.Globals {
		if !hasSuffix(ga.Name, model.ValidSuffix) && !hasPrefix(ga.Name, emitPrefix) {
			continue
		}
		if gb, ok := b.Global(ga.Name); ok && gb.Width == ga.Width {
			out = append(out, ga.Name)
		}
	}
	sort.Strings(out)
	return out
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func hasPrefix(s, pre string) bool {
	return len(s) >= len(pre) && s[:len(pre)] == pre
}

// renamer rewrites one version into its half of the product program.
type renamer struct {
	comp   *Composition
	src    *model.Program
	prefix string
}

func newRenamer(comp *Composition, p *model.Program, prefix string) (*renamer, error) {
	r := &renamer{comp: comp, src: p, prefix: prefix}
	out := comp.Model
	for _, g := range p.Globals {
		out.AddGlobal(prefix+g.Name, g.Width, g.Symbolic, g.Init)
	}
	out.AddGlobal(prefix+haltedName, 1, false, 0)
	for i := range p.Asserts {
		out.AddGlobal(prefix+afailPrefix+fmt.Sprint(i), 1, false, 0)
	}
	for name, f := range p.Funcs {
		out.Funcs[prefix+name] = &model.Func{Name: prefix + name, Body: r.stmts(f.Body)}
	}
	for _, e := range p.Entry {
		if _, ok := p.Funcs[e]; !ok {
			return nil, fmt.Errorf("equiv: entry %s not found", e)
		}
	}
	return r, nil
}

// entries returns the wrapper entry chain for this side: every entry runs
// only while the side has not halted, except its final checks ("$checks"),
// which the original semantics run on rejected packets too.
func (r *renamer) entries() []string {
	out := r.comp.Model
	var names []string
	for i, e := range r.src.Entry {
		wrap := fmt.Sprintf("%s$entry%d", r.prefix, i)
		call := &model.Call{Func: r.prefix + e}
		var body []model.Stmt
		if e == "$checks" {
			body = []model.Stmt{call}
		} else {
			body = []model.Stmt{&model.If{
				Cond: &model.Un{Op: model.OpNot, X: &model.Ref{Name: r.prefix + haltedName}},
				Then: []model.Stmt{call},
			}}
		}
		out.Funcs[wrap] = &model.Func{Name: wrap, Body: body}
		names = append(names, wrap)
	}
	return names
}

func (r *renamer) stmts(body []model.Stmt) []model.Stmt {
	out := make([]model.Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *model.Assign:
			out = append(out, &model.Assign{LHS: r.prefix + st.LHS, RHS: r.expr(st.RHS)})

		case *model.MakeSymbolic:
			hint := st.Hint
			if r.prefix == PrefixB && r.comp.conflictHints[hint] {
				hint = r.prefix + hint
			}
			out = append(out, &model.MakeSymbolic{Var: r.prefix + st.Var, Hint: hint})

		case *model.If:
			out = append(out, &model.If{
				Cond: r.expr(st.Cond),
				Then: r.stmts(st.Then),
				Else: r.stmts(st.Else),
			})

		case *model.Fork:
			out = append(out, r.fork(st)...)

		case *model.Call:
			out = append(out, &model.Call{Func: r.prefix + st.Func})

		case *model.Assume:
			out = append(out, &model.Assume{Cond: r.expr(st.Cond)})

		case *model.AssertCheck:
			// The sides' own assertions become failure accumulators; the
			// product program's assertions are the $equiv comparisons.
			bit := r.prefix + afailPrefix + fmt.Sprint(st.ID)
			out = append(out, &model.Assign{LHS: bit, RHS: &model.Bin{
				Op: model.OpLOr,
				X:  &model.Ref{Name: bit},
				Y:  &model.Un{Op: model.OpNot, X: r.expr(st.Cond)},
			}})

		case *model.Halt:
			// Halt would skip the other version's half too; record the
			// rejection and unwind only this entry.
			out = append(out,
				&model.Assign{LHS: r.prefix + haltedName, RHS: &model.Const{Width: 1, Val: 1}},
				&model.Exit{})

		case *model.Return:
			out = append(out, &model.Return{})
		case *model.Exit:
			out = append(out, &model.Exit{})
		case *model.TraceNote:
			out = append(out, &model.TraceNote{Label: st.Label})
		case *model.ResetDraws:
			out = append(out, &model.ResetDraws{})
		default:
			out = append(out, s)
		}
	}
	return out
}

// fork determinizes a table with unknown rules against the shared choice
// oracle: a symbolic choice is drawn under the selector's unprefixed hint
// (so both sides draw the same variable), and each branch assumes the
// choice equals its label's sorted rank. The top-ranked branch takes every
// remaining value (>=), keeping the case split total.
func (r *renamer) fork(st *model.Fork) []model.Stmt {
	choiceVar := r.prefix + st.Selector + choiceSuffix
	r.comp.Model.AddGlobal(choiceVar, 8, false, 0)

	ranks := labelRanks(st.Labels, len(st.Branches))
	nf := &model.Fork{
		Selector: r.prefix + st.Selector,
		Labels:   append([]string(nil), st.Labels...),
	}
	n := len(st.Branches)
	for i, br := range st.Branches {
		op := model.OpEq
		if ranks[i] == n-1 {
			op = model.OpGe
		}
		guard := &model.Assume{Cond: &model.Bin{
			Op: op,
			X:  &model.Ref{Name: choiceVar},
			Y:  &model.Const{Width: 8, Val: uint64(ranks[i])},
		}}
		nf.Branches = append(nf.Branches, append([]model.Stmt{guard}, r.stmts(br)...))
	}
	return []model.Stmt{
		&model.MakeSymbolic{Var: choiceVar, Hint: st.Selector + choiceSuffix},
		nf,
	}
}

// labelRanks assigns each branch its label's position in sorted label
// order, so the rank of an action is stable under reordering. Forks with
// missing or duplicate labels fall back to branch order.
func labelRanks(labels []string, branches int) []int {
	ranks := make([]int, branches)
	if len(labels) != branches {
		for i := range ranks {
			ranks[i] = i
		}
		return ranks
	}
	seen := map[string]bool{}
	for _, l := range labels {
		if seen[l] {
			for i := range ranks {
				ranks[i] = i
			}
			return ranks
		}
		seen[l] = true
	}
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	pos := make(map[string]int, len(sorted))
	for i, l := range sorted {
		pos[l] = i
	}
	for i, l := range labels {
		ranks[i] = pos[l]
	}
	return ranks
}

func (r *renamer) expr(e model.Expr) model.Expr {
	switch x := e.(type) {
	case *model.Const:
		return x
	case *model.Ref:
		return &model.Ref{Name: r.prefix + x.Name}
	case *model.Bin:
		return &model.Bin{Op: x.Op, X: r.expr(x.X), Y: r.expr(x.Y)}
	case *model.Un:
		return &model.Un{Op: x.Op, X: r.expr(x.X)}
	case *model.Cond:
		return &model.Cond{C: r.expr(x.C), T: r.expr(x.T), F: r.expr(x.F)}
	case *model.Cast:
		return &model.Cast{Width: x.Width, X: r.expr(x.X)}
	}
	return e
}
