package bench

// The incremental-verification benchmark: edit one action of the largest
// corpus program and measure VerifyIncremental against a cold run. This is
// the edit-verify-loop scenario internal/incr exists for — the routing
// table of the subject program (fabric) is the pipeline's first decision,
// so a single-action edit invalidates only the submodels that execute that
// action and every sibling replays its memoized verdict.
//
// The result is emitted by cmd/p4bench -exp incremental as
// BENCH_incremental.json.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/incr"
	"p4assert/internal/p4"
	"p4assert/internal/progs"
)

// IncrementalRun is one worker-count row of the benchmark.
type IncrementalRun struct {
	Workers int `json:"workers"`
	// ColdSeconds is a full VerifyProgram run of the edited program
	// (best of repeats); IncrementalSeconds is VerifyIncremental of the
	// same edit against a store warmed on the unedited program.
	ColdSeconds        float64 `json:"cold_seconds"`
	IncrementalSeconds float64 `json:"incremental_seconds"`
	Speedup            float64 `json:"speedup"`
	// ColdStages and IncrementalStages break one repetition's run into
	// the pipeline-stage wall times (the report's telemetry section), so
	// the BENCH json shows where cold and incremental runs spend their
	// time — e.g. that an incremental run's execute stage collapses while
	// translate stays constant. Taken from the last repetition; the
	// *_seconds fields above remain best-of.
	ColdStages        []core.ReportStage `json:"cold_stages,omitempty"`
	IncrementalStages []core.ReportStage `json:"incremental_stages,omitempty"`
}

// IncrementalResult is the BENCH_incremental.json payload.
type IncrementalResult struct {
	Experiment   string `json:"experiment"`
	Program      string `json:"program"`
	ProgramLines int    `json:"program_lines"`
	// EditedUnit names the single action the benchmark edits.
	EditedUnit string `json:"edited_unit"`
	// Submodels/Reused/Executed describe the incremental run's plan: how
	// many submodels the program splits into and how many the edit forced
	// to re-execute.
	Submodels int `json:"submodels"`
	Reused    int `json:"reused"`
	Executed  int `json:"executed"`
	// ByteIdentical records that the incremental report compared
	// byte-equal (ComparableJSON) to the cold run's on every row.
	ByteIdentical bool `json:"byte_identical"`
	// Runs holds one row per worker count; Speedup is the workers=1 row's
	// ratio — the CPU-cost (worker-seconds) view, the scarce resource in
	// the verification-as-a-service deployment.
	Runs    []IncrementalRun `json:"runs"`
	Speedup float64          `json:"speedup"`
}

// memStore is the in-process incr.Store the benchmark warms.
type memStore map[string][]byte

func (m memStore) GetBytes(k string) ([]byte, bool)  { b, ok := m[k]; return b, ok }
func (m memStore) PutBytes(k string, b []byte) error { m[k] = b; return nil }

// LargestProgram returns the corpus program with the most source lines —
// the benchmark subject ("edit one action of the largest corpus program").
func LargestProgram() *progs.Program {
	var largest *progs.Program
	lines := -1
	for _, p := range progs.All() {
		if n := strings.Count(p.Source, "\n"); n > lines {
			largest, lines = p, n
		}
	}
	return largest
}

// Incremental runs the benchmark. repeats stabilizes wall-clock numbers
// (best-of, like the Table 2 rows); workerCounts defaults to {1, 4}.
func Incremental(repeats int, workerCounts []int) (*IncrementalResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4}
	}
	subject := LargestProgram()
	if subject.Rules != "" {
		// The corpus keeps its benchmark subjects rule-free; supporting
		// rules here would only complicate the mutation step.
		return nil, fmt.Errorf("bench: largest program %s has rules", subject.Name)
	}
	file := subject.Name + ".p4"
	_, mut, err := incr.MutateUnit(file, subject.Source)
	if err != nil {
		return nil, err
	}

	res := &IncrementalResult{
		Experiment:    "incremental",
		Program:       subject.Name,
		ProgramLines:  strings.Count(subject.Source, "\n"),
		EditedUnit:    mut.Unit,
		ByteIdentical: true,
	}
	ctx := context.Background()
	for _, workers := range workerCounts {
		opts := core.Options{Parallel: workers}
		row := IncrementalRun{Workers: workers}

		var coldRep *core.Report
		for i := 0; i < repeats; i++ {
			// Parse and mutate inside the timed region: the cold baseline
			// is the full edit-to-verdict latency — the same front-end work
			// the incremental path also pays on every run.
			t0 := time.Now()
			edited, _, err := incr.MutateUnit(file, subject.Source)
			if err != nil {
				return nil, err
			}
			rep, err := core.VerifyProgram(edited, opts)
			if err != nil {
				return nil, err
			}
			sec := time.Since(t0).Seconds()
			if i == 0 || sec < row.ColdSeconds {
				row.ColdSeconds = sec
			}
			coldRep = rep
			if rep.Telemetry != nil {
				row.ColdStages = rep.Telemetry.Stages
			}
		}

		for i := 0; i < repeats; i++ {
			// Warm the store on the unedited program (the previous run of
			// the edit-verify loop), then time the edited re-verification.
			store := memStore{}
			base, err := parseChecked(file, subject.Source)
			if err != nil {
				return nil, err
			}
			if _, _, err := core.VerifyIncremental(ctx, nil, base, opts, store); err != nil {
				return nil, err
			}
			t0 := time.Now()
			edited, _, err := incr.MutateUnit(file, subject.Source)
			if err != nil {
				return nil, err
			}
			rep, man, err := core.VerifyIncremental(ctx, base, edited, opts, store)
			if err != nil {
				return nil, err
			}
			sec := time.Since(t0).Seconds()
			if i == 0 || sec < row.IncrementalSeconds {
				row.IncrementalSeconds = sec
			}
			if rep.Telemetry != nil {
				row.IncrementalStages = rep.Telemetry.Stages
			}
			res.Submodels, res.Reused, res.Executed = man.Submodels, man.Reused, man.Executed

			want, err := coldRep.ComparableJSON()
			if err != nil {
				return nil, err
			}
			got, err := rep.ComparableJSON()
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(want, got) {
				res.ByteIdentical = false
			}
		}

		row.Speedup = row.ColdSeconds / row.IncrementalSeconds
		res.Runs = append(res.Runs, row)
		if workers == 1 {
			res.Speedup = row.Speedup
		}
	}
	if res.Speedup == 0 && len(res.Runs) > 0 {
		res.Speedup = res.Runs[0].Speedup
	}
	return res, nil
}

func parseChecked(file, source string) (*p4.Program, error) {
	prog, err := p4.Parse(file, source)
	if err != nil {
		return nil, err
	}
	if err := prog.Check(); err != nil {
		return nil, err
	}
	return prog, nil
}
