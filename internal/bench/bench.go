// Package bench regenerates the paper's evaluation: the Fig. 9 performance
// sweeps, the Fig. 10 optimization-technique comparison, the Table 2
// per-program technique gains, the §5.5 combined-techniques result, the
// §5.1 bug-finding runs and the Table 1 expressiveness matrix. Both
// cmd/p4bench and the repository's testing.B benchmarks drive it.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/progs"
	"p4assert/internal/rules"
	"p4assert/internal/whippersnapper"
)

// Variant names one pipeline configuration of Fig. 10 / Table 2.
type Variant string

// The paper's technique variants.
const (
	Original    Variant = "Original"
	O3          Variant = "O3"
	Opt         Variant = "Opt"
	Parallel    Variant = "Parallel"
	Slice       Variant = "Slice"
	Constraints Variant = "Constraints"
)

// options maps a variant to pipeline options.
func (v Variant) options() core.Options {
	switch v {
	case O3:
		return core.Options{O3: true}
	case Opt:
		return core.Options{Opt: true}
	case Parallel:
		return core.Options{Parallel: 4} // the paper's 4-core VM
	case Slice:
		return core.Options{Slice: true}
	default:
		return core.Options{}
	}
}

// Point is one measurement of a sweep.
type Point struct {
	X            int
	Seconds      float64
	Instructions int64
	Paths        int64
}

// Sweep identifies one x-axis of Fig. 9/10.
type Sweep string

// The four sweeps of Figs. 9 and 10.
const (
	SweepTables     Sweep = "tables"     // Fig. 9(a)/10(a)
	SweepAssertions Sweep = "assertions" // Fig. 9(b)/10(b)
	SweepRules      Sweep = "rules"      // Fig. 9(c)/10(c)
	SweepActions    Sweep = "actions"    // Fig. 9(d)/10(d)
)

// DefaultXs returns sweep points. full selects the paper's exact ranges
// (slow); otherwise a reduced range with the same spacing structure.
func DefaultXs(s Sweep, full bool) []int {
	switch s {
	case SweepTables:
		if full {
			return []int{12, 14, 16, 18, 20}
		}
		return []int{8, 10, 12, 14}
	case SweepAssertions:
		return []int{12, 16, 20, 24}
	case SweepRules:
		if full {
			return []int{0, 80, 160, 240, 320}
		}
		return []int{0, 40, 80, 160}
	case SweepActions:
		if full {
			return []int{30, 60, 90, 120, 150}
		}
		return []int{30, 60, 90, 120}
	}
	return nil
}

// config builds the Whippersnapper parameters for a sweep point, using the
// paper's defaults (§5.3): no rules/assertions unless swept, 1 table for
// the assertion sweep, 2 tables for the rules and actions sweeps, 3 actions
// on the first table and 2 on the rest.
func config(s Sweep, x int) whippersnapper.Config {
	switch s {
	case SweepTables:
		return whippersnapper.Default(x)
	case SweepAssertions:
		cfg := whippersnapper.Default(1)
		cfg.Assertions = x
		return cfg
	case SweepRules:
		cfg := whippersnapper.Default(2)
		cfg.RulesPerTable = x
		return cfg
	default: // SweepActions
		cfg := whippersnapper.Default(2)
		cfg.ActionsFirst = x
		cfg.Actions = x
		return cfg
	}
}

// RunSweepPoint measures one (sweep, x, variant) cell.
func RunSweepPoint(s Sweep, x int, v Variant) (Point, error) {
	cfg := config(s, x)
	src := whippersnapper.Generate(cfg)
	opts := v.options()
	opts.Rules = whippersnapper.GenerateRules(cfg)
	t0 := time.Now()
	rep, err := core.VerifySource("ws.p4", src, opts)
	if err != nil {
		return Point{}, err
	}
	return Point{
		X:            x,
		Seconds:      time.Since(t0).Seconds(),
		Instructions: rep.Metrics.Instructions,
		Paths:        rep.Metrics.Paths,
	}, nil
}

// Figure9 runs one panel of Fig. 9 (no optimizations).
func Figure9(s Sweep, xs []int) ([]Point, error) {
	var out []Point
	for _, x := range xs {
		p, err := RunSweepPoint(s, x, Original)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Figure10 runs one panel of Fig. 10: the sweep under each technique.
func Figure10(s Sweep, xs []int) (map[Variant][]Point, error) {
	out := map[Variant][]Point{}
	for _, v := range []Variant{Original, Parallel, O3, Opt} {
		for _, x := range xs {
			p, err := RunSweepPoint(s, x, v)
			if err != nil {
				return nil, err
			}
			out[v] = append(out[v], p)
		}
	}
	return out, nil
}

// Table2Cell is one program × technique measurement.
type Table2Cell struct {
	// TimeReduction and InstrReduction are percentage gains versus the
	// unoptimized baseline (negative = slower / more instructions), the
	// paper's Table 2 quantities.
	TimeReduction  float64
	InstrReduction float64
	// Failed marks technique failures (slicing a recursive parser),
	// rendered as "-" like the paper's MRI row.
	Failed bool
}

// Table2Row is one program's measurements.
type Table2Row struct {
	Program  string
	BaseTime float64
	BaseIns  int64
	Cells    map[Variant]Table2Cell
}

// Table2Variants is the paper's column order.
var Table2Variants = []Variant{O3, Opt, Constraints, Parallel, Slice}

// runProgram measures a corpus program under the given options, averaging
// over repeat runs for stable times.
func runProgram(p *progs.Program, source string, opts core.Options, repeats int) (float64, int64, int64, error) {
	if p.Rules != "" {
		rs, err := rules.Parse(p.Rules)
		if err != nil {
			return 0, 0, 0, err
		}
		opts.Rules = rs
	}
	var best float64
	var instr, worst int64
	for i := 0; i < repeats; i++ {
		t0 := time.Now()
		rep, err := core.VerifySource(p.Name+".p4", source, opts)
		if err != nil {
			return 0, 0, 0, err
		}
		if opts.Slice && rep.SliceErr != nil {
			return 0, 0, 0, rep.SliceErr
		}
		sec := time.Since(t0).Seconds()
		if i == 0 || sec < best {
			best = sec
		}
		instr = rep.Metrics.Instructions
		worst = rep.WorstSubmodelInstructions
	}
	return best, instr, worst, nil
}

// Table2 reproduces the paper's Table 2 over the six evaluated programs.
// repeats > 1 stabilizes wall-clock numbers.
func Table2(repeats int) ([]Table2Row, error) {
	if repeats < 1 {
		repeats = 1
	}
	var rows []Table2Row
	for _, p := range progs.Table2Programs() {
		baseTime, baseIns, _, err := runProgram(p, p.Source, core.Options{}, repeats)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", p.Name, err)
		}
		row := Table2Row{Program: p.Title, BaseTime: baseTime, BaseIns: baseIns, Cells: map[Variant]Table2Cell{}}
		for _, v := range Table2Variants {
			source := p.Source
			opts := v.options()
			if v == Constraints {
				source = p.ConstrainedSource()
			}
			sec, instr, worst, err := runProgram(p, source, opts, repeats)
			if err != nil {
				row.Cells[v] = Table2Cell{Failed: true}
				continue
			}
			cell := Table2Cell{
				TimeReduction:  reduction(baseTime, sec),
				InstrReduction: reduction(float64(baseIns), float64(instr)),
			}
			if v == Parallel {
				// The paper's tenth column: reduction achieved by the
				// heaviest submodel versus the whole model.
				cell.InstrReduction = reduction(float64(baseIns), float64(worst))
			}
			row.Cells[v] = cell
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func reduction(base, now float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - now) / base * 100
}

// Combined reproduces §5.5's closing experiment: Dapper under constraints,
// parallelization and compiler optimization together (the paper reports
// −81.76 % time and −89.25 % instructions).
func Combined(repeats int) (timeRed, instrRed float64, err error) {
	p, err := progs.Get("dapper")
	if err != nil {
		return 0, 0, err
	}
	baseTime, baseIns, _, err := runProgram(p, p.Source, core.Options{}, repeats)
	if err != nil {
		return 0, 0, err
	}
	sec, _, worst, err := runProgram(p, p.ConstrainedSource(),
		core.Options{O3: true, Opt: true, Parallel: 4}, repeats)
	if err != nil {
		return 0, 0, err
	}
	// Instruction reduction follows the paper's parallel convention
	// (Table 2 col. 10): the heaviest submodel versus the whole baseline.
	return reduction(baseTime, sec), reduction(float64(baseIns), float64(worst)), nil
}

// BugFinding reruns the §5.1 experiments: each buggy corpus program, the
// violations found, and the time to find them.
type BugResult struct {
	Program    string
	Seconds    float64
	Found      []string // violated assertion sources
	AllFound   bool
	Violations int
}

// BugFinding runs the corpus bug hunts.
func BugFinding() ([]BugResult, error) {
	var out []BugResult
	for _, p := range progs.All() {
		if len(p.ExpectedViolations) == 0 {
			continue
		}
		opts := core.Options{}
		if p.Rules != "" {
			rs, err := rules.Parse(p.Rules)
			if err != nil {
				return nil, err
			}
			opts.Rules = rs
		}
		t0 := time.Now()
		rep, err := core.VerifySource(p.Name+".p4", p.Source, opts)
		if err != nil {
			return nil, err
		}
		r := BugResult{Program: p.Title, Seconds: time.Since(t0).Seconds(),
			Violations: len(rep.Violations)}
		got := map[int]bool{}
		for _, v := range rep.Violations {
			got[v.AssertID] = true
			if v.Info != nil {
				r.Found = append(r.Found, v.Info.Source)
			}
		}
		r.AllFound = true
		for _, id := range p.ExpectedViolations {
			if !got[id] {
				r.AllFound = false
			}
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Program < out[j].Program })
	return out, nil
}

// Table1Entry is one program's expressiveness check: all its assertions
// parsed, translated and were decided.
type Table1Entry struct {
	Program    string
	Assertions []string
	Violated   []bool
	Seconds    float64
}

// Table1 verifies every corpus program and reports its assertion matrix
// (the paper's Table 1 demonstrates the properties are expressible and
// checkable; violations are expected exactly for the seeded bugs).
func Table1() ([]Table1Entry, error) {
	var out []Table1Entry
	for _, p := range progs.All() {
		opts := core.Options{}
		if p.Rules != "" {
			rs, err := rules.Parse(p.Rules)
			if err != nil {
				return nil, err
			}
			opts.Rules = rs
		}
		t0 := time.Now()
		rep, err := core.VerifySource(p.Name+".p4", p.Source, opts)
		if err != nil {
			return nil, err
		}
		e := Table1Entry{Program: p.Title, Seconds: time.Since(t0).Seconds()}
		violated := map[int]bool{}
		for _, v := range rep.Violations {
			violated[v.AssertID] = true
		}
		for _, a := range rep.Asserts {
			e.Assertions = append(e.Assertions, a.Source)
			e.Violated = append(e.Violated, violated[a.ID])
		}
		out = append(out, e)
	}
	return out, nil
}

// ------------------------------------------------------------- rendering --

// RenderPoints formats a single-series sweep as an aligned table.
func RenderPoints(title, xlabel string, pts []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-14s %12s %14s %10s\n", title, xlabel, "time (s)", "instructions", "paths")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-14d %12.3f %14d %10d\n", p.X, p.Seconds, p.Instructions, p.Paths)
	}
	return b.String()
}

// RenderSeries formats a multi-variant sweep (Fig. 10 panels).
func RenderSeries(title, xlabel string, series map[Variant][]Point) string {
	variants := []Variant{Original, Parallel, O3, Opt}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-10s", title, xlabel)
	for _, v := range variants {
		fmt.Fprintf(&b, " %14s", string(v)+" (s)")
	}
	b.WriteString("\n")
	if len(series[Original]) == 0 {
		return b.String()
	}
	for i, p := range series[Original] {
		fmt.Fprintf(&b, "%-10d", p.X)
		for _, v := range variants {
			if i < len(series[v]) {
				fmt.Fprintf(&b, " %14.3f", series[v][i].Seconds)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderTable2 formats Table 2 rows like the paper.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: performance gains of each technique (reduction vs no optimizations)\n")
	fmt.Fprintf(&b, "%-28s |", "")
	for _, v := range Table2Variants {
		fmt.Fprintf(&b, " %11s", v)
	}
	fmt.Fprintf(&b, " | %11s", "base (s)")
	b.WriteString("\n")
	section := func(label string, get func(Table2Cell) (float64, bool)) {
		fmt.Fprintf(&b, "-- %s --\n", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%-28s |", r.Program)
			for _, v := range Table2Variants {
				cell, ok := r.Cells[v]
				if !ok || cell.Failed {
					fmt.Fprintf(&b, " %11s", "-")
					continue
				}
				val, _ := get(cell)
				fmt.Fprintf(&b, " %10.2f%%", val)
			}
			fmt.Fprintf(&b, " | %11.4f", r.BaseTime)
			b.WriteString("\n")
		}
	}
	section("Reduction in Verification Time", func(c Table2Cell) (float64, bool) { return c.TimeReduction, true })
	section("Reduction in Number of Instructions", func(c Table2Cell) (float64, bool) { return c.InstrReduction, true })
	return b.String()
}
