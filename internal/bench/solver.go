package bench

// The solver-acceleration benchmark: execute the largest corpus program
// (fabric) under each acceleration mode and measure where the solver time
// goes — cold baseline (every layer off, the pre-acceleration stack),
// incremental sessions, portfolio racing, and the normalized memo cold
// and warm. All modes must produce identical verdicts, witnesses and
// comparable metrics; only wall time and the acceleration telemetry may
// move.
//
// The result is emitted by cmd/p4bench -exp solver as BENCH_solver.json.

import (
	"bytes"
	"encoding/json"
	"strings"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/solver"
	"p4assert/internal/sym"
)

// SolverRun is one acceleration-mode row.
type SolverRun struct {
	Mode string `json:"mode"`
	// WallSeconds is the whole symbolic execution; SolverSeconds is the
	// time spent inside solver.Check (both from the repetition with the
	// lowest solver time).
	WallSeconds   float64 `json:"wall_seconds"`
	SolverSeconds float64 `json:"solver_seconds"`
	// The acceleration telemetry of that repetition.
	SessionReuseHits     int64 `json:"session_reuse_hits"`
	MemoHits             int64 `json:"memo_hits"`
	PortfolioSessionWins int64 `json:"portfolio_session_wins"`
	PortfolioFreshWins   int64 `json:"portfolio_fresh_wins"`
	SatConflicts         int64 `json:"sat_conflicts"`
	LearnedClauses       int64 `json:"learned_clauses"`
}

// SolverResult is the BENCH_solver.json payload.
type SolverResult struct {
	Experiment   string `json:"experiment"`
	Program      string `json:"program"`
	ProgramLines int    `json:"program_lines"`
	// Queries/FullQueries describe the workload (identical in every mode).
	Queries     int64 `json:"queries"`
	FullQueries int64 `json:"full_queries"`
	// SessionReuseHits mirrors the session row's counter at top level —
	// the CI smoke assertion that incremental sessions actually engage.
	SessionReuseHits int64 `json:"session_reuse_hits"`
	// ByteIdentical records that every mode's verdicts, witnesses and
	// comparable metrics matched the baseline's exactly.
	ByteIdentical bool        `json:"byte_identical"`
	Runs          []SolverRun `json:"runs"`
	// Speedup is baseline solver-seconds over warm-memo solver-seconds:
	// the steady-state gain once the run-wide memo has seen the corpus
	// shapes.
	Speedup float64 `json:"speedup"`
}

// solverModes orders the benchmark rows from no acceleration to full.
var solverModes = []struct {
	name   string
	cfg    solver.Config
	shared bool // reuse one warmed run-wide memo across repetitions
}{
	{"baseline", solver.Config{DisableSession: true, DisableMemo: true, DisablePortfolio: true}, false},
	{"session", solver.Config{DisableMemo: true, DisablePortfolio: true}, false},
	{"portfolio", solver.Config{DisableMemo: true}, false},
	{"memo_cold", solver.Config{}, false},
	{"memo_warm", solver.Config{}, true},
}

// Solver runs the benchmark. repeats stabilizes wall-clock numbers
// (best-of by solver time).
func Solver(repeats int) (*SolverResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	subject := LargestProgram()
	m, err := core.BuildModel(subject.Name+".p4", subject.Source, core.Options{})
	if err != nil {
		return nil, err
	}

	res := &SolverResult{
		Experiment:    "solver",
		Program:       subject.Name,
		ProgramLines:  strings.Count(subject.Source, "\n"),
		ByteIdentical: true,
	}

	var wantComparable []byte
	var baselineSolver, warmSolver float64
	for _, mode := range solverModes {
		var shared *solver.Memo
		if mode.shared {
			shared = solver.NewMemo(solver.SharedMemoCap)
			// Warm-up execution, untimed: the steady state of a run-wide
			// memo that has already seen the corpus query shapes.
			if _, err := sym.Execute(m, sym.Options{Solver: mode.cfg, SolverMemo: shared}); err != nil {
				return nil, err
			}
		}
		row := SolverRun{Mode: mode.name, SolverSeconds: -1}
		for i := 0; i < repeats; i++ {
			opts := sym.Options{Solver: mode.cfg, SolverMemo: shared}
			if !mode.shared && !mode.cfg.DisableMemo {
				opts.SolverMemo = solver.NewMemo(solver.SharedMemoCap)
			}
			t0 := time.Now()
			r, err := sym.Execute(m, opts)
			if err != nil {
				return nil, err
			}
			wall := time.Since(t0).Seconds()

			a := r.Metrics.Solver.Accel
			if sec := float64(a.WallNS) / 1e9; row.SolverSeconds < 0 || sec < row.SolverSeconds {
				row.SolverSeconds = sec
				row.WallSeconds = wall
				row.SessionReuseHits = a.SessionReuseHits
				row.MemoHits = a.MemoHits
				row.PortfolioSessionWins = a.PortfolioSessionWins
				row.PortfolioFreshWins = a.PortfolioFreshWins
				row.SatConflicts = a.Conflicts
				row.LearnedClauses = a.LearnedClauses
			}

			cmp, err := comparableResult(r)
			if err != nil {
				return nil, err
			}
			if wantComparable == nil {
				wantComparable = cmp
				res.Queries = r.Metrics.Solver.Queries
				res.FullQueries = r.Metrics.Solver.FullQueries
			} else if !bytes.Equal(wantComparable, cmp) {
				res.ByteIdentical = false
			}
		}
		switch mode.name {
		case "baseline":
			baselineSolver = row.SolverSeconds
		case "session":
			res.SessionReuseHits = row.SessionReuseHits
		case "memo_warm":
			warmSolver = row.SolverSeconds
		}
		res.Runs = append(res.Runs, row)
	}

	if warmSolver <= 0 {
		warmSolver = 1e-9
	}
	res.Speedup = baselineSolver / warmSolver
	return res, nil
}

// comparableResult serializes the parts of an execution result that must
// be identical in every acceleration mode: canonical violations and the
// comparable metrics (the Accel section is json-excluded by design).
func comparableResult(r *sym.Result) ([]byte, error) {
	vs := append([]*sym.Violation(nil), r.Violations...)
	core.CanonicalizeViolations(vs)
	return json.Marshal(struct {
		Violations []*sym.Violation
		Metrics    sym.Metrics
		Exhausted  bool
	}{vs, r.Metrics, r.Exhausted})
}
