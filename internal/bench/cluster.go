package bench

// The distributed-verification benchmark: verify the fabric corpus
// program through loopback worker clusters of 1, 2 and 4 nodes and
// compare against the single-process parallel pipeline — cold, with warm
// worker cache tiers, and for the edit-verify loop (incremental
// resubmission whose re-executed submodels travel through the cluster).
//
// The result is emitted by cmd/p4bench -exp cluster as
// BENCH_cluster.json. Loopback workers measure the protocol's overhead
// floor (serialization + HTTP + rebuild-from-source memoization) rather
// than multi-machine scaling; the per-node cache-hit ratios show the
// consistent-hash routing doing its job (repeat keys land on warm nodes).

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"p4assert/internal/cluster"
	"p4assert/internal/core"
	"p4assert/internal/incr"
	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

// ClusterNodeStats is one worker's dispatch/cache profile from the last
// repetition of a row.
type ClusterNodeStats struct {
	Name          string  `json:"name"`
	Dispatched    int64   `json:"dispatched"`
	CacheHits     int64   `json:"cache_hits"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	Steals        int64   `json:"steals"`
}

// ClusterRun is one worker-count row.
type ClusterRun struct {
	Workers int `json:"workers"`
	// ColdSeconds routes a cold job (empty worker caches) through the
	// cluster; WarmSeconds repeats it against the now-warm worker tiers;
	// IncrementalSeconds is the edited resubmission against a warmed
	// submodel store (best of repeats each).
	ColdSeconds        float64 `json:"cold_seconds"`
	WarmSeconds        float64 `json:"warm_seconds"`
	IncrementalSeconds float64 `json:"incremental_seconds"`
	// Speedup is the single-process cold baseline over ColdSeconds.
	Speedup float64 `json:"speedup"`
	// Steals counts straggler re-dispatches across the row's last
	// repetition.
	Steals int64              `json:"steals"`
	Nodes  []ClusterNodeStats `json:"nodes"`
}

// ClusterResult is the BENCH_cluster.json payload.
type ClusterResult struct {
	Experiment   string `json:"experiment"`
	Program      string `json:"program"`
	ProgramLines int    `json:"program_lines"`
	Submodels    int    `json:"submodels"`
	// BaselineSeconds is the single-process parallel (4-worker) cold run.
	BaselineSeconds float64 `json:"baseline_seconds"`
	// ByteIdentical records that every cluster-routed report — cold,
	// warm, incremental — compared byte-equal (ComparableJSON) to its
	// single-process counterpart.
	ByteIdentical bool         `json:"byte_identical"`
	Runs          []ClusterRun `json:"runs"`
}

// editSource applies incr.MutateUnit's single-literal edit textually (the
// cluster protocol ships source, so the edit must exist in text form).
func editSource(file, source string) (string, error) {
	_, mut, err := incr.MutateUnit(file, source)
	if err != nil {
		return "", err
	}
	lines := strings.Split(source, "\n")
	if mut.Pos.Line < 1 || mut.Pos.Line > len(lines) {
		return "", fmt.Errorf("bench: mutation position %s out of range", mut.Pos)
	}
	line := lines[mut.Pos.Line-1]
	start := mut.Pos.Col - 1
	if start < 0 || start >= len(line) {
		return "", fmt.Errorf("bench: mutation position %s out of range", mut.Pos)
	}
	isLit := func(c byte) bool {
		return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' || c == 'x' || c == 'w'
	}
	for start > 0 && isLit(line[start-1]) {
		start--
	}
	end := mut.Pos.Col - 1
	for end < len(line) && isLit(line[end]) {
		end++
	}
	tok := line[start:end]
	prefix := ""
	if i := strings.IndexByte(tok, 'w'); i >= 0 {
		prefix = tok[:i+1]
	}
	lines[mut.Pos.Line-1] = line[:start] + prefix + strconv.FormatUint(mut.New, 10) + line[end:]
	return strings.Join(lines, "\n"), nil
}

// Cluster runs the benchmark. repeats stabilizes wall-clock numbers
// (best-of); workerCounts defaults to {1, 2, 4}.
func Cluster(repeats int, workerCounts []int) (*ClusterResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	subject, err := progs.Get("fabric")
	if err != nil {
		return nil, err
	}
	file := subject.Name + ".p4"
	opts := core.Options{Parallel: 4}
	if subject.Rules != "" {
		rs, err := rules.Parse(subject.Rules)
		if err != nil {
			return nil, err
		}
		opts.Rules = rs
	}
	edited, err := editSource(file, subject.Source)
	if err != nil {
		return nil, err
	}

	res := &ClusterResult{
		Experiment:    "cluster",
		Program:       subject.Name,
		ProgramLines:  strings.Count(subject.Source, "\n"),
		ByteIdentical: true,
	}
	ctx := context.Background()

	// Single-process baselines: the reports every cluster run must match.
	var baseRep, editRep *core.Report
	for i := 0; i < repeats; i++ {
		t0 := time.Now()
		rep, err := core.VerifySourceCtx(ctx, file, subject.Source, opts)
		if err != nil {
			return nil, err
		}
		sec := time.Since(t0).Seconds()
		if i == 0 || sec < res.BaselineSeconds {
			res.BaselineSeconds = sec
		}
		baseRep = rep
	}
	res.Submodels = baseRep.Submodels
	if editRep, err = core.VerifySourceCtx(ctx, file, edited, opts); err != nil {
		return nil, err
	}
	baseBytes, err := baseRep.ComparableJSON()
	if err != nil {
		return nil, err
	}
	editBytes, err := editRep.ComparableJSON()
	if err != nil {
		return nil, err
	}
	check := func(rep *core.Report, want []byte) error {
		got, err := rep.ComparableJSON()
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			res.ByteIdentical = false
		}
		return nil
	}

	for _, n := range workerCounts {
		row := ClusterRun{Workers: n}
		for rep := 0; rep < repeats; rep++ {
			// Fresh workers every repetition: ColdSeconds must see empty
			// cache tiers and unbuilt program memos.
			specs := make([]cluster.NodeSpec, n)
			servers := make([]*httptest.Server, n)
			for i := 0; i < n; i++ {
				w, err := cluster.NewWorker(cluster.WorkerConfig{Name: fmt.Sprintf("w%d", i)})
				if err != nil {
					return nil, err
				}
				servers[i] = httptest.NewServer(w.Handler())
				specs[i] = cluster.NodeSpec{Name: w.Name(), Addr: servers[i].URL}
			}
			coord := cluster.NewCoordinator(cluster.Config{Nodes: specs})

			t0 := time.Now()
			cold, err := core.VerifySourceExec(ctx, file, subject.Source, opts, coord)
			if err != nil {
				return nil, err
			}
			sec := time.Since(t0).Seconds()
			if rep == 0 || sec < row.ColdSeconds {
				row.ColdSeconds = sec
			}
			if err := check(cold, baseBytes); err != nil {
				return nil, err
			}

			// Warm repeat: every submodel key is now in some worker's tier.
			t0 = time.Now()
			warm, err := core.VerifySourceExec(ctx, file, subject.Source, opts, coord)
			if err != nil {
				return nil, err
			}
			sec = time.Since(t0).Seconds()
			if rep == 0 || sec < row.WarmSeconds {
				row.WarmSeconds = sec
			}
			if err := check(warm, baseBytes); err != nil {
				return nil, err
			}

			// Edit-verify loop: warm a submodel store on the unedited
			// program, then time the edited resubmission through the
			// cluster.
			store := memStore{}
			if _, _, err := core.VerifyIncrementalSourceExec(ctx, file, "", subject.Source, opts, store, coord); err != nil {
				return nil, err
			}
			t0 = time.Now()
			incRep, _, err := core.VerifyIncrementalSourceExec(ctx, file, subject.Source, edited, opts, store, coord)
			if err != nil {
				return nil, err
			}
			sec = time.Since(t0).Seconds()
			if rep == 0 || sec < row.IncrementalSeconds {
				row.IncrementalSeconds = sec
			}
			if err := check(incRep, editBytes); err != nil {
				return nil, err
			}

			row.Steals = 0
			row.Nodes = row.Nodes[:0]
			for _, ns := range coord.Nodes() {
				stat := ClusterNodeStats{
					Name:       ns.Name,
					Dispatched: ns.Dispatched,
					CacheHits:  ns.CacheHits,
					Steals:     ns.Steals,
				}
				if ns.Dispatched > 0 {
					stat.CacheHitRatio = float64(ns.CacheHits) / float64(ns.Dispatched)
				}
				row.Steals += ns.Steals
				row.Nodes = append(row.Nodes, stat)
			}
			coord.Close()
			for _, srv := range servers {
				srv.Close()
			}
		}
		row.Speedup = res.BaselineSeconds / row.ColdSeconds
		res.Runs = append(res.Runs, row)
	}
	return res, nil
}
