package bench

import (
	"strings"
	"testing"
)

func TestRunSweepPoint(t *testing.T) {
	for _, s := range []Sweep{SweepTables, SweepAssertions, SweepRules, SweepActions} {
		xs := DefaultXs(s, false)
		if len(xs) == 0 {
			t.Fatalf("%s: no default xs", s)
		}
		p, err := RunSweepPoint(s, xs[0], Original)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if p.Paths == 0 || p.Instructions == 0 || p.Seconds <= 0 {
			t.Fatalf("%s: degenerate point %+v", s, p)
		}
	}
}

func TestFullRangesAreSupersets(t *testing.T) {
	for _, s := range []Sweep{SweepTables, SweepRules, SweepActions} {
		small := DefaultXs(s, false)
		full := DefaultXs(s, true)
		if full[len(full)-1] <= small[len(small)-1] {
			t.Fatalf("%s: full range should extend further", s)
		}
	}
}

func TestTablesSweepGrowsExponentially(t *testing.T) {
	p1, err := RunSweepPoint(SweepTables, 6, Original)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RunSweepPoint(SweepTables, 8, Original)
	if err != nil {
		t.Fatal(err)
	}
	// Two more tables at two actions each: exactly 4x the paths.
	if p2.Paths != p1.Paths*4 {
		t.Fatalf("paths %d -> %d, want exactly 4x", p1.Paths, p2.Paths)
	}
}

func TestO3HelpsRulesSweep(t *testing.T) {
	orig, err := RunSweepPoint(SweepRules, 40, Original)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := RunSweepPoint(SweepRules, 40, O3)
	if err != nil {
		t.Fatal(err)
	}
	if o3.Instructions >= orig.Instructions {
		t.Fatalf("O3 should reduce instructions on the rules sweep: %d vs %d",
			o3.Instructions, orig.Instructions)
	}
}

func TestTable2ShapesHold(t *testing.T) {
	rows, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Program] = r
	}
	// MRI's slice column must be the failure marker (paper's "-").
	mri := byName["MRI (multi-hop route inspection)"]
	if !mri.Cells[Slice].Failed {
		t.Fatal("MRI slice cell should be a failure")
	}
	// Dapper is the heaviest program.
	dapper := byName["Dapper (TCP diagnosis)"]
	for name, r := range byName {
		if name != dapper.Program && r.BaseTime > dapper.BaseTime {
			t.Fatalf("%s (%fs) outweighs Dapper (%fs)", name, r.BaseTime, dapper.BaseTime)
		}
	}
	// Instruction reductions from O3 must be positive everywhere
	// (paper: 20–75%).
	for name, r := range byName {
		if c := r.Cells[O3]; c.Failed || c.InstrReduction <= 0 {
			t.Fatalf("%s: O3 instruction reduction = %+v", name, c)
		}
	}
	// Constraints must reduce Dapper's instructions (paper: 50%).
	if c := dapper.Cells[Constraints]; c.InstrReduction <= 0 {
		t.Fatalf("Dapper constraints cell = %+v", c)
	}
}

func TestCombinedReproducesDirection(t *testing.T) {
	timeRed, instrRed, err := Combined(2)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports −81.76% time / −89.25% instructions; our substrate
	// must at least reproduce large positive reductions.
	if timeRed < 30 {
		t.Fatalf("combined time reduction = %.2f%%, want substantial (paper 81.76%%)", timeRed)
	}
	if instrRed < 30 {
		t.Fatalf("combined instruction reduction = %.2f%%, want substantial (paper 89.25%%)", instrRed)
	}
}

func TestBugFindingFindsAll(t *testing.T) {
	results, err := BugFinding()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 5 {
		t.Fatalf("expected ≥5 buggy programs, got %d", len(results))
	}
	for _, r := range results {
		if !r.AllFound {
			t.Fatalf("%s: expected violations missing", r.Program)
		}
	}
}

func TestRenderers(t *testing.T) {
	pts := []Point{{X: 1, Seconds: 0.5, Instructions: 100, Paths: 3}}
	out := RenderPoints("title", "x", pts)
	if !strings.Contains(out, "title") || !strings.Contains(out, "0.500") {
		t.Fatalf("RenderPoints output:\n%s", out)
	}
	series := map[Variant][]Point{
		Original: pts, Parallel: pts, O3: pts, Opt: pts,
	}
	out2 := RenderSeries("t2", "x", series)
	if !strings.Contains(out2, "Original (s)") {
		t.Fatalf("RenderSeries output:\n%s", out2)
	}
	rows := []Table2Row{{
		Program: "p", BaseTime: 1, BaseIns: 100,
		Cells: map[Variant]Table2Cell{
			O3:    {TimeReduction: 10, InstrReduction: 20},
			Slice: {Failed: true},
		},
	}}
	out3 := RenderTable2(rows)
	if !strings.Contains(out3, "10.00%") || !strings.Contains(out3, "-") {
		t.Fatalf("RenderTable2 output:\n%s", out3)
	}
}
