package bench

import (
	"strings"
	"testing"
)

// TestIncrementalShapesHold checks the benchmark's structural invariants
// (wall-clock ratios are asserted loosely — CI machines vary; the hard
// ≥3× claim is validated by the committed BENCH_incremental.json run).
func TestIncrementalShapesHold(t *testing.T) {
	res, err := Incremental(1, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program != LargestProgram().Name {
		t.Fatalf("subject %s is not the largest corpus program", res.Program)
	}
	if !strings.Contains(res.EditedUnit, "action ") {
		t.Fatalf("benchmark must edit an action, edited %q", res.EditedUnit)
	}
	if !res.ByteIdentical {
		t.Fatal("incremental report diverged from the cold run")
	}
	if res.Reused == 0 || res.Executed == 0 || res.Reused+res.Executed != res.Submodels {
		t.Fatalf("implausible plan: reused %d + executed %d vs %d submodels",
			res.Reused, res.Executed, res.Submodels)
	}
	if res.Reused <= res.Executed {
		t.Fatalf("a single-action edit should reuse most submodels: reused %d, executed %d",
			res.Reused, res.Executed)
	}
	if res.Speedup <= 1 {
		t.Fatalf("incremental run slower than cold: %.2fx", res.Speedup)
	}
}
