package bench

import "testing"

// TestTestgenSmoke runs the oracle-throughput benchmark with a small timed
// region: the generated fabric suite must validate against its recorded
// expectations and the replay accounting must be consistent.
func TestTestgenSmoke(t *testing.T) {
	res, err := Testgen(2, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SuiteValid {
		t.Fatal("generated suite did not replay to its expectations")
	}
	if res.Cases == 0 || res.Packets < 20_000 {
		t.Fatalf("timed region too small: %+v", res)
	}
	if res.PacketsPerSecond <= 0 || res.Instructions <= 0 {
		t.Fatalf("missing throughput accounting: %+v", res)
	}
	if want := res.RoundsPerWorker * int64(res.Workers) * int64(res.Cases); res.Packets != want {
		t.Fatalf("packet accounting: got %d, want %d", res.Packets, want)
	}
}
