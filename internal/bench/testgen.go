package bench

// The test-packet oracle benchmark: generate the per-path test suite of
// the fabric corpus program (the paper's §6 "ongoing work" — p4pktgen-style
// concrete test generation), validate it once against the expectations the
// symbolic explorer recorded, then measure raw replay throughput of the
// compiled batch interpreter. The suite is the concrete oracle behind
// differential verification, so replay speed bounds how often it can run;
// the target regime is millions of packets per second.
//
// The result is emitted by cmd/p4bench -exp testgen as BENCH_testgen.json.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/interp"
	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

// TestgenResult is the BENCH_testgen.json payload.
type TestgenResult struct {
	Experiment string `json:"experiment"`
	Program    string `json:"program"`
	// Cases is the number of distinct generated test cases — one per
	// explored path of the subject program.
	Cases int `json:"cases"`
	// SuiteValid records that every case replayed to its recorded
	// expected outcome before the timed runs.
	SuiteValid bool `json:"suite_valid"`
	// Workers × RoundsPerWorker replays of the whole suite were timed.
	Workers         int   `json:"workers"`
	RoundsPerWorker int64 `json:"rounds_per_worker"`
	// Packets is the total number of packets replayed in the timed region.
	Packets          int64   `json:"packets"`
	Seconds          float64 `json:"seconds"`
	PacketsPerSecond float64 `json:"packets_per_second"`
	// Instructions totals interpreted batch-VM instructions.
	Instructions int64 `json:"instructions"`
}

// Testgen runs the benchmark: workers defaults to GOMAXPROCS,
// targetPackets (the minimum timed-region size) to 2,000,000.
func Testgen(workers int, targetPackets int64) (*TestgenResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if targetPackets <= 0 {
		targetPackets = 2_000_000
	}
	subject, err := progs.Get("fabric")
	if err != nil {
		return nil, err
	}
	file := subject.Name + ".p4"
	opts := core.Options{}
	if subject.Rules != "" {
		rs, err := rules.Parse(subject.Rules)
		if err != nil {
			return nil, err
		}
		opts.Rules = rs
	}

	cases, err := core.GenerateTestsSource(file, subject.Source, opts)
	if err != nil {
		return nil, err
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("bench: %s generated no test cases", subject.Name)
	}
	m, err := core.BuildModel(file, subject.Source, opts)
	if err != nil {
		return nil, err
	}
	m, err = core.ApplyModelPasses(m, opts)
	if err != nil {
		return nil, err
	}

	res := &TestgenResult{
		Experiment: "testgen",
		Program:    subject.Name,
		Cases:      len(cases),
		Workers:    workers,
	}

	// Oracle pass: the suite must match its recorded expectations before
	// its replay speed means anything.
	batch, err := core.ReplayBatch(m, cases)
	if err != nil {
		return nil, err
	}
	res.SuiteValid = batch.Ok()
	if !res.SuiteValid {
		return res, fmt.Errorf("bench: %d of %d cases diverge from their expectations", len(batch.Mismatches), len(cases))
	}

	// Timed region: compile once, resolve inputs and traces once (the
	// interning mutates the compilation and is not concurrent-safe), then
	// hammer the read-only program with one Exec per worker.
	c, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		return nil, err
	}
	ins := make([][]uint64, len(cases))
	decs := make([][]interp.Decision, len(cases))
	for i, tc := range cases {
		ins[i] = c.LoadInputs(tc.Inputs)
		decs[i], err = c.LoadTrace(tc.Trace)
		if err != nil {
			return nil, fmt.Errorf("case %d: %w", i, err)
		}
	}
	perWorker := (targetPackets + int64(workers*len(cases)) - 1) / int64(workers*len(cases))
	if perWorker < 1 {
		perWorker = 1
	}
	res.RoundsPerWorker = perWorker
	res.Packets = perWorker * int64(workers) * int64(len(cases))

	var wg sync.WaitGroup
	var instructions atomic.Int64
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex := c.NewExec()
			var instr int64
			for r := int64(0); r < perWorker; r++ {
				for i := range ins {
					out := ex.Run(ins[i], decs[i])
					instr += out.Instructions
				}
			}
			instructions.Add(instr)
		}()
	}
	wg.Wait()
	res.Seconds = time.Since(t0).Seconds()
	res.Instructions = instructions.Load()
	if res.Seconds > 0 {
		res.PacketsPerSecond = float64(res.Packets) / res.Seconds
	}
	return res, nil
}
