package whippersnapper

import (
	"testing"

	"p4assert/internal/core"
	"p4assert/internal/p4"
	"p4assert/internal/translate"
)

// TestGeneratedProgramsCompile: every configuration in a parameter grid
// must parse, type-check and translate.
func TestGeneratedProgramsCompile(t *testing.T) {
	for _, cfg := range []Config{
		{Tables: 1},
		{Tables: 4},
		{Tables: 2, ActionsFirst: 5, Actions: 4},
		{Tables: 2, RulesPerTable: 8},
		{Tables: 1, Assertions: 6},
		{Tables: 3, RulesPerTable: 4, Assertions: 3},
	} {
		src := Generate(cfg)
		prog, err := p4.Parse("ws.p4", src)
		if err != nil {
			t.Fatalf("cfg %+v: parse: %v\n%s", cfg, err, src)
		}
		if err := prog.Check(); err != nil {
			t.Fatalf("cfg %+v: check: %v", cfg, err)
		}
		if _, err := translate.Translate(prog, translate.Options{Rules: GenerateRules(cfg)}); err != nil {
			t.Fatalf("cfg %+v: translate: %v", cfg, err)
		}
	}
}

// TestPathCountClosedForm: the executor's completed path count must match
// the generator's closed-form prediction (DESIGN.md invariant).
func TestPathCountClosedForm(t *testing.T) {
	for _, cfg := range []Config{
		{Tables: 1},
		{Tables: 2},
		{Tables: 3},
		{Tables: 2, ActionsFirst: 4, Actions: 3},
		{Tables: 2, RulesPerTable: 3},
		{Tables: 1, RulesPerTable: 5},
		{Tables: 2, Protocols: 3},
		{Tables: 1, Protocols: 2, RulesPerTable: 2},
	} {
		rep, err := core.VerifySource("ws.p4", Generate(cfg), core.Options{Rules: GenerateRules(cfg)})
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if got, want := rep.Metrics.Paths, cfg.PathCount(); got != want {
			t.Fatalf("cfg %+v: %d paths, want %d", cfg, got, want)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("cfg %+v: synthetic program must verify:\n%s", cfg, rep.Summary())
		}
	}
}

// TestAssertionsVerifyAndCost: assertions hold, and each one adds solver
// work (the Fig. 9(b) driver).
func TestAssertionsVerifyAndCost(t *testing.T) {
	run := func(asserts int) *core.Report {
		cfg := Config{Tables: 1, Assertions: asserts}
		rep, err := core.VerifySource("ws.p4", Generate(cfg), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("asserts=%d: %s", asserts, rep.Summary())
		}
		return rep
	}
	r0 := run(0)
	r8 := run(8)
	if r8.Metrics.Solver.Queries <= r0.Metrics.Solver.Queries {
		t.Fatalf("assertions should add solver queries: %d vs %d",
			r8.Metrics.Solver.Queries, r0.Metrics.Solver.Queries)
	}
}

// TestTablesGrowPaths: path counts grow multiplicatively with pipeline
// depth (the Fig. 9(a) driver).
func TestTablesGrowPaths(t *testing.T) {
	paths := func(tables int) int64 {
		rep, err := core.VerifySource("ws.p4", Generate(Default(tables)), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Metrics.Paths
	}
	p2, p4n := paths(2), paths(4)
	if p4n != p2*4 { // two more tables at 2 actions each
		t.Fatalf("paths(4)=%d, want paths(2)*4=%d", p4n, p2*4)
	}
}

// TestRulesGeneration sanity-checks the rule builder.
func TestRulesGeneration(t *testing.T) {
	cfg := Config{Tables: 2, RulesPerTable: 5}
	rs := GenerateRules(cfg)
	if rs.NumRules() != 10 {
		t.Fatalf("NumRules = %d, want 10", rs.NumRules())
	}
	if got := rs.ForTable("WsIngress", "table_1"); len(got) != 5 {
		t.Fatalf("table_1 rules = %d, want 5", len(got))
	}
	if rs2 := GenerateRules(Config{Tables: 2}); rs2.NumRules() != 0 {
		t.Fatal("no rules requested but some generated")
	}
}

// TestSubmodelParallelMatchesSequential: the Fig. 10 comparison is only
// meaningful if parallel execution preserves results on the synthetic
// family.
func TestSubmodelParallelMatchesSequential(t *testing.T) {
	cfg := Config{Tables: 3, Assertions: 2}
	src := Generate(cfg)
	seq, err := core.VerifySource("ws.p4", src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.VerifySource("ws.p4", src, core.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Violations) != 0 || len(par.Violations) != 0 {
		t.Fatal("synthetic program must verify under both modes")
	}
	if par.Submodels < 2 {
		t.Fatalf("expected multiple submodels, got %d", par.Submodels)
	}
	if par.Metrics.Paths != seq.Metrics.Paths {
		t.Fatalf("parallel paths %d != sequential %d", par.Metrics.Paths, seq.Metrics.Paths)
	}
}

// TestParserBranchesSplitSubmodels: with protocol branching the submodel
// heuristic splits at the parser first, multiplying the submodel count by
// the parser's arm count (paper §4.4's two-level strategy).
func TestParserBranchesSplitSubmodels(t *testing.T) {
	plain, err := core.VerifySource("ws.p4", Generate(Config{Tables: 2}), core.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	branched, err := core.VerifySource("ws.p4", Generate(Config{Tables: 2, Protocols: 3}), core.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if branched.Submodels <= plain.Submodels {
		t.Fatalf("parser branching should add submodels: %d vs %d",
			branched.Submodels, plain.Submodels)
	}
	// Sequential exploration matches the closed form exactly.
	seq, err := core.VerifySource("ws.p4", Generate(Config{Tables: 2, Protocols: 3}), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := (Config{Tables: 2, Protocols: 3}).PathCount()
	if seq.Metrics.Paths != want {
		t.Fatalf("sequential paths = %d, want %d", seq.Metrics.Paths, want)
	}
	// Submodels may re-walk paths that never reach their assumed decision
	// point (the reject path never reaches the table split), so the
	// parallel union covers at least the sequential path set — the same
	// duplication overhead the paper's §5.4 analysis describes.
	if branched.Metrics.Paths < want {
		t.Fatalf("parallel coverage incomplete: %d paths, want ≥ %d", branched.Metrics.Paths, want)
	}
}

// BenchmarkGenerate measures generator throughput (it runs inside the
// figure harness loops).
func BenchmarkGenerate(b *testing.B) {
	cfg := Config{Tables: 8, Assertions: 8, RulesPerTable: 16}
	for i := 0; i < b.N; i++ {
		if len(Generate(cfg)) == 0 {
			b.Fatal("empty source")
		}
	}
}
