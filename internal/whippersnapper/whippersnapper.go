// Package whippersnapper generates synthetic P4 programs in the style of
// the Whippersnapper benchmark suite [7] used by the paper's performance
// analysis (§5.3): parameterized chains of match-action tables with
// configurable actions per table, forwarding rules per table, and assertion
// counts. The paper's parameter defaults are preserved: three actions on
// the first table, two on every subsequent one, and no rules or assertions
// unless requested.
package whippersnapper

import (
	"fmt"
	"strings"

	"p4assert/internal/rules"
)

// Config parameterizes one synthetic program.
type Config struct {
	// Tables is the pipeline depth (≥ 1).
	Tables int
	// ActionsFirst is the number of real actions on the first table
	// (default 3, per the paper).
	ActionsFirst int
	// Actions is the number of real actions on subsequent tables
	// (default 2, per the paper).
	Actions int
	// RulesPerTable, when > 0, generates that many exact-match forwarding
	// rules for every table (the Fig. 9(c) sweep). Zero leaves rules
	// unknown so tables fork over their actions.
	RulesPerTable int
	// Assertions is the number of @assert annotations appended to the
	// first pipeline stage (the Fig. 9(b) sweep).
	Assertions int
	// Protocols adds parser branching: the packet carries a protocol
	// selector and the parser extracts one of Protocols alternative
	// headers before the table pipeline (≤ 1 means a straight-line
	// parser). Parser decision points are where the paper's submodel
	// heuristic splits first (§4.4).
	Protocols int
}

// Default returns the paper's default parameters for a given table count.
func Default(tables int) Config {
	return Config{Tables: tables, ActionsFirst: 3, Actions: 2}
}

func (c Config) normalize() Config {
	if c.Tables < 1 {
		c.Tables = 1
	}
	if c.ActionsFirst < 1 {
		c.ActionsFirst = 3
	}
	if c.Actions < 1 {
		c.Actions = 2
	}
	return c
}

// numActions returns the action count of table t (0-based).
func (c Config) numActions(t int) int {
	if t == 0 {
		return c.ActionsFirst
	}
	return c.Actions
}

// PathCount returns the closed-form number of completed execution paths of
// the generated program when rules are unknown: the product over tables of
// (actions per table), times the parser branch count. With rules supplied,
// each table contributes (rules+1) outcomes instead.
func (c Config) PathCount() int64 {
	c = c.normalize()
	perParse := int64(1)
	for t := 0; t < c.Tables; t++ {
		branch := int64(c.numActions(t))
		if c.RulesPerTable > 0 {
			branch = int64(c.RulesPerTable) + 1
		}
		perParse *= branch
	}
	if c.Protocols > 1 {
		// One pipeline traversal per accepted protocol, plus the single
		// rejected-packet path that skips the pipeline.
		return int64(c.Protocols)*perParse + 1
	}
	return perParse
}

// Generate produces the P4 source of the synthetic program.
func Generate(cfg Config) string {
	cfg = cfg.normalize()
	var b strings.Builder

	// One 16-bit data field per table (the table's key), plus one spare
	// written by actions.
	b.WriteString("// Synthetic Whippersnapper-style pipeline program.\n")
	b.WriteString("header data_t {\n")
	if cfg.Protocols > 1 {
		b.WriteString("    bit<8> proto;\n")
	}
	for t := 0; t < cfg.Tables; t++ {
		fmt.Fprintf(&b, "    bit<16> f%d;\n", t)
	}
	b.WriteString("    bit<16> scratch;\n")
	b.WriteString("}\n\n")
	if cfg.Protocols > 1 {
		for p := 0; p < cfg.Protocols; p++ {
			fmt.Fprintf(&b, "header proto%d_t { bit<16> tag; bit<16> body; }\n", p)
		}
	}
	b.WriteString("struct headers_t {\n    data_t data;\n")
	if cfg.Protocols > 1 {
		for p := 0; p < cfg.Protocols; p++ {
			fmt.Fprintf(&b, "    proto%d_t proto%d;\n", p, p)
		}
	}
	b.WriteString("}\n")
	b.WriteString("struct metadata_t { bit<16> acc; }\n\n")

	b.WriteString(`parser WsParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                inout standard_metadata_t standard_metadata) {
`)
	if cfg.Protocols > 1 {
		b.WriteString("    state start {\n        pkt.extract(hdr.data);\n")
		b.WriteString("        transition select(hdr.data.proto) {\n")
		for p := 0; p < cfg.Protocols; p++ {
			fmt.Fprintf(&b, "            %d: parse_proto%d;\n", p, p)
		}
		b.WriteString("            default: reject;\n        }\n    }\n")
		for p := 0; p < cfg.Protocols; p++ {
			fmt.Fprintf(&b, "    state parse_proto%d { pkt.extract(hdr.proto%d); transition accept; }\n", p, p)
		}
		b.WriteString("}\n\n")
	} else {
		b.WriteString(`    state start {
        pkt.extract(hdr.data);
        transition accept;
    }
}

`)
	}

	b.WriteString("control WsIngress(inout headers_t hdr, inout metadata_t meta,\n")
	b.WriteString("                  inout standard_metadata_t standard_metadata) {\n")
	for t := 0; t < cfg.Tables; t++ {
		for a := 0; a < cfg.numActions(t); a++ {
			// Each action rewrites the scratch field and the egress port;
			// action 0 of each table also feeds the accumulator so later
			// tables depend on earlier ones.
			fmt.Fprintf(&b, "    action act_%d_%d(bit<16> p) {\n", t, a)
			fmt.Fprintf(&b, "        hdr.data.scratch = p + %d;\n", t*16+a)
			if a == 0 {
				fmt.Fprintf(&b, "        meta.acc = meta.acc + hdr.data.f%d;\n", t)
			}
			fmt.Fprintf(&b, "        standard_metadata.egress_spec = %d;\n", (t+a)%8+1)
			b.WriteString("    }\n")
		}
		fmt.Fprintf(&b, "    table table_%d {\n", t)
		fmt.Fprintf(&b, "        key = { hdr.data.f%d : exact; }\n", t)
		b.WriteString("        actions = {\n")
		for a := 0; a < cfg.numActions(t); a++ {
			fmt.Fprintf(&b, "            act_%d_%d;\n", t, a)
		}
		b.WriteString("        }\n")
		fmt.Fprintf(&b, "        default_action = act_%d_0(0);\n", t)
		fmt.Fprintf(&b, "        size = %d;\n", max(cfg.RulesPerTable, 16))
		b.WriteString("    }\n")
	}

	b.WriteString("    apply {\n")
	for t := 0; t < cfg.Tables; t++ {
		fmt.Fprintf(&b, "        table_%d.apply();\n", t)
	}
	for i := 0; i < cfg.Assertions; i++ {
		// Non-trivial but valid properties, placed after the pipeline so
		// each explored path checks them. They alternate between an
		// immediate range property and a deferred forward() property;
		// both require an UNSAT solver verdict rather than folding away
		// syntactically.
		field := i % cfg.Tables
		bound := 0x4000 + i*7
		if i%2 == 0 {
			fmt.Fprintf(&b, "        @assert(\"if(hdr.data.f%d < 0x%x, hdr.data.f%d <= 0x%x)\");\n",
				field, bound, field, bound)
		} else {
			fmt.Fprintf(&b, "        @assert(\"if(forward(), hdr.data.f%d + %d != hdr.data.f%d)\");\n",
				field, i+1, field)
		}
	}
	b.WriteString("    }\n}\n\n")

	b.WriteString(`control WsDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.data);
    }
}

V1Switch(WsParser, WsIngress, WsDeparser) main;
`)
	return b.String()
}

// GenerateRules builds the forwarding-rule set matching Generate's tables:
// RulesPerTable exact-match entries per table with distinct key values.
func GenerateRules(cfg Config) *rules.RuleSet {
	cfg = cfg.normalize()
	rs := rules.NewRuleSet()
	if cfg.RulesPerTable <= 0 {
		return rs
	}
	prio := 0
	for t := 0; t < cfg.Tables; t++ {
		n := cfg.numActions(t)
		for r := 0; r < cfg.RulesPerTable; r++ {
			rs.Add(rules.Rule{
				Table:    fmt.Sprintf("table_%d", t),
				Action:   fmt.Sprintf("act_%d_%d", t, r%n),
				Keys:     []rules.Match{{Kind: rules.Exact, Value: uint64(r)}},
				Args:     []uint64{uint64(r * 3)},
				Priority: prio,
			})
			prio++
		}
	}
	return rs
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
