package solver

import (
	"math/rand"
	"testing"

	"p4assert/internal/bv"
)

func TestQuickUnsatOnFoldedFalse(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	res := c.Check([]*bv.Expr{ctx.False()})
	if res.Sat || !res.Quick {
		t.Fatalf("folded-false should be quick UNSAT, got %+v", res)
	}
}

func TestQuickSatOnAllTrue(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	res := c.Check([]*bv.Expr{ctx.True(), ctx.True()})
	if !res.Sat || !res.Quick {
		t.Fatalf("all-true should be quick SAT, got %+v", res)
	}
}

func TestEqualityGuessAvoidsSAT(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	et := ctx.Var("ethertype", 16)
	ttl := ctx.Var("ttl", 8)
	res := c.Check([]*bv.Expr{
		ctx.Eq(et, ctx.Const(16, 0x800)),
		ctx.Eq(ttl, ctx.Const(8, 64)),
	})
	if !res.Sat {
		t.Fatal("should be SAT")
	}
	if !res.Quick {
		t.Fatal("pure equality set should be answered by the guess layer")
	}
	if res.Model["ethertype"] != 0x800 || res.Model["ttl"] != 64 {
		t.Fatalf("guessed model wrong: %v", res.Model)
	}
	if c.Stats.FullQueries != 0 {
		t.Fatal("full SAT query should not have run")
	}
}

func TestFullSolveFallback(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	x := ctx.Var("x", 8)
	y := ctx.Var("y", 8)
	// Not guessable from equalities: x+y==7 && x>y.
	res := c.Check([]*bv.Expr{
		ctx.Eq(ctx.Add(x, y), ctx.Const(8, 7)),
		ctx.Ugt(x, y),
	})
	if !res.Sat {
		t.Fatal("should be SAT")
	}
	if (res.Model["x"]+res.Model["y"])&0xff != 7 || res.Model["x"] <= res.Model["y"] {
		t.Fatalf("model wrong: %v", res.Model)
	}
	if c.Stats.FullQueries != 1 {
		t.Fatalf("expected 1 full query, got %d", c.Stats.FullQueries)
	}
}

func TestUnsatConflict(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	x := ctx.Var("x", 8)
	res := c.Check([]*bv.Expr{
		ctx.Eq(x, ctx.Const(8, 3)),
		ctx.Ugt(x, ctx.Const(8, 10)),
	})
	if res.Sat {
		t.Fatal("x==3 && x>10 should be UNSAT")
	}
}

func TestBooleanFlagGuessing(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	fwd := ctx.Var("fwd", 1)
	drop := ctx.Var("drop", 1)
	res := c.Check([]*bv.Expr{fwd, ctx.Not(drop)})
	if !res.Sat || !res.Quick {
		t.Fatalf("boolean literals should be quick SAT, got %+v", res)
	}
	if res.Model["fwd"] != 1 || res.Model["drop"] != 0 {
		t.Fatalf("model wrong: %v", res.Model)
	}
}

// Property: Check's verdict matches brute force over two 6-bit variables
// for random constraint sets, and SAT models satisfy every constraint.
func TestCheckAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 80; iter++ {
		ctx := bv.NewContext()
		c := New(ctx)
		x := ctx.Var("x", 6)
		y := ctx.Var("y", 6)
		n := 1 + r.Intn(3)
		var cs []*bv.Expr
		for i := 0; i < n; i++ {
			lhs := x
			if r.Intn(2) == 0 {
				lhs = y
			}
			rhs := ctx.Const(6, uint64(r.Intn(64)))
			var e *bv.Expr
			switch r.Intn(4) {
			case 0:
				e = ctx.Eq(lhs, rhs)
			case 1:
				e = ctx.Ult(lhs, rhs)
			case 2:
				e = ctx.Eq(ctx.Add(x, y), rhs)
			default:
				e = ctx.Ne(ctx.Xor(x, y), rhs)
			}
			cs = append(cs, e)
		}
		want := false
		env := map[string]uint64{}
	brute:
		for a := uint64(0); a < 64; a++ {
			for b := uint64(0); b < 64; b++ {
				env["x"], env["y"] = a, b
				all := true
				for _, e := range cs {
					if bv.Eval(e, env) != 1 {
						all = false
						break
					}
				}
				if all {
					want = true
					break brute
				}
			}
		}
		res := c.Check(cs)
		if res.Sat != want {
			t.Fatalf("iter %d: Check=%v brute=%v", iter, res.Sat, want)
		}
		if res.Sat {
			for _, e := range cs {
				if bv.Eval(e, res.Model) != 1 {
					t.Fatalf("iter %d: model %v fails %s", iter, res.Model, e)
				}
			}
		}
	}
}
