package solver

// Canonical query encoding: the normalized-memo key and the canonical
// variable order the whole acceleration subsystem hangs off.
//
// Two constraint sets that differ only in variable naming and conjunct
// order describe the same satisfiability problem — sibling paths and
// sibling submodels produce such repeats constantly (the k-th symbolic
// draw of a header field gets a different "hint#k" name per version, rule
// branches permute the same key conjuncts). The canonical form erases
// both sources of variation:
//
//  1. each conjunct is serialized context-free, with variables numbered
//     by first appearance *within the conjunct* and DAG sharing kept as
//     back-references (this local encoding is cacheable per expression
//     node, since hash-consing makes pointer identity structural);
//  2. conjuncts are stably sorted by local encoding — ties keep original
//     order, which can only cost memo hits, never correctness;
//  3. variables are renumbered globally by first appearance in the sorted
//     order, and the key records, per conjunct, the local→global mapping.
//
// The key is injective modulo renaming: equal keys imply the queries are
// isomorphic under the positional variable bijection, so a memoized
// verdict, canonical model (values by global index) and fresh-blast CNF
// size transfer exactly. The global numbering also fixes the variable
// order for lexicographically-minimal model extraction (accel.go), which
// is what keeps models independent of solver internals.

import (
	"sort"
	"strconv"
	"strings"

	"p4assert/internal/bv"
)

// canonQuery is the canonical form of one live constraint set.
type canonQuery struct {
	key      string
	conjs    []*bv.Expr // conjuncts in canonical order
	varOrder []string   // actual variable names by canonical index
	widths   []int      // widths matching varOrder
}

// localEnc is one conjunct's context-free encoding.
type localEnc struct {
	enc    string
	vars   []string // names in local first-appearance order
	widths []int
}

// encodeLocal serializes e with local variable numbering, memoized in
// cache (safe: the encoding depends only on the node's own structure).
func encodeLocal(e *bv.Expr, cache map[*bv.Expr]*localEnc) *localEnc {
	if le, ok := cache[e]; ok {
		return le
	}
	le := &localEnc{}
	var sb strings.Builder
	varNum := map[string]int{}
	nodeNum := map[*bv.Expr]int{}
	var emit func(x *bv.Expr)
	emit = func(x *bv.Expr) {
		if id, ok := nodeNum[x]; ok {
			sb.WriteByte('@')
			sb.WriteString(strconv.Itoa(id))
			sb.WriteByte(';')
			return
		}
		nodeNum[x] = len(nodeNum)
		switch x.Op {
		case bv.OpConst:
			sb.WriteByte('c')
			sb.WriteString(strconv.Itoa(x.Width))
			sb.WriteByte(':')
			sb.WriteString(strconv.FormatUint(x.Val, 16))
			sb.WriteByte(';')
		case bv.OpVar:
			n, ok := varNum[x.Name]
			if !ok {
				n = len(le.vars)
				varNum[x.Name] = n
				le.vars = append(le.vars, x.Name)
				le.widths = append(le.widths, x.Width)
			}
			sb.WriteByte('v')
			sb.WriteString(strconv.Itoa(x.Width))
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(n))
			sb.WriteByte(';')
		case bv.OpExtract:
			sb.WriteByte('x')
			sb.WriteString(strconv.Itoa(x.Hi))
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(x.Lo))
			sb.WriteByte('(')
			emit(x.Args[0])
			sb.WriteByte(')')
		default:
			sb.WriteString(strconv.Itoa(int(x.Op)))
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(x.Width))
			sb.WriteByte('(')
			for _, a := range x.Args {
				emit(a)
			}
			sb.WriteByte(')')
		}
	}
	emit(e)
	le.enc = sb.String()
	cache[e] = le
	return le
}

// canonicalize builds the canonical form of live. cache memoizes the
// per-conjunct local encodings across queries (a Checker-lifetime cache).
func canonicalize(live []*bv.Expr, cache map[*bv.Expr]*localEnc) *canonQuery {
	encs := make([]*localEnc, len(live))
	order := make([]int, len(live))
	for i, e := range live {
		encs[i] = encodeLocal(e, cache)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return encs[order[a]].enc < encs[order[b]].enc })

	cq := &canonQuery{conjs: make([]*bv.Expr, len(live))}
	varNum := map[string]int{}
	var sb strings.Builder
	for ci, oi := range order {
		le := encs[oi]
		cq.conjs[ci] = live[oi]
		sb.WriteString(le.enc)
		sb.WriteByte('[')
		for vi, name := range le.vars {
			g, ok := varNum[name]
			if !ok {
				g = len(cq.varOrder)
				varNum[name] = g
				cq.varOrder = append(cq.varOrder, name)
				cq.widths = append(cq.widths, le.widths[vi])
			}
			sb.WriteString(strconv.Itoa(g))
			sb.WriteByte(',')
		}
		sb.WriteString("];")
	}
	cq.key = sb.String()
	return cq
}
