package solver

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"p4assert/internal/bv"
)

// --- probeBounds width-boundary hardening -------------------------------

func TestProbeBoundsOverflowGtMax(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	x := ctx.Var("x", 8)
	// !(x <= 255) ≡ x > 255: impossible for width 8. Before the wrap
	// guard, lo++ overflowed to 0 and the conflict went unnoticed.
	res := c.Check([]*bv.Expr{ctx.Not(ctx.Ule(x, ctx.Const(8, 255)))})
	if res.Sat {
		t.Fatalf("x > max(width) must be UNSAT, got %+v", res)
	}
	if !res.Quick || c.Stats.FullQueries != 0 {
		t.Fatalf("domain conflict should be refuted without search: %+v", c.Stats)
	}
}

func TestProbeBoundsOverflowMaxLtVar(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	x := ctx.Var("x", 8)
	// 255 < x on width 8 hits the same lo++ wrap on the const<var side.
	res := c.Check([]*bv.Expr{ctx.Ult(ctx.Const(8, 255), x)})
	if res.Sat {
		t.Fatalf("max < x must be UNSAT, got %+v", res)
	}
	if !res.Quick || c.Stats.FullQueries != 0 {
		t.Fatalf("domain conflict should be refuted without search: %+v", c.Stats)
	}
}

func TestProbeBoundsMaxBoundaryStillSat(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	x := ctx.Var("x", 8)
	// x >= 255 is satisfiable exactly at the boundary; the witness must
	// stay inside the domain.
	res := c.Check([]*bv.Expr{ctx.Uge(x, ctx.Const(8, 255))})
	if !res.Sat {
		t.Fatal("x >= max must be SAT")
	}
	if res.Model["x"] != 255 {
		t.Fatalf("witness left the domain: %v", res.Model)
	}
}

func TestProbeBoundsFullyExcludedRange(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	x := ctx.Var("x", 8)
	// x >= 254 with both remaining values excluded. The old witness loop
	// stopped at hi and proposed an excluded value, deferring to a full
	// bit-blast; the saturation check refutes it directly.
	res := c.Check([]*bv.Expr{
		ctx.Uge(x, ctx.Const(8, 254)),
		ctx.Ne(x, ctx.Const(8, 254)),
		ctx.Ne(x, ctx.Const(8, 255)),
	})
	if res.Sat {
		t.Fatalf("fully excluded range must be UNSAT, got %+v", res)
	}
	if !res.Quick || c.Stats.FullQueries != 0 {
		t.Fatalf("exclusion saturation should be refuted without search: %+v", c.Stats)
	}
}

func TestProbeBoundsEqOutsideBounds(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	x := ctx.Var("x", 8)
	res := c.Check([]*bv.Expr{
		ctx.Eq(x, ctx.Const(8, 5)),
		ctx.Ult(x, ctx.Const(8, 3)),
	})
	if res.Sat {
		t.Fatalf("eq outside bounds must be UNSAT, got %+v", res)
	}
	if !res.Quick || c.Stats.FullQueries != 0 {
		t.Fatalf("eq/bound conflict should be refuted without search: %+v", c.Stats)
	}
}

// --- acceleration layers -------------------------------------------------

// fullQuery builds a constraint set no quick tier can answer, over the
// named variables (forces layer 3).
func fullQuery(ctx *bv.Context, xn, yn string, sum uint64) []*bv.Expr {
	x := ctx.Var(xn, 8)
	y := ctx.Var(yn, 8)
	return []*bv.Expr{
		ctx.Eq(ctx.Add(x, y), ctx.Const(8, sum)),
		ctx.Ugt(x, y),
	}
}

func TestSessionReuseAcrossSiblingQueries(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	c.Cfg.DisableMemo = true // isolate the session layer
	base := fullQuery(ctx, "x", "y", 7)
	if res := c.Check(base); !res.Sat {
		t.Fatal("base query should be SAT")
	}
	// A sibling path shares the base conjuncts and adds one more; the
	// session must reuse their circuits.
	z := ctx.Var("z", 8)
	ext := append(append([]*bv.Expr(nil), base...), ctx.Eq(ctx.Add(z, ctx.Var("x", 8)), ctx.Const(8, 9)))
	if res := c.Check(ext); !res.Sat {
		t.Fatal("extended query should be SAT")
	}
	if c.Stats.Accel.SessionReuseHits == 0 {
		t.Fatalf("sibling query reused no circuits: %+v", c.Stats.Accel)
	}
}

func TestMemoReplaysVerdictModelAndStats(t *testing.T) {
	ctx := bv.NewContext()
	c := New(ctx)
	q := fullQuery(ctx, "x", "y", 7)
	first := c.Check(q)
	statsAfterFirst := c.Stats
	second := c.Check(q)
	if c.Stats.Accel.MemoHits != 1 {
		t.Fatalf("second identical query should hit the memo: %+v", c.Stats.Accel)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("memo replay changed the result:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	// The replay must reproduce the exact comparable stats delta.
	if c.Stats.FullQueries != 2*statsAfterFirst.FullQueries ||
		c.Stats.BitblastVars != 2*statsAfterFirst.BitblastVars ||
		c.Stats.BitblastClauses != 2*statsAfterFirst.BitblastClauses {
		t.Fatalf("memo replay skewed comparable stats: after first %+v, after second %+v",
			statsAfterFirst, c.Stats)
	}
}

func TestSharedMemoTransfersAcrossRenaming(t *testing.T) {
	shared := NewMemo(64)
	ctx := bv.NewContext()

	a := New(ctx)
	a.Shared = shared
	resA := a.Check(fullQuery(ctx, "x", "y", 7))

	b := New(ctx)
	b.Shared = shared
	// Alpha-renamed query: same shape, different variable names.
	resB := b.Check(fullQuery(ctx, "u", "v", 7))

	if b.Stats.Accel.MemoHits != 1 || b.Stats.Accel.MemoSharedHits != 1 {
		t.Fatalf("renamed query should hit the shared memo: %+v", b.Stats.Accel)
	}
	if resB.Model["u"] != resA.Model["x"] || resB.Model["v"] != resA.Model["y"] {
		t.Fatalf("transferred model not renamed through the bijection: A=%v B=%v",
			resA.Model, resB.Model)
	}
	if a.Stats.FullQueries != b.Stats.FullQueries {
		t.Fatalf("replay must reproduce comparable stats: A=%+v B=%+v", a.Stats, b.Stats)
	}
}

// accelConfigs are the four meaningful acceleration modes.
var accelConfigs = []struct {
	name string
	cfg  Config
}{
	{"full-accel", Config{}},
	{"session-only", Config{DisablePortfolio: true}},
	{"memo-only", Config{DisableSession: true}},
	{"compat", Config{DisableSession: true, DisableMemo: true, DisablePortfolio: true}},
}

// randomConstraint builds one width-4 constraint over vars drawn from
// names, mixing the op shapes the executor produces.
func randomConstraint(ctx *bv.Context, r *rand.Rand, names []string) *bv.Expr {
	v := func() *bv.Expr { return ctx.Var(names[r.Intn(len(names))], 4) }
	k := func() *bv.Expr { return ctx.Const(4, uint64(r.Intn(16))) }
	var e *bv.Expr
	switch r.Intn(8) {
	case 0:
		e = ctx.Eq(v(), k())
	case 1:
		e = ctx.Ne(v(), k())
	case 2:
		e = ctx.Ult(v(), k())
	case 3:
		e = ctx.Ule(k(), v())
	case 4:
		e = ctx.Eq(ctx.Add(v(), v()), k())
	case 5:
		e = ctx.Ult(ctx.Xor(v(), v()), k())
	case 6:
		e = ctx.And(ctx.Ule(v(), k()), ctx.Ne(v(), k()))
	default:
		e = ctx.Not(ctx.Ult(v(), k()))
	}
	return e
}

// TestAccelerationEquivalenceProperty is the tier-drift property test:
// over random query sequences (with shared prefixes, like path-condition
// stacks), every acceleration mode must produce the identical Result
// sequence — verdict, quickness, witness — and identical comparable
// stats; every SAT witness must satisfy bv.Eval on all conjuncts; and
// every verdict must agree with enumeration ground truth.
func TestAccelerationEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	names := []string{"a", "b", "c"}
	for iter := 0; iter < 40; iter++ {
		ctx := bv.NewContext()
		// A random "path": a growing prefix plus per-step extras.
		var prefix []*bv.Expr
		var queries [][]*bv.Expr
		for step := 0; step < 4; step++ {
			if step > 0 || r.Intn(2) == 0 {
				prefix = append(prefix, randomConstraint(ctx, r, names))
			}
			q := append([]*bv.Expr(nil), prefix...)
			for j := r.Intn(2); j > 0; j-- {
				q = append(q, randomConstraint(ctx, r, names))
			}
			queries = append(queries, q)
		}

		type outcome struct {
			res   []Result
			stats Stats
		}
		outs := make([]outcome, len(accelConfigs))
		for ci, mode := range accelConfigs {
			chk := New(ctx)
			chk.Cfg = mode.cfg
			var seq []Result
			for _, q := range queries {
				seq = append(seq, chk.Check(q))
			}
			st := chk.Stats
			st.Accel = AccelStats{} // non-comparable by design
			outs[ci] = outcome{res: seq, stats: st}
		}

		for qi, q := range queries {
			want := bruteSat(q, names)
			for ci, mode := range accelConfigs {
				res := outs[ci].res[qi]
				if res.Sat != want {
					t.Fatalf("iter %d query %d mode %s: Sat=%v brute=%v (%s)",
						iter, qi, mode.name, res.Sat, want, dumpQuery(q))
				}
				if res.Sat && !evalAll(q, res.Model) {
					t.Fatalf("iter %d query %d mode %s: witness %v violates a conjunct (%s)",
						iter, qi, mode.name, res.Model, dumpQuery(q))
				}
			}
		}
		for ci := 1; ci < len(accelConfigs); ci++ {
			if !reflect.DeepEqual(outs[0].res, outs[ci].res) {
				t.Fatalf("iter %d: mode %s diverged from %s:\n%+v\nvs\n%+v",
					iter, accelConfigs[ci].name, accelConfigs[0].name, outs[ci].res, outs[0].res)
			}
			if outs[0].stats != outs[ci].stats {
				t.Fatalf("iter %d: mode %s comparable stats diverged: %+v vs %+v",
					iter, accelConfigs[ci].name, outs[ci].stats, outs[0].stats)
			}
		}
	}
}

// bruteSat enumerates all assignments of the width-4 variables.
func bruteSat(q []*bv.Expr, names []string) bool {
	env := map[string]uint64{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(names) {
			return evalAll(q, env)
		}
		for v := uint64(0); v < 16; v++ {
			env[names[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func dumpQuery(q []*bv.Expr) string {
	s := ""
	for i, e := range q {
		if i > 0 {
			s += " ∧ "
		}
		s += fmt.Sprint(e)
	}
	return s
}
