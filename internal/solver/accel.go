package solver

// Full-query acceleration: incremental sessions, portfolio racing, and
// canonical model extraction.
//
// A session keeps one live sat.Solver plus one Blaster for the Checker's
// whole lifetime. Each full query is solved *under assumptions*: every
// conjunct is lowered to an indicator literal (its Tseitin output bit) and
// the solver is asked for a model with all indicators true. Nothing is
// ever asserted permanently, so the clause database stays globally
// satisfiable, learned clauses remain valid for every later query, and
// sibling paths — whose conditions share long prefixes — reuse both the
// already-emitted circuits and the accumulated proof work.
//
// Portfolio mode races the session against a fresh blast-and-solve in two
// goroutines and takes the first definitive answer, cancelling the loser
// via sat.Solver.Stop. This is deterministic in everything the report can
// observe because both racers compute the *same* answer: the verdict is
// unique, and on SAT both extract the unique lexicographically-minimal
// model over the canonical variable order. Only the non-comparable
// telemetry (who won, search effort) depends on timing.
//
// The fresh racer also supplies the comparable BitblastVars/Clauses
// counters: they are defined as the CNF size of blasting the canonical
// conjuncts into an empty solver, a pure function of the query, identical
// in every mode. In session-only mode a counting-only fresh blast keeps
// those counters mode-independent.

import (
	"sync"

	"p4assert/internal/bitblast"
	"p4assert/internal/bv"
	"p4assert/internal/sat"
)

// session is a Checker's long-lived incremental solving state.
type session struct {
	sat *sat.Solver
	bl  *bitblast.Blaster
}

func newSession() *session {
	s := sat.New()
	return &session{sat: s, bl: bitblast.New(s)}
}

// assume lowers the conjuncts to assumption literals, emitting circuits
// only for expressions the live solver has not seen. reused counts the
// conjuncts whose circuits were already present.
func (ss *session) assume(conjs []*bv.Expr) (lits []sat.Lit, reused int) {
	lits = make([]sat.Lit, len(conjs))
	for i, e := range conjs {
		if ss.bl.Seen(e) {
			reused++
		}
		lits[i] = ss.bl.Lit(e)
	}
	return lits, reused
}

// fullAnswer is a definitive full-query outcome from one solving strategy.
type fullAnswer struct {
	outcome sat.Outcome
	model   map[string]uint64 // canonical lex-min model; nil unless Sat
	session bool              // answered by the incremental session
}

// freshRun owns a from-scratch solver for one query. The solver is
// allocated before any goroutine starts so the main goroutine can cancel
// it at any point in its life.
type freshRun struct {
	s             *sat.Solver
	bl            *bitblast.Blaster
	vars, clauses int64
}

func newFreshRun() *freshRun {
	s := sat.New()
	return &freshRun{s: s, bl: bitblast.New(s)}
}

// blast emits the canonical conjuncts and records the CNF size. Emission
// is not cancellable, so the size counters are valid even when the run
// loses the race mid-search.
func (f *freshRun) blast(cq *canonQuery) {
	for _, e := range cq.conjs {
		f.bl.AssertTrue(e)
	}
	f.vars = int64(f.s.NumVars())
	f.clauses = int64(f.s.NumClauses())
}

// solve runs the search and, on SAT, canonical model extraction.
func (f *freshRun) solve(cq *canonQuery) fullAnswer {
	if !f.s.Okay() {
		return fullAnswer{outcome: sat.Unsat}
	}
	out := f.s.SolveWith(nil)
	if out != sat.Sat {
		return fullAnswer{outcome: out}
	}
	model, ok := extractCanonical(f.s, f.bl, nil, cq)
	if !ok {
		return fullAnswer{outcome: sat.Unknown}
	}
	return fullAnswer{outcome: sat.Sat, model: model}
}

// solve runs the query on the live session under assumption literals.
func (ss *session) solve(cq *canonQuery) (ans fullAnswer, reused int) {
	lits, reused := ss.assume(cq.conjs)
	if !ss.sat.Okay() {
		// The session database is gates only and cannot become globally
		// UNSAT; treat it as a cancelled run so the caller falls back.
		return fullAnswer{outcome: sat.Unknown, session: true}, reused
	}
	out := ss.sat.SolveWith(lits)
	if out != sat.Sat {
		return fullAnswer{outcome: out, session: true}, reused
	}
	model, ok := extractCanonical(ss.sat, ss.bl, lits, cq)
	if !ok {
		return fullAnswer{outcome: sat.Unknown, session: true}, reused
	}
	return fullAnswer{outcome: sat.Sat, model: model, session: true}, reused
}

// extractCanonical refines the solver's current model into the unique
// lexicographically-minimal one over (canonical variable order, MSB-first
// bits): for each bit in that order it fixes 0 when the current model
// already has 0, and otherwise asks the solver whether 0 is still
// consistent with the bits fixed so far. Because the minimal model is
// unique, every strategy that completes returns byte-identical witnesses —
// the keystone of the accel/compat and portfolio determinism argument.
// base carries the query's assumption literals (empty for fresh runs).
// ok=false means the search was cancelled mid-extraction.
func extractCanonical(s *sat.Solver, bl *bitblast.Blaster, base []sat.Lit, cq *canonQuery) (map[string]uint64, bool) {
	model := bl.ModelFor(cq.varOrder)
	fix := append([]sat.Lit(nil), base...)
	for _, name := range cq.varOrder {
		bits := bl.VarBits(name)
		for i := len(bits) - 1; i >= 0; i-- {
			if model[name]>>uint(i)&1 == 0 {
				fix = append(fix, bits[i].Not())
				continue
			}
			try := append(fix[:len(fix):len(fix)], bits[i].Not())
			switch s.SolveWith(try) {
			case sat.Sat:
				model = bl.ModelFor(cq.varOrder)
				fix = append(fix, bits[i].Not())
			case sat.Unsat:
				fix = append(fix, bits[i])
			default:
				return nil, false
			}
		}
	}
	return model, true
}

// solveFull decides one full (layer 3) query, returning the answer plus
// the mode-independent fresh-blast CNF size.
func (c *Checker) solveFull(cq *canonQuery) (fullAnswer, int64, int64) {
	useSession := !c.Cfg.DisableSession
	usePortfolio := useSession && !c.Cfg.DisablePortfolio

	if !useSession {
		f := newFreshRun()
		f.blast(cq)
		ans := f.solve(cq)
		c.harvestFresh(f)
		return ans, f.vars, f.clauses
	}

	if c.sess == nil {
		c.sess = newSession()
	}
	c.sess.sat.ResetStop()

	if !usePortfolio {
		// Counting-only fresh blast: keeps BitblastVars/Clauses identical
		// to every other mode without running a second search.
		f := newFreshRun()
		f.blast(cq)
		ans, reused := c.sess.solve(cq)
		c.noteSessionUse(cq, reused)
		c.harvestSession()
		if ans.outcome == sat.Unknown {
			ans = f.solve(cq)
		}
		c.harvestFresh(f)
		return ans, f.vars, f.clauses
	}

	// Portfolio race: session vs fresh.
	f := newFreshRun()
	results := make(chan fullAnswer, 2)
	var reused int
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ans, r := c.sess.solve(cq)
		reused = r
		results <- ans
	}()
	go func() {
		defer wg.Done()
		f.blast(cq)
		results <- f.solve(cq)
	}()
	first := <-results
	c.sess.sat.Stop()
	f.s.Stop()
	wg.Wait()
	second := <-results

	ans := first
	if ans.outcome == sat.Unknown {
		ans = second
	} else if second.outcome != sat.Unknown && second.outcome != first.outcome {
		// Racer disagreement would be a soundness bug; prefer the fresh
		// run deterministically rather than whichever finished first.
		if ans.session {
			ans = second
		}
	}
	c.noteSessionUse(cq, reused)
	if ans.session {
		c.Stats.Accel.PortfolioSessionWins++
	} else {
		c.Stats.Accel.PortfolioFreshWins++
	}
	c.harvestSession()
	c.harvestFresh(f)
	return ans, f.vars, f.clauses
}

func (c *Checker) noteSessionUse(cq *canonQuery, reused int) {
	c.Stats.Accel.SessionReuseHits += int64(reused)
	c.Stats.Accel.SessionEmitted += int64(len(cq.conjs) - reused)
}

// harvestSession folds the session solver's counter growth since the last
// harvest into the accel stats.
func (c *Checker) harvestSession() {
	d, p, cf := c.sess.sat.Stats()
	l := c.sess.sat.Learned()
	a := &c.Stats.Accel
	a.Decisions += d - c.lastSessDecisions
	a.Propagations += p - c.lastSessPropagations
	a.Conflicts += cf - c.lastSessConflicts
	a.LearnedClauses += l - c.lastSessLearned
	c.lastSessDecisions, c.lastSessPropagations = d, p
	c.lastSessConflicts, c.lastSessLearned = cf, l
}

// harvestFresh folds a throwaway solver's full counters into the accel
// stats.
func (c *Checker) harvestFresh(f *freshRun) {
	d, p, cf := f.s.Stats()
	a := &c.Stats.Accel
	a.Decisions += d
	a.Propagations += p
	a.Conflicts += cf
	a.LearnedClauses += f.s.Learned()
}
