// Package solver decides satisfiability of sets of bitvector constraints.
// It layers cheap decision procedures in front of full bit-blasting:
//
//  1. constant inspection — a constraint already folded to false is UNSAT,
//     and a set folded entirely to true is trivially SAT;
//  2. a normalized memo (memo.go) — repeated query shapes, modulo variable
//     naming and conjunct order, replay their verdict, witness and stats
//     without any solving;
//  3. assignment guessing — path conditions of P4 models are dominated by
//     equalities between fields and constants, so a model assembled from
//     those equalities (all other variables zero) very often satisfies the
//     whole set and avoids the SAT solver entirely; interval/exclusion
//     probing additionally refutes sets whose per-variable facts already
//     conflict;
//  4. bit-blasting to CNF and CDCL search (internal/bitblast, internal/sat),
//     accelerated by incremental sessions and portfolio racing (accel.go).
//
// This mirrors the role of the solver stack under KLEE in the paper, where
// most path-feasibility queries are shallow and only assertion checks on
// arithmetic-heavy paths need real search. All layers return identical
// verdicts and witnesses (full-path models are canonically minimal, see
// accel.go), so acceleration never changes a report byte.
package solver

import (
	"time"

	"p4assert/internal/bv"
	"p4assert/internal/sat"
)

// Result reports the outcome of a satisfiability check.
type Result struct {
	Sat   bool
	Model map[string]uint64 // valid only when Sat; variables not mentioned are zero
	Quick bool              // answered without invoking the SAT solver
}

// Config controls the acceleration subsystem. The zero value enables
// everything; each layer can be disabled independently (portfolio racing
// additionally requires sessions, its session racer).
type Config struct {
	DisableSession   bool
	DisableMemo      bool
	DisablePortfolio bool
}

// Stats counts solver activity for the paper's instruction/
// query metrics.
type Stats struct {
	Queries     int64
	QuickSAT    int64
	QuickUNSAT  int64
	FullQueries int64
	// BitblastVars and BitblastClauses accumulate the CNF sizes of the
	// full (layer 3) queries: SAT variables allocated and problem clauses
	// emitted by bit-blasting the canonical conjuncts into an empty
	// solver, measured before search so the counts are a deterministic
	// function of the query formulas — identical whichever acceleration
	// mode actually answered.
	BitblastVars    int64
	BitblastClauses int64
	// Accel counts acceleration-subsystem activity. Unlike the counters
	// above it is not a deterministic function of (program, options) —
	// memo hits depend on cache state, portfolio winners and search
	// effort on goroutine timing — so it is excluded from report JSON
	// and surfaced through the non-comparable telemetry section instead.
	Accel AccelStats `json:"-"`
}

// AccelStats counts acceleration activity and raw SAT search effort.
type AccelStats struct {
	SessionReuseHits     int64 // conjunct circuits already live in the session
	SessionEmitted       int64 // conjunct circuits newly emitted into the session
	MemoHits             int64 // queries answered by the normalized memo
	MemoSharedHits       int64 // subset of MemoHits served by the run-wide tier
	PortfolioSessionWins int64 // full queries won by the incremental session
	PortfolioFreshWins   int64 // full queries won by the fresh-blast racer
	Decisions            int64
	Propagations         int64
	Conflicts            int64
	LearnedClauses       int64
	WallNS               int64 // wall time spent inside Check
}

// Add folds o into a, for aggregation across parallel submodel runs.
func (a *AccelStats) Add(o AccelStats) {
	a.SessionReuseHits += o.SessionReuseHits
	a.SessionEmitted += o.SessionEmitted
	a.MemoHits += o.MemoHits
	a.MemoSharedHits += o.MemoSharedHits
	a.PortfolioSessionWins += o.PortfolioSessionWins
	a.PortfolioFreshWins += o.PortfolioFreshWins
	a.Decisions += o.Decisions
	a.Propagations += o.Propagations
	a.Conflicts += o.Conflicts
	a.LearnedClauses += o.LearnedClauses
	a.WallNS += o.WallNS
}

// Checker decides constraint sets built in a single bv.Context. The zero
// value is ready to use with full acceleration. A Checker is not safe for
// concurrent use; parallel submodel executions each own one (optionally
// linked through a Shared memo, which is concurrency-safe).
type Checker struct {
	Ctx    *bv.Context
	Stats  Stats
	Cfg    Config
	Shared *Memo // optional run-wide memo tier behind the private one

	sess     *session
	local    *Memo
	encCache map[*bv.Expr]*localEnc

	// Session solver counters at the last harvest, so per-query growth
	// can be folded into Stats.Accel.
	lastSessDecisions, lastSessPropagations int64
	lastSessConflicts, lastSessLearned      int64
}

// New returns a Checker for expressions created in ctx.
func New(ctx *bv.Context) *Checker { return &Checker{Ctx: ctx} }

// Check decides whether the conjunction of constraints is satisfiable.
// Every constraint must have width 1.
func (c *Checker) Check(constraints []*bv.Expr) Result {
	c.Stats.Queries++
	t0 := time.Now()
	defer func() { c.Stats.Accel.WallNS += time.Since(t0).Nanoseconds() }()

	// Layer 1: constant inspection.
	live := constraints[:0:0]
	for _, e := range constraints {
		if e.IsFalse() {
			c.Stats.QuickUNSAT++
			return Result{Sat: false, Quick: true}
		}
		if !e.IsTrue() {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		c.Stats.QuickSAT++
		return Result{Sat: true, Model: map[string]uint64{}, Quick: true}
	}

	// Layer 1.5: normalized memo. Quick tiers are deterministic and
	// equivariant under renaming, so their outcomes are memoizable too —
	// a hit replays the exact stats delta the original tier produced.
	var cq *canonQuery
	if !c.Cfg.DisableMemo {
		cq = c.canon(live)
		if e := c.memoGet(cq.key); e != nil {
			return c.replay(cq, e)
		}
	}

	// Layer 2: guessed assignment from equality constraints.
	if env, ok := c.guessFromEqualities(live); ok && evalAll(live, env) {
		return c.quickSAT(cq, live, env)
	}
	// All-zeros is another very common witness (e.g. "no header valid").
	zero := map[string]uint64{}
	if evalAll(live, zero) {
		return c.quickSAT(cq, live, zero)
	}
	// Per-variable interval/exclusion probing: table-miss paths carry long
	// runs of key != rule_i constraints, for which a value outside the
	// exclusion set is an immediate witness — and whose facts, when they
	// contradict each other, refute the whole set without search.
	env, conflict := c.probeBounds(live)
	if conflict {
		c.Stats.QuickUNSAT++
		c.memoPut(cq, &memoEntry{quick: true})
		return Result{Sat: false, Quick: true}
	}
	if env != nil && evalAll(live, env) {
		return c.quickSAT(cq, live, env)
	}

	// Layer 3: full bit-blasting, accelerated (accel.go).
	if cq == nil {
		cq = canonicalize(live, c.encCacheMap())
	}
	c.Stats.FullQueries++
	ans, vars, clauses := c.solveFull(cq)
	c.Stats.BitblastVars += vars
	c.Stats.BitblastClauses += clauses
	if ans.outcome != sat.Sat {
		c.memoPut(cq, &memoEntry{vars: vars, clauses: clauses})
		return Result{Sat: false}
	}
	c.memoPut(cq, &memoEntry{sat: true, model: canonValues(cq, ans.model), vars: vars, clauses: clauses})
	return Result{Sat: true, Model: ans.model}
}

func (c *Checker) encCacheMap() map[*bv.Expr]*localEnc {
	if c.encCache == nil {
		c.encCache = map[*bv.Expr]*localEnc{}
	}
	return c.encCache
}

func (c *Checker) canon(live []*bv.Expr) *canonQuery {
	return canonicalize(live, c.encCacheMap())
}

// quickSAT records a quick-tier witness, memoizing it in canonical form.
func (c *Checker) quickSAT(cq *canonQuery, live []*bv.Expr, env map[string]uint64) Result {
	c.Stats.QuickSAT++
	m := completeModel(live, env)
	if cq != nil {
		c.memoPut(cq, &memoEntry{sat: true, quick: true, model: canonValues(cq, m)})
	}
	return Result{Sat: true, Model: m, Quick: true}
}

// canonValues projects a model onto the canonical variable order.
func canonValues(cq *canonQuery, m map[string]uint64) []uint64 {
	vals := make([]uint64, len(cq.varOrder))
	for i, name := range cq.varOrder {
		vals[i] = m[name]
	}
	return vals
}

// replay reproduces a memoized outcome: the same Result the original
// tier returned (model transferred through the variable bijection) and
// the same comparable stats delta.
func (c *Checker) replay(cq *canonQuery, e *memoEntry) Result {
	c.Stats.Accel.MemoHits++
	if e.quick {
		if !e.sat {
			c.Stats.QuickUNSAT++
			return Result{Sat: false, Quick: true}
		}
		c.Stats.QuickSAT++
		return Result{Sat: true, Model: namedModel(cq, e.model), Quick: true}
	}
	c.Stats.FullQueries++
	c.Stats.BitblastVars += e.vars
	c.Stats.BitblastClauses += e.clauses
	if !e.sat {
		return Result{Sat: false}
	}
	return Result{Sat: true, Model: namedModel(cq, e.model)}
}

func namedModel(cq *canonQuery, vals []uint64) map[string]uint64 {
	m := make(map[string]uint64, len(cq.varOrder))
	for i, name := range cq.varOrder {
		m[name] = vals[i]
	}
	return m
}

func (c *Checker) memoGet(key string) *memoEntry {
	if c.local == nil {
		c.local = NewMemo(localMemoCap)
	}
	if e := c.local.get(key); e != nil {
		return e
	}
	if c.Shared != nil {
		if e := c.Shared.get(key); e != nil {
			c.local.put(key, e)
			c.Stats.Accel.MemoSharedHits++
			return e
		}
	}
	return nil
}

func (c *Checker) memoPut(cq *canonQuery, e *memoEntry) {
	if cq == nil || c.Cfg.DisableMemo {
		return
	}
	c.local.put(cq.key, e)
	if c.Shared != nil {
		c.Shared.put(cq.key, e)
	}
}

// guessFromEqualities walks top-level conjunctions collecting var == const
// bindings. Returns ok=false on a visible conflict between bindings, which
// is itself a strong UNSAT hint but not proof (so we fall through).
func (c *Checker) guessFromEqualities(constraints []*bv.Expr) (map[string]uint64, bool) {
	env := map[string]uint64{}
	ok := true
	var visit func(e *bv.Expr)
	visit = func(e *bv.Expr) {
		switch e.Op {
		case bv.OpAnd:
			if e.Width == 1 {
				visit(e.Args[0])
				visit(e.Args[1])
			}
		case bv.OpEq:
			a, b := e.Args[0], e.Args[1]
			if a.Op == bv.OpConst {
				a, b = b, a
			}
			if a.Op == bv.OpVar && b.Op == bv.OpConst {
				if old, seen := env[a.Name]; seen && old != b.Val {
					ok = false
					return
				}
				env[a.Name] = b.Val
			}
		case bv.OpVar:
			if e.Width == 1 {
				env[e.Name] = 1
			}
		case bv.OpNot:
			if e.Args[0].Op == bv.OpVar && e.Width == 1 {
				env[e.Args[0].Name] = 0
			}
		}
	}
	for _, e := range constraints {
		visit(e)
	}
	return env, ok
}

// varInfo accumulates per-variable facts from top-level conjuncts.
type varInfo struct {
	width    int
	lo, hi   uint64 // inclusive bounds
	eq       uint64
	hasEq    bool
	excluded map[uint64]bool
}

// probeBounds collects per-variable equalities, disequalities and unsigned
// bounds from top-level conjuncts. When the collected facts contradict
// each other the set is UNSAT without search (conflict=true) — every fact
// comes from a conjunct that must hold, so a per-variable contradiction is
// proof, not heuristic. Otherwise it proposes the smallest in-bounds,
// non-excluded value for each variable; the caller re-checks the proposal
// against every constraint, so the witness side stays a pure guesser.
func (c *Checker) probeBounds(constraints []*bv.Expr) (env map[string]uint64, conflict bool) {
	infos := map[string]*varInfo{}
	get := func(v *bv.Expr) *varInfo {
		in, ok := infos[v.Name]
		if !ok {
			in = &varInfo{width: v.Width, hi: bv.Mask(v.Width), excluded: map[uint64]bool{}}
			infos[v.Name] = in
		}
		return in
	}
	var visit func(e *bv.Expr, neg bool)
	visit = func(e *bv.Expr, neg bool) {
		switch e.Op {
		case bv.OpAnd:
			if e.Width == 1 && !neg {
				visit(e.Args[0], false)
				visit(e.Args[1], false)
			}
		case bv.OpNot:
			visit(e.Args[0], !neg)
		case bv.OpEq:
			a, b := e.Args[0], e.Args[1]
			if a.Op == bv.OpConst {
				a, b = b, a
			}
			if a.Op != bv.OpVar || b.Op != bv.OpConst {
				return
			}
			in := get(a)
			if neg {
				in.excluded[b.Val] = true
			} else {
				if in.hasEq && in.eq != b.Val {
					conflict = true
				}
				in.hasEq, in.eq = true, b.Val
			}
		case bv.OpUlt, bv.OpUle:
			a, b := e.Args[0], e.Args[1]
			strict := e.Op == bv.OpUlt
			switch {
			case a.Op == bv.OpVar && b.Op == bv.OpConst:
				in := get(a)
				if !neg { // a < c  or a <= c
					hi := b.Val
					if strict {
						if hi == 0 {
							conflict = true // a < 0: empty domain
							return
						}
						hi--
					}
					if hi < in.hi {
						in.hi = hi
					}
				} else { // !(a < c) => a >= c ; !(a <= c) => a > c
					lo := b.Val
					if !strict {
						if lo == bv.Mask(in.width) {
							conflict = true // a > max: lo+1 would wrap past the domain
							return
						}
						lo++
					}
					if lo > in.lo {
						in.lo = lo
					}
				}
			case a.Op == bv.OpConst && b.Op == bv.OpVar:
				in := get(b)
				if !neg { // c < b  or c <= b
					lo := a.Val
					if strict {
						if lo == bv.Mask(in.width) {
							conflict = true // max < b: lo+1 would wrap past the domain
							return
						}
						lo++
					}
					if lo > in.lo {
						in.lo = lo
					}
				} else { // !(c < b) => b <= c ; !(c <= b) => b < c
					hi := a.Val
					if strict {
						if hi == 0 {
							conflict = true // b < 0: empty domain
							return
						}
						hi--
					}
					if hi < in.hi {
						in.hi = hi
					}
				}
			}
		case bv.OpVar:
			if e.Width == 1 {
				in := get(e)
				v := uint64(1)
				if neg {
					v = 0
				}
				if in.hasEq && in.eq != v {
					conflict = true
				}
				in.hasEq, in.eq = true, v
			}
		}
	}
	for _, e := range constraints {
		visit(e, false)
	}
	if conflict {
		return nil, true
	}
	env = map[string]uint64{}
	for name, in := range infos {
		if in.hasEq {
			if in.eq < in.lo || in.eq > in.hi || in.excluded[in.eq] {
				return nil, true
			}
			env[name] = in.eq
			continue
		}
		if in.lo > in.hi {
			return nil, true
		}
		v := in.lo
		for in.excluded[v] && v < in.hi {
			v++
		}
		if in.excluded[v] {
			return nil, true // every value in [lo,hi] is excluded
		}
		// Clamp defensively: with the wrap guards above v cannot leave the
		// domain, and this keeps any future fact source from proposing a
		// witness past Mask(width).
		env[name] = v & bv.Mask(in.width)
	}
	return env, false
}

// completeModel extends a witness with explicit zero entries for every
// variable the constraints mention, so counterexamples always show the full
// relevant input assignment.
func completeModel(constraints []*bv.Expr, env map[string]uint64) map[string]uint64 {
	for _, e := range constraints {
		for _, name := range bv.Vars(e, nil) {
			if _, ok := env[name]; !ok {
				env[name] = 0
			}
		}
	}
	return env
}

func evalAll(constraints []*bv.Expr, env map[string]uint64) bool {
	for _, e := range constraints {
		if bv.Eval(e, env) != 1 {
			return false
		}
	}
	return true
}
