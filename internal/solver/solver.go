// Package solver decides satisfiability of sets of bitvector constraints.
// It layers cheap decision procedures in front of full bit-blasting:
//
//  1. constant inspection — a constraint already folded to false is UNSAT,
//     and a set folded entirely to true is trivially SAT;
//  2. assignment guessing — path conditions of P4 models are dominated by
//     equalities between fields and constants, so a model assembled from
//     those equalities (all other variables zero) very often satisfies the
//     whole set and avoids the SAT solver entirely;
//  3. bit-blasting to CNF and CDCL search (internal/bitblast, internal/sat).
//
// This mirrors the role of the solver stack under KLEE in the paper, where
// most path-feasibility queries are shallow and only assertion checks on
// arithmetic-heavy paths need real search.
package solver

import (
	"p4assert/internal/bitblast"
	"p4assert/internal/bv"
	"p4assert/internal/sat"
)

// Result reports the outcome of a satisfiability check.
type Result struct {
	Sat   bool
	Model map[string]uint64 // valid only when Sat; variables not mentioned are zero
	Quick bool              // answered without invoking the SAT solver
}

// Stats counts solver activity for the paper's instruction/
// query metrics.
type Stats struct {
	Queries     int64
	QuickSAT    int64
	QuickUNSAT  int64
	FullQueries int64
	// BitblastVars and BitblastClauses accumulate the CNF sizes of the
	// full (layer 3) queries: SAT variables allocated and problem clauses
	// emitted by bit-blasting, measured before search so the counts are a
	// deterministic function of the query formulas.
	BitblastVars    int64
	BitblastClauses int64
}

// Checker decides constraint sets built in a single bv.Context. The zero
// value is ready to use. A Checker is not safe for concurrent use; parallel
// submodel executions each own one.
type Checker struct {
	Ctx   *bv.Context
	Stats Stats
}

// New returns a Checker for expressions created in ctx.
func New(ctx *bv.Context) *Checker { return &Checker{Ctx: ctx} }

// Check decides whether the conjunction of constraints is satisfiable.
// Every constraint must have width 1.
func (c *Checker) Check(constraints []*bv.Expr) Result {
	c.Stats.Queries++

	// Layer 1: constant inspection.
	live := constraints[:0:0]
	for _, e := range constraints {
		if e.IsFalse() {
			c.Stats.QuickUNSAT++
			return Result{Sat: false, Quick: true}
		}
		if !e.IsTrue() {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		c.Stats.QuickSAT++
		return Result{Sat: true, Model: map[string]uint64{}, Quick: true}
	}

	// Layer 2: guessed assignment from equality constraints.
	if env, ok := c.guessFromEqualities(live); ok {
		if evalAll(live, env) {
			c.Stats.QuickSAT++
			return Result{Sat: true, Model: completeModel(live, env), Quick: true}
		}
	}
	// All-zeros is another very common witness (e.g. "no header valid").
	zero := map[string]uint64{}
	if evalAll(live, zero) {
		c.Stats.QuickSAT++
		return Result{Sat: true, Model: completeModel(live, zero), Quick: true}
	}
	// Per-variable interval/exclusion probing: table-miss paths carry long
	// runs of key != rule_i constraints, for which a value outside the
	// exclusion set is an immediate witness.
	if env, ok := c.probeBounds(live); ok && evalAll(live, env) {
		c.Stats.QuickSAT++
		return Result{Sat: true, Model: completeModel(live, env), Quick: true}
	}

	// Layer 3: full bit-blasting.
	c.Stats.FullQueries++
	s := sat.New()
	b := bitblast.New(s)
	for _, e := range live {
		b.AssertTrue(e)
	}
	c.Stats.BitblastVars += int64(s.NumVars())
	c.Stats.BitblastClauses += int64(s.NumClauses())
	if !s.Solve() {
		return Result{Sat: false}
	}
	return Result{Sat: true, Model: b.Model()}
}

// guessFromEqualities walks top-level conjunctions collecting var == const
// bindings. Returns ok=false on a visible conflict between bindings, which
// is itself a strong UNSAT hint but not proof (so we fall through).
func (c *Checker) guessFromEqualities(constraints []*bv.Expr) (map[string]uint64, bool) {
	env := map[string]uint64{}
	ok := true
	var visit func(e *bv.Expr)
	visit = func(e *bv.Expr) {
		switch e.Op {
		case bv.OpAnd:
			if e.Width == 1 {
				visit(e.Args[0])
				visit(e.Args[1])
			}
		case bv.OpEq:
			a, b := e.Args[0], e.Args[1]
			if a.Op == bv.OpConst {
				a, b = b, a
			}
			if a.Op == bv.OpVar && b.Op == bv.OpConst {
				if old, seen := env[a.Name]; seen && old != b.Val {
					ok = false
					return
				}
				env[a.Name] = b.Val
			}
		case bv.OpVar:
			if e.Width == 1 {
				env[e.Name] = 1
			}
		case bv.OpNot:
			if e.Args[0].Op == bv.OpVar && e.Width == 1 {
				env[e.Args[0].Name] = 0
			}
		}
	}
	for _, e := range constraints {
		visit(e)
	}
	return env, ok
}

// varInfo accumulates per-variable facts from top-level conjuncts.
type varInfo struct {
	width    int
	lo, hi   uint64 // inclusive bounds
	eq       uint64
	hasEq    bool
	excluded map[uint64]bool
}

// probeBounds collects per-variable equalities, disequalities and unsigned
// bounds from top-level conjuncts and proposes the smallest in-bounds,
// non-excluded value for each variable. The caller re-checks the proposal
// against every constraint, so this is purely a sound SAT witness guesser.
func (c *Checker) probeBounds(constraints []*bv.Expr) (map[string]uint64, bool) {
	infos := map[string]*varInfo{}
	get := func(v *bv.Expr) *varInfo {
		in, ok := infos[v.Name]
		if !ok {
			in = &varInfo{width: v.Width, hi: bv.Mask(v.Width), excluded: map[uint64]bool{}}
			infos[v.Name] = in
		}
		return in
	}
	ok := true
	var visit func(e *bv.Expr, neg bool)
	visit = func(e *bv.Expr, neg bool) {
		switch e.Op {
		case bv.OpAnd:
			if e.Width == 1 && !neg {
				visit(e.Args[0], false)
				visit(e.Args[1], false)
			}
		case bv.OpNot:
			visit(e.Args[0], !neg)
		case bv.OpEq:
			a, b := e.Args[0], e.Args[1]
			if a.Op == bv.OpConst {
				a, b = b, a
			}
			if a.Op != bv.OpVar || b.Op != bv.OpConst {
				return
			}
			in := get(a)
			if neg {
				in.excluded[b.Val] = true
			} else {
				if in.hasEq && in.eq != b.Val {
					ok = false
				}
				in.hasEq, in.eq = true, b.Val
			}
		case bv.OpUlt, bv.OpUle:
			a, b := e.Args[0], e.Args[1]
			strict := e.Op == bv.OpUlt
			switch {
			case a.Op == bv.OpVar && b.Op == bv.OpConst:
				in := get(a)
				if !neg { // a < c  or a <= c
					hi := b.Val
					if strict {
						if hi == 0 {
							ok = false
							return
						}
						hi--
					}
					if hi < in.hi {
						in.hi = hi
					}
				} else { // !(a < c) => a >= c ; !(a <= c) => a > c
					lo := b.Val
					if !strict {
						lo++
					}
					if lo > in.lo {
						in.lo = lo
					}
				}
			case a.Op == bv.OpConst && b.Op == bv.OpVar:
				in := get(b)
				if !neg { // c < b  or c <= b
					lo := a.Val
					if strict {
						lo++
					}
					if lo > in.lo {
						in.lo = lo
					}
				} else { // !(c < b) => b <= c ; !(c <= b) => b < c
					hi := a.Val
					if strict {
						if hi == 0 {
							ok = false
							return
						}
						hi--
					}
					if hi < in.hi {
						in.hi = hi
					}
				}
			}
		case bv.OpVar:
			if e.Width == 1 {
				in := get(e)
				v := uint64(1)
				if neg {
					v = 0
				}
				if in.hasEq && in.eq != v {
					ok = false
				}
				in.hasEq, in.eq = true, v
			}
		}
	}
	for _, e := range constraints {
		visit(e, false)
	}
	if !ok {
		return nil, false
	}
	env := map[string]uint64{}
	for name, in := range infos {
		if in.hasEq {
			env[name] = in.eq
			continue
		}
		v := in.lo
		for in.excluded[v] && v < in.hi {
			v++
		}
		env[name] = v
	}
	return env, true
}

// completeModel extends a witness with explicit zero entries for every
// variable the constraints mention, so counterexamples always show the full
// relevant input assignment.
func completeModel(constraints []*bv.Expr, env map[string]uint64) map[string]uint64 {
	for _, e := range constraints {
		for _, name := range bv.Vars(e, nil) {
			if _, ok := env[name]; !ok {
				env[name] = 0
			}
		}
	}
	return env
}

func evalAll(constraints []*bv.Expr, env map[string]uint64) bool {
	for _, e := range constraints {
		if bv.Eval(e, env) != 1 {
			return false
		}
	}
	return true
}
