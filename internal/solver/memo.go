package solver

import (
	"container/list"
	"sync"
)

// Memo is a bounded LRU cache of canonical-query outcomes. Entries are
// keyed by the canonical encoding (canon.go), so a hit transfers across
// variable renamings and conjunct permutations. The cache is safe for
// concurrent use: one Memo is shared per verification run across all
// parallel submodel Checkers as the second lookup tier behind each
// Checker's private memo.
type Memo struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *memoPair
	entries map[string]*list.Element
}

type memoPair struct {
	key string
	e   *memoEntry
}

// memoEntry replays one Check outcome without re-solving. Entries are
// immutable after insertion — they are shared between goroutines and
// between the local and run-wide tiers.
type memoEntry struct {
	sat   bool
	quick bool     // answered by a quick tier (replays as QuickSAT/QuickUNSAT)
	model []uint64 // canonical model by canonical var index; nil when !sat
	vars  int64    // fresh-blast CNF size for full queries, replayed so the
	clauses int64  // comparable bitblast counters stay mode-independent
}

// Default capacities. The local tier keeps a Checker's recent working set;
// the shared tier is sized for a whole corpus run.
const (
	localMemoCap  = 1 << 12
	SharedMemoCap = 1 << 16
)

// NewMemo returns a Memo bounded to capacity entries (minimum 1).
func NewMemo(capacity int) *Memo {
	if capacity < 1 {
		capacity = 1
	}
	return &Memo{cap: capacity, lru: list.New(), entries: make(map[string]*list.Element)}
}

// Len reports the current number of cached entries.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

func (m *Memo) get(key string) *memoEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		return nil
	}
	m.lru.MoveToFront(el)
	return el.Value.(*memoPair).e
}

func (m *Memo) put(key string, e *memoEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		el.Value.(*memoPair).e = e
		m.lru.MoveToFront(el)
		return
	}
	m.entries[key] = m.lru.PushFront(&memoPair{key: key, e: e})
	for m.lru.Len() > m.cap {
		old := m.lru.Back()
		m.lru.Remove(old)
		delete(m.entries, old.Value.(*memoPair).key)
	}
}
