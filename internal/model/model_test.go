package model

import (
	"strings"
	"testing"
)

func buildSample() *Program {
	p := NewProgram()
	p.AddGlobal("x", 8, true, 0)
	p.AddGlobal("y", 8, false, 7)
	p.AddGlobal(ForwardFlag, 1, false, 1)
	p.AddFunc(&Func{Name: "main", Body: []Stmt{
		&Assign{LHS: "y", RHS: &Bin{Op: OpAdd, X: &Ref{Name: "x"}, Y: &Const{Width: 8, Val: 1}}},
		&If{
			Cond: &Bin{Op: OpEq, X: &Ref{Name: "y"}, Y: &Const{Width: 8, Val: 0}},
			Then: []Stmt{&Assign{LHS: ForwardFlag, RHS: &Const{Width: 1, Val: 0}}},
		},
		&Call{Func: "aux"},
	}})
	p.AddFunc(&Func{Name: "aux", Body: []Stmt{
		&Fork{Selector: "sel", Labels: []string{"a", "b"}, Branches: [][]Stmt{
			{&Return{}},
			{&Assume{Cond: &Ref{Name: "x"}}},
		}},
	}})
	p.Entry = []string{"main"}
	return p
}

func TestGlobals(t *testing.T) {
	p := buildSample()
	g, ok := p.Global("y")
	if !ok || g.Width != 8 || g.Init != 7 {
		t.Fatalf("Global(y) = %+v, %v", g, ok)
	}
	if _, ok := p.Global("nope"); ok {
		t.Fatal("unknown global found")
	}
	// Redeclaration returns the same object.
	if p.AddGlobal("y", 8, false, 7) != g {
		t.Fatal("redeclaration should return existing global")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width-mismatched redeclaration should panic")
		}
	}()
	p.AddGlobal("y", 16, false, 0)
}

func TestDuplicateFuncPanics(t *testing.T) {
	p := buildSample()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddFunc should panic")
		}
	}()
	p.AddFunc(&Func{Name: "main"})
}

func TestNumStmts(t *testing.T) {
	p := buildSample()
	// main: assign, if (+1 nested), call = 4; aux: fork (+2 nested) = 3.
	if got := p.NumStmts(); got != 7 {
		t.Fatalf("NumStmts = %d, want 7", got)
	}
}

func TestClone(t *testing.T) {
	p := buildSample()
	q := p.Clone()
	if q.NumStmts() != p.NumStmts() || len(q.Globals) != len(p.Globals) {
		t.Fatal("clone differs structurally")
	}
	// Mutating the clone's body slice must not affect the original.
	q.Funcs["main"].Body = q.Funcs["main"].Body[:1]
	if len(p.Funcs["main"].Body) != 3 {
		t.Fatal("clone shares body slices with the original")
	}
	if _, ok := q.Global("x"); !ok {
		t.Fatal("clone lost globals")
	}
}

func TestRefs(t *testing.T) {
	e := &Cond{
		C: &Un{Op: OpNot, X: &Ref{Name: "a"}},
		T: &Bin{Op: OpAdd, X: &Ref{Name: "b"}, Y: &Cast{Width: 8, X: &Ref{Name: "c"}}},
		F: &Const{Width: 8, Val: 0},
	}
	got := Refs(e, nil)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Refs = %v", got)
	}
}

func TestExprString(t *testing.T) {
	e := &Bin{Op: OpLAnd,
		X: &Un{Op: OpNot, X: &Ref{Name: "p"}},
		Y: &Cond{C: &Ref{Name: "q"}, T: &Const{Width: 1, Val: 1}, F: &Cast{Width: 1, X: &Ref{Name: "r"}}},
	}
	s := ExprString(e)
	for _, frag := range []string{"!p", "&&", "q ?", "(bit<1>)r"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("ExprString = %q, missing %q", s, frag)
		}
	}
}

func TestDumpDeterministic(t *testing.T) {
	p := buildSample()
	d1, d2 := p.Dump(), p.Dump()
	if d1 != d2 {
		t.Fatal("Dump is not deterministic")
	}
	for _, frag := range []string{
		"void aux()", "void main()", "switch (symbolic sel)",
		"klee_assume(x)", "bit<8> y = 7;", "// symbolic",
	} {
		if !strings.Contains(d1, frag) {
			t.Fatalf("Dump missing %q:\n%s", frag, d1)
		}
	}
}
