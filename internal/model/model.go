// Package model defines the verification model IR that P4 programs are
// translated into. It plays the role of the generated C model in the paper
// (Fig. 6): one function per parser state, table and action; all program
// state lives in uniquely-named global variables; tables with unknown rules
// fork over their actions via a symbolic selector; instrumentation booleans
// implement the assertion-language methods.
package model

import (
	"fmt"
	"strings"
)

// Flag-variable naming conventions shared by the translator, executor,
// slicer and optimizer.
const (
	// ForwardFlag is the width-1 global that is 1 while the packet is
	// destined to be forwarded. mark_to_drop and the reject parse state
	// clear it (paper §3.2, "Assertions").
	ForwardFlag = "$forward"
	// ExitFlag prefixing is not needed: exit unwinds in the executor.

	// TraversePrefix + id names the per-occurrence traverse_path flag.
	TraversePrefix = "$tp."
	// ExtractPrefix + header path names the extract_header flag.
	ExtractPrefix = "$extract."
	// EmitPrefix + header path names the emit_header flag.
	EmitPrefix = "$emit."
	// SnapPrefix + assertID + index names assertion-site snapshots.
	SnapPrefix = "$snap."
	// ValidSuffix marks a header's validity bit global.
	ValidSuffix = ".$valid"
)

// Program is a complete verification model.
type Program struct {
	// Globals lists every global variable with its width; iteration order
	// is declaration order and is deterministic.
	Globals []*Global
	// Funcs maps function names to bodies.
	Funcs map[string]*Func
	// Entry is the sequence of function names invoked for one packet:
	// the parser start state wrapper, then each control, then the deparser.
	Entry []string
	// Asserts records assertion metadata, indexed by assertion ID.
	Asserts []*AssertInfo

	globalByName map[string]*Global
}

// Global is one model variable.
type Global struct {
	Name  string
	Width int
	// Symbolic marks inputs: the variable starts as a fresh symbolic
	// value (packet header fields, metadata the environment controls).
	Symbolic bool
	// Init is the initial value for non-symbolic globals.
	Init uint64
}

// AssertInfo describes one @assert annotation after translation.
type AssertInfo struct {
	ID int
	// Source is the original assertion-language text.
	Source string
	// Location describes where the annotation sat in the P4 program.
	Location string
	// Deferred marks assertions containing location-unrestricted methods;
	// they are checked when the path terminates rather than in place.
	Deferred bool
}

// Func is one model function.
type Func struct {
	Name string
	Body []Stmt
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		Funcs:        map[string]*Func{},
		globalByName: map[string]*Global{},
	}
}

// AddGlobal declares a global; redeclaring the same name returns the
// existing declaration (widths must agree).
func (p *Program) AddGlobal(name string, width int, symbolic bool, init uint64) *Global {
	if g, ok := p.globalByName[name]; ok {
		if g.Width != width {
			panic(fmt.Sprintf("model: global %s redeclared with width %d (was %d)", name, width, g.Width))
		}
		return g
	}
	g := &Global{Name: name, Width: width, Symbolic: symbolic, Init: init}
	p.Globals = append(p.Globals, g)
	p.globalByName[name] = g
	return g
}

// Global looks up a global by name.
func (p *Program) Global(name string) (*Global, bool) {
	g, ok := p.globalByName[name]
	return g, ok
}

// AddFunc registers a function, panicking on duplicates.
func (p *Program) AddFunc(f *Func) {
	if _, dup := p.Funcs[f.Name]; dup {
		panic("model: duplicate function " + f.Name)
	}
	p.Funcs[f.Name] = f
}

// Clone returns a deep copy of the program's function table and entry list
// sharing statement nodes (statements are immutable after translation), but
// with independent Funcs/Globals slices so passes can rewrite bodies.
func (p *Program) Clone() *Program {
	q := NewProgram()
	for _, g := range p.Globals {
		q.AddGlobal(g.Name, g.Width, g.Symbolic, g.Init)
	}
	for name, f := range p.Funcs {
		q.Funcs[name] = &Func{Name: name, Body: append([]Stmt(nil), f.Body...)}
	}
	q.Entry = append([]string(nil), p.Entry...)
	q.Asserts = append([]*AssertInfo(nil), p.Asserts...)
	return q
}

// NumStmts returns the total statement count across all functions
// (statically, counting nested bodies).
func (p *Program) NumStmts() int {
	n := 0
	for _, f := range p.Funcs {
		n += countStmts(f.Body)
	}
	return n
}

func countStmts(body []Stmt) int {
	n := 0
	for _, s := range body {
		n++
		switch st := s.(type) {
		case *If:
			n += countStmts(st.Then) + countStmts(st.Else)
		case *Fork:
			for _, b := range st.Branches {
				n += countStmts(b)
			}
		}
	}
	return n
}

// ------------------------------------------------------------- statements --

// Stmt is a model statement. Statements are immutable after construction so
// they may be shared between program clones.
type Stmt interface{ stmtNode() }

// Assign stores RHS into the named global.
type Assign struct {
	LHS string
	RHS Expr
}

// MakeSymbolic assigns a fresh symbolic value to the named global (used for
// unknown table selectors, unknown action parameters, meter outputs).
type MakeSymbolic struct {
	Var string
	// Hint names the symbolic value in counterexamples.
	Hint string
}

// If branches on a width-1 condition.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Fork explores each branch in a separate path, unconditionally: the
// paper's model of a table whose rules are unknown ("a symbolic value
// specially declared to force the creation of multiple execution paths").
// Selector, when non-empty, names a global that records which branch was
// taken (for counterexamples and submodel generation).
type Fork struct {
	Selector string
	Labels   []string
	Branches [][]Stmt
}

// Call invokes another model function.
type Call struct{ Func string }

// Assume constrains the path (klee_assume): paths where Cond cannot hold
// are silently terminated.
type Assume struct{ Cond Expr }

// AssertCheck evaluates assertion ID. For deferred assertions the executor
// snapshots Cond's referenced location-restricted values here and checks at
// path end; for immediate assertions it checks in place.
type AssertCheck struct {
	ID   int
	Cond Expr
}

// Return exits the current function.
type Return struct{}

// Exit terminates pipeline processing for this packet (the P4 exit
// statement); the path continues to end-of-path assertion checking.
type Exit struct{}

// Halt terminates the path as rejected (parser reject state).
type Halt struct{}

// TraceNote records a fork-trace entry without forking. The submodel
// splitter (internal/submodel) replaces a Fork with per-branch
// assumption-guarded bodies and prepends each with the trace entry the
// Fork would have appended, so counterexample traces from parallel runs
// stay byte-identical to sequential ones.
type TraceNote struct{ Label string }

// ResetDraws resets the per-hint symbolic-input numbering, so the next
// MakeSymbolic of hint h yields h#1 again. Because executor variables are
// hash-consed by name, a re-draw after a reset aliases the original draw's
// symbolic value exactly. The differential engine (internal/equiv) places
// one between the two composed program halves: both halves then read the
// same symbolic packet.
type ResetDraws struct{}

func (*Assign) stmtNode()       {}
func (*MakeSymbolic) stmtNode() {}
func (*If) stmtNode()           {}
func (*Fork) stmtNode()         {}
func (*Call) stmtNode()         {}
func (*Assume) stmtNode()       {}
func (*AssertCheck) stmtNode()  {}
func (*Return) stmtNode()       {}
func (*Exit) stmtNode()         {}
func (*Halt) stmtNode()         {}
func (*TraceNote) stmtNode()    {}
func (*ResetDraws) stmtNode()   {}

// ------------------------------------------------------------ expressions --

// Expr is a model-IR expression: a syntactic tree over global references
// and constants. The executor evaluates it to a bitvector value under the
// current symbolic store.
type Expr interface{ exprNode() }

// Const is a literal with an explicit width.
type Const struct {
	Width int
	Val   uint64
}

// Ref reads a global variable.
type Ref struct{ Name string }

// Op enumerates model expression operators.
type Op uint8

// Expression operators. Comparison and logical operators yield width-1
// values; Cast resizes via zero-extension or truncation.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLAnd
	OpLOr
	OpNot    // logical not (width-1 result; operand coerced to truth value)
	OpBitNot // bitwise complement
	OpNeg    // arithmetic negation
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%", OpAnd: "&",
	OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>", OpEq: "==", OpNe: "!=",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpLAnd: "&&", OpLOr: "||",
	OpNot: "!", OpBitNot: "~", OpNeg: "-",
}

// String returns the operator spelling.
func (o Op) String() string { return opNames[o] }

// Bin is a binary operation.
type Bin struct {
	Op   Op
	X, Y Expr
}

// Un is a unary operation.
type Un struct {
	Op Op
	X  Expr
}

// Cond is a ternary conditional expression.
type Cond struct{ C, T, F Expr }

// Cast resizes X to Width bits (zero-extend or truncate).
type Cast struct {
	Width int
	X     Expr
}

func (*Const) exprNode() {}
func (*Ref) exprNode()   {}
func (*Bin) exprNode()   {}
func (*Un) exprNode()    {}
func (*Cond) exprNode()  {}
func (*Cast) exprNode()  {}

// ExprString renders an expression for reports.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Const:
		return fmt.Sprintf("0x%x", x.Val)
	case *Ref:
		return x.Name
	case *Bin:
		return "(" + ExprString(x.X) + " " + x.Op.String() + " " + ExprString(x.Y) + ")"
	case *Un:
		return x.Op.String() + ExprString(x.X)
	case *Cond:
		return "(" + ExprString(x.C) + " ? " + ExprString(x.T) + " : " + ExprString(x.F) + ")"
	case *Cast:
		return fmt.Sprintf("(bit<%d>)%s", x.Width, ExprString(x.X))
	}
	return "?"
}

// Refs appends the names of all globals read by e to dst (with duplicates).
func Refs(e Expr, dst []string) []string {
	switch x := e.(type) {
	case *Ref:
		dst = append(dst, x.Name)
	case *Bin:
		dst = Refs(x.X, dst)
		dst = Refs(x.Y, dst)
	case *Un:
		dst = Refs(x.X, dst)
	case *Cond:
		dst = Refs(x.C, dst)
		dst = Refs(x.T, dst)
		dst = Refs(x.F, dst)
	case *Cast:
		dst = Refs(x.X, dst)
	}
	return dst
}

// Dump renders the whole program as pseudo-C for debugging and golden
// tests, in deterministic order.
func (p *Program) Dump() string {
	var b strings.Builder
	for _, g := range p.Globals {
		sym := ""
		if g.Symbolic {
			sym = " // symbolic"
		}
		fmt.Fprintf(&b, "bit<%d> %s = %d;%s\n", g.Width, g.Name, g.Init, sym)
	}
	for _, name := range p.Entry {
		fmt.Fprintf(&b, "// entry: %s\n", name)
	}
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "void %s() {\n", n)
		dumpBody(&b, p.Funcs[n].Body, "  ")
		b.WriteString("}\n")
	}
	return b.String()
}

// DumpStmts renders a statement list in the Dump pseudo-C format. The
// incremental engine (internal/incr) hashes this rendering as part of a
// submodel's executable content key, so it must stay deterministic and
// cover every statement kind.
func DumpStmts(body []Stmt) string {
	var b strings.Builder
	dumpBody(&b, body, "")
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func dumpBody(b *strings.Builder, body []Stmt, indent string) {
	for _, s := range body {
		switch st := s.(type) {
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s;\n", indent, st.LHS, ExprString(st.RHS))
		case *MakeSymbolic:
			fmt.Fprintf(b, "%smake_symbolic(%s);\n", indent, st.Var)
		case *If:
			fmt.Fprintf(b, "%sif (%s) {\n", indent, ExprString(st.Cond))
			dumpBody(b, st.Then, indent+"  ")
			if len(st.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				dumpBody(b, st.Else, indent+"  ")
			}
			fmt.Fprintf(b, "%s}\n", indent)
		case *Fork:
			fmt.Fprintf(b, "%sswitch (symbolic %s) {\n", indent, st.Selector)
			for i, br := range st.Branches {
				label := fmt.Sprintf("%d", i)
				if i < len(st.Labels) {
					label = st.Labels[i]
				}
				fmt.Fprintf(b, "%s case %s:\n", indent, label)
				dumpBody(b, br, indent+"  ")
			}
			fmt.Fprintf(b, "%s}\n", indent)
		case *Call:
			fmt.Fprintf(b, "%s%s();\n", indent, st.Func)
		case *Assume:
			fmt.Fprintf(b, "%sklee_assume(%s);\n", indent, ExprString(st.Cond))
		case *AssertCheck:
			fmt.Fprintf(b, "%sklee_assert(#%d, %s);\n", indent, st.ID, ExprString(st.Cond))
		case *Return:
			fmt.Fprintf(b, "%sreturn;\n", indent)
		case *Exit:
			fmt.Fprintf(b, "%sexit;\n", indent)
		case *Halt:
			fmt.Fprintf(b, "%shalt;\n", indent)
		case *TraceNote:
			fmt.Fprintf(b, "%strace_note(%q);\n", indent, st.Label)
		case *ResetDraws:
			fmt.Fprintf(b, "%sreset_draws;\n", indent)
		}
	}
}
