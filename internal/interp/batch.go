// Batch mode: a model program compiled once into flat, slot-indexed
// bytecode, then replayed over many concrete packets with pre-resolved
// input slots — no map lookups, interface dispatch or per-statement
// allocation on the hot path. This is the throughput engine behind the
// test-packet oracle (testgen suites replay at millions of packets per
// second); the tree-walking Run above stays the readable reference
// implementation.
//
// The two interpreters deliberately share no evaluation code: batch
// results are cross-checked against Run in the package tests, so a
// miscompilation here cannot silently agree with itself.
package interp

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"p4assert/internal/model"
)

// Statement opcodes. Control flow is flattened into jumps; each function
// of the model compiles to a contiguous code region.
const (
	opAssign  = iota // eval expr -> store[a]
	opMakeSym        // store[a] = input for the next draw of hint b
	opJump           // pc = a
	opJumpZ          // eval expr; if zero pc = a
	opFork           // consume a decision for fork site a, jump to its branch
	opNote           // consume a decision for trace-note a
	opCall           // call function a (depth-bounded)
	opReturn         // return from the current function
	opExit           // unwind the current entry function
	opHalt           // parser reject: skip remaining non-$checks entries
	opAssume         // eval expr; zero stops the run (input outside space)
	opAssert         // eval expr; zero sets failure bit a
	opResetDraws     // restart per-hint input numbering
)

// Expression opcodes (postfix, evaluated on a value stack). Every operand
// width is static, so masks are precomputed per op.
const (
	exConst = iota // push consts[a]
	exSlot         // push store[a]
	exCast         // re-mask top of stack
	exNot          // logical not (width 1)
	exBitNot       // ^x & mask
	exNeg          // -x & mask
	exCond         // c,t,f -> c!=0 ? t : f (masked)
	exEq
	exNe
	exLt
	exLe
	exGt
	exGe
	exLAnd
	exLOr
	exAdd
	exSub
	exMul
	exDiv
	exMod
	exAnd
	exOr
	exXor
	exShl
	exShr
)

type exprOp struct {
	kind uint8
	a    int32  // const index / slot index
	mask uint64 // result mask
	w    uint64 // operand width (shift bound)
}

type instr struct {
	op uint8
	a  int32 // slot / jump target / fork site / func id / assert id / note
	b  int32 // hint id (opMakeSym)
	es int32 // expression start in Compiled.ex
	el int32 // expression length
}

type forkSite struct {
	selector int32           // interned selector name
	branch   map[int32]int32 // interned label -> branch entry pc
}

type funcInfo struct {
	name  string
	start int32
}

type entryInfo struct {
	start  int32
	fid    int32
	checks bool // "$checks" runs even after a halt
}

// Decision is one pre-resolved trace entry. A fork decision carries the
// interned selector and label; Raw is the interned full entry text when
// the model knows it as a note label. Submodels record replaced split
// decisions as notes that themselves look like "selector=label", so one
// entry can be resolvable both ways; the executing op picks its reading.
type Decision struct {
	Selector int32
	Label    int32
	Raw      int32
}

// Compiled is a verification model compiled for batch replay. Compile
// once, then create one Exec per goroutine; Exec.Run is allocation-free
// after warm-up.
type Compiled struct {
	p *model.Program

	slots    map[string]int
	masks    []uint64 // per-slot width mask
	init     []uint64 // initial store (symbolic slots filled per run)
	symSlots []symSlot

	code    []instr
	ex      []exprOp
	consts  []uint64
	entries []entryInfo
	funcs   []funcInfo
	forks   []forkSite

	maxCallDepth int
	maxStack     int

	// String interning for selectors, fork labels and note texts.
	strIDs map[string]int32
	strs   []string

	// Input space. Input names are interned densely at suite-load time;
	// MakeSymbolic sites resolve "hint#k" draw names through hintDraws.
	hints     map[string]int32
	hintNames []string
	inputIDs  map[string]int32
	hintDraws [][]int32 // hint id -> draw (k-1) -> input index, -1 = unseen

	forwardSlot int32 // -1 when the model has no $forward global
	egressSlot  int32 // -1 when no *.egress_spec global
	numAsserts  int
}

type symSlot struct {
	slot  int32
	input int32 // input index of the global's own name
}

// CompileOptions bounds compiled execution.
type CompileOptions struct {
	// MaxCallDepth bounds recursion as in Run (0 = default 8).
	MaxCallDepth int
}

// Compile flattens the model into batch bytecode.
func Compile(p *model.Program, opts CompileOptions) (*Compiled, error) {
	if opts.MaxCallDepth == 0 {
		opts.MaxCallDepth = 8
	}
	c := &Compiled{
		p:            p,
		slots:        make(map[string]int, len(p.Globals)),
		strIDs:       map[string]int32{},
		hints:        map[string]int32{},
		inputIDs:     map[string]int32{},
		maxCallDepth: opts.MaxCallDepth,
		forwardSlot:  -1,
		egressSlot:   -1,
		numAsserts:   len(p.Asserts),
	}
	for _, g := range p.Globals {
		s := len(c.init)
		c.slots[g.Name] = s
		c.masks = append(c.masks, mask(g.Width))
		v := uint64(0)
		if g.Symbolic {
			c.symSlots = append(c.symSlots, symSlot{slot: int32(s), input: c.inputIndex(g.Name)})
		} else {
			v = g.Init & mask(g.Width)
		}
		c.init = append(c.init, v)
		if g.Name == model.ForwardFlag {
			c.forwardSlot = int32(s)
		}
		if c.egressSlot < 0 && strings.HasSuffix(g.Name, ".egress_spec") {
			c.egressSlot = int32(s)
		}
	}

	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	cc := &compiler{c: c, funcID: map[string]int32{}}
	for _, name := range names {
		cc.funcID[name] = int32(len(c.funcs))
		c.funcs = append(c.funcs, funcInfo{name: name})
	}
	for _, name := range names {
		c.funcs[cc.funcID[name]].start = int32(len(c.code))
		cc.body(p.Funcs[name].Body)
		cc.emit(instr{op: opReturn})
	}
	for _, e := range p.Entry {
		id, ok := cc.funcID[e]
		if !ok {
			return nil, fmt.Errorf("interp: entry %s not found", e)
		}
		c.entries = append(c.entries, entryInfo{
			start:  c.funcs[id].start,
			fid:    id,
			checks: e == "$checks",
		})
	}
	if cc.fail != nil {
		return nil, cc.fail
	}
	if c.maxStack < 1 {
		c.maxStack = 1
	}
	return c, nil
}

type compiler struct {
	c      *Compiled
	funcID map[string]int32
	fail   error
}

func (cc *compiler) errf(format string, args ...any) {
	if cc.fail == nil {
		cc.fail = fmt.Errorf("interp: "+format, args...)
	}
}

func (cc *compiler) emit(i instr) int32 {
	cc.c.code = append(cc.c.code, i)
	return int32(len(cc.c.code) - 1)
}

func (cc *compiler) body(body []model.Stmt) {
	for _, s := range body {
		cc.stmt(s)
	}
}

func (cc *compiler) stmt(s model.Stmt) {
	c := cc.c
	switch st := s.(type) {
	case *model.Assign:
		slot, ok := c.slots[st.LHS]
		if !ok {
			cc.errf("unknown global %s", st.LHS)
			return
		}
		es, el := cc.expr(st.RHS)
		cc.emit(instr{op: opAssign, a: int32(slot), es: es, el: el})

	case *model.MakeSymbolic:
		slot, ok := c.slots[st.Var]
		if !ok {
			cc.errf("unknown global %s", st.Var)
			return
		}
		cc.emit(instr{op: opMakeSym, a: int32(slot), b: c.hintID(st.Hint)})

	case *model.If:
		es, el := cc.expr(st.Cond)
		jz := cc.emit(instr{op: opJumpZ, es: es, el: el})
		cc.body(st.Then)
		if len(st.Else) > 0 {
			j := cc.emit(instr{op: opJump})
			c.code[jz].a = int32(len(c.code))
			cc.body(st.Else)
			c.code[j].a = int32(len(c.code))
		} else {
			c.code[jz].a = int32(len(c.code))
		}

	case *model.Fork:
		siteID := int32(len(c.forks))
		c.forks = append(c.forks, forkSite{
			selector: c.intern(st.Selector),
			branch:   map[int32]int32{},
		})
		cc.emit(instr{op: opFork, a: siteID})
		var ends []int32
		for i, br := range st.Branches {
			label := ""
			if i < len(st.Labels) {
				label = st.Labels[i]
			}
			c.forks[siteID].branch[c.intern(label)] = int32(len(c.code))
			cc.body(br)
			ends = append(ends, cc.emit(instr{op: opJump}))
		}
		for _, e := range ends {
			c.code[e].a = int32(len(c.code))
		}

	case *model.Call:
		id, ok := cc.funcID[st.Func]
		if !ok {
			cc.errf("unknown function %s", st.Func)
			return
		}
		cc.emit(instr{op: opCall, a: id})

	case *model.Assume:
		es, el := cc.expr(st.Cond)
		cc.emit(instr{op: opAssume, es: es, el: el})

	case *model.AssertCheck:
		es, el := cc.expr(st.Cond)
		cc.emit(instr{op: opAssert, a: int32(st.ID), es: es, el: el})

	case *model.Return:
		cc.emit(instr{op: opReturn})

	case *model.Exit:
		cc.emit(instr{op: opExit})

	case *model.Halt:
		cc.emit(instr{op: opHalt})

	case *model.TraceNote:
		cc.emit(instr{op: opNote, a: c.intern(st.Label)})

	case *model.ResetDraws:
		cc.emit(instr{op: opResetDraws})

	default:
		cc.errf("unknown statement %T", s)
	}
}

// expr compiles e to postfix ops, returning its (start, length) in c.ex.
// Static widths follow the same coercion rules evalW documents: right
// operand resized to the left's width for arithmetic, max-widening for
// comparisons, truth values for logical operators.
func (cc *compiler) expr(e model.Expr) (int32, int32) {
	start := int32(len(cc.c.ex))
	depth, _ := cc.compileExpr(e, 0)
	if depth > cc.c.maxStack {
		cc.c.maxStack = depth
	}
	return start, int32(len(cc.c.ex)) - start
}

// compileExpr emits ops for e; cur is the stack depth before e's ops run.
// It returns the peak depth reached and e's static width.
func (cc *compiler) compileExpr(e model.Expr, cur int) (int, int) {
	c := cc.c
	push := func(op exprOp) { c.ex = append(c.ex, op) }
	switch x := e.(type) {
	case *model.Const:
		idx := int32(len(c.consts))
		c.consts = append(c.consts, x.Val&mask(x.Width))
		push(exprOp{kind: exConst, a: idx})
		return cur + 1, x.Width

	case *model.Ref:
		slot, ok := c.slots[x.Name]
		if !ok {
			cc.errf("unknown global %s", x.Name)
			return cur + 1, 1
		}
		g, _ := c.p.Global(x.Name)
		push(exprOp{kind: exSlot, a: int32(slot)})
		return cur + 1, g.Width

	case *model.Cast:
		peak, _ := cc.compileExpr(x.X, cur)
		push(exprOp{kind: exCast, mask: mask(x.Width)})
		return peak, x.Width

	case *model.Un:
		peak, w := cc.compileExpr(x.X, cur)
		switch x.Op {
		case model.OpNot:
			push(exprOp{kind: exNot})
			return peak, 1
		case model.OpBitNot:
			push(exprOp{kind: exBitNot, mask: mask(w)})
			return peak, w
		case model.OpNeg:
			push(exprOp{kind: exNeg, mask: mask(w)})
			return peak, w
		}
		cc.errf("bad unary %v", x.Op)
		return peak, w

	case *model.Cond:
		p1, _ := cc.compileExpr(x.C, cur)
		p2, tw := cc.compileExpr(x.T, cur+1)
		p3, fw := cc.compileExpr(x.F, cur+2)
		w := tw
		if fw > w {
			w = fw
		}
		push(exprOp{kind: exCond, mask: mask(w)})
		return max3(p1, p2, p3), w

	case *model.Bin:
		p1, aw := cc.compileExpr(x.X, cur)
		p2, bw := cc.compileExpr(x.Y, cur+1)
		peak := p1
		if p2 > peak {
			peak = p2
		}
		switch x.Op {
		case model.OpLAnd:
			push(exprOp{kind: exLAnd})
			return peak, 1
		case model.OpLOr:
			push(exprOp{kind: exLOr})
			return peak, 1
		case model.OpEq, model.OpNe, model.OpLt, model.OpLe, model.OpGt, model.OpGe:
			w := aw
			if bw > w {
				w = bw
			}
			push(exprOp{kind: cmpKind[x.Op], mask: mask(w)})
			return peak, 1
		}
		kind, ok := arithKind[x.Op]
		if !ok {
			cc.errf("bad binary %v", x.Op)
			return peak, aw
		}
		push(exprOp{kind: kind, mask: mask(aw), w: uint64(aw)})
		return peak, aw
	}
	cc.errf("unknown expression %T", e)
	return cur + 1, 1
}

var cmpKind = map[model.Op]uint8{
	model.OpEq: exEq, model.OpNe: exNe, model.OpLt: exLt,
	model.OpLe: exLe, model.OpGt: exGt, model.OpGe: exGe,
}

var arithKind = map[model.Op]uint8{
	model.OpAdd: exAdd, model.OpSub: exSub, model.OpMul: exMul,
	model.OpDiv: exDiv, model.OpMod: exMod, model.OpAnd: exAnd,
	model.OpOr: exOr, model.OpXor: exXor, model.OpShl: exShl,
	model.OpShr: exShr,
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func (c *Compiled) intern(s string) int32 {
	if id, ok := c.strIDs[s]; ok {
		return id
	}
	id := int32(len(c.strs))
	c.strIDs[s] = id
	c.strs = append(c.strs, s)
	return id
}

func (c *Compiled) hintID(h string) int32 {
	if id, ok := c.hints[h]; ok {
		return id
	}
	id := int32(len(c.hintNames))
	c.hints[h] = id
	c.hintNames = append(c.hintNames, h)
	c.hintDraws = append(c.hintDraws, nil)
	return id
}

func (c *Compiled) inputIndex(name string) int32 {
	if id, ok := c.inputIDs[name]; ok {
		return id
	}
	id := int32(len(c.inputIDs))
	c.inputIDs[name] = id
	return id
}

// NumInputs is the size of the dense input space interned so far.
func (c *Compiled) NumInputs() int { return len(c.inputIDs) }

// LoadInputs resolves a named input assignment — "hint#k" draw names and
// initial symbolic globals, as produced by test generation — into a dense
// vector for Exec.Run. Loading interns new names and is not safe for
// concurrent use; Run is, with one Exec per goroutine.
func (c *Compiled) LoadInputs(inputs map[string]uint64) []uint64 {
	names := make([]string, 0, len(inputs))
	for name := range inputs {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic interning order
	idx := make([]int32, len(names))
	maxID := int32(-1)
	for i, name := range names {
		id := c.inputIndex(name)
		c.registerDraw(name, id)
		idx[i] = id
		if id > maxID {
			maxID = id
		}
	}
	in := make([]uint64, maxID+1)
	for i, name := range names {
		in[idx[i]] = inputs[name]
	}
	return in
}

// registerDraw records name into the hint-draw table when it has the
// "hint#k" shape for a hint the program draws.
func (c *Compiled) registerDraw(name string, id int32) {
	cut := strings.LastIndexByte(name, '#')
	if cut < 0 {
		return
	}
	hid, ok := c.hints[name[:cut]]
	if !ok {
		return
	}
	k := 0
	for _, d := range name[cut+1:] {
		if d < '0' || d > '9' {
			return
		}
		k = k*10 + int(d-'0')
	}
	if k <= 0 {
		return
	}
	draws := c.hintDraws[hid]
	for len(draws) < k {
		draws = append(draws, -1)
	}
	draws[k-1] = id
	c.hintDraws[hid] = draws
}

// LoadTrace pre-resolves a symbolic path trace ("selector=label" fork
// entries interleaved with trace-note texts) into decisions the fork/note
// ops consume. Unknown entries fail here, at load time, not per replay.
func (c *Compiled) LoadTrace(trace []string) ([]Decision, error) {
	out := make([]Decision, 0, len(trace))
	for _, e := range trace {
		d := Decision{Selector: -1, Label: -1, Raw: -1}
		if raw, ok := c.strIDs[e]; ok {
			d.Raw = raw
		}
		if eq := strings.IndexByte(e, '='); eq >= 0 {
			if sel, ok := c.strIDs[e[:eq]]; ok {
				if label, ok := c.strIDs[e[eq+1:]]; ok {
					d.Selector = sel
					d.Label = label
				}
			}
		}
		if d.Raw < 0 && d.Selector < 0 {
			return nil, fmt.Errorf("interp: trace entry %q unknown to the model", e)
		}
		out = append(out, d)
	}
	return out, nil
}

// BatchResult is one packet's outcome in batch mode. Failures is a bitset
// over assertion IDs; it aliases Exec scratch and is valid until the next
// Run on that Exec.
type BatchResult struct {
	Halted         bool
	AssumeViolated bool
	Forward        uint64
	Egress         uint64
	Failures       []uint64
	// TraceErr reports a divergence between the packet's pre-resolved
	// decisions and the forks the replay actually reached.
	TraceErr error
	// Instructions counts executed bytecode ops.
	Instructions int64
}

// FailureIDs expands the failure bitset into a sorted ID list.
func (r *BatchResult) FailureIDs() []int {
	var out []int
	for w, word := range r.Failures {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &^= 1 << uint(b)
		}
	}
	return out
}

// Outcome converts a batch result to the canonical observable shape so
// its digest compares directly against Run's and the symbolic engine's.
func (r *BatchResult) Outcome() Outcome {
	return Outcome{
		Halted:   r.Halted,
		Forward:  r.Forward,
		Egress:   r.Egress,
		Failures: r.FailureIDs(),
	}
}

// Exec is per-goroutine replay scratch for one Compiled program.
type Exec struct {
	c       *Compiled
	store   []uint64
	stack   []uint64
	calls   []int32 // interleaved (return pc, func id) pairs
	depth   []int32 // per-function activation counts
	drawCnt []int32 // per-hint draw counters
	fails   []uint64
}

// NewExec allocates replay scratch. Use one Exec per goroutine.
func (c *Compiled) NewExec() *Exec {
	return &Exec{
		c:       c,
		store:   make([]uint64, len(c.init)),
		stack:   make([]uint64, c.maxStack),
		calls:   make([]int32, 0, 2*c.maxCallDepth),
		depth:   make([]int32, len(c.funcs)),
		drawCnt: make([]int32, len(c.hintNames)),
		fails:   make([]uint64, (c.numAsserts+63)/64),
	}
}

// Run replays one packet: in is a dense input vector from LoadInputs, dec
// the pre-resolved decisions from LoadTrace. The result's Failures slice
// aliases Exec scratch and is valid until the next Run.
func (e *Exec) Run(in []uint64, dec []Decision) BatchResult {
	c := e.c
	copy(e.store, c.init)
	for i := range e.depth {
		e.depth[i] = 0
	}
	for i := range e.drawCnt {
		e.drawCnt[i] = 0
	}
	for i := range e.fails {
		e.fails[i] = 0
	}
	for _, s := range c.symSlots {
		e.store[s.slot] = e.input(in, s.input) & c.masks[s.slot]
	}

	res := BatchResult{Failures: e.fails}
	di := 0
	halted := false

	for _, entry := range c.entries {
		if halted && !entry.checks {
			continue
		}
		pc := entry.start
		e.calls = e.calls[:0]
	loop:
		for {
			ins := &c.code[pc]
			pc++
			res.Instructions++
			switch ins.op {
			case opAssign:
				e.store[ins.a] = e.eval(ins) & c.masks[ins.a]
			case opMakeSym:
				e.drawCnt[ins.b]++
				k := e.drawCnt[ins.b]
				v := uint64(0)
				if draws := c.hintDraws[ins.b]; int(k) <= len(draws) {
					if idx := draws[k-1]; idx >= 0 {
						v = e.input(in, idx)
					}
				}
				e.store[ins.a] = v & c.masks[ins.a]
			case opJump:
				pc = ins.a
			case opJumpZ:
				if e.eval(ins) == 0 {
					pc = ins.a
				}
			case opFork:
				site := &c.forks[ins.a]
				if di >= len(dec) {
					res.TraceErr = fmt.Errorf("interp: replay reached fork %q beyond the recorded trace",
						c.strs[site.selector])
					return e.finish(res)
				}
				d := dec[di]
				di++
				if d.Selector != site.selector {
					res.TraceErr = fmt.Errorf("interp: replay reached fork %q but the trace records %q",
						c.strs[site.selector], c.decisionString(d))
					return e.finish(res)
				}
				target, ok := site.branch[d.Label]
				if !ok {
					res.TraceErr = fmt.Errorf("interp: fork %q has no branch labelled %q",
						c.strs[site.selector], c.strs[d.Label])
					return e.finish(res)
				}
				pc = target
			case opNote:
				if di >= len(dec) {
					res.TraceErr = fmt.Errorf("interp: replay reached note %q beyond the recorded trace",
						c.strs[ins.a])
					return e.finish(res)
				}
				d := dec[di]
				di++
				if d.Raw != ins.a {
					res.TraceErr = fmt.Errorf("interp: replay reached note %q but the trace records %q",
						c.strs[ins.a], c.decisionString(d))
					return e.finish(res)
				}
			case opCall:
				if e.depth[ins.a] >= int32(c.maxCallDepth) {
					// Truncated execution: stop entirely without running the
					// final checks, mirroring Run and the symbolic executor.
					res.Halted = true
					return e.finish(res)
				}
				e.depth[ins.a]++
				e.calls = append(e.calls, pc, ins.a)
				pc = c.funcs[ins.a].start
			case opReturn:
				if len(e.calls) == 0 {
					e.depth[entry.fid]--
					break loop // entry function done
				}
				fid := e.calls[len(e.calls)-1]
				pc = e.calls[len(e.calls)-2]
				e.calls = e.calls[:len(e.calls)-2]
				e.depth[fid]--
			case opExit:
				e.calls = e.calls[:0]
				for i := range e.depth {
					e.depth[i] = 0
				}
				break loop
			case opHalt:
				e.calls = e.calls[:0]
				for i := range e.depth {
					e.depth[i] = 0
				}
				halted = true
				res.Halted = true
				break loop
			case opAssume:
				if e.eval(ins) == 0 {
					res.AssumeViolated = true
					return e.finish(res)
				}
			case opAssert:
				if e.eval(ins) == 0 {
					e.fails[ins.a>>6] |= 1 << uint(ins.a&63)
				}
			case opResetDraws:
				for i := range e.drawCnt {
					e.drawCnt[i] = 0
				}
			}
		}
	}
	if di != len(dec) {
		res.TraceErr = fmt.Errorf("interp: replay consumed %d of %d trace decisions", di, len(dec))
	}
	return e.finish(res)
}

// finish reads the observable outputs from the store, matching what
// Result.Outcome reads regardless of how the run ended.
func (e *Exec) finish(res BatchResult) BatchResult {
	if e.c.forwardSlot >= 0 {
		res.Forward = e.store[e.c.forwardSlot]
	}
	if e.c.egressSlot >= 0 {
		res.Egress = e.store[e.c.egressSlot]
	}
	return res
}

func (e *Exec) input(in []uint64, idx int32) uint64 {
	if int(idx) < len(in) {
		return in[idx]
	}
	return 0
}

func (c *Compiled) decisionString(d Decision) string {
	if d.Raw >= 0 {
		return c.strs[d.Raw]
	}
	if d.Selector >= 0 {
		return c.strs[d.Selector] + "=" + c.strs[d.Label]
	}
	return "?"
}

// eval runs an instruction's postfix expression on the Exec stack. Stack
// values are always within their static width, so binary ops re-mask only
// where the semantics require it (right operands resized to the left's
// width; modular +,-,&,|,^ are width-stable under the final mask).
func (e *Exec) eval(ins *instr) uint64 {
	c := e.c
	ops := c.ex[ins.es : ins.es+ins.el]
	sp := 0
	st := e.stack
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case exConst:
			st[sp] = c.consts[op.a]
			sp++
		case exSlot:
			st[sp] = e.store[op.a]
			sp++
		case exCast:
			st[sp-1] &= op.mask
		case exNot:
			st[sp-1] = b2u(st[sp-1] == 0)
		case exBitNot:
			st[sp-1] = ^st[sp-1] & op.mask
		case exNeg:
			st[sp-1] = (-st[sp-1]) & op.mask
		case exCond:
			sp -= 2
			if st[sp-1] != 0 {
				st[sp-1] = st[sp] & op.mask
			} else {
				st[sp-1] = st[sp+1] & op.mask
			}
		case exLAnd:
			sp--
			st[sp-1] = b2u(st[sp-1] != 0 && st[sp] != 0)
		case exLOr:
			sp--
			st[sp-1] = b2u(st[sp-1] != 0 || st[sp] != 0)
		case exEq:
			sp--
			st[sp-1] = b2u(st[sp-1] == st[sp])
		case exNe:
			sp--
			st[sp-1] = b2u(st[sp-1] != st[sp])
		case exLt:
			sp--
			st[sp-1] = b2u(st[sp-1] < st[sp])
		case exLe:
			sp--
			st[sp-1] = b2u(st[sp-1] <= st[sp])
		case exGt:
			sp--
			st[sp-1] = b2u(st[sp-1] > st[sp])
		case exGe:
			sp--
			st[sp-1] = b2u(st[sp-1] >= st[sp])
		case exAdd:
			sp--
			st[sp-1] = (st[sp-1] + st[sp]) & op.mask
		case exSub:
			sp--
			st[sp-1] = (st[sp-1] - st[sp]) & op.mask
		case exMul:
			sp--
			st[sp-1] = (st[sp-1] * (st[sp] & op.mask)) & op.mask
		case exDiv:
			sp--
			if b := st[sp] & op.mask; b == 0 {
				st[sp-1] = op.mask
			} else {
				st[sp-1] = (st[sp-1] / b) & op.mask
			}
		case exMod:
			sp--
			if b := st[sp] & op.mask; b != 0 {
				st[sp-1] = (st[sp-1] % b) & op.mask
			}
		case exAnd:
			sp--
			st[sp-1] = st[sp-1] & st[sp] & op.mask
		case exOr:
			sp--
			st[sp-1] = (st[sp-1] | st[sp]) & op.mask
		case exXor:
			sp--
			st[sp-1] = (st[sp-1] ^ st[sp]) & op.mask
		case exShl:
			sp--
			if b := st[sp] & op.mask; b >= op.w {
				st[sp-1] = 0
			} else {
				st[sp-1] = (st[sp-1] << b) & op.mask
			}
		case exShr:
			sp--
			if b := st[sp] & op.mask; b >= op.w {
				st[sp-1] = 0
			} else {
				st[sp-1] = (st[sp-1] >> b) & op.mask
			}
		}
	}
	return st[sp-1]
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
