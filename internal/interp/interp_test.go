package interp

import (
	"strings"
	"testing"

	"p4assert/internal/model"
)

func simpleModel() *model.Program {
	p := model.NewProgram()
	p.AddGlobal("in", 8, true, 0)
	p.AddGlobal("out", 8, false, 0)
	p.AddGlobal(model.ForwardFlag, 1, false, 1)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.If{
			Cond: &model.Bin{Op: model.OpLt, X: &model.Ref{Name: "in"}, Y: &model.Const{Width: 8, Val: 10}},
			Then: []model.Stmt{&model.Assign{LHS: "out", RHS: &model.Const{Width: 8, Val: 1}}},
			Else: []model.Stmt{&model.Assign{LHS: "out", RHS: &model.Const{Width: 8, Val: 2}}},
		},
	}})
	p.Entry = []string{"main"}
	return p
}

func TestBranching(t *testing.T) {
	for _, tc := range []struct {
		in, out uint64
	}{{5, 1}, {10, 2}, {255, 2}, {9, 1}} {
		res, err := Run(simpleModel(), Options{Input: func(name string, w int) uint64 {
			return tc.in
		}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Store["out"] != tc.out {
			t.Fatalf("in=%d: out=%d, want %d", tc.in, res.Store["out"], tc.out)
		}
	}
}

func TestNilInputReadsZero(t *testing.T) {
	res, err := Run(simpleModel(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store["out"] != 1 { // in=0 < 10
		t.Fatalf("out = %d", res.Store["out"])
	}
	if res.Instructions == 0 {
		t.Fatal("instructions not counted")
	}
}

func TestMakeSymbolicNaming(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("v", 8, false, 0)
	p.AddGlobal("w", 8, false, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.MakeSymbolic{Var: "v", Hint: "v"},
		&model.MakeSymbolic{Var: "w", Hint: "w"},
	}})
	p.Entry = []string{"main"}
	var asked []string
	_, err := Run(p, Options{Input: func(name string, w int) uint64 {
		asked = append(asked, name)
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(asked) != 2 || asked[0] != "v#1" || asked[1] != "w#1" {
		t.Fatalf("input naming = %v, want [v#1 w#1]", asked)
	}
}

func TestAssumeStops(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("x", 8, true, 0)
	p.AddGlobal("y", 8, false, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.Assume{Cond: &model.Bin{Op: model.OpEq, X: &model.Ref{Name: "x"}, Y: &model.Const{Width: 8, Val: 1}}},
		&model.Assign{LHS: "y", RHS: &model.Const{Width: 8, Val: 7}},
	}})
	p.Entry = []string{"main"}
	res, err := Run(p, Options{}) // x = 0 violates the assumption
	if err != nil {
		t.Fatal(err)
	}
	if !res.AssumeViolated || res.Store["y"] != 0 {
		t.Fatalf("assume should stop the run: %+v", res)
	}
}

func TestAssertFailureRecorded(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("x", 8, true, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.AssertCheck{ID: 3, Cond: &model.Bin{Op: model.OpEq,
			X: &model.Ref{Name: "x"}, Y: &model.Const{Width: 8, Val: 1}}},
		&model.AssertCheck{ID: 4, Cond: &model.Const{Width: 1, Val: 1}},
	}})
	p.Entry = []string{"main"}
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || res.Failures[0] != 3 {
		t.Fatalf("failures = %v, want [3]", res.Failures)
	}
}

func TestForkChoice(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("r", 8, false, 0)
	fork := &model.Fork{Selector: "s", Labels: []string{"a", "b"}}
	fork.Branches = [][]model.Stmt{
		{&model.Assign{LHS: "r", RHS: &model.Const{Width: 8, Val: 1}}},
		{&model.Assign{LHS: "r", RHS: &model.Const{Width: 8, Val: 2}}},
	}
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{fork}})
	p.Entry = []string{"main"}

	res, err := Run(p, Options{Choose: func(sel string, labels []string) int {
		if sel != "s" || len(labels) != 2 {
			t.Fatalf("choose called with %q %v", sel, labels)
		}
		return 1
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store["r"] != 2 {
		t.Fatalf("r = %d, want 2", res.Store["r"])
	}
	// Out-of-range choice errors.
	if _, err := Run(p, Options{Choose: func(string, []string) int { return 5 }}); err == nil {
		t.Fatal("bad choice should error")
	}
}

func TestHaltSkipsPipelineRunsChecks(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("a", 8, false, 0)
	p.AddFunc(&model.Func{Name: "parser", Body: []model.Stmt{&model.Halt{}}})
	p.AddFunc(&model.Func{Name: "ingress", Body: []model.Stmt{
		&model.Assign{LHS: "a", RHS: &model.Const{Width: 8, Val: 1}},
	}})
	p.AddFunc(&model.Func{Name: "$checks", Body: []model.Stmt{
		&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpEq,
			X: &model.Ref{Name: "a"}, Y: &model.Const{Width: 8, Val: 0}}},
	}})
	p.Entry = []string{"parser", "ingress", "$checks"}
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Failures) != 0 {
		t.Fatalf("halt semantics wrong: %+v", res)
	}
}

func TestLoopBoundStops(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("n", 8, false, 0)
	p.AddFunc(&model.Func{Name: "loop", Body: []model.Stmt{
		&model.Assign{LHS: "n", RHS: &model.Bin{Op: model.OpAdd,
			X: &model.Ref{Name: "n"}, Y: &model.Const{Width: 8, Val: 1}}},
		&model.Call{Func: "loop"},
	}})
	p.Entry = []string{"loop"}
	res, err := Run(p, Options{MaxCallDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The entry activation itself is not depth-counted (matching the
	// symbolic executor), so MaxCallDepth=3 admits 4 body executions.
	if !res.Halted || res.Store["n"] != 4 {
		t.Fatalf("bound handling wrong: halted=%v n=%d", res.Halted, res.Store["n"])
	}
}

func TestWidthCoercions(t *testing.T) {
	// 32-bit literal compared against an 8-bit field must widen, not
	// truncate: 0x100 != 0 at width 8 would wrongly hold if truncated.
	p := model.NewProgram()
	p.AddGlobal("f", 8, false, 0)
	p.AddGlobal("r", 1, false, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.Assign{LHS: "r", RHS: &model.Bin{Op: model.OpEq,
			X: &model.Ref{Name: "f"}, Y: &model.Const{Width: 32, Val: 0x100}}},
	}})
	p.Entry = []string{"main"}
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store["r"] != 0 {
		t.Fatal("comparison truncated the wide literal")
	}
}

// TestEvalOperatorMatrix exercises every IR operator through concrete
// evaluation, cross-checking against direct Go arithmetic at width 8.
func TestEvalOperatorMatrix(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("a", 8, true, 0)
	p.AddGlobal("b", 8, true, 0)
	p.AddGlobal("r", 8, false, 0)

	mk := func(op model.Op) model.Expr {
		return &model.Bin{Op: op, X: &model.Ref{Name: "a"}, Y: &model.Ref{Name: "b"}}
	}
	b2u := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	cases := []struct {
		name string
		expr model.Expr
		want func(a, b uint64) uint64
	}{
		{"add", mk(model.OpAdd), func(a, b uint64) uint64 { return (a + b) & 0xff }},
		{"sub", mk(model.OpSub), func(a, b uint64) uint64 { return (a - b) & 0xff }},
		{"mul", mk(model.OpMul), func(a, b uint64) uint64 { return (a * b) & 0xff }},
		{"div", mk(model.OpDiv), func(a, b uint64) uint64 {
			if b == 0 {
				return 0xff
			}
			return a / b
		}},
		{"mod", mk(model.OpMod), func(a, b uint64) uint64 {
			if b == 0 {
				return a
			}
			return a % b
		}},
		{"and", mk(model.OpAnd), func(a, b uint64) uint64 { return a & b }},
		{"or", mk(model.OpOr), func(a, b uint64) uint64 { return a | b }},
		{"xor", mk(model.OpXor), func(a, b uint64) uint64 { return a ^ b }},
		{"shl", mk(model.OpShl), func(a, b uint64) uint64 {
			if b >= 8 {
				return 0
			}
			return (a << b) & 0xff
		}},
		{"shr", mk(model.OpShr), func(a, b uint64) uint64 {
			if b >= 8 {
				return 0
			}
			return a >> b
		}},
		{"eq", mk(model.OpEq), func(a, b uint64) uint64 { return b2u(a == b) }},
		{"ne", mk(model.OpNe), func(a, b uint64) uint64 { return b2u(a != b) }},
		{"lt", mk(model.OpLt), func(a, b uint64) uint64 { return b2u(a < b) }},
		{"le", mk(model.OpLe), func(a, b uint64) uint64 { return b2u(a <= b) }},
		{"gt", mk(model.OpGt), func(a, b uint64) uint64 { return b2u(a > b) }},
		{"ge", mk(model.OpGe), func(a, b uint64) uint64 { return b2u(a >= b) }},
		{"land", mk(model.OpLAnd), func(a, b uint64) uint64 { return b2u(a != 0 && b != 0) }},
		{"lor", mk(model.OpLOr), func(a, b uint64) uint64 { return b2u(a != 0 || b != 0) }},
		{"not", &model.Un{Op: model.OpNot, X: &model.Ref{Name: "a"}},
			func(a, b uint64) uint64 { return b2u(a == 0) }},
		{"bitnot", &model.Un{Op: model.OpBitNot, X: &model.Ref{Name: "a"}},
			func(a, b uint64) uint64 { return ^a & 0xff }},
		{"neg", &model.Un{Op: model.OpNeg, X: &model.Ref{Name: "a"}},
			func(a, b uint64) uint64 { return (-a) & 0xff }},
		{"cond", &model.Cond{C: &model.Ref{Name: "a"}, T: &model.Ref{Name: "b"}, F: &model.Const{Width: 8, Val: 7}},
			func(a, b uint64) uint64 {
				if a != 0 {
					return b
				}
				return 7
			}},
		{"cast", &model.Cast{Width: 4, X: &model.Ref{Name: "a"}},
			func(a, b uint64) uint64 { return a & 0xf }},
	}
	inputs := [][2]uint64{{0, 0}, {1, 0}, {0, 1}, {7, 3}, {200, 100}, {255, 255}, {16, 9}, {5, 0}}
	for _, tc := range cases {
		prog := p.Clone()
		prog.Funcs["main"] = &model.Func{Name: "main", Body: []model.Stmt{
			&model.Assign{LHS: "r", RHS: tc.expr},
		}}
		prog.Entry = []string{"main"}
		for _, in := range inputs {
			res, err := Run(prog, Options{Input: func(name string, w int) uint64 {
				if name == "a" {
					return in[0]
				}
				return in[1]
			}})
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			want := tc.want(in[0], in[1]) & 0xff
			if res.Store["r"] != want {
				t.Fatalf("%s(%d,%d) = %d, want %d", tc.name, in[0], in[1], res.Store["r"], want)
			}
		}
	}
}

func TestErrorsOnUnknownGlobal(t *testing.T) {
	p := model.NewProgram()
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.Assign{LHS: "ghost", RHS: &model.Const{Width: 8, Val: 1}},
	}})
	p.Entry = []string{"main"}
	if _, err := Run(p, Options{}); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unknown global should error, got %v", err)
	}
}
