package interp

import (
	"testing"

	"p4assert/internal/model"
)

// buildSemanticsModel exercises every operator class the compiler handles:
// width coercion, division and modulo by zero, over-wide shifts, casts,
// conditionals, nested calls, forks, assumes, asserts, halt + $checks.
func buildSemanticsModel() *model.Program {
	p := model.NewProgram()
	p.AddGlobal("in.a", 8, true, 0)
	p.AddGlobal("in.b", 8, true, 0)
	p.AddGlobal("wide", 16, false, 0)
	p.AddGlobal("x", 8, false, 0)
	p.AddGlobal("y", 8, false, 0)
	p.AddGlobal("drawn", 8, false, 0)
	p.AddGlobal("m.egress_spec", 9, false, 0)
	p.AddGlobal(model.ForwardFlag, 1, false, 1)

	ref := func(n string) model.Expr { return &model.Ref{Name: n} }
	k := func(w int, v uint64) model.Expr { return &model.Const{Width: w, Val: v} }
	bin := func(op model.Op, x, y model.Expr) model.Expr { return &model.Bin{Op: op, X: x, Y: y} }

	p.Funcs["math"] = &model.Func{Body: []model.Stmt{
		// Right operand resized to the left's width: 8-bit add of a 16-bit.
		&model.Assign{LHS: "x", RHS: bin(model.OpAdd, ref("in.a"), ref("wide"))},
		// Division by a possibly-zero symbolic: all-ones on zero.
		&model.Assign{LHS: "y", RHS: bin(model.OpDiv, ref("x"), ref("in.b"))},
		// Modulo by zero keeps the dividend.
		&model.Assign{LHS: "y", RHS: bin(model.OpMod, ref("y"), ref("in.b"))},
		// Shift by the symbolic amount: >= width yields zero.
		&model.Assign{LHS: "x", RHS: bin(model.OpShl, ref("x"), ref("in.b"))},
		&model.Assign{LHS: "x", RHS: bin(model.OpShr, ref("x"), k(8, 2))},
		// Comparison widens to the larger operand.
		&model.Assign{LHS: "wide", RHS: &model.Cond{
			C: bin(model.OpLt, ref("x"), ref("wide")),
			T: &model.Cast{Width: 16, X: bin(model.OpMul, ref("x"), k(8, 3))},
			F: bin(model.OpXor, ref("wide"), k(16, 0xf0f)),
		}},
		&model.Assign{LHS: "wide", RHS: &model.Un{Op: model.OpBitNot, X: ref("wide")}},
		&model.Assign{LHS: "x", RHS: &model.Un{Op: model.OpNeg, X: ref("x")}},
	}}
	p.Funcs["route"] = &model.Func{Body: []model.Stmt{
		&model.MakeSymbolic{Var: "drawn", Hint: "drawn"},
		&model.MakeSymbolic{Var: "drawn", Hint: "drawn"}, // second draw: drawn#2
		&model.Fork{
			Selector: "t.$action",
			Labels:   []string{"fwd", "drop"},
			Branches: [][]model.Stmt{
				{&model.Assign{LHS: "m.egress_spec", RHS: &model.Cast{Width: 9, X: ref("drawn")}}},
				{
					&model.Assign{LHS: model.ForwardFlag, RHS: k(1, 0)},
					&model.Assign{LHS: "m.egress_spec", RHS: k(9, 511)},
				},
			},
		},
	}}
	p.Funcs["main"] = &model.Func{Body: []model.Stmt{
		&model.Call{Func: "math"},
		&model.If{
			Cond: bin(model.OpEq, ref("in.a"), k(8, 0xff)),
			Then: []model.Stmt{&model.Halt{}},
		},
		&model.Call{Func: "route"},
		&model.Assume{Cond: bin(model.OpNe, ref("in.a"), k(8, 0x7e))},
	}}
	p.Funcs["$checks"] = &model.Func{Body: []model.Stmt{
		&model.AssertCheck{ID: 0, Cond: bin(model.OpNe, ref("m.egress_spec"), k(9, 13))},
		&model.AssertCheck{ID: 1, Cond: &model.Un{Op: model.OpNot, X: ref("y")}},
	}}
	p.Entry = []string{"main", "$checks"}
	p.Asserts = []*model.AssertInfo{
		{ID: 0, Source: "egress != 13"},
		{ID: 1, Source: "!y"},
	}
	return p
}

// TestBatchMatchesRun sweeps concrete inputs through both interpreters and
// requires identical observable outcomes.
func TestBatchMatchesRun(t *testing.T) {
	p := buildSemanticsModel()
	c, err := Compile(p, CompileOptions{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ex := c.NewExec()

	// An xorshift sweep gives deterministic, well-spread corner inputs.
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	corner := []uint64{0, 1, 2, 0x7e, 0x7f, 0xff, 13, 511}

	for trial := 0; trial < 2000; trial++ {
		var a, b, d1, d2 uint64
		if trial < len(corner)*len(corner) {
			a = corner[trial%len(corner)]
			b = corner[trial/len(corner)]
			d1, d2 = 13, 7
		} else {
			a, b, d1, d2 = next(), next(), next(), next()
		}
		branch := int(next() % 2)
		inputs := map[string]uint64{
			"in.a": a & 0xff, "in.b": b & 0xff,
			"drawn#1": d1 & 0xff, "drawn#2": d2 & 0xff,
		}
		label := []string{"fwd", "drop"}[branch]

		ref, err := Run(p, Options{
			Input: func(name string, width int) uint64 { return inputs[name] },
			Choose: func(sel string, labels []string) int {
				if sel != "t.$action" {
					t.Fatalf("unexpected fork selector %q", sel)
				}
				return branch
			},
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}

		in := c.LoadInputs(inputs)
		var dec []Decision
		if a&0xff != 0xff {
			// in.a == 0xff halts before the fork, so its decision would go
			// unconsumed; every other input reaches it exactly once.
			dec, err = c.LoadTrace([]string{"t.$action=" + label})
			if err != nil {
				t.Fatalf("LoadTrace: %v", err)
			}
		}
		got := ex.Run(in, dec)

		if got.AssumeViolated != ref.AssumeViolated {
			t.Fatalf("inputs %v: AssumeViolated batch=%t run=%t", inputs, got.AssumeViolated, ref.AssumeViolated)
		}
		if ref.AssumeViolated {
			continue // Run stops before the store is observable
		}
		want := ref.Outcome()
		if gotD, wantD := got.Outcome().Digest(), want.Digest(); gotD != wantD {
			t.Fatalf("inputs %v branch %s:\nbatch %s\nrun   %s", inputs, label, gotD, wantD)
		}
		if got.TraceErr != nil {
			t.Fatalf("inputs %v: trace error: %v", inputs, got.TraceErr)
		}
	}
}

func TestBatchCallDepthTruncation(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("n", 8, false, 0)
	p.Funcs["loop"] = &model.Func{Body: []model.Stmt{
		&model.Assign{LHS: "n", RHS: &model.Bin{Op: model.OpAdd, X: &model.Ref{Name: "n"}, Y: &model.Const{Width: 8, Val: 1}}},
		&model.Call{Func: "loop"},
	}}
	p.Funcs["$checks"] = &model.Func{Body: []model.Stmt{
		&model.AssertCheck{ID: 0, Cond: &model.Const{Width: 1, Val: 0}},
	}}
	p.Entry = []string{"loop", "$checks"}
	p.Asserts = []*model.AssertInfo{{ID: 0, Source: "never"}}

	for _, depth := range []int{1, 3, 8} {
		c, err := Compile(p, CompileOptions{MaxCallDepth: depth})
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		got := c.NewExec().Run(nil, nil)
		ref, err := Run(p, Options{MaxCallDepth: depth})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !got.Halted || !ref.Halted {
			t.Fatalf("depth %d: expected truncation, batch=%t run=%t", depth, got.Halted, ref.Halted)
		}
		// Truncation skips the final checks in both implementations.
		if len(got.FailureIDs()) != 0 || len(ref.Failures) != 0 {
			t.Fatalf("depth %d: failures after truncation: batch=%v run=%v", depth, got.FailureIDs(), ref.Failures)
		}
		// The entry activation is not depth-counted, so depth+1 increments
		// happen before the bound trips.
		if refN := ref.Store["n"]; refN != uint64(depth)+1 {
			t.Fatalf("depth %d: run executed %d increments, want %d", depth, refN, depth+1)
		}
	}
}

func TestLoadTraceUnknownEntry(t *testing.T) {
	p := buildSemanticsModel()
	c, err := Compile(p, CompileOptions{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := c.LoadTrace([]string{"t.$action=fwd"}); err != nil {
		t.Fatalf("known entry rejected: %v", err)
	}
	if _, err := c.LoadTrace([]string{"no.such=thing"}); err == nil {
		t.Fatal("unknown trace entry accepted")
	}
}

func TestBatchTraceMismatch(t *testing.T) {
	p := buildSemanticsModel()
	c, err := Compile(p, CompileOptions{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ex := c.NewExec()
	in := c.LoadInputs(map[string]uint64{"in.a": 1, "in.b": 1})

	// Too few decisions: the fork is reached beyond the trace.
	if res := ex.Run(in, nil); res.TraceErr == nil {
		t.Fatal("missing decision not reported")
	}
	// Too many decisions: leftovers after the run must be flagged.
	dec, err := c.LoadTrace([]string{"t.$action=fwd", "t.$action=drop"})
	if err != nil {
		t.Fatalf("LoadTrace: %v", err)
	}
	if res := ex.Run(in, dec); res.TraceErr == nil {
		t.Fatal("unconsumed decisions not reported")
	}
}
