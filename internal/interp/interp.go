// Package interp is a concrete interpreter for verification models: it runs
// one packet, with concrete values for every symbolic input, through the
// model and reports the final state. It is an independent implementation of
// the IR semantics (deliberately sharing no evaluation code with the
// symbolic executor) used for differential validation of translated models,
// the role BMv2 input-output testing plays in the paper's §6
// "Validation of C models".
package interp

import (
	"fmt"
	"sort"
	"strings"

	"p4assert/internal/model"
)

// Options configures a concrete run.
type Options struct {
	// Input supplies concrete values for symbolic variables: initial
	// symbolic globals are queried by name, MakeSymbolic targets by hint.
	// Nil inputs read as zero.
	Input func(name string, width int) uint64
	// Choose picks a branch for Fork statements (tables with unknown
	// rules). Nil always picks branch 0.
	Choose func(selector string, labels []string) int
	// Note observes TraceNote statements (submodels record the replaced
	// split decision this way); nil ignores them.
	Note func(label string)
	// MaxCallDepth bounds recursion as in the symbolic executor
	// (0 = default 8).
	MaxCallDepth int
}

// Result is the outcome of a concrete run.
type Result struct {
	// Program is the model that was run (for outcome extraction).
	Program *model.Program
	// Store holds the final value of every global.
	Store map[string]uint64
	// Failures lists assertion IDs whose checks evaluated false.
	Failures []int
	// AssumeViolated reports that an Assume evaluated false: the chosen
	// input is outside the constrained space and the run stopped there.
	AssumeViolated bool
	// Halted reports parser rejection or a loop-bound cut.
	Halted bool
	// Instructions counts executed statements.
	Instructions int64
}

type interp struct {
	p      *model.Program
	opts   Options
	res    *Result
	symCnt map[string]int
}

type frame struct {
	fn      string
	body    []model.Stmt
	ip      int
	isBlock bool
}

// Run executes the model concretely.
func Run(p *model.Program, opts Options) (*Result, error) {
	if opts.MaxCallDepth == 0 {
		opts.MaxCallDepth = 8
	}
	in := &interp{p: p, opts: opts, res: &Result{Program: p, Store: map[string]uint64{}}}
	for _, g := range p.Globals {
		if g.Symbolic {
			in.res.Store[g.Name] = in.input(g.Name, g.Width)
		} else {
			in.res.Store[g.Name] = g.Init & mask(g.Width)
		}
	}

	var frames []frame
	depth := map[string]int{}
	halted := false
	for entryIdx := 0; entryIdx < len(p.Entry); entryIdx++ {
		name := p.Entry[entryIdx]
		if halted && name != "$checks" {
			continue
		}
		fn, ok := p.Funcs[name]
		if !ok {
			return nil, fmt.Errorf("interp: entry %s not found", name)
		}
		frames = append(frames[:0], frame{fn: name, body: fn.Body})
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			if fr.ip >= len(fr.body) {
				if !fr.isBlock {
					depth[fr.fn]--
				}
				frames = frames[:len(frames)-1]
				continue
			}
			stmt := fr.body[fr.ip]
			fr.ip++
			in.res.Instructions++

			switch s := stmt.(type) {
			case *model.Assign:
				g, ok := p.Global(s.LHS)
				if !ok {
					return nil, fmt.Errorf("interp: unknown global %s", s.LHS)
				}
				v, err := in.eval(s.RHS)
				if err != nil {
					return nil, err
				}
				in.res.Store[s.LHS] = v & mask(g.Width)

			case *model.MakeSymbolic:
				g, ok := p.Global(s.Var)
				if !ok {
					return nil, fmt.Errorf("interp: unknown global %s", s.Var)
				}
				// Mirror the symbolic executor's per-path, per-hint input
				// naming (hint#k for the k-th draw of that hint) so
				// counterexample models replay directly.
				if in.symCnt == nil {
					in.symCnt = map[string]int{}
				}
				in.symCnt[s.Hint]++
				in.res.Store[s.Var] = in.input(fmt.Sprintf("%s#%d", s.Hint, in.symCnt[s.Hint]), g.Width)

			case *model.If:
				v, err := in.eval(s.Cond)
				if err != nil {
					return nil, err
				}
				if v != 0 {
					if len(s.Then) > 0 {
						frames = append(frames, frame{fn: fr.fn, body: s.Then, isBlock: true})
					}
				} else if len(s.Else) > 0 {
					frames = append(frames, frame{fn: fr.fn, body: s.Else, isBlock: true})
				}

			case *model.Fork:
				i := 0
				if in.opts.Choose != nil {
					i = in.opts.Choose(s.Selector, s.Labels)
				}
				if i < 0 || i >= len(s.Branches) {
					return nil, fmt.Errorf("interp: fork choice %d out of range", i)
				}
				if len(s.Branches[i]) > 0 {
					frames = append(frames, frame{fn: fr.fn, body: s.Branches[i], isBlock: true})
				}

			case *model.Call:
				fnDecl, ok := p.Funcs[s.Func]
				if !ok {
					return nil, fmt.Errorf("interp: unknown function %s", s.Func)
				}
				if depth[s.Func] >= in.opts.MaxCallDepth {
					// Truncated execution: stop entirely without running
					// the final checks, mirroring the symbolic executor.
					in.res.Halted = true
					return in.res, nil
				}
				depth[s.Func]++
				frames = append(frames, frame{fn: s.Func, body: fnDecl.Body})

			case *model.Assume:
				v, err := in.eval(s.Cond)
				if err != nil {
					return nil, err
				}
				if v == 0 {
					in.res.AssumeViolated = true
					return in.res, nil
				}

			case *model.AssertCheck:
				v, err := in.eval(s.Cond)
				if err != nil {
					return nil, err
				}
				if v == 0 {
					in.res.Failures = append(in.res.Failures, s.ID)
				}

			case *model.Return:
				for len(frames) > 0 {
					top := frames[len(frames)-1]
					frames = frames[:len(frames)-1]
					if !top.isBlock {
						depth[top.fn]--
						break
					}
				}

			case *model.Exit:
				frames = frames[:0]
				depth = map[string]int{}

			case *model.Halt:
				frames = frames[:0]
				depth = map[string]int{}
				halted = true
				in.res.Halted = true

			case *model.TraceNote:
				if in.opts.Note != nil {
					in.opts.Note(s.Label)
				}

			case *model.ResetDraws:
				// Restart per-hint input numbering: the next draw of hint h
				// reads h#1 again, mirroring the symbolic executor's aliasing
				// of re-drawn inputs in composed differential models.
				in.symCnt = nil

			default:
				return nil, fmt.Errorf("interp: unknown statement %T", stmt)
			}
		}
	}
	return in.res, nil
}

// Outcome is the externally observable result of a concrete run, in the
// same canonical shape the symbolic engine predicts for a path
// (sym.PathOutcome). The two types are deliberately independent — the
// differential oracle compares their digests, not shared code.
type Outcome struct {
	Halted   bool
	Forward  uint64
	Egress   uint64
	Failures []int
}

// Digest renders the outcome canonically. The format matches
// sym.PathOutcome.Digest byte for byte.
func (o Outcome) Digest() string {
	return fmt.Sprintf("halt=%t fwd=0x%x egress=0x%x fail=%v",
		o.Halted, o.Forward, o.Egress, o.Failures)
}

// Outcome summarizes the run: the final forward flag, the egress-port
// global (first global named *.egress_spec, as the translator emits), the
// halt status, and the sorted, deduplicated assertion failures.
func (r *Result) Outcome() Outcome {
	o := Outcome{Halted: r.Halted, Forward: r.Store[model.ForwardFlag]}
	for _, g := range r.Program.Globals {
		if strings.HasSuffix(g.Name, ".egress_spec") {
			o.Egress = r.Store[g.Name]
			break
		}
	}
	ids := append([]int(nil), r.Failures...)
	sort.Ints(ids)
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		o.Failures = append(o.Failures, id)
	}
	return o
}

func (in *interp) input(name string, width int) uint64 {
	if in.opts.Input == nil {
		return 0
	}
	return in.opts.Input(name, width) & mask(width)
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// eval computes an expression concretely, with the same width-coercion
// rules the symbolic evaluator documents: right operand resized to the
// left's width for arithmetic, max-widening for comparisons, truth-value
// coercion for logical operators. It returns the value and tracks widths
// internally.
func (in *interp) eval(e model.Expr) (uint64, error) {
	v, _, err := in.evalW(e)
	return v, err
}

func (in *interp) evalW(e model.Expr) (uint64, int, error) {
	switch x := e.(type) {
	case *model.Const:
		return x.Val & mask(x.Width), x.Width, nil
	case *model.Ref:
		g, ok := in.p.Global(x.Name)
		if !ok {
			return 0, 0, fmt.Errorf("interp: unknown global %s", x.Name)
		}
		return in.res.Store[x.Name] & mask(g.Width), g.Width, nil
	case *model.Cast:
		v, _, err := in.evalW(x.X)
		if err != nil {
			return 0, 0, err
		}
		return v & mask(x.Width), x.Width, nil
	case *model.Un:
		v, w, err := in.evalW(x.X)
		if err != nil {
			return 0, 0, err
		}
		switch x.Op {
		case model.OpNot:
			if v == 0 {
				return 1, 1, nil
			}
			return 0, 1, nil
		case model.OpBitNot:
			return ^v & mask(w), w, nil
		case model.OpNeg:
			return (-v) & mask(w), w, nil
		}
		return 0, 0, fmt.Errorf("interp: bad unary %v", x.Op)
	case *model.Cond:
		c, _, err := in.evalW(x.C)
		if err != nil {
			return 0, 0, err
		}
		tv, tw, err := in.evalW(x.T)
		if err != nil {
			return 0, 0, err
		}
		fv, fw, err := in.evalW(x.F)
		if err != nil {
			return 0, 0, err
		}
		w := tw
		if fw > w {
			w = fw
		}
		if c != 0 {
			return tv & mask(w), w, nil
		}
		return fv & mask(w), w, nil
	case *model.Bin:
		a, aw, err := in.evalW(x.X)
		if err != nil {
			return 0, 0, err
		}
		b, bw, err := in.evalW(x.Y)
		if err != nil {
			return 0, 0, err
		}
		b2u := func(v bool) (uint64, int, error) {
			if v {
				return 1, 1, nil
			}
			return 0, 1, nil
		}
		switch x.Op {
		case model.OpLAnd:
			return b2u(a != 0 && b != 0)
		case model.OpLOr:
			return b2u(a != 0 || b != 0)
		case model.OpEq, model.OpNe, model.OpLt, model.OpLe, model.OpGt, model.OpGe:
			w := aw
			if bw > w {
				w = bw
			}
			av, bv := a&mask(w), b&mask(w)
			switch x.Op {
			case model.OpEq:
				return b2u(av == bv)
			case model.OpNe:
				return b2u(av != bv)
			case model.OpLt:
				return b2u(av < bv)
			case model.OpLe:
				return b2u(av <= bv)
			case model.OpGt:
				return b2u(av > bv)
			default:
				return b2u(av >= bv)
			}
		}
		w := aw
		av := a & mask(w)
		bv := b & mask(w)
		var v uint64
		switch x.Op {
		case model.OpAdd:
			v = av + bv
		case model.OpSub:
			v = av - bv
		case model.OpMul:
			v = av * bv
		case model.OpDiv:
			if bv == 0 {
				v = mask(w)
			} else {
				v = av / bv
			}
		case model.OpMod:
			if bv == 0 {
				v = av
			} else {
				v = av % bv
			}
		case model.OpAnd:
			v = av & bv
		case model.OpOr:
			v = av | bv
		case model.OpXor:
			v = av ^ bv
		case model.OpShl:
			if bv >= uint64(w) {
				v = 0
			} else {
				v = av << bv
			}
		case model.OpShr:
			if bv >= uint64(w) {
				v = 0
			} else {
				v = av >> bv
			}
		default:
			return 0, 0, fmt.Errorf("interp: bad binary %v", x.Op)
		}
		return v & mask(w), w, nil
	}
	return 0, 0, fmt.Errorf("interp: unknown expression %T", e)
}
