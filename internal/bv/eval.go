package bv

// Eval computes the concrete value of e under the assignment env, with any
// unassigned variable reading as zero (matching how the SAT layer completes
// partial models). The result is masked to e.Width.
//
// Eval is the reference semantics: the simplifier, the bit-blaster and the
// concrete interpreter are all property-tested against it.
func Eval(e *Expr, env map[string]uint64) uint64 {
	cache := make(map[*Expr]uint64)
	return eval(e, env, cache)
}

func eval(e *Expr, env map[string]uint64, cache map[*Expr]uint64) uint64 {
	if v, ok := cache[e]; ok {
		return v
	}
	v := evalRaw(e, env, cache)
	v &= Mask(e.Width)
	cache[e] = v
	return v
}

func evalRaw(e *Expr, env map[string]uint64, cache map[*Expr]uint64) uint64 {
	arg := func(i int) uint64 { return eval(e.Args[i], env, cache) }
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	switch e.Op {
	case OpConst:
		return e.Val
	case OpVar:
		return env[e.Name] & Mask(e.Width)
	case OpNot:
		return ^arg(0)
	case OpAnd:
		return arg(0) & arg(1)
	case OpOr:
		return arg(0) | arg(1)
	case OpXor:
		return arg(0) ^ arg(1)
	case OpAdd:
		return arg(0) + arg(1)
	case OpSub:
		return arg(0) - arg(1)
	case OpMul:
		return arg(0) * arg(1)
	case OpUDiv:
		a, b := arg(0), arg(1)
		if b == 0 {
			return Mask(e.Width)
		}
		return a / b
	case OpUMod:
		a, b := arg(0), arg(1)
		if b == 0 {
			return a
		}
		return a % b
	case OpShl:
		a, b := arg(0), arg(1)
		if b >= uint64(e.Width) {
			return 0
		}
		return a << b
	case OpLshr:
		a, b := arg(0), arg(1)
		if b >= uint64(e.Args[0].Width) {
			return 0
		}
		return a >> b
	case OpEq:
		return b2u(arg(0) == arg(1))
	case OpUlt:
		return b2u(arg(0) < arg(1))
	case OpUle:
		return b2u(arg(0) <= arg(1))
	case OpIte:
		if arg(0) != 0 {
			return arg(1)
		}
		return arg(2)
	case OpConcat:
		return arg(0)<<uint(e.Args[1].Width) | arg(1)
	case OpExtract:
		return arg(0) >> uint(e.Lo)
	case OpZext:
		return arg(0)
	default:
		panic("bv: eval of unknown op " + e.Op.String())
	}
}
