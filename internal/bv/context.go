package bv

import "fmt"

// Context interns expressions and provides the smart constructors. All
// constructors perform local algebraic simplification (constant folding,
// identity and absorption laws), which keeps the DAG small before any
// bit-blasting happens — the cheap half of what the paper gets from KLEE's
// expression canonicalizer.
//
// A Context is not safe for concurrent use.
type Context struct {
	nextID uint64
	intern map[exprKey]*Expr
	vars   map[string]*Expr
}

// exprKey identifies a node structurally, using child identities.
type exprKey struct {
	op         Op
	width      int
	val        uint64
	name       string
	hi, lo     int
	a0, a1, a2 uint64
}

// NewContext returns an empty expression context.
func NewContext() *Context {
	return &Context{
		intern: make(map[exprKey]*Expr, 1024),
		vars:   make(map[string]*Expr, 64),
	}
}

// NumNodes returns how many distinct nodes this context has interned.
func (c *Context) NumNodes() int { return len(c.intern) }

func (c *Context) get(k exprKey, mk func() *Expr) *Expr {
	if e, ok := c.intern[k]; ok {
		return e
	}
	e := mk()
	c.nextID++
	e.id = c.nextID
	c.intern[k] = e
	return e
}

func checkWidth(w int) {
	if w < 1 || w > MaxWidth {
		panic(fmt.Sprintf("bv: width %d out of range [1,%d]", w, MaxWidth))
	}
}

// Const returns the literal v at the given width, masked to width bits.
func (c *Context) Const(width int, v uint64) *Expr {
	checkWidth(width)
	v &= Mask(width)
	k := exprKey{op: OpConst, width: width, val: v}
	return c.get(k, func() *Expr {
		return &Expr{Op: OpConst, Width: width, Val: v}
	})
}

// Bool returns the width-1 constant for b.
func (c *Context) Bool(b bool) *Expr {
	if b {
		return c.Const(1, 1)
	}
	return c.Const(1, 0)
}

// True returns the width-1 constant 1.
func (c *Context) True() *Expr { return c.Const(1, 1) }

// False returns the width-1 constant 0.
func (c *Context) False() *Expr { return c.Const(1, 0) }

// Var returns the free variable with the given name and width. Asking for
// an existing name with a different width is a programming error.
func (c *Context) Var(name string, width int) *Expr {
	checkWidth(width)
	if e, ok := c.vars[name]; ok {
		if e.Width != width {
			panic(fmt.Sprintf("bv: variable %q redeclared with width %d (was %d)", name, width, e.Width))
		}
		return e
	}
	k := exprKey{op: OpVar, width: width, name: name}
	e := c.get(k, func() *Expr {
		return &Expr{Op: OpVar, Width: width, Name: name}
	})
	c.vars[name] = e
	return e
}

func (c *Context) binKey(op Op, w int, a, b *Expr) exprKey {
	return exprKey{op: op, width: w, a0: a.id, a1: b.id}
}

func (c *Context) mkBin(op Op, w int, a, b *Expr) *Expr {
	return c.get(c.binKey(op, w, a, b), func() *Expr {
		return &Expr{Op: op, Width: w, Args: []*Expr{a, b}}
	})
}

func sameWidth(a, b *Expr) {
	if a.Width != b.Width {
		panic(fmt.Sprintf("bv: width mismatch %d vs %d in %s / %s", a.Width, b.Width, a, b))
	}
}

// Not returns the bitwise complement of a.
func (c *Context) Not(a *Expr) *Expr {
	if a.Op == OpConst {
		return c.Const(a.Width, ^a.Val)
	}
	if a.Op == OpNot {
		return a.Args[0] // ~~x = x
	}
	// De-Morgan-free simplification for comparisons at width 1:
	// ~(a==b) etc. stays as-is; bitblast handles it cheaply.
	k := exprKey{op: OpNot, width: a.Width, a0: a.id}
	return c.get(k, func() *Expr {
		return &Expr{Op: OpNot, Width: a.Width, Args: []*Expr{a}}
	})
}

// And returns the bitwise conjunction of a and b.
func (c *Context) And(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a.Op == OpConst && b.Op == OpConst {
		return c.Const(a.Width, a.Val&b.Val)
	}
	if a.Op == OpConst {
		a, b = b, a
	}
	if b.Op == OpConst {
		switch b.Val {
		case 0:
			return b // x & 0 = 0
		case Mask(a.Width):
			return a // x & ~0 = x
		}
	}
	if a == b {
		return a
	}
	if a.Op == OpNot && a.Args[0] == b || b.Op == OpNot && b.Args[0] == a {
		return c.Const(a.Width, 0)
	}
	if a.id > b.id {
		a, b = b, a // commutative: canonical operand order
	}
	return c.mkBin(OpAnd, a.Width, a, b)
}

// Or returns the bitwise disjunction of a and b.
func (c *Context) Or(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a.Op == OpConst && b.Op == OpConst {
		return c.Const(a.Width, a.Val|b.Val)
	}
	if a.Op == OpConst {
		a, b = b, a
	}
	if b.Op == OpConst {
		switch b.Val {
		case 0:
			return a // x | 0 = x
		case Mask(a.Width):
			return b // x | ~0 = ~0
		}
	}
	if a == b {
		return a
	}
	if a.Op == OpNot && a.Args[0] == b || b.Op == OpNot && b.Args[0] == a {
		return c.Const(a.Width, Mask(a.Width))
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.mkBin(OpOr, a.Width, a, b)
}

// Xor returns the bitwise exclusive-or of a and b.
func (c *Context) Xor(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a.Op == OpConst && b.Op == OpConst {
		return c.Const(a.Width, a.Val^b.Val)
	}
	if a.Op == OpConst {
		a, b = b, a
	}
	if b.Op == OpConst {
		switch b.Val {
		case 0:
			return a // x ^ 0 = x
		case Mask(a.Width):
			return c.Not(a) // x ^ ~0 = ~x
		}
	}
	if a == b {
		return c.Const(a.Width, 0)
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.mkBin(OpXor, a.Width, a, b)
}

// Add returns a+b modulo 2^width.
func (c *Context) Add(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a.Op == OpConst && b.Op == OpConst {
		return c.Const(a.Width, a.Val+b.Val)
	}
	if a.Op == OpConst {
		a, b = b, a
	}
	if b.Op == OpConst && b.Val == 0 {
		return a // x + 0 = x
	}
	// (x + c1) + c2 = x + (c1+c2)
	if b.Op == OpConst && a.Op == OpAdd && a.Args[1].Op == OpConst {
		return c.Add(a.Args[0], c.Const(a.Width, a.Args[1].Val+b.Val))
	}
	if a.id > b.id && b.Op != OpConst {
		a, b = b, a
	}
	return c.mkBin(OpAdd, a.Width, a, b)
}

// Sub returns a-b modulo 2^width.
func (c *Context) Sub(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a.Op == OpConst && b.Op == OpConst {
		return c.Const(a.Width, a.Val-b.Val)
	}
	if b.Op == OpConst && b.Val == 0 {
		return a // x - 0 = x
	}
	if a == b {
		return c.Const(a.Width, 0)
	}
	if b.Op == OpConst {
		// x - c = x + (-c): reuse Add's reassociation.
		return c.Add(a, c.Const(a.Width, -b.Val))
	}
	return c.mkBin(OpSub, a.Width, a, b)
}

// Mul returns a*b modulo 2^width.
func (c *Context) Mul(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a.Op == OpConst && b.Op == OpConst {
		return c.Const(a.Width, a.Val*b.Val)
	}
	if a.Op == OpConst {
		a, b = b, a
	}
	if b.Op == OpConst {
		switch b.Val {
		case 0:
			return b // x * 0 = 0
		case 1:
			return a // x * 1 = x
		}
	}
	if a.id > b.id && b.Op != OpConst {
		a, b = b, a
	}
	return c.mkBin(OpMul, a.Width, a, b)
}

// UDiv returns a/b (unsigned); division by zero yields all-ones per SMT-LIB.
func (c *Context) UDiv(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a.Op == OpConst && b.Op == OpConst {
		if b.Val == 0 {
			return c.Const(a.Width, Mask(a.Width))
		}
		return c.Const(a.Width, a.Val/b.Val)
	}
	if b.Op == OpConst && b.Val == 1 {
		return a // x / 1 = x
	}
	return c.mkBin(OpUDiv, a.Width, a, b)
}

// UMod returns a%b (unsigned); x%0 = x per SMT-LIB.
func (c *Context) UMod(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a.Op == OpConst && b.Op == OpConst {
		if b.Val == 0 {
			return a
		}
		return c.Const(a.Width, a.Val%b.Val)
	}
	if b.Op == OpConst && b.Val == 1 {
		return c.Const(a.Width, 0) // x % 1 = 0
	}
	return c.mkBin(OpUMod, a.Width, a, b)
}

// Shl returns a << b, with shifts ≥ width yielding zero.
func (c *Context) Shl(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a.Op == OpConst && b.Op == OpConst {
		if b.Val >= uint64(a.Width) {
			return c.Const(a.Width, 0)
		}
		return c.Const(a.Width, a.Val<<b.Val)
	}
	if b.Op == OpConst && b.Val == 0 {
		return a
	}
	return c.mkBin(OpShl, a.Width, a, b)
}

// Lshr returns a >> b (logical), with shifts ≥ width yielding zero.
func (c *Context) Lshr(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a.Op == OpConst && b.Op == OpConst {
		if b.Val >= uint64(a.Width) {
			return c.Const(a.Width, 0)
		}
		return c.Const(a.Width, a.Val>>b.Val)
	}
	if b.Op == OpConst && b.Val == 0 {
		return a
	}
	return c.mkBin(OpLshr, a.Width, a, b)
}

// Eq returns the width-1 comparison a == b.
func (c *Context) Eq(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a == b {
		return c.True()
	}
	if a.Op == OpConst && b.Op == OpConst {
		return c.Bool(a.Val == b.Val)
	}
	if a.Width == 1 {
		// At width 1, x == 1 is x and x == 0 is ~x.
		if b.Op == OpConst {
			if b.Val == 1 {
				return a
			}
			return c.Not(a)
		}
		if a.Op == OpConst {
			if a.Val == 1 {
				return b
			}
			return c.Not(b)
		}
	}
	// Disjoint-constant pruning: (x==c1)==... handled by callers; here
	// normalize constant to the right for a canonical form.
	if a.Op == OpConst {
		a, b = b, a
	}
	if a.id > b.id && b.Op != OpConst {
		a, b = b, a
	}
	return c.mkBin(OpEq, 1, a, b)
}

// Ne returns the width-1 comparison a != b.
func (c *Context) Ne(a, b *Expr) *Expr { return c.Not(c.Eq(a, b)) }

// Ult returns the width-1 unsigned comparison a < b.
func (c *Context) Ult(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a == b {
		return c.False()
	}
	if a.Op == OpConst && b.Op == OpConst {
		return c.Bool(a.Val < b.Val)
	}
	if b.Op == OpConst && b.Val == 0 {
		return c.False() // nothing is < 0 unsigned
	}
	if a.Op == OpConst && a.Val == Mask(b.Width) {
		return c.False() // all-ones is < nothing
	}
	return c.mkBin(OpUlt, 1, a, b)
}

// Ule returns the width-1 unsigned comparison a <= b.
func (c *Context) Ule(a, b *Expr) *Expr {
	sameWidth(a, b)
	if a == b {
		return c.True()
	}
	if a.Op == OpConst && b.Op == OpConst {
		return c.Bool(a.Val <= b.Val)
	}
	if a.Op == OpConst && a.Val == 0 {
		return c.True() // 0 <= everything
	}
	if b.Op == OpConst && b.Val == Mask(a.Width) {
		return c.True() // everything <= all-ones
	}
	return c.mkBin(OpUle, 1, a, b)
}

// Ugt returns a > b, normalized to Ult(b, a).
func (c *Context) Ugt(a, b *Expr) *Expr { return c.Ult(b, a) }

// Uge returns a >= b, normalized to Ule(b, a).
func (c *Context) Uge(a, b *Expr) *Expr { return c.Ule(b, a) }

// Ite returns "if cond then a else b"; cond must have width 1.
func (c *Context) Ite(cond, a, b *Expr) *Expr {
	if cond.Width != 1 {
		panic("bv: Ite condition must have width 1")
	}
	sameWidth(a, b)
	if cond.IsTrue() {
		return a
	}
	if cond.IsFalse() {
		return b
	}
	if a == b {
		return a
	}
	if a.Width == 1 {
		// Boolean Ite folds into and/or form for better simplification.
		if a.IsTrue() && b.IsFalse() {
			return cond
		}
		if a.IsFalse() && b.IsTrue() {
			return c.Not(cond)
		}
		if a.IsTrue() {
			return c.Or(cond, b)
		}
		if a.IsFalse() {
			return c.And(c.Not(cond), b)
		}
		if b.IsTrue() {
			return c.Or(c.Not(cond), a)
		}
		if b.IsFalse() {
			return c.And(cond, a)
		}
	}
	k := exprKey{op: OpIte, width: a.Width, a0: cond.id, a1: a.id, a2: b.id}
	return c.get(k, func() *Expr {
		return &Expr{Op: OpIte, Width: a.Width, Args: []*Expr{cond, a, b}}
	})
}

// Concat returns hi ++ lo, with hi in the high-order bits.
func (c *Context) Concat(hi, lo *Expr) *Expr {
	w := hi.Width + lo.Width
	checkWidth(w)
	if hi.Op == OpConst && lo.Op == OpConst {
		return c.Const(w, hi.Val<<uint(lo.Width)|lo.Val)
	}
	if hi.Op == OpConst && hi.Val == 0 {
		return c.ZeroExt(lo, w)
	}
	k := exprKey{op: OpConcat, width: w, a0: hi.id, a1: lo.id}
	return c.get(k, func() *Expr {
		return &Expr{Op: OpConcat, Width: w, Args: []*Expr{hi, lo}}
	})
}

// Extract returns bits hi..lo (inclusive, 0 = LSB) of a.
func (c *Context) Extract(a *Expr, hi, lo int) *Expr {
	if lo < 0 || hi >= a.Width || hi < lo {
		panic(fmt.Sprintf("bv: bad extract [%d:%d] of width %d", hi, lo, a.Width))
	}
	w := hi - lo + 1
	if w == a.Width {
		return a
	}
	if a.Op == OpConst {
		return c.Const(w, a.Val>>uint(lo))
	}
	if a.Op == OpZext {
		inner := a.Args[0]
		if lo >= inner.Width {
			return c.Const(w, 0) // extracting only padding
		}
		if hi < inner.Width {
			return c.Extract(inner, hi, lo)
		}
	}
	if a.Op == OpConcat {
		hiPart, loPart := a.Args[0], a.Args[1]
		if hi < loPart.Width {
			return c.Extract(loPart, hi, lo)
		}
		if lo >= loPart.Width {
			return c.Extract(hiPart, hi-loPart.Width, lo-loPart.Width)
		}
	}
	if a.Op == OpExtract {
		return c.Extract(a.Args[0], a.Lo+hi, a.Lo+lo)
	}
	k := exprKey{op: OpExtract, width: w, hi: hi, lo: lo, a0: a.id}
	return c.get(k, func() *Expr {
		return &Expr{Op: OpExtract, Width: w, Hi: hi, Lo: lo, Args: []*Expr{a}}
	})
}

// ZeroExt zero-extends a to the given width (≥ a.Width).
func (c *Context) ZeroExt(a *Expr, width int) *Expr {
	checkWidth(width)
	if width == a.Width {
		return a
	}
	if width < a.Width {
		panic(fmt.Sprintf("bv: ZeroExt narrows %d to %d", a.Width, width))
	}
	if a.Op == OpConst {
		return c.Const(width, a.Val)
	}
	if a.Op == OpZext {
		a = a.Args[0]
	}
	k := exprKey{op: OpZext, width: width, a0: a.id}
	return c.get(k, func() *Expr {
		return &Expr{Op: OpZext, Width: width, Args: []*Expr{a}}
	})
}

// Resize zero-extends or truncates a to width.
func (c *Context) Resize(a *Expr, width int) *Expr {
	switch {
	case width == a.Width:
		return a
	case width > a.Width:
		return c.ZeroExt(a, width)
	default:
		return c.Extract(a, width-1, 0)
	}
}

// NonZero returns the width-1 truth value of a (a != 0), the paper's
// "values and header fields evaluate to true if they are non-zero".
func (c *Context) NonZero(a *Expr) *Expr {
	if a.Width == 1 {
		return a
	}
	return c.Ne(a, c.Const(a.Width, 0))
}
