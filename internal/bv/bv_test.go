package bv

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstMasking(t *testing.T) {
	c := NewContext()
	e := c.Const(8, 0x1ff)
	if e.Val != 0xff {
		t.Fatalf("Const(8, 0x1ff).Val = %#x, want 0xff", e.Val)
	}
	if got := c.Const(64, ^uint64(0)); got.Val != ^uint64(0) {
		t.Fatalf("64-bit all-ones mangled: %#x", got.Val)
	}
}

func TestInterning(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 16)
	y := c.Var("y", 16)
	a := c.Add(x, y)
	b := c.Add(x, y)
	if a != b {
		t.Fatal("identical Add expressions not interned to same pointer")
	}
	// Commutative canonicalization: x+y and y+x intern identically.
	if c.Add(y, x) != a {
		t.Fatal("commuted Add not canonicalized")
	}
	if c.And(y, x) != c.And(x, y) || c.Or(y, x) != c.Or(x, y) ||
		c.Xor(y, x) != c.Xor(x, y) || c.Mul(y, x) != c.Mul(x, y) {
		t.Fatal("commuted bitwise/mul ops not canonicalized")
	}
	if c.Eq(x, y) != c.Eq(y, x) {
		t.Fatal("commuted Eq not canonicalized")
	}
}

func TestVarRedeclarePanics(t *testing.T) {
	c := NewContext()
	c.Var("x", 8)
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring x at a new width did not panic")
		}
	}()
	c.Var("x", 16)
}

func TestIdentities(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 32)
	zero := c.Const(32, 0)
	ones := c.Const(32, Mask(32))
	one := c.Const(32, 1)

	cases := []struct {
		name string
		got  *Expr
		want *Expr
	}{
		{"x+0", c.Add(x, zero), x},
		{"x-0", c.Sub(x, zero), x},
		{"x-x", c.Sub(x, x), zero},
		{"x*0", c.Mul(x, zero), zero},
		{"x*1", c.Mul(x, one), x},
		{"x&0", c.And(x, zero), zero},
		{"x&~0", c.And(x, ones), x},
		{"x|0", c.Or(x, zero), x},
		{"x|~0", c.Or(x, ones), ones},
		{"x^0", c.Xor(x, zero), x},
		{"x^x", c.Xor(x, x), zero},
		{"x^~0", c.Xor(x, ones), c.Not(x)},
		{"~~x", c.Not(c.Not(x)), x},
		{"x&~x", c.And(x, c.Not(x)), zero},
		{"x|~x", c.Or(x, c.Not(x)), ones},
		{"x/1", c.UDiv(x, one), x},
		{"x%1", c.UMod(x, one), zero},
		{"x<<0", c.Shl(x, zero), x},
		{"x>>0", c.Lshr(x, zero), x},
		{"x==x", c.Eq(x, x), c.True()},
		{"x<x", c.Ult(x, x), c.False()},
		{"x<=x", c.Ule(x, x), c.True()},
		{"x<0", c.Ult(x, zero), c.False()},
		{"0<=x", c.Ule(zero, x), c.True()},
		{"(x+1)+2", c.Add(c.Add(x, one), c.Const(32, 2)), c.Add(x, c.Const(32, 3))},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: got %s, want %s", tc.name, tc.got, tc.want)
		}
	}
}

func TestIteSimplification(t *testing.T) {
	c := NewContext()
	p := c.Var("p", 1)
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	if c.Ite(c.True(), x, y) != x || c.Ite(c.False(), x, y) != y {
		t.Fatal("constant-condition Ite not folded")
	}
	if c.Ite(p, x, x) != x {
		t.Fatal("Ite with equal branches not folded")
	}
	if c.Ite(p, c.True(), c.False()) != p {
		t.Fatal("boolean Ite(p,1,0) != p")
	}
	if c.Ite(p, c.False(), c.True()) != c.Not(p) {
		t.Fatal("boolean Ite(p,0,1) != ~p")
	}
}

func TestWidth1Eq(t *testing.T) {
	c := NewContext()
	p := c.Var("p", 1)
	if c.Eq(p, c.True()) != p {
		t.Fatal("p == 1 should simplify to p")
	}
	if c.Eq(p, c.False()) != c.Not(p) {
		t.Fatal("p == 0 should simplify to ~p")
	}
}

func TestExtractConcat(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 16)
	y := c.Var("y", 8)
	cc := c.Concat(x, y) // width 24, x in bits 23..8
	if cc.Width != 24 {
		t.Fatalf("concat width = %d, want 24", cc.Width)
	}
	if c.Extract(cc, 7, 0) != y {
		t.Fatal("extract of low concat part should return y")
	}
	if c.Extract(cc, 23, 8) != x {
		t.Fatal("extract of high concat part should return x")
	}
	z := c.ZeroExt(y, 32)
	if c.Extract(z, 7, 0) != y {
		t.Fatal("extract of zext payload should return y")
	}
	if got := c.Extract(z, 31, 8); !got.IsConst() || got.Val != 0 {
		t.Fatalf("extract of zext padding should be 0, got %s", got)
	}
	// Nested extract composes.
	e1 := c.Extract(x, 11, 4)
	if c.Extract(e1, 3, 0) != c.Extract(x, 7, 4) {
		t.Fatal("nested extract did not compose")
	}
}

func TestResize(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 16)
	if got := c.Resize(x, 16); got != x {
		t.Fatal("identity resize changed expr")
	}
	if got := c.Resize(x, 8); got != c.Extract(x, 7, 0) {
		t.Fatal("narrowing resize is not low extract")
	}
	if got := c.Resize(x, 32); got.Op != OpZext || got.Width != 32 {
		t.Fatal("widening resize is not zext")
	}
}

func TestEvalBasics(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	env := map[string]uint64{"x": 200, "y": 100}
	cases := []struct {
		e    *Expr
		want uint64
	}{
		{c.Add(x, y), 44}, // 300 mod 256
		{c.Sub(y, x), 156},
		{c.Mul(x, y), (200 * 100) & 0xff},
		{c.UDiv(x, y), 2},
		{c.UMod(x, y), 0},
		{c.UDiv(x, c.Const(8, 0)), 0xff},
		{c.UMod(x, c.Const(8, 0)), 200},
		{c.Ult(y, x), 1},
		{c.Ule(x, y), 0},
		{c.Eq(x, c.Const(8, 200)), 1},
		{c.Shl(y, c.Const(8, 1)), 200},
		{c.Lshr(x, c.Const(8, 3)), 25},
		{c.Ite(c.Ult(y, x), x, y), 200},
		{c.Concat(c.Extract(x, 3, 0), c.Extract(y, 3, 0)), (200&0xf)<<4 | 100&0xf},
	}
	for i, tc := range cases {
		if got := Eval(tc.e, env); got != tc.want {
			t.Errorf("case %d (%s): got %d, want %d", i, tc.e, got, tc.want)
		}
	}
}

// randExpr builds a random expression over variables a,b,c at the given
// width, with depth-bounded structure. Used by the equivalence properties.
func randExpr(c *Context, r *rand.Rand, width, depth int) *Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return c.Const(width, r.Uint64())
		case 1:
			return c.Var("a", width)
		default:
			return c.Var("b", width)
		}
	}
	a := randExpr(c, r, width, depth-1)
	b := randExpr(c, r, width, depth-1)
	switch r.Intn(12) {
	case 0:
		return c.Add(a, b)
	case 1:
		return c.Sub(a, b)
	case 2:
		return c.Mul(a, b)
	case 3:
		return c.And(a, b)
	case 4:
		return c.Or(a, b)
	case 5:
		return c.Xor(a, b)
	case 6:
		return c.Not(a)
	case 7:
		return c.Ite(c.NonZero(randExpr(c, r, width, depth-1)), a, b)
	case 8:
		return c.UDiv(a, b)
	case 9:
		return c.UMod(a, b)
	case 10:
		return c.Shl(a, b)
	default:
		return c.Lshr(a, b)
	}
}

// TestSimplifierSoundness: smart-constructor output must agree with a
// rebuild through an un-simplifying reference path. Since constructors are
// the only way to build nodes, we instead check the algebra directly:
// rewriting sub-expressions by their evaluated constants never changes the
// value of the whole expression.
func TestSimplifierSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		c := NewContext()
		width := 1 + r.Intn(64)
		e := randExpr(c, r, width, 4)
		env := map[string]uint64{"a": r.Uint64(), "b": r.Uint64()}
		v1 := Eval(e, env)
		// Substituting the environment via constants must evaluate
		// to the same value (exercises every folding rule).
		folded := substConst(c, e, env)
		if !folded.IsConst() {
			t.Fatalf("substituting all vars did not fold to const: %s", folded)
		}
		if folded.Val != v1 {
			t.Fatalf("width %d: Eval=%d but const-fold=%d for %s", width, v1, folded.Val, e)
		}
	}
}

// substConst rebuilds e with variables replaced by constants from env.
func substConst(c *Context, e *Expr, env map[string]uint64) *Expr {
	switch e.Op {
	case OpConst:
		return e
	case OpVar:
		return c.Const(e.Width, env[e.Name])
	}
	args := make([]*Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = substConst(c, a, env)
	}
	switch e.Op {
	case OpNot:
		return c.Not(args[0])
	case OpAnd:
		return c.And(args[0], args[1])
	case OpOr:
		return c.Or(args[0], args[1])
	case OpXor:
		return c.Xor(args[0], args[1])
	case OpAdd:
		return c.Add(args[0], args[1])
	case OpSub:
		return c.Sub(args[0], args[1])
	case OpMul:
		return c.Mul(args[0], args[1])
	case OpUDiv:
		return c.UDiv(args[0], args[1])
	case OpUMod:
		return c.UMod(args[0], args[1])
	case OpShl:
		return c.Shl(args[0], args[1])
	case OpLshr:
		return c.Lshr(args[0], args[1])
	case OpEq:
		return c.Eq(args[0], args[1])
	case OpUlt:
		return c.Ult(args[0], args[1])
	case OpUle:
		return c.Ule(args[0], args[1])
	case OpIte:
		return c.Ite(args[0], args[1], args[2])
	case OpConcat:
		return c.Concat(args[0], args[1])
	case OpExtract:
		return c.Extract(args[0], e.Hi, e.Lo)
	case OpZext:
		return c.ZeroExt(args[0], e.Width)
	default:
		panic("unreachable")
	}
}

// Property: comparison normalization (Ugt/Uge) agrees with direct uint64
// comparison at width 64.
func TestComparisonNormalizationProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		c := NewContext()
		x, y := c.Var("x", 64), c.Var("y", 64)
		env := map[string]uint64{"x": a, "y": b}
		gt := Eval(c.Ugt(x, y), env) == 1
		ge := Eval(c.Uge(x, y), env) == 1
		return gt == (a > b) && ge == (a >= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Vars returns each free variable exactly once.
func TestVarsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		c := NewContext()
		e := randExpr(c, r, 16, 4)
		names := Vars(e, nil)
		seen := map[string]bool{}
		for _, n := range names {
			if seen[n] {
				t.Fatalf("duplicate var %q in Vars result", n)
			}
			seen[n] = true
			if !ContainsVar(e, n) {
				t.Fatalf("Vars reported %q but ContainsVar disagrees", n)
			}
		}
	}
}

func TestSize(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 8)
	e := c.Add(x, x) // DAG: add node + one var node
	if got := Size(e); got != 2 {
		t.Fatalf("Size = %d, want 2 (shared var counted once)", got)
	}
}

func TestStringRendering(t *testing.T) {
	c := NewContext()
	x := c.Var("ttl", 8)
	e := c.Ugt(x, c.Const(8, 0))
	if got := e.String(); got != "(0x0 < ttl)" {
		t.Fatalf("String() = %q", got)
	}
}
