// Package bv implements a hash-consed bitvector expression DAG with an
// algebraic simplifier. It is the value domain of the symbolic executor:
// every packet field, metadata cell and path-condition term is a *Expr.
//
// Expressions are immutable and interned per Context, so structural equality
// coincides with pointer equality within one Context. A Context is not safe
// for concurrent use; parallel submodel executions each own a Context.
//
// Widths run from 1 to 64 bits. Boolean values are width-1 bitvectors
// (0 = false, 1 = true), mirroring how the paper's C models encode the
// instrumentation booleans for forward(), traverse_path() and friends.
package bv

import (
	"fmt"
	"strings"
)

// MaxWidth is the widest supported bitvector. The widest field in any
// program evaluated by the paper is 48 bits (Ethernet addresses), so a
// 64-bit ceiling loses nothing relevant (see DESIGN.md §2).
const MaxWidth = 64

// Op enumerates expression node kinds.
type Op uint8

// Expression node kinds. Comparison results always have width 1.
const (
	OpConst   Op = iota // literal; Val holds the (masked) value
	OpVar               // free symbolic variable; Name holds its identity
	OpNot               // bitwise complement
	OpAnd               // bitwise and
	OpOr                // bitwise or
	OpXor               // bitwise xor
	OpAdd               // modular addition
	OpSub               // modular subtraction
	OpMul               // modular multiplication
	OpUDiv              // unsigned division (x/0 = all-ones, as in SMT-LIB)
	OpUMod              // unsigned remainder (x%0 = x, as in SMT-LIB)
	OpShl               // shift left; shift amount is Args[1]
	OpLshr              // logical shift right
	OpEq                // equality, width-1 result
	OpUlt               // unsigned less-than, width-1 result
	OpUle               // unsigned less-or-equal, width-1 result
	OpIte               // if-then-else; Args[0] has width 1
	OpConcat            // Args[0] is high bits, Args[1] low bits
	OpExtract           // bits Hi..Lo (inclusive) of Args[0]
	OpZext              // zero extension of Args[0] to Width
)

var opNames = [...]string{
	OpConst: "const", OpVar: "var", OpNot: "~", OpAnd: "&", OpOr: "|",
	OpXor: "^", OpAdd: "+", OpSub: "-", OpMul: "*", OpUDiv: "/",
	OpUMod: "%", OpShl: "<<", OpLshr: ">>", OpEq: "==", OpUlt: "<",
	OpUle: "<=", OpIte: "ite", OpConcat: "++", OpExtract: "extract",
	OpZext: "zext",
}

// String returns the operator's surface syntax.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Expr is one immutable node of the expression DAG. Create Exprs only
// through a Context; the zero value is not meaningful.
type Expr struct {
	Op    Op
	Width int
	Val   uint64  // OpConst only
	Name  string  // OpVar only
	Hi    int     // OpExtract only
	Lo    int     // OpExtract only
	Args  []*Expr // operands
	id    uint64  // interning identity, unique per Context
}

// ID returns the node's interning identity. IDs are dense, start at 1 and
// are stable for the lifetime of the owning Context.
func (e *Expr) ID() uint64 { return e.id }

// IsConst reports whether e is a literal.
func (e *Expr) IsConst() bool { return e.Op == OpConst }

// IsTrue reports whether e is the width-1 constant 1.
func (e *Expr) IsTrue() bool { return e.Op == OpConst && e.Width == 1 && e.Val == 1 }

// IsFalse reports whether e is the width-1 constant 0.
func (e *Expr) IsFalse() bool { return e.Op == OpConst && e.Width == 1 && e.Val == 0 }

// Mask returns the bitmask for a width in [1, MaxWidth].
func Mask(width int) uint64 {
	if width <= 0 {
		panic(fmt.Sprintf("bv: non-positive width %d", width))
	}
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// String renders the expression in a compact prefix/infix mix for reports
// and debugging.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *Expr) write(b *strings.Builder) {
	switch e.Op {
	case OpConst:
		fmt.Fprintf(b, "0x%x", e.Val)
	case OpVar:
		b.WriteString(e.Name)
	case OpNot:
		b.WriteString("~")
		e.Args[0].write(b)
	case OpIte:
		b.WriteString("ite(")
		e.Args[0].write(b)
		b.WriteString(", ")
		e.Args[1].write(b)
		b.WriteString(", ")
		e.Args[2].write(b)
		b.WriteString(")")
	case OpExtract:
		e.Args[0].write(b)
		fmt.Fprintf(b, "[%d:%d]", e.Hi, e.Lo)
	case OpZext:
		fmt.Fprintf(b, "zext%d(", e.Width)
		e.Args[0].write(b)
		b.WriteString(")")
	default:
		b.WriteString("(")
		e.Args[0].write(b)
		b.WriteString(" ")
		b.WriteString(e.Op.String())
		b.WriteString(" ")
		e.Args[1].write(b)
		b.WriteString(")")
	}
}

// Vars appends the names of all free variables in e to dst, each once, and
// returns the extended slice. Traversal order is deterministic.
func Vars(e *Expr, dst []string) []string {
	seen := make(map[*Expr]bool)
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if seen[x] {
			return
		}
		seen[x] = true
		if x.Op == OpVar {
			for _, n := range dst {
				if n == x.Name {
					return
				}
			}
			dst = append(dst, x.Name)
			return
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
	return dst
}

// ContainsVar reports whether variable name occurs free in e.
func ContainsVar(e *Expr, name string) bool {
	if e.Op == OpVar {
		return e.Name == name
	}
	for _, a := range e.Args {
		if ContainsVar(a, name) {
			return true
		}
	}
	return false
}

// Size returns the number of distinct DAG nodes reachable from e.
func Size(e *Expr) int {
	seen := make(map[*Expr]bool)
	var walk func(x *Expr) int
	walk = func(x *Expr) int {
		if seen[x] {
			return 0
		}
		seen[x] = true
		n := 1
		for _, a := range x.Args {
			n += walk(a)
		}
		return n
	}
	return walk(e)
}
