package p4

import (
	"fmt"
	"strings"
)

// Lexer tokenizes P4_16 source text. It handles line and block comments,
// width-prefixed number literals (8w0xFF), and double-quoted strings (used
// by @assert / @assume annotation bodies).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	file string
}

// NewLexer returns a lexer over src; file names error messages.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, file: file}
}

// SyntaxError is a positioned lexing or parsing error.
type SyntaxError struct {
	File string
	Pos  Pos
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

func (l *Lexer) errorf(pos Pos, format string, args ...any) error {
	return &SyntaxError{File: l.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	ch := l.src[l.off]
	l.off++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		ch := l.peek()
		switch {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(ch byte) bool {
	return ch == '_' || ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z'
}

func isIdentCont(ch byte) bool { return isIdentStart(ch) || ch >= '0' && ch <= '9' }

func isDigit(ch byte) bool { return ch >= '0' && ch <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	ch := l.peek()

	switch {
	case isIdentStart(ch):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		// A width-prefixed literal like 8w15 lexes as number below (it
		// starts with a digit); plain "_" is its own token.
		if text == "_" {
			return Token{Kind: TokUnderscore, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil

	case isDigit(ch):
		start := l.off
		for l.off < len(l.src) && (isIdentCont(l.peek())) {
			// consume digits, hex letters, 'x', 'b', 'w' prefix parts
			l.advance()
		}
		text := l.src[start:l.off]
		return Token{Kind: TokNumber, Text: text, Pos: pos}, nil

	case ch == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.off >= len(l.src) {
				return Token{}, l.errorf(pos, "unterminated string literal")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' && l.off < len(l.src) {
				c = l.advance()
			}
			sb.WriteByte(c)
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: pos}, nil
	}

	// Operators / punctuation.
	two := func(k TokenKind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: tokenNames[k], Pos: pos}, nil
	}
	one := func(k TokenKind) (Token, error) {
		l.advance()
		return Token{Kind: k, Text: tokenNames[k], Pos: pos}, nil
	}
	switch ch {
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ':':
		return one(TokColon)
	case ',':
		return one(TokComma)
	case '.':
		return one(TokDot)
	case '?':
		return one(TokQuestion)
	case '@':
		return one(TokAt)
	case '~':
		return one(TokTilde)
	case '^':
		return one(TokCaret)
	case '+':
		return one(TokPlus)
	case '-':
		return one(TokMinus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '=':
		if l.peek2() == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '!':
		if l.peek2() == '=' {
			return two(TokNe)
		}
		return one(TokNot)
	case '<':
		switch l.peek2() {
		case '=':
			return two(TokLe)
		case '<':
			return two(TokShl)
		}
		return one(TokLt)
	case '>':
		switch l.peek2() {
		case '=':
			return two(TokGe)
		case '>':
			return two(TokShr)
		}
		return one(TokGt)
	case '&':
		if l.peek2() == '&' {
			return two(TokAndAnd)
		}
		return one(TokAmp)
	case '|':
		if l.peek2() == '|' {
			return two(TokOrOr)
		}
		return one(TokPipe)
	}
	return Token{}, l.errorf(pos, "unexpected character %q", string(ch))
}

// Tokenize lexes the entire input, returning all tokens up to and including
// the EOF token.
func Tokenize(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

// ParseNumber decodes a P4 integer literal: decimal, 0x hex, 0b binary,
// optionally width-prefixed as in "8w255" or "4w0xF". It returns the value,
// the declared width (0 if none) and an error for malformed literals.
func ParseNumber(text string) (value uint64, width int, err error) {
	body := text
	if i := strings.IndexByte(text, 'w'); i > 0 {
		wpart := text[:i]
		if allDigits(wpart) {
			w, e := parseUint(wpart, 10)
			if e != nil {
				return 0, 0, fmt.Errorf("bad width prefix in %q", text)
			}
			width = int(w)
			body = text[i+1:]
		}
	}
	base := 10
	switch {
	case strings.HasPrefix(body, "0x") || strings.HasPrefix(body, "0X"):
		base = 16
		body = body[2:]
	case strings.HasPrefix(body, "0b") || strings.HasPrefix(body, "0B"):
		base = 2
		body = body[2:]
	}
	if body == "" {
		return 0, 0, fmt.Errorf("empty number literal %q", text)
	}
	v, e := parseUint(body, base)
	if e != nil {
		return 0, 0, fmt.Errorf("bad number literal %q: %v", text, e)
	}
	return v, width, nil
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return len(s) > 0
}

func parseUint(s string, base int) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' {
			continue
		}
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("invalid digit %q", string(c))
		}
		if d >= uint64(base) {
			return 0, fmt.Errorf("digit %q out of range for base %d", string(c), base)
		}
		v = v*uint64(base) + d
	}
	return v, nil
}
