package p4

// This file defines the abstract syntax tree for the supported P4_16
// subset. The tree is produced by Parser and decorated by the type checker
// (typecheck.go) before translation to the model IR.

// ---------------------------------------------------------------- types --

// Type is a P4 type.
type Type interface{ typeNode() }

// BitType is bit<N>.
type BitType struct{ Width int }

// BoolType is bool.
type BoolType struct{}

// NamedType is an unresolved reference to a typedef/header/struct name.
type NamedType struct{ Name string }

// HeaderRef is a resolved reference to a header declaration.
type HeaderRef struct{ Decl *HeaderDecl }

// StructRef is a resolved reference to a struct declaration.
type StructRef struct{ Decl *StructDecl }

func (*BitType) typeNode()   {}
func (*BoolType) typeNode()  {}
func (*NamedType) typeNode() {}
func (*HeaderRef) typeNode() {}
func (*StructRef) typeNode() {}

// Field is a named member of a header or struct.
type Field struct {
	Name string
	Type Type
	Pos  Pos
}

// ParamDir is a parameter direction.
type ParamDir uint8

// Parameter directions.
const (
	DirNone ParamDir = iota
	DirIn
	DirOut
	DirInOut
)

// Param is a parser/control/action parameter.
type Param struct {
	Dir  ParamDir
	Type Type
	Name string
	Pos  Pos
}

// ------------------------------------------------------------- program --

// Program is a parsed compilation unit.
type Program struct {
	File     string
	Typedefs []*TypedefDecl
	Consts   []*ConstDecl
	Headers  []*HeaderDecl
	Structs  []*StructDecl
	Parsers  []*ParserDecl
	Controls []*ControlDecl
	Package  *PackageDecl // the V1Switch(...) main instantiation

	// Filled by the type checker:
	headerByName map[string]*HeaderDecl
	structByName map[string]*StructDecl
	constByName  map[string]*ConstDecl
	typedefs     map[string]Type
}

// TypedefDecl is "typedef <type> <name>;".
type TypedefDecl struct {
	Name string
	Type Type
	Pos  Pos
}

// ConstDecl is "const <type> <name> = <value>;".
type ConstDecl struct {
	Name  string
	Type  Type
	Value Expr
	Pos   Pos

	Resolved uint64 // filled by the checker
	Width    int
}

// HeaderDecl declares a packet header type.
type HeaderDecl struct {
	Name   string
	Fields []Field
	Pos    Pos
}

// FieldWidth returns the width of a field, or 0 if absent.
func (h *HeaderDecl) FieldWidth(name string) int {
	for _, f := range h.Fields {
		if f.Name == name {
			if bt, ok := f.Type.(*BitType); ok {
				return bt.Width
			}
			if _, ok := f.Type.(*BoolType); ok {
				return 1
			}
		}
	}
	return 0
}

// StructDecl declares a struct (headers bundle or metadata).
type StructDecl struct {
	Name   string
	Fields []Field
	Pos    Pos
}

// PackageDecl is the main instantiation, e.g.
// V1Switch(MyParser(), MyIngress(), MyEgress(), MyDeparser()) main;
type PackageDecl struct {
	TypeName string
	Args     []string // names of instantiated parser/controls, in order
	Name     string
	Pos      Pos
}

// ------------------------------------------------------------- parsers --

// ParserDecl declares a parser with its states.
type ParserDecl struct {
	Name   string
	Params []Param
	States []*StateDecl
	Pos    Pos
}

// State returns the named state, or nil.
func (p *ParserDecl) State(name string) *StateDecl {
	for _, s := range p.States {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// StateDecl is one parser state.
type StateDecl struct {
	Name       string
	Body       []Stmt
	Transition Transition // nil means implicit accept
	Pos        Pos
}

// Transition is a parser state transition.
type Transition interface{ transitionNode() }

// TransDirect is "transition <target>;" (accept/reject/state name).
type TransDirect struct {
	Target string
	Pos    Pos
}

// TransSelect is "transition select(expr, ...) { cases }".
type TransSelect struct {
	Exprs []Expr
	Cases []SelectCase
	Pos   Pos
}

func (*TransDirect) transitionNode() {}
func (*TransSelect) transitionNode() {}

// SelectCase is one arm of a select: a tuple of key-set values and a target.
type SelectCase struct {
	Values []CaseValue // one per select expression
	Target string
	Pos    Pos
}

// CaseValue is a key-set expression in a select case or const entry.
type CaseValue struct {
	Default bool // "default" or "_"
	Expr    Expr // literal or const name when !Default
	Mask    Expr // optional "value &&& mask" — nil when absent
}

// ------------------------------------------------------------ controls --

// ControlDecl declares a control block: actions, tables, locals, apply.
type ControlDecl struct {
	Name    string
	Params  []Param
	Actions []*ActionDecl
	Tables  []*TableDecl
	Locals  []*LocalDecl // variables and extern instantiations
	Apply   *BlockStmt
	Pos     Pos
}

// Action returns the named action declared in this control, or nil.
func (c *ControlDecl) Action(name string) *ActionDecl {
	for _, a := range c.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Table returns the named table declared in this control, or nil.
func (c *ControlDecl) Table(name string) *TableDecl {
	for _, t := range c.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// ActionDecl declares an action.
type ActionDecl struct {
	Name   string
	Params []Param
	Body   []Stmt
	Pos    Pos
}

// MatchKind is a table key match kind.
type MatchKind uint8

// Match kinds supported by the translator.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
)

// String returns the P4 spelling of the match kind.
func (m MatchKind) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	default:
		return "ternary"
	}
}

// TableKey is one key entry of a table.
type TableKey struct {
	Expr  Expr
	Match MatchKind
	Pos   Pos
}

// TableDecl declares a match-action table.
type TableDecl struct {
	Name          string
	Keys          []TableKey
	Actions       []string
	DefaultAction *ActionCall // nil if unspecified
	Size          int
	ConstEntries  []Entry
	Pos           Pos
}

// ActionCall is an action invocation with constant arguments.
type ActionCall struct {
	Name string
	Args []Expr
	Pos  Pos
}

// Entry is one const table entry: key-set values and the bound action.
type Entry struct {
	Keys   []CaseValue
	Action ActionCall
	Pos    Pos
}

// LocalDecl is a control-local declaration: either a variable or an extern
// instantiation (register/counter/meter).
type LocalDecl struct {
	Kind     LocalKind
	Name     string
	Type     Type   // variable type or register cell type
	Init     Expr   // optional variable initializer
	Size     Expr   // extern instance size argument
	ExternAr []Expr // remaining extern constructor args (e.g. CounterType)
	Pos      Pos
}

// LocalKind discriminates LocalDecl.
type LocalKind uint8

// Local declaration kinds.
const (
	LocalVar LocalKind = iota
	LocalRegister
	LocalCounter
	LocalMeter
)

// ------------------------------------------------------------- statements --

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a braced sequence of statements.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// AssignStmt is "lhs = rhs;".
type AssignStmt struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// CallStmt is an expression statement that must be a call (extract, emit,
// apply, mark_to_drop, setValid, register ops, ...).
type CallStmt struct {
	Call *CallExpr
	Pos  Pos
}

// IfStmt is a conditional with optional else (which may be another IfStmt).
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // nil, *BlockStmt, or *IfStmt
	Pos  Pos
}

// VarDeclStmt declares a local variable inside a body.
type VarDeclStmt struct {
	Name string
	Type Type
	Init Expr // may be nil
	Pos  Pos
}

// AssertStmt is the @assert("...") annotation statement from the paper.
type AssertStmt struct {
	Text string // raw assertion-language source
	Pos  Pos
}

// AssumeStmt is the @assume(...) annotation statement (paper §4.1).
type AssumeStmt struct {
	Cond Expr // a P4 boolean expression
	Pos  Pos
}

// ExitStmt terminates pipeline processing for the packet.
type ExitStmt struct{ Pos Pos }

// ReturnStmt returns from the enclosing action or control.
type ReturnStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()   {}
func (*AssignStmt) stmtNode()  {}
func (*CallStmt) stmtNode()    {}
func (*IfStmt) stmtNode()      {}
func (*VarDeclStmt) stmtNode() {}
func (*AssertStmt) stmtNode()  {}
func (*AssumeStmt) stmtNode()  {}
func (*ExitStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()  {}

// ------------------------------------------------------------ expressions --

// Expr is an expression node. Ty is filled by the type checker.
type Expr interface {
	exprNode()
	Position() Pos
}

// Ident is a bare name.
type Ident struct {
	Name string
	Pos  Pos
	Ty   Type
}

// Member is "x.name" (field access or method selection).
type Member struct {
	X    Expr
	Name string
	Pos  Pos
	Ty   Type
}

// NumberLit is an integer literal; Width 0 means untyped.
type NumberLit struct {
	Value uint64
	Width int
	Pos   Pos
}

// BoolLit is true/false.
type BoolLit struct {
	Value bool
	Pos   Pos
}

// UnaryOp enumerates unary operators.
type UnaryOp uint8

// Unary operators.
const (
	UnNot    UnaryOp = iota // !
	UnBitNot                // ~
	UnNeg                   // -
)

// Unary is a unary operation.
type Unary struct {
	Op  UnaryOp
	X   Expr
	Pos Pos
	Ty  Type
}

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators.
const (
	BinAdd BinaryOp = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinAnd // &
	BinOr  // |
	BinXor // ^
	BinShl
	BinShr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinLAnd // &&
	BinLOr  // ||
)

// Binary is a binary operation.
type Binary struct {
	Op   BinaryOp
	X, Y Expr
	Pos  Pos
	Ty   Type
}

// Ternary is "cond ? a : b".
type Ternary struct {
	Cond, Then, Else Expr
	Pos              Pos
	Ty               Type
}

// CallExpr is a function or method call. Fun is an Ident (free function) or
// Member (method on a receiver such as pkt.extract or table.apply).
type CallExpr struct {
	Fun  Expr
	Args []Expr
	Pos  Pos
	Ty   Type
}

// CastExpr is "(bit<N>) x" or "(bool) x".
type CastExpr struct {
	Type Type
	X    Expr
	Pos  Pos
}

func (*Ident) exprNode()     {}
func (*Member) exprNode()    {}
func (*NumberLit) exprNode() {}
func (*BoolLit) exprNode()   {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Ternary) exprNode()   {}
func (*CallExpr) exprNode()  {}
func (*CastExpr) exprNode()  {}

// Position implementations.
func (e *Ident) Position() Pos     { return e.Pos }
func (e *Member) Position() Pos    { return e.Pos }
func (e *NumberLit) Position() Pos { return e.Pos }
func (e *BoolLit) Position() Pos   { return e.Pos }
func (e *Unary) Position() Pos     { return e.Pos }
func (e *Binary) Position() Pos    { return e.Pos }
func (e *Ternary) Position() Pos   { return e.Pos }
func (e *CallExpr) Position() Pos  { return e.Pos }
func (e *CastExpr) Position() Pos  { return e.Pos }

// PathString renders a Member/Ident chain like "hdr.ipv4.ttl"; it returns
// "" for non-path expressions.
func PathString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *Member:
		base := PathString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Name
	}
	return ""
}
