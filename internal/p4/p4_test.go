package p4

import (
	"strings"
	"testing"
)

const sampleProgram = `
// A small but representative program exercising most supported syntax.
typedef bit<48> EthernetAddress;
const bit<16> TYPE_IPV4 = 0x800;
const bit<9> CPU_PORT = 64;

header ethernet_t {
    EthernetAddress dstAddr;
    EthernetAddress srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<8> diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3> flags;
    bit<13> fragOffset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
}

struct metadata_t {
    bit<8> hop_count;
}

parser MyParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control MyIngress(inout headers_t hdr, inout metadata_t meta,
                  inout standard_metadata_t standard_metadata) {
    register<bit<32>>(1024) flow_bytes;

    action drop() {
        mark_to_drop(standard_metadata);
    }
    action forward(bit<9> port) {
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { hdr.ipv4.dstAddr : lpm; }
        actions = { forward; drop; NoAction; }
        size = 1024;
        default_action = drop();
        const entries = {
            0x0a000001 : forward(1);
            0x0a000002 : forward(CPU_PORT);
        }
    }
    apply {
        if (hdr.ipv4.isValid()) {
            @assume(hdr.ipv4.version == 4);
            ipv4_lpm.apply();
            bit<32> tmp = 0;
            flow_bytes.read(tmp, (bit<32>)standard_metadata.ingress_port);
            flow_bytes.write((bit<32>)standard_metadata.ingress_port, tmp + 1);
        }
        @assert("if(forward(), hdr.ipv4.ttl > 0)");
    }
}

control MyEgress(inout headers_t hdr, inout metadata_t meta,
                 inout standard_metadata_t standard_metadata) {
    apply { }
}

control MyDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(MyParser(), MyIngress(), MyEgress(), MyDeparser()) main;
`

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse("test.p4", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := prog.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

func TestParseSampleProgram(t *testing.T) {
	prog := mustParse(t, sampleProgram)
	if len(prog.Headers) != 2 {
		t.Fatalf("got %d headers, want 2", len(prog.Headers))
	}
	if len(prog.Parsers) != 1 || len(prog.Controls) != 3 {
		t.Fatalf("got %d parsers / %d controls", len(prog.Parsers), len(prog.Controls))
	}
	if prog.Package == nil || prog.Package.TypeName != "V1Switch" {
		t.Fatal("package instantiation missing")
	}
	if got := prog.Package.Args; len(got) != 4 || got[0] != "MyParser" || got[3] != "MyDeparser" {
		t.Fatalf("package args = %v", got)
	}
}

func TestConstResolution(t *testing.T) {
	prog := mustParse(t, sampleProgram)
	v, w, ok := prog.ConstValue("TYPE_IPV4")
	if !ok || v != 0x800 || w != 16 {
		t.Fatalf("TYPE_IPV4 = (%v,%d,%v)", v, w, ok)
	}
}

func TestHeaderWidths(t *testing.T) {
	prog := mustParse(t, sampleProgram)
	h := prog.Header("ipv4_t")
	if h == nil {
		t.Fatal("ipv4_t missing")
	}
	if h.FieldWidth("ttl") != 8 || h.FieldWidth("dstAddr") != 32 || h.FieldWidth("flags") != 3 {
		t.Fatal("field widths wrong")
	}
	eth := prog.Header("ethernet_t")
	if eth.FieldWidth("dstAddr") != 48 {
		t.Fatal("typedef-resolved field width wrong")
	}
}

func TestTableStructure(t *testing.T) {
	prog := mustParse(t, sampleProgram)
	ing := prog.Controls[0]
	tbl := ing.Table("ipv4_lpm")
	if tbl == nil {
		t.Fatal("table missing")
	}
	if len(tbl.Keys) != 1 || tbl.Keys[0].Match != MatchLPM {
		t.Fatal("table key wrong")
	}
	if len(tbl.Actions) != 3 || tbl.DefaultAction == nil || tbl.DefaultAction.Name != "drop" {
		t.Fatal("table actions wrong")
	}
	if len(tbl.ConstEntries) != 2 {
		t.Fatal("const entries wrong")
	}
	if tbl.Size != 1024 {
		t.Fatal("size wrong")
	}
}

func TestAnnotationStatements(t *testing.T) {
	prog := mustParse(t, sampleProgram)
	ing := prog.Controls[0]
	var asserts, assumes int
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *AssertStmt:
				asserts++
				if !strings.Contains(st.Text, "forward()") {
					t.Fatalf("assert text = %q", st.Text)
				}
			case *AssumeStmt:
				assumes++
			case *IfStmt:
				walk(st.Then.Stmts)
				if st.Else != nil {
					walk([]Stmt{st.Else})
				}
			case *BlockStmt:
				walk(st.Stmts)
			}
		}
	}
	walk(ing.Apply.Stmts)
	if asserts != 1 || assumes != 1 {
		t.Fatalf("asserts=%d assumes=%d, want 1/1", asserts, assumes)
	}
}

func TestNumberLiterals(t *testing.T) {
	cases := []struct {
		text  string
		value uint64
		width int
	}{
		{"42", 42, 0},
		{"0x800", 0x800, 0},
		{"0b1010", 10, 0},
		{"8w255", 255, 8},
		{"4w0xF", 15, 4},
		{"16w0b11", 3, 16},
	}
	for _, tc := range cases {
		v, w, err := ParseNumber(tc.text)
		if err != nil {
			t.Fatalf("%q: %v", tc.text, err)
		}
		if v != tc.value || w != tc.width {
			t.Fatalf("%q: got (%d,%d), want (%d,%d)", tc.text, v, w, tc.value, tc.width)
		}
	}
	if _, _, err := ParseNumber("0x"); err == nil {
		t.Fatal("empty hex literal should error")
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"header h {",                      // unterminated
		"header h { bit<0> x; }",          // zero width
		"header h { bit<65> x; }",         // too wide
		"control C() { }",                 // no apply
		"parser P() { }",                  // no start state (checker)
		"control C() { apply { x = ; } }", // bad expr
	}
	for i, src := range cases {
		prog, err := Parse("bad.p4", src)
		if err == nil {
			err = prog.Check()
		}
		if err == nil {
			t.Fatalf("case %d: expected error for %q", i, src)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{
			`header h_t { bit<8> a; } struct hs { h_t h; }
			 control C(inout hs hdr) { apply { hdr.h.b = 1; } }`,
			"no field b",
		},
		{
			`control C() { apply { undefined_var = 1; } }`,
			"undefined name",
		},
		{
			`control C() { table t { actions = { missing; } } apply { t.apply(); } }`,
			"unknown action",
		},
		{
			`header h_t { bit<8> a; bit<16> b; } struct hs { h_t h; }
			 control C(inout hs hdr) { apply { hdr.h.a = hdr.h.a + hdr.h.b; } }`,
			"width mismatch",
		},
	}
	for i, tc := range cases {
		prog, err := Parse("bad.p4", tc.src)
		if err == nil {
			err = prog.Check()
		}
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("case %d: error = %v, want substring %q", i, err, tc.frag)
		}
	}
}

func TestSelectWithMaskAndTuple(t *testing.T) {
	src := `
header h_t { bit<8> a; bit<8> b; }
struct hs { h_t h; }
struct meta_t { bit<1> x; }
parser P(packet_in pkt, out hs hdr, inout meta_t meta) {
    state start {
        pkt.extract(hdr.h);
        transition select(hdr.h.a, hdr.h.b) {
            (0x0F &&& 0x0F, 1): s1;
            (default, _): accept;
        }
    }
    state s1 { transition accept; }
}
control C(inout hs hdr) { apply { } }
V1Switch(P, C) main;
`
	prog := mustParse(t, src)
	sel := prog.Parsers[0].States[0].Transition.(*TransSelect)
	if len(sel.Exprs) != 2 || len(sel.Cases) != 2 {
		t.Fatalf("select shape wrong: %d exprs, %d cases", len(sel.Exprs), len(sel.Cases))
	}
	if sel.Cases[0].Values[0].Mask == nil {
		t.Fatal("mask not parsed")
	}
	if !sel.Cases[1].Values[0].Default || !sel.Cases[1].Values[1].Default {
		t.Fatal("default/don't-care not parsed")
	}
}

func TestCommentsAndStrings(t *testing.T) {
	src := `
/* block
   comment */
control C() {
    apply {
        // line comment
        @assert("constant(x) && forward()");
    }
}
V1Switch(C) main;
`
	prog, err := Parse("t.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Controls[0].Apply.Stmts[0].(*AssertStmt)
	if st.Text != "constant(x) && forward()" {
		t.Fatalf("assert text = %q", st.Text)
	}
}

func TestParseExprString(t *testing.T) {
	e, err := ParseExprString("x", "a.b + 3 == 7 && !c")
	if err != nil {
		t.Fatal(err)
	}
	bin, ok := e.(*Binary)
	if !ok || bin.Op != BinLAnd {
		t.Fatalf("top-level op wrong: %T", e)
	}
	if _, err := ParseExprString("x", "a +"); err == nil {
		t.Fatal("truncated expr should error")
	}
	if _, err := ParseExprString("x", "a b"); err == nil {
		t.Fatal("trailing input should error")
	}
}

func TestTernaryExpr(t *testing.T) {
	e, err := ParseExprString("x", "a == 1 ? b : c")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*Ternary); !ok {
		t.Fatalf("want Ternary, got %T", e)
	}
}

func TestPathString(t *testing.T) {
	e, _ := ParseExprString("x", "hdr.ipv4.ttl")
	if got := PathString(e); got != "hdr.ipv4.ttl" {
		t.Fatalf("PathString = %q", got)
	}
	e2, _ := ParseExprString("x", "f(1)")
	if got := PathString(e2); got != "" {
		t.Fatalf("PathString of call = %q", got)
	}
}
