package p4

import "fmt"

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	file string
	toks []Token
	pos  int
}

// Parse parses a full P4 compilation unit.
func Parse(file, src string) (*Program, error) {
	toks, err := Tokenize(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{file: file, toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekKind(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) peekIdent(name string) bool {
	return p.cur().Kind == TokIdent && p.cur().Text == name
}

func (p *Parser) at(offset int) Token {
	i := p.pos + offset
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[i]
}

func (p *Parser) errorf(pos Pos, format string, args ...any) error {
	return &SyntaxError{File: p.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errorf(t.Pos, "expected %s, found %q", k, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) expectIdent(name string) error {
	t := p.cur()
	if t.Kind != TokIdent || t.Text != name {
		return p.errorf(t.Pos, "expected %q, found %q", name, t.Text)
	}
	p.pos++
	return nil
}

// expectGt consumes a ">", splitting a ">>" token in two so that nested
// generic types like register<bit<32>> parse.
func (p *Parser) expectGt() error {
	t := p.cur()
	switch t.Kind {
	case TokGt:
		p.pos++
		return nil
	case TokShr:
		p.toks[p.pos] = Token{Kind: TokGt, Text: ">", Pos: Pos{Line: t.Pos.Line, Col: t.Pos.Col + 1}}
		return nil
	}
	return p.errorf(t.Pos, "expected >, found %q", t.Text)
}

// accept consumes the token if it matches.
func (p *Parser) accept(k TokenKind) bool {
	if p.peekKind(k) {
		p.pos++
		return true
	}
	return false
}

// ------------------------------------------------------------- program --

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{File: p.file}
	for !p.peekKind(TokEOF) {
		t := p.cur()
		if t.Kind != TokIdent {
			return nil, p.errorf(t.Pos, "expected declaration, found %q", t.Text)
		}
		switch t.Text {
		case "typedef":
			d, err := p.parseTypedef()
			if err != nil {
				return nil, err
			}
			prog.Typedefs = append(prog.Typedefs, d)
		case "const":
			d, err := p.parseConst()
			if err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, d)
		case "header":
			d, err := p.parseHeader()
			if err != nil {
				return nil, err
			}
			prog.Headers = append(prog.Headers, d)
		case "struct":
			d, err := p.parseStruct()
			if err != nil {
				return nil, err
			}
			prog.Structs = append(prog.Structs, d)
		case "parser":
			d, err := p.parseParser()
			if err != nil {
				return nil, err
			}
			prog.Parsers = append(prog.Parsers, d)
		case "control":
			d, err := p.parseControl()
			if err != nil {
				return nil, err
			}
			prog.Controls = append(prog.Controls, d)
		default:
			// Package instantiation: Name(args) main;
			d, err := p.parsePackage()
			if err != nil {
				return nil, err
			}
			if prog.Package != nil {
				return nil, p.errorf(t.Pos, "duplicate package instantiation")
			}
			prog.Package = d
		}
	}
	return prog, nil
}

func (p *Parser) parseType() (Type, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return nil, p.errorf(t.Pos, "expected type, found %q", t.Text)
	}
	switch t.Text {
	case "bit":
		p.pos++
		if _, err := p.expect(TokLt); err != nil {
			return nil, err
		}
		n, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		v, _, err := ParseNumber(n.Text)
		if err != nil {
			return nil, p.errorf(n.Pos, "%v", err)
		}
		if v < 1 || v > 64 {
			return nil, p.errorf(n.Pos, "bit width %d out of supported range [1,64]", v)
		}
		if err := p.expectGt(); err != nil {
			return nil, err
		}
		return &BitType{Width: int(v)}, nil
	case "bool":
		p.pos++
		return &BoolType{}, nil
	default:
		p.pos++
		return &NamedType{Name: t.Text}, nil
	}
}

func (p *Parser) parseTypedef() (*TypedefDecl, error) {
	pos := p.next().Pos // 'typedef'
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &TypedefDecl{Name: name.Text, Type: ty, Pos: pos}, nil
}

func (p *Parser) parseConst() (*ConstDecl, error) {
	pos := p.next().Pos // 'const'
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ConstDecl{Name: name.Text, Type: ty, Value: val, Pos: pos}, nil
}

func (p *Parser) parseFieldList() ([]Field, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var fields []Field
	for !p.peekKind(TokRBrace) {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		fields = append(fields, Field{Name: name.Text, Type: ty, Pos: name.Pos})
	}
	p.next() // '}'
	return fields, nil
}

func (p *Parser) parseHeader() (*HeaderDecl, error) {
	pos := p.next().Pos // 'header'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	fields, err := p.parseFieldList()
	if err != nil {
		return nil, err
	}
	return &HeaderDecl{Name: name.Text, Fields: fields, Pos: pos}, nil
}

func (p *Parser) parseStruct() (*StructDecl, error) {
	pos := p.next().Pos // 'struct'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	fields, err := p.parseFieldList()
	if err != nil {
		return nil, err
	}
	return &StructDecl{Name: name.Text, Fields: fields, Pos: pos}, nil
}

func (p *Parser) parsePackage() (*PackageDecl, error) {
	name := p.next() // package type name
	pos := name.Pos
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []string
	for !p.peekKind(TokRParen) {
		arg, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		// Allow and discard a trailing "()" instantiation.
		if p.accept(TokLParen) {
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		}
		args = append(args, arg.Text)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	inst, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &PackageDecl{TypeName: name.Text, Args: args, Name: inst.Text, Pos: pos}, nil
}

// ------------------------------------------------------------- parsers --

func (p *Parser) parseParams() ([]Param, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []Param
	for !p.peekKind(TokRParen) {
		dir := DirNone
		switch {
		case p.peekIdent("in"):
			dir = DirIn
			p.pos++
		case p.peekIdent("out"):
			dir = DirOut
			p.pos++
		case p.peekIdent("inout"):
			dir = DirInOut
			p.pos++
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Dir: dir, Type: ty, Name: name.Text, Pos: name.Pos})
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *Parser) parseParser() (*ParserDecl, error) {
	pos := p.next().Pos // 'parser'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	decl := &ParserDecl{Name: name.Text, Params: params, Pos: pos}
	for !p.peekKind(TokRBrace) {
		if !p.peekIdent("state") {
			return nil, p.errorf(p.cur().Pos, "expected state declaration in parser, found %q", p.cur().Text)
		}
		st, err := p.parseState()
		if err != nil {
			return nil, err
		}
		decl.States = append(decl.States, st)
	}
	p.next() // '}'
	return decl, nil
}

func (p *Parser) parseState() (*StateDecl, error) {
	pos := p.next().Pos // 'state'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	st := &StateDecl{Name: name.Text, Pos: pos}
	for !p.peekKind(TokRBrace) {
		if p.peekIdent("transition") {
			tr, err := p.parseTransition()
			if err != nil {
				return nil, err
			}
			st.Transition = tr
			break
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = append(st.Body, s)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseTransition() (Transition, error) {
	pos := p.next().Pos // 'transition'
	if p.peekIdent("select") {
		p.pos++
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		sel := &TransSelect{Pos: pos}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Exprs = append(sel.Exprs, e)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLBrace); err != nil {
			return nil, err
		}
		for !p.peekKind(TokRBrace) {
			cs, err := p.parseSelectCase(len(sel.Exprs))
			if err != nil {
				return nil, err
			}
			sel.Cases = append(sel.Cases, cs)
		}
		p.next() // '}'
		return sel, nil
	}
	target, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &TransDirect{Target: target.Text, Pos: pos}, nil
}

// parseCaseValue parses one key-set value: default, _, or expr [&&& mask].
func (p *Parser) parseCaseValue() (CaseValue, error) {
	t := p.cur()
	if t.Kind == TokUnderscore || t.Kind == TokIdent && t.Text == "default" {
		p.pos++
		return CaseValue{Default: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return CaseValue{}, err
	}
	cv := CaseValue{Expr: e}
	// "value &&& mask": the lexer emits && followed by &.
	if p.peekKind(TokAndAnd) && p.at(1).Kind == TokAmp {
		p.pos += 2
		mask, err := p.parseExpr()
		if err != nil {
			return CaseValue{}, err
		}
		cv.Mask = mask
	}
	return cv, nil
}

func (p *Parser) parseSelectCase(nkeys int) (SelectCase, error) {
	pos := p.cur().Pos
	var vals []CaseValue
	if p.accept(TokLParen) {
		for {
			cv, err := p.parseCaseValue()
			if err != nil {
				return SelectCase{}, err
			}
			vals = append(vals, cv)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return SelectCase{}, err
		}
	} else {
		cv, err := p.parseCaseValue()
		if err != nil {
			return SelectCase{}, err
		}
		vals = append(vals, cv)
	}
	if len(vals) != nkeys {
		return SelectCase{}, p.errorf(pos, "select case has %d values, want %d", len(vals), nkeys)
	}
	if _, err := p.expect(TokColon); err != nil {
		return SelectCase{}, err
	}
	target, err := p.expect(TokIdent)
	if err != nil {
		return SelectCase{}, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return SelectCase{}, err
	}
	return SelectCase{Values: vals, Target: target.Text, Pos: pos}, nil
}

// ------------------------------------------------------------ controls --

func (p *Parser) parseControl() (*ControlDecl, error) {
	pos := p.next().Pos // 'control'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	decl := &ControlDecl{Name: name.Text, Params: params, Pos: pos}
	for !p.peekKind(TokRBrace) {
		t := p.cur()
		switch {
		case p.peekIdent("action"):
			a, err := p.parseAction()
			if err != nil {
				return nil, err
			}
			decl.Actions = append(decl.Actions, a)
		case p.peekIdent("table"):
			tb, err := p.parseTable()
			if err != nil {
				return nil, err
			}
			decl.Tables = append(decl.Tables, tb)
		case p.peekIdent("apply"):
			p.pos++
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			decl.Apply = body
		case p.peekIdent("register") || p.peekIdent("counter") || p.peekIdent("meter"):
			l, err := p.parseExternLocal()
			if err != nil {
				return nil, err
			}
			decl.Locals = append(decl.Locals, l)
		case t.Kind == TokIdent:
			// control-level variable: Type name [= init];
			l, err := p.parseVarLocal()
			if err != nil {
				return nil, err
			}
			decl.Locals = append(decl.Locals, l)
		default:
			return nil, p.errorf(t.Pos, "unexpected token %q in control body", t.Text)
		}
	}
	p.next() // '}'
	if decl.Apply == nil {
		return nil, p.errorf(pos, "control %s has no apply block", decl.Name)
	}
	return decl, nil
}

func (p *Parser) parseAction() (*ActionDecl, error) {
	pos := p.next().Pos // 'action'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ActionDecl{Name: name.Text, Params: params, Body: body.Stmts, Pos: pos}, nil
}

func (p *Parser) parseExternLocal() (*LocalDecl, error) {
	kindTok := p.next()
	var kind LocalKind
	switch kindTok.Text {
	case "register":
		kind = LocalRegister
	case "counter":
		kind = LocalCounter
	case "meter":
		kind = LocalMeter
	}
	l := &LocalDecl{Kind: kind, Pos: kindTok.Pos}
	if p.accept(TokLt) { // register<bit<W>>
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		l.Type = ty
		if err := p.expectGt(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	first := true
	for !p.peekKind(TokRParen) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if first {
			l.Size = e
			first = false
		} else {
			l.ExternAr = append(l.ExternAr, e)
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	l.Name = name.Text
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return l, nil
}

func (p *Parser) parseVarLocal() (*LocalDecl, error) {
	pos := p.cur().Pos
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	l := &LocalDecl{Kind: LocalVar, Name: name.Text, Type: ty, Pos: pos}
	if p.accept(TokAssign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		l.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return l, nil
}

func (p *Parser) parseTable() (*TableDecl, error) {
	pos := p.next().Pos // 'table'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	tbl := &TableDecl{Name: name.Text, Pos: pos}
	for !p.peekKind(TokRBrace) {
		prop := p.cur()
		isConst := false
		if prop.Kind == TokIdent && prop.Text == "const" {
			isConst = true
			p.pos++
			prop = p.cur()
		}
		if prop.Kind != TokIdent {
			return nil, p.errorf(prop.Pos, "expected table property, found %q", prop.Text)
		}
		switch prop.Text {
		case "key":
			p.pos++
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			for !p.peekKind(TokRBrace) {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokColon); err != nil {
					return nil, err
				}
				mk, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				var match MatchKind
				switch mk.Text {
				case "exact":
					match = MatchExact
				case "lpm":
					match = MatchLPM
				case "ternary":
					match = MatchTernary
				default:
					return nil, p.errorf(mk.Pos, "unsupported match kind %q", mk.Text)
				}
				if _, err := p.expect(TokSemi); err != nil {
					return nil, err
				}
				tbl.Keys = append(tbl.Keys, TableKey{Expr: e, Match: match, Pos: mk.Pos})
			}
			p.next() // '}'
			p.accept(TokSemi)
		case "actions":
			p.pos++
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			for !p.peekKind(TokRBrace) {
				a, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				tbl.Actions = append(tbl.Actions, a.Text)
				if _, err := p.expect(TokSemi); err != nil {
					return nil, err
				}
			}
			p.next() // '}'
			p.accept(TokSemi)
		case "size":
			p.pos++
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			n, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			v, _, err := ParseNumber(n.Text)
			if err != nil {
				return nil, p.errorf(n.Pos, "%v", err)
			}
			tbl.Size = int(v)
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		case "default_action":
			p.pos++
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			ac, err := p.parseActionCall()
			if err != nil {
				return nil, err
			}
			tbl.DefaultAction = &ac
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		case "entries":
			if !isConst {
				return nil, p.errorf(prop.Pos, "entries must be declared const")
			}
			p.pos++
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			for !p.peekKind(TokRBrace) {
				ent, err := p.parseEntry()
				if err != nil {
					return nil, err
				}
				tbl.ConstEntries = append(tbl.ConstEntries, ent)
			}
			p.next() // '}'
			p.accept(TokSemi)
		default:
			return nil, p.errorf(prop.Pos, "unsupported table property %q", prop.Text)
		}
	}
	p.next() // '}'
	return tbl, nil
}

func (p *Parser) parseActionCall() (ActionCall, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return ActionCall{}, err
	}
	ac := ActionCall{Name: name.Text, Pos: name.Pos}
	if p.accept(TokLParen) {
		for !p.peekKind(TokRParen) {
			e, err := p.parseExpr()
			if err != nil {
				return ActionCall{}, err
			}
			ac.Args = append(ac.Args, e)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return ActionCall{}, err
		}
	}
	return ac, nil
}

func (p *Parser) parseEntry() (Entry, error) {
	pos := p.cur().Pos
	var keys []CaseValue
	if p.accept(TokLParen) {
		for {
			cv, err := p.parseCaseValue()
			if err != nil {
				return Entry{}, err
			}
			keys = append(keys, cv)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return Entry{}, err
		}
	} else {
		cv, err := p.parseCaseValue()
		if err != nil {
			return Entry{}, err
		}
		keys = append(keys, cv)
	}
	if _, err := p.expect(TokColon); err != nil {
		return Entry{}, err
	}
	ac, err := p.parseActionCall()
	if err != nil {
		return Entry{}, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return Entry{}, err
	}
	return Entry{Keys: keys, Action: ac, Pos: pos}, nil
}

// ------------------------------------------------------------- statements --

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.peekKind(TokRBrace) {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // '}'
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokLBrace:
		return p.parseBlock()
	case t.Kind == TokAt:
		return p.parseAnnotationStmt()
	case p.peekIdent("if"):
		return p.parseIf()
	case p.peekIdent("exit"):
		p.pos++
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ExitStmt{Pos: t.Pos}, nil
	case p.peekIdent("return"):
		p.pos++
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: t.Pos}, nil
	case p.peekIdent("bit") || p.peekIdent("bool"):
		return p.parseVarDeclStmt()
	case t.Kind == TokIdent && p.at(1).Kind == TokIdent && !IsKeyword(t.Text):
		// "TypeName varName ..." — local declaration with a named type.
		return p.parseVarDeclStmt()
	default:
		// Assignment or call statement.
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(TokAssign) {
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			return &AssignStmt{LHS: e, RHS: rhs, Pos: t.Pos}, nil
		}
		call, ok := e.(*CallExpr)
		if !ok {
			return nil, p.errorf(t.Pos, "expression statement must be a call")
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &CallStmt{Call: call, Pos: t.Pos}, nil
	}
}

func (p *Parser) parseVarDeclStmt() (Stmt, error) {
	pos := p.cur().Pos
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	st := &VarDeclStmt{Name: name.Text, Type: ty, Pos: pos}
	if p.accept(TokAssign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return st, nil
}

// parseAnnotationStmt handles @assert("...") and @assume(expr).
func (p *Parser) parseAnnotationStmt() (Stmt, error) {
	pos := p.next().Pos // '@'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	switch name.Text {
	case "assert":
		s, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		p.accept(TokSemi)
		return &AssertStmt{Text: s.Text, Pos: pos}, nil
	case "assume":
		var cond Expr
		if p.peekKind(TokString) {
			// Also accept @assume("expr") for symmetry: the string body
			// is parsed as a P4 expression.
			s := p.next()
			var err error
			cond, err = ParseExprString(p.file, s.Text)
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		p.accept(TokSemi)
		return &AssumeStmt{Cond: cond, Pos: pos}, nil
	default:
		return nil, p.errorf(name.Pos, "unsupported annotation @%s", name.Text)
	}
}

// ParseExprString parses a standalone P4 expression (used for @assume
// bodies supplied as strings and for rule files).
func ParseExprString(file, src string) (Expr, error) {
	toks, err := Tokenize(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{file: file, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.peekKind(TokEOF) {
		return nil, p.errorf(p.cur().Pos, "trailing input after expression")
	}
	return e, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // 'if'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: pos}
	if p.peekIdent("else") {
		p.pos++
		if p.peekIdent("if") {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

// ------------------------------------------------------------ expressions --

// Binary operator precedence, loosest first.
var binPrec = map[TokenKind]int{
	TokOrOr: 1, TokAndAnd: 2,
	TokEq: 3, TokNe: 3,
	TokLt: 4, TokLe: 4, TokGt: 4, TokGe: 4,
	TokPipe: 5, TokCaret: 6, TokAmp: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

var binOps = map[TokenKind]BinaryOp{
	TokOrOr: BinLOr, TokAndAnd: BinLAnd, TokEq: BinEq, TokNe: BinNe,
	TokLt: BinLt, TokLe: BinLe, TokGt: BinGt, TokGe: BinGe,
	TokPipe: BinOr, TokCaret: BinXor, TokAmp: BinAnd,
	TokShl: BinShl, TokShr: BinShr, TokPlus: BinAdd, TokMinus: BinSub,
	TokStar: BinMul, TokSlash: BinDiv, TokPercent: BinMod,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(TokQuestion) {
		return cond, nil
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Ternary{Cond: cond, Then: then, Else: els, Pos: cond.Position()}, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		prec, ok := binPrec[k]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		// "&&&" (key-set mask) lexes as "&&" followed by "&"; it is not a
		// binary operator, so stop and let parseCaseValue consume it.
		if k == TokAndAnd && p.at(1).Kind == TokAmp {
			return lhs, nil
		}
		op := binOps[k]
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs, Pos: lhs.Position()}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNot:
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: UnNot, X: x, Pos: t.Pos}, nil
	case TokTilde:
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: UnBitNot, X: x, Pos: t.Pos}, nil
	case TokMinus:
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: UnNeg, X: x, Pos: t.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokDot):
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			e = &Member{X: e, Name: name.Text, Pos: name.Pos}
		case p.peekKind(TokLParen):
			p.pos++
			call := &CallExpr{Fun: e, Pos: e.Position()}
			for !p.peekKind(TokRParen) {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			e = call
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.pos++
		v, w, err := ParseNumber(t.Text)
		if err != nil {
			return nil, p.errorf(t.Pos, "%v", err)
		}
		return &NumberLit{Value: v, Width: w, Pos: t.Pos}, nil
	case TokIdent:
		switch t.Text {
		case "true":
			p.pos++
			return &BoolLit{Value: true, Pos: t.Pos}, nil
		case "false":
			p.pos++
			return &BoolLit{Value: false, Pos: t.Pos}, nil
		}
		p.pos++
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	case TokLParen:
		// Cast or parenthesized expression.
		if p.at(1).Kind == TokIdent && (p.at(1).Text == "bit" || p.at(1).Text == "bool") {
			p.pos++
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Type: ty, X: x, Pos: t.Pos}, nil
		}
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf(t.Pos, "expected expression, found %q", t.Text)
}
