// Package p4 implements the frontend for the P4_16 subset verified by this
// tool: lexer, parser, AST and type checker. It substitutes for the paper's
// use of the p4c reference compiler, whose JSON output the original
// prototype consumed (DESIGN.md §2).
package p4

import "fmt"

// TokenKind enumerates lexical token classes.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber // integer literal, possibly width-prefixed (8w0xff)
	TokString // double-quoted string (annotation bodies)

	// Punctuation and operators.
	TokLBrace     // {
	TokRBrace     // }
	TokLParen     // (
	TokRParen     // )
	TokLBracket   // [
	TokRBracket   // ]
	TokSemi       // ;
	TokColon      // :
	TokComma      // ,
	TokDot        // .
	TokAssign     // =
	TokEq         // ==
	TokNe         // !=
	TokLt         // <
	TokLe         // <=
	TokGt         // >
	TokGe         // >=
	TokShl        // <<
	TokShr        // >>
	TokAndAnd     // &&
	TokOrOr       // ||
	TokNot        // !
	TokTilde      // ~
	TokAmp        // &
	TokPipe       // |
	TokCaret      // ^
	TokPlus       // +
	TokMinus      // -
	TokStar       // *
	TokSlash      // /
	TokPercent    // %
	TokQuestion   // ?
	TokAt         // @
	TokUnderscore // _ (don't-care in select/entries)
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokString: "string", TokLBrace: "{", TokRBrace: "}", TokLParen: "(",
	TokRParen: ")", TokLBracket: "[", TokRBracket: "]", TokSemi: ";",
	TokColon: ":", TokComma: ",", TokDot: ".", TokAssign: "=", TokEq: "==",
	TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokShl: "<<", TokShr: ">>", TokAndAnd: "&&", TokOrOr: "||", TokNot: "!",
	TokTilde: "~", TokAmp: "&", TokPipe: "|", TokCaret: "^", TokPlus: "+",
	TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokQuestion: "?", TokAt: "@", TokUnderscore: "_",
}

// String returns a printable token-kind name.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string // raw text for idents/numbers/strings (strings unquoted)
	Pos  Pos
}

// keywords recognized by the parser (kept as idents at the lexer level but
// listed here for IsKeyword checks).
var keywords = map[string]bool{
	"header": true, "struct": true, "typedef": true, "const": true,
	"parser": true, "control": true, "state": true, "transition": true,
	"select": true, "table": true, "key": true, "actions": true,
	"size": true, "default_action": true, "entries": true, "action": true,
	"apply": true, "if": true, "else": true, "return": true, "exit": true,
	"bit": true, "bool": true, "true": true, "false": true, "in": true,
	"out": true, "inout": true, "accept": true, "reject": true,
	"default": true, "register": true, "counter": true, "meter": true,
	"enum": true, "error": true, "switch": true,
}

// IsKeyword reports whether an identifier spelling is reserved.
func IsKeyword(s string) bool { return keywords[s] }
