package p4

import (
	"fmt"
	"strings"
)

// Check resolves names and types across the program, evaluates const
// declarations, validates parser/control structure and decorates expression
// nodes with their types. It must be called before translation.
func (prog *Program) Check() error {
	c := &checker{prog: prog}
	c.run()
	if len(c.errs) == 0 {
		return nil
	}
	msgs := make([]string, len(c.errs))
	for i, e := range c.errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("type errors:\n  %s", strings.Join(msgs, "\n  "))
}

// StandardMetadataFields is the builtin v1model-style standard metadata
// layout. mark_to_drop sets egress_spec to DropPort.
var StandardMetadataFields = []Field{
	{Name: "ingress_port", Type: &BitType{Width: 9}},
	{Name: "egress_spec", Type: &BitType{Width: 9}},
	{Name: "egress_port", Type: &BitType{Width: 9}},
	{Name: "instance_type", Type: &BitType{Width: 32}},
	{Name: "packet_length", Type: &BitType{Width: 32}},
	{Name: "mcast_grp", Type: &BitType{Width: 16}},
	{Name: "egress_rid", Type: &BitType{Width: 16}},
	{Name: "checksum_error", Type: &BitType{Width: 1}},
	{Name: "priority", Type: &BitType{Width: 3}},
}

// DropPort is the egress_spec value that marks a packet for dropping.
const DropPort = 511

type checker struct {
	prog *Program
	errs []error
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, &SyntaxError{File: c.prog.File, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) run() {
	p := c.prog
	p.headerByName = map[string]*HeaderDecl{}
	p.structByName = map[string]*StructDecl{}
	p.constByName = map[string]*ConstDecl{}
	p.typedefs = map[string]Type{}

	for _, h := range p.Headers {
		if p.headerByName[h.Name] != nil {
			c.errorf(h.Pos, "duplicate header %s", h.Name)
		}
		p.headerByName[h.Name] = h
	}
	for _, s := range p.Structs {
		if p.structByName[s.Name] != nil {
			c.errorf(s.Pos, "duplicate struct %s", s.Name)
		}
		p.structByName[s.Name] = s
	}
	if p.structByName["standard_metadata_t"] == nil {
		// Each program gets its own copy of the builtin layout: field-type
		// resolution below writes into the Fields slice, and programs are
		// checked concurrently by the verification service's worker pool.
		std := &StructDecl{Name: "standard_metadata_t", Fields: append([]Field(nil), StandardMetadataFields...)}
		p.Structs = append(p.Structs, std)
		p.structByName[std.Name] = std
	}
	for _, td := range p.Typedefs {
		p.typedefs[td.Name] = td.Type
	}
	for _, cd := range p.Consts {
		rt := p.ResolveType(cd.Type)
		bt, ok := rt.(*BitType)
		if !ok {
			c.errorf(cd.Pos, "const %s must have a bit<N> type", cd.Name)
			continue
		}
		v, ok := c.constEval(cd.Value)
		if !ok {
			c.errorf(cd.Pos, "const %s initializer is not a constant expression", cd.Name)
			continue
		}
		cd.Width = bt.Width
		cd.Resolved = v & maskOf(bt.Width)
		p.constByName[cd.Name] = cd
	}

	// Resolve header/struct field types eagerly.
	for _, h := range p.Headers {
		for i := range h.Fields {
			h.Fields[i].Type = c.resolveFieldType(h.Fields[i].Type, h.Fields[i].Pos)
		}
	}
	for _, s := range p.Structs {
		for i := range s.Fields {
			s.Fields[i].Type = c.resolveFieldType(s.Fields[i].Type, s.Fields[i].Pos)
		}
	}

	for _, pd := range p.Parsers {
		c.checkParser(pd)
	}
	for _, cd := range p.Controls {
		c.checkControl(cd)
	}
	if p.Package != nil {
		c.checkPackage(p.Package)
	}
}

func maskOf(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// ResolveType chases typedefs and names to a concrete type.
func (p *Program) ResolveType(t Type) Type {
	for i := 0; i < 32; i++ {
		nt, ok := t.(*NamedType)
		if !ok {
			return t
		}
		if under, ok := p.typedefs[nt.Name]; ok {
			t = under
			continue
		}
		if h, ok := p.headerByName[nt.Name]; ok {
			return &HeaderRef{Decl: h}
		}
		if s, ok := p.structByName[nt.Name]; ok {
			return &StructRef{Decl: s}
		}
		return t // unresolved: caller reports
	}
	return t
}

// Header returns a header declaration by name.
func (p *Program) Header(name string) *HeaderDecl { return p.headerByName[name] }

// Struct returns a struct declaration by name.
func (p *Program) Struct(name string) *StructDecl { return p.structByName[name] }

// ConstValue returns the resolved value and width of a global const.
func (p *Program) ConstValue(name string) (uint64, int, bool) {
	cd, ok := p.constByName[name]
	if !ok {
		return 0, 0, false
	}
	return cd.Resolved, cd.Width, true
}

// EvalConstExpr folds a constant expression (number literals, global
// consts, arithmetic) to a value. It is used by the translator for const
// entry keys, action arguments and extern sizes.
func (p *Program) EvalConstExpr(e Expr) (uint64, bool) {
	c := &checker{prog: p}
	return c.constEval(e)
}

// TypeWidth returns the bit width of a scalar type, or 0 for aggregates.
func (p *Program) TypeWidth(t Type) int {
	switch rt := p.ResolveType(t).(type) {
	case *BitType:
		return rt.Width
	case *BoolType:
		return 1
	}
	return 0
}

func (c *checker) resolveFieldType(t Type, pos Pos) Type {
	rt := c.prog.ResolveType(t)
	switch rt.(type) {
	case *BitType, *BoolType, *HeaderRef, *StructRef:
		return rt
	}
	if nt, ok := rt.(*NamedType); ok {
		c.errorf(pos, "unknown type %s", nt.Name)
	}
	return rt
}

// constEval folds a constant expression using global consts.
func (c *checker) constEval(e Expr) (uint64, bool) {
	switch x := e.(type) {
	case *NumberLit:
		return x.Value, true
	case *BoolLit:
		if x.Value {
			return 1, true
		}
		return 0, true
	case *Ident:
		if cd, ok := c.prog.constByName[x.Name]; ok {
			return cd.Resolved, true
		}
		return 0, false
	case *Unary:
		v, ok := c.constEval(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case UnNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case UnBitNot:
			return ^v, true
		case UnNeg:
			return -v, true
		}
	case *Binary:
		a, ok1 := c.constEval(x.X)
		b, ok2 := c.constEval(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case BinAdd:
			return a + b, true
		case BinSub:
			return a - b, true
		case BinMul:
			return a * b, true
		case BinShl:
			return a << b, true
		case BinShr:
			return a >> b, true
		case BinAnd:
			return a & b, true
		case BinOr:
			return a | b, true
		case BinXor:
			return a ^ b, true
		}
	case *CastExpr:
		v, ok := c.constEval(x.X)
		if !ok {
			return 0, false
		}
		if w := c.prog.TypeWidth(x.Type); w > 0 {
			return v & maskOf(w), true
		}
		return v, true
	}
	return 0, false
}

// scope is a lexical environment mapping names to types, with markers for
// tables, actions and extern instances.
type scope struct {
	parent  *scope
	vars    map[string]Type
	control *ControlDecl // innermost control, for table/action lookup
	parser  *ParserDecl
}

func newScope(parent *scope) *scope {
	s := &scope{parent: parent, vars: map[string]Type{}}
	if parent != nil {
		s.control = parent.control
		s.parser = parent.parser
	}
	return s
}

func (s *scope) lookup(name string) (Type, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if t, ok := cur.vars[name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (c *checker) declareParams(sc *scope, params []Param) {
	for i := range params {
		pr := &params[i]
		switch nt := pr.Type.(type) {
		case *NamedType:
			switch nt.Name {
			case "packet_in", "packet_out":
				sc.vars[pr.Name] = nt // opaque packet handles
				continue
			}
		}
		rt := c.prog.ResolveType(pr.Type)
		if nt, ok := rt.(*NamedType); ok {
			c.errorf(pr.Pos, "unknown parameter type %s", nt.Name)
		}
		pr.Type = rt
		sc.vars[pr.Name] = rt
	}
}

func (c *checker) checkParser(pd *ParserDecl) {
	sc := newScope(nil)
	sc.parser = pd
	c.declareParams(sc, pd.Params)
	if pd.State("start") == nil {
		c.errorf(pd.Pos, "parser %s has no start state", pd.Name)
	}
	seen := map[string]bool{}
	for _, st := range pd.States {
		if seen[st.Name] {
			c.errorf(st.Pos, "duplicate state %s", st.Name)
		}
		seen[st.Name] = true
	}
	for _, st := range pd.States {
		ssc := newScope(sc)
		for _, s := range st.Body {
			c.checkStmt(ssc, s)
		}
		switch tr := st.Transition.(type) {
		case *TransDirect:
			c.checkStateTarget(pd, tr.Target, tr.Pos)
		case *TransSelect:
			for _, e := range tr.Exprs {
				c.checkExpr(ssc, e)
			}
			for _, cs := range tr.Cases {
				c.checkStateTarget(pd, cs.Target, cs.Pos)
				for _, v := range cs.Values {
					if v.Expr != nil {
						c.checkExpr(ssc, v.Expr)
					}
					if v.Mask != nil {
						c.checkExpr(ssc, v.Mask)
					}
				}
			}
		case nil:
			// implicit accept
		}
	}
}

func (c *checker) checkStateTarget(pd *ParserDecl, target string, pos Pos) {
	if target == "accept" || target == "reject" {
		return
	}
	if pd.State(target) == nil {
		c.errorf(pos, "transition to unknown state %s", target)
	}
}

func (c *checker) checkControl(cd *ControlDecl) {
	sc := newScope(nil)
	sc.control = cd
	c.declareParams(sc, cd.Params)

	for _, l := range cd.Locals {
		switch l.Kind {
		case LocalVar:
			rt := c.prog.ResolveType(l.Type)
			l.Type = rt
			sc.vars[l.Name] = rt
			if l.Init != nil {
				c.checkExpr(sc, l.Init)
			}
		default:
			if l.Type != nil {
				l.Type = c.prog.ResolveType(l.Type)
			}
			sc.vars[l.Name] = &NamedType{Name: externKindName(l.Kind)}
		}
	}

	seenAct := map[string]bool{"NoAction": true}
	for _, a := range cd.Actions {
		if seenAct[a.Name] {
			c.errorf(a.Pos, "duplicate action %s", a.Name)
		}
		seenAct[a.Name] = true
		asc := newScope(sc)
		c.declareParams(asc, a.Params)
		for _, s := range a.Body {
			c.checkStmt(asc, s)
		}
	}

	seenTbl := map[string]bool{}
	for _, t := range cd.Tables {
		if seenTbl[t.Name] {
			c.errorf(t.Pos, "duplicate table %s", t.Name)
		}
		seenTbl[t.Name] = true
		for _, k := range t.Keys {
			c.checkExpr(sc, k.Expr)
		}
		if len(t.Actions) == 0 {
			c.errorf(t.Pos, "table %s lists no actions", t.Name)
		}
		for _, an := range t.Actions {
			if an != "NoAction" && cd.Action(an) == nil {
				c.errorf(t.Pos, "table %s references unknown action %s", t.Name, an)
			}
		}
		if t.DefaultAction != nil {
			if !actionListed(t, t.DefaultAction.Name) {
				c.errorf(t.DefaultAction.Pos, "default_action %s is not in the actions list of %s", t.DefaultAction.Name, t.Name)
			}
		}
		for _, ent := range t.ConstEntries {
			if len(ent.Keys) != len(t.Keys) {
				c.errorf(ent.Pos, "entry has %d keys, table %s has %d", len(ent.Keys), t.Name, len(t.Keys))
			}
			if !actionListed(t, ent.Action.Name) {
				c.errorf(ent.Pos, "entry action %s is not in the actions list of %s", ent.Action.Name, t.Name)
			}
			for _, kv := range ent.Keys {
				if kv.Expr != nil {
					if _, ok := c.constEval(kv.Expr); !ok {
						c.errorf(ent.Pos, "entry key is not a constant expression")
					}
				}
			}
			for _, arg := range ent.Action.Args {
				if _, ok := c.constEval(arg); !ok {
					c.errorf(ent.Pos, "entry action argument is not a constant expression")
				}
			}
		}
	}

	c.checkBlock(newScope(sc), cd.Apply)
}

func externKindName(k LocalKind) string {
	switch k {
	case LocalRegister:
		return "register"
	case LocalCounter:
		return "counter"
	case LocalMeter:
		return "meter"
	}
	return "var"
}

func actionListed(t *TableDecl, name string) bool {
	for _, a := range t.Actions {
		if a == name {
			return true
		}
	}
	return false
}

func (c *checker) checkPackage(pk *PackageDecl) {
	if len(pk.Args) < 2 {
		c.errorf(pk.Pos, "package instantiation needs at least a parser and a control")
		return
	}
	if c.findParser(pk.Args[0]) == nil {
		c.errorf(pk.Pos, "package argument %s is not a declared parser", pk.Args[0])
	}
	for _, a := range pk.Args[1:] {
		if c.findControl(a) == nil {
			c.errorf(pk.Pos, "package argument %s is not a declared control", a)
		}
	}
}

func (c *checker) findParser(name string) *ParserDecl {
	for _, p := range c.prog.Parsers {
		if p.Name == name {
			return p
		}
	}
	return nil
}

func (c *checker) findControl(name string) *ControlDecl {
	for _, cd := range c.prog.Controls {
		if cd.Name == name {
			return cd
		}
	}
	return nil
}

// ------------------------------------------------------------- statements --

func (c *checker) checkBlock(sc *scope, b *BlockStmt) {
	inner := newScope(sc)
	for _, s := range b.Stmts {
		c.checkStmt(inner, s)
	}
}

func (c *checker) checkStmt(sc *scope, s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		c.checkBlock(sc, st)
	case *AssignStmt:
		lt := c.checkExpr(sc, st.LHS)
		c.checkExpr(sc, st.RHS)
		if !isLValue(st.LHS) {
			c.errorf(st.Pos, "left side of assignment is not assignable")
		}
		if lt != nil {
			if _, ok := lt.(*HeaderRef); ok {
				c.errorf(st.Pos, "cannot assign whole headers; assign fields")
			}
		}
	case *CallStmt:
		c.checkCall(sc, st.Call, true)
	case *IfStmt:
		c.checkExpr(sc, st.Cond)
		c.checkBlock(sc, st.Then)
		if st.Else != nil {
			c.checkStmt(sc, st.Else)
		}
	case *VarDeclStmt:
		rt := c.prog.ResolveType(st.Type)
		st.Type = rt
		if nt, ok := rt.(*NamedType); ok {
			c.errorf(st.Pos, "unknown type %s", nt.Name)
		}
		if st.Init != nil {
			c.checkExpr(sc, st.Init)
		}
		sc.vars[st.Name] = rt
	case *AssertStmt:
		// Assertion text is parsed by internal/assertlang at translation
		// time; nothing to resolve here.
	case *AssumeStmt:
		c.checkExpr(sc, st.Cond)
	case *ExitStmt, *ReturnStmt:
	}
}

func isLValue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *Member:
		return isLValue(x.X)
	}
	return false
}

// ------------------------------------------------------------ expressions --

// checkExpr types an expression; nil means "unknown/opaque".
func (c *checker) checkExpr(sc *scope, e Expr) Type {
	switch x := e.(type) {
	case *NumberLit:
		if x.Width > 0 {
			return &BitType{Width: x.Width}
		}
		return nil // untyped literal; width adapts to context
	case *BoolLit:
		return &BoolType{}
	case *Ident:
		if t, ok := sc.lookup(x.Name); ok {
			x.Ty = t
			return t
		}
		if cd, ok := c.prog.constByName[x.Name]; ok {
			x.Ty = &BitType{Width: cd.Width}
			return x.Ty
		}
		// Table and action names are valid bare identifiers in call
		// position; the CallExpr path validates them.
		if sc.control != nil && (sc.control.Table(x.Name) != nil || sc.control.Action(x.Name) != nil || x.Name == "NoAction") {
			return nil
		}
		c.errorf(x.Pos, "undefined name %s", x.Name)
		return nil
	case *Member:
		// table.apply().hit / .miss yield a bool.
		if call, ok := x.X.(*CallExpr); ok && (x.Name == "hit" || x.Name == "miss") {
			if m, ok := call.Fun.(*Member); ok && m.Name == "apply" {
				c.checkCall(sc, call, false)
				x.Ty = &BoolType{}
				return x.Ty
			}
		}
		// Enum-style constants (e.g. CounterType.packets) are opaque.
		if id, ok := x.X.(*Ident); ok {
			if _, found := sc.lookup(id.Name); !found && c.prog.constByName[id.Name] == nil {
				if isEnumNamespace(id.Name) {
					return nil
				}
			}
		}
		bt := c.checkExpr(sc, x.X)
		switch base := bt.(type) {
		case *StructRef:
			for _, f := range base.Decl.Fields {
				if f.Name == x.Name {
					x.Ty = f.Type
					return f.Type
				}
			}
			c.errorf(x.Pos, "struct %s has no field %s", base.Decl.Name, x.Name)
		case *HeaderRef:
			for _, f := range base.Decl.Fields {
				if f.Name == x.Name {
					x.Ty = f.Type
					return f.Type
				}
			}
			c.errorf(x.Pos, "header %s has no field %s", base.Decl.Name, x.Name)
		case nil:
			return nil
		default:
			c.errorf(x.Pos, "%s is not a struct or header", PathString(x.X))
		}
		return nil
	case *Unary:
		t := c.checkExpr(sc, x.X)
		x.Ty = t
		return t
	case *Binary:
		tx := c.checkExpr(sc, x.X)
		ty := c.checkExpr(sc, x.Y)
		switch x.Op {
		case BinEq, BinNe, BinLt, BinLe, BinGt, BinGe, BinLAnd, BinLOr:
			x.Ty = &BoolType{}
		default:
			if tx != nil {
				x.Ty = tx
			} else {
				x.Ty = ty
			}
		}
		if bx, ok1 := tx.(*BitType); ok1 {
			if by, ok2 := ty.(*BitType); ok2 && bx.Width != by.Width && !isShift(x.Op) {
				c.errorf(x.Pos, "width mismatch: bit<%d> vs bit<%d>", bx.Width, by.Width)
			}
		}
		return x.Ty
	case *Ternary:
		c.checkExpr(sc, x.Cond)
		tt := c.checkExpr(sc, x.Then)
		te := c.checkExpr(sc, x.Else)
		if tt != nil {
			x.Ty = tt
		} else {
			x.Ty = te
		}
		return x.Ty
	case *CastExpr:
		c.checkExpr(sc, x.X)
		return c.prog.ResolveType(x.Type)
	case *CallExpr:
		return c.checkCall(sc, x, false)
	}
	return nil
}

func isShift(op BinaryOp) bool { return op == BinShl || op == BinShr }

func isEnumNamespace(name string) bool {
	switch name {
	case "CounterType", "MeterType", "HashAlgorithm":
		return true
	}
	return false
}

// checkCall validates builtin method calls. stmt reports whether the call
// appears in statement position.
func (c *checker) checkCall(sc *scope, call *CallExpr, stmt bool) Type {
	switch fun := call.Fun.(type) {
	case *Ident:
		switch fun.Name {
		case "mark_to_drop":
			return nil
		case "NoAction":
			return nil
		}
		if sc.control != nil && sc.control.Action(fun.Name) != nil {
			act := sc.control.Action(fun.Name)
			if len(call.Args) != len(act.Params) {
				c.errorf(call.Pos, "action %s called with %d args, wants %d", fun.Name, len(call.Args), len(act.Params))
			}
			for _, a := range call.Args {
				c.checkExpr(sc, a)
			}
			return nil
		}
		c.errorf(call.Pos, "call to unknown function %s", fun.Name)
		return nil
	case *Member:
		recvName := PathString(fun.X)
		switch fun.Name {
		case "extract", "emit":
			if len(call.Args) != 1 {
				c.errorf(call.Pos, "%s wants 1 argument", fun.Name)
				return nil
			}
			at := c.checkExpr(sc, call.Args[0])
			if _, ok := at.(*HeaderRef); !ok && at != nil {
				c.errorf(call.Pos, "%s argument must be a header", fun.Name)
			}
			return nil
		case "apply":
			if sc.control == nil || sc.control.Table(recvName) == nil {
				c.errorf(call.Pos, "apply on unknown table %s", recvName)
			}
			return nil
		case "isValid":
			t := c.checkExpr(sc, fun.X)
			if _, ok := t.(*HeaderRef); !ok && t != nil {
				c.errorf(call.Pos, "isValid on non-header %s", recvName)
			}
			call.Ty = &BoolType{}
			return call.Ty
		case "setValid", "setInvalid":
			t := c.checkExpr(sc, fun.X)
			if _, ok := t.(*HeaderRef); !ok && t != nil {
				c.errorf(call.Pos, "%s on non-header %s", fun.Name, recvName)
			}
			return nil
		case "read", "write", "count", "execute_meter":
			if t, ok := sc.lookup(recvName); ok {
				if nt, isNamed := t.(*NamedType); isNamed {
					switch nt.Name {
					case "register", "counter", "meter":
						for _, a := range call.Args {
							c.checkExpr(sc, a)
						}
						return nil
					}
				}
			}
			c.errorf(call.Pos, "%s called on %s, which is not an extern instance", fun.Name, recvName)
			return nil
		}
		c.errorf(call.Pos, "unsupported method %s", fun.Name)
		return nil
	}
	c.errorf(call.Pos, "unsupported call target")
	return nil
}
