package p4

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p4assert/internal/progs"
)

// seedCorpus feeds the fuzzer the whole embedded application corpus plus
// the checked-in regression seeds under testdata/fuzz/seeds.
func seedCorpus(f *testing.F) {
	for _, p := range progs.All() {
		f.Add(p.Source)
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", "seeds"))
	if err != nil {
		f.Fatalf("fuzz seed directory: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", "fuzz", "seeds", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// FuzzLexer: tokenization must terminate and either yield tokens or a
// *SyntaxError — never panic, never return a bare error of another type.
func FuzzLexer(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize("fuzz.p4", src)
		if err != nil {
			if _, ok := err.(*SyntaxError); !ok {
				t.Fatalf("Tokenize returned a non-syntax error %T: %v", err, err)
			}
			return
		}
		if len(toks) == 0 {
			t.Fatal("Tokenize returned no tokens and no error (missing EOF?)")
		}
	})
}

// FuzzParse: the front end must be total — any input either parses (and
// then the typechecker must also terminate without panicking) or fails
// with a *SyntaxError. A program that parses and checks must round-trip
// through a second parse of the same source to the same declaration count.
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz.p4", src)
		if err != nil {
			if _, ok := err.(*SyntaxError); !ok {
				t.Fatalf("Parse returned a non-syntax error %T: %v", err, err)
			}
			return
		}
		// The checker may reject, but it must not panic and must report
		// rejections as errors, not by other means.
		if err := prog.Check(); err != nil {
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatal("Check returned an empty error")
			}
			return
		}
		prog2, err := Parse("fuzz.p4", src)
		if err != nil {
			t.Fatalf("accepted source failed to re-parse: %v", err)
		}
		if len(prog2.Headers) != len(prog.Headers) ||
			len(prog2.Parsers) != len(prog.Parsers) ||
			len(prog2.Controls) != len(prog.Controls) {
			t.Fatalf("re-parse declaration counts differ: %d/%d/%d vs %d/%d/%d",
				len(prog2.Headers), len(prog2.Parsers), len(prog2.Controls),
				len(prog.Headers), len(prog.Parsers), len(prog.Controls))
		}
	})
}
