header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct metadata_t { bit<8> m; }
parser P(packet_in pkt, out headers_t hdr, inout metadata_t meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout headers_t hdr, inout metadata_t meta,
          inout standard_metadata_t standard_metadata) {
    apply { @assert("hdr.h.f == 0"); }
}
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.h); } }
V1Switch(P, I, D) main;
