header h_t { bit<8> f; }
struct headers_t { h_t h; }
struct metadata_t { bit<8> m; }
parser P(packet_in pkt, out headers_t hdr, inout metadata_t meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout headers_t hdr, inout metadata_t meta,
          inout standard_metadata_t standard_metadata) {
    action a(bit<9> p) { standard_metadata.egress_spec = p; }
    table t {
        key = { hdr.h.f : ternary; }
        actions = { a; NoAction; }
        default_action = NoAction;
        const entries = {
            1 &&& 255 : a(3);
            _ : a(9);
        }
    }
    apply { if (t.apply().hit) { meta.m = (bit<8>)standard_metadata.egress_spec; } }
}
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.h); } }
V1Switch(P, I, D) main;
