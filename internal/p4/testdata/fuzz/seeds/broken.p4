header h_t { bit<8> f; ÿş garbage }} ((( @assert("unterminated
