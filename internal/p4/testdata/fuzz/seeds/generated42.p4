header h0_t {
    bit<1> f0;
    bit<1> f1;
    bit<16> f2;
}
header h1_t {
    bit<4> f0;
    bit<48> f1;
    bit<8> f2;
}
struct headers_t {
    h0_t h0;
    h1_t h1;
}
struct metadata_t {
    bit<4> m0;
}

parser FP(packet_in pkt, out headers_t hdr, inout metadata_t meta,
          inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.h0);
        transition select(hdr.h0.f1) {
            1: parse_h1;
            default: accept;
        }
    }
    state parse_h1 { pkt.extract(hdr.h1); transition accept; }
}

control FI(inout headers_t hdr, inout metadata_t meta,
           inout standard_metadata_t standard_metadata) {
    action a0(bit<16> p0) {
        standard_metadata.egress_spec = standard_metadata.egress_spec;
        hdr.h0.f2 = p0;
        hdr.h1.f0 = (~(2 - meta.m0));
    }
    action a1() {
        hdr.h0.f1 = (0 & (1 + 0));
        hdr.h1.f2 = (bit<8>)standard_metadata.egress_spec;
    }
    table t0 {
        key = { hdr.h0.f2 : ternary; }
        actions = { a1; NoAction; }
        default_action = NoAction;
    }
    table t1 {
        key = { hdr.h1.f0 : exact; }
        actions = { a0; a1; NoAction; }
        default_action = a0(65535);
    }
    apply {
        if (hdr.h0.f1 <= 1) {
            mark_to_drop(standard_metadata);
        }
        @assert("constant(meta.m0)");
        @assume(hdr.h1.f1 < 35);
        t1.apply();
        standard_metadata.egress_spec = (((bit<9>)hdr.h0.f0 - (bit<9>)hdr.h0.f1) & (standard_metadata.egress_spec + 511));
        t0.apply();
        @assert("standard_metadata.egress_spec != 6");
        @assert("if(hdr.h1.f2 >= 255, !forward())");
        hdr.h1.f1 = hdr.h1.f1;
    }
}

control FD(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.h0);
        pkt.emit(hdr.h1);
    }
}

V1Switch(FP, FI, FD) main;
