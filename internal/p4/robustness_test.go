package p4

import (
	"math/rand"
	"strings"
	"testing"
)

// TestNoPanicsOnMutatedInput: randomly truncating, deleting and swapping
// chunks of a valid program must never panic the frontend — every outcome
// is either a parsed program or a positioned error.
func TestNoPanicsOnMutatedInput(t *testing.T) {
	base := sampleProgram
	r := rand.New(rand.NewSource(2024))
	for i := 0; i < 500; i++ {
		src := mutate(r, base)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on mutated input: %v\n---\n%s", p, src)
				}
			}()
			prog, err := Parse("fuzz.p4", src)
			if err == nil {
				_ = prog.Check() // must also not panic
			}
		}()
	}
}

func mutate(r *rand.Rand, s string) string {
	b := []byte(s)
	switch r.Intn(5) {
	case 0: // truncate
		if len(b) > 0 {
			b = b[:r.Intn(len(b))]
		}
	case 1: // delete a span
		if len(b) > 10 {
			start := r.Intn(len(b) - 10)
			end := start + r.Intn(10)
			b = append(b[:start], b[end:]...)
		}
	case 2: // duplicate a span
		if len(b) > 10 {
			start := r.Intn(len(b) - 10)
			end := start + r.Intn(10)
			b = append(b[:end:end], append(append([]byte{}, b[start:end]...), b[end:]...)...)
		}
	case 3: // flip characters to structural tokens
		for j := 0; j < 5 && len(b) > 0; j++ {
			b[r.Intn(len(b))] = "{}();<>=!"[r.Intn(9)]
		}
	case 4: // splice two random halves
		if len(b) > 2 {
			cut1, cut2 := r.Intn(len(b)), r.Intn(len(b))
			if cut1 > cut2 {
				cut1, cut2 = cut2, cut1
			}
			b = append(b[:cut1:cut1], b[cut2:]...)
		}
	}
	return string(b)
}

func TestLexerEdgeCases(t *testing.T) {
	// Underscores in numbers.
	v, w, err := ParseNumber("16w0xFF_FF")
	if err != nil || v != 0xffff || w != 16 {
		t.Fatalf("underscored literal: v=%#x w=%d err=%v", v, w, err)
	}
	// String escapes.
	toks, err := Tokenize("t", `@assert("a \"quoted\" string")`)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, tk := range toks {
		if tk.Kind == TokString && tk.Text == `a "quoted" string` {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped string not lexed: %v", toks)
	}
	// Unterminated string / comment.
	if _, err := Tokenize("t", `"never ends`); err == nil {
		t.Fatal("unterminated string should error")
	}
	if _, err := Tokenize("t", `/* never ends`); err == nil {
		t.Fatal("unterminated comment should error")
	}
	// Position tracking crosses lines.
	toks, _ = Tokenize("t", "a\n  b")
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("position = %v, want 2:3", toks[1].Pos)
	}
	// Unexpected character is a positioned error.
	_, err = Tokenize("t", "a $ b")
	if err == nil || !strings.Contains(err.Error(), "1:3") {
		t.Fatalf("unexpected char error = %v", err)
	}
}

func TestDeepNestingNoOverflow(t *testing.T) {
	// Deeply nested expressions should parse without stack issues.
	expr := strings.Repeat("(", 200) + "1" + strings.Repeat(")", 200)
	e, err := ParseExprString("deep", expr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*NumberLit); !ok {
		t.Fatalf("want NumberLit, got %T", e)
	}
	// Deeply nested if/else chains.
	var b strings.Builder
	b.WriteString("control C() { apply {\n")
	for i := 0; i < 100; i++ {
		b.WriteString("if (1 == 1) {\n")
	}
	for i := 0; i < 100; i++ {
		b.WriteString("}\n")
	}
	b.WriteString("} }\nV1Switch(C) main;")
	if _, err := Parse("deep.p4", b.String()); err != nil {
		t.Fatal(err)
	}
}
