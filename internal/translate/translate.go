// Package translate lowers a type-checked P4 program (internal/p4) to the
// verification model IR (internal/model), implementing the paper's P4-to-C
// translation (§3.2, Fig. 6):
//
//   - headers and structs flatten into uniquely-named global variables, with
//     an extra validity bit per header;
//   - each parser state, table and action becomes a model function;
//   - tables with known rules (const entries or a supplied RuleSet) compile
//     to cascading if-else matches; tables with unknown rules compile to a
//     Fork over their actions with symbolic action parameters;
//   - @assert annotations compile to assertion checks plus the
//     instrumentation assignments (traverse-path flags, snapshots) their
//     location-unrestricted methods require; @assume compiles to Assume;
//   - registers, counters and meters compile to per-cell globals (small
//     instances) or symbolic reads (large instances), per §6 "Stateful
//     verification".
package translate

import (
	"fmt"
	"strings"

	"p4assert/internal/model"
	"p4assert/internal/p4"
	"p4assert/internal/rules"
)

// Options configures translation.
type Options struct {
	// Rules optionally supplies a control-plane configuration. Tables with
	// const entries use those; other tables look up Rules; tables with
	// neither fork symbolically over their actions.
	Rules *rules.RuleSet
	// RegisterCellLimit bounds how many cells a register/counter may have
	// and still be modeled concretely per cell; larger instances fall back
	// to symbolic reads. 0 means the default of 32.
	RegisterCellLimit int
	// AutoValidityChecks inserts an assertion before every assignment that
	// reads or writes a header field, requiring the header to be valid —
	// the automatic instrumentation the paper proposes as future work
	// ("verify general properties such as reading fields of invalid
	// headers") and that Vera performs built-in.
	AutoValidityChecks bool
	// SymbolicRegisters forces the paper's §6 stateful-verification option
	// (i) for every register regardless of size: reads return fresh
	// symbolic values ("assume that registers can take any value") instead
	// of tracking small instances cell by cell.
	SymbolicRegisters bool
}

// Translate lowers prog. The program must have passed Check.
func Translate(prog *p4.Program, opts Options) (*model.Program, error) {
	if opts.RegisterCellLimit == 0 {
		opts.RegisterCellLimit = 32
	}
	t := &translator{
		p:         prog,
		m:         model.NewProgram(),
		opts:      opts,
		instances: map[string]string{},
		instTypes: map[string]p4.Type{},
		externs:   map[string]*externInst{},
	}
	if err := t.run(); err != nil {
		return nil, err
	}
	return t.m, nil
}

type externInst struct {
	kind    p4.LocalKind
	cells   []string // cell global names; nil when modeled symbolically
	width   int
	size    int
	control string
}

type translator struct {
	p    *p4.Program
	m    *model.Program
	opts Options

	// instances maps resolved struct/header type names to the canonical
	// storage prefix (the first parameter name seen with that type), so the
	// hdr/meta/standard_metadata structs are shared across pipeline blocks
	// as in the paper's global-variable modeling.
	instances map[string]string
	instTypes map[string]p4.Type

	headerPaths []string // all flattened header instance paths, e.g. "hdr.ipv4"
	externs     map[string]*externInst

	deferred []*model.AssertCheck
}

func (t *translator) errf(pos p4.Pos, format string, args ...any) error {
	return fmt.Errorf("%s:%s: %s", t.p.File, pos, fmt.Sprintf(format, args...))
}

func (t *translator) run() error {
	pk := t.p.Package
	if pk == nil {
		return fmt.Errorf("%s: no package instantiation (V1Switch-style main) found", t.p.File)
	}
	// Register canonical storage for every block parameter, in pipeline
	// order, so instance names come from the parser's parameter list.
	var blocks []any
	for _, pd := range t.p.Parsers {
		if pd.Name == pk.Args[0] {
			blocks = append(blocks, pd)
		}
	}
	if len(blocks) == 0 {
		return fmt.Errorf("%s: parser %s not found", t.p.File, pk.Args[0])
	}
	for _, name := range pk.Args[1:] {
		found := false
		for _, cd := range t.p.Controls {
			if cd.Name == name {
				blocks = append(blocks, cd)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("%s: control %s not found", t.p.File, name)
		}
	}
	for _, b := range blocks {
		var params []p4.Param
		switch d := b.(type) {
		case *p4.ParserDecl:
			params = d.Params
		case *p4.ControlDecl:
			params = d.Params
		}
		for _, pr := range params {
			t.registerParam(pr)
		}
	}

	// Core flags.
	t.m.AddGlobal(model.ForwardFlag, 1, false, 1)

	// Translate blocks in pipeline order and build the entry sequence.
	for _, b := range blocks {
		switch d := b.(type) {
		case *p4.ParserDecl:
			if err := t.translateParser(d); err != nil {
				return err
			}
			t.m.Entry = append(t.m.Entry, d.Name)
		case *p4.ControlDecl:
			if err := t.translateControl(d); err != nil {
				return err
			}
			t.m.Entry = append(t.m.Entry, d.Name)
		}
	}

	// Deferred assertions are tested at the path's final state, gated on
	// the annotation site having been reached: snapshots taken at the site
	// are meaningless (zero) on paths that never execute it, and the
	// paper's own evaluation only ever interprets these assertions over
	// executions of the annotated location.
	if len(t.deferred) > 0 {
		body := make([]model.Stmt, len(t.deferred))
		for i, chk := range t.deferred {
			reached := fmt.Sprintf("%s%d.$reached", model.SnapPrefix, chk.ID)
			body[i] = &model.If{
				Cond: &model.Ref{Name: reached},
				Then: []model.Stmt{chk},
			}
		}
		t.m.AddFunc(&model.Func{Name: "$checks", Body: body})
		t.m.Entry = append(t.m.Entry, "$checks")
	}
	return nil
}

// registerParam assigns canonical storage to a block parameter and declares
// the flattened globals on first sight.
func (t *translator) registerParam(pr p4.Param) {
	switch rt := t.p.ResolveType(pr.Type).(type) {
	case *p4.StructRef:
		if _, ok := t.instances[rt.Decl.Name]; ok {
			return
		}
		inst := pr.Name
		t.instances[rt.Decl.Name] = inst
		t.instTypes[inst] = rt
		t.declareStorage(inst, rt, pr.Name == "standard_metadata" || rt.Decl.Name == "standard_metadata_t")
	case *p4.HeaderRef:
		if _, ok := t.instances[rt.Decl.Name]; ok {
			return
		}
		inst := pr.Name
		t.instances[rt.Decl.Name] = inst
		t.instTypes[inst] = rt
		t.declareStorage(inst, rt, false)
	case *p4.BitType:
		t.m.AddGlobal(pr.Name, rt.Width, true, 0)
	case *p4.BoolType:
		t.m.AddGlobal(pr.Name, 1, true, 0)
	}
}

// declareStorage flattens a struct/header instance into globals.
// stdMeta marks the standard-metadata instance, whose ingress_port is
// environment-controlled (symbolic).
func (t *translator) declareStorage(prefix string, ty p4.Type, stdMeta bool) {
	switch rt := ty.(type) {
	case *p4.StructRef:
		for _, f := range rt.Decl.Fields {
			t.declareStorage(prefix+"."+f.Name, f.Type, stdMeta)
		}
	case *p4.HeaderRef:
		t.m.AddGlobal(prefix+model.ValidSuffix, 1, false, 0)
		t.headerPaths = append(t.headerPaths, prefix)
		for _, f := range rt.Decl.Fields {
			w := t.p.TypeWidth(f.Type)
			if w == 0 {
				w = 1
			}
			t.m.AddGlobal(prefix+"."+f.Name, w, false, 0)
		}
	case *p4.BitType:
		sym := stdMeta && strings.HasSuffix(prefix, ".ingress_port")
		t.m.AddGlobal(prefix, rt.Width, sym, 0)
	case *p4.BoolType:
		t.m.AddGlobal(prefix, 1, false, 0)
	}
}

// ctx carries the lexical environment of the block being translated.
type ctx struct {
	block   string            // control or parser name
	params  map[string]string // param name -> storage prefix
	locals  map[string]string // local/action-param name -> global name
	control *p4.ControlDecl   // nil in parsers
	parser  *p4.ParserDecl    // nil in controls
}

func (t *translator) newCtx(block string, params []p4.Param, control *p4.ControlDecl, parser *p4.ParserDecl) *ctx {
	c := &ctx{
		block:   block,
		params:  map[string]string{},
		locals:  map[string]string{},
		control: control,
		parser:  parser,
	}
	for _, pr := range params {
		switch rt := t.p.ResolveType(pr.Type).(type) {
		case *p4.StructRef:
			c.params[pr.Name] = t.instances[rt.Decl.Name]
		case *p4.HeaderRef:
			c.params[pr.Name] = t.instances[rt.Decl.Name]
		case *p4.BitType, *p4.BoolType:
			c.locals[pr.Name] = pr.Name
		case *p4.NamedType:
			// packet_in / packet_out handles: no storage.
		}
	}
	return c
}

// ----------------------------------------------------------------- parser --

func (t *translator) translateParser(pd *p4.ParserDecl) error {
	c := t.newCtx(pd.Name, pd.Params, nil, pd)
	for _, st := range pd.States {
		body, err := t.translateStateBody(c, st)
		if err != nil {
			return err
		}
		t.m.AddFunc(&model.Func{Name: pd.Name + "." + st.Name, Body: body})
	}
	t.m.AddFunc(&model.Func{Name: pd.Name, Body: []model.Stmt{
		&model.Call{Func: pd.Name + ".start"},
	}})
	return nil
}

func (t *translator) translateStateBody(c *ctx, st *p4.StateDecl) ([]model.Stmt, error) {
	var out []model.Stmt
	for _, s := range st.Body {
		stmts, err := t.translateStmt(c, s)
		if err != nil {
			return nil, err
		}
		out = append(out, stmts...)
	}
	tr, err := t.translateTransition(c, st.Transition)
	if err != nil {
		return nil, err
	}
	return append(out, tr...), nil
}

func (t *translator) stateTarget(c *ctx, target string) []model.Stmt {
	switch target {
	case "accept":
		return nil
	case "reject":
		// Paper §3.2: forward() is assigned false in the reject parse state.
		return []model.Stmt{
			&model.Assign{LHS: model.ForwardFlag, RHS: &model.Const{Width: 1, Val: 0}},
			&model.Halt{},
		}
	default:
		return []model.Stmt{&model.Call{Func: c.parser.Name + "." + target}}
	}
}

func (t *translator) translateTransition(c *ctx, tr p4.Transition) ([]model.Stmt, error) {
	switch x := tr.(type) {
	case nil:
		return nil, nil // implicit accept
	case *p4.TransDirect:
		return t.stateTarget(c, x.Target), nil
	case *p4.TransSelect:
		keys := make([]model.Expr, len(x.Exprs))
		widths := make([]int, len(x.Exprs))
		for i, e := range x.Exprs {
			ke, w, err := t.translateExpr(c, e, 0)
			if err != nil {
				return nil, err
			}
			keys[i] = ke
			widths[i] = w
		}
		// Build the cascade from the last case backwards. A select with no
		// matching case rejects.
		elseBody := []model.Stmt{
			&model.Assign{LHS: model.ForwardFlag, RHS: &model.Const{Width: 1, Val: 0}},
			&model.Halt{},
		}
		for i := len(x.Cases) - 1; i >= 0; i-- {
			cs := x.Cases[i]
			cond, err := t.caseCond(c, keys, widths, cs.Values)
			if err != nil {
				return nil, err
			}
			body := t.stateTarget(c, cs.Target)
			if cond == nil { // all-default case: unconditional
				elseBody = body
				continue
			}
			elseBody = []model.Stmt{&model.If{Cond: cond, Then: body, Else: elseBody}}
		}
		return elseBody, nil
	}
	return nil, fmt.Errorf("unknown transition")
}

// caseCond builds the conjunction for one select case; nil means
// "matches everything".
func (t *translator) caseCond(c *ctx, keys []model.Expr, widths []int, values []p4.CaseValue) (model.Expr, error) {
	var cond model.Expr
	for i, v := range values {
		if v.Default {
			continue
		}
		val, ok := t.p.EvalConstExpr(v.Expr)
		if !ok {
			return nil, t.errf(v.Expr.Position(), "select case value must be constant")
		}
		var leg model.Expr
		if v.Mask != nil {
			mask, ok := t.p.EvalConstExpr(v.Mask)
			if !ok {
				return nil, t.errf(v.Mask.Position(), "select case mask must be constant")
			}
			leg = &model.Bin{
				Op: model.OpEq,
				X:  &model.Bin{Op: model.OpAnd, X: keys[i], Y: &model.Const{Width: widths[i], Val: mask}},
				Y:  &model.Const{Width: widths[i], Val: val & mask},
			}
		} else {
			leg = &model.Bin{Op: model.OpEq, X: keys[i], Y: &model.Const{Width: widths[i], Val: val}}
		}
		if cond == nil {
			cond = leg
		} else {
			cond = &model.Bin{Op: model.OpLAnd, X: cond, Y: leg}
		}
	}
	return cond, nil
}

// ---------------------------------------------------------------- control --

func (t *translator) translateControl(cd *p4.ControlDecl) error {
	c := t.newCtx(cd.Name, cd.Params, cd, nil)

	// Control-level locals and extern instances.
	for _, l := range cd.Locals {
		switch l.Kind {
		case p4.LocalVar:
			g := cd.Name + "." + l.Name
			w := t.p.TypeWidth(l.Type)
			if w == 0 {
				return t.errf(l.Pos, "unsupported local variable type for %s", l.Name)
			}
			var init uint64
			if l.Init != nil {
				v, ok := t.p.EvalConstExpr(l.Init)
				if !ok {
					return t.errf(l.Pos, "control-level initializer for %s must be constant", l.Name)
				}
				init = v
			}
			t.m.AddGlobal(g, w, false, init)
			c.locals[l.Name] = g
		default:
			if err := t.declareExtern(cd, l); err != nil {
				return err
			}
		}
	}

	// Actions become functions; parameters become globals.
	for _, a := range cd.Actions {
		ac := t.newCtx(cd.Name, cd.Params, cd, nil)
		for k, v := range c.locals {
			ac.locals[k] = v
		}
		for _, pr := range a.Params {
			g := cd.Name + "." + a.Name + "." + pr.Name
			w := t.p.TypeWidth(pr.Type)
			if w == 0 {
				return t.errf(pr.Pos, "unsupported action parameter type for %s", pr.Name)
			}
			t.m.AddGlobal(g, w, false, 0)
			ac.locals[pr.Name] = g
		}
		var body []model.Stmt
		for _, s := range a.Body {
			stmts, err := t.translateStmt(ac, s)
			if err != nil {
				return err
			}
			body = append(body, stmts...)
		}
		t.m.AddFunc(&model.Func{Name: cd.Name + "." + a.Name, Body: body})
	}
	// Implicit NoAction.
	t.m.AddFunc(&model.Func{Name: cd.Name + ".NoAction", Body: nil})

	// Tables become functions.
	for _, tb := range cd.Tables {
		body, err := t.translateTable(c, cd, tb)
		if err != nil {
			return err
		}
		t.m.AddFunc(&model.Func{Name: cd.Name + "." + tb.Name, Body: body})
	}

	// The apply block becomes the control's own function.
	var body []model.Stmt
	for _, s := range cd.Apply.Stmts {
		stmts, err := t.translateStmt(c, s)
		if err != nil {
			return err
		}
		body = append(body, stmts...)
	}
	t.m.AddFunc(&model.Func{Name: cd.Name, Body: body})
	return nil
}

func (t *translator) declareExtern(cd *p4.ControlDecl, l *p4.LocalDecl) error {
	size := 0
	if l.Size != nil {
		v, ok := t.p.EvalConstExpr(l.Size)
		if !ok {
			return t.errf(l.Pos, "extern size for %s must be constant", l.Name)
		}
		size = int(v)
	}
	width := 48 // counters/meters default cell width
	if l.Type != nil {
		if w := t.p.TypeWidth(l.Type); w > 0 {
			width = w
		}
	}
	inst := &externInst{kind: l.Kind, width: width, size: size, control: cd.Name}
	if size > 0 && size <= t.opts.RegisterCellLimit && l.Kind != p4.LocalMeter &&
		!(t.opts.SymbolicRegisters && l.Kind == p4.LocalRegister) {
		inst.cells = make([]string, size)
		for i := 0; i < size; i++ {
			name := fmt.Sprintf("%s.%s[%d]", cd.Name, l.Name, i)
			t.m.AddGlobal(name, width, false, 0)
			inst.cells[i] = name
		}
	}
	t.externs[cd.Name+"."+l.Name] = inst
	return nil
}

// translateTable compiles one table to a model function body, following the
// paper's two modeling strategies.
func (t *translator) translateTable(c *ctx, cd *p4.ControlDecl, tb *p4.TableDecl) ([]model.Stmt, error) {
	// Resolve key expressions once.
	keyExprs := make([]model.Expr, len(tb.Keys))
	keyWidths := make([]int, len(tb.Keys))
	for i, k := range tb.Keys {
		e, w, err := t.translateExpr(c, k.Expr, 0)
		if err != nil {
			return nil, err
		}
		keyExprs[i] = e
		keyWidths[i] = w
	}

	hitG := cd.Name + "." + tb.Name + ".$hit"
	t.m.AddGlobal(hitG, 1, false, 0)

	concrete := t.tableRules(cd, tb)
	if concrete == nil {
		return t.forkTable(c, cd, tb)
	}

	// Known rules: cascading if-else in match-priority order.
	ordered := orderRules(tb, concrete)
	defaultBody, err := t.defaultActionBody(c, cd, tb)
	if err != nil {
		return nil, err
	}
	body := append([]model.Stmt{
		&model.Assign{LHS: hitG, RHS: &model.Const{Width: 1, Val: 0}},
	}, defaultBody...)
	for i := len(ordered) - 1; i >= 0; i-- {
		r := ordered[i]
		var cond model.Expr
		for ki := range tb.Keys {
			var m rules.Match
			if ki < len(r.Keys) {
				m = r.Keys[ki]
			} else {
				m = rules.Match{Kind: rules.Wildcard}
			}
			val, mask := m.MaskBits(keyWidths[ki])
			var leg model.Expr
			switch {
			case mask == 0:
				continue // wildcard: no constraint
			case mask == fullMask(keyWidths[ki]):
				leg = &model.Bin{Op: model.OpEq, X: keyExprs[ki], Y: &model.Const{Width: keyWidths[ki], Val: val}}
			default:
				leg = &model.Bin{
					Op: model.OpEq,
					X:  &model.Bin{Op: model.OpAnd, X: keyExprs[ki], Y: &model.Const{Width: keyWidths[ki], Val: mask}},
					Y:  &model.Const{Width: keyWidths[ki], Val: val},
				}
			}
			if cond == nil {
				cond = leg
			} else {
				cond = &model.Bin{Op: model.OpLAnd, X: cond, Y: leg}
			}
		}
		branch, err := t.ruleActionBody(c, cd, tb, r)
		if err != nil {
			return nil, err
		}
		branch = append([]model.Stmt{
			&model.Assign{LHS: hitG, RHS: &model.Const{Width: 1, Val: 1}},
		}, branch...)
		if cond == nil {
			// Match-all rule: everything below it is dead.
			body = branch
			continue
		}
		body = []model.Stmt{&model.If{Cond: cond, Then: branch, Else: body}}
	}
	return body, nil
}

func fullMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// tableRules returns the concrete rules for a table, or nil when the table
// should be modeled symbolically.
func (t *translator) tableRules(cd *p4.ControlDecl, tb *p4.TableDecl) []rules.Rule {
	if len(tb.ConstEntries) > 0 {
		out := make([]rules.Rule, 0, len(tb.ConstEntries))
		for i, ent := range tb.ConstEntries {
			r := rules.Rule{Table: tb.Name, Action: ent.Action.Name, Priority: i}
			for _, arg := range ent.Action.Args {
				v, _ := t.p.EvalConstExpr(arg)
				r.Args = append(r.Args, v)
			}
			for ki, kv := range ent.Keys {
				if kv.Default {
					r.Keys = append(r.Keys, rules.Match{Kind: rules.Wildcard})
					continue
				}
				val, _ := t.p.EvalConstExpr(kv.Expr)
				if kv.Mask != nil {
					mask, _ := t.p.EvalConstExpr(kv.Mask)
					r.Keys = append(r.Keys, rules.Match{Kind: rules.Ternary, Value: val, Mask: mask})
				} else if ki < len(tb.Keys) && tb.Keys[ki].Match == p4.MatchLPM {
					r.Keys = append(r.Keys, rules.Match{Kind: rules.LPM, Value: val, PrefixLen: 64})
				} else {
					r.Keys = append(r.Keys, rules.Match{Kind: rules.Exact, Value: val})
				}
			}
			out = append(out, r)
		}
		return out
	}
	if rs := t.opts.Rules.ForTable(cd.Name, tb.Name); len(rs) > 0 {
		return rs
	}
	return nil
}

// orderRules sorts rules by match semantics: longest prefix first for LPM
// keys, then ascending priority (stable).
func orderRules(tb *p4.TableDecl, in []rules.Rule) []rules.Rule {
	out := append([]rules.Rule(nil), in...)
	lpmKey := -1
	for i, k := range tb.Keys {
		if k.Match == p4.MatchLPM {
			lpmKey = i
			break
		}
	}
	less := func(a, b rules.Rule) bool {
		if lpmKey >= 0 && lpmKey < len(a.Keys) && lpmKey < len(b.Keys) {
			pa, pb := a.Keys[lpmKey].PrefixLen, b.Keys[lpmKey].PrefixLen
			if a.Keys[lpmKey].Kind != rules.LPM {
				pa = -1
			}
			if b.Keys[lpmKey].Kind != rules.LPM {
				pb = -1
			}
			if pa != pb {
				return pa > pb
			}
		}
		return a.Priority < b.Priority
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ruleActionBody assigns the rule's constant arguments to the action's
// parameter globals and calls the action.
func (t *translator) ruleActionBody(c *ctx, cd *p4.ControlDecl, tb *p4.TableDecl, r rules.Rule) ([]model.Stmt, error) {
	var out []model.Stmt
	if r.Action != "NoAction" {
		act := cd.Action(r.Action)
		if act == nil {
			return nil, t.errf(tb.Pos, "rule for table %s references unknown action %s", tb.Name, r.Action)
		}
		if len(r.Args) != len(act.Params) {
			return nil, t.errf(tb.Pos, "rule for %s.%s passes %d args to %s, want %d",
				cd.Name, tb.Name, len(r.Args), r.Action, len(act.Params))
		}
		for i, pr := range act.Params {
			w := t.p.TypeWidth(pr.Type)
			out = append(out, &model.Assign{
				LHS: cd.Name + "." + r.Action + "." + pr.Name,
				RHS: &model.Const{Width: w, Val: r.Args[i] & fullMask(w)},
			})
		}
	}
	out = append(out, &model.Call{Func: cd.Name + "." + r.Action})
	return out, nil
}

func (t *translator) defaultActionBody(c *ctx, cd *p4.ControlDecl, tb *p4.TableDecl) ([]model.Stmt, error) {
	if tb.DefaultAction == nil {
		return []model.Stmt{&model.Call{Func: cd.Name + ".NoAction"}}, nil
	}
	da := tb.DefaultAction
	var out []model.Stmt
	if da.Name != "NoAction" {
		act := cd.Action(da.Name)
		for i, pr := range act.Params {
			if i >= len(da.Args) {
				return nil, t.errf(da.Pos, "default_action %s needs %d args", da.Name, len(act.Params))
			}
			v, ok := t.p.EvalConstExpr(da.Args[i])
			if !ok {
				return nil, t.errf(da.Pos, "default_action argument must be constant")
			}
			w := t.p.TypeWidth(pr.Type)
			out = append(out, &model.Assign{
				LHS: cd.Name + "." + da.Name + "." + pr.Name,
				RHS: &model.Const{Width: w, Val: v & fullMask(w)},
			})
		}
	}
	out = append(out, &model.Call{Func: cd.Name + "." + da.Name})
	return out, nil
}

// forkTable models a table with unknown rules: a fork with one branch per
// action, each with fully symbolic action parameters (paper Fig. 6,
// "Tables"/"Actions").
func (t *translator) forkTable(c *ctx, cd *p4.ControlDecl, tb *p4.TableDecl) ([]model.Stmt, error) {
	sel := cd.Name + "." + tb.Name + ".$action"
	t.m.AddGlobal(sel, 8, false, 0)
	// With unknown rules, whether the lookup hits is also
	// control-plane-determined: the hit flag is a fresh symbolic value.
	hitG := cd.Name + "." + tb.Name + ".$hit"
	fork := &model.Fork{Selector: sel}
	for i, an := range tb.Actions {
		var branch []model.Stmt
		branch = append(branch, &model.Assign{LHS: sel, RHS: &model.Const{Width: 8, Val: uint64(i)}})
		if an != "NoAction" {
			act := cd.Action(an)
			for _, pr := range act.Params {
				g := cd.Name + "." + an + "." + pr.Name
				branch = append(branch, &model.MakeSymbolic{Var: g, Hint: g})
			}
		}
		branch = append(branch, &model.Call{Func: cd.Name + "." + an})
		fork.Labels = append(fork.Labels, an)
		fork.Branches = append(fork.Branches, branch)
	}
	return []model.Stmt{&model.MakeSymbolic{Var: hitG, Hint: hitG}, fork}, nil
}
