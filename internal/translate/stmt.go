package translate

import (
	"fmt"
	"strings"

	"p4assert/internal/assertlang"
	"p4assert/internal/model"
	"p4assert/internal/p4"
)

// translateStmt lowers one P4 statement to model statements.
func (t *translator) translateStmt(c *ctx, s p4.Stmt) ([]model.Stmt, error) {
	switch st := s.(type) {
	case *p4.BlockStmt:
		var out []model.Stmt
		for _, inner := range st.Stmts {
			stmts, err := t.translateStmt(c, inner)
			if err != nil {
				return nil, err
			}
			out = append(out, stmts...)
		}
		return out, nil

	case *p4.AssignStmt:
		lhs, width, err := t.resolveLValue(c, st.LHS)
		if err != nil {
			return nil, err
		}
		rhs, rw, err := t.translateExpr(c, st.RHS, width)
		if err != nil {
			return nil, err
		}
		if rw != width {
			rhs = &model.Cast{Width: width, X: rhs}
		}
		var out []model.Stmt
		if t.opts.AutoValidityChecks {
			refs := model.Refs(rhs, []string{lhs})
			out = t.autoValidityChecks(refs, st.Pos, c.block)
		}
		return append(out, &model.Assign{LHS: lhs, RHS: rhs}), nil

	case *p4.IfStmt:
		var prelude []model.Stmt
		var cond model.Expr
		// "if (t.apply().hit)" applies the table, then branches on its
		// hit flag (the only expression position P4 allows apply in).
		if table, negate, ok := applyHitPattern(st.Cond); ok {
			if c.control == nil || c.control.Table(table) == nil {
				return nil, t.errf(st.Pos, "apply().hit on unknown table %s", table)
			}
			prelude = append(prelude, &model.Call{Func: c.block + "." + table})
			cond = &model.Ref{Name: c.block + "." + table + hitSuffix}
			if negate {
				cond = &model.Un{Op: model.OpNot, X: cond}
			}
		} else {
			var err error
			cond, _, err = t.translateExpr(c, st.Cond, 1)
			if err != nil {
				return nil, err
			}
		}
		then, err := t.translateStmt(c, st.Then)
		if err != nil {
			return nil, err
		}
		var els []model.Stmt
		if st.Else != nil {
			els, err = t.translateStmt(c, st.Else)
			if err != nil {
				return nil, err
			}
		}
		return append(prelude, &model.If{Cond: cond, Then: then, Else: els}), nil

	case *p4.VarDeclStmt:
		g := c.block + "." + st.Name
		w := t.p.TypeWidth(st.Type)
		if w == 0 {
			return nil, t.errf(st.Pos, "unsupported local variable type for %s", st.Name)
		}
		t.m.AddGlobal(g, w, false, 0)
		c.locals[st.Name] = g
		if st.Init != nil {
			rhs, rw, err := t.translateExpr(c, st.Init, w)
			if err != nil {
				return nil, err
			}
			if rw != w {
				rhs = &model.Cast{Width: w, X: rhs}
			}
			return []model.Stmt{&model.Assign{LHS: g, RHS: rhs}}, nil
		}
		return []model.Stmt{&model.Assign{LHS: g, RHS: &model.Const{Width: w, Val: 0}}}, nil

	case *p4.CallStmt:
		return t.translateCallStmt(c, st.Call)

	case *p4.AssumeStmt:
		cond, _, err := t.translateExpr(c, st.Cond, 1)
		if err != nil {
			return nil, err
		}
		return []model.Stmt{&model.Assume{Cond: cond}}, nil

	case *p4.AssertStmt:
		return t.translateAssert(c, st)

	case *p4.ExitStmt:
		return []model.Stmt{&model.Exit{}}, nil
	case *p4.ReturnStmt:
		return []model.Stmt{&model.Return{}}, nil
	}
	return nil, fmt.Errorf("unsupported statement %T", s)
}

// translateCallStmt handles the builtin statement-position calls.
func (t *translator) translateCallStmt(c *ctx, call *p4.CallExpr) ([]model.Stmt, error) {
	switch fun := call.Fun.(type) {
	case *p4.Ident:
		switch fun.Name {
		case "mark_to_drop":
			return []model.Stmt{
				&model.Assign{LHS: model.ForwardFlag, RHS: &model.Const{Width: 1, Val: 0}},
				&model.Assign{
					LHS: t.stdMetaField("egress_spec"),
					RHS: &model.Const{Width: 9, Val: p4.DropPort},
				},
			}, nil
		case "NoAction":
			return []model.Stmt{&model.Call{Func: c.block + ".NoAction"}}, nil
		}
		// Direct action invocation.
		if c.control != nil {
			if act := c.control.Action(fun.Name); act != nil {
				var out []model.Stmt
				for i, pr := range act.Params {
					w := t.p.TypeWidth(pr.Type)
					arg, aw, err := t.translateExpr(c, call.Args[i], w)
					if err != nil {
						return nil, err
					}
					if aw != w {
						arg = &model.Cast{Width: w, X: arg}
					}
					out = append(out, &model.Assign{LHS: c.block + "." + fun.Name + "." + pr.Name, RHS: arg})
				}
				out = append(out, &model.Call{Func: c.block + "." + fun.Name})
				return out, nil
			}
		}
		return nil, t.errf(call.Pos, "call to unknown function %s", fun.Name)

	case *p4.Member:
		recv := p4.PathString(fun.X)
		switch fun.Name {
		case "extract":
			return t.translateExtract(c, call)
		case "emit":
			return t.translateEmit(c, call)
		case "apply":
			if c.control == nil || c.control.Table(recv) == nil {
				return nil, t.errf(call.Pos, "apply on unknown table %s", recv)
			}
			return []model.Stmt{&model.Call{Func: c.block + "." + recv}}, nil
		case "setValid", "setInvalid":
			path, err := t.resolveHeaderPath(c, fun.X)
			if err != nil {
				return nil, err
			}
			v := uint64(0)
			if fun.Name == "setValid" {
				v = 1
			}
			return []model.Stmt{&model.Assign{
				LHS: path + model.ValidSuffix,
				RHS: &model.Const{Width: 1, Val: v},
			}}, nil
		case "read", "write", "count", "execute_meter":
			return t.translateExternCall(c, recv, fun.Name, call)
		}
		return nil, t.errf(call.Pos, "unsupported method %s", fun.Name)
	}
	return nil, t.errf(call.Pos, "unsupported call")
}

func (t *translator) stdMetaField(field string) string {
	inst, ok := t.instances["standard_metadata_t"]
	if !ok {
		inst = "standard_metadata"
		std := t.p.Struct("standard_metadata_t")
		t.instances["standard_metadata_t"] = inst
		t.declareStorage(inst, &p4.StructRef{Decl: std}, true)
	}
	return inst + "." + field
}

// translateExtract models pkt.extract(hdr.x): every field of the header
// receives a fresh symbolic value (the packet bytes), the validity bit is
// set, and the extract_header flag is raised (paper §3.2 "Assertions").
func (t *translator) translateExtract(c *ctx, call *p4.CallExpr) ([]model.Stmt, error) {
	if len(call.Args) != 1 {
		return nil, t.errf(call.Pos, "extract wants 1 argument")
	}
	path, err := t.resolveHeaderPath(c, call.Args[0])
	if err != nil {
		return nil, err
	}
	hdr, err := t.headerDeclFor(c, call.Args[0])
	if err != nil {
		return nil, err
	}
	var out []model.Stmt
	for _, f := range hdr.Fields {
		g := path + "." + f.Name
		out = append(out, &model.MakeSymbolic{Var: g, Hint: g})
	}
	out = append(out,
		&model.Assign{LHS: path + model.ValidSuffix, RHS: &model.Const{Width: 1, Val: 1}},
		&model.Assign{LHS: t.extractFlag(path), RHS: &model.Const{Width: 1, Val: 1}},
	)
	return out, nil
}

// translateEmit models pkt.emit(hdr.x): the emit_header flag records
// whether the header was actually on the wire, i.e. emitted while valid.
func (t *translator) translateEmit(c *ctx, call *p4.CallExpr) ([]model.Stmt, error) {
	if len(call.Args) != 1 {
		return nil, t.errf(call.Pos, "emit wants 1 argument")
	}
	path, err := t.resolveHeaderPath(c, call.Args[0])
	if err != nil {
		return nil, err
	}
	return []model.Stmt{&model.Assign{
		LHS: t.emitFlag(path),
		RHS: &model.Ref{Name: path + model.ValidSuffix},
	}}, nil
}

// hitSuffix names the per-table hit flag global.
const hitSuffix = ".$hit"

// applyHitPattern recognizes "t.apply().hit", "t.apply().miss" and their
// negations, returning the table name and whether the condition is
// inverted relative to hit.
func applyHitPattern(e p4.Expr) (table string, negate bool, ok bool) {
	if un, isNot := e.(*p4.Unary); isNot && un.Op == p4.UnNot {
		tbl, neg, inner := applyHitPattern(un.X)
		return tbl, !neg, inner
	}
	m, isMember := e.(*p4.Member)
	if !isMember || (m.Name != "hit" && m.Name != "miss") {
		return "", false, false
	}
	call, isCall := m.X.(*p4.CallExpr)
	if !isCall {
		return "", false, false
	}
	fun, isFun := call.Fun.(*p4.Member)
	if !isFun || fun.Name != "apply" {
		return "", false, false
	}
	return p4.PathString(fun.X), m.Name == "miss", true
}

// autoValidityChecks emits one assertion per distinct header whose fields
// the given globals touch, requiring that header to be valid at this
// point. Used by Options.AutoValidityChecks.
func (t *translator) autoValidityChecks(refs []string, pos p4.Pos, block string) []model.Stmt {
	var out []model.Stmt
	seen := map[string]bool{}
	for _, ref := range refs {
		hp, ok := t.headerPrefixOf(ref)
		if !ok || seen[hp] {
			continue
		}
		seen[hp] = true
		id := len(t.m.Asserts)
		t.m.Asserts = append(t.m.Asserts, &model.AssertInfo{
			ID:       id,
			Source:   fmt.Sprintf("auto: valid(%s)", hp),
			Location: fmt.Sprintf("%s:%s (%s)", t.p.File, pos, block),
		})
		out = append(out, &model.AssertCheck{
			ID:   id,
			Cond: &model.Ref{Name: hp + model.ValidSuffix},
		})
	}
	return out
}

// headerPrefixOf maps a field global like "hdr.ipv4.ttl" to its header
// instance path ("hdr.ipv4"); validity bits themselves don't count.
func (t *translator) headerPrefixOf(global string) (string, bool) {
	if strings.HasSuffix(global, model.ValidSuffix) {
		return "", false
	}
	for _, hp := range t.headerPaths {
		if strings.HasPrefix(global, hp+".") {
			return hp, true
		}
	}
	return "", false
}

func (t *translator) extractFlag(headerPath string) string {
	name := model.ExtractPrefix + headerPath
	t.m.AddGlobal(name, 1, false, 0)
	return name
}

func (t *translator) emitFlag(headerPath string) string {
	name := model.EmitPrefix + headerPath
	t.m.AddGlobal(name, 1, false, 0)
	return name
}

func (t *translator) translateExternCall(c *ctx, recv, method string, call *p4.CallExpr) ([]model.Stmt, error) {
	inst, ok := t.externs[c.block+"."+recv]
	if !ok {
		return nil, t.errf(call.Pos, "unknown extern instance %s", recv)
	}
	switch method {
	case "read":
		if len(call.Args) != 2 {
			return nil, t.errf(call.Pos, "register read wants (dst, index)")
		}
		dst, dw, err := t.resolveLValue(c, call.Args[0])
		if err != nil {
			return nil, err
		}
		if inst.cells == nil {
			// Large register: any value may be stored (paper §6 option i).
			return []model.Stmt{&model.MakeSymbolic{Var: dst, Hint: dst}}, nil
		}
		idx, iw, err := t.translateExpr(c, call.Args[1], 32)
		if err != nil {
			return nil, err
		}
		// Ite chain over the cells, last cell as the fallback.
		var e model.Expr = &model.Ref{Name: inst.cells[len(inst.cells)-1]}
		for i := len(inst.cells) - 2; i >= 0; i-- {
			e = &model.Cond{
				C: &model.Bin{Op: model.OpEq, X: idx, Y: &model.Const{Width: iw, Val: uint64(i)}},
				T: &model.Ref{Name: inst.cells[i]},
				F: e,
			}
		}
		if inst.width != dw {
			e = &model.Cast{Width: dw, X: e}
		}
		return []model.Stmt{&model.Assign{LHS: dst, RHS: e}}, nil

	case "write":
		if len(call.Args) != 2 {
			return nil, t.errf(call.Pos, "register write wants (index, value)")
		}
		if inst.cells == nil {
			return nil, nil // writes to symbolic registers are absorbed
		}
		idx, iw, err := t.translateExpr(c, call.Args[0], 32)
		if err != nil {
			return nil, err
		}
		val, vw, err := t.translateExpr(c, call.Args[1], inst.width)
		if err != nil {
			return nil, err
		}
		if vw != inst.width {
			val = &model.Cast{Width: inst.width, X: val}
		}
		var out []model.Stmt
		for i, cell := range inst.cells {
			out = append(out, &model.Assign{
				LHS: cell,
				RHS: &model.Cond{
					C: &model.Bin{Op: model.OpEq, X: idx, Y: &model.Const{Width: iw, Val: uint64(i)}},
					T: val,
					F: &model.Ref{Name: cell},
				},
			})
		}
		return out, nil

	case "count":
		if inst.cells == nil {
			return nil, nil
		}
		if len(call.Args) != 1 {
			return nil, t.errf(call.Pos, "count wants (index)")
		}
		idx, iw, err := t.translateExpr(c, call.Args[0], 32)
		if err != nil {
			return nil, err
		}
		var out []model.Stmt
		for i, cell := range inst.cells {
			out = append(out, &model.Assign{
				LHS: cell,
				RHS: &model.Cond{
					C: &model.Bin{Op: model.OpEq, X: idx, Y: &model.Const{Width: iw, Val: uint64(i)}},
					T: &model.Bin{Op: model.OpAdd, X: &model.Ref{Name: cell}, Y: &model.Const{Width: inst.width, Val: 1}},
					F: &model.Ref{Name: cell},
				},
			})
		}
		return out, nil

	case "execute_meter":
		if len(call.Args) != 2 {
			return nil, t.errf(call.Pos, "execute_meter wants (index, result)")
		}
		dst, _, err := t.resolveLValue(c, call.Args[1])
		if err != nil {
			return nil, err
		}
		// Meter colors are environment-determined: fully symbolic.
		return []model.Stmt{&model.MakeSymbolic{Var: dst, Hint: dst}}, nil
	}
	return nil, t.errf(call.Pos, "unsupported extern method %s", method)
}

// ------------------------------------------------------------ assertions --

// translateAssert compiles an @assert annotation. Location-restricted
// assertions check in place; assertions containing unrestricted methods
// snapshot their restricted parts here and are checked at every path's
// final state (paper §3.2 "Assertions").
func (t *translator) translateAssert(c *ctx, st *p4.AssertStmt) ([]model.Stmt, error) {
	ast, err := assertlang.Parse(st.Text)
	if err != nil {
		return nil, t.errf(st.Pos, "bad assertion: %v", err)
	}
	id := len(t.m.Asserts)
	info := &model.AssertInfo{
		ID:       id,
		Source:   st.Text,
		Location: fmt.Sprintf("%s:%s (%s)", t.p.File, st.Pos, c.block),
		Deferred: assertlang.HasUnrestricted(ast),
	}
	t.m.Asserts = append(t.m.Asserts, info)

	ac := &assertCompiler{t: t, c: c, id: id, deferred: info.Deferred}
	cond, err := ac.compile(ast)
	if err != nil {
		return nil, t.errf(st.Pos, "assertion %q: %v", st.Text, err)
	}

	if !info.Deferred {
		return append(ac.site, &model.AssertCheck{ID: id, Cond: cond}), nil
	}
	reached := fmt.Sprintf("%s%d.$reached", model.SnapPrefix, id)
	t.m.AddGlobal(reached, 1, false, 0)
	site := append(ac.site, &model.Assign{LHS: reached, RHS: &model.Const{Width: 1, Val: 1}})
	t.deferred = append(t.deferred, &model.AssertCheck{ID: id, Cond: cond})
	return site, nil
}

// assertCompiler builds the IR condition for one assertion, accumulating
// the instrumentation statements that must run at the annotation site.
type assertCompiler struct {
	t        *translator
	c        *ctx
	id       int
	deferred bool
	site     []model.Stmt
	snaps    map[string]string // field global -> snapshot global
	tpFlag   string
}

func (ac *assertCompiler) snapshot(fieldGlobal string, width int) string {
	if ac.snaps == nil {
		ac.snaps = map[string]string{}
	}
	if s, ok := ac.snaps[fieldGlobal]; ok {
		return s
	}
	name := fmt.Sprintf("%s%d.%s", model.SnapPrefix, ac.id, fieldGlobal)
	ac.t.m.AddGlobal(name, width, false, 0)
	ac.site = append(ac.site, &model.Assign{LHS: name, RHS: &model.Ref{Name: fieldGlobal}})
	ac.snaps[fieldGlobal] = name
	return name
}

func (ac *assertCompiler) compile(e assertlang.Expr) (model.Expr, error) {
	switch x := e.(type) {
	case *assertlang.Num:
		return &model.Const{Width: 32, Val: x.Value}, nil

	case *assertlang.FieldRef:
		g, w, err := ac.t.resolveAssertPath(ac.c, x.Path)
		if err != nil {
			return nil, err
		}
		if ac.deferred {
			// Restricted elements of a deferred assertion read the value
			// the field had at the annotation site.
			return &model.Ref{Name: ac.snapshot(g, w)}, nil
		}
		return &model.Ref{Name: g}, nil

	case *assertlang.Not:
		inner, err := ac.compile(x.X)
		if err != nil {
			return nil, err
		}
		return &model.Un{Op: model.OpNot, X: inner}, nil

	case *assertlang.Bin:
		lhs, err := ac.compile(x.X)
		if err != nil {
			return nil, err
		}
		rhs, err := ac.compile(x.Y)
		if err != nil {
			return nil, err
		}
		op, ok := assertBinOps[x.Op]
		if !ok {
			return nil, fmt.Errorf("unsupported operator %v", x.Op)
		}
		return &model.Bin{Op: op, X: lhs, Y: rhs}, nil

	case *assertlang.Forward:
		return &model.Ref{Name: model.ForwardFlag}, nil

	case *assertlang.TraversePath:
		if ac.tpFlag == "" {
			ac.tpFlag = fmt.Sprintf("%s%d", model.TraversePrefix, ac.id)
			ac.t.m.AddGlobal(ac.tpFlag, 1, false, 0)
			// The flag is raised just before the assertion location.
			ac.site = append(ac.site, &model.Assign{LHS: ac.tpFlag, RHS: &model.Const{Width: 1, Val: 1}})
		}
		return &model.Ref{Name: ac.tpFlag}, nil

	case *assertlang.Constant:
		g, w, err := ac.t.resolveAssertPath(ac.c, x.Field)
		if err != nil {
			return nil, err
		}
		snap := ac.snapshot(g, w)
		// constant(f) holds iff the value at the site equals the final
		// value; the bare Ref reads the final state when checked deferred.
		return &model.Bin{Op: model.OpEq, X: &model.Ref{Name: snap}, Y: &model.Ref{Name: g}}, nil

	case *assertlang.IfM:
		cond, err := ac.compile(x.Cond)
		if err != nil {
			return nil, err
		}
		then, err := ac.compile(x.Then)
		if err != nil {
			return nil, err
		}
		var els model.Expr = &model.Const{Width: 1, Val: 1}
		if x.Else != nil {
			els, err = ac.compile(x.Else)
			if err != nil {
				return nil, err
			}
		}
		return &model.Cond{C: cond, T: then, F: els}, nil

	case *assertlang.ExtractHeader:
		path, err := ac.t.resolveAssertHeader(ac.c, x.Header)
		if err != nil {
			return nil, err
		}
		return &model.Ref{Name: ac.t.extractFlag(path)}, nil

	case *assertlang.EmitHeader:
		path, err := ac.t.resolveAssertHeader(ac.c, x.Header)
		if err != nil {
			return nil, err
		}
		return &model.Ref{Name: ac.t.emitFlag(path)}, nil

	case *assertlang.Valid:
		path, err := ac.t.resolveAssertHeader(ac.c, x.Header)
		if err != nil {
			return nil, err
		}
		g := path + model.ValidSuffix
		if ac.deferred {
			// valid() is location-restricted: snapshot at the site.
			return &model.Ref{Name: ac.snapshot(g, 1)}, nil
		}
		return &model.Ref{Name: g}, nil
	}
	return nil, fmt.Errorf("unsupported assertion expression %T", e)
}

var assertBinOps = map[assertlang.BinOp]model.Op{
	assertlang.OpOr: model.OpLOr, assertlang.OpAnd: model.OpLAnd,
	assertlang.OpEq: model.OpEq, assertlang.OpNe: model.OpNe,
	assertlang.OpLt: model.OpLt, assertlang.OpLe: model.OpLe,
	assertlang.OpGt: model.OpGt, assertlang.OpGe: model.OpGe,
	assertlang.OpAdd: model.OpAdd, assertlang.OpSub: model.OpSub,
	assertlang.OpMul: model.OpMul, assertlang.OpDiv: model.OpDiv,
	assertlang.OpMod: model.OpMod,
}

// ---------------------------------------------------------- name resolution --

// resolveLValue maps an assignable P4 expression to a global name.
func (t *translator) resolveLValue(c *ctx, e p4.Expr) (string, int, error) {
	path := p4.PathString(e)
	if path == "" {
		return "", 0, t.errf(e.Position(), "expression is not assignable")
	}
	return t.resolvePath(c, path, e.Position())
}

func (t *translator) resolvePath(c *ctx, path string, pos p4.Pos) (string, int, error) {
	segs := strings.SplitN(path, ".", 2)
	var global string
	if inst, ok := c.params[segs[0]]; ok {
		if len(segs) == 1 {
			global = inst
		} else {
			global = inst + "." + segs[1]
		}
	} else if g, ok := c.locals[segs[0]]; ok {
		if len(segs) > 1 {
			return "", 0, t.errf(pos, "%s is scalar; cannot select %s", segs[0], segs[1])
		}
		global = g
	} else {
		global = path
	}
	g, ok := t.m.Global(global)
	if !ok {
		return "", 0, t.errf(pos, "cannot resolve %s (tried %s)", path, global)
	}
	return g.Name, g.Width, nil
}

// resolveAssertPath resolves a dotted path from assertion text to a global.
// Assertions are written against source-level names, which may omit the
// enclosing instance ("ipv4.ttl" for "hdr.ipv4.ttl"), so resolution also
// tries unique-suffix matching over the globals and block-qualified locals.
func (t *translator) resolveAssertPath(c *ctx, path string) (string, int, error) {
	if g, w, err := t.resolvePath(c, path, p4.Pos{}); err == nil {
		return g, w, nil
	}
	if g, ok := t.m.Global(path); ok {
		return g.Name, g.Width, nil
	}
	if c.block != "" {
		if g, ok := t.m.Global(c.block + "." + path); ok {
			return g.Name, g.Width, nil
		}
	}
	suffix := "." + path
	for _, g := range t.m.Globals {
		if strings.HasSuffix(g.Name, suffix) && !strings.HasPrefix(g.Name, model.SnapPrefix) {
			return g.Name, g.Width, nil
		}
	}
	return "", 0, fmt.Errorf("cannot resolve field %s", path)
}

// resolveAssertHeader resolves a header path from assertion text to a
// flattened header instance path.
func (t *translator) resolveAssertHeader(c *ctx, path string) (string, error) {
	segs := strings.SplitN(path, ".", 2)
	if inst, ok := c.params[segs[0]]; ok {
		full := inst
		if len(segs) > 1 {
			full += "." + segs[1]
		}
		for _, hp := range t.headerPaths {
			if hp == full {
				return hp, nil
			}
		}
	}
	for _, hp := range t.headerPaths {
		if hp == path || strings.HasSuffix(hp, "."+path) {
			return hp, nil
		}
	}
	return "", fmt.Errorf("cannot resolve header %s", path)
}

// headerDeclFor returns the header declaration of a header-typed expression.
func (t *translator) headerDeclFor(c *ctx, e p4.Expr) (*p4.HeaderDecl, error) {
	path, err := t.resolveHeaderPath(c, e)
	if err != nil {
		return nil, err
	}
	// Walk the instance type by path segments.
	segs := strings.Split(path, ".")
	ty, ok := t.instTypes[segs[0]]
	if !ok {
		return nil, t.errf(e.Position(), "unknown instance %s", segs[0])
	}
	for _, seg := range segs[1:] {
		sr, ok := ty.(*p4.StructRef)
		if !ok {
			return nil, t.errf(e.Position(), "bad header path %s", path)
		}
		found := false
		for _, f := range sr.Decl.Fields {
			if f.Name == seg {
				ty = f.Type
				found = true
				break
			}
		}
		if !found {
			return nil, t.errf(e.Position(), "no field %s in %s", seg, path)
		}
	}
	hr, ok := ty.(*p4.HeaderRef)
	if !ok {
		return nil, t.errf(e.Position(), "%s is not a header", path)
	}
	return hr.Decl, nil
}

// resolveHeaderPath maps a header-typed P4 expression to its flattened
// instance path (e.g. hdr.ipv4).
func (t *translator) resolveHeaderPath(c *ctx, e p4.Expr) (string, error) {
	path := p4.PathString(e)
	if path == "" {
		return "", t.errf(e.Position(), "expected a header reference")
	}
	segs := strings.SplitN(path, ".", 2)
	if inst, ok := c.params[segs[0]]; ok {
		full := inst
		if len(segs) > 1 {
			full += "." + segs[1]
		}
		return full, nil
	}
	return path, nil
}

// ------------------------------------------------------------ expressions --

// translateExpr lowers a P4 expression; hint suggests a width for untyped
// literals (0 = none, literals default to 32 bits). It returns the
// expression and its width.
func (t *translator) translateExpr(c *ctx, e p4.Expr, hint int) (model.Expr, int, error) {
	switch x := e.(type) {
	case *p4.NumberLit:
		w := x.Width
		if w == 0 {
			w = hint
		}
		if w == 0 {
			w = 32
		}
		return &model.Const{Width: w, Val: x.Value & fullMask(w)}, w, nil

	case *p4.BoolLit:
		v := uint64(0)
		if x.Value {
			v = 1
		}
		return &model.Const{Width: 1, Val: v}, 1, nil

	case *p4.Ident:
		if v, w, ok := t.p.ConstValue(x.Name); ok {
			return &model.Const{Width: w, Val: v}, w, nil
		}
		g, w, err := t.resolvePath(c, x.Name, x.Pos)
		if err != nil {
			return nil, 0, err
		}
		return &model.Ref{Name: g}, w, nil

	case *p4.Member:
		g, w, err := t.resolvePath(c, p4.PathString(x), x.Pos)
		if err != nil {
			return nil, 0, err
		}
		return &model.Ref{Name: g}, w, nil

	case *p4.Unary:
		inner, w, err := t.translateExpr(c, x.X, hint)
		if err != nil {
			return nil, 0, err
		}
		switch x.Op {
		case p4.UnNot:
			return &model.Un{Op: model.OpNot, X: inner}, 1, nil
		case p4.UnBitNot:
			return &model.Un{Op: model.OpBitNot, X: inner}, w, nil
		default:
			return &model.Un{Op: model.OpNeg, X: inner}, w, nil
		}

	case *p4.Binary:
		// Translate the non-literal side first so its width propagates to
		// an untyped literal on the other side.
		var lhs, rhs model.Expr
		var lw, rw int
		var err error
		_, lLit := x.X.(*p4.NumberLit)
		_, rLit := x.Y.(*p4.NumberLit)
		if lLit && !rLit {
			rhs, rw, err = t.translateExpr(c, x.Y, hint)
			if err != nil {
				return nil, 0, err
			}
			lhs, lw, err = t.translateExpr(c, x.X, rw)
		} else {
			lhs, lw, err = t.translateExpr(c, x.X, hint)
			if err != nil {
				return nil, 0, err
			}
			rhsHint := lw
			if isShiftOp(x.Op) {
				rhsHint = lw // shift amounts share the operand width in the model
			}
			rhs, rw, err = t.translateExpr(c, x.Y, rhsHint)
		}
		if err != nil {
			return nil, 0, err
		}
		op := p4BinOps[x.Op]
		outW := lw
		switch x.Op {
		case p4.BinEq, p4.BinNe, p4.BinLt, p4.BinLe, p4.BinGt, p4.BinGe,
			p4.BinLAnd, p4.BinLOr:
			outW = 1
		}
		_ = rw
		return &model.Bin{Op: op, X: lhs, Y: rhs}, outW, nil

	case *p4.Ternary:
		cond, _, err := t.translateExpr(c, x.Cond, 1)
		if err != nil {
			return nil, 0, err
		}
		then, tw, err := t.translateExpr(c, x.Then, hint)
		if err != nil {
			return nil, 0, err
		}
		els, _, err := t.translateExpr(c, x.Else, tw)
		if err != nil {
			return nil, 0, err
		}
		return &model.Cond{C: cond, T: then, F: els}, tw, nil

	case *p4.CastExpr:
		w := t.p.TypeWidth(x.Type)
		if w == 0 {
			return nil, 0, t.errf(x.Pos, "unsupported cast target type")
		}
		inner, _, err := t.translateExpr(c, x.X, w)
		if err != nil {
			return nil, 0, err
		}
		return &model.Cast{Width: w, X: inner}, w, nil

	case *p4.CallExpr:
		// Only isValid() is an expression-position builtin.
		if m, ok := x.Fun.(*p4.Member); ok && m.Name == "isValid" {
			path, err := t.resolveHeaderPath(c, m.X)
			if err != nil {
				return nil, 0, err
			}
			return &model.Ref{Name: path + model.ValidSuffix}, 1, nil
		}
		return nil, 0, t.errf(x.Pos, "unsupported call in expression position")
	}
	return nil, 0, fmt.Errorf("unsupported expression %T", e)
}

func isShiftOp(op p4.BinaryOp) bool { return op == p4.BinShl || op == p4.BinShr }

var p4BinOps = map[p4.BinaryOp]model.Op{
	p4.BinAdd: model.OpAdd, p4.BinSub: model.OpSub, p4.BinMul: model.OpMul,
	p4.BinDiv: model.OpDiv, p4.BinMod: model.OpMod, p4.BinAnd: model.OpAnd,
	p4.BinOr: model.OpOr, p4.BinXor: model.OpXor, p4.BinShl: model.OpShl,
	p4.BinShr: model.OpShr, p4.BinEq: model.OpEq, p4.BinNe: model.OpNe,
	p4.BinLt: model.OpLt, p4.BinLe: model.OpLe, p4.BinGt: model.OpGt,
	p4.BinGe: model.OpGe, p4.BinLAnd: model.OpLAnd, p4.BinLOr: model.OpLOr,
}
