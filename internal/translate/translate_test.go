package translate

import (
	"strings"
	"testing"

	"p4assert/internal/model"
	"p4assert/internal/p4"
	"p4assert/internal/rules"
)

const pipelineSrc = `
const bit<16> TYPE_IPV4 = 0x0800;
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> dstAddr; }
struct headers_t { ethernet_t ethernet; ipv4_t ipv4; }
struct meta_t { bit<16> acc; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control I(inout headers_t hdr, inout meta_t meta,
          inout standard_metadata_t standard_metadata) {
    register<bit<16>>(2) small_reg;
    register<bit<16>>(4096) big_reg;
    action drop() { mark_to_drop(standard_metadata); }
    action fwd(bit<9> port) { standard_metadata.egress_spec = port; }
    table t {
        key = { hdr.ipv4.dstAddr : exact; }
        actions = { fwd; drop; NoAction; }
        default_action = drop;
    }
    apply {
        t.apply();
        small_reg.write((bit<32>)hdr.ipv4.ttl, meta.acc);
        small_reg.read(meta.acc, (bit<32>)hdr.ipv4.ttl);
        big_reg.read(meta.acc, hdr.ipv4.dstAddr);
        @assert("if(forward(), ipv4.ttl > 0)");
    }
}
control D(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.ethernet); pkt.emit(hdr.ipv4); }
}
V1Switch(P, I, D) main;
`

func mustTranslate(t *testing.T, src string, opts Options) *model.Program {
	t.Helper()
	prog, err := p4.Parse("t.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	m, err := Translate(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelStructure(t *testing.T) {
	m := mustTranslate(t, pipelineSrc, Options{})
	// Entry: parser, two controls, deferred checks.
	want := []string{"P", "I", "D", "$checks"}
	if len(m.Entry) != len(want) {
		t.Fatalf("entry = %v", m.Entry)
	}
	for i := range want {
		if m.Entry[i] != want[i] {
			t.Fatalf("entry = %v, want %v", m.Entry, want)
		}
	}
	// One function per parser state, table, action, control.
	for _, fn := range []string{"P.start", "P.parse_ipv4", "I.t", "I.fwd", "I.drop", "I.NoAction", "I", "D"} {
		if _, ok := m.Funcs[fn]; !ok {
			t.Fatalf("missing function %s (have %v)", fn, m.Dump())
		}
	}
	// Flattened globals with validity bits and flags.
	for _, g := range []string{
		"hdr.ethernet.dstAddr", "hdr.ipv4.ttl", "hdr.ipv4.$valid",
		"standard_metadata.egress_spec", model.ForwardFlag,
		"I.fwd.port", "I.small_reg[0]", "I.small_reg[1]",
	} {
		if _, ok := m.Global(g); !ok {
			t.Fatalf("missing global %s", g)
		}
	}
	// Big register must NOT be modeled per cell.
	if _, ok := m.Global("I.big_reg[0]"); ok {
		t.Fatal("4096-cell register should be symbolic, not per-cell")
	}
	if len(m.Asserts) != 1 || !m.Asserts[0].Deferred {
		t.Fatalf("asserts = %+v", m.Asserts)
	}
}

func TestUnknownRulesFork(t *testing.T) {
	m := mustTranslate(t, pipelineSrc, Options{})
	body := m.Funcs["I.t"].Body
	if len(body) != 2 {
		t.Fatalf("table body = %d stmts, want [hit-symbolic, fork]", len(body))
	}
	if ms, ok := body[0].(*model.MakeSymbolic); !ok || ms.Var != "I.t.$hit" {
		t.Fatalf("first stmt should make the hit flag symbolic, got %T", body[0])
	}
	fork, ok := body[1].(*model.Fork)
	if !ok {
		t.Fatalf("table without rules should fork, got %T", body[1])
	}
	if len(fork.Branches) != 3 || fork.Labels[0] != "fwd" {
		t.Fatalf("fork shape wrong: %v", fork.Labels)
	}
	// The fwd branch makes its parameter symbolic.
	found := false
	for _, s := range fork.Branches[0] {
		if ms, ok := s.(*model.MakeSymbolic); ok && ms.Var == "I.fwd.port" {
			found = true
		}
	}
	if !found {
		t.Fatal("unknown-rules action parameter should be symbolic")
	}
}

func TestKnownRulesCascade(t *testing.T) {
	rs := rules.NewRuleSet()
	rs.Add(rules.Rule{Table: "t", Action: "fwd",
		Keys: []rules.Match{{Kind: rules.Exact, Value: 0x0a000001}}, Args: []uint64{3}})
	rs.Add(rules.Rule{Table: "t", Action: "drop",
		Keys: []rules.Match{{Kind: rules.Exact, Value: 0x0a000002}}})
	m := mustTranslate(t, pipelineSrc, Options{Rules: rs})
	body := m.Funcs["I.t"].Body
	ifStmt, ok := body[0].(*model.If)
	if !ok {
		t.Fatalf("table with rules should be an if-cascade, got %T", body[0])
	}
	// First rule branch raises the hit flag, assigns the const arg, then
	// calls the action.
	if asg, ok := ifStmt.Then[0].(*model.Assign); !ok || asg.LHS != "I.t.$hit" {
		t.Fatalf("rule branch should set the hit flag first: %+v", ifStmt.Then)
	}
	if asg, ok := ifStmt.Then[1].(*model.Assign); !ok || asg.LHS != "I.fwd.port" {
		t.Fatalf("rule branch shape wrong: %+v", ifStmt.Then)
	}
	// The innermost else is the default action call.
	inner := ifStmt.Else[0].(*model.If)
	if call, ok := inner.Else[len(inner.Else)-1].(*model.Call); !ok || call.Func != "I.drop" {
		t.Fatalf("default action wrong: %+v", inner.Else)
	}
}

func TestLPMOrdering(t *testing.T) {
	src := strings.Replace(pipelineSrc, "hdr.ipv4.dstAddr : exact", "hdr.ipv4.dstAddr : lpm", 1)
	rs := rules.NewRuleSet()
	// Insert shorter prefix first: translation must test longest first.
	rs.Add(rules.Rule{Table: "t", Action: "drop",
		Keys: []rules.Match{{Kind: rules.LPM, Value: 0x0a000000, PrefixLen: 8}}, Priority: 0})
	rs.Add(rules.Rule{Table: "t", Action: "fwd",
		Keys: []rules.Match{{Kind: rules.LPM, Value: 0x0a000100, PrefixLen: 24}}, Args: []uint64{3}, Priority: 1})
	m := mustTranslate(t, src, Options{Rules: rs})
	ifStmt := m.Funcs["I.t"].Body[0].(*model.If)
	// The first test must be the /24 rule (fwd).
	if call, ok := ifStmt.Then[len(ifStmt.Then)-1].(*model.Call); !ok || call.Func != "I.fwd" {
		t.Fatalf("longest prefix should match first: %+v", ifStmt.Then)
	}
}

func TestSelectRejectDefault(t *testing.T) {
	// A select with no default case must fall through to reject.
	src := `
header h_t { bit<8> k; }
struct hs { h_t h; }
struct ms { bit<1> u; }
parser P(packet_in pkt, out hs hdr, inout ms meta,
         inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.h);
        transition select(hdr.h.k) { 1: accept; }
    }
}
control I(inout hs hdr, inout ms meta,
          inout standard_metadata_t standard_metadata) { apply { } }
control D(packet_out pkt, in hs hdr) { apply { } }
V1Switch(P, I, D) main;
`
	m := mustTranslate(t, src, Options{})
	dump := m.Dump()
	if !strings.Contains(dump, "halt") {
		t.Fatalf("missing-case select should reject:\n%s", dump)
	}
}

func TestAssertInstrumentation(t *testing.T) {
	m := mustTranslate(t, pipelineSrc, Options{})
	// The deferred forward/ttl assertion snapshots the ttl at the site and
	// gates the final check on reaching it.
	if _, ok := m.Global("$snap.0.hdr.ipv4.ttl"); !ok {
		t.Fatalf("missing ttl snapshot global; globals: %v", globalNames(m))
	}
	if _, ok := m.Global("$snap.0.$reached"); !ok {
		t.Fatal("missing reached gate global")
	}
	checks, ok := m.Funcs["$checks"]
	if !ok || len(checks.Body) != 1 {
		t.Fatal("missing $checks function")
	}
	gate, ok := checks.Body[0].(*model.If)
	if !ok {
		t.Fatalf("deferred check should be gated, got %T", checks.Body[0])
	}
	if _, ok := gate.Then[0].(*model.AssertCheck); !ok {
		t.Fatal("gated body should be the assert check")
	}
}

func globalNames(m *model.Program) []string {
	var out []string
	for _, g := range m.Globals {
		out = append(out, g.Name)
	}
	return out
}

func TestTranslateErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"no package", "header h_t { bit<8> x; }", "no package instantiation"},
		{"missing parser", "control C() { apply { } } V1Switch(Nope, C) main;", "not a declared parser"},
		{"bad assertion", `
struct hs { bit<8> f; }
parser P(packet_in p, out hs h) { state start { transition accept; } }
control C(inout hs h) { apply { @assert("if("); } }
V1Switch(P, C) main;`, "bad assertion"},
		{"unresolvable assert field", `
struct hs { bit<8> f; }
parser P(packet_in p, out hs h) { state start { transition accept; } }
control C(inout hs h) { apply { @assert("nosuch.field == 1"); } }
V1Switch(P, C) main;`, "cannot resolve"},
	}
	for _, tc := range cases {
		prog, err := p4.Parse("e.p4", tc.src)
		if err == nil {
			err = prog.Check()
		}
		if err == nil {
			_, err = Translate(prog, Options{})
		}
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.frag)
		}
	}
}

func TestSymbolicRegistersOption(t *testing.T) {
	m := mustTranslate(t, pipelineSrc, Options{SymbolicRegisters: true})
	if _, ok := m.Global("I.small_reg[0]"); ok {
		t.Fatal("SymbolicRegisters should suppress per-cell modeling")
	}
	// The read becomes a fresh symbolic value.
	dump := m.Dump()
	if !strings.Contains(dump, "make_symbolic(I.acc)") &&
		!strings.Contains(dump, "make_symbolic(meta.acc)") {
		t.Fatalf("symbolic register read missing:\n%s", dump)
	}
}

func TestCounterAndMeter(t *testing.T) {
	src := `
struct hs { bit<8> f; }
struct ms { bit<8> color; }
parser P(packet_in p, out hs h, inout ms m,
         inout standard_metadata_t standard_metadata) {
    state start { transition accept; }
}
control C(inout hs h, inout ms m, inout standard_metadata_t standard_metadata) {
    counter(2, CounterType.packets) pkts;
    meter(4, MeterType.bytes) rate;
    apply {
        pkts.count((bit<32>)h.f);
        rate.execute_meter((bit<32>)h.f, m.color);
    }
}
control D(packet_out p, in hs h) { apply { } }
V1Switch(P, C, D) main;
`
	m := mustTranslate(t, src, Options{})
	if _, ok := m.Global("C.pkts[1]"); !ok {
		t.Fatal("counter cells missing")
	}
	dump := m.Dump()
	if !strings.Contains(dump, "make_symbolic(ms.color)") &&
		!strings.Contains(dump, "make_symbolic(m.color)") {
		t.Fatalf("meter result should be symbolic:\n%s", dump)
	}
}
