// Package vcache is the content-addressed verification-result cache of the
// service subsystem. Most verification requests differ only in forwarding
// rules or pipeline options while the program text is unchanged, so a
// repeat request is a hash lookup instead of a symbolic-execution run.
//
// Keys are SHA-256 digests over the canonicalized program source, the
// canonically rendered rule set, and every field of the core.Options
// technique matrix (walked by reflection, so a newly added Options field
// can never silently alias two distinct configurations). Values are
// JSON-serialized core.Reports — the wire format is canonical (sorted
// violations, deterministic counterexamples), so a cache-replayed report
// compares byte-equal to a live one.
//
// The cache has two tiers: a bounded in-memory LRU holding serialized
// reports, and an optional on-disk tier (one file per key) that survives
// process restarts. Disk reads promote entries back into memory.
//
// Disk entries carry a CRC32 header ("p4vc1 <crc-hex>\n" + payload), so
// a truncated or bit-flipped file — crash damage JSON parsing alone can
// miss, since a flipped byte can still be valid JSON — is detected on
// read, quarantined (removed, Stats.Corrupt incremented) and recomputed.
// A corrupt entry is never returned and never fatal.
package vcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"

	"p4assert/internal/core"
	"p4assert/internal/failpoint"
	"p4assert/internal/rules"
)

// Failpoint sites in the disk tier (see internal/failpoint).
const (
	// FailpointDiskRead injects read faults: "error" makes the file
	// unreadable (a plain miss), "corrupt" flips a byte of what was read
	// (exercising quarantine).
	FailpointDiskRead = "vcache/disk/read"
	// FailpointDiskWrite injects write faults: "error" fails the store,
	// "short" persists a truncated entry (what a torn write leaves for
	// the next reader to quarantine).
	FailpointDiskWrite = "vcache/disk/write"
)

// diskMagic opens every disk-tier entry, followed by the 8-hex-digit
// CRC32 (IEEE) of the payload and a newline. Headerless files (crash
// debris, older cache versions) fail decoding and are quarantined.
const diskMagic = "p4vc1 "

const diskHeaderLen = len(diskMagic) + 8 + 1

// encodeDiskEntry frames a payload for the disk tier.
func encodeDiskEntry(payload []byte) []byte {
	out := make([]byte, 0, diskHeaderLen+len(payload))
	out = append(out, diskMagic...)
	out = append(out, fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))...)
	out = append(out, '\n')
	return append(out, payload...)
}

// decodeDiskEntry validates a disk-tier file and returns its payload.
func decodeDiskEntry(data []byte) ([]byte, error) {
	if len(data) < diskHeaderLen || string(data[:len(diskMagic)]) != diskMagic || data[diskHeaderLen-1] != '\n' {
		return nil, fmt.Errorf("vcache: missing or damaged entry header")
	}
	payload := data[diskHeaderLen:]
	want := string(data[len(diskMagic) : diskHeaderLen-1])
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload)); got != want {
		return nil, fmt.Errorf("vcache: checksum mismatch (%s != %s)", got, want)
	}
	return payload, nil
}

// DefaultMaxEntries bounds the in-memory tier when New is given a
// non-positive capacity.
const DefaultMaxEntries = 512

// SubmodelDefaultMaxEntries bounds the submodel-granular tier when
// NewSubmodelTier is given a non-positive capacity. Submodel verdicts are
// far smaller than whole-program reports and a single program contributes
// many of them, so the tier holds more entries.
const SubmodelDefaultMaxEntries = 8192

// NewSubmodelTier returns the submodel-granular cache tier used by the
// incremental verification engine (internal/incr): keys are submodel
// executable-content digests (incr.SubmodelKey), values are serialized
// per-submodel verdicts (incr.EncodeResult). A non-empty dir places the
// disk tier in dir/submodels, beside but disjoint from the whole-program
// tier. *Cache satisfies incr.Store.
func NewSubmodelTier(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = SubmodelDefaultMaxEntries
	}
	if dir != "" {
		dir = filepath.Join(dir, "submodels")
	}
	return New(maxEntries, dir)
}

// Key derives the content address of a verification request: program
// source (canonicalized), rule configuration (canonically rendered), and
// the full options matrix. The program's file name is deliberately not
// part of the key — it appears only in diagnostics and does not affect
// the verification outcome.
func Key(source string, opts core.Options) string {
	h := sha256.New()
	// v3: counterexample input naming switched to per-hint numbering
	// (hint#k for the k-th draw of that hint); v2 reports carry the old
	// path-global names and would replay stale counterexamples. v4:
	// full-query models became the canonical lexicographically-minimal
	// witness (solver acceleration), so v3 reports carry whatever model
	// CDCL happened to land on.
	io.WriteString(h, "p4assert-vcache-v4\x00")
	io.WriteString(h, CanonicalizeSource(source))
	io.WriteString(h, "\x00")
	writeOptions(h, opts)
	return hex.EncodeToString(h.Sum(nil))
}

// writeOptions walks every Options field by reflection so a field added to
// the technique matrix is automatically part of the key. Rules (a pointer
// to an unordered set) is the one field needing a canonical rendering.
func writeOptions(h io.Writer, opts core.Options) {
	v := reflect.ValueOf(opts)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Name == "Rules" {
			fmt.Fprintf(h, "Rules=%s\x00", canonicalRules(opts.Rules))
			continue
		}
		fmt.Fprintf(h, "%s=%v\x00", f.Name, v.Field(i).Interface())
	}
}

// DiffKey derives the content address of a differential (version
// equivalence) job: both program sources, both sides' option matrices,
// and the execution/observable parameters of the product-program run
// (rendered by the caller into exec). Its key family is disjoint from
// single-program report keys.
func DiffKey(sourceA, sourceB string, optsA, optsB core.Options, exec string) string {
	h := sha256.New()
	io.WriteString(h, "p4assert-diffcache-v1\x00")
	io.WriteString(h, CanonicalizeSource(sourceA))
	io.WriteString(h, "\x00")
	io.WriteString(h, CanonicalizeSource(sourceB))
	io.WriteString(h, "\x00")
	writeOptions(h, optsA)
	writeOptions(h, optsB)
	io.WriteString(h, exec)
	io.WriteString(h, "\x00")
	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalizeSource normalizes program text so formatting-only variants
// share a cache entry: CRLF becomes LF, trailing whitespace is stripped
// per line, and the text ends with exactly one newline.
func CanonicalizeSource(source string) string {
	source = strings.ReplaceAll(source, "\r\n", "\n")
	lines := strings.Split(source, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " \t")
	}
	return strings.TrimRight(strings.Join(lines, "\n"), "\n") + "\n"
}

func canonicalRules(rs *rules.RuleSet) string {
	if rs == nil {
		return ""
	}
	return rules.Render(rs)
}

// Stats counts cache activity. Hits = MemHits + DiskHits.
type Stats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	MemHits  int64 `json:"mem_hits"`
	DiskHits int64 `json:"disk_hits"`
	// Evictions counts LRU removals from the memory tier; Corrupt counts
	// disk entries that failed validation and were quarantined (each also
	// counts as a miss — the verdict is recomputed).
	Evictions  int64 `json:"evictions"`
	Corrupt    int64 `json:"corrupt"`
	Entries    int   `json:"entries"`
	MaxEntries int   `json:"max_entries"`
	DiskTier   bool  `json:"disk_tier"`
}

type entry struct {
	key  string
	data []byte
}

// Cache is a two-tier content-addressed report cache. It is safe for
// concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recent
	byKey map[string]*list.Element // -> *entry
	dir   string                   // "" = no disk tier
	stats Stats
}

// New returns a cache bounded to maxEntries in memory (non-positive means
// DefaultMaxEntries). A non-empty dir enables the disk tier; the directory
// is created if missing.
func New(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("vcache: %w", err)
		}
	}
	return &Cache{
		max:   maxEntries,
		ll:    list.New(),
		byKey: map[string]*list.Element{},
		dir:   dir,
	}, nil
}

// hit tiers reported by getBytes.
const (
	tierMiss = iota
	tierMem
	tierDisk
)

// GetBytes returns the serialized report for key, consulting memory first
// and then the disk tier (promoting on a disk hit). The returned slice
// must not be modified.
func (c *Cache) GetBytes(key string) ([]byte, bool) {
	data, tier := c.getBytes(key)
	return data, tier != tierMiss
}

func (c *Cache) getBytes(key string) ([]byte, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		c.stats.MemHits++
		return el.Value.(*entry).data, tierMem
	}
	if c.dir != "" {
		data, err := os.ReadFile(c.path(key))
		if a := failpoint.Hit(FailpointDiskRead); a != nil && err == nil {
			switch a.Kind {
			case "error":
				err = a.Err
			case "corrupt":
				if len(data) > diskHeaderLen {
					data = append([]byte(nil), data...)
					data[diskHeaderLen+(len(data)-diskHeaderLen)/2] ^= 0x20
				}
			}
		}
		if err == nil {
			payload, derr := decodeDiskEntry(data)
			if derr != nil {
				// Torn or bit-flipped entry: quarantine it — drop the file,
				// count the damage, report a miss so the caller recomputes.
				// Never returned, never fatal.
				os.Remove(c.path(key))
				c.stats.Corrupt++
			} else {
				c.insert(key, payload)
				c.stats.Hits++
				c.stats.DiskHits++
				return payload, tierDisk
			}
		}
	}
	c.stats.Misses++
	return nil, tierMiss
}

// Get returns the cached report for key, or (nil, false).
func (c *Cache) Get(key string) (*core.Report, bool) {
	data, tier := c.getBytes(key)
	if tier == tierMiss {
		return nil, false
	}
	var rep core.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		// A corrupt entry (e.g. a truncated disk file) reads as a miss:
		// reverse the hit — in the tier it actually came from, keeping
		// the Hits == MemHits + DiskHits invariant Stats readers rely on.
		c.mu.Lock()
		c.evictKey(key)
		c.stats.Hits--
		if tier == tierMem {
			c.stats.MemHits--
		} else {
			c.stats.DiskHits--
		}
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	return &rep, true
}

// PutBytes stores a serialized report under key in both tiers.
func (c *Cache) PutBytes(key string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, data)
	if c.dir == "" {
		return nil
	}
	// Atomic write: the disk tier must never expose a half-written report
	// to a concurrent reader or a restarted process.
	framed := encodeDiskEntry(data)
	if a := failpoint.Hit(FailpointDiskWrite); a != nil {
		switch a.Kind {
		case "error":
			return a.Err
		case "short":
			// Persist a torn entry — the damage a crash between write and
			// fsync can leave — and let the next read quarantine it.
			n := a.N
			if n <= 0 || n >= int64(len(framed)) {
				n = int64(len(framed)) / 2
			}
			framed = framed[:n]
		}
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("vcache: %w", err)
	}
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("vcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("vcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("vcache: %w", err)
	}
	return nil
}

// Put serializes and stores a report under key.
func (c *Cache) Put(key string, rep *core.Report) error {
	data, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("vcache: %w", err)
	}
	return c.PutBytes(key, data)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.MaxEntries = c.max
	s.DiskTier = c.dir != ""
	return s
}

// insert adds or refreshes a memory-tier entry, evicting from the LRU
// tail. Callers hold c.mu.
func (c *Cache) insert(key string, data []byte) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*entry).data = data
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&entry{key: key, data: data})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byKey, tail.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// evictKey drops a key from the memory tier and the disk tier. Callers
// hold c.mu.
func (c *Cache) evictKey(key string) {
	if el, ok := c.byKey[key]; ok {
		c.ll.Remove(el)
		delete(c.byKey, key)
	}
	if c.dir != "" {
		os.Remove(c.path(key))
	}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}
