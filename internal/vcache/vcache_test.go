package vcache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/failpoint"
	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

const sampleRules = `
ipv4_lpm  set_nhop  0x0a000000/8 => 3 0x112233445566
acl       deny      0x0adead01
`

// flipField returns a copy of opts with field i set to a non-zero value.
// It fails the test for field kinds it does not know how to flip, so a
// new Options field of an exotic type cannot silently escape key coverage.
func flipField(t *testing.T, opts core.Options, i int) core.Options {
	t.Helper()
	v := reflect.ValueOf(&opts).Elem()
	f := v.Field(i)
	name := v.Type().Field(i).Name
	switch f.Kind() {
	case reflect.Bool:
		f.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		f.SetInt(7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		f.SetUint(7)
	case reflect.String:
		f.SetString("x")
	case reflect.Ptr:
		if name != "Rules" {
			t.Fatalf("core.Options field %s: pointer field the key test cannot flip; extend flipField and Key", name)
		}
		rs, err := rules.Parse(sampleRules)
		if err != nil {
			t.Fatal(err)
		}
		f.Set(reflect.ValueOf(rs))
	case reflect.Struct:
		// Nested option structs (solver.Config) render through %v, so
		// flipping any bool inside changes the key. Flip the first one.
		for j := 0; j < f.NumField(); j++ {
			if f.Field(j).Kind() == reflect.Bool {
				f.Field(j).SetBool(true)
				return opts
			}
		}
		t.Fatalf("core.Options field %s: struct with no bool field; extend flipField (and check Key covers it)", name)
	default:
		t.Fatalf("core.Options field %s has kind %s; extend flipField (and check Key covers it)", name, f.Kind())
	}
	return opts
}

// TestKeySensitivity flips every core.Options field in turn and checks
// that each flip — and any rules change — produces a distinct cache key.
// The walk is reflection-driven: adding a field to core.Options extends
// this test automatically.
func TestKeySensitivity(t *testing.T) {
	const src = "control I() { apply {} }\n"
	base := core.Options{}
	keys := map[string]string{"<baseline>": Key(src, base)}

	n := reflect.TypeOf(base).NumField()
	for i := 0; i < n; i++ {
		name := reflect.TypeOf(base).Field(i).Name
		k := Key(src, flipField(t, base, i))
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("flipping %s collides with %s", name, prev)
			}
		}
		keys[name] = k
	}

	// Distinct rule sets must key differently even with identical options.
	rs1, err := rules.Parse(sampleRules)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := rules.Parse("ipv4_lpm set_nhop 0x0a000000/8 => 4 0x112233445566")
	if err != nil {
		t.Fatal(err)
	}
	k1 := Key(src, core.Options{Rules: rs1})
	k2 := Key(src, core.Options{Rules: rs2})
	if k1 == k2 {
		t.Error("different rule sets share a key")
	}

	// And a source change must too.
	if Key(src, base) == Key(src+"// changed\n", base) {
		t.Error("different sources share a key")
	}
}

// TestKeyCanonicalization checks that formatting-only source variants and
// rule-text reorderings share a key.
func TestKeyCanonicalization(t *testing.T) {
	opts := core.Options{}
	a := Key("control I() { apply {} }\n", opts)
	b := Key("control I() { apply {} }   \r\n\n\n", opts)
	if a != b {
		t.Error("trailing-whitespace/CRLF variant changed the key")
	}

	// rules.Render sorts by table, so line order within the text must not
	// affect the key.
	rs1, err := rules.Parse("t1 a 1\nt2 b 2")
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := rules.Parse("t2 b 2\nt1 a 1")
	if err != nil {
		t.Fatal(err)
	}
	if Key("x", core.Options{Rules: rs1}) != Key("x", core.Options{Rules: rs2}) {
		t.Error("rule line order changed the key")
	}
}

func verifiedReport(t *testing.T) *core.Report {
	t.Helper()
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.VerifySource("vss.p4", p.Source, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRoundTrip checks that a report read back from the cache serializes
// byte-identically to the live one.
func TestRoundTrip(t *testing.T) {
	c, err := New(4, "")
	if err != nil {
		t.Fatal(err)
	}
	rep := verifiedReport(t)
	if err := c.Put("k", rep); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k")
	if !ok {
		t.Fatal("miss after Put")
	}
	want, _ := rep.ViolationsJSON()
	have, _ := got.ViolationsJSON()
	if string(want) != string(have) {
		t.Fatalf("cached violations differ:\n%s\nvs\n%s", want, have)
	}
	s := c.Stats()
	if s.Hits != 1 || s.MemHits != 1 || s.Misses != 0 {
		t.Fatalf("unexpected stats after one hit: %+v", s)
	}
}

// TestLRUEviction fills the memory tier past capacity and checks
// least-recently-used entries fall out first.
func TestLRUEviction(t *testing.T) {
	c, err := New(2, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.PutBytes(fmt.Sprintf("k%d", i), []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.GetBytes("k0"); ok {
		t.Error("k0 should have been evicted")
	}
	if _, ok := c.GetBytes("k2"); !ok {
		t.Error("k2 should be resident")
	}
	// Touch k1 so k2 becomes the LRU victim of the next insert.
	if _, ok := c.GetBytes("k1"); !ok {
		t.Error("k1 should be resident")
	}
	if err := c.PutBytes("k3", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetBytes("k2"); ok {
		t.Error("k2 should have been evicted after k1 was touched")
	}
	s := c.Stats()
	if s.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", s.Evictions)
	}
	if s.Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Entries)
	}
}

// TestDiskTierRestartSurvival writes through a disk-backed cache, then
// opens a fresh cache over the same directory and expects a disk hit that
// yields the identical report.
func TestDiskTierRestartSurvival(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := verifiedReport(t)
	if err := c1.Put("k", rep); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new cache instance with a cold memory tier.
	c2, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("k")
	if !ok {
		t.Fatal("disk tier did not survive restart")
	}
	s := c2.Stats()
	if s.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", s.DiskHits)
	}
	want, _ := rep.ViolationsJSON()
	have, _ := got.ViolationsJSON()
	if string(want) != string(have) {
		t.Fatal("restart-survived report differs")
	}

	// The disk hit promoted the entry; a second read is a memory hit.
	if _, ok := c2.GetBytes("k"); !ok {
		t.Fatal("promotion lost the entry")
	}
	if s := c2.Stats(); s.MemHits != 1 {
		t.Errorf("mem hits after promotion = %d, want 1", s.MemHits)
	}
}

// TestCorruptDiskEntry checks that damaged disk files — truncated,
// headerless, or bit-flipped past the CRC — are quarantined: counted,
// removed, reported as misses so the verdict is recomputed, and never
// returned or fatal.
func TestCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}

	// Headerless debris (also what an older cache version left behind).
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.json")); !os.IsNotExist(err) {
		t.Error("corrupt entry not removed")
	}

	// A truncated but header-bearing entry (torn write).
	if err := c.PutBytes("torn", []byte(`{"report":"full"}`)); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, "torn.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn.json"), full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := New(4, dir) // cold memory tier: forces the disk read
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.GetBytes("torn"); ok {
		t.Fatal("truncated entry served as a hit")
	}

	// A bit-flipped entry: still plausible JSON to a parser, but not to
	// the CRC.
	if err := c.PutBytes("flipped", []byte(`{"verdict":"ok","violations":[]}`)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "flipped.json"))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x01 // "ok" stays parseable, content silently wrong
	if err := os.WriteFile(filepath.Join(dir, "flipped.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.GetBytes("flipped"); ok {
		t.Fatal("bit-flipped entry served as a hit")
	}
	if _, err := os.Stat(filepath.Join(dir, "flipped.json")); !os.IsNotExist(err) {
		t.Error("bit-flipped entry not removed")
	}

	s := c2.Stats()
	if s.Corrupt != 2 {
		t.Errorf("Corrupt = %d, want 2 (torn + flipped)", s.Corrupt)
	}
	if s.Hits != 0 || s.Misses != 2 {
		t.Errorf("quarantined reads must count as misses: %+v", s)
	}

	// Recomputed (re-Put) entries serve normally again.
	if err := c2.PutBytes("flipped", []byte(`{"verdict":"ok","violations":[]}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.GetBytes("flipped"); !ok {
		t.Fatal("recomputed entry missing")
	}
}

// TestDiskFailpoints drives the injected disk faults: a read error is a
// plain miss, an in-flight bit flip quarantines, a short write leaves a
// torn file the next read quarantines, a write error surfaces to Put.
func TestDiskFailpoints(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	c, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutBytes("k", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}

	cold := func() *Cache {
		t.Helper()
		cc, err := New(4, dir)
		if err != nil {
			t.Fatal(err)
		}
		return cc
	}

	if err := failpoint.Arm(FailpointDiskRead, "times(1):error"); err != nil {
		t.Fatal(err)
	}
	if _, ok := cold().GetBytes("k"); ok {
		t.Fatal("read-error failpoint still hit")
	}
	// The file is intact: the next cold read succeeds.
	if _, ok := cold().GetBytes("k"); !ok {
		t.Fatal("entry lost after injected read error")
	}

	if err := failpoint.Arm(FailpointDiskRead, "times(1):corrupt"); err != nil {
		t.Fatal(err)
	}
	cc := cold()
	if _, ok := cc.GetBytes("k"); ok {
		t.Fatal("in-flight corruption served as a hit")
	}
	if s := cc.Stats(); s.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", s.Corrupt)
	}

	// Short write: Put "succeeds" but the entry is torn on disk.
	if err := failpoint.Arm(FailpointDiskWrite, "times(1):short"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutBytes("torn", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	cc = cold()
	if _, ok := cc.GetBytes("torn"); ok {
		t.Fatal("torn write served as a hit")
	}
	if s := cc.Stats(); s.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1 after torn-write read", s.Corrupt)
	}

	if err := failpoint.Arm(FailpointDiskWrite, "times(1):error"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutBytes("err", []byte(`{}`)); err == nil {
		t.Fatal("write-error failpoint did not surface")
	}
}

// TestConcurrentAccess hammers one cache from many goroutines under -race.
func TestConcurrentAccess(t *testing.T) {
	c, err := New(8, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				if i%3 == 0 {
					c.PutBytes(key, []byte("{}"))
				} else {
					c.GetBytes(key)
				}
				if i%50 == 0 {
					c.Stats()
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("timeout")
		}
	}
}
