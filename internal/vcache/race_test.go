package vcache

// Race-focused hammer: every Stats read races against hits, misses,
// inserts, evictions and corrupt-entry demotion on other goroutines.
// The counters are mutex-guarded, so `go test -race` (the CI race job)
// must stay silent; a torn read here would surface as a detector report
// long before it surfaced as a wrong dashboard number.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestStatsRaceWithAccess(t *testing.T) {
	dir := t.TempDir()
	c, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	// Writers: keys beyond the memory bound force LRU eviction traffic.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w*200+i)%32)
				c.PutBytes(key, []byte(`{"metrics":{}}`))
				c.GetBytes(key)
				c.GetBytes(fmt.Sprintf("missing-%d", i))
			}
		}(w)
	}
	// One writer exercises the corrupt-entry demotion path (Get adjusts
	// Hits/Misses after re-acquiring the lock).
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 200; i++ {
			c.PutBytes("corrupt", []byte("{not json"))
			c.Get("corrupt")
		}
	}()
	// And one hammers the disk-quarantine path: torn headerless files
	// planted straight on disk, each read bumping Corrupt under the lock.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("torn-%d", i)
			os.WriteFile(filepath.Join(dir, key+".json"), []byte("p4vc1 torn"), 0o644)
			if _, ok := c.GetBytes(key); ok {
				t.Errorf("torn entry %s served as a hit", key)
				return
			}
		}
	}()

	// Readers: continuous Stats snapshots during the churn. The invariant
	// Hits == MemHits + DiskHits holds under the lock, so any snapshot
	// that breaks it was torn.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := c.Stats()
				if s.Hits != s.MemHits+s.DiskHits {
					t.Errorf("torn snapshot: hits=%d mem=%d disk=%d", s.Hits, s.MemHits, s.DiskHits)
					return
				}
				if s.Entries > s.MaxEntries {
					t.Errorf("entries %d beyond bound %d", s.Entries, s.MaxEntries)
					return
				}
				// Every quarantine counts a miss under the same lock hold,
				// so no snapshot can show more corruption than misses.
				if s.Corrupt > s.Misses {
					t.Errorf("torn snapshot: corrupt=%d > misses=%d", s.Corrupt, s.Misses)
					return
				}
			}
		}()
	}

	writers.Wait()
	close(stop)
	readers.Wait()
}
