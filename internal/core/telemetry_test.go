package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"p4assert/internal/progs"
	"p4assert/internal/telemetry"
)

// fabricSource returns the fabric corpus program — the subject the
// observability acceptance criteria name (it splits 12 ways).
func fabricSource(t *testing.T) string {
	t.Helper()
	p, err := progs.Get("fabric")
	if err != nil {
		t.Fatalf("progs.Get(fabric): %v", err)
	}
	return p.Source
}

func TestReportTelemetryPopulated(t *testing.T) {
	rep, err := VerifySource("fabric.p4", fabricSource(t), Options{O3: true, Slice: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	tel := rep.Telemetry
	if tel == nil {
		t.Fatal("Report.Telemetry not populated")
	}
	var names []string
	for _, st := range tel.Stages {
		names = append(names, st.Name)
	}
	want := []string{"parse", "typecheck", "translate", "optimize", "slice", "execute"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("stage names = %v, want %v", names, want)
	}
	for _, key := range []string{"paths", "instructions", "solver_queries", "assert_checks", "max_frontier", "submodels"} {
		if _, ok := tel.Counters[key]; !ok {
			t.Errorf("counter %q missing (have %v)", key, tel.Counters)
		}
	}
	if tel.Counters["paths"] != rep.Metrics.Paths {
		t.Errorf("paths counter = %d, metrics say %d", tel.Counters["paths"], rep.Metrics.Paths)
	}
	if tel.Counters["submodels"] != int64(rep.Submodels) {
		t.Errorf("submodels counter = %d, report says %d", tel.Counters["submodels"], rep.Submodels)
	}
}

func TestReportTelemetryJSONRoundTrip(t *testing.T) {
	rep, err := VerifySource("fabric.p4", fabricSource(t), Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Telemetry == nil {
		t.Fatal("telemetry section lost in round trip")
	}
	if !reflect.DeepEqual(rep.Telemetry, back.Telemetry) {
		t.Fatalf("telemetry changed in round trip:\n  before %+v\n  after  %+v", rep.Telemetry, back.Telemetry)
	}
	if back.ParseTime != rep.ParseTime || back.CheckTime != rep.CheckTime {
		t.Fatalf("front-end durations lost: parse %v/%v check %v/%v",
			rep.ParseTime, back.ParseTime, rep.CheckTime, back.CheckTime)
	}
}

// ComparableJSON must erase how verification started (pre-parsed program
// vs source text — different stage lists) while keeping the
// deterministic work counters.
func TestComparableJSONDropsStagesKeepsCounters(t *testing.T) {
	src := fabricSource(t)
	fromSource, err := VerifySource("fabric.p4", src, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parseChecked(context.Background(), "fabric.p4", src, &Report{})
	if err != nil {
		t.Fatal(err)
	}
	preParsed, err := VerifyProgram(prog, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := fromSource.ComparableJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := preParsed.ComparableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("comparable reports differ:\n%s\n%s", a, b)
	}
	if !strings.Contains(string(a), `"counters"`) {
		t.Fatal("comparable report dropped the counters section")
	}
	if strings.Contains(string(a), `"stages"`) {
		t.Fatal("comparable report kept the stage list")
	}
}

// The acceptance criterion for the fabric trace: the span tree nests
// correctly under the 12-way parallel split — one span per submodel,
// each on its own lane, parented by the execute span and contained in
// its time window — and the submodel spans account (within 10%, here
// checked as containment plus a nonzero floor) for the execute span.
func TestSpanNestingFabricParallel(t *testing.T) {
	tr := telemetry.NewTrace()
	ctx := telemetry.WithTrace(context.Background(), tr)
	rep, err := VerifySourceCtx(ctx, "fabric.p4", fabricSource(t), Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submodels != 12 {
		t.Fatalf("fabric split into %d submodels, expected 12", rep.Submodels)
	}
	exec := tr.Find("execute")
	if exec == nil {
		t.Fatal("no execute span")
	}
	split := tr.Find("split")
	if split == nil || split.Parent != exec.ID {
		t.Fatalf("split span missing or not nested under execute: %+v", split)
	}
	lanes := map[int64]bool{}
	var subSum, total int64
	for _, sp := range tr.Spans() {
		if !strings.HasPrefix(sp.Name, "submodel[") {
			continue
		}
		if sp.Parent != exec.ID {
			t.Errorf("%s parented by %d, want execute (%d)", sp.Name, sp.Parent, exec.ID)
		}
		if lanes[sp.Lane] {
			t.Errorf("%s reuses lane %d", sp.Name, sp.Lane)
		}
		lanes[sp.Lane] = true
		if sp.Start.Before(exec.Start) || sp.EndTime().After(exec.EndTime()) {
			t.Errorf("%s [%v, %v] escapes execute [%v, %v]",
				sp.Name, sp.Start, sp.EndTime(), exec.Start, exec.EndTime())
		}
		subSum += sp.Duration().Nanoseconds()
	}
	if len(lanes) != 12 {
		t.Fatalf("got %d submodel spans, want 12", len(lanes))
	}
	total = exec.Duration().Nanoseconds()
	if subSum == 0 || total == 0 {
		t.Fatalf("zero durations: submodels %d, execute %d", subSum, total)
	}
	// With 4 workers the 12 spans overlap, so their sum may exceed the
	// execute span (up to 4x) but must at least approach it: if the sum
	// fell far below, spans would be losing time against the stage they
	// claim to decompose.
	if subSum < total/2 {
		t.Errorf("submodel spans sum to %dns, under half of execute's %dns", subSum, total)
	}
}

// memStore is a map-backed incr.Store for tests.
type memStore map[string][]byte

func (m memStore) GetBytes(k string) ([]byte, bool)  { b, ok := m[k]; return b, ok }
func (m memStore) PutBytes(k string, b []byte) error { m[k] = b; return nil }

// Reused submodels must appear in an incremental run's trace as cached
// spans — present, attributed, marked — not as gaps.
func TestIncrementalTraceCachedSpans(t *testing.T) {
	src := fabricSource(t)
	store := memStore{}
	ctx := context.Background()
	if _, _, err := VerifyIncrementalSource(ctx, "fabric.p4", "", src, Options{Parallel: 4}, store); err != nil {
		t.Fatal(err)
	}

	tr := telemetry.NewTrace()
	tctx := telemetry.WithTrace(ctx, tr)
	_, man, err := VerifyIncrementalSource(tctx, "fabric.p4", src, src, Options{Parallel: 4}, store)
	if err != nil {
		t.Fatal(err)
	}
	if man.Reused != man.Submodels {
		t.Fatalf("identical resubmission reused %d/%d submodels", man.Reused, man.Submodels)
	}
	cached := 0
	for _, sp := range tr.Spans() {
		if strings.HasPrefix(sp.Name, "submodel[") {
			if !sp.IsCached() {
				t.Errorf("%s not marked cached on a fully reused run", sp.Name)
			}
			cached++
		}
	}
	if cached != man.Submodels {
		t.Fatalf("trace has %d submodel spans, manifest says %d", cached, man.Submodels)
	}
}
