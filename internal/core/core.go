// Package core orchestrates the verification pipeline of the paper's
// Figure 3: parse and type-check the annotated P4 program, translate it
// (optionally under a forwarding-rule configuration) into a model,
// optionally optimize (the -O3 analogue), slice, and symbolically execute —
// sequentially or parallelized over submodels.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"p4assert/internal/exec"
	"p4assert/internal/model"
	"p4assert/internal/opt"
	"p4assert/internal/p4"
	"p4assert/internal/rules"
	"p4assert/internal/slicer"
	"p4assert/internal/solver"
	"p4assert/internal/submodel"
	"p4assert/internal/sym"
	"p4assert/internal/telemetry"
	"p4assert/internal/translate"
)

// Options selects the pipeline configuration, mirroring the paper's
// technique matrix (§4): O3 compiler optimization, KLEE-style executor
// optimization, constraints (via @assume in the source), program slicing,
// and submodel parallelization.
type Options struct {
	// Rules optionally supplies forwarding rules (control-plane config).
	Rules *rules.RuleSet
	// O3 runs the IR optimization passes before execution.
	O3 bool
	// Opt enables executor-level optimizations (KLEE --optimize analogue).
	Opt bool
	// Slice applies backward slicing w.r.t. the program's assertions.
	Slice bool
	// Parallel > 0 splits into submodels and runs them on that many
	// workers; 0 runs sequentially.
	Parallel int
	// MaxCallDepth bounds parser loops (default 8).
	MaxCallDepth int
	// MaxPaths caps exploration (0 = unlimited).
	MaxPaths int64
	// Timeout bounds total execution wall time (0 = none).
	Timeout time.Duration
	// RegisterCellLimit forwards to the translator.
	RegisterCellLimit int
	// AutoValidityChecks asks the translator to instrument every header
	// field access with an automatic validity assertion.
	AutoValidityChecks bool
	// CollectTests records one concrete input per completed path.
	CollectTests bool
	// Solver configures the solver acceleration subsystem (incremental
	// sessions, normalized query memo, portfolio racing); the zero value
	// enables everything. Acceleration is report-invariant: any setting
	// produces byte-identical reports, only wall time and the
	// non-comparable solver telemetry change.
	Solver solver.Config
}

// Report is the outcome of a verification run.
type Report struct {
	// Violations lists assertion failures with counterexamples.
	Violations []*sym.Violation
	// Metrics aggregates executor effort.
	Metrics sym.Metrics
	// WorstSubmodelInstructions is meaningful when Parallel > 0: the
	// instruction count of the heaviest submodel (Table 2, column 10).
	WorstSubmodelInstructions int64
	// Submodels is how many submodels ran (0 for sequential runs).
	Submodels int
	// Model is the program that was executed (after optimization/slicing),
	// for inspection.
	Model *model.Program
	// ViolationModels, set for parallel runs, maps each violated assertion
	// to the submodel whose execution found it; counterexample traces are
	// relative to that submodel, so replay runs it instead of Model.
	ViolationModels map[int]*model.Program
	// Asserts carries the assertion table of the translated program.
	Asserts []*model.AssertInfo
	// SliceErr records a slicing failure (e.g. recursive parser); when
	// non-nil, execution proceeded on the unsliced model, matching how the
	// paper reports "-" for MRI.
	SliceErr error
	// Durations of the pipeline stages. ParseTime and CheckTime are only
	// recorded when verification starts from source text.
	ParseTime     time.Duration
	CheckTime     time.Duration
	TranslateTime time.Duration
	OptimizeTime  time.Duration
	SliceTime     time.Duration
	ExecTime      time.Duration
	// Telemetry is the observability section of the report: the stage
	// wall-time breakdown and the executor work counters, in the named
	// form external consumers (p4bench BENCH json, dashboards) read
	// without knowing the Report field layout. Populated by every cold
	// and incremental pipeline run; nil on reports built elsewhere.
	Telemetry *ReportTelemetry
	// Tests holds one generated test case per completed path when
	// Options.CollectTests is set (sequential runs only).
	Tests []sym.PathTest
	// Exhausted reports an aborted exploration (path/time budget).
	Exhausted bool
}

// Ok reports whether verification completed with no violations.
func (r *Report) Ok() bool { return !r.Exhausted && len(r.Violations) == 0 }

// VerifySource parses, checks, translates and executes P4 source text.
func VerifySource(filename, source string, opts Options) (*Report, error) {
	return VerifySourceCtx(context.Background(), filename, source, opts)
}

// VerifySourceCtx is VerifySource with early cancellation: when ctx is
// cancelled (or its deadline passes) the symbolic-execution loop stops and
// ctx.Err() is returned. The verification service uses this for per-job
// timeouts and client-requested cancellation.
func VerifySourceCtx(ctx context.Context, filename, source string, opts Options) (*Report, error) {
	rep := &Report{}
	prog, err := parseChecked(ctx, filename, source, rep)
	if err != nil {
		return nil, err
	}
	return verifyProgram(ctx, prog, opts, rep, true, exec.Local{}, nil)
}

// VerifySourceExec is VerifySourceCtx with the per-submodel executions
// routed through ex (e.g. a cluster.Coordinator dispatching to remote
// worker nodes). Requires Parallel > 0: only the submodel-split pipeline
// has distributable units. The report is byte-identical (ComparableJSON)
// to a local run of the same request.
func VerifySourceExec(ctx context.Context, filename, source string, opts Options, ex exec.Executor) (*Report, error) {
	if opts.Parallel <= 0 {
		return nil, fmt.Errorf("core: executor-routed verification requires Parallel > 0")
	}
	rep := &Report{}
	prog, err := parseChecked(ctx, filename, source, rep)
	if err != nil {
		return nil, err
	}
	return verifyProgram(ctx, prog, opts, rep, true, ex, JobSpec(filename, source, opts))
}

// JobSpec renders a verification request as the rebuild-from-source
// recipe remote executors consume (internal/exec): source text, canonical
// rules rendering, and the model-shaping option subset.
func JobSpec(filename, source string, opts Options) *exec.JobSpec {
	spec := &exec.JobSpec{
		Filename:           filename,
		Source:             source,
		O3:                 opts.O3,
		Opt:                opts.Opt,
		Slice:              opts.Slice,
		MaxCallDepth:       opts.MaxCallDepth,
		MaxPaths:           opts.MaxPaths,
		RegisterCellLimit:  opts.RegisterCellLimit,
		AutoValidityChecks: opts.AutoValidityChecks,
	}
	if opts.Rules != nil {
		spec.Rules = rules.Render(opts.Rules)
	}
	return spec
}

// SpecOptions is JobSpec's inverse: the core.Options a remote worker
// rebuilds a job's submodels under. Parallel is irrelevant on the worker
// (it executes single submodels) and stays zero.
func SpecOptions(spec *exec.JobSpec) (Options, error) {
	opts := Options{
		O3:                 spec.O3,
		Opt:                spec.Opt,
		Slice:              spec.Slice,
		MaxCallDepth:       spec.MaxCallDepth,
		MaxPaths:           spec.MaxPaths,
		RegisterCellLimit:  spec.RegisterCellLimit,
		AutoValidityChecks: spec.AutoValidityChecks,
	}
	if spec.Rules != "" {
		rs, err := rules.Parse(spec.Rules)
		if err != nil {
			return opts, fmt.Errorf("core: job spec rules: %w", err)
		}
		opts.Rules = rs
	}
	return opts, nil
}

// PrepareSubmodels rebuilds the submodel split a parallel pipeline run of
// (filename, source, opts) executes, returning the submodels in canonical
// split order with their executable-content keys. A remote worker
// (internal/cluster) calls this to reconstruct the coordinator's work
// units; the front end, translation, passes and split are deterministic,
// so the rebuilt keys must match the coordinator's — a mismatch signals
// version skew and the worker refuses the job.
func PrepareSubmodels(ctx context.Context, filename, source string, opts Options) ([]*model.Program, []string, error) {
	rep := &Report{}
	prog, err := parseChecked(ctx, filename, source, rep)
	if err != nil {
		return nil, nil, err
	}
	m, err := translateStage(ctx, prog, opts, rep)
	if err != nil {
		return nil, nil, err
	}
	// applyPasses degrades to the unsliced model on a slicing failure,
	// exactly as the pipeline does — the worker must mirror the pipeline,
	// not ApplyModelPasses' hard-error contract.
	m = applyPasses(ctx, m, opts, rep)
	subs := submodel.Split(m)
	symOpts := buildSymOpts(ctx, opts)
	keys := make([]string, len(subs))
	for i, sub := range subs {
		keys[i] = exec.SubmodelKey(sub, symOpts)
	}
	return subs, keys, nil
}

// parseChecked runs the front end (parse + typecheck) under spans,
// recording the two stage durations in rep.
func parseChecked(ctx context.Context, filename, source string, rep *Report) (*p4.Program, error) {
	t0 := time.Now()
	_, sp := telemetry.StartSpan(ctx, "parse")
	prog, err := p4.Parse(filename, source)
	sp.End()
	rep.ParseTime = time.Since(t0)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	_, sp = telemetry.StartSpan(ctx, "typecheck")
	err = prog.Check()
	sp.End()
	rep.CheckTime = time.Since(t0)
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// VerifyProgram runs the pipeline on a checked P4 program.
func VerifyProgram(prog *p4.Program, opts Options) (*Report, error) {
	return VerifyProgramCtx(context.Background(), prog, opts)
}

// VerifyProgramCtx is VerifyProgram with early cancellation via ctx.
func VerifyProgramCtx(ctx context.Context, prog *p4.Program, opts Options) (*Report, error) {
	return verifyProgram(ctx, prog, opts, &Report{}, false, exec.Local{}, nil)
}

func verifyProgram(ctx context.Context, prog *p4.Program, opts Options, rep *Report, fromSource bool, ex exec.Executor, job *exec.JobSpec) (*Report, error) {
	m, err := translateStage(ctx, prog, opts, rep)
	if err != nil {
		return nil, err
	}
	return verifyModel(ctx, m, opts, rep, fromSource, ex, job)
}

// translateStage runs the translator under its span, recording the stage
// duration in rep. Shared by the cold pipeline and the incremental
// engine.
func translateStage(ctx context.Context, prog *p4.Program, opts Options, rep *Report) (*model.Program, error) {
	t0 := time.Now()
	_, sp := telemetry.StartSpan(ctx, "translate")
	m, err := translate.Translate(prog, translate.Options{
		Rules:              opts.Rules,
		RegisterCellLimit:  opts.RegisterCellLimit,
		AutoValidityChecks: opts.AutoValidityChecks,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	rep.TranslateTime = time.Since(t0)
	return m, nil
}

// VerifyModel runs the post-translation pipeline stages on a model
// directly (used by benchmarks that pre-build models).
func VerifyModel(m *model.Program, opts Options) (*Report, error) {
	return verifyModel(context.Background(), m, opts, &Report{}, false, exec.Local{}, nil)
}

// VerifyModelCtx is VerifyModel with early cancellation via ctx.
func VerifyModelCtx(ctx context.Context, m *model.Program, opts Options) (*Report, error) {
	return verifyModel(ctx, m, opts, &Report{}, false, exec.Local{}, nil)
}

// BuildModel runs the front end and the translator on source, returning
// the raw (pre-optimization, pre-slicing) model. The differential engine
// (internal/equiv) and the test-suite generator build per-version models
// this way before applying per-side passes.
func BuildModel(filename, source string, opts Options) (*model.Program, error) {
	rep := &Report{}
	prog, err := parseChecked(context.Background(), filename, source, rep)
	if err != nil {
		return nil, err
	}
	return translateStage(context.Background(), prog, opts, rep)
}

// ApplyModelPasses runs the model-level pipeline stages selected by opts
// (optimization, slicing) on m, as the verification pipeline would. Unlike
// the pipeline — which degrades to the unsliced model when the slicer
// refuses a program — a slicing failure is a hard error here: callers ask
// for the transformed model specifically to compare it against another
// version, and silently comparing the untransformed one would make that
// comparison vacuous.
func ApplyModelPasses(m *model.Program, opts Options) (*model.Program, error) {
	rep := &Report{}
	out := applyPasses(context.Background(), m, opts, rep)
	if opts.Slice && rep.SliceErr != nil {
		return nil, rep.SliceErr
	}
	return out, nil
}

// applyPasses runs the model-level pipeline stages selected by opts —
// optimization (O3 or the light executor-opt set) and slicing — recording
// stage durations and a slicing failure in rep. Shared by the cold
// pipeline (verifyModel) and the incremental engine (VerifyIncremental),
// which must transform models identically for cached submodel verdicts to
// stay comparable to cold ones.
func applyPasses(ctx context.Context, m *model.Program, opts Options, rep *Report) *model.Program {
	if opts.O3 || opts.Opt {
		t0 := time.Now()
		_, sp := telemetry.StartSpan(ctx, "optimize")
		if opts.O3 {
			m = opt.Apply(m, opt.O3())
		} else {
			// KLEE's --optimize flag runs LLVM passes over the bitcode
			// before executing it; mirror that with the light pass set (no
			// global constant marking or match-chain compaction, which are
			// -O3's).
			m = opt.Apply(m, opt.Passes{ConstFold: true, DeadCode: true, Simplify: true})
		}
		sp.End()
		rep.OptimizeTime = time.Since(t0)
	}
	if opts.Slice {
		t0 := time.Now()
		_, sp := telemetry.StartSpan(ctx, "slice")
		sliced, err := slicer.Slice(m)
		sp.End()
		if err != nil {
			rep.SliceErr = err
		} else {
			m = sliced
		}
		rep.SliceTime = time.Since(t0)
	}
	return m
}

// buildSymOpts maps pipeline options onto executor options.
func buildSymOpts(ctx context.Context, opts Options) sym.Options {
	symOpts := sym.Options{
		MaxCallDepth: opts.MaxCallDepth,
		MaxPaths:     opts.MaxPaths,
		Opt:          opts.Opt,
		CollectTests: opts.CollectTests,
		Solver:       opts.Solver,
	}
	if !opts.Solver.DisableMemo {
		// One shared memo tier per run: parallel submodels (and the
		// incremental engine's per-submodel executions) hit each other's
		// normalized queries.
		symOpts.SolverMemo = solver.NewMemo(solver.SharedMemoCap)
	}
	if opts.Timeout > 0 {
		symOpts.Deadline = time.Now().Add(opts.Timeout)
	}
	if ctx != nil && ctx != context.Background() {
		symOpts.Ctx = ctx
	}
	return symOpts
}

func verifyModel(ctx context.Context, m *model.Program, opts Options, rep *Report, fromSource bool, ex exec.Executor, job *exec.JobSpec) (*Report, error) {
	rep.Asserts = m.Asserts

	m = applyPasses(ctx, m, opts, rep)
	rep.Model = m

	symOpts := buildSymOpts(ctx, opts)

	t0 := time.Now()
	ectx, execSp := telemetry.StartSpan(ctx, "execute")
	if opts.Parallel > 0 {
		symOpts.CollectTests = false // test generation is sequential-only
		res, err := submodel.RunExec(ectx, m, symOpts, opts.Parallel, ex, job)
		if err != nil {
			execSp.End()
			return nil, err
		}
		rep.Violations = res.Agg.Violations
		rep.Metrics = res.Agg.Metrics
		rep.WorstSubmodelInstructions = res.WorstInstructions
		rep.Submodels = len(res.PerModel)
		rep.Exhausted = res.Agg.Exhausted
		rep.ViolationModels = res.ViolationModels
	} else {
		res, err := sym.Execute(m, symOpts)
		if err != nil {
			execSp.End()
			return nil, err
		}
		rep.Violations = res.Violations
		rep.Metrics = res.Metrics
		rep.Tests = res.Tests
		rep.Exhausted = res.Exhausted
	}
	submodel.AnnotateSpan(execSp, rep.Metrics)
	execSp.End()
	rep.ExecTime = time.Since(t0)
	CanonicalizeViolations(rep.Violations)
	fillTelemetry(rep, opts, fromSource)
	return rep, nil
}

// CanonicalizeViolations sorts a violation list into its canonical order:
// by assertion site (annotation location, then assertion ID), then by the
// counterexample model. Sequential, parallel and cache-replayed runs of the
// same request then serialize their violations byte-identically, which the
// content-addressed result cache relies on for replay fidelity.
func CanonicalizeViolations(vs []*sym.Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		li, lj := "", ""
		if vs[i].Info != nil {
			li = vs[i].Info.Location
		}
		if vs[j].Info != nil {
			lj = vs[j].Info.Location
		}
		if li != lj {
			return li < lj
		}
		if vs[i].AssertID != vs[j].AssertID {
			return vs[i].AssertID < vs[j].AssertID
		}
		return sym.FormatModel(vs[i].Model) < sym.FormatModel(vs[j].Model)
	})
}

// Summary renders a human-readable report.
func (r *Report) Summary() string {
	s := fmt.Sprintf("paths=%d instructions=%d solver-queries=%d",
		r.Metrics.Paths, r.Metrics.Instructions, r.Metrics.Solver.Queries)
	if r.Submodels > 0 {
		s += fmt.Sprintf(" submodels=%d", r.Submodels)
	}
	if r.Exhausted {
		s += " (EXHAUSTED)"
	}
	if len(r.Violations) == 0 {
		return "OK: all assertions hold; " + s
	}
	out := fmt.Sprintf("FAIL: %d assertion(s) violated; %s\n", len(r.Violations), s)
	for _, v := range r.Violations {
		src, loc := "?", "?"
		if v.Info != nil {
			src, loc = v.Info.Source, v.Info.Location
		}
		out += fmt.Sprintf("  assert #%d %q at %s\n    violated on %d path(s)\n    counterexample: %s\n",
			v.AssertID, src, loc, v.Count, sym.FormatModel(v.Model))
		if len(v.Trace) > 0 {
			out += fmt.Sprintf("    trace: %v\n", v.Trace)
		}
	}
	return out
}
