package core

import (
	"testing"

	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

// TestVerdictEquivalenceMatrix is the metamorphic-equivalence check over
// the seed corpus: for every program, the violated-assertion set must be
// identical under every semantics-preserving pipeline configuration —
// baseline, -O3 compiler passes, executor optimizations, backward slicing,
// and submodel parallelization. (Violating-path counts may legitimately
// differ: optimization merges paths.)
func TestVerdictEquivalenceMatrix(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"baseline", Options{}},
		{"O3", Options{O3: true}},
		{"opt", Options{Opt: true}},
		{"slice", Options{Slice: true}},
		{"parallel", Options{Parallel: 4}},
	}
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			var rs *rules.RuleSet
			if p.Rules != "" {
				parsed, err := rules.Parse(p.Rules)
				if err != nil {
					t.Fatal(err)
				}
				rs = parsed
			}
			var base *Report
			for _, cfg := range configs {
				opts := cfg.opts
				opts.Rules = rs
				rep, err := VerifySource(p.Name+".p4", p.Source, opts)
				if err != nil {
					t.Fatalf("%s: %v", cfg.name, err)
				}
				if rep.Exhausted {
					t.Fatalf("%s: exploration exhausted", cfg.name)
				}
				if base == nil {
					base = rep
					continue
				}
				if !SameVerdictSet(base, rep) {
					t.Fatalf("%s: verdicts diverge: baseline %s, %s %s",
						p.Name, base.VerdictDigest(), cfg.name, rep.VerdictDigest())
				}
			}
		})
	}
}

// TestRulesRunIsSubsetOfSymbolic: for corpus programs that ship a
// forwarding-rule configuration, the violations found under that concrete
// configuration must be a subset of the fully symbolic run's (a rule set
// restricts the table behaviours the symbolic fork ranges over).
func TestRulesRunIsSubsetOfSymbolic(t *testing.T) {
	ran := 0
	for _, p := range progs.All() {
		if p.Rules == "" {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rs, err := rules.Parse(p.Rules)
			if err != nil {
				t.Fatal(err)
			}
			ruled, err := VerifySource(p.Name+".p4", p.Source, Options{Rules: rs})
			if err != nil {
				t.Fatal(err)
			}
			symb, err := VerifySource(p.Name+".p4", p.Source, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !SubsetVerdictSet(ruled, symb) {
				t.Fatalf("%s: rules-run violations %v not a subset of symbolic %v",
					p.Name, ruled.VerdictSet(), symb.VerdictSet())
			}
		})
		ran++
	}
	if ran == 0 {
		t.Skip("no corpus program ships rules")
	}
}
