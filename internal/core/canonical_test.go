package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

// TestCanonicalViolationOrdering is the determinism regression over the
// corpus: the serialized violation list must be byte-identical across a
// sequential run, parallel runs at several worker counts, and a
// JSON round-trip of the sequential report (the cache-replay path).
// Without canonical ordering, parallel submodel aggregation reports
// violations in submodel-completion order and cached reports would not
// compare equal to live ones.
func TestCanonicalViolationOrdering(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			var rs *rules.RuleSet
			if p.Rules != "" {
				parsed, err := rules.Parse(p.Rules)
				if err != nil {
					t.Fatal(err)
				}
				rs = parsed
			}
			seq, err := VerifySource(p.Name+".p4", p.Source, Options{Rules: rs})
			if err != nil {
				t.Fatal(err)
			}
			want, err := seq.ViolationsJSON()
			if err != nil {
				t.Fatal(err)
			}

			// Cache-replay path: round-trip the report through the wire
			// format and re-serialize.
			wire, err := json.Marshal(seq)
			if err != nil {
				t.Fatal(err)
			}
			var replay Report
			if err := json.Unmarshal(wire, &replay); err != nil {
				t.Fatal(err)
			}
			got, err := replay.ViolationsJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("cache-replayed violations differ:\nlive:   %s\nreplay: %s", want, got)
			}

			for _, workers := range []int{1, 2, 4} {
				par, err := VerifySource(p.Name+".p4", p.Source, Options{Rules: rs, Parallel: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !SameVerdictSet(seq, par) {
					t.Fatalf("parallel(%d) verdicts diverge: %s vs %s",
						workers, seq.VerdictDigest(), par.VerdictDigest())
				}
				got, err := par.ViolationsJSON()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("parallel(%d) violations not byte-identical to sequential:\nseq: %s\npar: %s",
						workers, want, got)
				}
			}
		})
	}
}
