package core

import (
	"strings"
	"testing"

	"p4assert/internal/model"
	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

func TestSummaryRendering(t *testing.T) {
	p, err := progs.Get("circumvent")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifySource("c.p4", p.Source, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, frag := range []string{"FAIL", "violated on", "counterexample:", "paths="} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, s)
		}
	}
	ok, err := VerifySource("v.p4", mustGetSource(t, "vss"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ok.Summary(), "OK: all assertions hold") {
		t.Fatalf("summary = %q", ok.Summary())
	}
	par, err := VerifySource("v.p4", mustGetSource(t, "vss"), Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(par.Summary(), "submodels=") {
		t.Fatalf("parallel summary = %q", par.Summary())
	}
}

func mustGetSource(t *testing.T, name string) string {
	t.Helper()
	p, err := progs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.Source
}

func TestVerifyModelDirect(t *testing.T) {
	// Benchmarks pre-build models and run VerifyModel on them.
	m := model.NewProgram()
	m.AddGlobal("x", 8, true, 0)
	m.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpLt,
			X: &model.Ref{Name: "x"}, Y: &model.Const{Width: 8, Val: 200}}},
	}})
	m.Entry = []string{"main"}
	m.Asserts = []*model.AssertInfo{{ID: 0, Source: "x < 200"}}
	rep, err := VerifyModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("x < 200 is falsifiable")
	}
}

func TestGenerateTestsInCore(t *testing.T) {
	p, err := progs.Get("dcp4")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rules.Parse(p.Rules)
	if err != nil {
		t.Fatal(err)
	}
	cases, err := GenerateTestsSource("dcp4.p4", p.Source, Options{Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifySource("dcp4.p4", p.Source, Options{Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(cases)) != rep.Metrics.Paths {
		t.Fatalf("%d tests for %d paths", len(cases), rep.Metrics.Paths)
	}
	// The known ACL leak must appear among the failing test cases when the
	// inputs of some path pin the blocked address.
	var sawForward, sawDrop bool
	for _, tc := range cases {
		if tc.Forwarded {
			sawForward = true
		} else {
			sawDrop = true
		}
	}
	if !sawForward || !sawDrop {
		t.Fatalf("tests lack outcome diversity: fwd=%v drop=%v", sawForward, sawDrop)
	}
	// GenerateTests must also work from a parsed program.
	if _, err := GenerateTestsSource("bad.p4", "header {", Options{}); err == nil {
		t.Fatal("syntax error should propagate")
	}
}
