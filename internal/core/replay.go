package core

import (
	"fmt"
	"strings"

	"p4assert/internal/interp"
	"p4assert/internal/model"
	"p4assert/internal/sym"
)

// traceFollower drives the concrete interpreter's fork choices along a
// trace recorded by the symbolic executor (entries are "selector=label").
// Any divergence between the forks the concrete run reaches and the
// recorded decisions is an error: a replay that silently wanders onto a
// different path would mask exactly the engine disagreements the
// differential oracle exists to catch.
type traceFollower struct {
	trace []string
	idx   int
	err   error
}

func (tf *traceFollower) choose(selector string, labels []string) int {
	if tf.err != nil {
		return 0
	}
	if tf.idx >= len(tf.trace) {
		// The recorded prefix is fully replayed. A violation recorded
		// mid-path carries no entries for forks after the assertion site;
		// branch 0 is an arbitrary (and irrelevant) continuation.
		return 0
	}
	entry := tf.trace[tf.idx]
	eq := strings.IndexByte(entry, '=')
	if eq < 0 || entry[:eq] != selector {
		tf.err = fmt.Errorf("trace mismatch: concrete run reached fork %q but the trace records %q",
			selector, entry)
		return 0
	}
	tf.idx++
	want := entry[eq+1:]
	for i, l := range labels {
		if l == want {
			return i
		}
	}
	tf.err = fmt.Errorf("trace mismatch: fork %q has no branch labelled %q (branches %v)",
		selector, want, labels)
	return 0
}

// note consumes a TraceNote entry (a submodel's record of its replaced
// split decision). The entry must match the recorded trace exactly, with
// the same strictness as fork choices.
func (tf *traceFollower) note(label string) {
	if tf.err != nil {
		return
	}
	if tf.idx >= len(tf.trace) {
		// Past the recorded prefix (mid-path violation): the continuation
		// is arbitrary, notes included.
		return
	}
	if tf.trace[tf.idx] != label {
		tf.err = fmt.Errorf("trace mismatch: submodel records decision %q but the trace has %q",
			label, tf.trace[tf.idx])
		return
	}
	tf.idx++
}

// ReplayViolation runs a violation's counterexample concretely through the
// model interpreter (internal/interp, the BMv2 stand-in of the paper's §6
// validation) and reports whether the assertion indeed fails on that input.
// A false result means the symbolic executor produced a spurious
// counterexample — the differential check the paper performs between its C
// models and BMv2. A trace divergence between the recorded path and the
// concrete run is reported as an error, never papered over by falling back
// to an arbitrary branch.
func ReplayViolation(m *model.Program, v *sym.Violation) (bool, error) {
	tf := &traceFollower{trace: v.Trace}
	res, err := interp.Run(m, interp.Options{
		Input: func(name string, width int) uint64 {
			return v.Model[name]
		},
		Choose: tf.choose,
		Note:   tf.note,
	})
	if err != nil {
		return false, fmt.Errorf("replay: %w", err)
	}
	if tf.err != nil {
		return false, fmt.Errorf("replay: %w", tf.err)
	}
	// The failure check comes before the assumption check: once the
	// recorded trace is exhausted (mid-path violations), the continuation
	// is arbitrary and may legitimately trip an assume after the assertion
	// already failed.
	for _, id := range res.Failures {
		if id == v.AssertID {
			return true, nil
		}
	}
	if res.AssumeViolated {
		return false, fmt.Errorf("replay: counterexample violates an assumption")
	}
	return false, nil
}

// ReplayAll replays every violation of a report against the executed
// model, returning an error describing the first spurious one (nil if all
// counterexamples validate). Violations found by parallel submodel runs
// carry traces relative to their submodel (the split decision is an
// assumption there, not a fork), so those replay against the recorded
// submodel instead of the merged report's full model.
func ReplayAll(rep *Report) error {
	for _, v := range rep.Violations {
		m := rep.Model
		if sub, ok := rep.ViolationModels[v.AssertID]; ok {
			m = sub
		}
		ok, err := ReplayViolation(m, v)
		if err != nil {
			return fmt.Errorf("assert #%d: %w", v.AssertID, err)
		}
		if !ok {
			return fmt.Errorf("assert #%d: counterexample %s does not reproduce concretely",
				v.AssertID, sym.FormatModel(v.Model))
		}
	}
	return nil
}

// ReplayTest replays one collected path test concretely and compares the
// observable outcome (halt status, forward flag, egress port, assertion
// verdicts) against the symbolic engine's prediction. This is the
// whole-path differential oracle: the two independent IR implementations
// must agree on every completed path, not only on violating ones.
func ReplayTest(m *model.Program, pt *sym.PathTest) error {
	tf := &traceFollower{trace: pt.Trace}
	res, err := interp.Run(m, interp.Options{
		Input: func(name string, width int) uint64 {
			return pt.Inputs[name]
		},
		Choose: tf.choose,
		Note:   tf.note,
	})
	if err != nil {
		return err
	}
	if tf.err != nil {
		return tf.err
	}
	if tf.idx != len(pt.Trace) {
		return fmt.Errorf("trace mismatch: concrete run consumed %d of %d fork decisions",
			tf.idx, len(pt.Trace))
	}
	if res.AssumeViolated {
		return fmt.Errorf("differential mismatch: inputs %s violate an assumption concretely",
			sym.FormatModel(pt.Inputs))
	}
	got := res.Outcome().Digest()
	want := pt.Outcome.Digest()
	if got != want {
		return fmt.Errorf("differential mismatch on inputs %s:\n  symbolic: %s\n  concrete: %s",
			sym.FormatModel(pt.Inputs), want, got)
	}
	return nil
}

// ReplayTests replays every collected path test of a report (CollectTests
// runs), returning an error describing the first disagreement between the
// symbolic executor and the concrete interpreter.
func ReplayTests(rep *Report) error {
	for i := range rep.Tests {
		if err := ReplayTest(rep.Model, &rep.Tests[i]); err != nil {
			return fmt.Errorf("path test %d: %w", i, err)
		}
	}
	return nil
}
