package core

import (
	"fmt"
	"strings"

	"p4assert/internal/interp"
	"p4assert/internal/model"
	"p4assert/internal/sym"
)

// ReplayViolation runs a violation's counterexample concretely through the
// model interpreter (internal/interp, the BMv2 stand-in of the paper's §6
// validation) and reports whether the assertion indeed fails on that input.
// A false result means the symbolic executor produced a spurious
// counterexample — the differential check the paper performs between its C
// models and BMv2.
func ReplayViolation(m *model.Program, v *sym.Violation) (bool, error) {
	traceIdx := 0
	res, err := interp.Run(m, interp.Options{
		Input: func(name string, width int) uint64 {
			return v.Model[name]
		},
		Choose: func(selector string, labels []string) int {
			// Follow the recorded fork trace: entries are "selector=label".
			if traceIdx < len(v.Trace) {
				entry := v.Trace[traceIdx]
				if eq := strings.IndexByte(entry, '='); eq >= 0 && entry[:eq] == selector {
					traceIdx++
					want := entry[eq+1:]
					for i, l := range labels {
						if l == want {
							return i
						}
					}
					// Chain-compacted forks label branches by value.
					return 0
				}
			}
			return 0
		},
	})
	if err != nil {
		return false, fmt.Errorf("replay: %w", err)
	}
	if res.AssumeViolated {
		return false, fmt.Errorf("replay: counterexample violates an assumption")
	}
	for _, id := range res.Failures {
		if id == v.AssertID {
			return true, nil
		}
	}
	return false, nil
}

// ReplayAll replays every violation of a report against the executed
// model, returning an error describing the first spurious one (nil if all
// counterexamples validate).
func ReplayAll(rep *Report) error {
	for _, v := range rep.Violations {
		ok, err := ReplayViolation(rep.Model, v)
		if err != nil {
			return fmt.Errorf("assert #%d: %w", v.AssertID, err)
		}
		if !ok {
			return fmt.Errorf("assert #%d: counterexample %s does not reproduce concretely",
				v.AssertID, sym.FormatModel(v.Model))
		}
	}
	return nil
}
