package core

import (
	"testing"

	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

// collectFor runs a corpus program with CollectTests under its default
// forwarding rules.
func collectFor(t *testing.T, p *progs.Program) *Report {
	t.Helper()
	opts := Options{CollectTests: true}
	if p.Rules != "" {
		rs, err := rules.Parse(p.Rules)
		if err != nil {
			t.Fatal(err)
		}
		opts.Rules = rs
	}
	rep, err := VerifySource(p.Name+".p4", p.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestPathTestsReplayDifferentially is the whole-path differential oracle
// over the corpus: every collected path test — not only violating paths —
// must replay through the independent concrete interpreter to exactly the
// outcome the symbolic engine predicted (halt status, forward flag, egress
// port, per-assertion verdicts).
func TestPathTestsReplayDifferentially(t *testing.T) {
	total := 0
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rep := collectFor(t, p)
			if err := ReplayTests(rep); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			total += len(rep.Tests)
		})
	}
	if total == 0 {
		t.Fatal("no path tests were collected across the whole corpus")
	}
}

// TestPathTestOutcomesCoverVerdicts: the per-path outcomes must be
// consistent with the report's violation set — every assertion that some
// path test marks failed is reported violated.
func TestPathTestOutcomesCoverVerdicts(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rep := collectFor(t, p)
			violated := map[int]bool{}
			for _, id := range rep.VerdictSet() {
				violated[id] = true
			}
			for i, pt := range rep.Tests {
				for _, id := range pt.Outcome.Failures {
					if !violated[id] {
						t.Fatalf("%s: path test %d fails assert #%d which the report does not flag",
							p.Name, i, id)
					}
				}
			}
		})
	}
}
