package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

// TestReportJSONRoundTrip verifies that a Report survives a
// marshal→unmarshal→marshal cycle byte-identically for every corpus
// program — the property the content-addressed result cache depends on.
func TestReportJSONRoundTrip(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			var rs *rules.RuleSet
			if p.Rules != "" {
				parsed, err := rules.Parse(p.Rules)
				if err != nil {
					t.Fatal(err)
				}
				rs = parsed
			}
			rep, err := VerifySource(p.Name+".p4", p.Source, Options{Rules: rs, Slice: true})
			if err != nil {
				t.Fatal(err)
			}
			first, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			var back Report
			if err := json.Unmarshal(first, &back); err != nil {
				t.Fatal(err)
			}
			second, err := json.Marshal(&back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("report JSON not stable under round-trip:\n%s\nvs\n%s", first, second)
			}
			if back.Ok() != rep.Ok() {
				t.Fatalf("verdict changed across round-trip: %v vs %v", back.Ok(), rep.Ok())
			}
			if !SameVerdictSet(rep, &back) {
				t.Fatalf("verdict set changed: %s vs %s", rep.VerdictDigest(), back.VerdictDigest())
			}
		})
	}
}

// TestReportJSONSliceErr checks that a slicing failure survives the wire
// format as its message.
func TestReportJSONSliceErr(t *testing.T) {
	mri, err := progs.Get("mri")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifySource("mri.p4", mri.Source, Options{Slice: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SliceErr == nil {
		t.Skip("mri now slices; no error to round-trip")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SliceErr == nil || back.SliceErr.Error() != rep.SliceErr.Error() {
		t.Fatalf("SliceErr lost: %v vs %v", back.SliceErr, rep.SliceErr)
	}
}
