package core

import (
	"fmt"

	"p4assert/internal/interp"
	"p4assert/internal/model"
	"p4assert/internal/p4"
	"p4assert/internal/sym"
)

// TestCase is one generated end-to-end test for a P4 program: a concrete
// input packet, the pipeline decisions it takes, and the observed output
// behaviour from a concrete run. This implements the paper's §6 "ongoing
// work": systematically generating test cases for the program under
// verification (the role of p4pktgen).
type TestCase struct {
	// Inputs assigns packet fields and metadata (symbolic input names,
	// possibly suffixed #n for re-extracted fields).
	Inputs map[string]uint64
	// Trace is the sequence of table/action decisions.
	Trace []string
	// Halted reports that the parser rejected the packet.
	Halted bool
	// Forwarded reports whether the packet leaves the switch.
	Forwarded bool
	// EgressSpec is the final egress port value.
	EgressSpec uint64
	// FailedAsserts lists assertion IDs that fail on this input.
	FailedAsserts []int
}

// GenerateTests explores every path of the program and emits one concrete
// test case per path, with expected outputs computed by the concrete
// interpreter.
func GenerateTests(prog *p4.Program, opts Options) ([]TestCase, error) {
	opts.CollectTests = true
	opts.Parallel = 0 // tests come from the sequential engine
	rep, err := VerifyProgram(prog, opts)
	if err != nil {
		return nil, err
	}
	return materialize(rep)
}

// GenerateTestsSource is GenerateTests over source text.
func GenerateTestsSource(filename, source string, opts Options) ([]TestCase, error) {
	prog, err := p4.Parse(filename, source)
	if err != nil {
		return nil, err
	}
	if err := prog.Check(); err != nil {
		return nil, err
	}
	return GenerateTests(prog, opts)
}

func materialize(rep *Report) ([]TestCase, error) {
	out := make([]TestCase, 0, len(rep.Tests))
	for i, pt := range rep.Tests {
		tc, err := runTest(rep.Model, pt)
		if err != nil {
			return nil, fmt.Errorf("test %d: %w", i, err)
		}
		out = append(out, tc)
	}
	return out, nil
}

func runTest(m *model.Program, pt sym.PathTest) (TestCase, error) {
	tf := &traceFollower{trace: pt.Trace}
	res, err := interp.Run(m, interp.Options{
		Input:  func(name string, width int) uint64 { return pt.Inputs[name] },
		Choose: tf.choose,
	})
	if err != nil {
		return TestCase{}, err
	}
	if tf.err != nil {
		return TestCase{}, tf.err
	}
	o := res.Outcome()
	return TestCase{
		Inputs:        pt.Inputs,
		Trace:         pt.Trace,
		Halted:        o.Halted,
		Forwarded:     o.Forward == 1,
		EgressSpec:    o.Egress,
		FailedAsserts: o.Failures,
	}, nil
}
