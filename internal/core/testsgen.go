package core

import (
	"fmt"
	"strings"

	"p4assert/internal/interp"
	"p4assert/internal/model"
	"p4assert/internal/p4"
	"p4assert/internal/sym"
)

// TestCase is one generated end-to-end test for a P4 program: a concrete
// input packet, the pipeline decisions it takes, and the observed output
// behaviour from a concrete run. This implements the paper's §6 "ongoing
// work": systematically generating test cases for the program under
// verification (the role of p4pktgen).
type TestCase struct {
	// Inputs assigns packet fields and metadata (symbolic input names,
	// possibly suffixed #n for re-extracted fields).
	Inputs map[string]uint64
	// Trace is the sequence of table/action decisions.
	Trace []string
	// Forwarded reports whether the packet leaves the switch.
	Forwarded bool
	// EgressSpec is the final egress port value.
	EgressSpec uint64
	// FailedAsserts lists assertion IDs that fail on this input.
	FailedAsserts []int
}

// GenerateTests explores every path of the program and emits one concrete
// test case per path, with expected outputs computed by the concrete
// interpreter.
func GenerateTests(prog *p4.Program, opts Options) ([]TestCase, error) {
	opts.CollectTests = true
	opts.Parallel = 0 // tests come from the sequential engine
	rep, err := VerifyProgram(prog, opts)
	if err != nil {
		return nil, err
	}
	return materialize(rep)
}

// GenerateTestsSource is GenerateTests over source text.
func GenerateTestsSource(filename, source string, opts Options) ([]TestCase, error) {
	prog, err := p4.Parse(filename, source)
	if err != nil {
		return nil, err
	}
	if err := prog.Check(); err != nil {
		return nil, err
	}
	return GenerateTests(prog, opts)
}

func materialize(rep *Report) ([]TestCase, error) {
	egressGlobal := findEgressGlobal(rep.Model)
	out := make([]TestCase, 0, len(rep.Tests))
	for i, pt := range rep.Tests {
		tc, err := runTest(rep.Model, pt, egressGlobal)
		if err != nil {
			return nil, fmt.Errorf("test %d: %w", i, err)
		}
		out = append(out, tc)
	}
	return out, nil
}

func runTest(m *model.Program, pt sym.PathTest, egressGlobal string) (TestCase, error) {
	traceIdx := 0
	res, err := interp.Run(m, interp.Options{
		Input: func(name string, width int) uint64 { return pt.Inputs[name] },
		Choose: func(selector string, labels []string) int {
			if traceIdx < len(pt.Trace) {
				entry := pt.Trace[traceIdx]
				if eq := strings.IndexByte(entry, '='); eq >= 0 && entry[:eq] == selector {
					traceIdx++
					want := entry[eq+1:]
					for j, l := range labels {
						if l == want {
							return j
						}
					}
				}
			}
			return 0
		},
	})
	if err != nil {
		return TestCase{}, err
	}
	tc := TestCase{
		Inputs:        pt.Inputs,
		Trace:         pt.Trace,
		Forwarded:     res.Store[model.ForwardFlag] == 1,
		FailedAsserts: res.Failures,
	}
	if egressGlobal != "" {
		tc.EgressSpec = res.Store[egressGlobal]
	}
	return tc, nil
}

func findEgressGlobal(m *model.Program) string {
	for _, g := range m.Globals {
		if strings.HasSuffix(g.Name, ".egress_spec") {
			return g.Name
		}
	}
	return ""
}
