package core

import (
	"fmt"
	"sort"
)

// VerdictSummary extracts the per-assertion verdict of a report: each
// violated assertion ID mapped to the number of violating paths. It is the
// comparison form the metamorphic oracle (internal/difftest) and the
// cross-configuration equivalence tests work on.
func (r *Report) VerdictSummary() map[int]int64 {
	out := make(map[int]int64, len(r.Violations))
	for _, v := range r.Violations {
		out[v.AssertID] += v.Count
	}
	return out
}

// VerdictSet returns the sorted IDs of the violated assertions.
func (r *Report) VerdictSet() []int {
	ids := make([]int, 0, len(r.Violations))
	for _, v := range r.Violations {
		ids = append(ids, v.AssertID)
	}
	sort.Ints(ids)
	return ids
}

// VerdictDigest renders the violated-assertion set canonically, e.g.
// "violated=[0 2]" or "violated=[] (exhausted)". Two runs of the same
// program under semantics-preserving configurations must digest equally.
func (r *Report) VerdictDigest() string {
	s := fmt.Sprintf("violated=%v", r.VerdictSet())
	if r.Exhausted {
		s += " (exhausted)"
	}
	return s
}

// SameVerdictSet reports whether two reports flag exactly the same
// assertion IDs — the metamorphic equivalence relation that must hold
// across the technique matrix (baseline, O3, Opt, Slice, Parallel) and
// that rule-restricted runs must satisfy as a subset of symbolic runs.
func SameVerdictSet(a, b *Report) bool {
	as, bs := a.VerdictSet(), b.VerdictSet()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// SubsetVerdictSet reports whether every assertion violated in a is also
// violated in b. A run under a concrete rule configuration explores a
// subset of the behaviours of the fully symbolic run, so its violations
// must be a subset of the symbolic run's.
func SubsetVerdictSet(a, b *Report) bool {
	bs := map[int]bool{}
	for _, id := range b.VerdictSet() {
		bs[id] = true
	}
	for _, id := range a.VerdictSet() {
		if !bs[id] {
			return false
		}
	}
	return true
}
