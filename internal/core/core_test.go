package core

import (
	"strings"
	"testing"

	"p4assert/internal/rules"
)

// ttlProgram is a Fig.5-style pipeline: a dmac table that either drops or
// forwards. With checkTTL, packets with TTL zero are dropped before the
// table; without it they can be forwarded — the paper's Dapper-style bug.
func ttlProgram(checkTTL bool) string {
	guard := ""
	if checkTTL {
		guard = `if (hdr.ipv4.ttl == 0) { drop(); } else { dmac.apply(); }`
	} else {
		guard = `dmac.apply();`
	}
	return `
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct headers_t { ethernet_t ethernet; ipv4_t ipv4; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x0800: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ingress(inout headers_t hdr, inout meta_t meta,
                inout standard_metadata_t standard_metadata) {
    action drop() {
        mark_to_drop(standard_metadata);
        @assert("if(traverse_path(), !forward())");
    }
    action set_dmac(bit<48> dmac) {
        hdr.ethernet.dstAddr = dmac;
        standard_metadata.egress_spec = 1;
    }
    table dmac {
        key = { hdr.ipv4.dstAddr : exact; }
        actions = { drop; set_dmac; }
        default_action = drop();
    }
    apply {
        ` + guard + `
        @assert("if(forward(), hdr.ipv4.ttl > 0)");
    }
}

control Deparser(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.ethernet); pkt.emit(hdr.ipv4); }
}

V1Switch(P, Ingress, Deparser) main;
`
}

func TestCorrectProgramVerifies(t *testing.T) {
	rep, err := VerifySource("ttl_ok.p4", ttlProgram(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("expected no violations, got:\n%s", rep.Summary())
	}
	if rep.Metrics.Paths == 0 {
		t.Fatal("no paths explored")
	}
	if len(rep.Asserts) != 2 {
		t.Fatalf("expected 2 assertions, got %d", len(rep.Asserts))
	}
}

func TestTTLBugFound(t *testing.T) {
	rep, err := VerifySource("ttl_bug.p4", ttlProgram(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatalf("expected a violation, got OK:\n%s", rep.Summary())
	}
	// The forward/ttl assertion (id 1, declared second) must be violated;
	// the traverse_path/drop assertion (id 0) must hold.
	if !violated(rep, 1) {
		t.Fatalf("assertion 1 (ttl>0 on forward) should be violated:\n%s", rep.Summary())
	}
	if violated(rep, 0) {
		t.Fatalf("assertion 0 (drop => !forward) should hold:\n%s", rep.Summary())
	}
	// The counterexample must be a zero-TTL IPv4 packet.
	v := findViolation(rep, 1)
	ttl, ok := modelValueWithPrefix(v.Model, "hdr.ipv4.ttl")
	if !ok {
		t.Fatalf("counterexample lacks a ttl assignment: %v", v.Model)
	}
	if ttl != 0 {
		t.Fatalf("counterexample ttl = %d, want 0", ttl)
	}
	et, ok := modelValueWithPrefix(v.Model, "hdr.ethernet.etherType")
	if !ok || et != 0x800 {
		t.Fatalf("counterexample etherType = %#x, want 0x800 (model %v)", et, v.Model)
	}
}

func violated(rep *Report, id int) bool {
	for _, v := range rep.Violations {
		if v.AssertID == id {
			return true
		}
	}
	return false
}

func findViolation(rep *Report, id int) *violationT {
	for _, v := range rep.Violations {
		if v.AssertID == id {
			return &violationT{Model: v.Model}
		}
	}
	return nil
}

type violationT struct{ Model map[string]uint64 }

// modelValueWithPrefix finds a model entry by name or fresh-symbolic name
// ("name#3").
func modelValueWithPrefix(m map[string]uint64, name string) (uint64, bool) {
	if v, ok := m[name]; ok {
		return v, true
	}
	for k, v := range m {
		if strings.HasPrefix(k, name+"#") {
			return v, true
		}
	}
	return 0, false
}

func TestOptionsMatrixAgreesOnVerdict(t *testing.T) {
	// Every technique combination must find the same violation set.
	for _, opts := range []Options{
		{},
		{O3: true},
		{Opt: true},
		{Slice: true},
		{Parallel: 4},
		{O3: true, Opt: true, Parallel: 4},
		{O3: true, Slice: true},
	} {
		rep, err := VerifySource("ttl_bug.p4", ttlProgram(false), opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if !violated(rep, 1) || violated(rep, 0) {
			t.Fatalf("opts %+v: wrong verdict:\n%s", opts, rep.Summary())
		}
		rep2, err := VerifySource("ttl_ok.p4", ttlProgram(true), opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if !rep2.Ok() {
			t.Fatalf("opts %+v: correct program flagged:\n%s", opts, rep2.Summary())
		}
	}
}

func TestRulesRestrictBehaviour(t *testing.T) {
	// With a rule set that never installs set_dmac, every packet drops and
	// the ttl assertion holds even in the buggy program.
	rs := rules.NewRuleSet()
	rs.Add(rules.Rule{Table: "dmac", Action: "drop", Keys: []rules.Match{{Kind: rules.Wildcard}}})
	rep, err := VerifySource("ttl_bug.p4", ttlProgram(false), Options{Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	if violated(rep, 1) {
		t.Fatalf("with drop-all rules the ttl assertion must hold:\n%s", rep.Summary())
	}

	// A rule forwarding one specific address re-exposes the bug.
	rs2 := rules.NewRuleSet()
	rs2.Add(rules.Rule{Table: "dmac", Action: "set_dmac",
		Keys: []rules.Match{{Kind: rules.Exact, Value: 0x0a000001}}, Args: []uint64{0xaabbccddeeff}})
	rep2, err := VerifySource("ttl_bug.p4", ttlProgram(false), Options{Rules: rs2})
	if err != nil {
		t.Fatal(err)
	}
	if !violated(rep2, 1) {
		t.Fatalf("forwarding rule should re-expose the ttl bug:\n%s", rep2.Summary())
	}
	v := findViolation(rep2, 1)
	dst, ok := modelValueWithPrefix(v.Model, "hdr.ipv4.dstAddr")
	if !ok || dst != 0x0a000001 {
		t.Fatalf("counterexample dstAddr = %#x, want 0x0a000001", dst)
	}
}

func TestAssumeConstrainsPaths(t *testing.T) {
	// Constraining the etherType away from IPv4 removes the violating
	// paths entirely (paper §4.1).
	src := strings.Replace(ttlProgram(false),
		"pkt.extract(hdr.ethernet);",
		"pkt.extract(hdr.ethernet);\n        @assume(hdr.ethernet.etherType != 0x0800);", 1)
	rep, err := VerifySource("ttl_assume.p4", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if violated(rep, 1) {
		t.Fatalf("assume should have pruned the IPv4 paths:\n%s", rep.Summary())
	}
}

func TestAssumeReducesInstructions(t *testing.T) {
	base, err := VerifySource("b.p4", ttlProgram(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := strings.Replace(ttlProgram(false),
		"pkt.extract(hdr.ethernet);",
		"pkt.extract(hdr.ethernet);\n        @assume(hdr.ethernet.etherType == 0x0800);", 1)
	constrained, err := VerifySource("c.p4", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Metrics.Instructions >= base.Metrics.Instructions {
		t.Fatalf("constraints should reduce instructions: %d >= %d",
			constrained.Metrics.Instructions, base.Metrics.Instructions)
	}
}

func TestEmitExtractProperties(t *testing.T) {
	// MRI-style property: every extracted header is emitted.
	src := `
header h_t { bit<8> v; }
struct headers_t { h_t h; }
struct meta_t { bit<1> u; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout headers_t hdr, inout meta_t meta,
          inout standard_metadata_t standard_metadata) {
    apply { @assert("if(extract_header(hdr.h), emit_header(hdr.h))"); }
}
control D(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.h); }
}
V1Switch(P, I, D) main;
`
	rep, err := VerifySource("emit.p4", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("extract=>emit should hold:\n%s", rep.Summary())
	}
	// Remove the emit: the property must now fail.
	src2 := strings.Replace(src, "pkt.emit(hdr.h);", "", 1)
	rep2, err := VerifySource("noemit.p4", src2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Ok() {
		t.Fatal("missing emit should violate extract=>emit")
	}
}

func TestConstantMethod(t *testing.T) {
	// constant(f) fails when a later block mutates f.
	src := `
header h_t { bit<8> v; }
struct headers_t { h_t h; }
struct meta_t { bit<1> u; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout headers_t hdr, inout meta_t meta,
          inout standard_metadata_t standard_metadata) {
    apply { @assert("constant(hdr.h.v)"); MUTATE }
}
control D(packet_out pkt, in headers_t hdr) { apply { } }
V1Switch(P, I, D) main;
`
	ok := strings.Replace(src, "MUTATE", "", 1)
	rep, err := VerifySource("const_ok.p4", ok, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("unmutated field: constant() should hold:\n%s", rep.Summary())
	}
	bad := strings.Replace(src, "MUTATE", "hdr.h.v = hdr.h.v + 1;", 1)
	rep2, err := VerifySource("const_bad.p4", bad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Ok() {
		t.Fatal("mutation after the assertion should violate constant()")
	}
}

func TestTernaryRuleSemantics(t *testing.T) {
	// A ternary table where priority order decides overlapping matches:
	// rule 0 masks the low nibble, rule 1 is an exact full match that is
	// shadowed by rule 0 for the overlapping keys.
	src := `
header h_t { bit<8> k; }
struct hs { h_t h; }
struct ms { bit<8> out; }
parser P(packet_in pkt, out hs hdr, inout ms meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout hs hdr, inout ms meta,
          inout standard_metadata_t standard_metadata) {
    action set_out(bit<8> v) { meta.out = v; }
    table t {
        key = { hdr.h.k : ternary; }
        actions = { set_out; NoAction; }
        default_action = set_out(0);
    }
    apply {
        t.apply();
        @assert("if(h.k == 0x15, out == 1)");  // low nibble 5: rule 0 wins
        @assert("if(h.k == 0x27, out == 2)");  // exact rule 1
        @assert("if(h.k == 0x33, out == 0)");  // no match: default
    }
}
control D(packet_out pkt, in hs hdr) { apply { } }
V1Switch(P, I, D) main;
`
	rs := rules.NewRuleSet()
	rs.Add(rules.Rule{Table: "t", Action: "set_out", Priority: 0,
		Keys: []rules.Match{{Kind: rules.Ternary, Value: 0x05, Mask: 0x0F}},
		Args: []uint64{1}})
	rs.Add(rules.Rule{Table: "t", Action: "set_out", Priority: 1,
		Keys: []rules.Match{{Kind: rules.Exact, Value: 0x27}},
		Args: []uint64{2}})
	rep, err := VerifySource("tern.p4", src, Options{Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("ternary priority semantics wrong:\n%s", rep.Summary())
	}
	// Shadowing: 0x25 has low nibble 5, so rule 0 shadows rule 1's miss.
	src2 := strings.Replace(src,
		`@assert("if(h.k == 0x15, out == 1)");  // low nibble 5: rule 0 wins`,
		`@assert("if(h.k == 0x25, out == 1)");`, 1)
	rep2, err := VerifySource("tern2.p4", src2, Options{Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Ok() {
		t.Fatalf("ternary shadowing wrong:\n%s", rep2.Summary())
	}
}

func TestConstEntryMasks(t *testing.T) {
	// const entries with &&& masks behave like installed ternary rules.
	src := `
header h_t { bit<8> k; }
struct hs { h_t h; }
struct ms { bit<8> out; }
parser P(packet_in pkt, out hs hdr, inout ms meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout hs hdr, inout ms meta,
          inout standard_metadata_t standard_metadata) {
    action set_out(bit<8> v) { meta.out = v; }
    table t {
        key = { hdr.h.k : ternary; }
        actions = { set_out; NoAction; }
        default_action = set_out(0);
        const entries = {
            0x80 &&& 0x80 : set_out(1);   // high bit set
            _             : set_out(2);   // everything else
        }
    }
    apply {
        t.apply();
        @assert("if(h.k >= 0x80, out == 1)");
        @assert("if(h.k < 0x80, out == 2)");
    }
}
control D(packet_out pkt, in hs hdr) { apply { } }
V1Switch(P, I, D) main;
`
	rep, err := VerifySource("mask.p4", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("const entry mask semantics wrong:\n%s", rep.Summary())
	}
}

func TestApplyHitSemantics(t *testing.T) {
	// With const entries, apply().hit is true exactly when a key matches.
	src := `
header h_t { bit<8> k; }
struct hs { h_t h; }
struct ms { bit<8> flag; }
parser P(packet_in pkt, out hs hdr, inout ms meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout hs hdr, inout ms meta,
          inout standard_metadata_t standard_metadata) {
    action mark() { }
    table t {
        key = { hdr.h.k : exact; }
        actions = { mark; NoAction; }
        default_action = NoAction;
        const entries = { 5 : mark(); 9 : mark(); }
    }
    apply {
        if (t.apply().hit) {
            meta.flag = 1;
        } else {
            meta.flag = 0;
        }
        @assert("if(h.k == 5, flag == 1)");
        @assert("if(h.k == 9, flag == 1)");
        @assert("if(h.k == 7, flag == 0)");
    }
}
control D(packet_out pkt, in hs hdr) { apply { } }
V1Switch(P, I, D) main;
`
	rep, err := VerifySource("hit.p4", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("hit semantics wrong:\n%s", rep.Summary())
	}
	// The miss form inverts the branch.
	src2 := strings.Replace(src, "t.apply().hit", "t.apply().miss", 1)
	src2 = strings.Replace(src2, `meta.flag = 1;
        } else {
            meta.flag = 0;`, `meta.flag = 0;
        } else {
            meta.flag = 1;`, 1)
	rep2, err := VerifySource("miss.p4", src2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Ok() {
		t.Fatalf("miss semantics wrong:\n%s", rep2.Summary())
	}
}

func TestApplyHitUnknownRulesIsFree(t *testing.T) {
	// Without rules, hit must be unconstrained: both branches reachable.
	src := `
header h_t { bit<8> k; }
struct hs { h_t h; }
struct ms { bit<8> flag; }
parser P(packet_in pkt, out hs hdr, inout ms meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout hs hdr, inout ms meta,
          inout standard_metadata_t standard_metadata) {
    action mark() { }
    table t {
        key = { hdr.h.k : exact; }
        actions = { mark; NoAction; }
        default_action = NoAction;
    }
    apply {
        if (t.apply().hit) {
            meta.flag = 1;
        }
        @assert("flag == 0");
    }
}
control D(packet_out pkt, in hs hdr) { apply { } }
V1Switch(P, I, D) main;
`
	rep, err := VerifySource("hitfree.p4", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The hit branch must be reachable, so the assertion is violated.
	if rep.Ok() {
		t.Fatal("symbolic hit should make the hit branch reachable")
	}
}

func TestConstEntriesMisconfiguration(t *testing.T) {
	// Paper Fig. 2: a mirror table clones to the same egress port.
	src := `
struct headers_t { }
struct meta_t { bit<9> cloned_port; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t standard_metadata) {
    state start { transition accept; }
}
control I(inout headers_t hdr, inout meta_t meta,
          inout standard_metadata_t standard_metadata) {
    action clone_packet(bit<9> port) { meta.cloned_port = port; }
    table mirror {
        key = { standard_metadata.egress_spec : exact; }
        actions = { NoAction; clone_packet; }
        default_action = NoAction;
        const entries = {
            0x001 : clone_packet(0x002);
            0x002 : clone_packet(0x002);
        }
    }
    apply {
        standard_metadata.egress_spec = standard_metadata.ingress_port;
        @assume(standard_metadata.ingress_port == 1 || standard_metadata.ingress_port == 2);
        mirror.apply();
        @assert("!(cloned_port == standard_metadata.egress_spec && constant(cloned_port))");
    }
}
control D(packet_out pkt, in headers_t hdr) { apply { } }
V1Switch(P, I, D) main;
`
	rep, err := VerifySource("mirror.p4", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("the rule cloning port 2 to port 2 must violate the mirror assertion")
	}
	v := rep.Violations[0]
	port, ok := modelValueWithPrefix(v.Model, "standard_metadata.ingress_port")
	if !ok || port != 2 {
		t.Fatalf("counterexample ingress_port = %#x, want 0x2 (model %v)", port, v.Model)
	}
}
