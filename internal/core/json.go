// JSON serialization of verification reports: the wire format shared by
// the -json CLI mode, the verification service (cmd/p4served), and the
// content-addressed result cache (internal/vcache). A Report round-trips
// through Marshal/Unmarshal: every field that can be represented in JSON
// survives byte-identically; the executed model itself (Report.Model,
// Report.ViolationModels) is process-local and deliberately not part of the
// wire format — consumers that need replay re-translate from source.
package core

import (
	"encoding/json"
	"errors"
	"time"

	"p4assert/internal/model"
	"p4assert/internal/sym"
)

// wireReport is Report's JSON shadow. SliceErr (an error) travels as its
// message string; Model and ViolationModels are dropped (see package
// comment above).
type wireReport struct {
	Violations                []*sym.Violation    `json:"violations,omitempty"`
	Metrics                   sym.Metrics         `json:"metrics"`
	WorstSubmodelInstructions int64               `json:"worst_submodel_instructions,omitempty"`
	Submodels                 int                 `json:"submodels,omitempty"`
	Asserts                   []*model.AssertInfo `json:"asserts,omitempty"`
	SliceError                string              `json:"slice_error,omitempty"`
	ParseTimeNS               int64               `json:"parse_time_ns,omitempty"`
	CheckTimeNS               int64               `json:"check_time_ns,omitempty"`
	TranslateTimeNS           int64               `json:"translate_time_ns,omitempty"`
	OptimizeTimeNS            int64               `json:"optimize_time_ns,omitempty"`
	SliceTimeNS               int64               `json:"slice_time_ns,omitempty"`
	ExecTimeNS                int64               `json:"exec_time_ns,omitempty"`
	Telemetry                 *ReportTelemetry    `json:"telemetry,omitempty"`
	Tests                     []sym.PathTest      `json:"tests,omitempty"`
	Exhausted                 bool                `json:"exhausted,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (r *Report) MarshalJSON() ([]byte, error) {
	w := wireReport{
		Violations:                r.Violations,
		Metrics:                   r.Metrics,
		WorstSubmodelInstructions: r.WorstSubmodelInstructions,
		Submodels:                 r.Submodels,
		Asserts:                   r.Asserts,
		ParseTimeNS:               int64(r.ParseTime),
		CheckTimeNS:               int64(r.CheckTime),
		TranslateTimeNS:           int64(r.TranslateTime),
		OptimizeTimeNS:            int64(r.OptimizeTime),
		SliceTimeNS:               int64(r.SliceTime),
		ExecTimeNS:                int64(r.ExecTime),
		Telemetry:                 r.Telemetry,
		Tests:                     r.Tests,
		Exhausted:                 r.Exhausted,
	}
	if r.SliceErr != nil {
		w.SliceError = r.SliceErr.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Report) UnmarshalJSON(data []byte) error {
	var w wireReport
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Report{
		Violations:                w.Violations,
		Metrics:                   w.Metrics,
		WorstSubmodelInstructions: w.WorstSubmodelInstructions,
		Submodels:                 w.Submodels,
		Asserts:                   w.Asserts,
		ParseTime:                 time.Duration(w.ParseTimeNS),
		CheckTime:                 time.Duration(w.CheckTimeNS),
		TranslateTime:             time.Duration(w.TranslateTimeNS),
		OptimizeTime:              time.Duration(w.OptimizeTimeNS),
		SliceTime:                 time.Duration(w.SliceTimeNS),
		ExecTime:                  time.Duration(w.ExecTimeNS),
		Telemetry:                 w.Telemetry,
		Tests:                     w.Tests,
		Exhausted:                 w.Exhausted,
	}
	if w.SliceError != "" {
		r.SliceErr = errors.New(w.SliceError)
	}
	return nil
}

// ComparableJSON serializes the report with its wall-clock duration fields
// zeroed: the representation that must compare byte-equal between an
// incremental run (cached submodel verdicts merged with fresh executions)
// and a cold parallel run of the same program under the same options —
// violations, counterexamples, metrics, assertion table and all.
func (r *Report) ComparableJSON() ([]byte, error) {
	cp := *r
	cp.ParseTime, cp.CheckTime = 0, 0
	cp.TranslateTime, cp.OptimizeTime, cp.SliceTime, cp.ExecTime = 0, 0, 0, 0
	if cp.Telemetry != nil {
		// Stage wall times vary run to run, and which stages exist depends
		// on whether the run started from source text; the work counters
		// are deterministic and must match, so keep only those.
		cp.Telemetry = &ReportTelemetry{Counters: cp.Telemetry.Counters}
	}
	return json.Marshal(&cp)
}

// ViolationsJSON serializes only the canonical violation list — the part of
// a report that must compare byte-equal across sequential, parallel and
// cache-replayed runs of the same request (metrics legitimately differ:
// submodel runs execute extra assumption statements).
func (r *Report) ViolationsJSON() ([]byte, error) {
	vs := append([]*sym.Violation(nil), r.Violations...)
	CanonicalizeViolations(vs)
	return json.Marshal(vs)
}
