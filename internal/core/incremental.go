// Incremental verification: the diff-aware re-verification entry points.
// The engine mechanics — unit fingerprints, the AST diff, the submodel
// dependency graph, content keys and the verdict codec — live in
// internal/incr; this file wires them into the pipeline so an edit-verify
// loop re-executes only the submodels an edit can affect and replays every
// other submodel's memoized verdict, producing a Report byte-identical
// (ComparableJSON) to a cold parallel run of the edited program.
package core

import (
	"context"
	"time"

	"p4assert/internal/exec"
	"p4assert/internal/incr"
	"p4assert/internal/p4"
	"p4assert/internal/submodel"
	"p4assert/internal/telemetry"
)

// VerifyIncremental verifies next, reusing cached submodel verdicts from
// store where next's executable content is unchanged. prev, when non-nil,
// is the previously verified version of the program: its unit diff against
// next annotates the returned manifest with the changed-unit set and
// attributes each re-executed submodel to the edits it can reach. prev is
// advisory — correctness never depends on it, only the manifest's
// explanations do. A nil prev is the warm-up run of a watch session.
//
// The incremental engine always runs the submodel-split pipeline (the
// paper's parallelization strategy): the resulting Report matches a cold
// run with Options.Parallel > 0. CollectTests is unsupported (as in every
// parallel run) and is ignored. Both programs must already be checked.
func VerifyIncremental(ctx context.Context, prev, next *p4.Program, opts Options, store incr.Store) (*Report, *incr.Manifest, error) {
	return verifyIncremental(ctx, prev, next, opts, store, &Report{}, false, exec.Local{}, nil)
}

func verifyIncremental(ctx context.Context, prev, next *p4.Program, opts Options, store incr.Store, rep *Report, fromSource bool, ex exec.Executor, job *exec.JobSpec) (*Report, *incr.Manifest, error) {
	m, err := translateStage(ctx, next, opts, rep)
	if err != nil {
		return nil, nil, err
	}
	rep.Asserts = m.Asserts

	m = applyPasses(ctx, m, opts, rep)
	rep.Model = m

	symOpts := buildSymOpts(ctx, opts)
	symOpts.CollectTests = false // test generation is sequential-only

	plan := incr.NewPlan(m, next, symOpts)

	var delta *incr.Delta
	if prev != nil {
		delta = incr.Diff(
			incr.Units(prev, opts.Rules, opts.AutoValidityChecks),
			incr.Units(next, opts.Rules, opts.AutoValidityChecks),
		)
	}

	t0 := time.Now()
	ectx, execSp := telemetry.StartSpan(ctx, "execute")
	results, stats, err := plan.RunExec(ectx, store, opts.Parallel, delta.Touched(), ex, job)
	if err != nil {
		execSp.End()
		return nil, nil, err
	}
	res := submodel.Aggregate(plan.Submodels, results)
	rep.Violations = res.Agg.Violations
	rep.Metrics = res.Agg.Metrics
	rep.WorstSubmodelInstructions = res.WorstInstructions
	rep.Submodels = len(res.PerModel)
	rep.Exhausted = res.Agg.Exhausted
	rep.ViolationModels = res.ViolationModels
	submodel.AnnotateSpan(execSp, rep.Metrics)
	execSp.SetAttr("reused", int64(stats.Reused))
	execSp.End()
	rep.ExecTime = time.Since(t0)
	CanonicalizeViolations(rep.Violations)
	fillTelemetry(rep, opts, fromSource)

	manifest := &incr.Manifest{
		Delta:     delta,
		Submodels: len(plan.Submodels),
		Reused:    stats.Reused,
		Executed:  stats.Executed,
		Runs:      stats.Runs,
	}
	return rep, manifest, nil
}

// VerifyIncrementalSource is VerifyIncremental over source text: it parses
// and checks both versions (prevSource may be empty for a warm-up run).
// Only the next version's front end runs under the parse/typecheck spans
// and stage timings; the prev version is advisory diff input.
func VerifyIncrementalSource(ctx context.Context, filename, prevSource, nextSource string, opts Options, store incr.Store) (*Report, *incr.Manifest, error) {
	var prev *p4.Program
	if prevSource != "" {
		p, err := p4.Parse(filename, prevSource)
		if err != nil {
			return nil, nil, err
		}
		if err := p.Check(); err != nil {
			return nil, nil, err
		}
		prev = p
	}
	rep := &Report{}
	next, err := parseChecked(ctx, filename, nextSource, rep)
	if err != nil {
		return nil, nil, err
	}
	return verifyIncremental(ctx, prev, next, opts, store, rep, true, exec.Local{}, nil)
}

// VerifyIncrementalSourceExec is VerifyIncrementalSource with the
// re-executed submodels (store misses) routed through ex. Store hits still
// replay from this process's verdict tier; only the misses travel to the
// executor, carrying the next version's job spec so remote workers can
// rebuild the submodels from source. The report and manifest are
// byte-identical to a local incremental run.
func VerifyIncrementalSourceExec(ctx context.Context, filename, prevSource, nextSource string, opts Options, store incr.Store, ex exec.Executor) (*Report, *incr.Manifest, error) {
	var prev *p4.Program
	if prevSource != "" {
		p, err := p4.Parse(filename, prevSource)
		if err != nil {
			return nil, nil, err
		}
		if err := p.Check(); err != nil {
			return nil, nil, err
		}
		prev = p
	}
	rep := &Report{}
	next, err := parseChecked(ctx, filename, nextSource, rep)
	if err != nil {
		return nil, nil, err
	}
	return verifyIncremental(ctx, prev, next, opts, store, rep, true, ex, JobSpec(filename, nextSource, opts))
}
