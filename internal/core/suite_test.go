package core

import (
	"testing"

	"p4assert/internal/progs"
)

// TestBatchReplayMatchesInterpreterOnCorpus cross-validates the compiled
// batch interpreter against the reference tree-walking interpreter at
// corpus scale: every collected path test's expected outcome comes from
// interp.Run (materialize), and the batch engine must reproduce each one
// exactly — halt status, forward flag, egress port, assertion verdicts,
// and trace conformance.
func TestBatchReplayMatchesInterpreterOnCorpus(t *testing.T) {
	totalCases := 0
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rep := collectFor(t, p)
			cases, err := materialize(rep)
			if err != nil {
				t.Fatal(err)
			}
			if len(cases) == 0 {
				t.Skip("no path tests collected")
			}
			brep, err := ReplayBatch(rep.Model, cases)
			if err != nil {
				t.Fatal(err)
			}
			if brep.Cases != len(cases) {
				t.Fatalf("replayed %d of %d cases", brep.Cases, len(cases))
			}
			for _, mm := range brep.Mismatches {
				t.Errorf("batch/interp disagreement: %s", mm)
			}
			if brep.Instructions == 0 {
				t.Fatal("batch replay executed no instructions")
			}
			totalCases += len(cases)
		})
	}
	if totalCases == 0 {
		t.Fatal("corpus produced no test cases")
	}
}

// TestBatchReplayFlagsTamperedExpectation makes sure the oracle actually
// compares: corrupting an expected egress port must surface as a mismatch,
// not silently pass.
func TestBatchReplayFlagsTamperedExpectation(t *testing.T) {
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	rep := collectFor(t, p)
	cases, err := materialize(rep)
	if err != nil {
		t.Fatal(err)
	}
	tampered := -1
	for i := range cases {
		if cases[i].Forwarded {
			cases[i].EgressSpec ^= 0x155
			tampered = i
			break
		}
	}
	if tampered < 0 {
		t.Fatal("no forwarded case to tamper with")
	}
	brep, err := ReplayBatch(rep.Model, cases)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mm := range brep.Mismatches {
		if mm.Index == tampered {
			found = true
		}
	}
	if !found {
		t.Fatalf("tampered case %d not flagged; mismatches: %v", tampered, brep.Mismatches)
	}
}
