package core

import (
	"testing"

	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

// TestDifferentialReplay is the paper's §6 model-validation experiment:
// every counterexample the symbolic engine reports for every corpus
// program must reproduce concretely in the independent interpreter.
func TestDifferentialReplay(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			opts := Options{}
			if p.Rules != "" {
				rs, err := rules.Parse(p.Rules)
				if err != nil {
					t.Fatal(err)
				}
				opts.Rules = rs
			}
			rep, err := VerifySource(p.Name+".p4", p.Source, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ReplayAll(rep); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
		})
	}
}

// TestDifferentialReplayUnderO3: replays must also validate against the
// optimized model actually executed.
func TestDifferentialReplayUnderO3(t *testing.T) {
	for _, name := range []string{"dapper", "netpaxos", "circumvent", "mirror", "switchlite"} {
		p, err := progs.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{O3: true}
		if p.Rules != "" {
			rs, _ := rules.Parse(p.Rules)
			opts.Rules = rs
		}
		rep, err := VerifySource(p.Name+".p4", p.Source, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ReplayAll(rep); err != nil {
			t.Fatalf("%s (O3): %v", p.Name, err)
		}
	}
}
