package core

import "p4assert/internal/sym"

// ReportTelemetry is the observability section of a Report: the stage
// wall-time breakdown and the named work counters, in a stable external
// form. p4bench embeds it in BENCH json and the service's clients read it
// from report JSON, so names here are part of the wire format.
type ReportTelemetry struct {
	// Stages lists the pipeline stages that ran, in order, with wall
	// times. Stage presence depends on how verification started (parse
	// and typecheck only appear for source-text runs) and on the
	// technique matrix (optimize/slice only when enabled), so consumers
	// must key by name, not index.
	Stages []ReportStage `json:"stages,omitempty"`
	// Counters names the executor and solver work counters. All values
	// are deterministic functions of the verified program and options —
	// identical between cold parallel runs and incremental replays —
	// which lets ComparableJSON keep them while dropping wall times.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Solver names the solver acceleration counters (session reuse, memo
	// hits, portfolio winners, raw SAT search effort, solver wall time).
	// Unlike Counters these are NOT deterministic — they depend on cache
	// state and goroutine timing — so ComparableJSON drops them along
	// with the stage wall times.
	Solver map[string]int64 `json:"solver,omitempty"`
}

// ReportStage is one pipeline stage's wall time.
type ReportStage struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// fillTelemetry populates rep.Telemetry from the stage durations and
// metrics already recorded in rep. Called at the end of every cold and
// incremental pipeline run, after rep.Metrics is final.
func fillTelemetry(rep *Report, opts Options, fromSource bool) {
	t := &ReportTelemetry{}
	add := func(name string, d int64) {
		t.Stages = append(t.Stages, ReportStage{Name: name, DurationNS: d})
	}
	if fromSource {
		add("parse", rep.ParseTime.Nanoseconds())
		add("typecheck", rep.CheckTime.Nanoseconds())
	}
	add("translate", rep.TranslateTime.Nanoseconds())
	if opts.O3 || opts.Opt {
		add("optimize", rep.OptimizeTime.Nanoseconds())
	}
	if opts.Slice {
		add("slice", rep.SliceTime.Nanoseconds())
	}
	add("execute", rep.ExecTime.Nanoseconds())
	t.Counters = metricCounters(rep.Metrics)
	if opts.Parallel > 0 {
		t.Counters["submodels"] = int64(rep.Submodels)
	}
	t.Solver = accelCounters(rep.Metrics)
	rep.Telemetry = t
}

// accelCounters flattens the solver acceleration stats. These are the
// p4assert_solver_* telemetry family: observability for the acceleration
// subsystem, excluded from report comparability (see ReportTelemetry).
func accelCounters(m sym.Metrics) map[string]int64 {
	a := m.Solver.Accel
	return map[string]int64{
		"session_reuse_hits":     a.SessionReuseHits,
		"session_emitted":        a.SessionEmitted,
		"memo_hits":              a.MemoHits,
		"memo_shared_hits":       a.MemoSharedHits,
		"portfolio_session_wins": a.PortfolioSessionWins,
		"portfolio_fresh_wins":   a.PortfolioFreshWins,
		"sat_decisions":          a.Decisions,
		"sat_propagations":       a.Propagations,
		"sat_conflicts":          a.Conflicts,
		"sat_learned":            a.LearnedClauses,
		"solver_wall_ns":         a.WallNS,
	}
}

// metricCounters flattens executor metrics into the named counter map.
// Only counters that are deterministic for a given (program, options)
// pair belong here; cache-dependent figures (submodels reused vs
// executed) would break the cold-vs-incremental report equivalence the
// difftest corpus checks.
func metricCounters(m sym.Metrics) map[string]int64 {
	return map[string]int64{
		"paths":              m.Paths,
		"killed_infeasible":  m.KilledInfeasible,
		"bound_exceeded":     m.BoundExceeded,
		"instructions":       m.Instructions,
		"forks":              m.Forks,
		"assert_checks":      m.AssertChecks,
		"max_frontier":       m.MaxFrontier,
		"solver_queries":     m.Solver.Queries,
		"solver_quick_sat":   m.Solver.QuickSAT,
		"solver_quick_unsat": m.Solver.QuickUNSAT,
		"solver_full":        m.Solver.FullQueries,
		"bitblast_vars":      m.Solver.BitblastVars,
		"bitblast_clauses":   m.Solver.BitblastClauses,
	}
}
