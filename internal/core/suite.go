package core

import (
	"fmt"
	"sort"

	"p4assert/internal/interp"
	"p4assert/internal/model"
)

// BatchReplayReport summarizes replaying a set of generated test cases
// through the compiled batch interpreter (interp.Compile), the fast path
// meant for replaying large generated suites as a concrete oracle.
type BatchReplayReport struct {
	// Cases is the number of test cases replayed.
	Cases int
	// Mismatches lists cases whose batch outcome disagreed with the
	// expected outputs recorded in the suite.
	Mismatches []BatchMismatch
	// Instructions totals interpreted instructions across all cases.
	Instructions int64
}

// Ok reports whether every case replayed to its expected outcome.
func (r *BatchReplayReport) Ok() bool { return len(r.Mismatches) == 0 }

// BatchMismatch is one diverging test case.
type BatchMismatch struct {
	// Index is the case's position in the suite.
	Index int
	// Want and Got describe the expected and observed outcomes.
	Want, Got string
}

func (m BatchMismatch) String() string {
	return fmt.Sprintf("case %d: want %s, got %s", m.Index, m.Want, m.Got)
}

// ReplayBatch compiles the model once and replays every test case through
// the batch interpreter, checking each against its recorded expectation.
// The model must be the same post-pass model the cases were generated
// from (Report.Model).
func ReplayBatch(m *model.Program, cases []TestCase) (*BatchReplayReport, error) {
	c, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		return nil, err
	}
	// Input and trace interning mutate the compilation, so resolve every
	// case up front; execution after this is read-only on c.
	ins := make([][]uint64, len(cases))
	decs := make([][]interp.Decision, len(cases))
	for i, tc := range cases {
		ins[i] = c.LoadInputs(tc.Inputs)
		decs[i], err = c.LoadTrace(tc.Trace)
		if err != nil {
			return nil, fmt.Errorf("case %d: %w", i, err)
		}
	}
	rep := &BatchReplayReport{Cases: len(cases)}
	ex := c.NewExec()
	for i := range cases {
		res := ex.Run(ins[i], decs[i])
		rep.Instructions += res.Instructions
		if res.TraceErr != nil {
			rep.Mismatches = append(rep.Mismatches, BatchMismatch{
				Index: i,
				Want:  expectString(&cases[i]),
				Got:   "trace error: " + res.TraceErr.Error(),
			})
			continue
		}
		if res.AssumeViolated {
			rep.Mismatches = append(rep.Mismatches, BatchMismatch{
				Index: i,
				Want:  expectString(&cases[i]),
				Got:   "assume violated (infeasible input)",
			})
			continue
		}
		if got := outcomeString(res); got != expectString(&cases[i]) {
			rep.Mismatches = append(rep.Mismatches, BatchMismatch{
				Index: i,
				Want:  expectString(&cases[i]),
				Got:   got,
			})
		}
	}
	return rep, nil
}

func expectString(tc *TestCase) string {
	fwd := uint64(0)
	if tc.Forwarded {
		fwd = 1
	}
	fails := append([]int(nil), tc.FailedAsserts...)
	sort.Ints(fails)
	return fmt.Sprintf("halt=%t fwd=%d egress=0x%x fail=%v", tc.Halted, fwd, tc.EgressSpec, fails)
}

func outcomeString(res interp.BatchResult) string {
	fails := res.FailureIDs()
	sort.Ints(fails)
	fwd := res.Forward
	return fmt.Sprintf("halt=%t fwd=%d egress=0x%x fail=%v", res.Halted, fwd, res.Egress, fails)
}
