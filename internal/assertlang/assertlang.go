// Package assertlang implements the assertion language of the paper's
// Figure 4. Assertions are boolean expressions over program values, header
// fields and six primitive methods:
//
//	forward()          — packet is not dropped at end of execution
//	traverse_path()    — this program location is eventually traversed
//	constant(f)        — field f never changes from here to termination
//	if(b1, b2, [b3])   — conditional assertion
//	extract_header(h)  — header h has been / will be extracted
//	emit_header(h)     — packet is transmitted with header h
//
// forward, traverse_path, constant, extract_header and emit_header are
// location-unrestricted: they describe whole-execution behaviour and are
// evaluated when a path terminates. Everything else is evaluated with the
// values the referenced fields had at the assertion's location (paper §3.1).
package assertlang

import (
	"fmt"

	"p4assert/internal/p4"
)

// Expr is an assertion-language expression.
type Expr interface{ assertExpr() }

// Num is an integer literal.
type Num struct{ Value uint64 }

// FieldRef is a reference to a program value or header field by dotted path.
type FieldRef struct{ Path string }

// Not is logical negation.
type Not struct{ X Expr }

// BinOp enumerates assertion-language binary operators.
type BinOp uint8

// Binary operators: booleans, comparisons and integer arithmetic.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

var binNames = map[BinOp]string{
	OpOr: "||", OpAnd: "&&", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpMod: "%",
}

// String returns the operator spelling.
func (op BinOp) String() string { return binNames[op] }

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	X, Y Expr
}

// Forward is the forward() method.
type Forward struct{}

// TraversePath is the traverse_path() method.
type TraversePath struct{}

// Constant is the constant(f) method.
type Constant struct{ Field string }

// IfM is the if(b1, b2, [b3]) method; Else may be nil (vacuously true).
type IfM struct{ Cond, Then, Else Expr }

// ExtractHeader is the extract_header(h) method.
type ExtractHeader struct{ Header string }

// EmitHeader is the emit_header(h) method.
type EmitHeader struct{ Header string }

// Valid is valid(h): header h is currently valid. This is a
// location-restricted extension beyond the paper's Fig. 4 grammar, needed
// to express the paper's own §5.1 Switch.p4 checks ("testing with an
// assertion if the header is valid before setting its fields").
type Valid struct{ Header string }

func (*Num) assertExpr()           {}
func (*FieldRef) assertExpr()      {}
func (*Not) assertExpr()           {}
func (*Bin) assertExpr()           {}
func (*Forward) assertExpr()       {}
func (*TraversePath) assertExpr()  {}
func (*Constant) assertExpr()      {}
func (*IfM) assertExpr()           {}
func (*ExtractHeader) assertExpr() {}
func (*EmitHeader) assertExpr()    {}
func (*Valid) assertExpr()         {}

// HasUnrestricted reports whether e contains a location-unrestricted method
// (forward, traverse_path, constant, extract_header, emit_header). Such
// assertions are checked when the path terminates; purely restricted ones
// are checked in place.
func HasUnrestricted(e Expr) bool {
	switch x := e.(type) {
	case *Forward, *TraversePath, *Constant, *ExtractHeader, *EmitHeader:
		return true
	case *Not:
		return HasUnrestricted(x.X)
	case *Bin:
		return HasUnrestricted(x.X) || HasUnrestricted(x.Y)
	case *IfM:
		if HasUnrestricted(x.Cond) || HasUnrestricted(x.Then) {
			return true
		}
		return x.Else != nil && HasUnrestricted(x.Else)
	}
	return false
}

// Fields appends the dotted paths of all field references in e (including
// constant() arguments) to dst, deduplicated, preserving first-seen order.
func Fields(e Expr, dst []string) []string {
	add := func(p string) {
		for _, s := range dst {
			if s == p {
				return
			}
		}
		dst = append(dst, p)
	}
	switch x := e.(type) {
	case *FieldRef:
		add(x.Path)
	case *Constant:
		add(x.Field)
	case *Not:
		dst = Fields(x.X, dst)
	case *Bin:
		dst = Fields(x.X, dst)
		dst = Fields(x.Y, dst)
	case *IfM:
		dst = Fields(x.Cond, dst)
		dst = Fields(x.Then, dst)
		if x.Else != nil {
			dst = Fields(x.Else, dst)
		}
	}
	return dst
}

// String renders the expression in assertion-language syntax.
func String(e Expr) string {
	switch x := e.(type) {
	case *Num:
		return fmt.Sprintf("%d", x.Value)
	case *FieldRef:
		return x.Path
	case *Not:
		return "!" + String(x.X)
	case *Bin:
		return "(" + String(x.X) + " " + x.Op.String() + " " + String(x.Y) + ")"
	case *Forward:
		return "forward()"
	case *TraversePath:
		return "traverse_path()"
	case *Constant:
		return "constant(" + x.Field + ")"
	case *IfM:
		if x.Else == nil {
			return "if(" + String(x.Cond) + ", " + String(x.Then) + ")"
		}
		return "if(" + String(x.Cond) + ", " + String(x.Then) + ", " + String(x.Else) + ")"
	case *ExtractHeader:
		return "extract_header(" + x.Header + ")"
	case *EmitHeader:
		return "emit_header(" + x.Header + ")"
	case *Valid:
		return "valid(" + x.Header + ")"
	}
	return "?"
}

// Parse parses assertion-language source text. It reuses the P4 lexer, so
// numeric literal syntax matches P4.
func Parse(text string) (Expr, error) {
	toks, err := p4.Tokenize("assert", text)
	if err != nil {
		return nil, err
	}
	pr := &parser{toks: toks}
	e, err := pr.parseOr()
	if err != nil {
		return nil, err
	}
	if pr.cur().Kind != p4.TokEOF {
		return nil, fmt.Errorf("assertion %q: trailing input at %s", text, pr.cur().Pos)
	}
	return e, nil
}

type parser struct {
	toks []p4.Token
	pos  int
}

func (p *parser) cur() p4.Token { return p.toks[p.pos] }

func (p *parser) accept(k p4.TokenKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k p4.TokenKind) (p4.Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("assertion: expected %s at %s, found %q", k, t.Pos, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseOr() (Expr, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(p4.TokOrOr) {
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = &Bin{Op: OpOr, X: lhs, Y: rhs}
	}
	return lhs, nil
}

func (p *parser) parseAnd() (Expr, error) {
	lhs, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(p4.TokAndAnd) {
		rhs, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		lhs = &Bin{Op: OpAnd, X: lhs, Y: rhs}
	}
	return lhs, nil
}

var cmpOps = map[p4.TokenKind]BinOp{
	p4.TokEq: OpEq, p4.TokNe: OpNe, p4.TokLt: OpLt, p4.TokLe: OpLe,
	p4.TokGt: OpGt, p4.TokGe: OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	lhs, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		p.pos++
		rhs, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: op, X: lhs, Y: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseAdd() (Expr, error) {
	lhs, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case p4.TokPlus:
			op = OpAdd
		case p4.TokMinus:
			op = OpSub
		default:
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		lhs = &Bin{Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseMul() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case p4.TokStar:
			op = OpMul
		case p4.TokSlash:
			op = OpDiv
		case p4.TokPercent:
			op = OpMod
		default:
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = &Bin{Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(p4.TokNot) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case p4.TokNumber:
		p.pos++
		v, _, err := p4.ParseNumber(t.Text)
		if err != nil {
			return nil, err
		}
		return &Num{Value: v}, nil
	case p4.TokLParen:
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case p4.TokIdent:
		switch t.Text {
		case "true":
			p.pos++
			return &Num{Value: 1}, nil
		case "false":
			p.pos++
			return &Num{Value: 0}, nil
		case "forward", "traverse_path":
			p.pos++
			if _, err := p.expect(p4.TokLParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(p4.TokRParen); err != nil {
				return nil, err
			}
			if t.Text == "forward" {
				return &Forward{}, nil
			}
			return &TraversePath{}, nil
		case "constant", "extract_header", "emit_header", "valid":
			p.pos++
			if _, err := p.expect(p4.TokLParen); err != nil {
				return nil, err
			}
			path, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(p4.TokRParen); err != nil {
				return nil, err
			}
			switch t.Text {
			case "constant":
				return &Constant{Field: path}, nil
			case "extract_header":
				return &ExtractHeader{Header: path}, nil
			case "valid":
				return &Valid{Header: path}, nil
			default:
				return &EmitHeader{Header: path}, nil
			}
		case "if":
			p.pos++
			if _, err := p.expect(p4.TokLParen); err != nil {
				return nil, err
			}
			cond, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(p4.TokComma); err != nil {
				return nil, err
			}
			then, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			m := &IfM{Cond: cond, Then: then}
			if p.accept(p4.TokComma) {
				els, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				m.Else = els
			}
			if _, err := p.expect(p4.TokRParen); err != nil {
				return nil, err
			}
			return m, nil
		}
		// Plain field/value path.
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return &FieldRef{Path: path}, nil
	}
	return nil, fmt.Errorf("assertion: unexpected token %q at %s", t.Text, t.Pos)
}

func (p *parser) parsePath() (string, error) {
	id, err := p.expect(p4.TokIdent)
	if err != nil {
		return "", err
	}
	path := id.Text
	for p.accept(p4.TokDot) {
		part, err := p.expect(p4.TokIdent)
		if err != nil {
			return "", err
		}
		path += "." + part.Text
	}
	return path, nil
}
