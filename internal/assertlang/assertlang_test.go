package assertlang

import (
	"testing"
)

func TestParsePaperAssertions(t *testing.T) {
	// Every assertion that appears in the paper must parse.
	cases := []string{
		`if(traverse_path(), !forward())`,
		`if(forward(), headers.ip.ttl > 0)`,
		`if(ipv4.ttl == 0, !forward())`,
		`constant(id)`,
		`if(extract_header(id), emit_header(id))`,
		`if(forward(), rtp.ts < max_timestamp)`,
		`if(ingress_port == color_a && ipv4.dstAddr == color_b_host, !forward())`,
		`if(traverse_path(), tcp.ack == false)`,
		`if(tcp.ack == 1, traverse_path())`,
		`if(traverse_path(), paxos.msgtype == 1)`,
		`if(ipv4.dstAddr == blocked_addr, !forward())`,
		`!(cloned_outport == original_port && constant(cloned_outport))`,
		`if(ipv4.dstAddr == 0x0A000001, !forward())`,
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if e == nil {
			t.Fatalf("%q: nil expr", src)
		}
	}
}

func TestParseShapes(t *testing.T) {
	e, err := Parse(`if(forward(), ip.ttl > 0, ip.ttl == 0)`)
	if err != nil {
		t.Fatal(err)
	}
	ifm, ok := e.(*IfM)
	if !ok {
		t.Fatalf("want IfM, got %T", e)
	}
	if _, ok := ifm.Cond.(*Forward); !ok {
		t.Fatalf("cond should be Forward, got %T", ifm.Cond)
	}
	if ifm.Else == nil {
		t.Fatal("else branch missing")
	}

	e2, _ := Parse(`a.b + 2 * c >= 10`)
	cmp := e2.(*Bin)
	if cmp.Op != OpGe {
		t.Fatalf("top op = %v", cmp.Op)
	}
	add := cmp.X.(*Bin)
	if add.Op != OpAdd {
		t.Fatalf("lhs op = %v (precedence broken)", add.Op)
	}
	if add.Y.(*Bin).Op != OpMul {
		t.Fatal("mul should bind tighter than add")
	}
}

func TestHasUnrestricted(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`ip.ttl > 0`, false},
		{`if(ip.ttl == 0, ip.proto == 6)`, false},
		{`forward()`, true},
		{`!forward()`, true},
		{`if(traverse_path(), x == 1)`, true},
		{`constant(f) || x == 2`, true},
		{`if(x == 1, emit_header(h))`, true},
		{`1 == 1`, false},
	}
	for _, tc := range cases {
		e, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if got := HasUnrestricted(e); got != tc.want {
			t.Errorf("HasUnrestricted(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestFields(t *testing.T) {
	e, err := Parse(`if(ip.ttl == 0 && ip.ttl < meta.max, constant(ip.src))`)
	if err != nil {
		t.Fatal(err)
	}
	got := Fields(e, nil)
	want := []string{"ip.ttl", "meta.max", "ip.src"}
	if len(got) != len(want) {
		t.Fatalf("Fields = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Fields = %v, want %v", got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`if(`,
		`forward(`,
		`forward() &&`,
		`x ==`,
		`(a == 1`,
		`a == 1 extra`,
		`constant()`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`if(traverse_path(), !forward())`,
		`constant(ip.src)`,
		`((a.b + 1) * 2) >= c`,
	}
	for _, src := range srcs {
		e, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		s := String(e)
		e2, err := Parse(s)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", s, src, err)
		}
		if String(e2) != s {
			t.Fatalf("String not stable: %q vs %q", String(e2), s)
		}
	}
}

func TestBooleanLiterals(t *testing.T) {
	e, err := Parse(`tcp.ack == false`)
	if err != nil {
		t.Fatal(err)
	}
	if e.(*Bin).Y.(*Num).Value != 0 {
		t.Fatal("false should parse as 0")
	}
}
