package service

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/progs"
	"p4assert/internal/vcache"
)

// waitTerminal polls the manager until the job finishes.
func waitTerminal(t *testing.T, m *Manager, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func corpusRequest(t *testing.T, name string) JobRequest {
	t.Helper()
	p, err := progs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return JobRequest{Filename: name + ".p4", Source: p.Source, Rules: p.Rules}
}

// TestJobLifecycleMatchesInProcess submits a corpus program and checks
// the served report equals an in-process core.Verify run: same verdict,
// byte-identical canonical violations.
func TestJobLifecycleMatchesInProcess(t *testing.T) {
	m := New(Config{Workers: 2})
	defer m.Shutdown(context.Background())

	req := corpusRequest(t, "switchlite")
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePending {
		t.Fatalf("fresh job state = %s, want pending", st.State)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job %s: state %s (%s)", st.ID, st.State, st.Error)
	}
	data, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var served core.Report
	if err := served.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}

	opts, err := req.Options.CoreOptions(req.Rules)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.VerifySource(req.Filename, req.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !core.SameVerdictSet(local, &served) {
		t.Fatalf("verdicts differ: local %s, served %s", local.VerdictDigest(), served.VerdictDigest())
	}
	want, _ := local.ViolationsJSON()
	got, _ := served.ViolationsJSON()
	if !bytes.Equal(want, got) {
		t.Fatalf("violations differ:\nlocal:  %s\nserved: %s", want, got)
	}
	if st.Verdict != "violations" || st.Violations != len(served.Violations) {
		t.Fatalf("status summary %q/%d does not match report (%d violations)",
			st.Verdict, st.Violations, len(served.Violations))
	}
}

// TestCacheHitOnResubmission checks the acceptance criterion: an
// identical resubmission is served from the cache (hit counter up, no new
// per-technique latency observation), while changing options or rules
// misses.
func TestCacheHitOnResubmission(t *testing.T) {
	cache, err := vcache.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 2, Cache: cache})
	defer m.Shutdown(context.Background())

	req := corpusRequest(t, "vss")
	first, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	first = waitTerminal(t, m, first.ID)
	if first.State != StateDone || first.CacheHit {
		t.Fatalf("first run: state %s cacheHit %v", first.State, first.CacheHit)
	}
	firstReport, err := m.Report(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	stats1 := m.Stats()
	if stats1.CacheHits != 0 || stats1.Cache.Misses != 1 {
		t.Fatalf("after first run: %+v", stats1)
	}
	execObs := stats1.Techniques["original"].Count

	second, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	second = waitTerminal(t, m, second.ID)
	if second.State != StateDone || !second.CacheHit {
		t.Fatalf("resubmission: state %s cacheHit %v (%s)", second.State, second.CacheHit, second.Error)
	}
	secondReport, err := m.Report(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstReport, secondReport) {
		t.Fatal("cached report is not byte-identical to the live one")
	}
	stats2 := m.Stats()
	if stats2.CacheHits != 1 || stats2.Cache.Hits != 1 {
		t.Fatalf("hit counters after resubmission: %+v", stats2)
	}
	if got := stats2.Techniques["original"].Count; got != execObs {
		t.Fatalf("cache hit produced a new executor latency observation (%d -> %d)", execObs, got)
	}

	// A changed technique matrix must miss ...
	reqO3 := req
	reqO3.Options.O3 = true
	third, err := m.Submit(reqO3)
	if err != nil {
		t.Fatal(err)
	}
	if third = waitTerminal(t, m, third.ID); third.CacheHit {
		t.Fatal("changed options were served from cache")
	}
	// ... and so must a changed rule set.
	reqRules := req
	reqRules.Rules = "fwd set_out 0x1 => 2\n"
	fourth, err := m.Submit(reqRules)
	if err != nil {
		t.Fatal(err)
	}
	if fourth = waitTerminal(t, m, fourth.ID); fourth.CacheHit {
		t.Fatal("changed rules were served from cache")
	}
}

// TestSubmitValidation rejects malformed requests without creating jobs.
func TestSubmitValidation(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	if _, err := m.Submit(JobRequest{}); err == nil {
		t.Error("empty source accepted")
	}
	if _, err := m.Submit(JobRequest{Source: "x", Options: Techniques{Timeout: "bogus"}}); err == nil {
		t.Error("bad timeout accepted")
	}
	if _, err := m.Submit(JobRequest{Source: "x", Rules: "one-token-only"}); err == nil {
		t.Error("bad rules accepted")
	}
	if s := m.Stats(); s.Submitted != 0 {
		t.Errorf("validation failures counted as submissions: %+v", s)
	}
}

// TestFrontEndFailure marks a job failed when the program does not parse.
func TestFrontEndFailure(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	st, err := m.Submit(JobRequest{Filename: "bad.p4", Source: "not a p4 program"})
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("state %s, error %q", st.State, st.Error)
	}
	if _, err := m.Report(st.ID); err == nil {
		t.Error("report served for a failed job")
	}
}

// slowSource is a fuzzgen-free path-explosion program: 16 independent
// symbolic branches ≈ 65k paths, slow enough to observe cancellation.
func slowSource() string {
	var b strings.Builder
	b.WriteString("header h_t {")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&b, " bit<8> f%d;", i)
	}
	b.WriteString(" }\nstruct headers_t { h_t h; }\nstruct metadata_t { bit<8> m; }\n")
	b.WriteString(`parser P(packet_in pkt, out headers_t hdr, inout metadata_t meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout headers_t hdr, inout metadata_t meta,
          inout standard_metadata_t standard_metadata) {
    apply {
`)
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&b, "        if (hdr.h.f%d > 7) { meta.m = meta.m + 1; }\n", i)
	}
	b.WriteString(`        @assert("meta.m != 255");
    }
}
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.h); } }
V1Switch(P, I, D) main;
`)
	return b.String()
}

// TestCancelRunningJob cancels mid-execution and expects the cancelled
// state, promptly.
func TestCancelRunningJob(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	st, err := m.Submit(JobRequest{Filename: "slow.p4", Source: slowSource()})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running, then cancel.
	for {
		cur, err := m.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateRunning {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished (%s) before it could be cancelled; make slowSource slower", cur.State)
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
}

// TestCancelPendingJob cancels a job stuck behind a long one; it must
// never run.
func TestCancelPendingJob(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	blocker, err := m.Submit(JobRequest{Filename: "slow.p4", Source: slowSource()})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(corpusRequest(t, "vss"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	st, err := m.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("pending job state %s, want cancelled", st.State)
	}
	if st.StartedAt != nil {
		t.Error("cancelled pending job has a start time")
	}
	m.Cancel(blocker.ID)
}

// TestJobTimeout fails a job that exceeds the per-job wall-time cap.
func TestJobTimeout(t *testing.T) {
	m := New(Config{Workers: 1, JobTimeout: 50 * time.Millisecond})
	defer m.Shutdown(context.Background())
	st, err := m.Submit(JobRequest{Filename: "slow.p4", Source: slowSource()})
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "timeout") {
		t.Fatalf("state %s error %q, want failed with timeout", st.State, st.Error)
	}
}

// TestQueueFull rejects submissions beyond the queue bound.
func TestQueueFull(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 2})
	defer m.Shutdown(context.Background())
	// One long job occupies the worker ...
	blocker, err := m.Submit(JobRequest{Filename: "slow.p4", Source: slowSource()})
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err := m.Get(blocker.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// ... and two more fill the queue.
	ids := []string{blocker.ID}
	for i := 0; i < 2; i++ {
		st, err := m.Submit(JobRequest{Filename: "slow.p4", Source: slowSource()})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	if _, err := m.Submit(corpusRequest(t, "vss")); err != ErrQueueFull {
		t.Fatalf("4th submit error = %v, want ErrQueueFull", err)
	}
	for _, id := range ids {
		m.Cancel(id)
	}
}

// TestGracefulDrain checks Shutdown runs queued jobs to completion and
// that later submissions are refused.
func TestGracefulDrain(t *testing.T) {
	cache, _ := vcache.New(16, "")
	m := New(Config{Workers: 1, Cache: cache})
	var ids []string
	for _, name := range []string{"vss", "ts_switching"} {
		st, err := m.Submit(corpusRequest(t, name))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s not drained: %s (%s)", id, st.State, st.Error)
		}
	}
	if _, err := m.Submit(corpusRequest(t, "vss")); err != ErrShuttingDown {
		t.Fatalf("post-shutdown submit error = %v, want ErrShuttingDown", err)
	}
	// Idempotent.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestForcedDrain checks an expired shutdown context cancels what is
// still alive instead of hanging.
func TestForcedDrain(t *testing.T) {
	m := New(Config{Workers: 1})
	var ids []string
	for i := 0; i < 2; i++ {
		st, err := m.Submit(JobRequest{Filename: "slow.p4", Source: slowSource()})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	for _, id := range ids {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCancelled {
			t.Fatalf("job %s state %s, want cancelled", id, st.State)
		}
	}
}

// TestConcurrentSubmissionStress is the -race hot-spot test: many
// goroutines submit, poll, cancel and read stats against a small worker
// pool with a shared cache.
func TestConcurrentSubmissionStress(t *testing.T) {
	cache, err := vcache.New(32, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 4, QueueDepth: 512, Cache: cache})
	defer m.Shutdown(context.Background())

	names := progs.Names()
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				name := names[(g*12+i)%len(names)]
				st, err := m.Submit(corpusRequest(t, name))
				if err == ErrQueueFull {
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("submit %s: %w", name, err)
					return
				}
				if i%5 == g%5 {
					m.Cancel(st.ID)
				}
				m.Stats()
				for {
					cur, err := m.Get(st.ID)
					if err != nil {
						errs <- err
						return
					}
					if cur.State.Terminal() {
						if cur.State == StateFailed {
							errs <- fmt.Errorf("%s failed: %s", name, cur.Error)
						}
						break
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := m.Stats()
	if s.Submitted == 0 || s.Done == 0 {
		t.Fatalf("stress ran nothing: %+v", s)
	}
	if s.Cache.Hits == 0 {
		t.Error("stress produced no cache hits despite repeat submissions")
	}
	t.Logf("stress: %d submitted, %d done, %d cancelled, %d cache hits",
		s.Submitted, s.Done, s.Cancelled, s.CacheHits)
}
