package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/equiv"
	"p4assert/internal/telemetry"
)

// Client talks to a p4served daemon. The zero value is usable: polls
// every 100ms, uses http.DefaultClient, and retries transient failures
// (connection errors, HTTP 429/5xx) up to 3 times with jittered
// exponential backoff — which lets p4verify -remote ride out a daemon
// restart or a load-shedding spike without a flag.
type Client struct {
	// Base is the daemon address, e.g. "http://127.0.0.1:9464".
	Base         string
	HTTP         *http.Client
	PollInterval time.Duration
	// MaxRetries bounds retry attempts after the first try: 0 means the
	// default (3), negative disables retrying entirely.
	MaxRetries int
	// RetryBase is the first backoff delay (default 100ms); it doubles
	// per attempt with jitter, capped at 2s.
	RetryBase time.Duration
}

func (c *Client) http_() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// HTTPError is a non-2xx API response: the status code plus the
// server's error message.
type HTTPError struct {
	Status int
	Msg    string
}

func (e *HTTPError) Error() string { return e.Msg }

// apiError decodes a non-2xx response into an *HTTPError.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e errorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &HTTPError{resp.StatusCode, fmt.Sprintf("server: %s (HTTP %d)", e.Error, resp.StatusCode)}
	}
	return &HTTPError{resp.StatusCode, fmt.Sprintf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))}
}

// retryableStatus reports whether a response status is worth retrying:
// load shedding (429) and server-side transient failures (5xx). Client
// errors (4xx) are deterministic and never retried.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// doReq performs a request built by build (rebuilt per attempt — request
// bodies are single-use), retrying transport errors and retryable
// statuses with jittered exponential backoff. It returns the response
// when the status matches want; any other status is decoded into an
// error, and the caller owns the body only on success. Context
// cancellation is honored between attempts and during backoff.
func (c *Client) doReq(ctx context.Context, want int, build func() (*http.Request, error)) (*http.Response, error) {
	retries := c.MaxRetries
	if retries == 0 {
		retries = 3
	} else if retries < 0 {
		retries = 0
	}
	base := c.RetryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.http_().Do(req)
		if err == nil {
			if resp.StatusCode == want {
				return resp, nil
			}
			apiErr := apiError(resp)
			resp.Body.Close()
			if !retryableStatus(resp.StatusCode) || attempt >= retries {
				return nil, apiErr
			}
			err = apiErr
		} else if ctx.Err() != nil || attempt >= retries {
			return nil, err
		}

		// Jittered exponential backoff: base·2^attempt, capped at 2s, with
		// the upper half randomized so a fleet of clients retrying into a
		// restarting daemon does not arrive in lockstep.
		d := base << attempt
		if max := 2 * time.Second; d > max {
			d = max
		}
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), err)
		case <-time.After(d):
		}
	}
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.doReq(ctx, http.StatusOK, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues a verification job. A 429 (queue full or bulk
// shedding) is retried with backoff before surfacing.
func (c *Client) Submit(ctx context.Context, jr JobRequest) (JobStatus, error) {
	var st JobStatus
	body, err := json.Marshal(jr)
	if err != nil {
		return st, err
	}
	resp, err := c.doReq(ctx, http.StatusAccepted, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// RawReport fetches a done job's report as the server's exact serialized
// bytes (a core.Report for verify jobs, an equiv.Report for diff jobs).
func (c *Client) RawReport(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.doReq(ctx, http.StatusOK, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/report"), nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Report fetches a done verify job's report, both parsed and as the
// server's exact serialized bytes.
func (c *Client) Report(ctx context.Context, id string) (*core.Report, []byte, error) {
	data, err := c.RawReport(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	var rep core.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, nil, fmt.Errorf("malformed report: %w", err)
	}
	return &rep, data, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	resp, err := c.doReq(ctx, http.StatusOK, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/jobs/"+id), nil)
	})
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var s StatsResponse
	err := c.getJSON(ctx, "/v1/stats", &s)
	return s, err
}

// stopFollow wraps an error returned by a stream callback, so Follow
// can tell "the caller wants out" from "the connection died".
type stopFollow struct{ err error }

func (e stopFollow) Error() string { return e.err.Error() }

// Events opens one SSE connection to the job's progress feed and calls
// fn for every received event, resuming after afterSeq (0 = full
// history). It returns nil when the server ends the stream (the feed
// closed), fn's error if fn fails, and the transport or HTTP error
// otherwise. Most callers want Follow, which adds reconnection.
func (c *Client) Events(ctx context.Context, id string, afterSeq int64, fn func(telemetry.Event) error) error {
	resp, err := c.doReq(ctx, http.StatusOK, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/events"), nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Accept", "text/event-stream")
		if afterSeq > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatInt(afterSeq, 10))
		}
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Frame boundary.
			if len(data) == 0 {
				continue
			}
			var ev telemetry.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("malformed event: %w", err)
			}
			data = nil
			if err := fn(ev); err != nil {
				return stopFollow{err}
			}
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		default:
			// id:/event: lines duplicate the JSON envelope; ":" lines
			// are heartbeats. Both are ignored.
		}
	}
	return sc.Err()
}

// Follow streams the job's progress feed until the terminal lifecycle
// marker arrives, reconnecting through disconnects and daemon restarts
// with jittered backoff and resuming from the last delivered sequence
// number (so a restarted daemon replays only what was missed). fn sees
// every event exactly once per delivered sequence; a fn error stops the
// stream and is returned.
func (c *Client) Follow(ctx context.Context, id string, afterSeq int64, fn func(telemetry.Event) error) error {
	last := afterSeq
	terminal := false
	wrapped := func(ev telemetry.Event) error {
		if ev.Seq > last {
			last = ev.Seq
		}
		if err := fn(ev); err != nil {
			return err
		}
		if TerminalJobEvent(ev) {
			terminal = true
			return errStreamDone
		}
		return nil
	}
	base := c.RetryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		err := c.Events(ctx, id, last, wrapped)
		if terminal {
			return nil
		}
		var stop stopFollow
		if errors.As(err, &stop) {
			return stop.err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// Deterministic client errors (404: job unknown or evicted) will
		// not improve with retrying.
		var he *HTTPError
		if errors.As(err, &he) && he.Status < 500 && he.Status != http.StatusTooManyRequests {
			return err
		}
		// The stream ended without the terminal marker: a mid-job
		// disconnect, a daemon restart, or an unreachable server. A
		// terminal status means the feed is simply gone (e.g. the job
		// was evicted) — report what we know instead of spinning.
		if st, serr := c.Status(ctx, id); serr == nil && st.State.Terminal() && err == nil {
			return nil
		}
		d := base << min(attempt, 4)
		if max := 2 * time.Second; d > max {
			d = max
		}
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
}

// errStreamDone stops Events after the terminal marker; Follow never
// surfaces it.
var errStreamDone = errors.New("service: stream complete")

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Verify submits a job, waits for it, and fetches the report: the
// round-trip behind p4verify -remote. A failed or cancelled job returns
// an error carrying the server's message.
func (c *Client) Verify(ctx context.Context, jr JobRequest) (*core.Report, JobStatus, error) {
	st, err := c.Submit(ctx, jr)
	if err != nil {
		return nil, st, err
	}
	st, err = c.Wait(ctx, st.ID)
	if err != nil {
		return nil, st, err
	}
	if st.State != StateDone {
		return nil, st, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	rep, _, err := c.Report(ctx, st.ID)
	return rep, st, err
}

// Diff submits a version-equivalence job (jr.Mode is forced to ModeDiff),
// waits for it, and fetches the equiv.Report: the round-trip behind
// p4verify -diff -remote.
func (c *Client) Diff(ctx context.Context, jr JobRequest) (*equiv.Report, JobStatus, error) {
	jr.Mode = ModeDiff
	st, err := c.Submit(ctx, jr)
	if err != nil {
		return nil, st, err
	}
	st, err = c.Wait(ctx, st.ID)
	if err != nil {
		return nil, st, err
	}
	if st.State != StateDone {
		return nil, st, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	data, err := c.RawReport(ctx, st.ID)
	if err != nil {
		return nil, st, err
	}
	var rep equiv.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, st, fmt.Errorf("malformed report: %w", err)
	}
	return &rep, st, nil
}
