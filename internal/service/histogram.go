package service

import "p4assert/internal/telemetry"

// The exponential-bucket latency histogram began life here and was
// promoted to internal/telemetry when the observability layer grew a
// registry and Prometheus exposition around it. These aliases keep the
// service API (StatsResponse.Techniques and its wire types) source- and
// wire-compatible.
type (
	// Histogram is an exponential-bucket latency histogram
	// (telemetry.Histogram). The zero value is ready to use; it is safe
	// for concurrent observation.
	Histogram = telemetry.Histogram
	// HistogramSnapshot is the wire form of a histogram.
	HistogramSnapshot = telemetry.HistogramSnapshot
	// HistogramBucket is one cumulative bucket; LeMS is its inclusive
	// upper bound in milliseconds, -1 for the overflow (+Inf) bucket.
	HistogramBucket = telemetry.HistogramBucket
)
