package service

// Live job-progress streaming. Every job owns a telemetry.Bus — its
// event feed — created at submission and closed when the job reaches a
// terminal state. The job's trace publishes span transitions onto it
// while the pipeline runs; the service adds lifecycle markers (KindJob)
// so a consumer can follow a job from pending to its verdict. With a
// durable store, a per-job journal consumer drains the feed into the
// WAL ("events" records), so a client reconnecting after a daemon
// restart replays the history it missed — then goes live if the job was
// resubmitted. GET /v1/jobs/{id}/events serves the feed as SSE with
// Last-Event-ID resumption.
//
// Events are observability-only: they never enter reports, cache
// entries or any comparable surface. A job's report bytes are identical
// with zero or many stream consumers attached.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"p4assert/internal/telemetry"
)

// streamHeartbeat is the SSE keep-alive interval: a comment line is
// written whenever no event arrives for this long, so proxies and
// clients can distinguish an idle stream from a dead one.
const streamHeartbeat = 15 * time.Second

// TerminalJobEvent reports whether ev is the lifecycle marker of a
// terminal job state — the semantic end of a job's event feed.
func TerminalJobEvent(ev telemetry.Event) bool {
	return ev.Kind == telemetry.KindJob && JobState(ev.Name).Terminal()
}

// Feed returns the job's event bus, or nil if the job is unknown or its
// feed was evicted with the job.
func (m *Manager) Feed(id string) *telemetry.Bus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.feeds[id]
}

// openFeedLocked creates the job's event bus. Callers hold m.mu (or run
// single-threaded in recovery) and have assigned j.id.
func (m *Manager) openFeedLocked(j *job) *telemetry.Bus {
	bus := telemetry.NewBus(0)
	bus.SetRequestID(j.req.RequestID)
	m.feeds[j.id] = bus
	return bus
}

// lifecycleEvent renders a KindJob marker for the job's current state.
// The terminal markers carry the summary a follower needs to stop:
// verdict and violation count for done jobs, the error for failures.
func lifecycleEvent(j *job) telemetry.Event {
	ev := telemetry.Event{Kind: telemetry.KindJob, Name: string(j.state)}
	switch j.state {
	case StateDone:
		ev.Str = j.verdict
		ev.Val = int64(j.violations)
	case StateFailed, StateCancelled:
		ev.Str = j.err
	}
	return ev
}

// closeFeed publishes the job's terminal marker and ends the stream.
// Subscribers drain what they have buffered and then see EOF; the feed
// stays subscribable (history backfill) until the job is evicted.
// Callers must not hold m.mu.
func (m *Manager) closeFeed(j *job, bus *telemetry.Bus) {
	if bus == nil {
		return
	}
	bus.Publish(lifecycleEvent(j))
	bus.Close()
	published, dropped := bus.Stats()
	m.reg.Counter("p4served_feed_events_total",
		"Progress events published on job feeds (counted at feed close).").Add(published)
	if dropped > 0 {
		m.reg.Counter("p4served_feed_events_dropped_total",
			"Progress events lost from slow subscriber buffers (counted at feed close).").Add(dropped)
	}
}

// startJournal drains the feed into the durable store as "events"
// records, so a client can replay a job's history across a daemon
// restart. afterSeq skips events already journaled (recovery preloads
// them into the bus). The consumer exits when the feed closes; Shutdown
// waits for the final batches to land before the store is closed.
func (m *Manager) startJournal(id string, bus *telemetry.Bus, afterSeq int64) {
	if m.cfg.Store == nil {
		return
	}
	m.journalWG.Add(1)
	go func() {
		defer m.journalWG.Done()
		sub := bus.Subscribe(afterSeq, 0)
		defer sub.Cancel()
		for {
			evs, err := sub.NextBatch(context.Background())
			if err != nil {
				return
			}
			raw := make([]json.RawMessage, 0, len(evs))
			for _, ev := range evs {
				if ev.Seq == 0 {
					// Synthesized gap markers are consumer-local, not
					// part of the canonical stream.
					continue
				}
				if data, err := json.Marshal(ev); err == nil {
					raw = append(raw, data)
				}
			}
			if len(raw) == 0 {
				continue
			}
			if err := m.cfg.Store.AppendEvents(id, raw); err != nil {
				m.reg.Counter("p4served_store_errors_total",
					"Durable-store writes that failed (service continues in memory).").Inc()
			}
		}
	}()
}

// journaledEvents decodes a job's journaled event records. Records that
// fail to decode are skipped (the journal is advisory history, not a
// source of truth).
func (m *Manager) journaledEvents(id string) []telemetry.Event {
	if m.cfg.Store == nil {
		return nil
	}
	raws := m.cfg.Store.Events(id)
	evs := make([]telemetry.Event, 0, len(raws))
	for _, raw := range raws {
		var ev telemetry.Event
		if json.Unmarshal(raw, &ev) == nil {
			evs = append(evs, ev)
		}
	}
	return evs
}

// handleEvents serves GET /v1/jobs/{id}/events: the job's feed as
// Server-Sent Events. Each frame is
//
//	id: <seq>
//	event: <kind>
//	data: <telemetry.Event JSON>
//
// A Last-Event-ID header (or ?after= query parameter) resumes after a
// previously delivered sequence number: journaled/buffered history past
// it is replayed first, then the stream goes live. Gap markers
// (event: dropped) carry no id line — they are synthesized, not part of
// the canonical sequence. The stream ends when the job's feed closes,
// after the terminal lifecycle marker; a comment ping is written every
// streamHeartbeat while idle.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m.mu.Lock()
	_, known := m.jobs[id]
	bus := m.feeds[id]
	m.mu.Unlock()
	if !known || bus == nil {
		writeError(w, http.StatusNotFound, ErrUnknownJob.Error()+": "+id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	after, err := resumeSeq(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	m.reg.Counter("p4served_event_streams_total", "SSE event-stream connections accepted.").Inc()
	sub := bus.Subscribe(after, 0)
	defer sub.Cancel()
	for {
		bctx, cancel := context.WithTimeout(r.Context(), streamHeartbeat)
		evs, err := sub.NextBatch(bctx)
		cancel()
		switch {
		case err == nil:
			for _, ev := range evs {
				if writeSSE(w, ev) != nil {
					return
				}
			}
			flusher.Flush()
			m.reg.Counter("p4served_events_streamed_total",
				"Progress events delivered over SSE streams.").Add(int64(len(evs)))
		case errors.Is(err, telemetry.ErrFeedClosed):
			return
		case r.Context().Err() != nil:
			return
		default:
			// Heartbeat timeout with the client still connected.
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// resumeSeq extracts the resumption point of an SSE request: the
// standard Last-Event-ID header, or ?after= for clients that cannot set
// headers. Zero means the full history.
func resumeSeq(r *http.Request) (int64, error) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return 0, nil
	}
	seq, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || seq < 0 {
		return 0, fmt.Errorf("invalid resume sequence %q", raw)
	}
	return seq, nil
}

// writeSSE renders one event as an SSE frame. Synthesized gap markers
// (Seq 0) get no id line, so they never become a client's resumption
// point.
func writeSSE(w http.ResponseWriter, ev telemetry.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if ev.Seq > 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", ev.Seq); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
	return err
}
