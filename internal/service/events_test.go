package service

// Live job-progress streaming tests: feed lifecycle and ordering for
// local, parallel, incremental and clustered runs, the SSE endpoint
// with Last-Event-ID resumption, and journal replay across a restart.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"p4assert/internal/cluster"
	"p4assert/internal/core"
	"p4assert/internal/telemetry"
	"p4assert/internal/vcache"
)

// drainFeed collects a job's whole feed: history plus live events until
// the feed closes (the job must reach a terminal state for that).
func drainFeed(t *testing.T, m *Manager, id string) []telemetry.Event {
	t.Helper()
	bus := m.Feed(id)
	if bus == nil {
		t.Fatalf("job %s has no feed", id)
	}
	sub := bus.Subscribe(0, 0)
	defer sub.Cancel()
	var out []telemetry.Event
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		evs, err := sub.NextBatch(ctx)
		cancel()
		if err != nil {
			if err == telemetry.ErrFeedClosed {
				return out
			}
			t.Fatalf("feed did not close: %v (got %d events)", err, len(out))
		}
		out = append(out, evs...)
	}
}

// checkOrdered asserts strictly increasing sequence numbers (gap
// markers carry Seq 0 and are exempt).
func checkOrdered(t *testing.T, evs []telemetry.Event) {
	t.Helper()
	last := int64(0)
	for _, ev := range evs {
		if ev.Seq == 0 {
			if ev.Kind != telemetry.KindDropped {
				t.Fatalf("non-marker event without sequence: %+v", ev)
			}
			continue
		}
		if ev.Seq <= last {
			t.Fatalf("sequence not increasing: %d after %d (%+v)", ev.Seq, last, ev)
		}
		last = ev.Seq
	}
}

// comparable renders serialized report bytes on the report's comparable
// surface (wall-clock and observability fields excluded).
func comparable(t *testing.T, data []byte) []byte {
	t.Helper()
	var rep core.Report
	if err := rep.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	out, err := rep.ComparableJSON()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// hasEvent reports whether the feed contains an event of the given kind
// (and name, unless empty).
func hasEvent(evs []telemetry.Event, kind, name string) bool {
	for _, ev := range evs {
		if ev.Kind == kind && (name == "" || ev.Name == name) {
			return true
		}
	}
	return false
}

// TestJobFeedLifecycle: a sequential job's feed delivers the lifecycle
// markers and the pipeline's span events in order, with the request ID
// stamped on every envelope and tagged on the root span.
func TestJobFeedLifecycle(t *testing.T) {
	m := New(Config{Workers: 2})
	defer m.Shutdown(context.Background())

	req := corpusRequest(t, "vss")
	req.RequestID = "req-feed-1"
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	evs := drainFeed(t, m, st.ID)
	checkOrdered(t, evs)

	if evs[0].Kind != telemetry.KindJob || evs[0].Name != string(StatePending) {
		t.Fatalf("first event %+v, want job/pending", evs[0])
	}
	lastEv := evs[len(evs)-1]
	if !TerminalJobEvent(lastEv) || lastEv.Name != string(StateDone) {
		t.Fatalf("last event %+v, want terminal job/done", lastEv)
	}
	if lastEv.Str == "" {
		t.Fatal("terminal marker carries no verdict")
	}
	for _, name := range []string{"running"} {
		if !hasEvent(evs, telemetry.KindJob, name) {
			t.Fatalf("no job/%s marker in %d events", name, len(evs))
		}
	}
	for _, name := range []string{"job", "parse", "typecheck", "translate", "execute"} {
		if !hasEvent(evs, telemetry.KindSpanStart, name) || !hasEvent(evs, telemetry.KindSpanEnd, name) {
			t.Fatalf("stage %q missing from feed", name)
		}
	}
	var tagged bool
	for _, ev := range evs {
		if ev.RequestID != "req-feed-1" {
			t.Fatalf("event missing request id: %+v", ev)
		}
		if ev.Kind == telemetry.KindTag && ev.Key == "request_id" && ev.Str == "req-feed-1" {
			tagged = true
		}
	}
	if !tagged {
		t.Fatal("root span was not tagged with the request id")
	}

	// The feed replays from history after the job is done (a late
	// subscriber still sees the full stream).
	again := drainFeed(t, m, st.ID)
	if len(again) != len(evs) {
		t.Fatalf("replay has %d events, first drain %d", len(again), len(evs))
	}
}

// TestFeedCoverageParallelIncremental: parallel jobs publish per-lane
// submodel spans; an incremental resubmission (base_job) publishes
// cached-replay events for reused submodels.
func TestFeedCoverageParallelIncremental(t *testing.T) {
	sub, err := vcache.NewSubmodelTier(256, "")
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 2, SubCache: sub})
	defer m.Shutdown(context.Background())

	req := corpusRequest(t, "vss")
	req.Options.Parallel = 4
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("parallel job: %s (%s)", st.State, st.Error)
	}
	evs := drainFeed(t, m, st.ID)
	checkOrdered(t, evs)
	var lanes int
	for _, ev := range evs {
		if ev.Kind == telemetry.KindSpanStart && strings.HasPrefix(ev.Name, "submodel[") {
			lanes++
		}
	}
	if lanes == 0 {
		t.Fatal("parallel run published no submodel lane spans")
	}

	// Unchanged resubmission against the base: every submodel replays
	// from the cache, visible as cached markers on the feed.
	req2 := req
	req2.BaseJob = st.ID
	st2, err := m.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	st2 = waitTerminal(t, m, st2.ID)
	if st2.State != StateDone || st2.SubmodelsReused == 0 {
		t.Fatalf("incremental job: %s, reused %d", st2.State, st2.SubmodelsReused)
	}
	evs2 := drainFeed(t, m, st2.ID)
	checkOrdered(t, evs2)
	var cached int
	for _, ev := range evs2 {
		if ev.Kind == telemetry.KindCached {
			cached++
		}
	}
	if cached < st2.SubmodelsReused {
		t.Fatalf("feed shows %d cached replays, status says %d reused", cached, st2.SubmodelsReused)
	}
}

// TestClusterJobFeed: a 2-worker clustered job streams the forwarded
// worker-side spans (the remote execute with its work attrs) on the
// job's feed, and the report bytes stay identical to a local run.
func TestClusterJobFeed(t *testing.T) {
	specs := make([]cluster.NodeSpec, 2)
	for i := range specs {
		w, err := cluster.NewWorker(cluster.WorkerConfig{Name: fmt.Sprintf("w%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		specs[i] = cluster.NodeSpec{Name: w.Name(), Addr: srv.URL}
	}

	req := corpusRequest(t, "vss")
	req.Options.Parallel = 4

	local := New(Config{Workers: 2})
	stLocal, err := local.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, local, stLocal.ID)
	localReport, err := local.Report(stLocal.ID)
	if err != nil {
		t.Fatal(err)
	}
	local.Shutdown(context.Background())

	coord := cluster.NewCoordinator(cluster.Config{Nodes: specs, StealAfter: -1})
	defer coord.Close()
	m := New(Config{Workers: 2})
	m.AttachCluster(coord)
	defer m.Shutdown(context.Background())

	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("cluster job: %s (%s)", st.State, st.Error)
	}
	clusterReport, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comparable(t, localReport), comparable(t, clusterReport)) {
		t.Fatal("clustered report differs from local run on the comparable surface")
	}

	evs := drainFeed(t, m, st.ID)
	checkOrdered(t, evs)
	var rpc, remoteExec bool
	for _, ev := range evs {
		if ev.Kind == telemetry.KindSpanStart && strings.HasPrefix(ev.Name, "rpc[") {
			rpc = true
		}
		if ev.Kind == telemetry.KindAttr && ev.Name == "execute" && ev.Key == "paths" && ev.Val > 0 {
			remoteExec = true
		}
	}
	if !rpc {
		t.Fatal("no rpc dispatch spans on the cluster job's feed")
	}
	if !remoteExec {
		t.Fatal("no forwarded worker execute span on the feed")
	}
}

// TestSSEStreamAndResume: the SSE endpoint delivers the full ordered
// feed; a reconnect with Last-Event-ID resumes exactly after the last
// delivered event, with no duplicates.
func TestSSEStreamAndResume(t *testing.T) {
	m := New(Config{Workers: 2})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()
	c := &Client{Base: srv.URL}

	st, err := c.Submit(context.Background(), corpusRequest(t, "vss"))
	if err != nil {
		t.Fatal(err)
	}
	var all []telemetry.Event
	if err := c.Follow(context.Background(), st.ID, 0, func(ev telemetry.Event) error {
		all = append(all, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkOrdered(t, all)
	if len(all) < 5 || !TerminalJobEvent(all[len(all)-1]) {
		t.Fatalf("SSE stream incomplete: %d events", len(all))
	}

	// Resume from the middle: the stream replays only what follows.
	mid := all[len(all)/2].Seq
	var resumed []telemetry.Event
	if err := c.Follow(context.Background(), st.ID, mid, func(ev telemetry.Event) error {
		resumed = append(resumed, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(resumed) == 0 || resumed[0].Seq != mid+1 {
		t.Fatalf("resume after %d started at %+v", mid, resumed[0])
	}
	want := all[len(all)/2+1:]
	if len(resumed) != len(want) {
		t.Fatalf("resumed %d events, want %d", len(resumed), len(want))
	}
	for i := range want {
		if resumed[i].Seq != want[i].Seq || resumed[i].Kind != want[i].Kind {
			t.Fatalf("resumed[%d] = %+v, want %+v", i, resumed[i], want[i])
		}
	}

	// Unknown jobs 404 without retry loops.
	err = c.Follow(context.Background(), "job-999", 0, func(telemetry.Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("unknown job: %v", err)
	}
}

// TestEventJournalReplayAfterRestart: with a durable store, a finished
// job's feed replays after a clean restart — same sequence numbers,
// same kinds, terminal marker included — so Last-Event-ID resumption
// works across daemon generations.
func TestEventJournalReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	m1 := New(Config{Workers: 2, Store: st1})

	req := corpusRequest(t, "vss")
	req.RequestID = "req-restart"
	st, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, st.ID)
	before := drainFeed(t, m1, st.ID)
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	m2 := New(Config{Workers: 2, Store: st2})
	defer m2.Shutdown(context.Background())

	after := drainFeed(t, m2, st.ID)
	checkOrdered(t, after)
	if len(after) != len(before) {
		t.Fatalf("replayed %d events, original %d", len(after), len(before))
	}
	for i := range before {
		if after[i].Seq != before[i].Seq || after[i].Kind != before[i].Kind ||
			after[i].Name != before[i].Name || after[i].RequestID != before[i].RequestID {
			t.Fatalf("replay[%d] = %+v, original %+v", i, after[i], before[i])
		}
	}
	if !TerminalJobEvent(after[len(after)-1]) {
		t.Fatalf("replayed feed does not end terminal: %+v", after[len(after)-1])
	}

	// SSE resumption against the replayed feed: a client that saw half
	// the stream before the restart gets exactly the rest.
	srv := httptest.NewServer(Handler(m2))
	defer srv.Close()
	c := &Client{Base: srv.URL}
	mid := before[len(before)/2].Seq
	var resumed []telemetry.Event
	if err := c.Follow(context.Background(), st.ID, mid, func(ev telemetry.Event) error {
		resumed = append(resumed, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(before)-(len(before)/2+1) {
		t.Fatalf("resumed %d events after restart, want %d", len(resumed), len(before)-(len(before)/2+1))
	}
	if resumed[0].Seq != mid+1 {
		t.Fatalf("restart resume started at seq %d, want %d", resumed[0].Seq, mid+1)
	}
}
