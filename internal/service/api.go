// Wire types of the verification service HTTP API (v1), shared by the
// daemon (cmd/p4served), the manager (this package) and the remote client
// (p4verify -remote).
package service

import (
	"fmt"
	"strings"
	"time"

	"p4assert/internal/cluster"
	"p4assert/internal/core"
	"p4assert/internal/equiv"
	"p4assert/internal/rules"
	"p4assert/internal/store"
)

// Techniques is the JSON form of the core.Options technique matrix. The
// rule configuration travels separately (JobRequest.Rules) in the rules
// text format.
type Techniques struct {
	O3                 bool   `json:"o3,omitempty"`
	Opt                bool   `json:"opt,omitempty"`
	Slice              bool   `json:"slice,omitempty"`
	Parallel           int    `json:"parallel,omitempty"`
	MaxParserLoops     int    `json:"max_parser_loops,omitempty"`
	MaxPaths           int64  `json:"max_paths,omitempty"`
	Timeout            string `json:"timeout,omitempty"` // Go duration, e.g. "30s"
	RegisterCellLimit  int    `json:"register_cell_limit,omitempty"`
	AutoValidityChecks bool   `json:"auto_validity_checks,omitempty"`
	CollectTests       bool   `json:"collect_tests,omitempty"`
}

// CoreOptions converts the wire form into executable pipeline options.
// rulesText, when non-empty, is parsed in the rules text format.
func (t Techniques) CoreOptions(rulesText string) (core.Options, error) {
	opts := core.Options{
		O3:                 t.O3,
		Opt:                t.Opt,
		Slice:              t.Slice,
		Parallel:           t.Parallel,
		MaxCallDepth:       t.MaxParserLoops,
		MaxPaths:           t.MaxPaths,
		RegisterCellLimit:  t.RegisterCellLimit,
		AutoValidityChecks: t.AutoValidityChecks,
		CollectTests:       t.CollectTests,
	}
	if t.Timeout != "" {
		d, err := time.ParseDuration(t.Timeout)
		if err != nil {
			return opts, fmt.Errorf("invalid timeout: %w", err)
		}
		opts.Timeout = d
	}
	if rulesText != "" {
		rs, err := rules.Parse(rulesText)
		if err != nil {
			return opts, fmt.Errorf("invalid rules: %w", err)
		}
		opts.Rules = rs
	}
	return opts, nil
}

// EquivOptions converts the wire form into differential-run options: the
// same technique matrix applied to both sides (with per-side rules), plus
// the execution parameters of the product-program run. When O3 or slicing
// is selected the comparison observes assertion verdicts only — both
// transforms deliberately delete output-affecting code no assertion
// depends on.
func (t Techniques) EquivOptions(rulesA, rulesB string) (equiv.Options, error) {
	a, err := t.CoreOptions(rulesA)
	if err != nil {
		return equiv.Options{}, err
	}
	b, err := t.CoreOptions(rulesB)
	if err != nil {
		return equiv.Options{}, fmt.Errorf("rules_b: %w", err)
	}
	eo := equiv.Options{
		A:            a,
		B:            b,
		MaxPaths:     a.MaxPaths,
		Timeout:      a.Timeout,
		Parallel:     a.Parallel,
		MaxCallDepth: a.MaxCallDepth,
		Opt:          t.Opt,
	}
	if t.O3 || t.Slice {
		eo.Observe = equiv.Observables{Asserts: true}
	}
	return eo, nil
}

// Label names the technique combination for the per-technique latency
// histograms, e.g. "original", "O3+slice" or "opt+parallel".
func (t Techniques) Label() string {
	var parts []string
	if t.O3 {
		parts = append(parts, "O3")
	}
	if t.Opt {
		parts = append(parts, "opt")
	}
	if t.Slice {
		parts = append(parts, "slice")
	}
	if t.Parallel > 0 {
		parts = append(parts, "parallel")
	}
	if len(parts) == 0 {
		return "original"
	}
	return strings.Join(parts, "+")
}

// Job modes.
const (
	// ModeVerify (or an empty Mode) verifies a single program.
	ModeVerify = "verify"
	// ModeDiff checks two program versions for behavioral equivalence
	// (internal/equiv): Source/Rules describe side A, SourceB/RulesB
	// side B. The report is a serialized equiv.Report.
	ModeDiff = "diff"
)

// Priority classes. Interactive is the default and is shed only at the
// hard queue bound; bulk is capped to a fraction of the queue and shed
// first when the service detects overload.
const (
	PriorityInteractive = "interactive"
	PriorityBulk        = "bulk"
)

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	// Filename appears in diagnostics only; it does not affect the
	// verification outcome or the cache key.
	Filename string `json:"filename,omitempty"`
	// Source is the annotated P4_16 program text.
	Source string `json:"source"`
	// Rules optionally carries a forwarding-rule configuration in the
	// rules text format.
	Rules string `json:"rules,omitempty"`
	// Options selects the technique matrix.
	Options Techniques `json:"options"`
	// Mode selects the job kind: "" or "verify" for single-program
	// verification, "diff" for version-equivalence checking.
	Mode string `json:"mode,omitempty"`
	// FilenameB, SourceB and RulesB describe the second version of a
	// diff job. SourceB is required for mode "diff".
	FilenameB string `json:"filename_b,omitempty"`
	SourceB   string `json:"source_b,omitempty"`
	RulesB    string `json:"rules_b,omitempty"`
	// BaseJob optionally names a previously submitted job this request is
	// an edit of. The job runs through the incremental engine
	// (internal/incr): submodels whose executable content the base job's
	// run already verified replay from the daemon's submodel cache, and
	// the edit is attributed unit-by-unit against the base job's source.
	// Requires the daemon's submodel cache and options.parallel > 0.
	BaseJob string `json:"base_job,omitempty"`
	// Priority selects the admission class: "" or "interactive" for
	// latency-sensitive submissions, "bulk" for batch work the service may
	// shed (HTTP 429) under load. Interactive jobs always run before bulk
	// ones and are only rejected at the hard queue bound.
	Priority string `json:"priority,omitempty"`
	// RequestID correlates the job with access logs: the HTTP layer fills
	// it from the X-Request-Id header when the body leaves it empty. It is
	// stamped onto every event on the job's progress feed and tagged onto
	// the job's root span. Observability-only: it never affects the
	// verification outcome, the report bytes or the cache key.
	RequestID string `json:"request_id,omitempty"`
}

// JobState is the lifecycle state of a job:
// pending → running → done | failed | cancelled
// (a pending job cancelled before a worker picks it up goes straight to
// cancelled).
type JobState string

// Job lifecycle states.
const (
	StatePending   JobState = "pending"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Error describes a failed job (front-end error, timeout, ...).
	Error string `json:"error,omitempty"`
	// CacheHit marks a done job served from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Technique is the histogram label of the job's option combination.
	Technique string `json:"technique"`
	// Priority is the job's admission class ("interactive" or "bulk").
	Priority string `json:"priority,omitempty"`
	// Verdict summarizes a done job: "ok", "violations" or "exhausted"
	// for verify jobs; "equivalent", "divergent" or "exhausted" for diff
	// jobs.
	Verdict string `json:"verdict,omitempty"`
	// Violations is the violated-assertion count of a done verify job,
	// or the divergence count of a done diff job.
	Violations int `json:"violations,omitempty"`
	// SubmodelsReused and SubmodelsExecuted report the incremental
	// engine's cache behaviour for a job that ran through it (the daemon
	// has a submodel cache and the job ran with parallel > 0): how many
	// submodel verdicts replayed from the cache vs executed symbolically.
	SubmodelsReused   int `json:"submodels_reused,omitempty"`
	SubmodelsExecuted int `json:"submodels_executed,omitempty"`
	// Timestamps (RFC 3339); zero values are omitted.
	EnqueuedAt time.Time  `json:"enqueued_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	// QueueDepth is the number of jobs waiting for a worker;
	// QueueCapacity is the bound beyond which submissions are rejected.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// QueueInteractive and QueueBulk break the depth down by admission
	// class.
	QueueInteractive int `json:"queue_interactive"`
	QueueBulk        int `json:"queue_bulk"`
	Workers          int `json:"workers"`
	// Running is the number of jobs currently executing.
	Running int64 `json:"running"`
	// Overloaded reports the deadline-based detector's current verdict:
	// bulk submissions are being shed because queued work is unlikely to
	// start within the overload deadline.
	Overloaded bool `json:"overloaded"`
	// Counters over the process lifetime.
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	CacheHits int64 `json:"cache_hits"`
	// Shed counts submissions rejected with 429 (queue full or overload).
	Shed int64 `json:"shed"`
	// Recovered counts jobs resubmitted from the durable store at startup
	// (they were pending or running when the previous process died).
	Recovered int64 `json:"recovered"`
	// Store is the durability layer's counter snapshot (nil when the
	// daemon runs without -store-dir).
	Store *store.Stats `json:"store,omitempty"`
	// Cache is the whole-program result-cache counter snapshot (zero
	// value when the daemon runs without a cache).
	Cache CacheStats `json:"cache"`
	// SubmodelCache is the submodel-granular tier's counter snapshot (the
	// incremental engine's memoization store; zero value when disabled).
	SubmodelCache CacheStats `json:"submodel_cache"`
	// Techniques maps a technique label to the latency histogram of the
	// jobs that actually executed under it (cache hits are excluded: they
	// measure the cache, not the verifier).
	Techniques map[string]HistogramSnapshot `json:"techniques,omitempty"`
}

// CacheStats mirrors vcache.Stats on the wire.
type CacheStats struct {
	Enabled   bool  `json:"enabled"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	MemHits   int64 `json:"mem_hits"`
	DiskHits  int64 `json:"disk_hits"`
	Evictions int64 `json:"evictions"`
	// Corrupt counts disk entries that failed their checksum and were
	// quarantined (removed and recomputed), never returned.
	Corrupt    int64 `json:"corrupt,omitempty"`
	Entries    int   `json:"entries"`
	MaxEntries int   `json:"max_entries"`
	DiskTier   bool  `json:"disk_tier"`
}

// ClusterResponse is the body of GET /v1/cluster: the coordinator's view
// of the worker membership.
type ClusterResponse struct {
	Draining bool                 `json:"draining"`
	Nodes    []cluster.NodeStatus `json:"nodes"`
}

// RegisterRequest is the body of POST /v1/cluster/register: a worker
// joining (or re-joining) the cluster at runtime.
type RegisterRequest struct {
	// Name labels the node; empty derives it from Addr.
	Name string `json:"name,omitempty"`
	// Addr is the worker's base URL.
	Addr string `json:"addr"`
}

// errorResponse is the body of every non-2xx API response.
type errorResponse struct {
	Error string `json:"error"`
}
