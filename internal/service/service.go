// Package service is the verification-as-a-service subsystem: a job
// manager with a bounded FIFO queue and a worker pool that runs
// core.Verify jobs with per-job timeout and cancellation, backed by the
// content-addressed result cache (internal/vcache). cmd/p4served exposes
// it over HTTP; p4verify -remote is its client.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"p4assert/internal/cluster"
	"p4assert/internal/core"
	"p4assert/internal/equiv"
	"p4assert/internal/incr"
	"p4assert/internal/telemetry"
	"p4assert/internal/vcache"
)

// Submission errors.
var (
	// ErrQueueFull rejects a submission when the FIFO queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown rejects submissions after Shutdown began (HTTP 503).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrUnknownJob reports a job ID the manager does not know (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrNotFinished reports a report request for an unfinished job
	// (HTTP 409).
	ErrNotFinished = errors.New("service: job not finished")
)

// Config sizes a Manager. The zero value is usable: GOMAXPROCS workers, a
// 256-deep queue, no cache, no per-job timeout.
type Config struct {
	// Workers is the worker-pool size; non-positive means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the FIFO queue; non-positive means 256.
	QueueDepth int
	// Cache, when non-nil, serves repeat requests content-addressed.
	Cache *vcache.Cache
	// SubCache, when non-nil, is the submodel-granular tier
	// (vcache.NewSubmodelTier): parallel jobs then run through the
	// incremental engine, memoizing per-submodel verdicts so an edited
	// resubmission (JobRequest.BaseJob) re-executes only the submodels
	// the edit can affect.
	SubCache *vcache.Cache
	// JobTimeout, when positive, caps each job's execution wall time via
	// context cancellation (independent of a Timeout the client sets in
	// Techniques, which bounds exploration and reports Exhausted).
	JobTimeout time.Duration
	// RetainJobs bounds how many finished jobs stay queryable;
	// non-positive means 4096. The oldest finished jobs are forgotten
	// first.
	RetainJobs int
}

// job is the manager-internal job record. Fields are guarded by
// Manager.mu except req/opts/eopts/diff/key/technique, which are immutable
// after Submit.
type job struct {
	id        string
	req       JobRequest
	opts      core.Options
	eopts     equiv.Options // diff jobs only
	diff      bool
	key       string
	technique string
	// baseSource is the BaseJob's program text, captured at submit time
	// (the base job may be retired from the table before this job runs).
	baseSource string

	state       JobState
	err         string
	cacheHit    bool
	subReused   int
	subExecuted int
	reportData []byte // serialized core.Report of a done job
	verdict    string
	violations int
	enqueued   time.Time
	started    time.Time
	finished   time.Time
	cancel     context.CancelFunc // non-nil while running
}

// Manager owns the queue, the worker pool, the job table and the
// counters. Create with New, stop with Shutdown.
type Manager struct {
	cfg   Config
	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // finished-job retention ring, oldest first
	seq      int64
	closed   bool
	running  int64
	counters struct {
		submitted, done, failed, cancelled, cacheHits int64
	}

	histMu sync.Mutex
	hist   map[string]*Histogram

	// reg is the Prometheus-exposed metric registry (service/metrics.go).
	reg *telemetry.Registry

	// coord, when non-nil, dispatches parallel verify jobs' submodels
	// across the worker cluster (AttachCluster).
	coord *cluster.Coordinator
}

// AttachCluster routes this manager's parallel verify jobs through the
// coordinator. Call once, before serving traffic; construct the
// coordinator with Config.Registry = Manager.Registry() so the
// p4served_cluster_* metrics land on this manager's /v1/metrics.
func (m *Manager) AttachCluster(coord *cluster.Coordinator) { m.coord = coord }

// Cluster returns the attached coordinator, or nil.
func (m *Manager) Cluster() *cluster.Coordinator { return m.coord }

// New starts a manager and its worker pool.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 4096
	}
	m := &Manager{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  map[string]*job{},
		hist:  map[string]*Histogram{},
		reg:   telemetry.NewRegistry(),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates and enqueues a request, returning the pending job's
// status. Validation failures (bad options, bad rules, empty source)
// return an error without creating a job.
func (m *Manager) Submit(req JobRequest) (JobStatus, error) {
	if req.Source == "" {
		return JobStatus{}, errors.New("service: empty source")
	}
	j := &job{
		req:      req,
		state:    StatePending,
		enqueued: time.Now(),
	}
	switch req.Mode {
	case "", ModeVerify:
		opts, err := req.Options.CoreOptions(req.Rules)
		if err != nil {
			return JobStatus{}, fmt.Errorf("service: %w", err)
		}
		j.opts = opts
		j.key = vcache.Key(req.Source, opts)
		j.technique = req.Options.Label()
	case ModeDiff:
		if req.SourceB == "" {
			return JobStatus{}, errors.New("service: diff jobs require source_b")
		}
		if req.BaseJob != "" {
			return JobStatus{}, errors.New("service: base_job is incompatible with diff jobs (the product program has no submodel baseline)")
		}
		eopts, err := req.Options.EquivOptions(req.Rules, req.RulesB)
		if err != nil {
			return JobStatus{}, fmt.Errorf("service: %w", err)
		}
		j.diff = true
		j.eopts = eopts
		j.key = vcache.DiffKey(req.Source, req.SourceB, eopts.A, eopts.B,
			fmt.Sprintf("observe=%+v opt=%t parallel=%d maxpaths=%d maxdepth=%d",
				eopts.Observe, eopts.Opt, eopts.Parallel, eopts.MaxPaths, eopts.MaxCallDepth))
		j.technique = "diff:" + req.Options.Label()
	default:
		return JobStatus{}, fmt.Errorf("service: unknown mode %q", req.Mode)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if req.BaseJob != "" {
		if m.cfg.SubCache == nil {
			return JobStatus{}, errors.New("service: base_job requires the daemon's submodel cache")
		}
		if j.opts.Parallel <= 0 {
			return JobStatus{}, errors.New("service: base_job requires options.parallel > 0 (the incremental engine runs the submodel-split pipeline)")
		}
		base, ok := m.jobs[req.BaseJob]
		if !ok {
			return JobStatus{}, fmt.Errorf("service: %w: base_job %s", ErrUnknownJob, req.BaseJob)
		}
		j.baseSource = base.req.Source
	}
	if m.closed {
		return JobStatus{}, ErrShuttingDown
	}
	m.seq++
	j.id = fmt.Sprintf("job-%d", m.seq)
	select {
	case m.queue <- j:
	default:
		return JobStatus{}, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.counters.submitted++
	m.reg.Counter("p4served_jobs_submitted_total", "Jobs accepted into the queue.").Inc()
	return j.statusLocked(), nil
}

// Get returns a job's status.
func (m *Manager) Get(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.statusLocked(), nil
}

// Report returns a done job's serialized core.Report.
func (m *Manager) Report(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.state != StateDone {
		if j.state.Terminal() {
			return nil, fmt.Errorf("%w: job %s %s (%s)", ErrNotFinished, id, j.state, j.err)
		}
		return nil, fmt.Errorf("%w: job %s is %s", ErrNotFinished, id, j.state)
	}
	return j.reportData, nil
}

// Cancel stops a job: a pending job is marked cancelled in place (the
// worker that eventually pops it skips it), a running job has its context
// cancelled. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	switch j.state {
	case StatePending:
		j.state = StateCancelled
		j.finished = time.Now()
		m.counters.cancelled++
		m.reg.Counter("p4served_jobs_cancelled_total", "Jobs cancelled by the client or shutdown.").Inc()
		m.retireLocked(j)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return nil
}

// Shutdown drains the service: no new submissions are accepted, queued
// jobs run to completion, and the call returns when every worker has
// exited. If ctx expires first, all queued and running jobs are cancelled
// and the drain completes with ctx's error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	// Forced drain: cancel everything still alive, then wait for the
	// workers to observe the cancellations.
	m.mu.Lock()
	for _, j := range m.jobs {
		switch j.state {
		case StatePending:
			j.state = StateCancelled
			j.finished = time.Now()
			m.counters.cancelled++
			m.reg.Counter("p4served_jobs_cancelled_total", "Jobs cancelled by the client or shutdown.").Inc()
		case StateRunning:
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
	m.mu.Unlock()
	<-done
	return ctx.Err()
}

// Stats snapshots the service counters.
func (m *Manager) Stats() StatsResponse {
	m.mu.Lock()
	s := StatsResponse{
		QueueDepth:    len(m.queue),
		QueueCapacity: m.cfg.QueueDepth,
		Workers:       m.cfg.Workers,
		Running:       m.running,
		Submitted:     m.counters.submitted,
		Done:          m.counters.done,
		Failed:        m.counters.failed,
		Cancelled:     m.counters.cancelled,
		CacheHits:     m.counters.cacheHits,
	}
	m.mu.Unlock()
	if m.cfg.Cache != nil {
		s.Cache = wireCacheStats(m.cfg.Cache.Stats())
	}
	if m.cfg.SubCache != nil {
		s.SubmodelCache = wireCacheStats(m.cfg.SubCache.Stats())
	}
	m.histMu.Lock()
	if len(m.hist) > 0 {
		s.Techniques = make(map[string]HistogramSnapshot, len(m.hist))
		for label, h := range m.hist {
			s.Techniques[label] = h.Snapshot()
		}
	}
	m.histMu.Unlock()
	return s
}

// wireCacheStats converts a vcache counter snapshot to the wire form.
func wireCacheStats(cs vcache.Stats) CacheStats {
	return CacheStats{
		Enabled:    true,
		Hits:       cs.Hits,
		Misses:     cs.Misses,
		MemHits:    cs.MemHits,
		DiskHits:   cs.DiskHits,
		Evictions:  cs.Evictions,
		Entries:    cs.Entries,
		MaxEntries: cs.MaxEntries,
		DiskTier:   cs.DiskTier,
	}
}

// worker pops jobs until the queue closes (Shutdown).
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob drives one job through its lifecycle.
func (m *Manager) runJob(j *job) {
	base := context.Background()
	ctx, cancel := context.WithCancel(base)
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(base, m.cfg.JobTimeout)
	}
	defer cancel()

	m.mu.Lock()
	if j.state != StatePending {
		// Cancelled while queued.
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	m.running++
	m.mu.Unlock()

	// Cache lookup first: a hit finishes the job without touching the
	// executor (no new metrics, near-zero latency).
	if m.cfg.Cache != nil {
		if data, ok := m.cfg.Cache.GetBytes(j.key); ok {
			m.finish(j, data, true, nil)
			return
		}
	}

	if j.diff {
		m.runDiffJob(ctx, j)
		return
	}

	// Parallel jobs run through the incremental engine whenever the
	// submodel tier exists: every run memoizes its per-submodel verdicts,
	// so a later edit (base_job) — or any job sharing submodel content —
	// replays them instead of re-exploring. The report is byte-identical
	// (modulo wall-clock fields) to a cold parallel run.
	// When a cluster coordinator is attached, parallel jobs' submodel
	// executions dispatch through it instead of the local pool; the
	// report bytes are identical either way (the executor boundary only
	// moves where a submodel runs, never what it computes).
	var rep *core.Report
	var err error
	switch {
	case m.cfg.SubCache != nil && j.opts.Parallel > 0 && m.coord != nil:
		var man *incr.Manifest
		rep, man, err = core.VerifyIncrementalSourceExec(ctx, j.req.Filename, j.baseSource, j.req.Source, j.opts, m.cfg.SubCache, m.coord)
		if man != nil {
			m.mu.Lock()
			j.subReused, j.subExecuted = man.Reused, man.Executed
			m.mu.Unlock()
		}
	case m.cfg.SubCache != nil && j.opts.Parallel > 0:
		var man *incr.Manifest
		rep, man, err = core.VerifyIncrementalSource(ctx, j.req.Filename, j.baseSource, j.req.Source, j.opts, m.cfg.SubCache)
		if man != nil {
			m.mu.Lock()
			j.subReused, j.subExecuted = man.Reused, man.Executed
			m.mu.Unlock()
		}
	case j.opts.Parallel > 0 && m.coord != nil:
		rep, err = core.VerifySourceExec(ctx, j.req.Filename, j.req.Source, j.opts, m.coord)
	default:
		rep, err = core.VerifySourceCtx(ctx, j.req.Filename, j.req.Source, j.opts)
	}
	if err != nil {
		m.finish(j, nil, false, err)
		return
	}
	data, err := json.Marshal(rep)
	if err != nil {
		m.finish(j, nil, false, err)
		return
	}
	// Exhausted reports depend on how far a budget-bounded run happened
	// to get; they are not content-determined, so they are not cached.
	if m.cfg.Cache != nil && !rep.Exhausted {
		m.cfg.Cache.PutBytes(j.key, data)
	}
	m.recordReportMetrics(j, rep)
	m.finish(j, data, false, nil)
}

// runDiffJob executes a version-equivalence job through the product
// program engine (internal/equiv) and stores the serialized equiv.Report.
func (m *Manager) runDiffJob(ctx context.Context, j *job) {
	m.reg.Counter("p4served_diff_jobs_total", "Differential (version-equivalence) jobs executed.").Inc()
	rep, err := equiv.Diff(ctx, j.req.Filename, j.req.Source, j.req.FilenameB, j.req.SourceB, j.eopts)
	if err != nil {
		m.finish(j, nil, false, err)
		return
	}
	data, err := json.Marshal(rep)
	if err != nil {
		m.finish(j, nil, false, err)
		return
	}
	if len(rep.Divergences) > 0 {
		m.reg.Counter("p4served_diff_divergent_total", "Diff jobs that found at least one behavioral divergence.").Inc()
	}
	// Same caching rule as verify jobs: budget-truncated (Exhausted)
	// verdicts depend on how far the run happened to get and are not
	// content-determined, so they are never cached.
	if m.cfg.Cache != nil && !rep.Exhausted {
		m.cfg.Cache.PutBytes(j.key, data)
	}
	m.finish(j, data, false, nil)
}

// finish moves a running job to its terminal state.
func (m *Manager) finish(j *job, data []byte, cacheHit bool, err error) {
	now := time.Now()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	j.cancel = nil
	j.finished = now
	switch {
	case err == nil:
		j.state = StateDone
		j.cacheHit = cacheHit
		j.reportData = data
		j.verdict, j.violations = summarize(data, j.diff)
		m.counters.done++
		if cacheHit {
			m.counters.cacheHits++
		} else {
			m.observe(j.technique, now.Sub(j.started))
		}
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = "cancelled"
		m.counters.cancelled++
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.err = fmt.Sprintf("job timeout (%s) exceeded", m.cfg.JobTimeout)
		m.counters.failed++
	default:
		j.state = StateFailed
		j.err = err.Error()
		m.counters.failed++
	}
	m.recordJobMetrics(j, j.state, cacheHit, now.Sub(j.started))
	m.retireLocked(j)
}

// retireLocked enters a finished job into the retention ring, forgetting
// the oldest finished job beyond the bound. Callers hold m.mu.
func (m *Manager) retireLocked(j *job) {
	m.order = append(m.order, j.id)
	for len(m.order) > m.cfg.RetainJobs {
		delete(m.jobs, m.order[0])
		m.order = m.order[1:]
	}
}

func (m *Manager) observe(label string, d time.Duration) {
	m.histMu.Lock()
	h, ok := m.hist[label]
	if !ok {
		h = &Histogram{}
		m.hist[label] = h
	}
	m.histMu.Unlock()
	h.Observe(d)
}

// summarize extracts the verdict line of a serialized report: a
// core.Report for verify jobs, an equiv.Report for diff jobs.
func summarize(data []byte, diff bool) (string, int) {
	if diff {
		var rep equiv.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return "", 0
		}
		switch {
		case len(rep.Divergences) > 0:
			return "divergent", len(rep.Divergences)
		case rep.Exhausted:
			return "exhausted", 0
		default:
			return "equivalent", 0
		}
	}
	var rep core.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return "", 0
	}
	switch {
	case rep.Exhausted:
		return "exhausted", len(rep.Violations)
	case len(rep.Violations) > 0:
		return "violations", len(rep.Violations)
	default:
		return "ok", 0
	}
}

// statusLocked renders a job's status. Callers hold Manager.mu.
func (j *job) statusLocked() JobStatus {
	s := JobStatus{
		ID:         j.id,
		State:      j.state,
		Error:      j.err,
		CacheHit:   j.cacheHit,
		Technique:  j.technique,
		Verdict:    j.verdict,
		Violations: j.violations,
		EnqueuedAt: j.enqueued,

		SubmodelsReused:   j.subReused,
		SubmodelsExecuted: j.subExecuted,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}
