// Package service is the verification-as-a-service subsystem: a job
// manager with class-aware bounded queues (interactive before bulk), a
// worker pool that runs core.Verify jobs with per-job timeout and
// cancellation, deadline-based admission control that sheds bulk work
// under overload, and an optional WAL-backed durable store
// (internal/store) that survives crashes: finished reports replay
// byte-identically and interrupted jobs resubmit on restart. cmd/p4served
// exposes it over HTTP; p4verify -remote is its client.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"p4assert/internal/cluster"
	"p4assert/internal/core"
	"p4assert/internal/equiv"
	"p4assert/internal/incr"
	"p4assert/internal/store"
	"p4assert/internal/telemetry"
	"p4assert/internal/vcache"
)

// Submission errors.
var (
	// ErrQueueFull rejects a submission when the queue is at its hard
	// capacity bound — both classes included (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrOverloaded rejects a bulk submission while the service is
	// shedding load: the bulk queue share is exhausted or the overload
	// detector predicts queued work will miss the deadline (HTTP 429).
	// Interactive submissions are never rejected with this error.
	ErrOverloaded = errors.New("service: overloaded, bulk submissions shed")
	// ErrShuttingDown rejects submissions after Shutdown began (HTTP 503).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrUnknownJob reports a job ID the manager does not know (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrNotFinished reports a report request for an unfinished job
	// (HTTP 409).
	ErrNotFinished = errors.New("service: job not finished")
)

// DefaultOverloadDeadline is the admission-control target when Config
// leaves OverloadDeadline zero: bulk work is shed once queued jobs are
// unlikely to start within it.
const DefaultOverloadDeadline = 30 * time.Second

// Config sizes a Manager. The zero value is usable: GOMAXPROCS workers, a
// 256-deep queue, no cache, no per-job timeout, no durable store.
type Config struct {
	// Workers is the worker-pool size; non-positive means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the queue across both classes; non-positive means
	// 256. Bulk jobs may occupy at most half of it.
	QueueDepth int
	// Cache, when non-nil, serves repeat requests content-addressed.
	Cache *vcache.Cache
	// SubCache, when non-nil, is the submodel-granular tier
	// (vcache.NewSubmodelTier): parallel jobs then run through the
	// incremental engine, memoizing per-submodel verdicts so an edited
	// resubmission (JobRequest.BaseJob) re-executes only the submodels
	// the edit can affect.
	SubCache *vcache.Cache
	// JobTimeout, when positive, caps each job's execution wall time via
	// context cancellation (independent of a Timeout the client sets in
	// Techniques, which bounds exploration and reports Exhausted).
	JobTimeout time.Duration
	// RetainJobs bounds how many finished jobs stay queryable;
	// non-positive means 4096. The oldest finished jobs are forgotten
	// first.
	RetainJobs int
	// Store, when non-nil, persists every job lifecycle transition and
	// finished report through the write-ahead log. New replays it before
	// accepting traffic: terminal jobs are restored verbatim, jobs that
	// were pending or running when the previous process died are
	// resubmitted. A store write failure never fails the job — the
	// service degrades to in-memory operation (visible in Stats).
	Store *store.Store
	// OverloadDeadline tunes admission control: bulk submissions are shed
	// once the estimated queue drain time or the oldest queued job's age
	// exceeds it. Zero means DefaultOverloadDeadline; negative disables
	// the detector (bulk is still capped to its queue share).
	OverloadDeadline time.Duration
}

// job is the manager-internal job record. Fields are guarded by
// Manager.mu except req/opts/eopts/diff/key/technique/priority, which are
// immutable after Submit.
type job struct {
	id        string
	seq       int64
	req       JobRequest
	reqJSON   []byte // req marshaled once, for the durable store
	opts      core.Options
	eopts     equiv.Options // diff jobs only
	diff      bool
	key       string
	technique string
	priority  string
	// baseSource is the BaseJob's program text, captured at submit time
	// (the base job may be retired from the table before this job runs).
	baseSource string

	state       JobState
	rev         int64           // durable-record revision, bumped per transition
	root        *telemetry.Span // running job's root span (events feed)
	err         string
	cacheHit    bool
	subReused   int
	subExecuted int
	reportData  []byte // serialized core.Report of a done job
	verdict     string
	violations  int
	enqueued    time.Time
	started     time.Time
	finished    time.Time
	cancel      context.CancelFunc // non-nil while running
}

// Manager owns the queues, the worker pool, the job table and the
// counters. Create with New, stop with Shutdown.
type Manager struct {
	cfg Config
	wg  sync.WaitGroup

	mu    sync.Mutex
	qCond *sync.Cond // signals workers when work arrives or closed flips
	// qInt and qBulk are the per-class FIFO queues; workers always drain
	// qInt first. Entries may be cancelled in place (state flipped under
	// mu) — workers skip those on pop.
	qInt, qBulk []*job
	jobs        map[string]*job
	// feeds maps a job ID to its live-progress event bus; created at
	// submission, closed at the terminal transition, evicted with the
	// job (service/events.go).
	feeds   map[string]*telemetry.Bus
	order   []string // finished-job retention ring, oldest first
	seq     int64
	closed  bool
	running int64
	// ewmaSec tracks executed-job latency (exponentially weighted, in
	// seconds) for the overload detector's drain-time estimate.
	ewmaSec  float64
	counters struct {
		submitted, done, failed, cancelled, cacheHits int64
		shed, recovered                               int64
	}

	histMu sync.Mutex
	hist   map[string]*Histogram

	// reg is the Prometheus-exposed metric registry (service/metrics.go).
	reg *telemetry.Registry

	// journalWG tracks the per-job feed-journal consumers; Shutdown
	// waits for their final batches to land in the store.
	journalWG sync.WaitGroup

	// started anchors p4served_uptime_seconds.
	started time.Time

	// coord, when non-nil, dispatches parallel verify jobs' submodels
	// across the worker cluster (AttachCluster).
	coord *cluster.Coordinator
}

// AttachCluster routes this manager's parallel verify jobs through the
// coordinator. Call once, before serving traffic; construct the
// coordinator with Config.Registry = Manager.Registry() so the
// p4served_cluster_* metrics land on this manager's /v1/metrics.
func (m *Manager) AttachCluster(coord *cluster.Coordinator) { m.coord = coord }

// Cluster returns the attached coordinator, or nil.
func (m *Manager) Cluster() *cluster.Coordinator { return m.coord }

// New starts a manager and its worker pool. With Config.Store set it
// first replays the durable history: terminal jobs become queryable
// again (reports byte-identical) and interrupted jobs re-enter the
// queue before the first worker starts.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 4096
	}
	if cfg.OverloadDeadline == 0 {
		cfg.OverloadDeadline = DefaultOverloadDeadline
	}
	m := &Manager{
		cfg:     cfg,
		jobs:    map[string]*job{},
		feeds:   map[string]*telemetry.Bus{},
		hist:    map[string]*Histogram{},
		reg:     telemetry.NewRegistry(),
		started: time.Now(),
	}
	m.qCond = sync.NewCond(&m.mu)
	m.registerBuildInfo()
	if cfg.Store != nil {
		m.recoverFromStore()
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Recovered reports how many interrupted jobs New resubmitted from the
// durable store.
func (m *Manager) Recovered() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters.recovered
}

// recoverFromStore rebuilds the job table from the durable store: runs
// before the workers start, so no locking discipline applies yet (the
// locked helpers are reused for their invariants, not their mutex).
func (m *Manager) recoverFromStore() {
	recs := m.cfg.Store.Jobs() // seq-sorted: base jobs precede dependents
	m.seq = m.cfg.Store.MaxSeq()
	for _, r := range recs {
		var req JobRequest
		reqOK := len(r.Request) > 0 && json.Unmarshal(r.Request, &req) == nil

		if store.TerminalState(r.State) {
			j := &job{
				id: r.ID, seq: r.Seq, rev: r.Rev,
				priority: r.Priority, state: JobState(r.State),
				err: r.Error, verdict: r.Verdict, violations: r.Violations,
				cacheHit: r.CacheHit, technique: r.Technique,
				enqueued: r.EnqueuedAt, started: r.StartedAt, finished: r.FinishedAt,
				reportData: r.Report, reqJSON: r.Request,
			}
			if reqOK {
				j.req = req
			}
			m.jobs[j.id] = j
			m.order = append(m.order, j.id)
			// The journaled feed (terminal marker included) replays to
			// late subscribers; the stream is already complete.
			bus := m.openFeedLocked(j)
			bus.Preload(m.journaledEvents(j.id))
			bus.Close()
			continue
		}

		// Pending or running at crash time: rebuild and re-enqueue with
		// identity, class and submission time preserved. A record that no
		// longer validates (corrupt request, vanished base job, changed
		// daemon configuration) fails visibly instead of vanishing.
		var j *job
		var err error
		if !reqOK {
			err = errors.New("request record unreadable")
		} else if j, err = buildJob(req); err == nil {
			err = m.resolveBaseLocked(j)
		}
		if err != nil {
			j = &job{
				id: r.ID, seq: r.Seq, rev: r.Rev, req: req, reqJSON: r.Request,
				priority: r.Priority, technique: r.Technique,
				state:    StateFailed,
				err:      fmt.Sprintf("unrecoverable after restart: %v", err),
				enqueued: r.EnqueuedAt, finished: time.Now(),
			}
			m.jobs[j.id] = j
			m.order = append(m.order, j.id)
			m.counters.failed++
			bus := m.openFeedLocked(j)
			bus.Preload(m.journaledEvents(j.id))
			m.startJournal(j.id, bus, bus.Seq())
			m.closeFeed(j, bus)
			m.persist(m.snapshotLocked(j), nil)
			continue
		}
		j.id, j.seq, j.rev = r.ID, r.Seq, r.Rev
		j.reqJSON = r.Request
		j.enqueued = r.EnqueuedAt
		if j.priority == "" {
			j.priority = r.Priority
		}
		j.state = StatePending
		m.jobs[j.id] = j
		m.enqueueLocked(j)
		m.counters.recovered++
		// The resumed feed continues the journaled stream: history
		// replays with its original sequence numbers, the "resumed"
		// marker and everything after extend it.
		bus := m.openFeedLocked(j)
		bus.Preload(m.journaledEvents(j.id))
		m.startJournal(j.id, bus, bus.Seq())
		bus.Publish(telemetry.Event{Kind: telemetry.KindJob, Name: "resumed"})
		m.persist(m.snapshotLocked(j), nil)
	}
	// The restored history honors the in-memory retention bound too.
	m.persist(nil, m.evictLocked())
	m.reg.Counter("p4served_jobs_recovered_total",
		"Interrupted jobs resubmitted from the durable store at startup.").Add(m.counters.recovered)
}

// buildJob validates a request into a runnable job. It takes no locks and
// touches no Manager state beyond configuration-independent validation;
// Submit and recovery share it.
func buildJob(req JobRequest) (*job, error) {
	if req.Source == "" {
		return nil, errors.New("service: empty source")
	}
	j := &job{
		req:      req,
		state:    StatePending,
		enqueued: time.Now(),
	}
	switch req.Priority {
	case "", PriorityInteractive:
		j.priority = PriorityInteractive
	case PriorityBulk:
		j.priority = PriorityBulk
	default:
		return nil, fmt.Errorf("service: unknown priority %q (want %q or %q)",
			req.Priority, PriorityInteractive, PriorityBulk)
	}
	switch req.Mode {
	case "", ModeVerify:
		opts, err := req.Options.CoreOptions(req.Rules)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		j.opts = opts
		j.key = vcache.Key(req.Source, opts)
		j.technique = req.Options.Label()
	case ModeDiff:
		if req.SourceB == "" {
			return nil, errors.New("service: diff jobs require source_b")
		}
		if req.BaseJob != "" {
			return nil, errors.New("service: base_job is incompatible with diff jobs (the product program has no submodel baseline)")
		}
		eopts, err := req.Options.EquivOptions(req.Rules, req.RulesB)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		j.diff = true
		j.eopts = eopts
		j.key = vcache.DiffKey(req.Source, req.SourceB, eopts.A, eopts.B,
			fmt.Sprintf("observe=%+v opt=%t parallel=%d maxpaths=%d maxdepth=%d",
				eopts.Observe, eopts.Opt, eopts.Parallel, eopts.MaxPaths, eopts.MaxCallDepth))
		j.technique = "diff:" + req.Options.Label()
	default:
		return nil, fmt.Errorf("service: unknown mode %q", req.Mode)
	}
	return j, nil
}

// resolveBaseLocked validates a BaseJob reference and captures the base
// program text. Callers hold m.mu (or run single-threaded in recovery).
func (m *Manager) resolveBaseLocked(j *job) error {
	if j.req.BaseJob == "" {
		return nil
	}
	if m.cfg.SubCache == nil {
		return errors.New("service: base_job requires the daemon's submodel cache")
	}
	if j.opts.Parallel <= 0 {
		return errors.New("service: base_job requires options.parallel > 0 (the incremental engine runs the submodel-split pipeline)")
	}
	base, ok := m.jobs[j.req.BaseJob]
	if !ok {
		return fmt.Errorf("service: %w: base_job %s", ErrUnknownJob, j.req.BaseJob)
	}
	j.baseSource = base.req.Source
	return nil
}

// Submit validates and enqueues a request, returning the pending job's
// status. Validation failures (bad options, bad rules, empty source)
// return an error without creating a job; admission failures return
// ErrQueueFull or (bulk only) ErrOverloaded.
func (m *Manager) Submit(req JobRequest) (JobStatus, error) {
	j, err := buildJob(req)
	if err != nil {
		return JobStatus{}, err
	}
	if m.cfg.Store != nil {
		// Marshal outside the lock: sources can be large.
		j.reqJSON, _ = json.Marshal(req)
	}

	m.mu.Lock()
	if err := m.resolveBaseLocked(j); err != nil {
		m.mu.Unlock()
		return JobStatus{}, err
	}
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, ErrShuttingDown
	}
	if err := m.admitLocked(j); err != nil {
		m.mu.Unlock()
		return JobStatus{}, err
	}
	m.seq++
	j.seq = m.seq
	j.id = fmt.Sprintf("job-%d", m.seq)
	m.jobs[j.id] = j
	bus := m.openFeedLocked(j)
	m.enqueueLocked(j)
	m.counters.submitted++
	m.reg.Counter("p4served_jobs_submitted_total", "Jobs accepted into the queue.").Inc()
	st := j.statusLocked()
	rec := m.snapshotLocked(j)
	m.mu.Unlock()

	m.startJournal(j.id, bus, 0)
	bus.Publish(telemetry.Event{Kind: telemetry.KindJob, Name: string(StatePending)})
	m.persist(rec, nil)
	return st, nil
}

// admitLocked is the admission decision. Interactive jobs are bounded
// only by the hard queue capacity; bulk jobs additionally yield to the
// bulk queue share and to the overload detector, so a saturated service
// keeps serving interactive traffic. Callers hold m.mu.
func (m *Manager) admitLocked(j *job) error {
	total := len(m.qInt) + len(m.qBulk)
	if total >= m.cfg.QueueDepth {
		m.shedLocked("queue_full")
		return ErrQueueFull
	}
	if j.priority == PriorityBulk {
		bulkShare := m.cfg.QueueDepth / 2
		if bulkShare < 1 {
			bulkShare = 1
		}
		if len(m.qBulk) >= bulkShare {
			m.shedLocked("bulk_share")
			return ErrOverloaded
		}
		if m.overloadedLocked(time.Now()) {
			m.shedLocked("overload")
			return ErrOverloaded
		}
	}
	return nil
}

func (m *Manager) shedLocked(reason string) {
	m.counters.shed++
	m.reg.Counter("p4served_jobs_shed_total",
		"Submissions rejected with 429, by reason.", telemetry.L("reason", reason)).Inc()
}

// overloadedLocked predicts whether newly queued work would miss the
// overload deadline: either the oldest queued job has already waited
// longer, or the drain-time estimate (EWMA job latency × queue length ÷
// workers) exceeds it. Callers hold m.mu.
func (m *Manager) overloadedLocked(now time.Time) bool {
	d := m.cfg.OverloadDeadline
	if d <= 0 {
		return false
	}
	var oldest time.Time
	if len(m.qInt) > 0 {
		oldest = m.qInt[0].enqueued
	}
	if len(m.qBulk) > 0 && (oldest.IsZero() || m.qBulk[0].enqueued.Before(oldest)) {
		oldest = m.qBulk[0].enqueued
	}
	if !oldest.IsZero() && now.Sub(oldest) > d {
		return true
	}
	if m.ewmaSec > 0 {
		queued := len(m.qInt) + len(m.qBulk)
		est := m.ewmaSec * float64(queued+1) / float64(m.cfg.Workers)
		if est > d.Seconds() {
			return true
		}
	}
	return false
}

// enqueueLocked appends to the class queue and wakes one worker. Callers
// hold m.mu.
func (m *Manager) enqueueLocked(j *job) {
	if j.priority == PriorityBulk {
		m.qBulk = append(m.qBulk, j)
	} else {
		m.qInt = append(m.qInt, j)
	}
	m.qCond.Signal()
}

// snapshotLocked bumps the job's durable revision and renders the full
// record, or nil without a store. Callers hold m.mu (writing the record
// happens outside it — see persist).
func (m *Manager) snapshotLocked(j *job) *store.Job {
	if m.cfg.Store == nil {
		return nil
	}
	j.rev++
	return &store.Job{
		ID: j.id, Seq: j.seq, Rev: j.rev,
		Request: j.reqJSON, Priority: j.priority,
		State: string(j.state), Error: j.err,
		Verdict: j.verdict, Violations: j.violations,
		CacheHit: j.cacheHit, Technique: j.technique,
		EnqueuedAt: j.enqueued, StartedAt: j.started, FinishedAt: j.finished,
		Report: j.reportData,
	}
}

// persist writes a record and retention drops to the store, outside
// m.mu — an fsync must never block the job table. Store failures degrade
// durability, never the job: the error is counted and the store itself
// flips to degraded mode (visible in Stats).
func (m *Manager) persist(rec *store.Job, evicted []string) {
	if m.cfg.Store == nil {
		return
	}
	if rec != nil {
		if err := m.cfg.Store.Put(rec); err != nil {
			m.reg.Counter("p4served_store_errors_total",
				"Durable-store writes that failed (service continues in memory).").Inc()
		}
	}
	for _, id := range evicted {
		m.cfg.Store.Drop(id)
	}
}

// Get returns a job's status.
func (m *Manager) Get(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.statusLocked(), nil
}

// Report returns a done job's serialized core.Report.
func (m *Manager) Report(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.state != StateDone {
		if j.state.Terminal() {
			return nil, fmt.Errorf("%w: job %s %s (%s)", ErrNotFinished, id, j.state, j.err)
		}
		return nil, fmt.Errorf("%w: job %s is %s", ErrNotFinished, id, j.state)
	}
	return j.reportData, nil
}

// Cancel stops a job: a pending job is marked cancelled in place (the
// worker that eventually pops it skips it), a running job has its context
// cancelled. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrUnknownJob
	}
	var rec *store.Job
	var evicted []string
	var bus *telemetry.Bus
	switch j.state {
	case StatePending:
		j.state = StateCancelled
		j.finished = time.Now()
		m.counters.cancelled++
		m.reg.Counter("p4served_jobs_cancelled_total", "Jobs cancelled by the client or shutdown.").Inc()
		bus = m.feeds[j.id]
		evicted = m.retireLocked(j)
		rec = m.snapshotLocked(j)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	m.mu.Unlock()
	m.closeFeed(j, bus)
	m.persist(rec, evicted)
	return nil
}

// Shutdown drains the service: no new submissions are accepted, queued
// jobs run to completion, and the call returns when every worker has
// exited. If ctx expires first, all queued and running jobs are cancelled
// and the drain completes with ctx's error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.qCond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Every job is terminal, so every feed has closed; wait for the
		// journal consumers' final batches to land in the store.
		m.journalWG.Wait()
		return nil
	case <-ctx.Done():
	}

	// Forced drain: cancel everything still alive, then wait for the
	// workers to observe the cancellations.
	m.mu.Lock()
	var recs []*store.Job
	var drained []*job
	for _, j := range m.jobs {
		switch j.state {
		case StatePending:
			j.state = StateCancelled
			j.finished = time.Now()
			m.counters.cancelled++
			m.reg.Counter("p4served_jobs_cancelled_total", "Jobs cancelled by the client or shutdown.").Inc()
			recs = append(recs, m.snapshotLocked(j))
			drained = append(drained, j)
		case StateRunning:
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
	m.qCond.Broadcast()
	m.mu.Unlock()
	for _, j := range drained {
		m.closeFeed(j, m.Feed(j.id))
	}
	for _, rec := range recs {
		m.persist(rec, nil)
	}
	<-done
	m.journalWG.Wait()
	return ctx.Err()
}

// Stats snapshots the service counters.
func (m *Manager) Stats() StatsResponse {
	m.mu.Lock()
	s := StatsResponse{
		QueueDepth:       len(m.qInt) + len(m.qBulk),
		QueueCapacity:    m.cfg.QueueDepth,
		QueueInteractive: len(m.qInt),
		QueueBulk:        len(m.qBulk),
		Workers:          m.cfg.Workers,
		Running:          m.running,
		Overloaded:       m.overloadedLocked(time.Now()),
		Submitted:        m.counters.submitted,
		Done:             m.counters.done,
		Failed:           m.counters.failed,
		Cancelled:        m.counters.cancelled,
		CacheHits:        m.counters.cacheHits,
		Shed:             m.counters.shed,
		Recovered:        m.counters.recovered,
	}
	m.mu.Unlock()
	if m.cfg.Store != nil {
		st := m.cfg.Store.Stats()
		s.Store = &st
	}
	if m.cfg.Cache != nil {
		s.Cache = wireCacheStats(m.cfg.Cache.Stats())
	}
	if m.cfg.SubCache != nil {
		s.SubmodelCache = wireCacheStats(m.cfg.SubCache.Stats())
	}
	m.histMu.Lock()
	if len(m.hist) > 0 {
		s.Techniques = make(map[string]HistogramSnapshot, len(m.hist))
		for label, h := range m.hist {
			s.Techniques[label] = h.Snapshot()
		}
	}
	m.histMu.Unlock()
	return s
}

// wireCacheStats converts a vcache counter snapshot to the wire form.
func wireCacheStats(cs vcache.Stats) CacheStats {
	return CacheStats{
		Enabled:    true,
		Hits:       cs.Hits,
		Misses:     cs.Misses,
		MemHits:    cs.MemHits,
		DiskHits:   cs.DiskHits,
		Evictions:  cs.Evictions,
		Corrupt:    cs.Corrupt,
		Entries:    cs.Entries,
		MaxEntries: cs.MaxEntries,
		DiskTier:   cs.DiskTier,
	}
}

// worker pops jobs — interactive before bulk — until Shutdown closes the
// manager and the queues drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.closed && len(m.qInt) == 0 && len(m.qBulk) == 0 {
			m.qCond.Wait()
		}
		var j *job
		switch {
		case len(m.qInt) > 0:
			j = m.qInt[0]
			m.qInt = m.qInt[1:]
		case len(m.qBulk) > 0:
			j = m.qBulk[0]
			m.qBulk = m.qBulk[1:]
		default: // closed and empty
			m.mu.Unlock()
			return
		}
		m.mu.Unlock()
		m.runJob(j)
	}
}

// runJob drives one job through its lifecycle.
func (m *Manager) runJob(j *job) {
	base := context.Background()
	ctx, cancel := context.WithCancel(base)
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(base, m.cfg.JobTimeout)
	}
	defer cancel()

	m.mu.Lock()
	if j.state != StatePending {
		// Cancelled while queued.
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	m.running++
	bus := m.feeds[j.id]
	rec := m.snapshotLocked(j)
	m.mu.Unlock()
	m.persist(rec, nil)

	// The job's trace publishes onto its feed: every pipeline span the
	// run records becomes a live progress event. The root "job" span
	// carries the request correlation ID; core's stage and lane spans
	// nest under it through ctx.
	if bus != nil {
		bus.Publish(telemetry.Event{Kind: telemetry.KindJob, Name: string(StateRunning)})
	}
	tr := telemetry.NewTrace()
	tr.AttachBus(bus)
	ctx = telemetry.WithTrace(ctx, tr)
	var root *telemetry.Span
	ctx, root = telemetry.StartSpan(ctx, "job")
	if j.req.RequestID != "" {
		root.SetTag("request_id", j.req.RequestID)
	}
	m.mu.Lock()
	j.root = root
	m.mu.Unlock()

	// Cache lookup first: a hit finishes the job without touching the
	// executor (no new metrics, near-zero latency).
	if m.cfg.Cache != nil {
		if data, ok := m.cfg.Cache.GetBytes(j.key); ok {
			m.finish(j, data, true, nil)
			return
		}
	}

	if j.diff {
		m.runDiffJob(ctx, j)
		return
	}

	// Parallel jobs run through the incremental engine whenever the
	// submodel tier exists: every run memoizes its per-submodel verdicts,
	// so a later edit (base_job) — or any job sharing submodel content —
	// replays them instead of re-exploring. The report is byte-identical
	// (modulo wall-clock fields) to a cold parallel run.
	// When a cluster coordinator is attached, parallel jobs' submodel
	// executions dispatch through it instead of the local pool; the
	// report bytes are identical either way (the executor boundary only
	// moves where a submodel runs, never what it computes).
	var rep *core.Report
	var err error
	switch {
	case m.cfg.SubCache != nil && j.opts.Parallel > 0 && m.coord != nil:
		var man *incr.Manifest
		rep, man, err = core.VerifyIncrementalSourceExec(ctx, j.req.Filename, j.baseSource, j.req.Source, j.opts, m.cfg.SubCache, m.coord)
		if man != nil {
			m.mu.Lock()
			j.subReused, j.subExecuted = man.Reused, man.Executed
			m.mu.Unlock()
		}
	case m.cfg.SubCache != nil && j.opts.Parallel > 0:
		var man *incr.Manifest
		rep, man, err = core.VerifyIncrementalSource(ctx, j.req.Filename, j.baseSource, j.req.Source, j.opts, m.cfg.SubCache)
		if man != nil {
			m.mu.Lock()
			j.subReused, j.subExecuted = man.Reused, man.Executed
			m.mu.Unlock()
		}
	case j.opts.Parallel > 0 && m.coord != nil:
		rep, err = core.VerifySourceExec(ctx, j.req.Filename, j.req.Source, j.opts, m.coord)
	default:
		rep, err = core.VerifySourceCtx(ctx, j.req.Filename, j.req.Source, j.opts)
	}
	if err != nil {
		m.finish(j, nil, false, err)
		return
	}
	data, err := json.Marshal(rep)
	if err != nil {
		m.finish(j, nil, false, err)
		return
	}
	// Exhausted reports depend on how far a budget-bounded run happened
	// to get; they are not content-determined, so they are not cached.
	if m.cfg.Cache != nil && !rep.Exhausted {
		m.cfg.Cache.PutBytes(j.key, data)
	}
	m.recordReportMetrics(j, rep)
	m.finish(j, data, false, nil)
}

// runDiffJob executes a version-equivalence job through the product
// program engine (internal/equiv) and stores the serialized equiv.Report.
func (m *Manager) runDiffJob(ctx context.Context, j *job) {
	m.reg.Counter("p4served_diff_jobs_total", "Differential (version-equivalence) jobs executed.").Inc()
	rep, err := equiv.Diff(ctx, j.req.Filename, j.req.Source, j.req.FilenameB, j.req.SourceB, j.eopts)
	if err != nil {
		m.finish(j, nil, false, err)
		return
	}
	data, err := json.Marshal(rep)
	if err != nil {
		m.finish(j, nil, false, err)
		return
	}
	if len(rep.Divergences) > 0 {
		m.reg.Counter("p4served_diff_divergent_total", "Diff jobs that found at least one behavioral divergence.").Inc()
	}
	// Same caching rule as verify jobs: budget-truncated (Exhausted)
	// verdicts depend on how far the run happened to get and are not
	// content-determined, so they are never cached.
	if m.cfg.Cache != nil && !rep.Exhausted {
		m.cfg.Cache.PutBytes(j.key, data)
	}
	m.finish(j, data, false, nil)
}

// finish moves a running job to its terminal state.
func (m *Manager) finish(j *job, data []byte, cacheHit bool, err error) {
	now := time.Now()

	m.mu.Lock()
	m.running--
	j.cancel = nil
	j.finished = now
	switch {
	case err == nil:
		j.state = StateDone
		j.cacheHit = cacheHit
		j.reportData = data
		j.verdict, j.violations = summarize(data, j.diff)
		m.counters.done++
		if cacheHit {
			m.counters.cacheHits++
		} else {
			m.observe(j.technique, now.Sub(j.started))
			// Feed the overload detector's drain-time estimate.
			sec := now.Sub(j.started).Seconds()
			if m.ewmaSec == 0 {
				m.ewmaSec = sec
			} else {
				m.ewmaSec = 0.8*m.ewmaSec + 0.2*sec
			}
		}
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = "cancelled"
		m.counters.cancelled++
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.err = fmt.Sprintf("job timeout (%s) exceeded", m.cfg.JobTimeout)
		m.counters.failed++
	default:
		j.state = StateFailed
		j.err = err.Error()
		m.counters.failed++
	}
	m.recordJobMetrics(j, j.state, cacheHit, now.Sub(j.started))
	root := j.root
	j.root = nil
	bus := m.feeds[j.id]
	evicted := m.retireLocked(j)
	rec := m.snapshotLocked(j)
	m.mu.Unlock()

	if root != nil {
		if cacheHit {
			root.MarkCached()
		}
		root.End()
	}
	m.closeFeed(j, bus)
	m.persist(rec, evicted)
}

// retireLocked enters a finished job into the retention ring, forgetting
// the oldest finished jobs beyond the bound, and returns the forgotten
// IDs for the durable store's matching drop. Callers hold m.mu.
func (m *Manager) retireLocked(j *job) []string {
	m.order = append(m.order, j.id)
	return m.evictLocked()
}

// evictLocked forgets finished jobs beyond the retention bound — job
// table entry and event feed both. Callers hold m.mu.
func (m *Manager) evictLocked() []string {
	var evicted []string
	for len(m.order) > m.cfg.RetainJobs {
		id := m.order[0]
		delete(m.jobs, id)
		if bus := m.feeds[id]; bus != nil {
			bus.Close()
			delete(m.feeds, id)
		}
		evicted = append(evicted, id)
		m.order = m.order[1:]
	}
	return evicted
}

func (m *Manager) observe(label string, d time.Duration) {
	m.histMu.Lock()
	h, ok := m.hist[label]
	if !ok {
		h = &Histogram{}
		m.hist[label] = h
	}
	m.histMu.Unlock()
	h.Observe(d)
}

// summarize extracts the verdict line of a serialized report: a
// core.Report for verify jobs, an equiv.Report for diff jobs.
func summarize(data []byte, diff bool) (string, int) {
	if diff {
		var rep equiv.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return "", 0
		}
		switch {
		case len(rep.Divergences) > 0:
			return "divergent", len(rep.Divergences)
		case rep.Exhausted:
			return "exhausted", 0
		default:
			return "equivalent", 0
		}
	}
	var rep core.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return "", 0
	}
	switch {
	case rep.Exhausted:
		return "exhausted", len(rep.Violations)
	case len(rep.Violations) > 0:
		return "violations", len(rep.Violations)
	default:
		return "ok", 0
	}
}

// statusLocked renders a job's status. Callers hold Manager.mu.
func (j *job) statusLocked() JobStatus {
	s := JobStatus{
		ID:         j.id,
		State:      j.state,
		Error:      j.err,
		CacheHit:   j.cacheHit,
		Technique:  j.technique,
		Priority:   j.priority,
		Verdict:    j.verdict,
		Violations: j.violations,
		EnqueuedAt: j.enqueued,

		SubmodelsReused:   j.subReused,
		SubmodelsExecuted: j.subExecuted,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}
