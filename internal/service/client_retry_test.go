package service

// Client retry semantics: transient failures (connection errors, 429,
// 5xx) are retried with backoff; deterministic client errors are not;
// context cancellation cuts the backoff short.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer fails the first n requests with status code, then serves
// a 202 JobStatus (POST) or 200 (GET).
func flakyServer(failures int, code int) (*httptest.Server, *atomic.Int64) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= int64(failures) {
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(errorResponse{Error: "injected"})
			return
		}
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
		}
		json.NewEncoder(w).Encode(JobStatus{ID: "job-1", State: StatePending})
	}))
	return srv, &attempts
}

func fastClient(base string) *Client {
	return &Client{Base: base, RetryBase: time.Millisecond}
}

// TestRetrySubmitAfter429: load shedding is transient — Submit rides it
// out.
func TestRetrySubmitAfter429(t *testing.T) {
	srv, attempts := flakyServer(2, http.StatusTooManyRequests)
	defer srv.Close()
	st, err := fastClient(srv.URL).Submit(context.Background(), JobRequest{Source: "x"})
	if err != nil {
		t.Fatalf("submit through 429s: %v", err)
	}
	if st.ID != "job-1" || attempts.Load() != 3 {
		t.Fatalf("st=%+v attempts=%d, want job-1 after 3 attempts", st, attempts.Load())
	}
}

// TestRetryAfter5xx: server-side transience (a restarting daemon behind
// a proxy answers 502/503) retries too, on GETs as well.
func TestRetryAfter5xx(t *testing.T) {
	srv, attempts := flakyServer(1, http.StatusServiceUnavailable)
	defer srv.Close()
	if _, err := fastClient(srv.URL).Status(context.Background(), "job-1"); err != nil {
		t.Fatalf("status through 503: %v", err)
	}
	if attempts.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", attempts.Load())
	}
}

// TestRetryConnectionError: a connection-refused (daemon mid-restart)
// retries until the listener is back.
func TestRetryConnectionError(t *testing.T) {
	srv, _ := flakyServer(0, 0)
	base := srv.URL
	srv.Close() // now refusing connections

	c := &Client{Base: base, RetryBase: time.Millisecond, MaxRetries: 2}
	start := time.Now()
	_, err := c.Status(context.Background(), "job-1")
	if err == nil {
		t.Fatal("dead server answered")
	}
	// 2 retries → at least 2 backoff sleeps happened (≥1ms each, bounded
	// test just checks it didn't bail instantly on the first dial error).
	if time.Since(start) < time.Millisecond {
		t.Fatal("no backoff before giving up")
	}
}

// TestNoRetryOnClientError: a 400 is deterministic; exactly one attempt.
func TestNoRetryOnClientError(t *testing.T) {
	srv, attempts := flakyServer(1000, http.StatusBadRequest)
	defer srv.Close()
	_, err := fastClient(srv.URL).Submit(context.Background(), JobRequest{Source: "x"})
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("err = %v, want the server's message", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on 4xx)", attempts.Load())
	}
}

// TestRetriesDisabled: negative MaxRetries surfaces the first transient
// failure.
func TestRetriesDisabled(t *testing.T) {
	srv, attempts := flakyServer(1000, http.StatusTooManyRequests)
	defer srv.Close()
	c := &Client{Base: srv.URL, MaxRetries: -1}
	if _, err := c.Submit(context.Background(), JobRequest{Source: "x"}); err == nil {
		t.Fatal("want error with retries disabled")
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1", attempts.Load())
	}
}

// TestRetryHonorsContext: cancellation interrupts the backoff sleep
// instead of waiting it out.
func TestRetryHonorsContext(t *testing.T) {
	srv, _ := flakyServer(1000, http.StatusServiceUnavailable)
	defer srv.Close()
	c := &Client{Base: srv.URL, RetryBase: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Status(ctx, "job-1")
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("backoff ignored context cancellation")
	}
}
