package service

// The kill-and-recover drill: a real p4served process, a real WAL on a
// real filesystem, and a real SIGKILL mid-corpus. The in-process
// durability tests (durability_test.go) can only simulate a crash by
// abandoning a manager; this one proves the whole stack — daemon flags,
// store fsync path, restart recovery, HTTP surface — survives the signal
// the kernel actually sends.

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildServed compiles the daemon once per test binary.
func buildServed(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "p4served")
	cmd := exec.Command("go", "build", "-o", bin, "p4assert/cmd/p4served")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build p4served: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startServed launches the daemon against the given store dir and waits
// for it to answer healthz.
func startServed(t *testing.T, bin, addr, storeDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-store-dir", storeDir,
		"-workers", "1",
		"-queue", "64",
		"-cache-entries", "0", // every run executes: recovery is what's under test
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("daemon did not become healthy")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestKillAndRecover is the acceptance drill: SIGKILL a p4served with
// done, running and queued jobs in its WAL; restart it on the same
// store; every finished report must come back byte-identical, and the
// interrupted jobs must re-run to completion under their original IDs
// and priority classes.
func TestKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real p4served")
	}
	bin := buildServed(t)
	storeDir := t.TempDir()
	addr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	cmd := startServed(t, bin, addr, storeDir)
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	c := &Client{Base: "http://" + addr, RetryBase: 10 * time.Millisecond}

	// Phase 1: run part of the corpus to completion and keep the exact
	// report bytes the daemon served.
	reports := map[string][]byte{}
	for _, name := range []string{"vss", "switchlite"} {
		st, err := c.Submit(ctx, corpusRequest(t, name))
		if err != nil {
			t.Fatal(err)
		}
		if st, err = c.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("corpus job %s: %s (%s)", st.ID, st.State, st.Error)
		}
		data, err := c.RawReport(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		reports[st.ID] = data
	}

	// Phase 2: occupy the single worker with a slow job and queue a bulk
	// one behind it, so the kill lands with one running and one pending
	// record in the WAL.
	slow, err := c.Submit(ctx, JobRequest{Filename: "slow.p4", Source: slowSource()})
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err := c.Status(ctx, slow.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("slow job finished before the kill: %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	bulk := corpusRequest(t, "vss")
	bulk.Priority = PriorityBulk
	queued, err := c.Submit(ctx, bulk)
	if err != nil {
		t.Fatal(err)
	}

	// The kill. No drain, no flush, no goodbye.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	// Phase 3: restart on the same store and verify the ledger.
	cmd2 := startServed(t, bin, addr, storeDir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()

	for id, want := range reports {
		st, err := c.Status(ctx, id)
		if err != nil {
			t.Fatalf("job %s lost across SIGKILL: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s recovered as %s, want done", id, st.State)
		}
		got, err := c.RawReport(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("job %s: recovered report differs from the one served before the kill", id)
		}
	}
	for _, id := range []string{slow.ID, queued.ID} {
		st, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("interrupted job %s after recovery: %s (%s)", id, st.State, st.Error)
		}
	}
	if st, err := c.Status(ctx, queued.ID); err != nil || st.Priority != PriorityBulk {
		t.Fatalf("recovered job lost its class: %+v (%v)", st, err)
	}
}
