package service

// Durability and admission-control tests: WAL-backed restart recovery,
// priority classes, overload shedding, and graceful degradation when the
// store fails. The true kill-and-recover drill (SIGKILL of a real
// p4served) lives in crash_test.go; these tests cover the same machinery
// in-process.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"p4assert/internal/failpoint"
	"p4assert/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRestartRestoresHistory: finished jobs survive a clean
// restart with byte-identical report bytes, and the ID sequence
// continues without collisions.
func TestRestartRestoresHistory(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	m1 := New(Config{Workers: 2, Store: st1})

	req := corpusRequest(t, "vss")
	var ids []string
	reports := map[string][]byte{}
	for i := 0; i < 3; i++ {
		s, err := m1.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	for _, id := range ids {
		if got := waitTerminal(t, m1, id); got.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, got.State, got.Error)
		}
		data, err := m1.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		reports[id] = data
	}
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	m2 := New(Config{Workers: 2, Store: st2})
	defer m2.Shutdown(context.Background())

	if got := m2.Recovered(); got != 0 {
		t.Fatalf("Recovered = %d after clean shutdown, want 0", got)
	}
	for _, id := range ids {
		s, err := m2.Get(id)
		if err != nil {
			t.Fatalf("job %s lost across restart: %v", id, err)
		}
		if s.State != StateDone || s.Verdict == "" {
			t.Fatalf("job %s restored as %s verdict %q", id, s.State, s.Verdict)
		}
		data, err := m2.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, reports[id]) {
			t.Fatalf("job %s report bytes changed across restart", id)
		}
	}
	// The restored sequence must not mint colliding IDs.
	s, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if s.ID == id {
			t.Fatalf("new job reused recovered ID %s", id)
		}
	}
	waitTerminal(t, m2, s.ID)
}

// TestRestartResubmitsInterrupted: jobs that were pending or running at
// crash time re-enter the queue on restart — same IDs, same class — and
// run to completion.
func TestRestartResubmitsInterrupted(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	m1 := New(Config{Workers: 1, QueueDepth: 8, Store: st1})

	blocker, err := m1.Submit(JobRequest{Filename: "slow.p4", Source: slowSource()})
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, _ := m1.Get(blocker.ID)
		if cur.State == StateRunning {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("blocker finished early: %s", cur.State)
		}
		time.Sleep(time.Millisecond)
	}
	req := corpusRequest(t, "vss")
	req.Priority = PriorityBulk
	queued, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: abandon m1 without Shutdown. Closing the store models the
	// process dying with a running and a pending record in the WAL (m1's
	// still-live workers just get errClosed on their next persist).
	st1.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	m2 := New(Config{Workers: 2, QueueDepth: 8, Store: st2})
	defer m2.Shutdown(context.Background())

	if got := m2.Recovered(); got != 2 {
		t.Fatalf("Recovered = %d, want 2 (running blocker + pending job)", got)
	}
	for _, id := range []string{blocker.ID, queued.ID} {
		if got := waitTerminal(t, m2, id); got.State != StateDone {
			t.Fatalf("recovered job %s: %s (%s)", id, got.State, got.Error)
		}
	}
	if s, _ := m2.Get(queued.ID); s.Priority != PriorityBulk {
		t.Fatalf("recovered job lost its class: %q", s.Priority)
	}
}

// TestRestartFailsUnrecoverable: an interrupted job whose record no
// longer validates fails visibly instead of vanishing.
func TestRestartFailsUnrecoverable(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	if err := st1.Put(&store.Job{
		ID: "job-1", Seq: 1, Rev: 1, State: store.StatePending,
		Request:    json.RawMessage(`"not a request object"`),
		EnqueuedAt: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	m := New(Config{Workers: 1, Store: st2})
	defer m.Shutdown(context.Background())

	s, err := m.Get("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if s.State != StateFailed || s.Error == "" {
		t.Fatalf("unrecoverable job restored as %s (%q), want failed with reason", s.State, s.Error)
	}
}

// TestBulkShedInteractiveServed is the overload contract: with the
// service saturated, bulk submissions get 429-class errors while
// interactive ones are admitted and complete.
func TestBulkShedInteractiveServed(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 8})
	defer m.Shutdown(context.Background())

	blocker, err := m.Submit(JobRequest{Filename: "slow.p4", Source: slowSource()})
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, _ := m.Get(blocker.ID)
		if cur.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}

	req := corpusRequest(t, "vss")
	bulk := req
	bulk.Priority = PriorityBulk

	// The bulk share is QueueDepth/2 = 4: four bulk jobs queue, the fifth
	// sheds.
	for i := 0; i < 4; i++ {
		if _, err := m.Submit(bulk); err != nil {
			t.Fatalf("bulk %d within share rejected: %v", i, err)
		}
	}
	if _, err := m.Submit(bulk); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("bulk beyond share = %v, want ErrOverloaded", err)
	}

	// Interactive submissions keep landing up to the hard bound...
	var lastInteractive JobStatus
	for i := 0; i < 4; i++ {
		s, err := m.Submit(req)
		if err != nil {
			t.Fatalf("interactive %d rejected while shedding bulk: %v", i, err)
		}
		lastInteractive = s
	}
	// ...and only the hard bound rejects them.
	if _, err := m.Submit(req); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("interactive beyond capacity = %v, want ErrQueueFull", err)
	}

	if s := m.Stats(); s.Shed < 2 || s.QueueBulk != 4 || s.QueueInteractive != 4 {
		t.Fatalf("stats during overload: shed=%d int=%d bulk=%d", s.Shed, s.QueueInteractive, s.QueueBulk)
	}

	// The shed bulk work never blocks interactive completion.
	if got := waitTerminal(t, m, lastInteractive.ID); got.State != StateDone {
		t.Fatalf("interactive job under overload: %s (%s)", got.State, got.Error)
	}
}

// TestInteractiveRunsBeforeBulk: with one worker and both classes queued,
// the interactive job starts first even though it was submitted last.
func TestInteractiveRunsBeforeBulk(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 8})
	defer m.Shutdown(context.Background())

	blocker, err := m.Submit(JobRequest{Filename: "slow.p4", Source: slowSource()})
	if err != nil {
		t.Fatal(err)
	}
	req := corpusRequest(t, "vss")
	bulkReq := req
	bulkReq.Priority = PriorityBulk
	b, err := m.Submit(bulkReq)
	if err != nil {
		t.Fatal(err)
	}
	i, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	waitTerminal(t, m, blocker.ID)
	bs := waitTerminal(t, m, b.ID)
	is := waitTerminal(t, m, i.ID)
	if bs.StartedAt == nil || is.StartedAt == nil {
		t.Fatal("missing start timestamps")
	}
	if !is.StartedAt.Before(*bs.StartedAt) {
		t.Fatalf("bulk started %v before interactive %v", bs.StartedAt, is.StartedAt)
	}
}

// TestOverloadDetectorAge: once the oldest queued job has waited past the
// overload deadline, bulk submissions shed even with queue room.
func TestOverloadDetectorAge(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 64, OverloadDeadline: 50 * time.Millisecond})
	defer m.Shutdown(context.Background())

	if _, err := m.Submit(JobRequest{Filename: "slow.p4", Source: slowSource()}); err != nil {
		t.Fatal(err)
	}
	req := corpusRequest(t, "vss")
	if _, err := m.Submit(req); err != nil { // queued behind the blocker
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // head-of-line job now older than the deadline

	bulk := req
	bulk.Priority = PriorityBulk
	if _, err := m.Submit(bulk); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("bulk under aged queue = %v, want ErrOverloaded", err)
	}
	if !m.Stats().Overloaded {
		t.Fatal("Stats().Overloaded = false while shedding")
	}
	if _, err := m.Submit(req); err != nil {
		t.Fatalf("interactive rejected by overload detector: %v", err)
	}
}

// TestDegradedStoreKeepsServing: a WAL failure stops persistence but
// never fails jobs — the service degrades to in-memory operation and
// says so in Stats.
func TestDegradedStoreKeepsServing(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{}) // sync on: the fsync site is live
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := New(Config{Workers: 1, Store: st})
	defer m.Shutdown(context.Background())

	if err := failpoint.Arm(store.FailpointFsync, "times(1):error"); err != nil {
		t.Fatal(err)
	}
	s, err := m.Submit(corpusRequest(t, "vss"))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, s.ID); got.State != StateDone {
		t.Fatalf("job with failed persistence: %s (%s)", got.State, got.Error)
	}
	if _, err := m.Report(s.ID); err != nil {
		t.Fatalf("report unavailable despite in-memory completion: %v", err)
	}
	stats := m.Stats()
	if stats.Store == nil || !stats.Store.Degraded {
		t.Fatal("degraded store not surfaced in stats")
	}
	// And the service still accepts work.
	s2, err := m.Submit(corpusRequest(t, "vss"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, s2.ID)
}
