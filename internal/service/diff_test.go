package service

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"p4assert/internal/equiv"
	"p4assert/internal/vcache"
)

// diffSource is a small pipeline with a parameterized egress port, used to
// build equivalent and divergent version pairs for diff jobs.
func diffSource(egress string) string {
	return `
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> srcAddr; bit<32> dstAddr; }
struct headers_t { ethernet_t ethernet; ipv4_t ipv4; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x0800: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ingress(inout headers_t hdr, inout meta_t meta,
                inout standard_metadata_t standard_metadata) {
    action drop() {
        mark_to_drop(standard_metadata);
    }
    action set_dmac(bit<48> dmac) {
        hdr.ethernet.dstAddr = dmac;
        standard_metadata.egress_spec = ` + egress + `;
    }
    table dmac {
        key = { hdr.ipv4.dstAddr : exact; }
        actions = { drop; set_dmac; }
        default_action = drop();
    }
    apply {
        if (hdr.ipv4.ttl == 0) { drop(); } else { dmac.apply(); }
        @assert("if(forward(), hdr.ipv4.ttl > 0)");
    }
}

control Deparser(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.ethernet); pkt.emit(hdr.ipv4); }
}

V1Switch(P, Ingress, Deparser) main;
`
}

func diffRequest(egressA, egressB string) JobRequest {
	return JobRequest{
		Mode:      ModeDiff,
		Filename:  "a.p4",
		Source:    diffSource(egressA),
		FilenameB: "b.p4",
		SourceB:   diffSource(egressB),
	}
}

// TestDiffJobEquivalent runs a self-diff through the service and checks
// the served equiv.Report and the status summary agree with an in-process
// equiv.Diff run.
func TestDiffJobEquivalent(t *testing.T) {
	m := New(Config{Workers: 2})
	defer m.Shutdown(context.Background())

	req := diffRequest("1", "1")
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job %s: state %s (%s)", st.ID, st.State, st.Error)
	}
	if st.Technique != "diff:original" {
		t.Fatalf("technique = %q, want diff:original", st.Technique)
	}
	if st.Verdict != "equivalent" || st.Violations != 0 {
		t.Fatalf("status summary %q/%d, want equivalent/0", st.Verdict, st.Violations)
	}
	data, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var served equiv.Report
	if err := json.Unmarshal(data, &served); err != nil {
		t.Fatal(err)
	}
	if !served.Equivalent || served.Exhausted {
		t.Fatalf("served report: %+v", served)
	}

	eopts, err := req.Options.EquivOptions(req.Rules, req.RulesB)
	if err != nil {
		t.Fatal(err)
	}
	local, err := equiv.Diff(context.Background(), req.Filename, req.Source,
		req.FilenameB, req.SourceB, eopts)
	if err != nil {
		t.Fatal(err)
	}
	if local.Equivalent != served.Equivalent || len(local.Divergences) != len(served.Divergences) {
		t.Fatalf("served verdict differs from in-process run: local %+v, served %+v",
			local, served)
	}
}

// TestDiffJobDivergent checks a changed egress port is reported as
// divergent with a replay-confirmed counterexample packet.
func TestDiffJobDivergent(t *testing.T) {
	m := New(Config{Workers: 2})
	defer m.Shutdown(context.Background())

	st, err := m.Submit(diffRequest("1", "2"))
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job %s: state %s (%s)", st.ID, st.State, st.Error)
	}
	if st.Verdict != "divergent" || st.Violations == 0 {
		t.Fatalf("status summary %q/%d, want divergent/>0", st.Verdict, st.Violations)
	}
	data, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var rep equiv.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent || len(rep.Divergences) == 0 {
		t.Fatalf("report: %+v", rep)
	}
	confirmed := false
	for _, d := range rep.Divergences {
		if d.Confirmed && len(d.Inputs) > 0 {
			confirmed = true
		}
	}
	if !confirmed {
		t.Fatalf("no replay-confirmed counterexample packet in %+v", rep.Divergences)
	}
}

// TestDiffJobCacheHit checks diff results are cached under their own key
// family: a resubmission hits, and a verify job over side A's source does
// not collide with the diff entry.
func TestDiffJobCacheHit(t *testing.T) {
	cache, err := vcache.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 2, Cache: cache})
	defer m.Shutdown(context.Background())

	req := diffRequest("1", "1")
	first, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if first = waitTerminal(t, m, first.ID); first.State != StateDone || first.CacheHit {
		t.Fatalf("first run: state %s cacheHit %v (%s)", first.State, first.CacheHit, first.Error)
	}
	firstReport, err := m.Report(first.ID)
	if err != nil {
		t.Fatal(err)
	}

	second, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if second = waitTerminal(t, m, second.ID); second.State != StateDone || !second.CacheHit {
		t.Fatalf("resubmission: state %s cacheHit %v (%s)", second.State, second.CacheHit, second.Error)
	}
	if second.Verdict != "equivalent" {
		t.Fatalf("cached verdict = %q, want equivalent", second.Verdict)
	}
	secondReport, err := m.Report(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstReport, secondReport) {
		t.Fatal("cached diff report is not byte-identical to the live one")
	}

	// A verify job over the same (side A) source lives in a different key
	// family and must not be served the diff entry.
	verify, err := m.Submit(JobRequest{Filename: "a.p4", Source: req.Source})
	if err != nil {
		t.Fatal(err)
	}
	if verify = waitTerminal(t, m, verify.ID); verify.State != StateDone || verify.CacheHit {
		t.Fatalf("verify job: state %s cacheHit %v (%s)", verify.State, verify.CacheHit, verify.Error)
	}
	if verify.Verdict != "ok" {
		t.Fatalf("verify verdict = %q, want ok", verify.Verdict)
	}
}

// TestDiffSubmitValidation rejects malformed diff requests without
// creating jobs.
func TestDiffSubmitValidation(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Shutdown(context.Background())

	src := diffSource("1")
	cases := []struct {
		name string
		req  JobRequest
		want string
	}{
		{"missing source_b", JobRequest{Mode: ModeDiff, Source: src}, "source_b"},
		{"base_job", JobRequest{Mode: ModeDiff, Source: src, SourceB: src, BaseJob: "job-1"}, "base_job"},
		{"bad rules_b", JobRequest{Mode: ModeDiff, Source: src, SourceB: src, RulesB: "one-token-only"}, "rules_b"},
		{"unknown mode", JobRequest{Mode: "fuzz", Source: src}, "unknown mode"},
	}
	for _, tc := range cases {
		_, err := m.Submit(tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if s := m.Stats(); s.Submitted != 0 {
		t.Errorf("validation failures counted as submissions: %+v", s)
	}
}

// TestDiffHTTPEndToEnd drives a diff job over real HTTP via Client.Diff.
func TestDiffHTTPEndToEnd(t *testing.T) {
	_, client, _ := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	rep, st, err := client.Diff(ctx, diffRequest("1", "2"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Verdict != "divergent" {
		t.Fatalf("verdict = %q, want divergent", st.Verdict)
	}
	if rep.Equivalent || len(rep.Divergences) == 0 {
		t.Fatalf("report: %+v", rep)
	}
}
