package service

// Prometheus exposition for the service: every Manager owns a
// telemetry.Registry fed by the job lifecycle (submission/terminal-state
// counters, per-technique job-latency histograms) and by each finished
// report's telemetry section (per-stage latency histograms, executor and
// solver work counters). Point-in-time figures (queue depth, running
// jobs, cache occupancy and hit counts) are refreshed from the live
// structures at scrape time.

import (
	"io"
	"runtime"
	"runtime/debug"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/telemetry"
	"p4assert/internal/vcache"
)

// Registry returns the manager's metric registry, for embedding into a
// larger exposition or inspecting in tests.
func (m *Manager) Registry() *telemetry.Registry { return m.reg }

// registerBuildInfo exposes p4served_build_info: a constant-1 gauge
// whose labels identify the running binary (the standard Prometheus
// build-metadata idiom — join on it instead of scraping versions).
func (m *Manager) registerBuildInfo() {
	revision := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	m.reg.Gauge("p4served_build_info",
		"Build metadata of the running daemon; the value is always 1.",
		telemetry.L("go_version", runtime.Version()),
		telemetry.L("revision", revision)).Set(1)
}

// WriteMetrics renders the registry in Prometheus text exposition format
// (the GET /v1/metrics body), refreshing the point-in-time gauges first.
func (m *Manager) WriteMetrics(w io.Writer) error {
	m.mu.Lock()
	qInt, qBulk := int64(len(m.qInt)), int64(len(m.qBulk))
	running := m.running
	overloaded := int64(0)
	if m.overloadedLocked(time.Now()) {
		overloaded = 1
	}
	m.mu.Unlock()
	m.reg.Gauge("p4served_queue_depth", "Jobs waiting in the queue, both classes.").Set(qInt + qBulk)
	m.reg.Gauge("p4served_queue_depth_class", "Jobs waiting, by admission class.",
		telemetry.L("class", PriorityInteractive)).Set(qInt)
	m.reg.Gauge("p4served_queue_depth_class", "Jobs waiting, by admission class.",
		telemetry.L("class", PriorityBulk)).Set(qBulk)
	m.reg.Gauge("p4served_overloaded", "1 while the overload detector is shedding bulk work.").Set(overloaded)
	m.reg.Gauge("p4served_jobs_running", "Jobs currently executing on the worker pool.").Set(running)
	m.reg.Gauge("p4served_workers", "Worker-pool size.").Set(int64(m.cfg.Workers))
	m.reg.Gauge("p4served_uptime_seconds", "Seconds since the service started.").
		Set(int64(time.Since(m.started).Seconds()))
	if m.cfg.Store != nil {
		st := m.cfg.Store.Stats()
		m.reg.Gauge("p4served_store_jobs", "Job records in the durable store.").Set(int64(st.Jobs))
		m.reg.Gauge("p4served_store_appends", "WAL records appended since start.").Set(st.Appends)
		m.reg.Gauge("p4served_store_wal_records", "Records in the current WAL generation.").Set(st.WALRecords)
		m.reg.Gauge("p4served_store_snapshots", "Snapshot compactions since start.").Set(st.Snapshots)
		degraded := int64(0)
		if st.Degraded {
			degraded = 1
		}
		m.reg.Gauge("p4served_store_degraded", "1 after a WAL write failure disabled persistence.").Set(degraded)
	}
	if m.cfg.Cache != nil {
		m.scrapeCache("report", m.cfg.Cache.Stats())
	}
	if m.cfg.SubCache != nil {
		m.scrapeCache("submodel", m.cfg.SubCache.Stats())
	}
	return m.reg.WritePrometheus(w)
}

// scrapeCache mirrors a vcache counter snapshot into per-tier gauges.
// The cache keeps its own authoritative counters; gauges set at scrape
// time avoid double-counting while still exposing the running totals.
func (m *Manager) scrapeCache(tier string, cs vcache.Stats) {
	l := telemetry.L("tier", tier)
	m.reg.Gauge("p4served_vcache_hits", "Result-cache hits since start, by tier.", l).Set(cs.Hits)
	m.reg.Gauge("p4served_vcache_misses", "Result-cache misses since start, by tier.", l).Set(cs.Misses)
	m.reg.Gauge("p4served_vcache_entries", "Live result-cache entries, by tier.", l).Set(int64(cs.Entries))
	m.reg.Gauge("p4served_vcache_evictions", "Result-cache LRU evictions since start, by tier.", l).Set(cs.Evictions)
	m.reg.Gauge("p4served_vcache_corrupt", "Corrupt disk entries quarantined since start, by tier.", l).Set(cs.Corrupt)
}

// recordJobMetrics feeds a job's terminal state into the registry.
// Called from finish (outside m.mu is not required; all instruments are
// internally synchronized).
func (m *Manager) recordJobMetrics(j *job, state JobState, cacheHit bool, latency time.Duration) {
	switch state {
	case StateDone:
		m.reg.Counter("p4served_jobs_done_total", "Jobs finished successfully.").Inc()
		if cacheHit {
			m.reg.Counter("p4served_cache_hits_total", "Jobs answered from the report cache.").Inc()
		} else {
			m.reg.Histogram("p4served_job_duration_seconds",
				"End-to-end job execution latency (cache hits excluded), by technique.",
				telemetry.L("technique", j.technique)).Observe(latency)
		}
	case StateFailed:
		m.reg.Counter("p4served_jobs_failed_total", "Jobs that ended in error or timeout.").Inc()
	case StateCancelled:
		m.reg.Counter("p4served_jobs_cancelled_total", "Jobs cancelled by the client or shutdown.").Inc()
	}
}

// recordReportMetrics feeds a fresh (non-cache-hit) report's telemetry
// section into the registry: stage latencies and work counters.
func (m *Manager) recordReportMetrics(j *job, rep *core.Report) {
	if rep == nil || rep.Telemetry == nil {
		return
	}
	for _, st := range rep.Telemetry.Stages {
		m.reg.Histogram("p4served_stage_duration_seconds",
			"Pipeline stage wall time, by stage.",
			telemetry.L("stage", st.Name)).Observe(time.Duration(st.DurationNS))
	}
	l := telemetry.L("technique", j.technique)
	add := func(name, help, key string) {
		m.reg.Counter(name, help, l).Add(rep.Telemetry.Counters[key])
	}
	add("p4served_paths_explored_total", "Completed symbolic execution paths, by technique.", "paths")
	add("p4served_states_forked_total", "Symbolic state forks, by technique.", "forks")
	add("p4served_instructions_total", "Model instructions interpreted, by technique.", "instructions")
	add("p4served_assert_checks_total", "Assertion checks evaluated, by technique.", "assert_checks")
	add("p4served_solver_queries_total", "Solver satisfiability queries, by technique.", "solver_queries")
	add("p4served_solver_full_total", "Queries that reached bit-blasting (layer 3), by technique.", "solver_full")
	add("p4served_bitblast_vars_total", "SAT variables allocated by bit-blasting, by technique.", "bitblast_vars")
	add("p4served_bitblast_clauses_total", "CNF clauses emitted by bit-blasting, by technique.", "bitblast_clauses")
	// The solver acceleration family. These come from the non-comparable
	// telemetry section: observability-only figures (cache state, race
	// winners, raw search effort) that never enter report equivalence.
	acc := func(name, help, key string) {
		m.reg.Counter(name, help, l).Add(rep.Telemetry.Solver[key])
	}
	acc("p4assert_solver_session_reuse_hits_total", "Conjunct circuits already live in an incremental solver session, by technique.", "session_reuse_hits")
	acc("p4assert_solver_memo_hits_total", "Queries answered by the normalized query memo, by technique.", "memo_hits")
	acc("p4assert_solver_memo_shared_hits_total", "Memo hits served by the run-wide shared tier, by technique.", "memo_shared_hits")
	acc("p4assert_solver_portfolio_session_wins_total", "Full queries won by the incremental-session racer, by technique.", "portfolio_session_wins")
	acc("p4assert_solver_portfolio_fresh_wins_total", "Full queries won by the fresh-blast racer, by technique.", "portfolio_fresh_wins")
	acc("p4assert_solver_sat_decisions_total", "CDCL decisions, by technique.", "sat_decisions")
	acc("p4assert_solver_sat_propagations_total", "CDCL unit propagations, by technique.", "sat_propagations")
	acc("p4assert_solver_sat_conflicts_total", "CDCL conflicts, by technique.", "sat_conflicts")
	acc("p4assert_solver_sat_learned_total", "CDCL learned clauses retained, by technique.", "sat_learned")
	if j.subReused > 0 || j.subExecuted > 0 {
		m.reg.Counter("p4served_submodels_reused_total",
			"Submodel verdicts replayed from the submodel cache.").Add(int64(j.subReused))
		m.reg.Counter("p4served_submodels_executed_total",
			"Submodels symbolically executed (cache misses).").Add(int64(j.subExecuted))
	}
}
