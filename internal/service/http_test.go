package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/progs"
	"p4assert/internal/vcache"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Client, *Manager) {
	t.Helper()
	m := New(cfg)
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Shutdown(context.Background())
	})
	c := &Client{Base: srv.URL, HTTP: srv.Client(), PollInterval: 2 * time.Millisecond}
	return srv, c, m
}

// TestHTTPEndToEnd drives the full daemon surface over real HTTP: submit,
// poll, report, stats, cache hit on resubmission — the acceptance-criteria
// flow.
func TestHTTPEndToEnd(t *testing.T) {
	cache, err := vcache.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	_, client, _ := newTestServer(t, Config{Workers: 2, Cache: cache})
	ctx := context.Background()

	p, err := progs.Get("switchlite")
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{Filename: "switchlite.p4", Source: p.Source, Rules: p.Rules}

	rep, st, err := client.Verify(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("first run reported a cache hit")
	}

	// Served verdict must equal the in-process one.
	opts, err := req.Options.CoreOptions(req.Rules)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.VerifySource(req.Filename, req.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !core.SameVerdictSet(local, rep) {
		t.Fatalf("verdicts differ: local %s, served %s", local.VerdictDigest(), rep.VerdictDigest())
	}
	want, _ := local.ViolationsJSON()
	got, _ := rep.ViolationsJSON()
	if !bytes.Equal(want, got) {
		t.Fatalf("violations differ:\nlocal:  %s\nserved: %s", want, got)
	}

	// Resubmission: cache hit, byte-identical report bytes.
	_, firstBytes, err := client.Report(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := client.Verify(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("resubmission was not served from cache")
	}
	_, secondBytes, err := client.Report(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Fatal("cached report bytes differ from live ones")
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("stats after hit: %+v", stats)
	}
	if stats.Techniques["original"].Count != 1 {
		t.Fatalf("expected exactly one executed-job latency sample, got %+v", stats.Techniques)
	}
}

// TestHTTPErrorStatuses exercises the non-happy-path status codes.
func TestHTTPErrorStatuses(t *testing.T) {
	srv, client, m := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := get("/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	if resp := get("/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d", resp.StatusCode)
	}
	if resp := get("/v1/jobs/nope/report"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job report: %d", resp.StatusCode)
	}

	// Malformed body → 400.
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", resp.StatusCode)
	}

	// Validation failure → 400 with a JSON error.
	resp, err = srv.Client().Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"source":"x","options":{"timeout":"bogus"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad options: %d", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("bad options response not a JSON error: %v %+v", err, e)
	}

	// Report of an unfinished job → 409.
	st, err := client.Submit(ctx, JobRequest{Filename: "slow.p4", Source: slowSource()})
	if err != nil {
		t.Fatal(err)
	}
	if resp := get("/v1/jobs/" + st.ID + "/report"); resp.StatusCode != http.StatusConflict {
		t.Errorf("unfinished report: %d", resp.StatusCode)
	}

	// Cancel over HTTP.
	if err := client.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Errorf("cancelled job state: %s", final.State)
	}

	// Shutdown → 503 on submit.
	m.Shutdown(context.Background())
	if _, err := client.Submit(ctx, JobRequest{Source: "x"}); err == nil ||
		!strings.Contains(err.Error(), "503") {
		t.Errorf("post-shutdown submit error = %v, want HTTP 503", err)
	}
}
