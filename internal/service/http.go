package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"p4assert/internal/cluster"
	"p4assert/internal/failpoint"
)

// MaxRequestBytes bounds a POST /v1/jobs body (16 MiB — far beyond any
// real P4 program, small enough to shed abusive payloads).
const MaxRequestBytes = 16 << 20

// Handler exposes a Manager over the v1 HTTP API:
//
//	POST   /v1/jobs             submit a job (202, body: JobStatus)
//	GET    /v1/jobs/{id}        job status (JobStatus)
//	GET    /v1/jobs/{id}/events live progress feed (SSE; service/events.go)
//	GET    /v1/jobs/{id}/report done job's core.Report JSON
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/healthz          liveness probe
//	GET    /v1/stats            queue/cache/latency counters (StatsResponse)
//	GET    /v1/metrics          Prometheus text exposition (service/metrics.go)
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		body := http.MaxBytesReader(w, r.Body, MaxRequestBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return
		}
		if req.RequestID == "" {
			// Correlate the job's event feed with the access log (the
			// daemon mints an ID when the client sends none).
			req.RequestID = r.Header.Get("X-Request-Id")
		}
		st, err := m.Submit(req)
		if err != nil {
			writeError(w, submitStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", m.handleEvents)

	mux.HandleFunc("GET /v1/jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		data, err := m.Report(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrUnknownJob):
			writeError(w, http.StatusNotFound, err.Error())
		case errors.Is(err, ErrNotFinished):
			writeError(w, http.StatusConflict, err.Error())
		case err != nil:
			writeError(w, http.StatusInternalServerError, err.Error())
		default:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(data)
		}
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Cancel(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
	})

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		// The liveness body carries the queue bound and current depth so a
		// load balancer can shed before hitting 429s on submission.
		s := m.Stats()
		body := map[string]any{
			"status":         "ok",
			"queue_depth":    s.QueueDepth,
			"queue_capacity": s.QueueCapacity,
			"workers":        s.Workers,
			"overloaded":     s.Overloaded,
		}
		if s.Store != nil {
			// Durability health: a degraded store still serves, but probes
			// should see that persistence stopped.
			body["store"] = map[string]any{
				"degraded": s.Store.Degraded,
				"jobs":     s.Store.Jobs,
			}
		}
		if coord := m.Cluster(); coord != nil {
			// Coordinator mode: surface the cluster membership so probes
			// see dead workers without a separate scrape.
			body["cluster"] = map[string]any{
				"draining": coord.Draining(),
				"nodes":    coord.Nodes(),
			}
		}
		writeJSON(w, http.StatusOK, body)
	})

	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		coord := m.Cluster()
		if coord == nil {
			writeError(w, http.StatusNotFound, "no cluster coordinator attached")
			return
		}
		writeJSON(w, http.StatusOK, ClusterResponse{
			Draining: coord.Draining(),
			Nodes:    coord.Nodes(),
		})
	})

	mux.HandleFunc("POST /v1/cluster/register", func(w http.ResponseWriter, r *http.Request) {
		coord := m.Cluster()
		if coord == nil {
			writeError(w, http.StatusNotFound, "no cluster coordinator attached")
			return
		}
		var req RegisterRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return
		}
		if req.Addr == "" {
			writeError(w, http.StatusBadRequest, "register needs addr")
			return
		}
		coord.Register(cluster.NodeSpec{Name: req.Name, Addr: req.Addr})
		writeJSON(w, http.StatusOK, ClusterResponse{
			Draining: coord.Draining(),
			Nodes:    coord.Nodes(),
		})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteMetrics(w)
	})

	// Fault-injection surface, mounted only when the environment opted in
	// (P4ASSERT_FAILPOINTS / P4ASSERT_FAILPOINTS_HTTP): the crash and
	// fault drills arm failpoints in a live daemon through it.
	if failpoint.HTTPEnabled() {
		mux.Handle("/v1/failpoints", failpoint.HTTPHandler())
	}

	return mux
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
