package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"p4assert/internal/telemetry"
	"p4assert/internal/vcache"
)

// requiredFamilies are the metric families the CI smoke job asserts on
// (scripts/service-smoke.sh); removing one is a monitoring break, not a
// refactor. Keep the two lists in sync.
var requiredFamilies = []string{
	"p4served_jobs_submitted_total",
	"p4served_jobs_done_total",
	"p4served_job_duration_seconds",
	"p4served_stage_duration_seconds",
	"p4served_paths_explored_total",
	"p4served_solver_queries_total",
	"p4assert_solver_session_reuse_hits_total",
	"p4assert_solver_memo_hits_total",
	"p4assert_solver_sat_decisions_total",
	"p4served_queue_depth",
	"p4served_workers",
}

func TestMetricsExposition(t *testing.T) {
	cache, err := vcache.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 2, Cache: cache})
	defer m.Shutdown(context.Background())

	req := corpusRequest(t, "fabric")
	req.Options = Techniques{Parallel: 4}
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitTerminal(t, m, st.ID); st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	if err := telemetry.LintPrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, text)
	}
	for _, fam := range requiredFamilies {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
	if !strings.Contains(text, `technique="parallel"`) {
		t.Errorf("per-technique labels missing:\n%s", text)
	}
	if !strings.Contains(text, `stage="execute"`) {
		t.Errorf("per-stage labels missing:\n%s", text)
	}
	if !strings.Contains(text, `p4served_vcache_entries{tier="report"}`) {
		t.Errorf("cache tier gauges missing:\n%s", text)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if err := telemetry.LintPrometheus(resp.Body); err != nil {
		t.Fatalf("endpoint output fails lint: %v", err)
	}
}

// Scrapes race against the job lifecycle in production (Prometheus polls
// on its own clock); under -race this doubles as the torn-read audit for
// the registry and the live gauges WriteMetrics refreshes.
func TestMetricsConcurrentScrape(t *testing.T) {
	cache, err := vcache.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 2, Cache: cache})
	defer m.Shutdown(context.Background())

	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := m.WriteMetrics(&buf); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()

	req := corpusRequest(t, "fabric")
	req.Options = Techniques{Parallel: 2}
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitTerminal(t, m, id)
	}
	close(stop)
	<-scraped
}

// Metric names are a monitoring contract: a scrape before any job runs
// must already expose the gauges (counters appear with their first
// increment, which Prometheus handles; gauges must not flap).
func TestMetricsStableBeforeTraffic(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"p4served_queue_depth", "p4served_jobs_running", "p4served_workers"} {
		if !strings.Contains(buf.String(), "# TYPE "+g+" gauge") {
			t.Errorf("gauge %s absent on first scrape:\n%s", g, buf.String())
		}
	}
}
