package service

// The daemon's incremental path: a job naming a base_job re-executes only
// the submodels its edit can affect, replaying the rest from the submodel
// cache — and the served report stays byte-identical (ComparableJSON) to a
// cold parallel run of the edited program.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"p4assert/internal/core"
	"p4assert/internal/vcache"
)

func TestBaseJobIncrementalResubmission(t *testing.T) {
	subCache, err := vcache.NewSubmodelTier(0, "")
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 2, SubCache: subCache})
	defer m.Shutdown(context.Background())

	req := corpusRequest(t, "fabric")
	req.Options.Parallel = 4
	base, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	baseSt := waitTerminal(t, m, base.ID)
	if baseSt.State != StateDone {
		t.Fatalf("base job: %s (%s)", baseSt.State, baseSt.Error)
	}
	if baseSt.SubmodelsExecuted == 0 || baseSt.SubmodelsReused != 0 {
		t.Fatalf("cold base job reused %d / executed %d submodels",
			baseSt.SubmodelsReused, baseSt.SubmodelsExecuted)
	}

	// Edit one routing action and resubmit against the base job.
	edited := req
	edited.Source = strings.Replace(req.Source, "meta.uplink = 1;", "meta.uplink = 0;", 1)
	if edited.Source == req.Source {
		t.Fatal("edit did not apply")
	}
	edited.BaseJob = base.ID
	st, err := m.Submit(edited)
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("incremental job: %s (%s)", st.State, st.Error)
	}
	if st.SubmodelsReused == 0 {
		t.Fatal("edited resubmission replayed no submodel verdicts")
	}
	if st.SubmodelsExecuted >= st.SubmodelsReused {
		t.Fatalf("single-action edit executed %d submodels, reused only %d",
			st.SubmodelsExecuted, st.SubmodelsReused)
	}

	// Served report must match a cold parallel run of the edited program.
	data, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var served core.Report
	if err := served.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	opts, err := edited.Options.CoreOptions(edited.Rules)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.VerifySource(edited.Filename, edited.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.ComparableJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := served.ComparableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("served incremental report differs from cold run\ncold:   %s\nserved: %s", want, got)
	}

	// The submodel tier's counters surface on Stats.
	stats := m.Stats()
	if !stats.SubmodelCache.Enabled || stats.SubmodelCache.Hits == 0 {
		t.Fatalf("submodel cache stats missing: %+v", stats.SubmodelCache)
	}
}

func TestBaseJobValidation(t *testing.T) {
	subCache, err := vcache.NewSubmodelTier(0, "")
	if err != nil {
		t.Fatal(err)
	}

	// No submodel cache configured.
	m := New(Config{Workers: 1})
	req := corpusRequest(t, "vss")
	req.Options.Parallel = 4
	req.BaseJob = "job-1"
	if _, err := m.Submit(req); err == nil {
		t.Fatal("base_job accepted without a submodel cache")
	}
	m.Shutdown(context.Background())

	m = New(Config{Workers: 1, SubCache: subCache})
	defer m.Shutdown(context.Background())

	// Unknown base job.
	if _, err := m.Submit(req); err == nil {
		t.Fatal("unknown base_job accepted")
	}

	// Sequential options cannot take the incremental path.
	base := corpusRequest(t, "vss")
	base.Options.Parallel = 4
	st, err := m.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	seq := corpusRequest(t, "vss")
	seq.BaseJob = st.ID
	if _, err := m.Submit(seq); err == nil {
		t.Fatal("base_job accepted with options.parallel == 0")
	}
}
