// Package rules represents control-plane forwarding configurations: sets of
// table entries with exact, LPM and ternary matches. A RuleSet can be
// supplied to the translator to restrict verification to one concrete
// control-plane configuration (paper §3.2 "Tables", §6 "Interaction with
// the control plane").
//
// The text format is line-oriented:
//
//	# comment
//	<table> <action> <match>... [=> <arg>...]
//
// where each <match> is one of
//
//	<value>            exact match
//	<value>/<bits>     LPM match with the given prefix length
//	<value>&<mask>     ternary match
//	*                  wildcard (ternary match-all)
//
// and values parse like P4 number literals (decimal, 0x..., 0b...).
// Table names may be bare ("ipv4_lpm") or control-qualified
// ("MyIngress.ipv4_lpm").
package rules

import (
	"fmt"
	"strings"

	"p4assert/internal/p4"
)

// MatchKind discriminates Match entries.
type MatchKind uint8

// Match kinds.
const (
	Exact MatchKind = iota
	LPM
	Ternary
	Wildcard
)

// Match is one key match of a rule.
type Match struct {
	Kind      MatchKind
	Value     uint64
	Mask      uint64 // Ternary only
	PrefixLen int    // LPM only
}

// Rule is one table entry.
type Rule struct {
	Table  string
	Action string
	Keys   []Match
	Args   []uint64
	// Priority orders ternary rules; lower wins. Defaults to line order.
	Priority int
}

// RuleSet is a collection of rules grouped by table.
type RuleSet struct {
	byTable map[string][]Rule
}

// NewRuleSet returns an empty rule set.
func NewRuleSet() *RuleSet { return &RuleSet{byTable: map[string][]Rule{}} }

// Add appends a rule.
func (rs *RuleSet) Add(r Rule) {
	rs.byTable[r.Table] = append(rs.byTable[r.Table], r)
}

// ForTable returns the rules for a table, trying the qualified name
// ("Control.table") first, then the bare table name.
func (rs *RuleSet) ForTable(control, table string) []Rule {
	if rs == nil {
		return nil
	}
	if rules, ok := rs.byTable[control+"."+table]; ok {
		return rules
	}
	return rs.byTable[table]
}

// NumRules returns the total number of rules.
func (rs *RuleSet) NumRules() int {
	if rs == nil {
		return 0
	}
	n := 0
	for _, v := range rs.byTable {
		n += len(v)
	}
	return n
}

// Tables returns the table names that have rules, sorted.
func (rs *RuleSet) Tables() []string {
	var names []string
	for n := range rs.byTable {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// Parse reads the text format described in the package comment.
func Parse(text string) (*RuleSet, error) {
	rs := NewRuleSet()
	prio := 0
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := parseLine(line, prio)
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %w", lineNo+1, err)
		}
		rs.Add(rule)
		prio++
	}
	return rs, nil
}

func parseLine(line string, prio int) (Rule, error) {
	var argsPart string
	if i := strings.Index(line, "=>"); i >= 0 {
		argsPart = strings.TrimSpace(line[i+2:])
		line = strings.TrimSpace(line[:i])
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Rule{}, fmt.Errorf("want '<table> <action> <match>...', got %q", line)
	}
	r := Rule{Table: fields[0], Action: fields[1], Priority: prio}
	for _, m := range fields[2:] {
		match, err := parseMatch(m)
		if err != nil {
			return Rule{}, err
		}
		r.Keys = append(r.Keys, match)
	}
	if argsPart != "" {
		for _, a := range strings.Fields(strings.ReplaceAll(argsPart, ",", " ")) {
			v, _, err := p4.ParseNumber(a)
			if err != nil {
				return Rule{}, fmt.Errorf("bad action argument %q: %v", a, err)
			}
			r.Args = append(r.Args, v)
		}
	}
	return r, nil
}

func parseMatch(s string) (Match, error) {
	if s == "*" {
		return Match{Kind: Wildcard}, nil
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		v, _, err := p4.ParseNumber(s[:i])
		if err != nil {
			return Match{}, fmt.Errorf("bad LPM value %q: %v", s, err)
		}
		plen, _, err := p4.ParseNumber(s[i+1:])
		if err != nil {
			return Match{}, fmt.Errorf("bad LPM prefix %q: %v", s, err)
		}
		return Match{Kind: LPM, Value: v, PrefixLen: int(plen)}, nil
	}
	if i := strings.IndexByte(s, '&'); i >= 0 {
		v, _, err := p4.ParseNumber(s[:i])
		if err != nil {
			return Match{}, fmt.Errorf("bad ternary value %q: %v", s, err)
		}
		mask, _, err := p4.ParseNumber(s[i+1:])
		if err != nil {
			return Match{}, fmt.Errorf("bad ternary mask %q: %v", s, err)
		}
		return Match{Kind: Ternary, Value: v, Mask: mask}, nil
	}
	v, _, err := p4.ParseNumber(s)
	if err != nil {
		return Match{}, fmt.Errorf("bad match %q: %v", s, err)
	}
	return Match{Kind: Exact, Value: v}, nil
}

// Render serializes the rule set back into the text format Parse reads,
// grouped by table, preserving per-table priority order.
func Render(rs *RuleSet) string {
	var b strings.Builder
	b.WriteString("# forwarding rules\n")
	for _, table := range rs.Tables() {
		for _, r := range rs.byTable[table] {
			fmt.Fprintf(&b, "%s %s", r.Table, r.Action)
			for _, k := range r.Keys {
				switch k.Kind {
				case Exact:
					fmt.Fprintf(&b, " 0x%x", k.Value)
				case LPM:
					fmt.Fprintf(&b, " 0x%x/%d", k.Value, k.PrefixLen)
				case Ternary:
					fmt.Fprintf(&b, " 0x%x&0x%x", k.Value, k.Mask)
				default:
					b.WriteString(" *")
				}
			}
			if len(r.Args) > 0 {
				b.WriteString(" =>")
				for _, a := range r.Args {
					fmt.Fprintf(&b, " 0x%x", a)
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// MaskBits returns the effective (value, mask) pair of a match at the given
// key width: the match holds iff key & mask == value & mask.
func (m Match) MaskBits(width int) (uint64, uint64) {
	full := ^uint64(0)
	if width < 64 {
		full = (uint64(1) << uint(width)) - 1
	}
	switch m.Kind {
	case Exact:
		return m.Value & full, full
	case LPM:
		if m.PrefixLen <= 0 {
			return 0, 0
		}
		if m.PrefixLen >= width {
			return m.Value & full, full
		}
		mask := full &^ ((uint64(1) << uint(width-m.PrefixLen)) - 1)
		return m.Value & mask, mask
	case Ternary:
		return m.Value & m.Mask & full, m.Mask & full
	default: // Wildcard
		return 0, 0
	}
}
