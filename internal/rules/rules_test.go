package rules

import "testing"

func TestParseFormats(t *testing.T) {
	rs, err := Parse(`
# comment line

ipv4_lpm set_nhop 0x0a000000/8 => 3 0x112233445566
acl deny 0x0adead01
Ingress.tern permit 0x10&0xF0
wild drop *
multi fwd 1 2/4 3&7 * => 9
`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRules() != 5 {
		t.Fatalf("NumRules = %d, want 5", rs.NumRules())
	}

	lpm := rs.ForTable("X", "ipv4_lpm")
	if len(lpm) != 1 || lpm[0].Keys[0].Kind != LPM || lpm[0].Keys[0].PrefixLen != 8 {
		t.Fatalf("lpm rule wrong: %+v", lpm)
	}
	if len(lpm[0].Args) != 2 || lpm[0].Args[1] != 0x112233445566 {
		t.Fatalf("lpm args wrong: %+v", lpm[0].Args)
	}

	// Qualified lookup wins over bare.
	tern := rs.ForTable("Ingress", "tern")
	if len(tern) != 1 || tern[0].Keys[0].Kind != Ternary || tern[0].Keys[0].Mask != 0xF0 {
		t.Fatalf("ternary rule wrong: %+v", tern)
	}

	multi := rs.ForTable("X", "multi")
	if len(multi[0].Keys) != 4 {
		t.Fatalf("multi-key rule wrong: %+v", multi[0].Keys)
	}
	kinds := []MatchKind{Exact, LPM, Ternary, Wildcard}
	for i, k := range kinds {
		if multi[0].Keys[i].Kind != k {
			t.Fatalf("key %d kind = %v, want %v", i, multi[0].Keys[i].Kind, k)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"justonetoken",
		"t a zz",       // bad match value
		"t a 1/x",      // bad prefix
		"t a 1&y",      // bad mask
		"t a 1 => foo", // bad arg
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestMaskBits(t *testing.T) {
	cases := []struct {
		m     Match
		width int
		value uint64
		mask  uint64
	}{
		{Match{Kind: Exact, Value: 0xab}, 8, 0xab, 0xff},
		{Match{Kind: Exact, Value: 0x1ab}, 8, 0xab, 0xff}, // masked to width
		{Match{Kind: LPM, Value: 0x0a000000, PrefixLen: 8}, 32, 0x0a000000, 0xff000000},
		{Match{Kind: LPM, Value: 0xffffffff, PrefixLen: 32}, 32, 0xffffffff, 0xffffffff},
		{Match{Kind: LPM, Value: 5, PrefixLen: 0}, 32, 0, 0},
		{Match{Kind: LPM, Value: 5, PrefixLen: 40}, 32, 5, 0xffffffff},
		{Match{Kind: Ternary, Value: 0xff, Mask: 0x0f}, 8, 0x0f, 0x0f},
		{Match{Kind: Wildcard}, 16, 0, 0},
		{Match{Kind: Exact, Value: ^uint64(0)}, 64, ^uint64(0), ^uint64(0)},
	}
	for i, tc := range cases {
		v, m := tc.m.MaskBits(tc.width)
		if v != tc.value || m != tc.mask {
			t.Errorf("case %d: got (%#x,%#x), want (%#x,%#x)", i, v, m, tc.value, tc.mask)
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	rs, err := Parse("t a 1\nt b 2\nt c 3\n")
	if err != nil {
		t.Fatal(err)
	}
	got := rs.ForTable("X", "t")
	for i := 1; i < len(got); i++ {
		if got[i].Priority <= got[i-1].Priority {
			t.Fatal("line order should define ascending priority")
		}
	}
}

// TestRenderRoundTrip: Render output re-parses to an equivalent set.
func TestRenderRoundTrip(t *testing.T) {
	orig, err := Parse(`
fib set_nhop 0x0a000000/8 => 3 0x112233445566
acl deny 0xdead
tern permit 0x10&0xF0
wild drop * => 1
`)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(Render(orig))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if back.NumRules() != orig.NumRules() {
		t.Fatalf("round trip lost rules: %d vs %d", back.NumRules(), orig.NumRules())
	}
	for _, table := range orig.Tables() {
		a, b := orig.byTable[table], back.byTable[table]
		if len(a) != len(b) {
			t.Fatalf("table %s: %d vs %d rules", table, len(a), len(b))
		}
		for i := range a {
			if a[i].Action != b[i].Action || len(a[i].Keys) != len(b[i].Keys) ||
				len(a[i].Args) != len(b[i].Args) {
				t.Fatalf("table %s rule %d differs: %+v vs %+v", table, i, a[i], b[i])
			}
			for k := range a[i].Keys {
				av, am := a[i].Keys[k].MaskBits(64)
				bv, bm := b[i].Keys[k].MaskBits(64)
				if av != bv || am != bm {
					t.Fatalf("table %s rule %d key %d differs", table, i, k)
				}
			}
		}
	}
}

func TestTablesListing(t *testing.T) {
	rs := NewRuleSet()
	rs.Add(Rule{Table: "zeta"})
	rs.Add(Rule{Table: "alpha"})
	names := rs.Tables()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("Tables() = %v", names)
	}
	var nilSet *RuleSet
	if nilSet.ForTable("a", "b") != nil || nilSet.NumRules() != 0 {
		t.Fatal("nil RuleSet should behave as empty")
	}
}
