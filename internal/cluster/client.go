package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"p4assert/internal/failpoint"
)

// Failpoint sites on the coordinator→worker RPC path (see
// internal/failpoint): they exercise the retry, work-stealing and
// local-fallback machinery without a flaky network.
const (
	// FailpointRPCDrop ("error") fails the call as a dropped connection.
	FailpointRPCDrop = "cluster/rpc/drop"
	// FailpointRPCDelay ("delay(d)") stalls the call, honoring ctx.
	FailpointRPCDelay = "cluster/rpc/delay"
	// FailpointRPCStatus ("http(code)") fails the call as if the worker
	// answered that status; http(409) surfaces as ErrSkew.
	FailpointRPCStatus = "cluster/rpc/status"
)

// Client is the coordinator's HTTP handle on one worker node.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the worker at base (e.g.
// "http://127.0.0.1:9091"). A nil hc uses a dedicated client with no
// overall timeout — per-request deadlines travel in the context, since a
// submodel execution can legitimately run for minutes.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Base returns the worker's base URL.
func (c *Client) Base() string { return c.base }

// Execute runs one submodel on the worker.
func (c *Client) Execute(ctx context.Context, req *ExecRequest) (*ExecResponse, error) {
	if a := failpoint.Hit(FailpointRPCDelay); a != nil {
		if err := a.Sleep(ctx.Done()); err != nil {
			return nil, fmt.Errorf("cluster: %s: %w", c.base, ctx.Err())
		}
	}
	if a := failpoint.Hit(FailpointRPCDrop); a != nil && a.Kind == "error" {
		return nil, fmt.Errorf("cluster: %s: %w", c.base, a.Err)
	}
	if a := failpoint.Hit(FailpointRPCStatus); a != nil && a.Kind == "http" {
		if a.Status == http.StatusConflict {
			return nil, fmt.Errorf("%w: %s: injected", ErrSkew, c.base)
		}
		return nil, fmt.Errorf("cluster: %s: %w", c.base, a.Err)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/execute", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", c.base, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeWireError(c.base, hresp)
	}
	var resp ExecResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("cluster: %s: decode response: %w", c.base, err)
	}
	if resp.Key != req.Key {
		return nil, fmt.Errorf("cluster: %s: response key mismatch", c.base)
	}
	return &resp, nil
}

// Healthz probes the worker's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) (*WorkerHealth, error) {
	hctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(hctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", c.base, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeWireError(c.base, hresp)
	}
	var h WorkerHealth
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("cluster: %s: decode healthz: %w", c.base, err)
	}
	return &h, nil
}

// decodeWireError maps a non-200 reply to an error; 409 surfaces as
// ErrSkew so the coordinator can treat it as non-retryable.
func decodeWireError(base string, hresp *http.Response) error {
	var we wireError
	data, _ := io.ReadAll(io.LimitReader(hresp.Body, 64<<10))
	if json.Unmarshal(data, &we) != nil || we.Error == "" {
		we.Error = strings.TrimSpace(string(data))
	}
	if hresp.StatusCode == http.StatusConflict {
		return fmt.Errorf("%w: %s: %s", ErrSkew, base, we.Error)
	}
	return fmt.Errorf("cluster: %s: HTTP %d: %s", base, hresp.StatusCode, we.Error)
}
