// Package cluster distributes submodel executions across worker nodes.
//
// The paper's parallelization strategy (§4.4) splits the model at early
// decision points into independent submodels — an embarrassingly parallel
// workload that a single machine bounds at its core count. This package
// extends the same split across machines: a Coordinator implements the
// transport-agnostic exec.Executor boundary, so the pipeline code that
// runs submodels on a local goroutine pool runs them on a cluster without
// change, and the report stays byte-identical (core.ComparableJSON) to a
// single-node run of the same request.
//
// Topology and protocol:
//
//   - Workers are p4served processes in -worker mode serving a small
//     HTTP/JSON RPC: POST /v1/execute runs one submodel, GET /v1/healthz
//     reports liveness, GET /v1/metrics exposes worker counters.
//   - The unit of work travels as a content-addressed submodel key plus a
//     JobSpec (the rebuild-from-source recipe). The model IR has no wire
//     form; workers rebuild the deterministic pipeline front half from
//     source, memoize the split per job digest, and serve repeat keys from
//     their own verdict-cache tier. A worker whose rebuilt keys don't
//     contain the requested key refuses with ErrSkew (version mismatch
//     between coordinator and worker binaries).
//   - Keys route to nodes on a consistent-hash ring, so a submodel
//     re-executed across runs (or re-requested after an edit under the
//     incremental engine) lands on the node already holding its warm
//     cache tier and rebuilt program.
//   - Stragglers are re-dispatched: after StealAfter the coordinator
//     launches a duplicate attempt on the next preference node (or
//     locally) and takes whichever result lands first — safe because
//     submodel execution is deterministic. Failures retry with backoff
//     down the preference list; nodes failing repeatedly are evicted and
//     revived by heartbeat; when every remote path fails the coordinator
//     executes locally, so cluster mode can degrade but not wrong.
package cluster

import (
	"p4assert/internal/exec"
	"p4assert/internal/sym"
)

// ExecRequest is the wire form of one submodel execution.
type ExecRequest struct {
	// Key is the submodel's executable-content digest (exec.SubmodelKey).
	// The worker validates it against the keys of its own rebuilt split.
	Key string `json:"key"`
	// Index/Total locate the submodel in the canonical split order.
	Index int `json:"index"`
	Total int `json:"total"`
	// TimeoutMS, when positive, bounds the worker-side execution. It is
	// the coordinator's remaining deadline, re-anchored on the worker's
	// clock (wall-clock budgets are not part of the content key).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Job is the rebuild-from-source recipe.
	Job *exec.JobSpec `json:"job"`
}

// Verdict is the deterministic part of a submodel's sym.Result — the same
// payload the verdict cache stores (incr.EncodeResult), so remote and
// cache-replayed results aggregate byte-identically.
type Verdict struct {
	Violations []*sym.Violation `json:"violations,omitempty"`
	Metrics    sym.Metrics      `json:"metrics"`
	// Exhausted marks a budget-cut run. Exhausted verdicts travel back to
	// the coordinator (the report must record them) but are never cached.
	Exhausted bool `json:"exhausted,omitempty"`
}

// Result converts the wire verdict back to the executor's result type.
func (v *Verdict) Result() *sym.Result {
	return &sym.Result{Violations: v.Violations, Metrics: v.Metrics, Exhausted: v.Exhausted}
}

// ExecResponse is the worker's reply to an ExecRequest.
type ExecResponse struct {
	Key string `json:"key"`
	// Node is the worker's self-reported name.
	Node string `json:"node"`
	// CacheHit reports the verdict was served from the worker's cache
	// tier without executing.
	CacheHit bool `json:"cache_hit"`
	// Submodels is the size of the worker's rebuilt split (diagnostic).
	Submodels int     `json:"submodels"`
	Verdict   Verdict `json:"verdict"`
	// Spans is the worker-side span tree of this execution, forwarded so
	// the coordinator's live feed covers remote submodels. Spans ride
	// outside Verdict on purpose: they are observability-only — never
	// cached, never part of any comparable report surface — and they vary
	// run to run (a memoized rebuild forwards no pipeline spans).
	Spans []WireSpan `json:"spans,omitempty"`
}

// WireSpan is one worker span on the wire. Times are nanoseconds
// relative to the worker's trace start; the coordinator re-anchors them
// on the RPC's start time (clocks are not assumed synchronized).
type WireSpan struct {
	ID      int64            `json:"id"`
	Parent  int64            `json:"parent,omitempty"`
	Name    string           `json:"name"`
	StartNS int64            `json:"start_ns"`
	EndNS   int64            `json:"end_ns,omitempty"`
	Cached  bool             `json:"cached,omitempty"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// wireError is the JSON body of a non-200 worker reply.
type wireError struct {
	Error string `json:"error"`
}

// WorkerHealth is the worker's GET /v1/healthz body.
type WorkerHealth struct {
	Status string `json:"status"`
	Node   string `json:"node"`
	// Executed and CacheHits count submodel executions served.
	Executed  int64 `json:"executed"`
	CacheHits int64 `json:"cache_hits"`
	// Programs is the number of rebuilt job splits currently memoized.
	Programs int `json:"programs"`
}

// NodeStatus is one worker's coordinator-side view, reported on the
// service's /v1/healthz and /v1/cluster.
type NodeStatus struct {
	Name  string `json:"name"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	// InFlight is the number of dispatches currently on the wire.
	InFlight int `json:"in_flight"`
	// Dispatched counts completed dispatches (success or failure).
	Dispatched int64 `json:"dispatched"`
	// CacheHits counts dispatches the worker served from its cache tier.
	CacheHits int64 `json:"cache_hits"`
	// Steals counts straggler re-dispatches launched because this node
	// held a request past the steal threshold.
	Steals int64 `json:"steals"`
	// Failures counts dispatch errors (cumulative, not consecutive).
	Failures int64 `json:"failures"`
}
