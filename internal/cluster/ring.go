package cluster

// Consistent-hash routing of submodel keys to worker nodes. Each node
// projects vnodes points onto a 64-bit ring; a key routes to the first
// point clockwise of its own hash, and its preference list is the distinct
// node sequence continuing clockwise. Properties the coordinator relies
// on:
//
//   - Stability: a key's preferred node changes only when membership
//     changes, and adding/removing one node remaps ~1/n of the keyspace —
//     so a warm worker keeps serving its keys from cache across runs.
//   - Determinism: the ring is a pure function of the member names, so
//     every coordinator instance over the same membership routes
//     identically (a shared cluster cache, not n private ones).
//   - The preference list is the retry and steal order: attempt 2 of a
//     key goes to the same fallback node every time, which keeps even the
//     failure path cache-friendly.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultVnodes is the per-node vnode count. 64 keeps the expected load
// imbalance across a handful of nodes within a few percent while the ring
// stays tiny (n*64 points).
const defaultVnodes = 64

type ringPoint struct {
	hash uint64
	node string
}

// ring is an immutable consistent-hash ring; the coordinator swaps in a
// new ring on membership change.
type ring struct {
	points []ringPoint
	nodes  int
}

// newRing builds a ring over the given node names.
func newRing(nodes []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{nodes: len(nodes)}
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s\x00%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so the ring is deterministic even in the
		// (astronomically unlikely) event of a 64-bit hash collision.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// ringHash digests s to a ring position (the first 8 bytes of SHA-256,
// matching the key family's hash).
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// prefs returns the key's preference list: every member node, ordered by
// ring walk from the key's position. An empty key (purely local requests)
// or an empty ring yields nil.
func (r *ring) prefs(key string) []string {
	if r == nil || len(r.points) == 0 || key == "" {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, r.nodes)
	seen := make(map[string]bool, r.nodes)
	for n := 0; n < len(r.points) && len(out) < r.nodes; n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
