package cluster

// Corpus-wide cluster-vs-local equivalence and the failure-path suite.
// The contract under test is the tentpole invariant: routing submodel
// executions through a cluster — including cache hits on worker tiers,
// straggler steals, node deaths and local fallbacks — must never change a
// single byte of the report (core.ComparableJSON).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/exec"
	"p4assert/internal/failpoint"
	"p4assert/internal/incr"
	"p4assert/internal/progs"
	"p4assert/internal/rules"
	"p4assert/internal/sym"
	"p4assert/internal/telemetry"
)

// memStore is an unbounded in-memory incr.Store for tests.
type memStore map[string][]byte

func (m memStore) GetBytes(k string) ([]byte, bool)  { b, ok := m[k]; return b, ok }
func (m memStore) PutBytes(k string, b []byte) error { m[k] = b; return nil }

// startWorkers starts n loopback worker nodes (real HTTP, real Worker).
func startWorkers(t *testing.T, n int) []NodeSpec {
	t.Helper()
	specs := make([]NodeSpec, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{Name: fmt.Sprintf("w%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		specs[i] = NodeSpec{Name: w.Name(), Addr: srv.URL}
	}
	return specs
}

// progOpts builds the parallel pipeline options for a corpus program.
func progOpts(t *testing.T, p *progs.Program) core.Options {
	t.Helper()
	opts := core.Options{Parallel: 4}
	if p.Rules != "" {
		rs, err := rules.Parse(p.Rules)
		if err != nil {
			t.Fatal(err)
		}
		opts.Rules = rs
	}
	return opts
}

func mustSameReport(t *testing.T, label string, local, clustered *core.Report) {
	t.Helper()
	a, err := local.ComparableJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := clustered.ComparableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("%s: cluster report differs from local run\nlocal:   %s\ncluster: %s", label, a, b)
	}
}

// mutateSource applies incr.MutateUnit's single-literal edit to the
// source text (the AST mutator reports the literal's position and new
// value; the cluster protocol ships source, so the edit must exist in
// text form). Returns ok=false when the program offers no mutable
// literal or the textual edit fails to round-trip through the front end.
func mutateSource(file, source string) (string, bool) {
	_, mut, err := incr.MutateUnit(file, source)
	if err != nil {
		return "", false
	}
	lines := strings.Split(source, "\n")
	if mut.Pos.Line < 1 || mut.Pos.Line > len(lines) {
		return "", false
	}
	line := lines[mut.Pos.Line-1]
	start := mut.Pos.Col - 1
	if start < 0 || start >= len(line) {
		return "", false
	}
	isLit := func(c byte) bool {
		return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' || c == 'x' || c == 'w'
	}
	for start > 0 && isLit(line[start-1]) {
		start--
	}
	end := mut.Pos.Col - 1
	for end < len(line) && isLit(line[end]) {
		end++
	}
	tok := line[start:end]
	prefix := ""
	if i := strings.IndexByte(tok, 'w'); i >= 0 {
		prefix = tok[:i+1]
	}
	lines[mut.Pos.Line-1] = line[:start] + prefix + strconv.FormatUint(mut.New, 10) + line[end:]
	return strings.Join(lines, "\n"), true
}

// TestClusterEquivalenceCorpus is the acceptance-criteria centerpiece:
// over the whole corpus, a 3-worker loopback cluster must produce reports
// byte-identical to single-node runs — cold, incremental warm-up, and an
// edited (base_job-style) resubmission whose re-executed submodels travel
// through the cluster.
func TestClusterEquivalenceCorpus(t *testing.T) {
	ctx := context.Background()
	specs := startWorkers(t, 3)
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			file := p.Name + ".p4"
			opts := progOpts(t, p)

			local, err := core.VerifySourceCtx(ctx, file, p.Source, opts)
			if err != nil {
				t.Fatal(err)
			}

			coord := NewCoordinator(Config{Nodes: specs, StealAfter: -1})
			defer coord.Close()

			clustered, err := core.VerifySourceExec(ctx, file, p.Source, opts, coord)
			if err != nil {
				t.Fatal(err)
			}
			mustSameReport(t, "cold", local, clustered)

			// No live-node shortage here: every submodel must have gone
			// over the wire, not through the local fallback.
			dispatched := int64(0)
			for _, n := range coord.Nodes() {
				dispatched += n.Dispatched
			}
			if dispatched == 0 {
				t.Fatal("cold cluster run dispatched nothing to the workers")
			}

			// Incremental warm-up through the cluster: full-miss path.
			store := memStore{}
			warm, _, err := core.VerifyIncrementalSourceExec(ctx, file, "", p.Source, opts, store, coord)
			if err != nil {
				t.Fatal(err)
			}
			mustSameReport(t, "incremental warm-up", local, warm)

			// Edited resubmission (the service's base_job path): cached
			// submodels replay locally, touched ones re-execute remotely.
			edited, ok := mutateSource(file, p.Source)
			if !ok {
				t.Skip("no mutable literal for the edit step")
			}
			localEdit, err := core.VerifySourceCtx(ctx, file, edited, opts)
			if err != nil {
				t.Skipf("textual mutation does not verify: %v", err)
			}
			incRep, man, err := core.VerifyIncrementalSourceExec(ctx, file, p.Source, edited, opts, store, coord)
			if err != nil {
				t.Fatal(err)
			}
			mustSameReport(t, "edited resubmission", localEdit, incRep)
			if man.Reused+man.Executed != man.Submodels {
				t.Fatalf("manifest accounting: reused %d + executed %d != submodels %d",
					man.Reused, man.Executed, man.Submodels)
			}
		})
	}
}

// buildRequests prepares the executor requests of one corpus program the
// way the pipeline would (used by the targeted failure tests).
func buildRequests(t *testing.T, p *progs.Program) ([]*exec.Request, core.Options) {
	t.Helper()
	opts := progOpts(t, p)
	file := p.Name + ".p4"
	subs, keys, err := core.PrepareSubmodels(context.Background(), file, p.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	job := core.JobSpec(file, p.Source, opts)
	reqs := make([]*exec.Request, len(subs))
	for i, sub := range subs {
		reqs[i] = &exec.Request{Submodel: sub, Index: i, Total: len(subs), Key: keys[i], Opts: sym.Options{}, Job: job}
	}
	return reqs, opts
}

// TestWorkerCacheHit: the same key served twice by one worker comes from
// its verdict-cache tier the second time, byte-identically.
func TestWorkerCacheHit(t *testing.T) {
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	reqs, _ := buildRequests(t, p)
	w, err := NewWorker(WorkerConfig{Name: "w0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	wr := &ExecRequest{Key: reqs[0].Key, Index: 0, Total: reqs[0].Total, Job: reqs[0].Job}
	first, err := w.Execute(ctx, wr)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	second, err := w.Execute(ctx, wr)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second execution missed the verdict cache")
	}
	if fmt.Sprintf("%+v", first.Verdict) != fmt.Sprintf("%+v", second.Verdict) {
		t.Fatalf("cache replay diverged:\nfirst:  %+v\nsecond: %+v", first.Verdict, second.Verdict)
	}
	h := w.Health()
	if h.Executed != 2 || h.CacheHits != 1 {
		t.Fatalf("health counters: %+v", h)
	}
}

// TestWorkerRefusesSkewedKey: a key the rebuilt split does not contain is
// a 409/ErrSkew, not a silent wrong answer.
func TestWorkerRefusesSkewedKey(t *testing.T) {
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	reqs, _ := buildRequests(t, p)
	w, err := NewWorker(WorkerConfig{Name: "w0"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	client := NewClient(srv.URL, nil)
	_, err = client.Execute(context.Background(), &ExecRequest{
		Key: "0000000000000000000000000000000000000000000000000000000000000000",
		Job: reqs[0].Job,
	})
	if !errors.Is(err, ErrSkew) {
		t.Fatalf("want ErrSkew, got %v", err)
	}
}

// killingHandler proxies to a worker but hard-closes the connection on
// the first N execute requests (a worker dying mid-submodel: the request
// is on the wire, the response never comes).
type killingHandler struct {
	inner http.Handler
	kills atomic.Int64
	limit int64
}

func (k *killingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/execute" && k.kills.Add(1) <= k.limit {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server not hijackable")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	k.inner.ServeHTTP(w, r)
}

// TestWorkerKilledMidSubmodel: a worker dropping requests mid-flight
// forces re-dispatch; the report must not change by a byte.
func TestWorkerKilledMidSubmodel(t *testing.T) {
	ctx := context.Background()
	p, err := progs.Get("fabric")
	if err != nil {
		t.Fatal(err)
	}
	file := p.Name + ".p4"
	opts := progOpts(t, p)
	local, err := core.VerifySourceCtx(ctx, file, p.Source, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Every node hard-closes its first execute connection, then recovers
	// — so whichever node a key routes to, its first submodel dies
	// mid-flight and must be re-dispatched.
	var specs []NodeSpec
	var killers []*killingHandler
	for i := 0; i < 3; i++ {
		w, err := NewWorker(WorkerConfig{Name: fmt.Sprintf("w%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		killer := &killingHandler{inner: w.Handler(), limit: 1}
		killers = append(killers, killer)
		srv := httptest.NewServer(killer)
		t.Cleanup(srv.Close)
		specs = append(specs, NodeSpec{Name: w.Name(), Addr: srv.URL})
	}

	coord := NewCoordinator(Config{
		Nodes:        specs,
		StealAfter:   -1,
		RetryBackoff: time.Millisecond,
		MaxFailures:  100, // keep w0 in rotation; this test is about retries
	})
	defer coord.Close()

	clustered, err := core.VerifySourceExec(ctx, file, p.Source, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	mustSameReport(t, "after worker kill", local, clustered)
	kills := int64(0)
	for _, k := range killers {
		kills += k.kills.Load()
	}
	if kills == 0 {
		t.Fatal("no execute connection was killed; the failure path was not exercised")
	}
	failures := int64(0)
	for _, n := range coord.Nodes() {
		failures += n.Failures
	}
	if failures == 0 {
		t.Fatal("no dispatch failure recorded despite killed connections")
	}
}

// delayHandler stalls execute requests before serving them.
type delayHandler struct {
	inner http.Handler
	delay time.Duration
}

func (d *delayHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/execute" {
		time.Sleep(d.delay)
	}
	d.inner.ServeHTTP(w, r)
}

// TestSlowWorkerTriggersSteal: a straggling node trips the steal timer, a
// duplicate dispatch wins, and the report stays byte-identical.
func TestSlowWorkerTriggersSteal(t *testing.T) {
	ctx := context.Background()
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	file := p.Name + ".p4"
	opts := progOpts(t, p)
	local, err := core.VerifySourceCtx(ctx, file, p.Source, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Every node is slow enough to trip the steal timer, so whichever
	// node is a key's primary, a duplicate attempt launches.
	var specs []NodeSpec
	for i := 0; i < 2; i++ {
		w, err := NewWorker(WorkerConfig{Name: fmt.Sprintf("w%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(&delayHandler{inner: w.Handler(), delay: 150 * time.Millisecond})
		t.Cleanup(srv.Close)
		specs = append(specs, NodeSpec{Name: w.Name(), Addr: srv.URL})
	}
	coord := NewCoordinator(Config{Nodes: specs, StealAfter: 20 * time.Millisecond})
	defer coord.Close()

	clustered, err := core.VerifySourceExec(ctx, file, p.Source, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	mustSameReport(t, "after steal", local, clustered)
	steals := int64(0)
	for _, n := range coord.Nodes() {
		steals += n.Steals
	}
	if steals == 0 {
		t.Fatal("no steal recorded despite uniformly slow workers")
	}
}

// TestDrainRejectsNewFinishesInFlight: Drain must reject new dispatches
// with ErrDraining while letting an in-flight one complete successfully.
func TestDrainRejectsNewFinishesInFlight(t *testing.T) {
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	reqs, _ := buildRequests(t, p)

	w, err := NewWorker(WorkerConfig{Name: "w0"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(&delayHandler{inner: w.Handler(), delay: 100 * time.Millisecond})
	defer srv.Close()
	coord := NewCoordinator(Config{
		Nodes:      []NodeSpec{{Name: "w0", Addr: srv.URL}},
		StealAfter: -1,
	})
	defer coord.Close()

	type done struct {
		res *sym.Result
		err error
	}
	inflight := make(chan done, 1)
	go func() {
		res, err := coord.ExecuteSubmodel(context.Background(), reqs[0])
		inflight <- done{res, err}
	}()
	time.Sleep(30 * time.Millisecond) // the dispatch is on the wire now

	drained := make(chan struct{})
	go func() {
		coord.Drain()
		close(drained)
	}()
	time.Sleep(10 * time.Millisecond)

	if _, err := coord.ExecuteSubmodel(context.Background(), reqs[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("dispatch during drain: want ErrDraining, got %v", err)
	}

	out := <-inflight
	if out.err != nil {
		t.Fatalf("in-flight dispatch failed during drain: %v", out.err)
	}
	if out.res == nil || out.res.Metrics.Instructions == 0 {
		t.Fatal("in-flight dispatch returned an empty result")
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the in-flight dispatch completed")
	}
}

// TestFailpointRPCDrop: the injected equivalent of killingHandler — the
// cluster/rpc/drop site fails every other RPC at the client, and the
// coordinator's retry/fallback machinery still produces a byte-identical
// report.
func TestFailpointRPCDrop(t *testing.T) {
	defer failpoint.Reset()
	ctx := context.Background()
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	file := p.Name + ".p4"
	opts := progOpts(t, p)
	local, err := core.VerifySourceCtx(ctx, file, p.Source, opts)
	if err != nil {
		t.Fatal(err)
	}

	specs := startWorkers(t, 3)
	coord := NewCoordinator(Config{
		Nodes:        specs,
		StealAfter:   -1,
		RetryBackoff: time.Millisecond,
		MaxFailures:  100, // keep nodes in rotation; this test is about retries
	})
	defer coord.Close()

	if err := failpoint.Arm(FailpointRPCDrop, "every(2):error(dropped)"); err != nil {
		t.Fatal(err)
	}
	clustered, err := core.VerifySourceExec(ctx, file, p.Source, opts, coord)
	failpoint.Disarm(FailpointRPCDrop)
	if err != nil {
		t.Fatal(err)
	}
	mustSameReport(t, "under rpc drops", local, clustered)
	failures := int64(0)
	for _, n := range coord.Nodes() {
		failures += n.Failures
	}
	if failures == 0 {
		t.Fatal("no dispatch failure recorded; the drop site never fired")
	}
}

// TestFailpointRPCStatus: injected 5xx answers are dispatch failures the
// coordinator retries past; an injected 409 surfaces as ErrSkew at the
// client, matching decodeWireError.
func TestFailpointRPCStatus(t *testing.T) {
	defer failpoint.Reset()
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	reqs, _ := buildRequests(t, p)
	specs := startWorkers(t, 2)

	coord := NewCoordinator(Config{Nodes: specs, StealAfter: -1, RetryBackoff: -1, MaxFailures: 100})
	defer coord.Close()
	if err := failpoint.Arm(FailpointRPCStatus, "times(1):http(503)"); err != nil {
		t.Fatal(err)
	}
	res, err := coord.ExecuteSubmodel(context.Background(), reqs[0])
	if err != nil {
		t.Fatalf("dispatch through injected 503: %v", err)
	}
	if res.Metrics.Instructions == 0 {
		t.Fatal("result empty after retry past 503")
	}
	failures := int64(0)
	for _, n := range coord.Nodes() {
		failures += n.Failures
	}
	if failures == 0 {
		t.Fatal("no failure recorded; the status site never fired")
	}

	if err := failpoint.Arm(FailpointRPCStatus, "http(409)"); err != nil {
		t.Fatal(err)
	}
	client := NewClient(specs[0].Addr, nil)
	_, err = client.Execute(context.Background(), &ExecRequest{Key: reqs[0].Key, Job: reqs[0].Job})
	if !errors.Is(err, ErrSkew) {
		t.Fatalf("injected 409 = %v, want ErrSkew", err)
	}
}

// TestFailpointRPCDelay: a delayed RPC honors context cancellation — the
// call returns promptly with the context's error instead of sleeping out
// the injected latency.
func TestFailpointRPCDelay(t *testing.T) {
	defer failpoint.Reset()
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	reqs, _ := buildRequests(t, p)
	specs := startWorkers(t, 1)
	client := NewClient(specs[0].Addr, nil)

	if err := failpoint.Arm(FailpointRPCDelay, "delay(30s)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Execute(ctx, &ExecRequest{Key: reqs[0].Key, Job: reqs[0].Job})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delayed RPC = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("injected delay ignored context cancellation")
	}
	failpoint.Disarm(FailpointRPCDelay)

	// Disarmed, the same call completes normally.
	res, err := client.Execute(context.Background(), &ExecRequest{Key: reqs[0].Key, Index: 0, Total: reqs[0].Total, Job: reqs[0].Job})
	if err != nil {
		t.Fatalf("disarmed execute: %v", err)
	}
	if res.Key != reqs[0].Key {
		t.Fatalf("response key mismatch: %q", res.Key)
	}
}

// TestEvictionAndHeartbeatRevival: repeated failures evict a node; a
// heartbeat against a recovered worker revives it.
func TestEvictionAndHeartbeatRevival(t *testing.T) {
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	reqs, _ := buildRequests(t, p)

	w, err := NewWorker(WorkerConfig{Name: "w0"})
	if err != nil {
		t.Fatal(err)
	}
	killer := &killingHandler{inner: w.Handler(), limit: 1}
	srv := httptest.NewServer(killer)
	defer srv.Close()

	coord := NewCoordinator(Config{
		Nodes:        []NodeSpec{{Name: "w0", Addr: srv.URL}},
		StealAfter:   -1,
		RetryBackoff: -1,
		MaxFailures:  1,
	})
	defer coord.Close()

	// The single node's first dispatch dies -> immediate eviction; the
	// local fallback still answers correctly.
	res, err := coord.ExecuteSubmodel(context.Background(), reqs[0])
	if err != nil {
		t.Fatalf("local fallback failed: %v", err)
	}
	if res.Metrics.Instructions == 0 {
		t.Fatal("fallback result empty")
	}
	nodes := coord.Nodes()
	if len(nodes) != 1 || nodes[0].Alive {
		t.Fatalf("node not evicted after failure: %+v", nodes)
	}

	// healthz works (the killer only targets /v1/execute), so a
	// heartbeat revives the node, and the next dispatch goes remote.
	coord.Heartbeat(context.Background())
	nodes = coord.Nodes()
	if !nodes[0].Alive {
		t.Fatalf("node not revived by heartbeat: %+v", nodes)
	}
	if _, err := coord.ExecuteSubmodel(context.Background(), reqs[0]); err != nil {
		t.Fatalf("post-revival dispatch failed: %v", err)
	}
	if coord.Nodes()[0].Dispatched < 2 {
		t.Fatalf("post-revival dispatch did not reach the node: %+v", coord.Nodes())
	}
}

// TestWorkerSpansForwardedToFeed: a clustered run under a traced context
// with an attached bus sees the worker-side span tree — the pipeline
// rebuild and the execute span with its work attrs — grafted under the
// rpc lanes and published on the live event feed, while the report stays
// byte-identical to a local run.
func TestWorkerSpansForwardedToFeed(t *testing.T) {
	p, err := progs.Get("vss")
	if err != nil {
		t.Fatal(err)
	}
	specs := startWorkers(t, 2)
	opts := progOpts(t, p)
	file := p.Name + ".p4"

	local, err := core.VerifySourceCtx(context.Background(), file, p.Source, opts)
	if err != nil {
		t.Fatal(err)
	}

	tr := telemetry.NewTrace()
	bus := telemetry.NewBus(0)
	tr.AttachBus(bus)
	sub := bus.Subscribe(0, 0)
	ctx := telemetry.WithTrace(context.Background(), tr)

	coord := NewCoordinator(Config{Nodes: specs, StealAfter: -1})
	defer coord.Close()
	clustered, err := core.VerifySourceExec(ctx, file, p.Source, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	mustSameReport(t, "traced cluster run", local, clustered)
	bus.Close()

	var rpcLanes, imported int
	var execAttrs bool
	byID := map[int64]string{}
	for _, sp := range tr.Spans() {
		byID[sp.ID] = sp.Name
		if strings.HasPrefix(sp.Name, "rpc[") {
			rpcLanes++
		}
	}
	for _, sp := range tr.Spans() {
		if parent, ok := byID[sp.Parent]; ok && strings.HasPrefix(parent, "rpc[") {
			imported++
			if sp.Name == "execute" && sp.Attrs()["paths"] > 0 {
				execAttrs = true
			}
		}
	}
	if rpcLanes == 0 {
		t.Fatal("no rpc lanes recorded")
	}
	if imported == 0 {
		t.Fatal("no worker spans were grafted under the rpc lanes")
	}
	if !execAttrs {
		t.Fatal("no forwarded execute span carries work attributes")
	}

	// The same spans reached the live feed, in seq order.
	var events []telemetry.Event
	for {
		batch, err := sub.NextBatch(context.Background())
		if err != nil {
			break
		}
		events = append(events, batch...)
	}
	lastSeq := int64(0)
	sawRemoteExec := false
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("feed not strictly ordered: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Kind == telemetry.KindSpanStart && ev.Name == "execute" {
			if parent, ok := byID[ev.Parent]; ok && strings.HasPrefix(parent, "rpc[") {
				sawRemoteExec = true
			}
		}
	}
	if !sawRemoteExec {
		t.Fatal("feed carries no remote execute span event")
	}
}
