package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p4assert/internal/exec"
	"p4assert/internal/sym"
	"p4assert/internal/telemetry"
)

// ErrDraining rejects new submodel dispatches on a draining coordinator.
// In-flight dispatches are unaffected and run to completion.
var ErrDraining = errors.New("cluster: coordinator is draining")

// Coordinator defaults.
const (
	defaultMaxInFlight  = 4
	defaultStealAfter   = 2 * time.Second
	defaultRetryBackoff = 50 * time.Millisecond
	defaultMaxFailures  = 3
)

// NodeSpec names one worker node.
type NodeSpec struct {
	// Name labels the node in metrics, spans and status reports.
	Name string
	// Addr is the worker's base URL.
	Addr string
}

// ParseNodeSpec parses a -cluster-node flag value: "name=url", or a bare
// url (the name defaults to the url's host part).
func ParseNodeSpec(s string) NodeSpec {
	if i := strings.Index(s, "="); i > 0 && !strings.Contains(s[:i], "/") {
		return NodeSpec{Name: s[:i], Addr: s[i+1:]}
	}
	name := s
	if i := strings.Index(name, "://"); i >= 0 {
		name = name[i+3:]
	}
	name = strings.TrimRight(name, "/")
	return NodeSpec{Name: name, Addr: s}
}

// Config configures a Coordinator.
type Config struct {
	// Nodes is the initial membership. More join via Register.
	Nodes []NodeSpec
	// Vnodes is the consistent-hash vnode count per node (0 = default).
	Vnodes int
	// MaxInFlight bounds concurrent dispatches per node (0 = 4, matching
	// the paper's per-machine worker count).
	MaxInFlight int
	// StealAfter is how long a dispatch may run before the coordinator
	// launches a duplicate attempt on the next preference node (straggler
	// re-dispatch). First result wins. 0 = default; negative disables.
	StealAfter time.Duration
	// RetryBackoff is the base delay before retrying a failed dispatch on
	// the next preference node (linear per attempt). 0 = default;
	// negative disables.
	RetryBackoff time.Duration
	// MaxFailures is the consecutive-failure count that evicts a node
	// from dispatch until a heartbeat revives it (0 = default).
	MaxFailures int
	// HeartbeatEvery, when positive, starts a background probe loop that
	// revives evicted nodes and detects silently dead ones. 0 disables
	// (tests drive Heartbeat explicitly).
	HeartbeatEvery time.Duration
	// Registry receives the p4served_cluster_* metrics (nil = private).
	Registry *telemetry.Registry
	// HTTPClient overrides the RPC client (nil = default).
	HTTPClient *http.Client
}

// node is one worker's coordinator-side state.
type node struct {
	name   string
	client *Client
	sem    chan struct{}

	alive       atomic.Bool
	consecFails atomic.Int64

	inflight   atomic.Int64
	dispatched atomic.Int64
	cacheHits  atomic.Int64
	steals     atomic.Int64
	failures   atomic.Int64
}

// Coordinator shards submodel executions across worker nodes. It
// implements exec.Executor, so core.VerifySourceExec and the incremental
// engine dispatch through it without knowing about the cluster.
type Coordinator struct {
	cfg Config
	reg *telemetry.Registry

	mu    sync.Mutex
	nodes map[string]*node
	ring  *ring

	// drainMu orders dispatch admission against Drain: an inflight.Add
	// under the read lock either happens before Drain's Wait or observes
	// draining=true — a WaitGroup Add from zero racing with Wait is
	// otherwise undefined (and a dispatch could slip past the drain).
	drainMu  sync.RWMutex
	draining atomic.Bool
	inflight sync.WaitGroup

	stopHB   chan struct{}
	hbOnce   sync.Once
	stopOnce sync.Once
}

// NewCoordinator builds a coordinator over the configured nodes and, when
// HeartbeatEvery is positive, starts its heartbeat loop.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.StealAfter == 0 {
		cfg.StealAfter = defaultStealAfter
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = defaultRetryBackoff
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = defaultMaxFailures
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Coordinator{
		cfg:    cfg,
		reg:    reg,
		nodes:  map[string]*node{},
		stopHB: make(chan struct{}),
	}
	for _, spec := range cfg.Nodes {
		c.addNode(spec)
	}
	c.rebuildRing()
	if cfg.HeartbeatEvery > 0 {
		go c.heartbeatLoop(cfg.HeartbeatEvery)
	}
	return c
}

// addNode inserts a node (caller need not hold c.mu; Register handles
// ring rebuild).
func (c *Coordinator) addNode(spec NodeSpec) {
	if spec.Name == "" {
		spec = ParseNodeSpec(spec.Addr)
	}
	n := &node{
		name:   spec.Name,
		client: NewClient(spec.Addr, c.cfg.HTTPClient),
		sem:    make(chan struct{}, c.cfg.MaxInFlight),
	}
	n.alive.Store(true)
	c.mu.Lock()
	c.nodes[spec.Name] = n
	c.mu.Unlock()
}

// rebuildRing recomputes the consistent-hash ring over the full
// membership (dead nodes stay on the ring — their keyspace must not remap
// across a transient failure; dispatch just skips them).
func (c *Coordinator) rebuildRing() {
	c.mu.Lock()
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	c.ring = newRing(names, c.cfg.Vnodes)
	c.mu.Unlock()
	c.gaugeNodes()
}

// Register adds a worker node at runtime (the service's
// POST /v1/cluster/register). Re-registering a known name replaces its
// address and revives it.
func (c *Coordinator) Register(spec NodeSpec) {
	c.addNode(spec)
	c.rebuildRing()
}

// Drain stops accepting new submodel dispatches (they fail ErrDraining)
// and blocks until every in-flight dispatch completes.
func (c *Coordinator) Drain() {
	c.drainMu.Lock()
	c.draining.Store(true)
	c.drainMu.Unlock()
	c.inflight.Wait()
}

// Draining reports whether Drain has been called.
func (c *Coordinator) Draining() bool { return c.draining.Load() }

// Close stops the heartbeat loop. It does not drain.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stopHB) })
}

// Nodes returns a status snapshot of every node, sorted by name.
func (c *Coordinator) Nodes() []NodeStatus {
	c.mu.Lock()
	list := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		list = append(list, n)
	}
	c.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })
	out := make([]NodeStatus, len(list))
	for i, n := range list {
		out[i] = NodeStatus{
			Name:       n.name,
			Addr:       n.client.Base(),
			Alive:      n.alive.Load(),
			InFlight:   int(n.inflight.Load()),
			Dispatched: n.dispatched.Load(),
			CacheHits:  n.cacheHits.Load(),
			Steals:     n.steals.Load(),
			Failures:   n.failures.Load(),
		}
	}
	return out
}

// Heartbeat probes every node once: an evicted node that answers healthz
// is revived; a node that fails the probe accrues a consecutive failure
// and is evicted past the threshold.
func (c *Coordinator) Heartbeat(ctx context.Context) {
	c.mu.Lock()
	list := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		list = append(list, n)
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, n := range list {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			if _, err := n.client.Healthz(ctx); err != nil {
				c.noteFailure(n, err)
				return
			}
			if !n.alive.Load() {
				n.alive.Store(true)
				c.counter("p4served_cluster_revivals_total", telemetry.L("node", n.name)).Inc()
			}
			n.consecFails.Store(0)
		}(n)
	}
	wg.Wait()
	c.gaugeNodes()
}

func (c *Coordinator) heartbeatLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stopHB:
			return
		case <-t.C:
			c.Heartbeat(context.Background())
		}
	}
}

// alivePrefs returns the key's preference list restricted to live nodes.
func (c *Coordinator) alivePrefs(key string) []*node {
	c.mu.Lock()
	r := c.ring
	nodes := c.nodes
	prefs := r.prefs(key)
	out := make([]*node, 0, len(prefs))
	for _, name := range prefs {
		if n := nodes[name]; n != nil && n.alive.Load() {
			out = append(out, n)
		}
	}
	c.mu.Unlock()
	return out
}

// noteFailure records a dispatch or probe failure and evicts the node
// when its consecutive-failure count crosses the threshold.
func (c *Coordinator) noteFailure(n *node, err error) {
	n.failures.Add(1)
	c.counter("p4served_cluster_failures_total", telemetry.L("node", n.name)).Inc()
	if n.consecFails.Add(1) >= int64(c.cfg.MaxFailures) && n.alive.CompareAndSwap(true, false) {
		c.counter("p4served_cluster_evictions_total", telemetry.L("node", n.name)).Inc()
		c.gaugeNodes()
	}
	_ = err
}

// outcome is one attempt's result, remote or local.
type outcome struct {
	n        *node // nil for local attempts
	res      *sym.Result
	cacheHit bool
	err      error
}

// ExecuteSubmodel dispatches one submodel: consistent-hash routing to the
// key's preferred live node, straggler re-dispatch after StealAfter,
// retry-with-backoff down the preference list, and a local execution as
// the path of last resort. Whatever route the result takes, it is the
// deterministic verdict of the submodel — byte-identical to a local run.
func (c *Coordinator) ExecuteSubmodel(ctx context.Context, req *exec.Request) (*sym.Result, error) {
	c.drainMu.RLock()
	if c.draining.Load() {
		c.drainMu.RUnlock()
		return nil, ErrDraining
	}
	c.inflight.Add(1)
	c.drainMu.RUnlock()
	defer c.inflight.Done()

	prefs := c.alivePrefs(req.Key)
	if len(prefs) == 0 || req.Job == nil {
		return c.runLocalAttempt(ctx, req, "no_nodes")
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in losing duplicate attempts

	ch := make(chan outcome, len(prefs)+1)
	pending := 0
	next := 0 // next preference index to dispatch
	localLaunched := false

	launchNode := func(n *node) {
		pending++
		go c.dispatch(rctx, n, req, ch)
	}
	launchLocal := func(reason string) {
		pending++
		localLaunched = true
		c.counter("p4served_cluster_local_total", telemetry.L("reason", reason)).Inc()
		go func() {
			res, err := exec.Local{}.ExecuteSubmodel(rctx, req)
			ch <- outcome{res: res, err: err}
		}()
	}

	launchNode(prefs[next])
	next++

	var steal <-chan time.Time
	var stealTimer *time.Timer
	if c.cfg.StealAfter > 0 {
		stealTimer = time.NewTimer(c.cfg.StealAfter)
		defer stealTimer.Stop()
		steal = stealTimer.C
	}

	var lastErr error
	for pending > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-steal:
			// Straggler: duplicate the work on the next candidate. The
			// primary keeps running — first result wins.
			prefs[0].steals.Add(1)
			c.counter("p4served_cluster_steals_total").Inc()
			if next < len(prefs) {
				launchNode(prefs[next])
				next++
			} else if !localLaunched {
				launchLocal("steal")
			}
			if next < len(prefs) || !localLaunched {
				stealTimer.Reset(c.cfg.StealAfter)
			}
		case out := <-ch:
			pending--
			if out.err == nil {
				if out.n != nil {
					out.n.consecFails.Store(0)
				}
				return out.res, nil
			}
			if out.n != nil {
				c.noteFailure(out.n, out.err)
				lastErr = out.err
			} else {
				// The local path failed: the submodel itself errors (or the
				// run was cancelled). Nothing a retry can fix.
				return nil, out.err
			}
			if pending > 0 {
				continue // a duplicate attempt is still in flight
			}
			if next < len(prefs) {
				if c.cfg.RetryBackoff > 0 {
					t := time.NewTimer(c.cfg.RetryBackoff * time.Duration(next))
					select {
					case <-ctx.Done():
						t.Stop()
						return nil, ctx.Err()
					case <-t.C:
					}
				}
				launchNode(prefs[next])
				next++
			} else if !localLaunched {
				launchLocal("fallback")
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no dispatch attempt completed")
	}
	return nil, lastErr
}

// dispatch runs one remote attempt under the node's in-flight bound and
// its own telemetry lane.
func (c *Coordinator) dispatch(ctx context.Context, n *node, req *exec.Request, ch chan<- outcome) {
	select {
	case n.sem <- struct{}{}:
	case <-ctx.Done():
		ch <- outcome{n: n, err: ctx.Err()}
		return
	}
	defer func() { <-n.sem }()
	n.inflight.Add(1)
	defer n.inflight.Add(-1)

	// A lane, not a plain span: duplicate (steal) attempts overlap in
	// time, and each node's RPCs must render on their own timeline.
	_, sp := telemetry.StartLane(ctx, "rpc["+n.name+"]")
	t0 := time.Now()
	resp, err := n.client.Execute(ctx, c.wireRequest(req))
	c.reg.Histogram("p4served_cluster_rpc_seconds",
		"Worker RPC latency by node.", telemetry.L("node", n.name)).Observe(time.Since(t0))
	n.dispatched.Add(1)
	c.counter("p4served_cluster_dispatch_total", telemetry.L("node", n.name)).Inc()
	if err != nil {
		sp.End()
		ch <- outcome{n: n, err: err}
		return
	}
	if resp.CacheHit {
		n.cacheHits.Add(1)
		c.counter("p4served_cluster_cache_hits_total", telemetry.L("node", n.name)).Inc()
		sp.MarkCached()
	}
	c.importSpans(ctx, sp, t0, resp.Spans)
	res := resp.Verdict.Result()
	exec.AnnotateSpan(sp, res.Metrics)
	sp.End()
	ch <- outcome{n: n, res: res, cacheHit: resp.CacheHit}
}

// importSpans grafts worker-forwarded spans into the live trace under
// the RPC's lane, re-anchored on the RPC start (worker clocks are not
// trusted). This is how remote-submodel progress reaches the job's event
// feed and Chrome trace.
func (c *Coordinator) importSpans(ctx context.Context, rpcSpan *telemetry.Span, t0 time.Time, spans []WireSpan) {
	tr := telemetry.TraceFrom(ctx)
	if tr == nil || len(spans) == 0 {
		return
	}
	imported := make([]telemetry.ImportedSpan, len(spans))
	for i, ws := range spans {
		imported[i] = telemetry.ImportedSpan{
			ID:     ws.ID,
			Parent: ws.Parent,
			Name:   ws.Name,
			Start:  t0.Add(time.Duration(ws.StartNS)),
			Cached: ws.Cached,
			Attrs:  ws.Attrs,
		}
		if ws.EndNS != 0 {
			imported[i].End = t0.Add(time.Duration(ws.EndNS))
		}
	}
	tr.Import(rpcSpan, imported)
}

// runLocalAttempt executes the submodel in-process (no live nodes, or a
// request without a job spec that cannot travel).
func (c *Coordinator) runLocalAttempt(ctx context.Context, req *exec.Request, reason string) (*sym.Result, error) {
	c.counter("p4served_cluster_local_total", telemetry.L("reason", reason)).Inc()
	return exec.Local{}.ExecuteSubmodel(ctx, req)
}

// wireRequest renders an executor request for the wire, re-anchoring the
// remaining deadline as a relative budget.
func (c *Coordinator) wireRequest(req *exec.Request) *ExecRequest {
	wr := &ExecRequest{Key: req.Key, Index: req.Index, Total: req.Total, Job: req.Job}
	if !req.Opts.Deadline.IsZero() {
		ms := time.Until(req.Opts.Deadline).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		wr.TimeoutMS = ms
	}
	return wr
}

func (c *Coordinator) counter(name string, labels ...telemetry.Label) *telemetry.Counter {
	return c.reg.Counter(name, clusterHelp[name], labels...)
}

// gaugeNodes refreshes the membership gauges.
func (c *Coordinator) gaugeNodes() {
	c.mu.Lock()
	total, alive := 0, 0
	for _, n := range c.nodes {
		total++
		if n.alive.Load() {
			alive++
		}
	}
	c.mu.Unlock()
	c.reg.Gauge("p4served_cluster_nodes", "Registered worker nodes.").Set(int64(total))
	c.reg.Gauge("p4served_cluster_nodes_alive", "Worker nodes currently eligible for dispatch.").Set(int64(alive))
}

// clusterHelp holds the HELP text of each coordinator counter.
var clusterHelp = map[string]string{
	"p4served_cluster_dispatch_total":   "Submodel dispatches to worker nodes, by node.",
	"p4served_cluster_cache_hits_total": "Dispatches served from the worker's verdict cache, by node.",
	"p4served_cluster_steals_total":     "Straggler re-dispatches (work stealing).",
	"p4served_cluster_failures_total":   "Failed dispatches or heartbeat probes, by node.",
	"p4served_cluster_evictions_total":  "Node evictions after consecutive failures, by node.",
	"p4served_cluster_revivals_total":   "Evicted nodes revived by heartbeat, by node.",
	"p4served_cluster_local_total":      "Submodels executed on the coordinator itself, by reason.",
}
