package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/exec"
	"p4assert/internal/incr"
	"p4assert/internal/model"
	"p4assert/internal/solver"
	"p4assert/internal/sym"
	"p4assert/internal/telemetry"
	"p4assert/internal/vcache"
)

// ErrSkew reports a version-skewed cluster: the worker rebuilt the job's
// submodels deterministically and the requested key is not among them, so
// coordinator and worker disagree on pipeline semantics (or the request
// was forged). The coordinator treats it as a permanent, non-retryable
// failure for that node and falls back.
var ErrSkew = errors.New("cluster: submodel key not in rebuilt split (version skew)")

// defaultMaxPrograms bounds the worker's rebuilt-split memo. Splits are
// whole translated models; a worker typically serves one or two jobs at a
// time, so the memo stays small.
const defaultMaxPrograms = 8

// WorkerConfig configures a worker node.
type WorkerConfig struct {
	// Name is the node's self-reported name (metrics label, healthz).
	Name string
	// CacheEntries bounds the verdict-cache memory tier (0 = default).
	CacheEntries int
	// CacheDir, when non-empty, enables the cache's disk tier (placed
	// under dir/submodels, the same layout as the service's tier).
	CacheDir string
	// MaxPrograms bounds the rebuilt-split memo (0 = default).
	MaxPrograms int
}

// preparedJob is one job's rebuilt split, memoized by JobSpec digest.
type preparedJob struct {
	subs  []*model.Program
	keys  []string
	byKey map[string]int
	opts  core.Options
}

// Worker executes single submodels on behalf of a coordinator. It
// rebuilds each job's submodel split from source (memoized per job
// digest), validates requested keys against the rebuilt ones, and serves
// repeat keys from its own content-addressed verdict-cache tier.
type Worker struct {
	name  string
	cache *vcache.Cache

	mu       sync.Mutex
	programs map[string]*preparedJob
	order    []string // digest LRU, oldest first
	maxProgs int

	executed  atomic.Int64
	cacheHits atomic.Int64

	reg *telemetry.Registry
}

// NewWorker builds a worker node.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	cache, err := vcache.NewSubmodelTier(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	maxProgs := cfg.MaxPrograms
	if maxProgs <= 0 {
		maxProgs = defaultMaxPrograms
	}
	return &Worker{
		name:     cfg.Name,
		cache:    cache,
		programs: map[string]*preparedJob{},
		maxProgs: maxProgs,
		reg:      telemetry.NewRegistry(),
	}, nil
}

// Name returns the worker's self-reported node name.
func (w *Worker) Name() string { return w.name }

// Cache exposes the worker's verdict-cache tier (tests pre-warm it).
func (w *Worker) Cache() *vcache.Cache { return w.cache }

// Execute runs one submodel request: cache hit, or rebuild + execute +
// cache store. It is the transport-independent core of POST /v1/execute.
func (w *Worker) Execute(ctx context.Context, req *ExecRequest) (*ExecResponse, error) {
	if req.Key == "" || req.Job == nil {
		return nil, fmt.Errorf("cluster: execute request needs a key and a job spec")
	}
	resp := &ExecResponse{Key: req.Key, Node: w.name}

	if data, ok := w.cache.GetBytes(req.Key); ok {
		if res, err := incr.DecodeResult(data); err == nil {
			w.executed.Add(1)
			w.cacheHits.Add(1)
			w.counter("p4served_worker_execute_total", telemetry.L("result", "cache_hit")).Inc()
			resp.CacheHit = true
			resp.Verdict = Verdict{Violations: res.Violations, Metrics: res.Metrics}
			return resp, nil
		}
		// Corrupt entry: fall through to a fresh execution (overwrites it).
	}

	// The execution runs under its own local trace; the recorded spans
	// (pipeline rebuild on first sight of a job digest, then the
	// execution itself) are forwarded on the response so the
	// coordinator's live feed covers remote submodels.
	tr := telemetry.NewTrace()
	tctx := telemetry.WithTrace(ctx, tr)

	job, err := w.prepare(tctx, req.Job)
	if err != nil {
		w.counter("p4served_worker_execute_total", telemetry.L("result", "build_error")).Inc()
		return nil, err
	}
	resp.Submodels = len(job.subs)
	idx, ok := job.byKey[req.Key]
	if !ok {
		w.counter("p4served_worker_execute_total", telemetry.L("result", "skew")).Inc()
		return nil, ErrSkew
	}

	symOpts := sym.Options{
		MaxCallDepth: job.opts.MaxCallDepth,
		MaxPaths:     job.opts.MaxPaths,
		Opt:          job.opts.Opt,
		Ctx:          tctx,
	}
	if req.TimeoutMS > 0 {
		symOpts.Deadline = time.Now().Add(time.Duration(req.TimeoutMS) * time.Millisecond)
	}
	_, execSp := telemetry.StartSpan(tctx, "execute")
	res, err := sym.Execute(job.subs[idx], symOpts)
	if err != nil {
		execSp.End()
		w.counter("p4served_worker_execute_total", telemetry.L("result", "exec_error")).Inc()
		return nil, err
	}
	exec.AnnotateSpan(execSp, res.Metrics)
	execSp.End()
	resp.Spans = wireSpans(tr)
	w.executed.Add(1)
	w.counter("p4served_worker_execute_total", telemetry.L("result", "executed")).Inc()
	// Verdicts are cache-grade artifacts: every field must be a
	// deterministic function of the key. The acceleration telemetry is
	// not (wall time, cache state), and the wire codec drops it, so strip
	// it before the verdict is stored or returned.
	res.Metrics.Solver.Accel = solver.AccelStats{}
	if !res.Exhausted {
		if data, err := incr.EncodeResult(res); err == nil {
			w.cache.PutBytes(req.Key, data)
		}
	}
	resp.Verdict = Verdict{Violations: res.Violations, Metrics: res.Metrics, Exhausted: res.Exhausted}
	return resp, nil
}

// prepare returns the memoized rebuilt split for the job, rebuilding on
// first sight of its digest.
func (w *Worker) prepare(ctx context.Context, spec *exec.JobSpec) (*preparedJob, error) {
	digest := spec.Digest()
	w.mu.Lock()
	if job, ok := w.programs[digest]; ok {
		w.mu.Unlock()
		return job, nil
	}
	w.mu.Unlock()

	// Rebuild outside the lock: splits of distinct jobs build in parallel,
	// and a duplicate build of the same job is harmless (last one wins).
	opts, err := core.SpecOptions(spec)
	if err != nil {
		return nil, err
	}
	subs, keys, err := core.PrepareSubmodels(ctx, spec.Filename, spec.Source, opts)
	if err != nil {
		return nil, fmt.Errorf("cluster: rebuild job: %w", err)
	}
	job := &preparedJob{subs: subs, keys: keys, byKey: make(map[string]int, len(keys)), opts: opts}
	for i, k := range keys {
		job.byKey[k] = i
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if existing, ok := w.programs[digest]; ok {
		return existing, nil
	}
	w.programs[digest] = job
	w.order = append(w.order, digest)
	for len(w.order) > w.maxProgs {
		delete(w.programs, w.order[0])
		w.order = w.order[1:]
	}
	return job, nil
}

// wireSpans renders a worker-local trace for the wire, with times
// relative to the trace start.
func wireSpans(tr *telemetry.Trace) []WireSpan {
	base := tr.StartTime()
	spans := tr.Spans()
	out := make([]WireSpan, 0, len(spans))
	for _, sp := range spans {
		ws := WireSpan{
			ID:      sp.ID,
			Parent:  sp.Parent,
			Name:    sp.Name,
			StartNS: sp.Start.Sub(base).Nanoseconds(),
			Cached:  sp.IsCached(),
			Attrs:   sp.Attrs(),
		}
		if end := sp.EndTime(); !end.IsZero() {
			ws.EndNS = end.Sub(base).Nanoseconds()
		}
		out = append(out, ws)
	}
	return out
}

// Health returns the worker's healthz body.
func (w *Worker) Health() WorkerHealth {
	w.mu.Lock()
	programs := len(w.programs)
	w.mu.Unlock()
	return WorkerHealth{
		Status:    "ok",
		Node:      w.name,
		Executed:  w.executed.Load(),
		CacheHits: w.cacheHits.Load(),
		Programs:  programs,
	}
}

func (w *Worker) counter(name string, labels ...telemetry.Label) *telemetry.Counter {
	return w.reg.Counter(name, "Submodel executions served by this worker, by result.", labels...)
}

// Handler returns the worker's RPC surface:
//
//	POST /v1/execute  — run one submodel (ExecRequest -> ExecResponse)
//	GET  /v1/healthz  — liveness + serve counters
//	GET  /v1/metrics  — Prometheus text exposition
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/execute", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeWireError(rw, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req ExecRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeWireError(rw, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		resp, err := w.Execute(r.Context(), &req)
		if err != nil {
			status := http.StatusUnprocessableEntity
			if errors.Is(err, ErrSkew) {
				status = http.StatusConflict
			}
			writeWireError(rw, status, err.Error())
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(resp)
	})
	mux.HandleFunc("/v1/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(w.Health())
	})
	mux.HandleFunc("/v1/metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.reg.WritePrometheus(rw)
	})
	return mux
}

func writeWireError(rw http.ResponseWriter, status int, msg string) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(wireError{Error: msg})
}
