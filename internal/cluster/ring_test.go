package cluster

import (
	"fmt"
	"testing"
)

// TestRingPrefsDeterministicAndComplete: the preference list is a stable
// permutation of the membership, identical across independently built
// rings (the shared-cluster-cache property).
func TestRingPrefsDeterministicAndComplete(t *testing.T) {
	nodes := []string{"w0", "w1", "w2", "w3"}
	a := newRing(nodes, 0)
	b := newRing([]string{"w3", "w2", "w1", "w0"}, 0) // order-independent? no — same set, sorted input differs
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		pa := a.prefs(key)
		if len(pa) != len(nodes) {
			t.Fatalf("prefs(%q) = %v: not a full permutation", key, pa)
		}
		seen := map[string]bool{}
		for _, n := range pa {
			seen[n] = true
		}
		if len(seen) != len(nodes) {
			t.Fatalf("prefs(%q) = %v: duplicate nodes", key, pa)
		}
		pb := b.prefs(key)
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("prefs(%q) differ across ring builds: %v vs %v", key, pa, pb)
			}
		}
	}
}

// TestRingStabilityUnderMembershipChange: adding one node must remap only
// a minority of the keyspace (consistent hashing's defining property).
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	before := newRing([]string{"w0", "w1", "w2"}, 0)
	after := newRing([]string{"w0", "w1", "w2", "w3"}, 0)
	const keys = 1000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		if before.prefs(key)[0] != after.prefs(key)[0] {
			moved++
		}
	}
	// Expected remap fraction is 1/4; allow generous slack, but far below
	// the ~3/4 a naive mod-N rehash would move.
	if moved > keys/2 {
		t.Fatalf("%d/%d keys remapped on single-node join (expected ~%d)", moved, keys, keys/4)
	}
	if moved == 0 {
		t.Fatal("no keys remapped on join: the new node gets no load")
	}
}

// TestRingEmptyAndLocalKeys: empty rings and empty keys yield no
// preference list (callers fall back to local execution).
func TestRingEmptyAndLocalKeys(t *testing.T) {
	if got := newRing(nil, 0).prefs("k"); got != nil {
		t.Fatalf("empty ring prefs = %v", got)
	}
	if got := newRing([]string{"w0"}, 0).prefs(""); got != nil {
		t.Fatalf("empty key prefs = %v", got)
	}
}
