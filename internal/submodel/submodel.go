// Package submodel implements the paper's parallelization strategy (§4.4):
// the model is statically divided into submodels at early decision points —
// the first branching in the parser and the first table dispatch — by
// replacing the decision with an assumption per branch (Fig. 8). Submodels
// are independent and run concurrently on a bounded worker pool; results
// are merged.
package submodel

import (
	"context"
	"fmt"

	"p4assert/internal/exec"
	"p4assert/internal/model"
	"p4assert/internal/sym"
	"p4assert/internal/telemetry"
)

// splitPoint locates a top-level statement reachable from an entry chain.
type splitPoint struct {
	fn  string
	idx int
}

// findSplit walks the call chain from startFn, visiting top-level
// statements, and returns the first If or Fork. It looks through Calls
// (depth-first, cycle-guarded).
func findSplit(p *model.Program, startFn string) *splitPoint {
	visited := map[string]bool{}
	var walk func(fn string) *splitPoint
	walk = func(fn string) *splitPoint {
		if visited[fn] {
			return nil
		}
		visited[fn] = true
		f, ok := p.Funcs[fn]
		if !ok {
			return nil
		}
		for i, s := range f.Body {
			switch st := s.(type) {
			case *model.If, *model.Fork:
				_ = st
				return &splitPoint{fn: fn, idx: i}
			case *model.Call:
				if sp := walk(st.Func); sp != nil {
					return sp
				}
			}
		}
		return nil
	}
	return walk(startFn)
}

// expand returns the replacement statement lists for each branch of the
// decision at sp: assumption-guarded branch bodies (Fig. 8(b)/(c)).
func expand(p *model.Program, sp *splitPoint) [][]model.Stmt {
	stmt := p.Funcs[sp.fn].Body[sp.idx]
	switch st := stmt.(type) {
	case *model.Fork:
		// Each branch body is prefixed with the trace entry the Fork would
		// have recorded, so counterexample traces from submodel runs are
		// byte-identical to the sequential executor's.
		out := make([][]model.Stmt, len(st.Branches))
		for i, br := range st.Branches {
			label := ""
			if i < len(st.Labels) {
				label = st.Labels[i]
			}
			note := &model.TraceNote{Label: fmt.Sprintf("%s=%s", st.Selector, label)}
			out[i] = append([]model.Stmt{note}, br...)
		}
		return out
	case *model.If:
		// Flatten an if-else cascade: one submodel per arm plus the final
		// default ("each action in a table is traversed using a different
		// submodel").
		var out [][]model.Stmt
		var negs []model.Stmt
		cur := st
		for {
			branch := append([]model.Stmt(nil), negs...)
			branch = append(branch, &model.Assume{Cond: cur.Cond})
			branch = append(branch, cur.Then...)
			out = append(out, branch)
			negs = append(negs, &model.Assume{Cond: &model.Un{Op: model.OpNot, X: cur.Cond}})
			if len(cur.Else) == 1 {
				if next, ok := cur.Else[0].(*model.If); ok {
					cur = next
					continue
				}
			}
			def := append([]model.Stmt(nil), negs...)
			def = append(def, cur.Else...)
			out = append(out, def)
			return out
		}
	}
	return nil
}

// withReplacement clones p, replacing the statement at sp with repl.
func withReplacement(p *model.Program, sp *splitPoint, repl []model.Stmt) *model.Program {
	q := p.Clone()
	f := q.Funcs[sp.fn]
	body := make([]model.Stmt, 0, len(f.Body)+len(repl)-1)
	body = append(body, f.Body[:sp.idx]...)
	body = append(body, repl...)
	body = append(body, f.Body[sp.idx+1:]...)
	f.Body = body
	return q
}

// Split generates submodels per the paper's heuristic: divide at the first
// parser decision, then subdivide each submodel at the first table decision
// in the control pipeline. If no decision point exists the original program
// is returned as the only submodel.
func Split(p *model.Program) []*model.Program {
	first := []*model.Program{p}
	if len(p.Entry) > 0 {
		if sp := findSplit(p, p.Entry[0]); sp != nil {
			first = nil
			for _, repl := range expand(p, sp) {
				first = append(first, withReplacement(p, sp, repl))
			}
		}
	}
	var out []*model.Program
	for _, sub := range first {
		split := false
		for _, entry := range sub.Entry[1:] {
			if entry == "$checks" {
				continue
			}
			if sp := findSplit(sub, entry); sp != nil {
				for _, repl := range expand(sub, sp) {
					out = append(out, withReplacement(sub, sp, repl))
				}
				split = true
				break
			}
		}
		if !split {
			out = append(out, sub)
		}
	}
	return out
}

// Result aggregates a parallel run.
type Result struct {
	// Agg merges all submodels: violation union, metric sums.
	Agg sym.Result
	// PerModel records each submodel's metrics.
	PerModel []sym.Metrics
	// WorstInstructions is the instruction count of the heaviest submodel
	// (the paper's Table 2 parallel-reduction metric).
	WorstInstructions int64
	// ViolationModels maps each violated assertion ID to the submodel that
	// first found it. Counterexample traces are recorded relative to the
	// submodel that ran (the split decision is replaced by assumptions
	// there), so concrete replay must execute that submodel, not the full
	// model.
	ViolationModels map[int]*model.Program
}

// Run splits p and executes the submodels on workers goroutines
// (the paper's experiments use 4, matching their VM's cores).
func Run(p *model.Program, opts sym.Options, workers int) (*Result, error) {
	return RunCtx(context.Background(), p, opts, workers)
}

// RunCtx is Run with telemetry: when ctx carries a telemetry.Trace, the
// split gets a "split" span and every submodel executes under its own
// "submodel[i]" span (on a fresh lane, since workers overlap in time)
// annotated with the executor's work counters. Cancellation still
// travels in opts.Ctx, not ctx.
func RunCtx(ctx context.Context, p *model.Program, opts sym.Options, workers int) (*Result, error) {
	return RunExec(ctx, p, opts, workers, exec.Local{}, nil)
}

// RunExec is RunCtx with the per-submodel executions routed through ex —
// the transport-agnostic boundary (internal/exec) behind which the local
// pool and the cluster coordinator (internal/cluster) are
// interchangeable. When ex is non-local, each request carries the
// submodel's executable-content key (for cache-tier routing) and job (the
// rebuild-from-source recipe); the purely local path skips key hashing,
// which it never needs.
func RunExec(ctx context.Context, p *model.Program, opts sym.Options, workers int, ex exec.Executor, job *exec.JobSpec) (*Result, error) {
	_, splitSp := telemetry.StartSpan(ctx, "split")
	subs := Split(p)
	splitSp.SetAttr("submodels", int64(len(subs)))
	splitSp.End()

	_, local := ex.(exec.Local)
	reqs := make([]*exec.Request, len(subs))
	for i, sub := range subs {
		reqs[i] = &exec.Request{
			Submodel: sub,
			Index:    i,
			Total:    len(subs),
			Opts:     opts,
			Job:      job,
		}
		if !local {
			reqs[i].Key = exec.SubmodelKey(sub, opts)
		}
	}
	results, err := exec.RunAll(ctx, reqs, ex, workers)
	if err != nil {
		return nil, err
	}
	return Aggregate(subs, results), nil
}

// AnnotateSpan attaches a submodel execution's work counters to its
// span. Shared with the incremental engine, whose re-executed submodels
// must carry the same attributes as cold ones. (The implementation lives
// at the execution boundary, internal/exec, which annotates remote
// dispatches identically.)
func AnnotateSpan(sp *telemetry.Span, m sym.Metrics) { exec.AnnotateSpan(sp, m) }

// Aggregate merges per-submodel results into one Result, in submodel
// order: violation union (first submodel finding an assertion claims its
// counterexample, later ones add their path counts), metric sums, and the
// worst-submodel instruction count. The merge is deterministic in the
// submodel order, never in execution completion order — the incremental
// engine (internal/incr) relies on this to mix cached and freshly executed
// submodel results into a report byte-identical to a cold run's.
func Aggregate(subs []*model.Program, results []*sym.Result) *Result {
	out := &Result{ViolationModels: map[int]*model.Program{}}
	seen := map[int]*sym.Violation{}
	for i, r := range results {
		out.PerModel = append(out.PerModel, r.Metrics)
		m := &out.Agg.Metrics
		m.Paths += r.Metrics.Paths
		m.KilledInfeasible += r.Metrics.KilledInfeasible
		m.BoundExceeded += r.Metrics.BoundExceeded
		m.Instructions += r.Metrics.Instructions
		m.Forks += r.Metrics.Forks
		m.AssertChecks += r.Metrics.AssertChecks
		if r.Metrics.MaxFrontier > m.MaxFrontier {
			// The frontier bound is per-executor: submodels run in
			// parallel with independent worklists, so the merged figure is
			// the worst single submodel, not a sum.
			m.MaxFrontier = r.Metrics.MaxFrontier
		}
		m.Solver.Queries += r.Metrics.Solver.Queries
		m.Solver.QuickSAT += r.Metrics.Solver.QuickSAT
		m.Solver.QuickUNSAT += r.Metrics.Solver.QuickUNSAT
		m.Solver.FullQueries += r.Metrics.Solver.FullQueries
		m.Solver.BitblastVars += r.Metrics.Solver.BitblastVars
		m.Solver.BitblastClauses += r.Metrics.Solver.BitblastClauses
		m.Solver.Accel.Add(r.Metrics.Solver.Accel)
		if r.Metrics.Instructions > out.WorstInstructions {
			out.WorstInstructions = r.Metrics.Instructions
		}
		out.Agg.Exhausted = out.Agg.Exhausted || r.Exhausted
		for _, v := range r.Violations {
			if prev, ok := seen[v.AssertID]; ok {
				prev.Count += v.Count
				continue
			}
			cp := *v
			seen[v.AssertID] = &cp
			out.Agg.Violations = append(out.Agg.Violations, &cp)
			out.ViolationModels[v.AssertID] = subs[i]
		}
	}
	return out
}
